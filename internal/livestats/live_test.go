package livestats

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"chainmon/internal/telemetry"
	"chainmon/internal/weaklyhard"
)

func TestSetHealthDocument(t *testing.T) {
	set := NewSet(0)
	set.SetTimebase("sim")
	seg := set.Segment("rt/ground", weaklyhard.Constraint{M: 1, K: 5})
	chain := set.Chain("rt", weaklyhard.Constraint{M: 2, K: 10})
	free := set.Segment("rt/objects", weaklyhard.Constraint{}) // no SLO
	set.AddDropSource("stream", func() uint64 { return 7 })

	seg.Observe(1e6, false)
	seg.Observe(2e6, true)
	seg.ObserveDrain(500)
	chain.Observe(3e6, false)
	free.Observe(4e6, false)

	h := set.Health()
	if h.Status != "burning" {
		t.Errorf("status = %q, want burning (1 miss vs m=1)", h.Status)
	}
	if h.Timebase != "sim" {
		t.Errorf("timebase = %q", h.Timebase)
	}
	sg, ok := h.Segments["rt/ground"]
	if !ok {
		t.Fatal("rt/ground missing from health")
	}
	if sg.SLO == nil || sg.SLO.WindowMisses != 1 || sg.SLO.Budget != 0 || sg.SLO.State != "burning" {
		t.Errorf("rt/ground SLO = %+v", sg.SLO)
	}
	if sg.Latency.Count != 2 {
		t.Errorf("rt/ground latency count = %d", sg.Latency.Count)
	}
	if sg.Drain == nil || sg.Drain.Count != 1 {
		t.Errorf("rt/ground drain = %+v", sg.Drain)
	}
	if so := h.Segments["rt/objects"]; so.SLO != nil {
		t.Error("unconstrained segment should have no SLO")
	}
	ch, ok := h.Chains["rt"]
	if !ok {
		t.Fatal("chain rt missing from health")
	}
	if ch.SLO == nil || ch.SLO.M != 2 || ch.SLO.K != 10 {
		t.Errorf("chain SLO = %+v", ch.SLO)
	}
	if h.Drops["stream"] != 7 {
		t.Errorf("drops = %v", h.Drops)
	}
}

func TestSetHandlerServesJSON(t *testing.T) {
	set := NewSet(0)
	set.SetTimebase("wall")
	set.Segment("a", weaklyhard.Constraint{M: 1, K: 3}).Observe(1e6, false)

	rec := httptest.NewRecorder()
	set.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/health", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("health endpoint did not serve valid JSON: %v\n%s", err, rec.Body.String())
	}
	if h.Status != "ok" || h.Timebase != "wall" {
		t.Errorf("decoded health = %+v", h)
	}
	if h.Segments["a"].Latency.Count != 1 {
		t.Errorf("segment a = %+v", h.Segments["a"])
	}
}

func TestSetPublishMetrics(t *testing.T) {
	set := NewSet(0)
	seg := set.Segment("rt/ground", weaklyhard.Constraint{M: 1, K: 5})
	for i := 0; i < 99; i++ {
		seg.Observe(1e6, false)
	}
	seg.Observe(5e7, true)

	reg := telemetry.NewRegistry()
	set.PublishMetrics(reg)
	var buf strings.Builder
	if err := (&telemetry.Sink{Reg: reg}).WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`chainmon_live_latency_ns{kind="segment",q="p50",scope="rt/ground"}`,
		`chainmon_live_latency_ns{kind="segment",q="max",scope="rt/ground"} 50000000`,
		`chainmon_live_latency_count{kind="segment",scope="rt/ground"} 100`,
		`chainmon_live_latency_sketch_buckets{kind="segment",scope="rt/ground"}`,
		`chainmon_live_slo_window_misses{kind="segment",scope="rt/ground"} 1`,
		`chainmon_live_slo_budget{kind="segment",scope="rt/ground"} 0`,
		`chainmon_live_slo_state{kind="segment",scope="rt/ground"} 2`,
		`chainmon_live_slo_burn_ppm{kind="segment",scope="rt/ground"} 1000000`,
		`chainmon_live_status 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}

func TestSetConcurrentFeedAndScrape(t *testing.T) {
	// The hot path (Observe) and the scrape path (Health/PublishMetrics)
	// run on different goroutines in -realtime; this is the -race witness.
	set := NewSet(0)
	seg := set.Segment("s", weaklyhard.Constraint{M: 1, K: 10})
	reg := telemetry.NewRegistry()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			seg.Observe(float64(i)*1e3, i%7 == 0)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			set.Health()
			set.PublishMetrics(reg)
		}
	}()
	wg.Wait()
	if seg.Count() != 5000 {
		t.Errorf("count = %d", seg.Count())
	}
}

func TestSetScopeReuse(t *testing.T) {
	set := NewSet(0)
	a := set.Segment("s", weaklyhard.Constraint{})
	b := set.Segment("s", weaklyhard.Constraint{M: 1, K: 2})
	if a != b {
		t.Fatal("same segment name must return the same scope")
	}
	// The later, valid constraint upgrades the quantiles-only scope.
	if a.State() != StateOK {
		t.Errorf("state = %v", a.State())
	}
	a.Observe(1, true)
	if a.State() != StateBurning {
		t.Errorf("upgraded scope did not track the SLO: %v", a.State())
	}
}
