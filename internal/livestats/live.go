package livestats

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"

	"chainmon/internal/telemetry"
	"chainmon/internal/weaklyhard"
)

// Set is the live health surface of one monitor process: a latency sketch
// and (m,k) SLO per monitored segment and per chain, plus drop-total
// sources (flight recorder, stream sink). It is fed from the monitor hot
// path on every resolved activation and read concurrently by the /metrics
// and /health endpoints; one mutex guards everything — the critical
// sections are a handful of map increments, far below the microsecond
// posting overheads the paper measures.
type Set struct {
	mu       sync.Mutex
	alpha    float64
	timebase string
	scopes   map[string]*Scope
	names    []string // creation order; exports sort anyway
	drops    []dropSource
	budget   func() any // adaptive-controller /health section, nil = absent
	blame    func() any // blame-engine /health section, nil = absent
	meta     func() any // run self-description /health section, nil = absent
}

type dropSource struct {
	name string
	fn   func() uint64
}

// Scope is the live state of one monitored scope (a segment or a chain):
// a latency sketch, an optional ring-drain latency sketch, and an optional
// (m,k) SLO tracker.
type Scope struct {
	set   *Set
	name  string
	kind  string // "segment" or "chain"
	lat   *Sketch
	drain *Sketch
	slo   *SLO
}

// NewSet creates an empty set whose sketches use relative accuracy alpha
// (0 selects DefaultAlpha).
func NewSet(alpha float64) *Set {
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	return &Set{alpha: alpha, scopes: map[string]*Scope{}}
}

// Alpha returns the relative accuracy of the set's sketches.
func (s *Set) Alpha() float64 { return s.alpha }

// SetTimebase records which timebase ("sim" or "wall") feeds the set, for
// the /health document.
func (s *Set) SetTimebase(tb string) {
	s.mu.Lock()
	s.timebase = tb
	s.mu.Unlock()
}

// Segment returns (creating on first use) the live scope for a segment. A
// valid constraint attaches an SLO tracker; an invalid one (e.g. the zero
// Constraint on unconstrained segments) leaves the scope quantiles-only.
func (s *Set) Segment(name string, c weaklyhard.Constraint) *Scope {
	return s.scope(name, "segment", c)
}

// Chain returns (creating on first use) the live scope for a chain's
// end-to-end latency and (m,k) window.
func (s *Set) Chain(name string, c weaklyhard.Constraint) *Scope {
	return s.scope(name, "chain", c)
}

func (s *Set) scope(name, kind string, c weaklyhard.Constraint) *Scope {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := kind + "/" + name
	if sc, ok := s.scopes[key]; ok {
		if sc.slo == nil && c.Valid() {
			sc.slo = NewSLO(c)
		}
		return sc
	}
	sc := &Scope{set: s, name: name, kind: kind, lat: NewSketch(s.alpha)}
	if c.Valid() {
		sc.slo = NewSLO(c)
	}
	s.scopes[key] = sc
	s.names = append(s.names, key)
	return sc
}

// SetBudgetProvider registers the adaptive budget controller's /health
// section provider. The returned value must be JSON-marshalable and
// deterministic for a given controller state; it is fetched outside the
// set's lock so the provider may lock its own state.
func (s *Set) SetBudgetProvider(fn func() any) {
	s.mu.Lock()
	s.budget = fn
	s.mu.Unlock()
}

// SetBlameProvider registers the blame engine's /health section provider
// (a blame.Doc snapshot). Like the budget provider it is fetched outside
// the set's lock, so the engine may lock its own state.
func (s *Set) SetBlameProvider(fn func() any) {
	s.mu.Lock()
	s.blame = fn
	s.mu.Unlock()
}

// SetMetaProvider registers the run self-description /health section
// provider (build version, scenario, uptime, budget epoch). Fetched
// outside the set's lock.
func (s *Set) SetMetaProvider(fn func() any) {
	s.mu.Lock()
	s.meta = fn
	s.mu.Unlock()
}

// AddDropSource registers a named drop-total source (e.g. the flight
// recorder's dropped-events count or the stream sink's drop counter) to
// surface on /health.
func (s *Set) AddDropSource(name string, fn func() uint64) {
	s.mu.Lock()
	s.drops = append(s.drops, dropSource{name, fn})
	s.mu.Unlock()
}

// Observe records one resolved activation: its latency in nanoseconds and
// whether it missed its deadline. It slides the scope's (m,k) window and
// returns the resulting burn state (StateOK when the scope has no SLO).
func (sc *Scope) Observe(latencyNS float64, miss bool) BurnState {
	sc.set.mu.Lock()
	defer sc.set.mu.Unlock()
	sc.lat.Observe(latencyNS)
	if sc.slo != nil {
		return sc.slo.Record(miss)
	}
	return StateOK
}

// Record slides the (m,k) window without a latency sample, for resolutions
// that produced no measurable latency (propagated-in activations that never
// started at this scope).
func (sc *Scope) Record(miss bool) BurnState {
	sc.set.mu.Lock()
	defer sc.set.mu.Unlock()
	if sc.slo != nil {
		return sc.slo.Record(miss)
	}
	return StateOK
}

// ObserveDrain records one event-ring drain latency (runtime-hook feed),
// kept in a separate sketch from the verdict latencies.
func (sc *Scope) ObserveDrain(ns float64) {
	sc.set.mu.Lock()
	defer sc.set.mu.Unlock()
	if sc.drain == nil {
		sc.drain = NewSketch(sc.set.alpha)
	}
	sc.drain.Observe(ns)
}

// Quantile returns the scope's live latency quantile estimate.
func (sc *Scope) Quantile(q float64) float64 {
	sc.set.mu.Lock()
	defer sc.set.mu.Unlock()
	return sc.lat.Quantile(q)
}

// QuantileOK is Quantile with an explicit emptiness signal: ok is false
// when the scope has observed no latency yet. Budget consumers must use
// this form so unobserved scopes are skipped, not solved on zeros.
func (sc *Scope) QuantileOK(q float64) (float64, bool) {
	sc.set.mu.Lock()
	defer sc.set.mu.Unlock()
	return sc.lat.QuantileOK(q)
}

// Count returns how many latencies the scope has observed.
func (sc *Scope) Count() uint64 {
	sc.set.mu.Lock()
	defer sc.set.mu.Unlock()
	return sc.lat.Count()
}

// State returns the scope's current burn state (StateOK without an SLO).
func (sc *Scope) State() BurnState {
	sc.set.mu.Lock()
	defer sc.set.mu.Unlock()
	if sc.slo == nil {
		return StateOK
	}
	return sc.slo.State()
}

// QuantileSnapshot is the /health view of one sketch.
type QuantileSnapshot struct {
	Count   uint64  `json:"count"`
	Buckets int     `json:"buckets"`
	P50NS   float64 `json:"p50_ns"`
	P95NS   float64 `json:"p95_ns"`
	P99NS   float64 `json:"p99_ns"`
	MaxNS   float64 `json:"max_ns"`
}

func snapshotSketch(sk *Sketch) QuantileSnapshot {
	qs := QuantileSnapshot{Count: sk.Count(), Buckets: sk.Buckets()}
	if sk.Count() > 0 {
		qs.P50NS = sk.Quantile(0.5)
		qs.P95NS = sk.Quantile(0.95)
		qs.P99NS = sk.Quantile(0.99)
		qs.MaxNS = sk.Max()
	}
	return qs
}

// ScopeHealth is the /health view of one scope.
type ScopeHealth struct {
	Latency QuantileSnapshot  `json:"latency"`
	Drain   *QuantileSnapshot `json:"drain,omitempty"`
	SLO     *SLOSnapshot      `json:"slo,omitempty"`
}

// Health is the full /health JSON document.
type Health struct {
	Status   string                 `json:"status"` // worst burn state across all SLOs
	Timebase string                 `json:"timebase,omitempty"`
	Alpha    float64                `json:"sketch_alpha"`
	Segments map[string]ScopeHealth `json:"segments"`
	Chains   map[string]ScopeHealth `json:"chains"`
	Drops    map[string]uint64      `json:"drops,omitempty"`
	// Budget is the adaptive budget controller's self-description (current
	// deadline table, epoch, actuation history), filled by the budget
	// provider when one is registered. Typed as any because livestats sits
	// below the controller in the dependency order.
	Budget any `json:"budget,omitempty"`
	// Blame is the blame engine's attribution snapshot (a blame.Doc),
	// filled by the blame provider when one is registered. Same typing
	// rationale as Budget.
	Blame any `json:"blame,omitempty"`
	// Meta is the run's self-description (build version, scenario name,
	// uptime, current budget epoch), filled by the meta provider.
	// Consumers that solve over /health documents ignore it.
	Meta any `json:"meta,omitempty"`
}

// Health captures a point-in-time snapshot of the whole set. Map keys are
// scope names; encoding/json renders maps with sorted keys, so the
// document is deterministic.
func (s *Set) Health() Health {
	s.mu.Lock()
	budget, blame, meta := s.budget, s.blame, s.meta
	s.mu.Unlock()
	var budgetDoc, blameDoc, metaDoc any
	if budget != nil {
		budgetDoc = budget() // outside the lock: the provider locks its own state
	}
	if blame != nil {
		blameDoc = blame()
	}
	if meta != nil {
		metaDoc = meta()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Status:   s.worstLocked().String(),
		Timebase: s.timebase,
		Alpha:    s.alpha,
		Segments: map[string]ScopeHealth{},
		Chains:   map[string]ScopeHealth{},
	}
	for _, key := range s.names {
		sc := s.scopes[key]
		sh := ScopeHealth{Latency: snapshotSketch(sc.lat)}
		if sc.drain != nil {
			d := snapshotSketch(sc.drain)
			sh.Drain = &d
		}
		if sc.slo != nil {
			ss := sc.slo.Snapshot()
			sh.SLO = &ss
		}
		if sc.kind == "chain" {
			h.Chains[sc.name] = sh
		} else {
			h.Segments[sc.name] = sh
		}
	}
	if len(s.drops) > 0 {
		h.Drops = map[string]uint64{}
		for _, d := range s.drops {
			h.Drops[d.name] += d.fn()
		}
	}
	h.Budget = budgetDoc
	h.Blame = blameDoc
	h.Meta = metaDoc
	return h
}

// worstLocked returns the max burn state across all SLO-tracked scopes.
func (s *Set) worstLocked() BurnState {
	worst := StateOK
	for _, sc := range s.scopes {
		if sc.slo == nil {
			continue
		}
		if st := sc.slo.State(); st > worst {
			worst = st
		}
	}
	return worst
}

// Status returns the overall burn state (the /health "status" field).
func (s *Set) Status() BurnState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.worstLocked()
}

// Handler returns an http.Handler serving the Health document as JSON, for
// mounting at /health. Degraded states still answer 200 — the document is
// the signal; 5xx is reserved for a monitor that cannot answer at all.
func (s *Set) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Health())
	})
}

var liveQuantiles = []struct {
	label string
	q     float64
}{{"p50", 0.5}, {"p95", 0.95}, {"p99", 0.99}, {"max", 1}}

// PublishMetrics mirrors the set into registry gauges, so the live
// quantiles and SLO burn state ride the existing Prometheus surface
// (/metrics and the -metrics-out snapshot). Values are nanoseconds
// (chainmon_live_*_ns), counts, or enumerated burn states
// (0=ok 1=warning 2=burning 3=violated); burn rate is exported in ppm of
// the window's miss budget, -1 for a violated hard (m=0) constraint.
//
// Register it on a Sink with AddExportHook so every export — live scrape
// or end-of-run snapshot — republishes first and the two always agree.
func (s *Set) PublishMetrics(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()

	keys := append([]string(nil), s.names...)
	sort.Strings(keys)
	for _, key := range keys {
		sc := s.scopes[key]
		labels := telemetry.L("scope", sc.name, "kind", sc.kind)
		publishSketch(reg, "chainmon_live_latency", "Live streaming-sketch latency quantile for a monitored scope, in nanoseconds.", sc.lat, labels)
		if sc.drain != nil {
			publishSketch(reg, "chainmon_live_drain", "Live streaming-sketch event-ring drain latency for a monitored scope, in nanoseconds.", sc.drain, labels)
		}
		if sc.slo != nil {
			snap := sc.slo.Snapshot()
			reg.Gauge("chainmon_live_slo_window_misses",
				"Deadline misses in the current (m,k) window.", labels...).Set(int64(snap.WindowMisses))
			reg.Gauge("chainmon_live_slo_budget",
				"Misses the current (m,k) window still tolerates.", labels...).Set(int64(snap.Budget))
			reg.Gauge("chainmon_live_slo_state",
				"Burn state of the (m,k) SLO: 0=ok 1=warning 2=burning 3=violated.", labels...).Set(int64(sc.slo.State()))
			burnPPM := int64(-1)
			if snap.BurnRate >= 0 {
				burnPPM = int64(snap.BurnRate * 1e6)
			}
			reg.Gauge("chainmon_live_slo_burn_ppm",
				"Fraction of the (m,k) miss budget consumed by the current window, in ppm (-1: hard constraint violated).", labels...).Set(burnPPM)
		}
	}
	reg.Gauge("chainmon_live_status",
		"Overall health: worst (m,k) burn state across all scopes (0=ok 1=warning 2=burning 3=violated).").Set(int64(s.worstLocked()))
}

func publishSketch(reg *telemetry.Registry, prefix, help string, sk *Sketch, labels []telemetry.Label) {
	for _, lq := range liveQuantiles {
		v := sk.Quantile(lq.q)
		if math.IsNaN(v) {
			v = 0
		}
		ql := append(append([]telemetry.Label(nil), labels...), telemetry.Label{Name: "q", Value: lq.label})
		reg.Gauge(prefix+"_ns", help, ql...).Set(int64(v))
	}
	reg.Gauge(prefix+"_count", "Observations folded into the live sketch.", labels...).Set(int64(sk.Count()))
	reg.Gauge(prefix+"_sketch_buckets", "Live buckets in the sketch (memory footprint).", labels...).Set(int64(sk.Buckets()))
}
