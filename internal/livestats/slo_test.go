package livestats

import (
	"math"
	"testing"

	"chainmon/internal/weaklyhard"
)

func TestSLOBurnStates(t *testing.T) {
	// (2,6): ok at 0 misses, warning at 1 (≥ half the budget), burning at
	// exactly 2, violated at 3+.
	s := NewSLO(weaklyhard.Constraint{M: 2, K: 6})
	if got := s.State(); got != StateOK {
		t.Errorf("empty window: %v, want ok", got)
	}
	if got := s.Record(false); got != StateOK {
		t.Errorf("after hit: %v, want ok", got)
	}
	if got := s.Record(true); got != StateWarning {
		t.Errorf("after 1 miss: %v, want warning", got)
	}
	if br := s.BurnRate(); br != 0.5 {
		t.Errorf("burn rate = %g, want 0.5", br)
	}
	if got := s.Record(true); got != StateBurning {
		t.Errorf("after 2 misses: %v, want burning", got)
	}
	if br := s.BurnRate(); br != 1 {
		t.Errorf("burn rate = %g, want 1", br)
	}
	if got := s.Record(true); got != StateViolated {
		t.Errorf("after 3 misses: %v, want violated", got)
	}
	if br := s.BurnRate(); br != 1.5 {
		t.Errorf("burn rate = %g, want 1.5", br)
	}
	// Slide the window clean again: 6 hits push all misses out.
	for i := 0; i < 6; i++ {
		s.Record(false)
	}
	if got := s.State(); got != StateOK {
		t.Errorf("after clean window: %v, want ok", got)
	}
	exec, misses, viol := s.Counter().Totals()
	if exec != 10 || misses != 3 || viol == 0 {
		t.Errorf("totals = (%d, %d, %d)", exec, misses, viol)
	}
}

func TestSLOHardConstraint(t *testing.T) {
	// m=0: no budget to burn — clean is ok, any miss is a violation.
	s := NewSLO(weaklyhard.Constraint{M: 0, K: 4})
	for i := 0; i < 8; i++ {
		if got := s.Record(false); got != StateOK {
			t.Fatalf("clean hard constraint: %v, want ok", got)
		}
	}
	if br := s.BurnRate(); br != 0 {
		t.Errorf("clean hard burn rate = %g, want 0", br)
	}
	if got := s.Record(true); got != StateViolated {
		t.Errorf("hard constraint miss: %v, want violated", got)
	}
	if br := s.BurnRate(); !math.IsInf(br, 1) {
		t.Errorf("violated hard burn rate = %g, want +Inf", br)
	}
	snap := s.Snapshot()
	if snap.BurnRate != -1 {
		t.Errorf("snapshot burn rate = %g, want -1 (Inf marker)", snap.BurnRate)
	}
	if snap.State != "violated" {
		t.Errorf("snapshot state = %q", snap.State)
	}
}

func TestSLOStateOrderingAndStrings(t *testing.T) {
	if !(StateOK < StateWarning && StateWarning < StateBurning && StateBurning < StateViolated) {
		t.Fatal("burn states must be ordered by severity")
	}
	want := map[BurnState]string{
		StateOK: "ok", StateWarning: "warning", StateBurning: "burning", StateViolated: "violated",
	}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), s)
		}
	}
}

func TestSLOSnapshotMatchesCounter(t *testing.T) {
	// The snapshot must reflect exactly the weaklyhard.Counter state — the
	// same algebra the monitor's exception handlers see.
	c := weaklyhard.Constraint{M: 1, K: 5}
	s := NewSLO(c)
	ref := weaklyhard.NewCounter(c)
	pattern := []bool{false, true, false, false, true, true, false, false, false, false, true}
	for _, miss := range pattern {
		s.Record(miss)
		ref.Record(miss)
		snap := s.Snapshot()
		if snap.WindowMisses != ref.Misses() || snap.Budget != ref.Budget() {
			t.Fatalf("snapshot (%d misses, %d budget) != counter (%d, %d)",
				snap.WindowMisses, snap.Budget, ref.Misses(), ref.Budget())
		}
		wantViolated := ref.Violated()
		if (snap.State == "violated") != wantViolated {
			t.Fatalf("state %q vs counter violated=%v", snap.State, wantViolated)
		}
		e1, m1, v1 := ref.Totals()
		if snap.Executions != e1 || snap.TotalMisses != m1 || snap.Violations != v1 {
			t.Fatalf("totals mismatch: snapshot (%d,%d,%d) vs (%d,%d,%d)",
				snap.Executions, snap.TotalMisses, snap.Violations, e1, m1, v1)
		}
	}
}
