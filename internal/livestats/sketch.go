// Package livestats is the online observability layer of the monitor: a
// constant-memory streaming quantile sketch for per-segment latencies and a
// weakly-hard (m,k) SLO burn tracker, both cheap enough to feed from the
// monitor hot path on every resolved activation and safe to read
// concurrently from a /metrics or /health scrape.
//
// The offline evaluation keeps exact samples (internal/stats.Sample buffers
// everything and sorts); that is the right tool for the paper's Tukey
// boxplots and stays untouched. This package is the right tool for the
// multi-day wall-clock service: memory is bounded regardless of run length,
// sketches from independent shards or vehicles merge losslessly, and every
// estimate carries a documented error bound against the exact sample.
package livestats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// DefaultAlpha is the default relative accuracy of a Sketch: estimates are
// within ±1% of the true order statistic (see Quantile for the exact bound).
const DefaultAlpha = 0.01

// defaultMaxBuckets bounds a store's bucket count; with α = 1% the buckets
// covering 1 ns … 1000 s number ~1400, so the bound only bites on
// pathological inputs (denormal floats), where the lowest buckets collapse.
const defaultMaxBuckets = 4096

// Sketch is a fixed-γ DDSketch-style streaming quantile sketch: values are
// counted in logarithmic buckets whose width is chosen so every value in a
// bucket is within relative accuracy α of the bucket's representative
// value. Memory is O(log(max/min)/α) regardless of how many values are
// observed, bounded further by a bucket cap with lowest-bucket collapsing.
//
// Two sketches with the same α merge losslessly: bucket counts add, so
// Merge(a, b) equals the sketch of the concatenated stream exactly (bucket
// assignment depends only on the value, never on arrival order) as long as
// neither side collapsed.
//
// A Sketch is not safe for concurrent use; the Set wrapper adds locking.
type Sketch struct {
	alpha    float64
	gamma    float64
	invLogG  float64 // 1 / ln(gamma)
	maxBkts  int
	pos, neg map[int]uint64 // bucket index → count; neg indexes |v|
	zero     uint64         // exact zeros
	count    uint64
	sum      float64
	min, max float64 // exact extremes
	// collapsed counts values folded into a coarser lowest bucket once the
	// bucket cap was hit; low-quantile estimates then lose the α bound.
	collapsed uint64
	// invalid counts dropped NaN/±Inf observations (never valid latencies).
	invalid uint64
}

// NewSketch creates an empty sketch with relative accuracy alpha
// (0 < alpha < 1; 0 selects DefaultAlpha).
func NewSketch(alpha float64) *Sketch {
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("livestats: sketch accuracy must be in (0,1), got %g", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		invLogG: 1 / math.Log(gamma),
		maxBkts: defaultMaxBuckets,
		pos:     make(map[int]uint64),
		neg:     make(map[int]uint64),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Alpha returns the sketch's relative accuracy.
func (s *Sketch) Alpha() float64 { return s.alpha }

// index maps a positive magnitude to its bucket: bucket i covers
// (γ^(i-1), γ^i].
func (s *Sketch) index(v float64) int {
	return int(math.Ceil(math.Log(v) * s.invLogG))
}

// estimate is bucket i's representative value 2γ^i/(γ+1), within relative
// α of every value in the bucket.
func (s *Sketch) estimate(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Observe records one value. NaN and ±Inf are dropped (and counted in
// Invalid) — they are never valid latencies and would poison the buckets.
func (s *Sketch) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		s.invalid++
		return
	}
	switch {
	case v == 0:
		s.zero++
	case v > 0:
		s.add(s.pos, s.index(v))
	default:
		s.add(s.neg, s.index(-v))
	}
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

// ObserveDuration records a duration in nanoseconds.
func (s *Sketch) ObserveDuration(d time.Duration) { s.Observe(float64(d)) }

// add increments a bucket, collapsing the two lowest buckets of the store
// when the cap is exceeded (low buckets hold the values that matter least
// for the high latency quantiles this sketch serves).
func (s *Sketch) add(store map[int]uint64, i int) {
	store[i]++
	if len(store) <= s.maxBkts {
		return
	}
	lo1, lo2 := math.MaxInt, math.MaxInt
	for k := range store {
		if k < lo1 {
			lo1, lo2 = k, lo1
		} else if k < lo2 {
			lo2 = k
		}
	}
	s.collapsed += store[lo1]
	store[lo2] += store[lo1]
	delete(store, lo1)
}

// Count returns the number of observed (valid) values.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the sum of observed values.
func (s *Sketch) Sum() float64 { return s.sum }

// Invalid returns how many NaN/±Inf observations were dropped.
func (s *Sketch) Invalid() uint64 { return s.invalid }

// Collapsed returns how many observations were folded into a coarser
// bucket because the bucket cap was hit (0 in any realistic run).
func (s *Sketch) Collapsed() uint64 { return s.collapsed }

// Buckets returns the number of live buckets — the sketch's memory
// footprint in units of (index, count) pairs.
func (s *Sketch) Buckets() int {
	n := len(s.pos) + len(s.neg)
	if s.zero > 0 {
		n++
	}
	return n
}

// Min returns the exact smallest observation (NaN when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the exact largest observation (NaN when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.max
}

// Quantile returns an estimate of the q-th quantile (0 ≤ q ≤ 1).
//
// Error bound: let r = ⌈q·(n−1)⌉ (the 0-indexed target rank) and x_r the
// exact r-th order statistic of the observed values. The returned value v̂
// satisfies |v̂ − x_r| ≤ α·|x_r|, i.e. it is within relative accuracy α of
// the exact order statistic at the rank a non-interpolating quantile would
// pick. Against internal/stats.Sample's type-7 interpolated quantile the
// bound becomes: (1−α)·x_⌊q(n−1)⌋ ≤ v̂ ≤ (1+α)·x_⌈q(n−1)⌉ for non-negative
// data, since the interpolated value sits between the two bracketing order
// statistics. The bound does not hold below the collapse point after a
// bucket-cap collapse (Collapsed > 0).
//
// Estimates are clamped to the exact [Min, Max], so Quantile(0) and
// Quantile(1) are exact. An empty sketch returns NaN.
func (s *Sketch) Quantile(q float64) float64 {
	v, ok := s.QuantileOK(q)
	if !ok {
		return math.NaN()
	}
	return v
}

// QuantileOK is Quantile with an explicit emptiness signal: ok is false —
// and the value 0, never a garbage bucket bound — when no valid value was
// observed. Consumers that turn quantiles into budgets (the live solver
// frontend) must use this form so unobserved segments are skipped instead
// of solved on zeros.
func (s *Sketch) QuantileOK(q float64) (float64, bool) {
	if s.count == 0 {
		return 0, false
	}
	if q <= 0 {
		return s.min, true
	}
	if q >= 1 {
		return s.max, true
	}
	rank := q * float64(s.count-1)

	v := s.locate(rank)
	// Clamp to the exact extremes: bucket representatives can stick out of
	// the observed range by up to α.
	if v < s.min {
		v = s.min
	}
	if v > s.max {
		v = s.max
	}
	return v, true
}

// locate walks the buckets in ascending value order — negatives by
// descending magnitude, the zero bucket, positives by ascending magnitude —
// and returns the representative of the bucket holding the target rank.
func (s *Sketch) locate(rank float64) float64 {
	cum := uint64(0)
	past := func() bool { return float64(cum) > rank }

	for _, i := range sortedKeys(s.neg, true) {
		cum += s.neg[i]
		if past() {
			return -s.estimate(i)
		}
	}
	cum += s.zero
	if s.zero > 0 && past() {
		return 0
	}
	for _, i := range sortedKeys(s.pos, false) {
		cum += s.pos[i]
		if past() {
			return s.estimate(i)
		}
	}
	return s.max
}

func sortedKeys(store map[int]uint64, descending bool) []int {
	keys := make([]int, 0, len(store))
	for k := range store {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if descending {
		for l, r := 0, len(keys)-1; l < r; l, r = l+1, r-1 {
			keys[l], keys[r] = keys[r], keys[l]
		}
	}
	return keys
}

// Merge folds other into s. Both sketches must share the same accuracy α
// (bucket layouts are incompatible otherwise); Merge panics on a mismatch
// since that is always a wiring bug. The merged sketch is identical to the
// sketch of the concatenated streams as long as neither input collapsed.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil || other.count == 0 && other.invalid == 0 {
		return
	}
	if other.alpha != s.alpha {
		panic(fmt.Sprintf("livestats: merging sketches with α=%g and α=%g", s.alpha, other.alpha))
	}
	for i, c := range other.pos {
		for n := uint64(0); n < c; n++ {
			s.add(s.pos, i)
		}
	}
	for i, c := range other.neg {
		for n := uint64(0); n < c; n++ {
			s.add(s.neg, i)
		}
	}
	s.zero += other.zero
	s.count += other.count
	s.sum += other.sum
	s.invalid += other.invalid
	s.collapsed += other.collapsed
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Reset empties the sketch, keeping its configuration.
func (s *Sketch) Reset() {
	clear(s.pos)
	clear(s.neg)
	s.zero, s.count, s.collapsed, s.invalid = 0, 0, 0, 0
	s.sum = 0
	s.min, s.max = math.Inf(1), math.Inf(-1)
}
