package livestats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"chainmon/internal/stats"
)

var testQuantiles = []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}

// checkAgainstExact asserts the documented bound for every test quantile:
// for non-negative data the sketch estimate must fall inside
// [(1−α)·x_⌊q(n−1)⌋, (1+α)·x_⌈q(n−1)⌉] where x_i are the exact order
// statistics — the bracket that also contains stats.Sample's type-7
// interpolated quantile.
func checkAgainstExact(t *testing.T, sk *Sketch, values []float64, label string) {
	t.Helper()
	if len(values) == 0 {
		return
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	alpha := sk.Alpha()
	for _, q := range testQuantiles {
		got := sk.Quantile(q)
		pos := q * float64(len(sorted)-1)
		lo := sorted[int(math.Floor(pos))]
		hi := sorted[int(math.Ceil(pos))]
		lob := (1 - alpha) * lo
		hib := (1 + alpha) * hi
		if got < lob || got > hib {
			t.Errorf("%s: q=%g estimate %g outside bound [%g, %g] (exact order stats %g..%g)",
				label, q, got, lob, hib, lo, hi)
		}
	}
}

// The acceptance-criteria property: on random and adversarial streams the
// sketch quantiles stay within the advertised rank-error bound of the exact
// stats.Sample order statistics.
func TestSketchQuantileBoundRandomStreams(t *testing.T) {
	streams := map[string]func(r *rand.Rand, n int) []float64{
		"uniform": func(r *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = r.Float64() * 1e9
			}
			return out
		},
		"lognormal-latency": func(r *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = math.Exp(r.NormFloat64()*2 + 15) // ~µs..s in ns
			}
			return out
		},
		"heavy-tail": func(r *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = 1e6 / math.Pow(r.Float64()+1e-9, 1.5)
			}
			return out
		},
		"bimodal": func(r *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				if r.Intn(2) == 0 {
					out[i] = 1e6 + r.Float64()*1e4
				} else {
					out[i] = 5e7 + r.Float64()*1e6
				}
			}
			return out
		},
	}
	for name, gen := range streams {
		for _, n := range []int{1, 2, 3, 10, 100, 5000} {
			r := rand.New(rand.NewSource(int64(n) * 7919))
			values := gen(r, n)
			sk := NewSketch(0)
			for _, v := range values {
				sk.Observe(v)
			}
			checkAgainstExact(t, sk, values, name)
		}
	}
}

func TestSketchQuantileBoundAdversarialStreams(t *testing.T) {
	streams := map[string][]float64{
		"constant":         repeat(42e6, 1000),
		"two-values":       append(repeat(1e6, 999), 1e9),
		"with-zeros":       append(repeat(0, 500), seq(1, 500)...),
		"ascending":        seq(1, 4000),
		"descending":       reverse(seq(1, 4000)),
		"powers-of-gamma":  powers(1.0202020202, 500), // lands near bucket edges
		"tiny-and-huge":    {1e-9, 1e-3, 1, 1e3, 1e9, 1e15},
		"single":           {123456},
		"near-dup-extreme": append(repeat(9.999e8, 10), repeat(1.0001e9, 10)...),
	}
	for name, values := range streams {
		sk := NewSketch(0)
		for _, v := range values {
			sk.Observe(v)
		}
		checkAgainstExact(t, sk, values, name)
	}
}

func TestSketchNegativeValues(t *testing.T) {
	// Latencies are non-negative, but the sketch must stay sane on signed
	// data (e.g. clock-offset series): relative bound on |x|.
	values := []float64{-1e9, -5e8, -1e6, 0, 1e6, 5e8, 1e9}
	sk := NewSketch(0)
	for _, v := range values {
		sk.Observe(v)
	}
	for _, q := range testQuantiles {
		got := sk.Quantile(q)
		pos := q * float64(len(values)-1)
		lo := values[int(math.Floor(pos))]
		hi := values[int(math.Ceil(pos))]
		lob := lo - sk.Alpha()*math.Abs(lo)
		hib := hi + sk.Alpha()*math.Abs(hi)
		if got < lob || got > hib {
			t.Errorf("q=%g estimate %g outside [%g, %g]", q, got, lob, hib)
		}
	}
	if got := sk.Min(); got != -1e9 {
		t.Errorf("Min = %g, want -1e9", got)
	}
	if got := sk.Max(); got != 1e9 {
		t.Errorf("Max = %g, want 1e9", got)
	}
}

// The merge property: merge(a, b) must be identical (not just within bound)
// to the sketch of the concatenated stream, since bucket assignment is
// order-independent.
func TestSketchMergeEqualsSingleStream(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		na, nb := r.Intn(2000), r.Intn(2000)
		a, b := NewSketch(0), NewSketch(0)
		single := NewSketch(0)
		var all []float64
		for i := 0; i < na; i++ {
			v := math.Exp(r.NormFloat64()*3 + 12)
			a.Observe(v)
			single.Observe(v)
			all = append(all, v)
		}
		for i := 0; i < nb; i++ {
			v := math.Exp(r.NormFloat64()*3 + 12)
			b.Observe(v)
			single.Observe(v)
			all = append(all, v)
		}
		a.Merge(b)
		if a.Count() != single.Count() {
			t.Fatalf("merged count %d != single-stream count %d", a.Count(), single.Count())
		}
		if a.Min() != single.Min() || a.Max() != single.Max() {
			t.Fatalf("merged extremes (%g, %g) != single (%g, %g)", a.Min(), a.Max(), single.Min(), single.Max())
		}
		for _, q := range testQuantiles {
			if got, want := a.Quantile(q), single.Quantile(q); got != want {
				t.Fatalf("trial %d q=%g: merged %g != single-stream %g", trial, q, got, want)
			}
		}
		// And the merged sketch still satisfies the bound vs exact.
		checkAgainstExact(t, a, all, "merged")
	}
}

func TestSketchMergeManyShards(t *testing.T) {
	// Fleet-style: many per-vehicle sketches folded into one, any order.
	r := rand.New(rand.NewSource(3))
	shards := make([]*Sketch, 16)
	single := NewSketch(0)
	var all []float64
	for i := range shards {
		shards[i] = NewSketch(0)
		for j := 0; j < 200; j++ {
			v := r.Float64() * 1e8
			shards[i].Observe(v)
			single.Observe(v)
			all = append(all, v)
		}
	}
	r.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
	merged := NewSketch(0)
	for _, sh := range shards {
		merged.Merge(sh)
	}
	for _, q := range testQuantiles {
		if got, want := merged.Quantile(q), single.Quantile(q); got != want {
			t.Fatalf("q=%g: merged %g != single %g", q, got, want)
		}
	}
	checkAgainstExact(t, merged, all, "fleet-merge")
}

func TestSketchMergeAlphaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging sketches with different α should panic")
		}
	}()
	a, b := NewSketch(0.01), NewSketch(0.02)
	b.Observe(1)
	a.Merge(b)
}

func TestSketchAgainstSampleTypeSevenQuantile(t *testing.T) {
	// Direct comparison against the estimator the rest of the repo uses:
	// |sketch − sample| ≤ α·sample never holds exactly at interpolation
	// points, so assert the bracket derived in the Quantile doc comment.
	r := rand.New(rand.NewSource(2024))
	values := make([]float64, 977)
	for i := range values {
		values[i] = math.Abs(r.NormFloat64()) * 1e7
	}
	sample := stats.FromFloats(values)
	sk := NewSketch(0)
	for _, v := range values {
		sk.Observe(v)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := sample.Quantile(q)
		got := sk.Quantile(q)
		// The interpolated exact value and the sketch estimate target
		// adjacent order statistics; with α=1% and this sample size they
		// must agree to within ~2α of each other.
		if math.Abs(got-exact) > 2*sk.Alpha()*exact {
			t.Errorf("q=%g: sketch %g vs sample %g differ by more than 2α", q, got, exact)
		}
	}
}

func TestSketchEmptyAndInvalid(t *testing.T) {
	sk := NewSketch(0)
	if !math.IsNaN(sk.Quantile(0.5)) || !math.IsNaN(sk.Min()) || !math.IsNaN(sk.Max()) {
		t.Error("empty sketch should return NaN for quantiles and extremes")
	}
	sk.Observe(math.NaN())
	sk.Observe(math.Inf(1))
	sk.Observe(math.Inf(-1))
	if sk.Count() != 0 {
		t.Errorf("invalid observations must not count: got %d", sk.Count())
	}
	if sk.Invalid() != 3 {
		t.Errorf("Invalid = %d, want 3", sk.Invalid())
	}
	sk.Observe(7)
	if got := sk.Quantile(0.5); got != 7 {
		t.Errorf("single value median = %g, want exactly 7 (min/max clamp)", got)
	}
}

func TestSketchBucketCapCollapse(t *testing.T) {
	sk := NewSketch(0)
	sk.maxBkts = 8
	// 32 values in distinct buckets (powers of gamma^2 are 2 buckets apart).
	g2 := sk.gamma * sk.gamma
	v := 1.0
	var values []float64
	for i := 0; i < 32; i++ {
		values = append(values, v)
		sk.Observe(v)
		v *= g2
	}
	if sk.Buckets() > 8 {
		t.Errorf("bucket cap not enforced: %d buckets", sk.Buckets())
	}
	if sk.Collapsed() == 0 {
		t.Error("expected collapsed observations after exceeding the cap")
	}
	// High quantiles sit above the collapse point and keep the bound.
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.9, 0.95, 0.99, 1} {
		got := sk.Quantile(q)
		pos := q * float64(len(sorted)-1)
		lo := (1 - sk.Alpha()) * sorted[int(math.Floor(pos))]
		hi := (1 + sk.Alpha()) * sorted[int(math.Ceil(pos))]
		if got < lo || got > hi {
			t.Errorf("post-collapse q=%g estimate %g outside [%g, %g]", q, got, lo, hi)
		}
	}
	if sk.Count() != 32 {
		t.Errorf("collapse must not lose counts: %d", sk.Count())
	}
}

func TestSketchResetAndDuration(t *testing.T) {
	sk := NewSketch(0)
	sk.ObserveDuration(10 * time.Millisecond)
	if got := sk.Quantile(0.5); got != float64(10*time.Millisecond) {
		t.Errorf("single duration median = %g", got)
	}
	if sk.Sum() != float64(10*time.Millisecond) {
		t.Errorf("Sum = %g", sk.Sum())
	}
	sk.Reset()
	if sk.Count() != 0 || sk.Buckets() != 0 || !math.IsNaN(sk.Quantile(0.5)) {
		t.Error("Reset did not empty the sketch")
	}
	sk.Observe(3)
	if got := sk.Quantile(1); got != 3 {
		t.Errorf("post-reset max = %g, want 3", got)
	}
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func seq(lo, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(lo + i)
	}
	return out
}

func reverse(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[len(vs)-1-i] = v
	}
	return out
}

func powers(base float64, n int) []float64 {
	out := make([]float64, n)
	v := 1.0
	for i := range out {
		out[i] = v
		v *= base
	}
	return out
}
