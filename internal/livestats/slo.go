package livestats

import (
	"math"

	"chainmon/internal/weaklyhard"
)

// BurnState classifies how much of a weakly-hard (m,k) miss budget the
// current window has consumed. It is ordered by severity so the worst state
// across chains is a plain max.
type BurnState int

const (
	// StateOK: the window has consumed less than half its miss budget.
	StateOK BurnState = iota
	// StateWarning: at least half the budget is consumed but misses remain
	// tolerable (m > 0 and m/2 ≤ misses < m... see thresholds below).
	StateWarning
	// StateBurning: the budget is fully consumed — one more miss in this
	// window violates the constraint.
	StateBurning
	// StateViolated: the current window already exceeds m misses.
	StateViolated
)

func (s BurnState) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateWarning:
		return "warning"
	case StateBurning:
		return "burning"
	case StateViolated:
		return "violated"
	default:
		return "unknown"
	}
}

// SLO tracks a weakly-hard (m,k) constraint as a live service-level
// objective: it slides the window online (wrapping weaklyhard.Counter) and
// classifies the burn state from the fraction of the miss budget the
// current window has consumed.
//
// Burn semantics: with budget m > 0, burn = misses/m. State is ok below
// 1/2, warning in [1/2, 1), burning at exactly 1 (the next miss violates),
// violated above 1. A hard constraint (m = 0) has no budget to burn: any
// miss in the window is an immediate violation, and an empty window is ok.
type SLO struct {
	ctr *weaklyhard.Counter
}

// NewSLO creates an SLO tracker for the constraint (panics if invalid, like
// weaklyhard.NewCounter).
func NewSLO(c weaklyhard.Constraint) *SLO {
	return &SLO{ctr: weaklyhard.NewCounter(c)}
}

// Record registers the outcome of the next execution and returns the
// resulting burn state.
func (s *SLO) Record(miss bool) BurnState {
	s.ctr.Record(miss)
	return s.State()
}

// Counter exposes the underlying sliding-window counter.
func (s *SLO) Counter() *weaklyhard.Counter { return s.ctr }

// State classifies the current window.
func (s *SLO) State() BurnState {
	c := s.ctr.Constraint()
	misses := s.ctr.Misses()
	switch {
	case misses > c.M:
		return StateViolated
	case c.M == 0:
		return StateOK // misses == 0 here; any miss hit the case above
	case misses == c.M:
		return StateBurning
	case 2*misses >= c.M:
		return StateWarning
	default:
		return StateOK
	}
}

// BurnRate returns misses/m for the current window — the fraction of the
// miss budget consumed. A hard constraint (m = 0) reports 0 while clean and
// +Inf once violated.
func (s *SLO) BurnRate() float64 {
	c := s.ctr.Constraint()
	misses := s.ctr.Misses()
	if c.M == 0 {
		if misses > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return float64(misses) / float64(c.M)
}

// SLOSnapshot is a point-in-time view of an SLO, shaped for the /health
// JSON document.
type SLOSnapshot struct {
	M            int     `json:"m"`
	K            int     `json:"k"`
	WindowMisses int     `json:"window_misses"`
	Budget       int     `json:"budget"`
	BurnRate     float64 `json:"burn_rate"`
	State        string  `json:"state"`
	Executions   uint64  `json:"executions"`
	TotalMisses  uint64  `json:"total_misses"`
	Violations   uint64  `json:"violations"`
}

// Snapshot captures the current window and lifetime totals.
func (s *SLO) Snapshot() SLOSnapshot {
	c := s.ctr.Constraint()
	exec, misses, viol := s.ctr.Totals()
	br := s.BurnRate()
	if math.IsInf(br, 1) {
		br = -1 // JSON has no Inf; -1 marks "hard constraint violated"
	}
	return SLOSnapshot{
		M:            c.M,
		K:            c.K,
		WindowMisses: s.ctr.Misses(),
		Budget:       s.ctr.Budget(),
		BurnRate:     br,
		State:        s.State().String(),
		Executions:   exec,
		TotalMisses:  misses,
		Violations:   viol,
	}
}
