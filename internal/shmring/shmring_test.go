package shmring

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing(8)
	for i := uint64(0); i < 5; i++ {
		if !r.Post(Event{Act: i}) {
			t.Fatalf("post %d failed", i)
		}
	}
	for i := uint64(0); i < 5; i++ {
		ev, ok := r.Pop()
		if !ok || ev.Act != i {
			t.Fatalf("pop %d = %v,%v", i, ev, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop on empty ring succeeded")
	}
}

func TestRingFullRejects(t *testing.T) {
	r := NewRing(4)
	for i := uint64(0); i < 4; i++ {
		if !r.Post(Event{Act: i}) {
			t.Fatalf("post %d failed", i)
		}
	}
	if r.Post(Event{Act: 99}) {
		t.Error("post on full ring succeeded")
	}
	if r.Len() != 4 {
		t.Errorf("len = %d", r.Len())
	}
	// After consuming one, a post succeeds again.
	r.Pop()
	if !r.Post(Event{Act: 4}) {
		t.Error("post after pop failed")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing(4)
	for round := uint64(0); round < 20; round++ {
		if !r.Post(Event{Act: round}) {
			t.Fatalf("post %d failed", round)
		}
		ev, ok := r.Pop()
		if !ok || ev.Act != round {
			t.Fatalf("round %d: got %v,%v", round, ev, ok)
		}
	}
}

func TestRingCapacityValidation(t *testing.T) {
	for _, c := range []int{0, -1, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d: expected panic", c)
				}
			}()
			NewRing(c)
		}()
	}
	if NewRing(16).Cap() != 16 {
		t.Error("cap wrong")
	}
}

// Property: under a concurrent producer/consumer pair, the consumer sees
// exactly the accepted events, in order.
func TestRingConcurrentSPSC(t *testing.T) {
	f := func(n uint16) bool {
		count := int(n%2000) + 1
		r := NewRing(64)
		accepted := make(chan uint64, count)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < count; i++ {
				if r.Post(Event{Act: uint64(i)}) {
					accepted <- uint64(i)
				}
			}
			close(accepted)
		}()
		var got []uint64
		done := false
		for !done {
			ev, ok := r.Pop()
			if ok {
				got = append(got, ev.Act)
				continue
			}
			select {
			case _, more := <-accepted:
				if !more {
					done = true
				}
				// put it back conceptually: we only use the channel for
				// termination; re-check ring
			default:
			}
		}
		// Drain leftovers.
		for {
			ev, ok := r.Pop()
			if !ok {
				break
			}
			got = append(got, ev.Act)
		}
		wg.Wait()
		// got must be strictly increasing (order preserved, no dupes).
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMonitorOKPath(t *testing.T) {
	m := NewMonitor()
	exceptions := make(chan uint64, 16)
	// A generous deadline keeps the test robust against scheduling
	// hiccups on loaded, non-realtime test machines.
	seg := m.AddSegment("s", 500*time.Millisecond, 64, func(act uint64, _ time.Duration) {
		exceptions <- act
	})
	m.Start()
	for i := uint64(0); i < 10; i++ {
		seg.PostStart(i)
		time.Sleep(time.Millisecond)
		seg.PostEnd(i)
	}
	// Wake the monitor once more so it drains the final end events.
	time.Sleep(5 * time.Millisecond)
	seg.PostStart(10)
	seg.PostEnd(10)
	time.Sleep(10 * time.Millisecond)
	m.Stop()
	ms := seg.Measurements()
	if ms.Exceptions != 0 {
		t.Errorf("exceptions = %d, want 0", ms.Exceptions)
	}
	if ms.OK < 10 {
		t.Errorf("ok = %d, want ≥10", ms.OK)
	}
	if ms.Dropped != 0 {
		t.Errorf("dropped = %d", ms.Dropped)
	}
	if len(ms.StartPost) != 11 || len(ms.EndPost) != 11 {
		t.Errorf("post samples = %d,%d", len(ms.StartPost), len(ms.EndPost))
	}
	if len(ms.MonLatency) == 0 || len(ms.ScanExec) == 0 {
		t.Error("missing monitor measurements")
	}
}

func TestMonitorRaisesTimeout(t *testing.T) {
	m := NewMonitor()
	exceptions := make(chan uint64, 16)
	seg := m.AddSegment("s", 10*time.Millisecond, 64, func(act uint64, _ time.Duration) {
		exceptions <- act
	})
	m.Start()
	defer m.Stop()
	t0 := time.Now()
	seg.PostStart(7) // never post an end event
	select {
	case act := <-exceptions:
		if act != 7 {
			t.Errorf("exception for act %d, want 7", act)
		}
		elapsed := time.Since(t0)
		if elapsed < 10*time.Millisecond {
			t.Errorf("exception after %v, before the deadline", elapsed)
		}
		if elapsed > 200*time.Millisecond {
			t.Errorf("exception after %v, far too late", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout exception never fired")
	}
}

func TestMonitorEndBeforeDeadlineSuppressesException(t *testing.T) {
	m := NewMonitor()
	exceptions := make(chan uint64, 16)
	seg := m.AddSegment("s", 30*time.Millisecond, 64, func(act uint64, _ time.Duration) {
		exceptions <- act
	})
	m.Start()
	seg.PostStart(1)
	time.Sleep(5 * time.Millisecond)
	seg.PostEnd(1)
	// Nudge the monitor so the end ring is drained before the deadline.
	seg.PostStart(2)
	time.Sleep(2 * time.Millisecond)
	seg.PostEnd(2)
	seg.PostStart(3)
	time.Sleep(50 * time.Millisecond)
	m.Stop()
	// Only activation 3 (no end) may except.
	close(exceptions)
	for act := range exceptions {
		if act != 3 {
			t.Errorf("unexpected exception for act %d", act)
		}
	}
}

func TestMonitorMultipleSegmentsFixedOrder(t *testing.T) {
	m := NewMonitor()
	var order []string
	var mu sync.Mutex
	rec := func(name string) ExceptionFunc {
		return func(uint64, time.Duration) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}
	a := m.AddSegment("a", 10*time.Millisecond, 16, rec("a"))
	b := m.AddSegment("b", 10*time.Millisecond, 16, rec("b"))
	m.Start()
	a.PostStart(0)
	b.PostStart(0)
	time.Sleep(100 * time.Millisecond)
	m.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("exception order = %v, want [a b]", order)
	}
}

func TestMonitorStartAfterStartPanics(t *testing.T) {
	m := NewMonitor()
	m.AddSegment("s", time.Millisecond, 16, nil)
	m.Start()
	defer m.Stop()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Start()
}

func TestMonitorAddSegmentAfterStartPanics(t *testing.T) {
	m := NewMonitor()
	m.AddSegment("s", time.Millisecond, 16, nil)
	m.Start()
	defer m.Stop()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.AddSegment("late", time.Millisecond, 16, nil)
}
