package shmring

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMonitorConcurrentProducersRace exercises the real concurrency shape of
// the shared-memory monitor under the race detector: one producer goroutine
// per segment (the SPSC contract — PostStart/PostEnd and the dropped counter
// are producer-side state) posting against the live monitor goroutine that
// drains the rings and fires timeouts. Ring capacity exceeds the activation
// count, so nothing can drop and every activation must be accounted for as
// either OK or exception.
func TestMonitorConcurrentProducersRace(t *testing.T) {
	const (
		segments = 3
		acts     = 400
		ringCap  = 512 // power of two ≥ acts: drops impossible
		dMon     = 5 * time.Millisecond
	)
	mon := NewMonitor()
	segs := make([]*Segment, segments)
	excs := make([]atomic.Int64, segments)
	for i := range segs {
		i := i
		segs[i] = mon.AddSegment("seg", dMon, ringCap, func(act uint64, deadline time.Duration) {
			excs[i].Add(1)
		})
	}
	mon.Start()

	var wg sync.WaitGroup
	for i, seg := range segs {
		wg.Add(1)
		go func(i int, seg *Segment) {
			defer wg.Done()
			for act := uint64(0); act < acts; act++ {
				seg.PostStart(act)
				// Withhold every 16th end so the timeout path runs
				// concurrently with ring drains; stagger per segment.
				if (act+uint64(i))%16 == 0 {
					continue
				}
				seg.PostEnd(act)
				if act%64 == 0 {
					// Let the monitor goroutine interleave rather than
					// racing through a full ring in one scheduler slice.
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(i, seg)
	}
	wg.Wait()
	// The withheld activations arm timeouts up to dMon past the last post;
	// their timer wakeups drain the rings in the same scan pass, so after
	// the last deadline everything posted has been observed.
	time.Sleep(4 * dMon)
	mon.Stop()

	for i, seg := range segs {
		m := seg.Measurements()
		if m.Dropped != 0 {
			t.Errorf("seg %d: %d events dropped despite oversized ring", i, m.Dropped)
		}
		if total := m.OK + m.Exceptions; total != acts {
			t.Errorf("seg %d: ok %d + exc %d = %d, want %d activations accounted",
				i, m.OK, m.Exceptions, total, acts)
		}
		// Every withheld end must surface as an exception; a slow scheduler
		// may add a few more (end posted after the deadline scan), never fewer.
		if withheld := acts / 16; m.Exceptions < withheld {
			t.Errorf("seg %d: %d exceptions, want at least %d withheld ends",
				i, m.Exceptions, withheld)
		}
		if m.OK == 0 {
			t.Errorf("seg %d: no activation completed in time", i)
		}
		if cb := excs[i].Load(); cb != int64(m.Exceptions) {
			t.Errorf("seg %d: exception callback fired %d times, measurements say %d",
				i, cb, m.Exceptions)
		}
	}
}
