package shmring

import (
	"time"

	"chainmon/internal/telemetry"
)

// segTel is a segment's producer-side probe: the producer goroutine is the
// single writer of the track, the metric handles are atomics shared with
// nobody else. The pointers are pre-resolved at attach time so the posting
// hot path only pays a nil check plus wait-free appends.
type segTel struct {
	track    *telemetry.Track
	label    uint16
	starts   *telemetry.Counter
	ends     *telemetry.Counter
	drops    *telemetry.Counter
	postHist *telemetry.Histogram
}

// monTel is the monitor-goroutine-side probe (single writer: the monitor
// goroutine owns the track).
type monTel struct {
	track    *telemetry.Track
	scans    *telemetry.Counter
	fires    *telemetry.Counter
	depth    *telemetry.Gauge
	scanHist *telemetry.Histogram
}

// AttachTelemetry wires the monitor and its segments to the sink. It must be
// called before Start; a nil sink leaves everything dark. Segments added
// after the call are instrumented too.
func (m *Monitor) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	if m.started {
		panic("shmring: AttachTelemetry after Start")
	}
	m.sink = sink
	m.tel = &monTel{
		track: sink.Rec.Track("shm/monitor"),
		scans: sink.Reg.Counter("chainmon_shm_scans_total",
			"Monitor-thread drain passes."),
		fires: sink.Reg.Counter("chainmon_shm_timeout_fires_total",
			"Local timeouts that expired without an end event."),
		depth: sink.Reg.Gauge("chainmon_shm_timeout_queue_depth",
			"Timeout-queue depth after a monitor pass."),
		scanHist: sink.Reg.Histogram("chainmon_shm_scan_seconds",
			"Monitor pass execution time.", nil),
	}
	for _, s := range m.segments {
		s.attachTelemetry(sink)
	}
}

func (s *Segment) attachTelemetry(sink *telemetry.Sink) {
	seg := telemetry.Label{Name: "segment", Value: s.Name}
	s.tel = &segTel{
		track: sink.Rec.Track("shm/" + s.Name + "/producer"),
		label: sink.Rec.Intern(s.Name),
		starts: sink.Reg.Counter("chainmon_shm_posts_total",
			"Events posted into a segment ring.", seg,
			telemetry.Label{Name: "kind", Value: "start"}),
		ends: sink.Reg.Counter("chainmon_shm_posts_total",
			"Events posted into a segment ring.", seg,
			telemetry.Label{Name: "kind", Value: "end"}),
		drops: sink.Reg.Counter("chainmon_shm_drops_total",
			"Postings dropped because the ring was full.", seg),
		postHist: sink.Reg.Histogram("chainmon_shm_post_seconds",
			"Posting overhead per event.",
			[]int64{100, 250, 500, 1000, 2500, 5000, 10000, 100000, 1000000}, seg),
	}
}

// telLabel returns the segment's interned name, or 0 when uninstrumented.
func (s *Segment) telLabel() uint16 {
	if s.tel == nil {
		return 0
	}
	return s.tel.label
}

// postTelemetry records one posting on the producer track.
func (s *Segment) postTelemetry(kind telemetry.Kind, act uint64, t0, d time.Duration, occupancy int, ok bool) {
	t := s.tel
	if t == nil {
		return
	}
	if ok {
		if kind == telemetry.KindRingPostStart {
			t.starts.Inc()
		} else {
			t.ends.Inc()
		}
	} else {
		kind = telemetry.KindRingDrop
		t.drops.Inc()
	}
	t.track.Append(telemetry.Event{
		TS: int64(t0), Act: act, Arg: int64(occupancy), Kind: kind, Label: t.label,
	})
	t.postHist.Observe(int64(d))
}
