// Package shmring is the wall-clock face of the paper's local monitoring
// transport, kept for the Fig. 11 microbenchmarks: wait-free
// single-producer/single-consumer ring buffers for start and end events,
// and a monitor goroutine that is woken through a semaphore, maintains a
// timeout queue and invokes exception handlers.
//
// Since the runtime refactor the package is thin glue: the ring lives in
// internal/runtime/walltime (it is the walltime EventRing implementation)
// and the drain/timeout-queue algorithm is runtime.Core — the *same* core
// the virtual-time chain experiments verify through internal/monitor. This
// package binds the two to the wall clock and collects the Fig. 11
// measurements (posting overhead, monitor latency, monitor execution
// time), which are the one thing a simulator cannot honestly produce. The
// benchmarks in the repository root measure this code.
//
// In the paper, the rings live in POSIX shared memory between processes
// and the semaphore is a process-shared semaphore; here producer and
// consumer are goroutines in one address space, which exercises the same
// algorithm (wait-free post, semaphore wake, timeout queue) with the same
// memory ordering concerns.
package shmring

import (
	rt "chainmon/internal/runtime"
	"chainmon/internal/runtime/walltime"
)

// Event is one start or end event: the activation index and its timestamp
// in nanoseconds of the monitor's monotonic clock.
type Event = rt.Event

// Ring is the wait-free SPSC ring buffer (see walltime.Ring).
type Ring = walltime.Ring

// NewRing creates a ring with the given capacity, which must be a power of
// two.
func NewRing(capacity int) *Ring { return walltime.NewRing(capacity) }
