package shmring

import (
	"container/heap"
	"runtime"
	"sync"
	"time"

	"chainmon/internal/telemetry"
)

// ExceptionFunc is invoked by the monitor goroutine when a segment's end
// event did not occur within its monitored deadline. It runs on the monitor
// goroutine and must be short and bounded (it plays the role of the
// application exception handler entry).
type ExceptionFunc func(act uint64, deadline time.Duration)

// Segment is one monitored local segment: two rings (start and end events)
// and a deadline.
type Segment struct {
	Name string
	DMon time.Duration

	startRing *Ring
	endRing   *Ring
	mon       *Monitor
	onExc     ExceptionFunc
	tel       *segTel // nil when uninstrumented

	pending map[uint64]time.Duration // activation → absolute deadline

	// Measurements (owned by the monitor goroutine after Start, except the
	// posting overheads which the producer records).
	postStart []time.Duration // posting overhead per start event
	postEnd   []time.Duration // posting overhead per end event
	monLat    []time.Duration // post → processed by the monitor
	excCount  int
	okCount   int
	dropped   int
}

// Monitor is the per-ECU high-priority monitor thread of the paper,
// realized as a dedicated goroutine locked to an OS thread. Producers wake
// it through a binary semaphore; end events do not wake it (saving the
// context switch, as in the paper).
type Monitor struct {
	segments []*Segment
	sem      chan struct{}
	stop     chan struct{}
	done     chan struct{}
	started  bool
	start    time.Time

	timeouts timeoutHeap
	scanExec []time.Duration // execution time per monitor pass

	sink *telemetry.Sink // nil when uninstrumented
	tel  *monTel

	mu sync.Mutex // guards measurement snapshots after Stop
}

// NewMonitor creates a monitor with no segments.
func NewMonitor() *Monitor {
	return &Monitor{
		sem:   make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		start: time.Now(),
	}
}

// now returns nanoseconds since monitor creation (monotonic).
func (m *Monitor) now() time.Duration { return time.Since(m.start) }

// AddSegment registers a segment before Start. ringCap must be a power of
// two.
func (m *Monitor) AddSegment(name string, dMon time.Duration, ringCap int, onExc ExceptionFunc) *Segment {
	if m.started {
		panic("shmring: AddSegment after Start")
	}
	s := &Segment{
		Name:      name,
		DMon:      dMon,
		startRing: NewRing(ringCap),
		endRing:   NewRing(ringCap),
		mon:       m,
		onExc:     onExc,
		pending:   make(map[uint64]time.Duration),
	}
	if m.sink != nil {
		s.attachTelemetry(m.sink)
	}
	m.segments = append(m.segments, s)
	return s
}

// Start launches the monitor goroutine.
func (m *Monitor) Start() {
	if m.started {
		panic("shmring: Start called twice")
	}
	m.started = true
	go m.loop()
}

// Stop terminates the monitor goroutine and waits for it to exit.
func (m *Monitor) Stop() {
	close(m.stop)
	<-m.done
}

// PostStart publishes a start event for the activation and wakes the
// monitor (the instrumented DDS subscriber path). It returns the posting
// overhead, which is also recorded for the Fig. 11 start-event statistic.
func (s *Segment) PostStart(act uint64) time.Duration {
	t0 := s.mon.now()
	ok := s.startRing.Post(Event{Act: act, TS: int64(t0)})
	// Raise the semaphore (non-blocking: a pending wake is enough).
	select {
	case s.mon.sem <- struct{}{}:
	default:
	}
	d := s.mon.now() - t0
	if !ok {
		s.dropped++ // producer-side counter; SPSC contract makes this safe
	}
	s.postStart = append(s.postStart, d)
	if s.tel != nil {
		s.postTelemetry(telemetry.KindRingPostStart, act, t0, d, s.startRing.Len(), ok)
	}
	return d
}

// PostEnd publishes an end event without waking the monitor (processing end
// events is not time critical).
func (s *Segment) PostEnd(act uint64) time.Duration {
	t0 := s.mon.now()
	ok := s.endRing.Post(Event{Act: act, TS: int64(t0)})
	d := s.mon.now() - t0
	if !ok {
		s.dropped++
	}
	s.postEnd = append(s.postEnd, d)
	if s.tel != nil {
		s.postTelemetry(telemetry.KindRingPostEnd, act, t0, d, s.endRing.Len(), ok)
	}
	return d
}

// timeoutHeap orders (deadline, segment, activation) entries.
type timeoutEntry struct {
	deadline time.Duration
	seg      *Segment
	act      uint64
}

type timeoutHeap []timeoutEntry

func (h timeoutHeap) Len() int           { return len(h) }
func (h timeoutHeap) Less(i, j int) bool { return h[i].deadline < h[j].deadline }
func (h timeoutHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timeoutHeap) Push(x any)        { *h = append(*h, x.(timeoutEntry)) }
func (h *timeoutHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// loop is the monitor thread: wait on the semaphore with a timeout at the
// earliest pending deadline (sem_timedwait), then drain all rings in fixed
// order and fire due exceptions.
func (m *Monitor) loop() {
	// The paper runs the monitor thread at the highest real-time priority;
	// the closest Go equivalent is a dedicated OS thread.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	defer close(m.done)

	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		wait := time.Hour
		if len(m.timeouts) > 0 {
			wait = m.timeouts[0].deadline - m.now()
			if wait < 0 {
				wait = 0
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-m.stop:
			return
		case <-m.sem:
		case <-timer.C:
		}
		m.scan()
	}
}

// scan is one monitor pass over all segments in fixed registration order.
func (m *Monitor) scan() {
	t0 := m.now()
	for _, s := range m.segments {
		for {
			ev, ok := s.startRing.Pop()
			if !ok {
				break
			}
			now := m.now()
			s.monLat = append(s.monLat, now-time.Duration(ev.TS))
			deadline := time.Duration(ev.TS) + s.DMon
			s.pending[ev.Act] = deadline
			heap.Push(&m.timeouts, timeoutEntry{deadline: deadline, seg: s, act: ev.Act})
			if m.tel != nil {
				m.tel.track.Append(telemetry.Event{
					TS: int64(now), Act: ev.Act, Arg: int64(deadline),
					Kind: telemetry.KindTimeoutArm, Label: s.telLabel(),
				})
			}
		}
		for {
			ev, ok := s.endRing.Pop()
			if !ok {
				break
			}
			if _, armed := s.pending[ev.Act]; armed {
				delete(s.pending, ev.Act)
				s.okCount++
			}
		}
	}
	now := m.now()
	for len(m.timeouts) > 0 && m.timeouts[0].deadline <= now {
		e := heap.Pop(&m.timeouts).(timeoutEntry)
		if dl, armed := e.seg.pending[e.act]; armed && dl == e.deadline {
			delete(e.seg.pending, e.act)
			e.seg.excCount++
			if m.tel != nil {
				m.tel.fires.Inc()
				m.tel.track.Append(telemetry.Event{
					TS: int64(now), Act: e.act,
					Kind: telemetry.KindTimeoutFire, Label: e.seg.telLabel(),
				})
			}
			if e.seg.onExc != nil {
				e.seg.onExc(e.act, e.deadline)
			}
		}
	}
	exec := m.now() - t0
	m.scanExec = append(m.scanExec, exec)
	if m.tel != nil {
		m.tel.scans.Inc()
		m.tel.scanHist.Observe(int64(exec))
		m.tel.depth.Set(int64(len(m.timeouts)))
		end := int64(t0 + exec)
		m.tel.track.Append(telemetry.Event{
			TS: end, Arg: int64(exec), Kind: telemetry.KindScan,
		})
		m.tel.track.Append(telemetry.Event{
			TS: end, Arg: int64(len(m.timeouts)), Kind: telemetry.KindTimeoutQueue,
		})
	}
}

// Measurements is the Fig. 11 data of one segment plus the shared monitor
// execution times.
type Measurements struct {
	StartPost  []time.Duration
	EndPost    []time.Duration
	MonLatency []time.Duration
	ScanExec   []time.Duration
	OK         int
	Exceptions int
	Dropped    int
}

// Measurements snapshots the collected samples. Call after Stop.
func (s *Segment) Measurements() Measurements {
	s.mon.mu.Lock()
	defer s.mon.mu.Unlock()
	return Measurements{
		StartPost:  append([]time.Duration(nil), s.postStart...),
		EndPost:    append([]time.Duration(nil), s.postEnd...),
		MonLatency: append([]time.Duration(nil), s.monLat...),
		ScanExec:   append([]time.Duration(nil), s.mon.scanExec...),
		OK:         s.okCount,
		Exceptions: s.excCount,
		Dropped:    s.dropped,
	}
}
