package shmring

import (
	"time"

	rt "chainmon/internal/runtime"
	"chainmon/internal/runtime/walltime"
	"chainmon/internal/telemetry"
)

// ExceptionFunc is invoked by the monitor goroutine when a segment's end
// event did not occur within its monitored deadline. It runs on the monitor
// goroutine and must be short and bounded (it plays the role of the
// application exception handler entry).
type ExceptionFunc func(act uint64, deadline time.Duration)

// Segment is one monitored local segment: two rings (start and end events)
// and a deadline. The drain/arm/fire logic is runtime.Core's; this type
// only posts events and collects the Fig. 11 measurements.
type Segment struct {
	Name string
	DMon time.Duration

	startRing *Ring
	endRing   *Ring
	mon       *Monitor
	onExc     ExceptionFunc
	tel       *segTel // nil when uninstrumented

	// Measurements (owned by the monitor goroutine after Start, except the
	// posting overheads which the producer records).
	postStart []time.Duration // posting overhead per start event
	postEnd   []time.Duration // posting overhead per end event
	monLat    []time.Duration // post → processed by the monitor
	excCount  int
	okCount   int
	dropped   int
}

// Monitor is the per-ECU high-priority monitor thread of the paper,
// realized as a dedicated goroutine locked to an OS thread (walltime.Loop)
// driving the shared monitor core (runtime.Core). Producers wake it through
// a binary semaphore; end events do not wake it (saving the context switch,
// as in the paper); the loop otherwise sleeps until the core's earliest
// armed deadline.
type Monitor struct {
	core    *rt.Core
	clock   *walltime.Clock
	sem     *walltime.Sem
	loop    *walltime.Loop
	started bool

	segments []*Segment
	scanExec []time.Duration // execution time per monitor pass

	sink *telemetry.Sink // nil when uninstrumented
	tel  *monTel
}

// NewMonitor creates a monitor with no segments.
func NewMonitor() *Monitor {
	clock := walltime.NewClock()
	sem := walltime.NewSem()
	m := &Monitor{
		core:  rt.NewCore(),
		clock: clock,
		sem:   sem,
		loop:  walltime.NewLoop(clock, sem),
	}
	m.loop.Scan = m.scan
	m.loop.Next = m.core.NextDeadline
	return m
}

// now returns nanoseconds since monitor creation (monotonic).
func (m *Monitor) now() time.Duration { return time.Duration(m.clock.Now()) }

// AddSegment registers a segment before Start. ringCap must be a power of
// two.
func (m *Monitor) AddSegment(name string, dMon time.Duration, ringCap int, onExc ExceptionFunc) *Segment {
	if m.started {
		panic("shmring: AddSegment after Start")
	}
	s := &Segment{
		Name:      name,
		DMon:      dMon,
		startRing: NewRing(ringCap),
		endRing:   NewRing(ringCap),
		mon:       m,
		onExc:     onExc,
	}
	m.core.AddSegment(name, dMon, s.startRing, s.endRing, rt.SegmentHooks{
		DrainLatency: func(lat rt.Duration) {
			s.monLat = append(s.monLat, lat)
		},
		Arm: func(start rt.Event, deadline, now rt.Time) rt.Timer {
			if m.tel != nil {
				m.tel.track.Append(telemetry.Event{
					TS: int64(now), Act: start.Act, Arg: int64(deadline),
					Flow: start.Flow,
					Kind: telemetry.KindTimeoutArm, Label: s.telLabel(),
				})
			}
			return nil // the loop sleeps until Core.NextDeadline
		},
		OK: func(start rt.Event, end rt.Time) {
			s.okCount++
		},
		Expire: func(start rt.Event, deadline, now rt.Time) {
			s.excCount++
			if m.tel != nil {
				m.tel.fires.Inc()
				m.tel.track.Append(telemetry.Event{
					TS: int64(now), Act: start.Act,
					Flow: start.Flow,
					Kind: telemetry.KindTimeoutFire, Label: s.telLabel(),
				})
			}
			if s.onExc != nil {
				s.onExc(start.Act, time.Duration(deadline))
			}
		},
	})
	if m.sink != nil {
		s.attachTelemetry(m.sink)
	}
	m.segments = append(m.segments, s)
	return s
}

// Start launches the monitor goroutine.
func (m *Monitor) Start() {
	if m.started {
		panic("shmring: Start called twice")
	}
	m.started = true
	m.loop.Start()
}

// Stop terminates the monitor goroutine and waits for it to exit.
func (m *Monitor) Stop() {
	m.loop.Stop()
}

// PostStart publishes a start event for the activation and wakes the
// monitor (the instrumented DDS subscriber path). It returns the posting
// overhead, which is also recorded for the Fig. 11 start-event statistic.
func (s *Segment) PostStart(act uint64) time.Duration {
	t0 := s.mon.now()
	ok := s.startRing.Post(Event{Act: act, TS: rt.Time(t0)})
	// Raise the semaphore (non-blocking: a pending wake is enough).
	s.mon.sem.Wake()
	d := s.mon.now() - t0
	if !ok {
		s.dropped++ // producer-side counter; SPSC contract makes this safe
	}
	s.postStart = append(s.postStart, d)
	if s.tel != nil {
		s.postTelemetry(telemetry.KindRingPostStart, act, t0, d, s.startRing.Len(), ok)
	}
	return d
}

// PostEnd publishes an end event without waking the monitor (processing end
// events is not time critical).
func (s *Segment) PostEnd(act uint64) time.Duration {
	t0 := s.mon.now()
	ok := s.endRing.Post(Event{Act: act, TS: rt.Time(t0)})
	d := s.mon.now() - t0
	if !ok {
		s.dropped++
	}
	s.postEnd = append(s.postEnd, d)
	if s.tel != nil {
		s.postTelemetry(telemetry.KindRingPostEnd, act, t0, d, s.endRing.Len(), ok)
	}
	return d
}

// scan is one monitor pass over all segments in fixed registration order,
// delegated to the shared core.
func (m *Monitor) scan() {
	t0 := m.now()
	m.core.Scan(rt.Time(t0))
	exec := m.now() - t0
	m.scanExec = append(m.scanExec, exec)
	if m.tel != nil {
		m.tel.scans.Inc()
		m.tel.scanHist.Observe(int64(exec))
		m.tel.depth.Set(int64(m.core.PendingTimeouts()))
		end := int64(t0 + exec)
		m.tel.track.Append(telemetry.Event{
			TS: end, Arg: int64(exec), Kind: telemetry.KindScan,
		})
		m.tel.track.Append(telemetry.Event{
			TS: end, Arg: int64(m.core.PendingTimeouts()), Kind: telemetry.KindTimeoutQueue,
		})
	}
}

// Measurements is the Fig. 11 data of one segment plus the shared monitor
// execution times.
type Measurements struct {
	StartPost  []time.Duration
	EndPost    []time.Duration
	MonLatency []time.Duration
	ScanExec   []time.Duration
	OK         int
	Exceptions int
	Dropped    int
}

// Measurements snapshots the collected samples. Call after Stop.
func (s *Segment) Measurements() Measurements {
	return Measurements{
		StartPost:  append([]time.Duration(nil), s.postStart...),
		EndPost:    append([]time.Duration(nil), s.postEnd...),
		MonLatency: append([]time.Duration(nil), s.monLat...),
		ScanExec:   append([]time.Duration(nil), s.mon.scanExec...),
		OK:         s.okCount,
		Exceptions: s.excCount,
		Dropped:    s.dropped,
	}
}
