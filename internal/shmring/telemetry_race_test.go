package shmring

import (
	"sync"
	"testing"
	"time"

	"chainmon/internal/telemetry"
)

// TestTelemetryConcurrentAppends runs two producer goroutines and the
// monitor goroutine, all appending to the flight recorder concurrently
// (producers to their per-segment tracks, the monitor to its own, shared
// counters and histograms via atomics). Run under -race in CI: the test's
// assertion is primarily "the race detector stays quiet".
func TestTelemetryConcurrentAppends(t *testing.T) {
	sink := telemetry.NewSink(1 << 10)
	m := NewMonitor()
	m.AttachTelemetry(sink)
	segA := m.AddSegment("race/a", 500*time.Microsecond, 64, nil)
	segB := m.AddSegment("race/b", 500*time.Microsecond, 64, nil)
	m.Start()

	const acts = 400
	var wg sync.WaitGroup
	for _, seg := range []*Segment{segA, segB} {
		wg.Add(1)
		go func(s *Segment) {
			defer wg.Done()
			for act := uint64(1); act <= acts; act++ {
				s.PostStart(act)
				if act%5 != 0 { // every 5th activation times out
					s.PostEnd(act)
				}
				time.Sleep(20 * time.Microsecond)
			}
		}(seg)
	}
	wg.Wait()
	// Give pending timeouts a chance to fire, then stop the monitor.
	time.Sleep(2 * time.Millisecond)
	m.Stop()

	posts := sink.Reg.Counter("chainmon_shm_posts_total",
		"", telemetry.Label{Name: "segment", Value: "race/a"},
		telemetry.Label{Name: "kind", Value: "start"}).Value()
	drops := sink.Reg.Counter("chainmon_shm_drops_total",
		"", telemetry.Label{Name: "segment", Value: "race/a"}).Value()
	if posts+drops != acts {
		t.Fatalf("segment a start posts %d + drops %d != %d activations", posts, drops, acts)
	}
	var total int
	for _, tr := range sink.Rec.Tracks() {
		total += tr.Len()
	}
	if total == 0 {
		t.Fatal("no events recorded")
	}
	// The monitor processed both segments: its track must hold scan events.
	scans := sink.Reg.Counter("chainmon_shm_scans_total", "").Value()
	if scans == 0 {
		t.Fatal("monitor recorded no scans")
	}
}
