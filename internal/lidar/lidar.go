// Package lidar provides the environment-perception workload of the
// Autoware.Auto use case: point clouds, a seeded synthetic scene generator
// (the substitute for the project's recorded pcap data), and the perception
// algorithms the services in Fig. 1 run — fusion, ground classification and
// euclidean clustering into bounding boxes.
//
// The algorithms are real and runnable; for long virtual-time experiments a
// CostModel maps per-frame workload to virtual execution times so that
// thousands of frames can be simulated without executing the geometry.
package lidar

import (
	"fmt"
	"math"

	"chainmon/internal/sim"
)

// Point is one lidar return in vehicle coordinates (meters).
type Point struct {
	X, Y, Z float32
}

// PointCloud is one lidar frame.
type PointCloud struct {
	Frame  string // originating sensor ("front", "rear", "fused", ...)
	Stamp  sim.Time
	Points []Point
}

// Size returns the wire size of the cloud in bytes (16 bytes per point as
// in the ROS2 PointCloud2 x/y/z/intensity layout).
func (pc *PointCloud) Size() int { return 16 * len(pc.Points) }

func (pc *PointCloud) String() string {
	return fmt.Sprintf("cloud(%s, %d pts)", pc.Frame, len(pc.Points))
}

// SceneConfig parameterizes the synthetic environment.
type SceneConfig struct {
	// GroundPoints is the number of ground-plane returns per frame.
	GroundPoints int
	// MaxObjects bounds the number of obstacles in view.
	MaxObjects int
	// PointsPerObject is the mean number of returns per obstacle.
	PointsPerObject int
	// Extent is the half-width of the field of view in meters.
	Extent float32
	// NoiseStd is the measurement noise standard deviation in meters.
	NoiseStd float32
}

// DefaultScene matches a mid-range automotive lidar.
func DefaultScene() SceneConfig {
	return SceneConfig{
		GroundPoints:    6000,
		MaxObjects:      12,
		PointsPerObject: 900,
		Extent:          40,
		NoiseStd:        0.02,
	}
}

// SceneGenerator produces a deterministic sequence of frames. The number of
// visible objects follows a bounded random walk, so workload per frame is
// bursty — the source of the heavy-tailed compute times in the evaluation.
// Materialized frames (NextFrame) keep persistent objects that move with
// constant velocity between frames, so downstream tracking is meaningful.
type SceneGenerator struct {
	cfg     SceneConfig
	rng     *sim.RNG
	objects int
	objs    []sceneObject
}

// sceneObject is one persistent obstacle of the materialized scene.
type sceneObject struct {
	cx, cy float32 // center
	vx, vy float32 // per-frame displacement (m/frame)
	w, h   float32 // half-width and height
}

// NewSceneGenerator creates a generator with its own random stream.
func NewSceneGenerator(cfg SceneConfig, rng *sim.RNG) *SceneGenerator {
	return &SceneGenerator{cfg: cfg, rng: rng.Derive("scene"), objects: cfg.MaxObjects / 2}
}

// step advances the object-count random walk.
func (g *SceneGenerator) step() {
	g.objects += g.rng.Intn(3) - 1
	if g.objects < 0 {
		g.objects = 0
	}
	if g.objects > g.cfg.MaxObjects {
		g.objects = g.cfg.MaxObjects
	}
}

// FrameMeta describes a frame's workload without materializing geometry.
type FrameMeta struct {
	Activation   uint64
	Objects      int
	GroundPoints int
	ObjectPoints int
}

// TotalPoints returns the point count of the frame.
func (f FrameMeta) TotalPoints() int { return f.GroundPoints + f.ObjectPoints }

// NextMeta produces the next frame's workload description only (cheap; used
// by long virtual-time runs).
func (g *SceneGenerator) NextMeta(activation uint64) FrameMeta {
	g.step()
	obj := 0
	for i := 0; i < g.objects; i++ {
		obj += g.cfg.PointsPerObject/2 + g.rng.Intn(g.cfg.PointsPerObject)
	}
	return FrameMeta{
		Activation:   activation,
		Objects:      g.objects,
		GroundPoints: g.cfg.GroundPoints,
		ObjectPoints: obj,
	}
}

// NextFrame materializes the next frame's geometry (used by examples and
// algorithm tests). Obstacles persist across frames and move with constant
// velocity, bouncing at the field-of-view boundary.
func (g *SceneGenerator) NextFrame(activation uint64, frame string, stamp sim.Time) *PointCloud {
	meta := g.NextMeta(activation)
	e := float64(g.cfg.Extent)

	// Synchronize the persistent object set with the walked count.
	for len(g.objs) < meta.Objects {
		g.objs = append(g.objs, sceneObject{
			cx: float32(g.rng.Uniform(-e*0.8, e*0.8)),
			cy: float32(g.rng.Uniform(-e*0.8, e*0.8)),
			// Up to ±1.5 m per frame (≈15 m/s at 10 FPS).
			vx: float32(g.rng.Uniform(-1.5, 1.5)),
			vy: float32(g.rng.Uniform(-1.5, 1.5)),
			w:  float32(g.rng.Uniform(0.5, 2.5)),
			h:  float32(g.rng.Uniform(0.8, 2.2)),
		})
	}
	if len(g.objs) > meta.Objects {
		g.objs = g.objs[:meta.Objects]
	}
	// Move objects; bounce at the boundary.
	bound := float32(e * 0.9)
	for i := range g.objs {
		o := &g.objs[i]
		o.cx += o.vx
		o.cy += o.vy
		if o.cx > bound || o.cx < -bound {
			o.vx = -o.vx
		}
		if o.cy > bound || o.cy < -bound {
			o.vy = -o.vy
		}
	}

	pc := &PointCloud{Frame: frame, Stamp: stamp}
	pc.Points = make([]Point, 0, meta.TotalPoints())
	// Ground plane with slight tilt and noise.
	for i := 0; i < meta.GroundPoints; i++ {
		x := float32(g.rng.Uniform(-e, e))
		y := float32(g.rng.Uniform(-e, e))
		z := 0.01*x + float32(g.rng.Normal(0, float64(g.cfg.NoiseStd)))
		pc.Points = append(pc.Points, Point{x, y, z})
	}
	// Obstacles: boxes of points above the ground.
	remaining := meta.ObjectPoints
	for o := 0; o < len(g.objs) && remaining > 0; o++ {
		n := remaining / (len(g.objs) - o)
		obj := g.objs[o]
		for i := 0; i < n; i++ {
			pc.Points = append(pc.Points, Point{
				obj.cx + float32(g.rng.Uniform(-float64(obj.w), float64(obj.w))),
				obj.cy + float32(g.rng.Uniform(-float64(obj.w), float64(obj.w))),
				float32(g.rng.Uniform(0.3, float64(obj.h))),
			})
		}
		remaining -= n
	}
	return pc
}

// Fuse joins two clouds into one, as the fusion service does with the front
// and rear lidar frames (matched by their timestamps upstream).
func Fuse(a, b *PointCloud) *PointCloud {
	out := &PointCloud{Frame: "fused", Stamp: maxTime(a.Stamp, b.Stamp)}
	out.Points = make([]Point, 0, len(a.Points)+len(b.Points))
	out.Points = append(out.Points, a.Points...)
	out.Points = append(out.Points, b.Points...)
	return out
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// ClassifyGround splits a cloud into ground and non-ground points: a plane
// z = ax + by + c is fitted by least squares to the lowest-z half of the
// cloud, and points within tol of the plane are classified as ground.
func ClassifyGround(pc *PointCloud, tol float32) (ground, nonGround *PointCloud) {
	ground = &PointCloud{Frame: "ground", Stamp: pc.Stamp}
	nonGround = &PointCloud{Frame: "nonground", Stamp: pc.Stamp}
	if len(pc.Points) == 0 {
		return ground, nonGround
	}
	a, b, c := fitPlane(pc.Points)
	for _, p := range pc.Points {
		if float32(math.Abs(float64(p.Z-(a*p.X+b*p.Y+c)))) <= tol {
			ground.Points = append(ground.Points, p)
		} else {
			nonGround.Points = append(nonGround.Points, p)
		}
	}
	return ground, nonGround
}

// fitPlane least-squares fits z = ax + by + c to the low-z portion of the
// cloud (robustness against obstacle points, which sit above ground).
func fitPlane(pts []Point) (a, b, c float32) {
	// Cut at roughly the 40th z-percentile (ground returns dominate the
	// low end), estimated from a coarse histogram to stay O(n).
	minZ, maxZ := pts[0].Z, pts[0].Z
	for _, p := range pts {
		if p.Z < minZ {
			minZ = p.Z
		}
		if p.Z > maxZ {
			maxZ = p.Z
		}
	}
	cut := maxZ
	if maxZ > minZ {
		const bins = 64
		var hist [bins]int
		scale := float32(bins-1) / (maxZ - minZ)
		for _, p := range pts {
			hist[int((p.Z-minZ)*scale)]++
		}
		target := len(pts) * 40 / 100
		acc := 0
		for i, h := range hist {
			acc += h
			if acc >= target {
				cut = minZ + float32(i+1)/scale
				break
			}
		}
	}
	var sx, sy, sz, sxx, syy, sxy, sxz, syz float64
	var n float64
	for _, p := range pts {
		if p.Z > cut {
			continue
		}
		x, y, z := float64(p.X), float64(p.Y), float64(p.Z)
		sx += x
		sy += y
		sz += z
		sxx += x * x
		syy += y * y
		sxy += x * y
		sxz += x * z
		syz += y * z
		n++
	}
	if n < 3 {
		return 0, 0, 0
	}
	// Solve the 3x3 normal equations with Cramer's rule.
	m := [3][3]float64{
		{sxx, sxy, sx},
		{sxy, syy, sy},
		{sx, sy, n},
	}
	rhs := [3]float64{sxz, syz, sz}
	det := det3(m)
	if math.Abs(det) < 1e-9 {
		return 0, 0, float32(sz / n)
	}
	var sol [3]float64
	for i := 0; i < 3; i++ {
		mi := m
		for r := 0; r < 3; r++ {
			mi[r][i] = rhs[r]
		}
		sol[i] = det3(mi) / det
	}
	return float32(sol[0]), float32(sol[1]), float32(sol[2])
}

func det3(m [3][3]float64) float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// BoundingBox is one detected obstacle.
type BoundingBox struct {
	Min, Max Point
	Count    int
}

// Center returns the box center.
func (b BoundingBox) Center() Point {
	return Point{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2, (b.Min.Z + b.Max.Z) / 2}
}

// Cluster groups non-ground points into obstacles by grid-based euclidean
// clustering (the object-detection service): points are hashed into cells
// of cellSize and connected cells (8-neighborhood in x/y) form clusters;
// clusters with fewer than minPts points are discarded as noise.
func Cluster(pc *PointCloud, cellSize float32, minPts int) []BoundingBox {
	if len(pc.Points) == 0 {
		return nil
	}
	type cell struct{ x, y int32 }
	grid := make(map[cell][]int)
	for i, p := range pc.Points {
		c := cell{int32(math.Floor(float64(p.X / cellSize))), int32(math.Floor(float64(p.Y / cellSize)))}
		grid[c] = append(grid[c], i)
	}
	visited := make(map[cell]bool)
	var boxes []BoundingBox
	for start := range grid {
		if visited[start] {
			continue
		}
		// BFS over connected cells.
		queue := []cell{start}
		visited[start] = true
		var members []int
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			members = append(members, grid[c]...)
			for dx := int32(-1); dx <= 1; dx++ {
				for dy := int32(-1); dy <= 1; dy++ {
					n := cell{c.x + dx, c.y + dy}
					if _, ok := grid[n]; ok && !visited[n] {
						visited[n] = true
						queue = append(queue, n)
					}
				}
			}
		}
		if len(members) < minPts {
			continue
		}
		box := BoundingBox{Min: pc.Points[members[0]], Max: pc.Points[members[0]], Count: len(members)}
		for _, i := range members[1:] {
			p := pc.Points[i]
			box.Min.X = min32(box.Min.X, p.X)
			box.Min.Y = min32(box.Min.Y, p.Y)
			box.Min.Z = min32(box.Min.Z, p.Z)
			box.Max.X = max32(box.Max.X, p.X)
			box.Max.Y = max32(box.Max.Y, p.Y)
			box.Max.Z = max32(box.Max.Z, p.Z)
		}
		boxes = append(boxes, box)
	}
	return boxes
}

func min32(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

// CostModel maps per-frame workload to virtual execution times for the
// discrete-event simulation. Per-point costs are calibrated so that the
// segment latency distributions have the same shape as the evaluation's
// (medians of tens of milliseconds, tails to several hundred).
type CostModel struct {
	FusePerPoint     sim.Duration
	ClassifyPerPoint sim.Duration
	ClusterPerPoint  sim.Duration
	PlanPerObject    sim.Duration
	// RenderPerPoint is the cost of taking and rendering one point of a
	// large cloud in the visualization service (rviz2). It dominates the
	// ground topic's reception and is why the evaluation's ground segment
	// misses its deadline more often than the objects segment despite the
	// shorter path.
	RenderPerPoint sim.Duration
	BaseCost       sim.Duration
	// JitterSigma is the log-normal multiplicative jitter applied to each
	// cost sample (cache effects, frequency scaling, migrations).
	JitterSigma float64
}

// DefaultCostModel is calibrated for the Fig. 9 shape on the default scene.
func DefaultCostModel() CostModel {
	return CostModel{
		FusePerPoint:     300 * sim.Nanosecond,
		ClassifyPerPoint: 1600 * sim.Nanosecond,
		ClusterPerPoint:  2300 * sim.Nanosecond,
		PlanPerObject:    200 * sim.Microsecond,
		RenderPerPoint:   3400 * sim.Nanosecond,
		BaseCost:         500 * sim.Microsecond,
		JitterSigma:      0.5,
	}
}

func (c CostModel) jitter(d sim.Duration, rng *sim.RNG) sim.Duration {
	if c.JitterSigma <= 0 {
		return d
	}
	return sim.Duration(float64(d) * math.Exp(c.JitterSigma*rng.Normal(0, 1)))
}

// FuseCost returns the virtual execution time of fusing n points.
func (c CostModel) FuseCost(points int, rng *sim.RNG) sim.Duration {
	return c.jitter(c.BaseCost+sim.Duration(points)*c.FusePerPoint, rng)
}

// ClassifyCost returns the virtual execution time of ground classification.
func (c CostModel) ClassifyCost(points int, rng *sim.RNG) sim.Duration {
	return c.jitter(c.BaseCost+sim.Duration(points)*c.ClassifyPerPoint, rng)
}

// ClusterCost returns the virtual execution time of clustering n non-ground
// points.
func (c CostModel) ClusterCost(points int, rng *sim.RNG) sim.Duration {
	return c.jitter(c.BaseCost+sim.Duration(points)*c.ClusterPerPoint, rng)
}

// PlanCost returns the virtual execution time of consuming n objects.
func (c CostModel) PlanCost(objects int, rng *sim.RNG) sim.Duration {
	return c.jitter(c.BaseCost+sim.Duration(objects)*c.PlanPerObject, rng)
}

// RenderCost returns the virtual cost of taking and rendering an n-point
// cloud in the visualization service.
func (c CostModel) RenderCost(points int, rng *sim.RNG) sim.Duration {
	return c.jitter(c.BaseCost+sim.Duration(points)*c.RenderPerPoint, rng)
}
