package lidar

import (
	"testing"

	"chainmon/internal/sim"
)

func boxAt(x, y float32) BoundingBox {
	return BoundingBox{Min: Point{x - 1, y - 1, 0}, Max: Point{x + 1, y + 1, 2}, Count: 50}
}

func frameTime(i int) sim.Time { return sim.Time(i) * sim.Time(100*sim.Millisecond) }

func TestTrackerMaintainsStableIDs(t *testing.T) {
	tr := NewTracker()
	// One object moving +1 m per frame in x.
	var id int
	for i := 0; i < 5; i++ {
		confirmed := tr.Update([]BoundingBox{boxAt(float32(i), 0)}, frameTime(i))
		if i >= tr.MinHits-1 {
			if len(confirmed) != 1 {
				t.Fatalf("frame %d: confirmed = %d", i, len(confirmed))
			}
			if id == 0 {
				id = confirmed[0].ID
			} else if confirmed[0].ID != id {
				t.Fatalf("frame %d: ID changed %d → %d", i, id, confirmed[0].ID)
			}
		}
	}
}

func TestTrackerEstimatesVelocity(t *testing.T) {
	tr := NewTracker()
	// 2 m per 100 ms = 20 m/s in x.
	var last []*Track
	for i := 0; i < 6; i++ {
		last = tr.Update([]BoundingBox{boxAt(float32(2*i), 0)}, frameTime(i))
	}
	if len(last) != 1 {
		t.Fatalf("confirmed = %d", len(last))
	}
	v := last[0].Velocity.X
	if v < 15 || v > 25 {
		t.Errorf("velocity = %f m/s, want ≈20", v)
	}
	// Prediction extrapolates ahead.
	p := last[0].Predict(frameTime(6))
	if p.X < last[0].Center.X {
		t.Error("prediction went backwards")
	}
}

func TestTrackerSeparatesTwoObjects(t *testing.T) {
	tr := NewTracker()
	var ids map[int]bool
	for i := 0; i < 5; i++ {
		confirmed := tr.Update([]BoundingBox{
			boxAt(float32(i), 10),
			boxAt(float32(-i), -10),
		}, frameTime(i))
		ids = map[int]bool{}
		for _, c := range confirmed {
			ids[c.ID] = true
		}
	}
	if len(ids) != 2 {
		t.Errorf("distinct confirmed IDs = %d, want 2", len(ids))
	}
}

func TestTrackerCoastsAndDrops(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 3; i++ {
		tr.Update([]BoundingBox{boxAt(0, 0)}, frameTime(i))
	}
	if len(tr.Tracks()) != 1 {
		t.Fatal("track not established")
	}
	// The object disappears: the track coasts MaxMisses frames, then drops.
	for i := 3; i < 3+tr.MaxMisses; i++ {
		tr.Update(nil, frameTime(i))
		if len(tr.Tracks()) != 1 {
			t.Fatalf("frame %d: track dropped too early", i)
		}
	}
	tr.Update(nil, frameTime(3+tr.MaxMisses))
	if len(tr.Tracks()) != 0 {
		t.Error("track not dropped after MaxMisses")
	}
}

func TestTrackerReassociatesAfterGap(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 3; i++ {
		tr.Update([]BoundingBox{boxAt(float32(i), 0)}, frameTime(i))
	}
	id := tr.Tracks()[0].ID
	// One missed frame, then the object reappears where predicted.
	tr.Update(nil, frameTime(3))
	confirmed := tr.Update([]BoundingBox{boxAt(4, 0)}, frameTime(4))
	if len(confirmed) != 1 || confirmed[0].ID != id {
		t.Errorf("track not reassociated after gap (confirmed=%v)", confirmed)
	}
}

func TestTrackerGateRejectsFarDetections(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 3; i++ {
		tr.Update([]BoundingBox{boxAt(0, 0)}, frameTime(i))
	}
	// A detection far outside the gate spawns a new track instead of
	// teleporting the old one.
	tr.Update([]BoundingBox{boxAt(50, 50)}, frameTime(3))
	if len(tr.Tracks()) != 2 {
		t.Errorf("tracks = %d, want 2 (old coasting + new)", len(tr.Tracks()))
	}
}

func TestTrackerOnGeneratedScenes(t *testing.T) {
	g := gen()
	tr := NewTracker()
	for i := 0; i < 8; i++ {
		pc := g.NextFrame(uint64(i), "front", frameTime(i))
		_, nonGround := ClassifyGround(pc, 0.15)
		boxes := Cluster(nonGround, 1.5, 30)
		tr.Update(boxes, frameTime(i))
	}
	// Static scene objects should yield confirmed, slow tracks.
	confirmed := 0
	for _, t := range tr.Tracks() {
		if t.Hits >= tr.MinHits {
			confirmed++
		}
	}
	if confirmed == 0 {
		t.Error("no confirmed tracks on generated scenes")
	}
}
