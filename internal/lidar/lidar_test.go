package lidar

import (
	"math"
	"testing"
	"testing/quick"

	"chainmon/internal/sim"
)

func gen() *SceneGenerator {
	return NewSceneGenerator(DefaultScene(), sim.NewRNG(42))
}

func TestSceneGeneratorDeterministic(t *testing.T) {
	a := gen().NextFrame(0, "front", 0)
	b := gen().NextFrame(0, "front", 0)
	if len(a.Points) != len(b.Points) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("same seed produced different frames")
		}
	}
}

func TestSceneMetaMatchesConfig(t *testing.T) {
	g := gen()
	for i := uint64(0); i < 50; i++ {
		m := g.NextMeta(i)
		if m.GroundPoints != DefaultScene().GroundPoints {
			t.Fatalf("ground points = %d", m.GroundPoints)
		}
		if m.Objects < 0 || m.Objects > DefaultScene().MaxObjects {
			t.Fatalf("objects = %d out of range", m.Objects)
		}
		if m.Activation != i {
			t.Fatalf("activation = %d", m.Activation)
		}
	}
}

func TestObjectCountWalkVaries(t *testing.T) {
	g := gen()
	counts := map[int]bool{}
	for i := uint64(0); i < 200; i++ {
		counts[g.NextMeta(i).Objects] = true
	}
	if len(counts) < 3 {
		t.Errorf("object counts barely vary: %v", counts)
	}
}

func TestFuseConcatenatesAndStamps(t *testing.T) {
	a := &PointCloud{Frame: "front", Stamp: 10, Points: []Point{{1, 0, 0}}}
	b := &PointCloud{Frame: "rear", Stamp: 20, Points: []Point{{2, 0, 0}, {3, 0, 0}}}
	f := Fuse(a, b)
	if len(f.Points) != 3 {
		t.Fatalf("fused points = %d", len(f.Points))
	}
	if f.Stamp != 20 {
		t.Errorf("stamp = %v, want max(10,20)", f.Stamp)
	}
	if f.Frame != "fused" {
		t.Errorf("frame = %s", f.Frame)
	}
}

func TestClassifyGroundSeparatesPlane(t *testing.T) {
	g := gen()
	pc := g.NextFrame(0, "front", 0)
	ground, nonGround := ClassifyGround(pc, 0.15)
	if len(ground.Points)+len(nonGround.Points) != len(pc.Points) {
		t.Fatal("classification lost points")
	}
	// Ground points dominate the ground set, object points the other.
	if len(ground.Points) < DefaultScene().GroundPoints*8/10 {
		t.Errorf("ground = %d, expected most of the %d plane points",
			len(ground.Points), DefaultScene().GroundPoints)
	}
	// All obstacle points sit at z ≥ 0.3, so non-ground should be mostly
	// above the plane.
	above := 0
	for _, p := range nonGround.Points {
		if p.Z > 0.2 {
			above++
		}
	}
	if above < len(nonGround.Points)*9/10 {
		t.Errorf("non-ground contains %d/%d low points", len(nonGround.Points)-above, len(nonGround.Points))
	}
}

func TestClassifyGroundEmptyCloud(t *testing.T) {
	g, n := ClassifyGround(&PointCloud{}, 0.1)
	if len(g.Points) != 0 || len(n.Points) != 0 {
		t.Error("empty cloud should classify to empty sets")
	}
}

func TestFitPlaneRecoversKnownPlane(t *testing.T) {
	pts := make([]Point, 0, 400)
	for x := -10; x < 10; x++ {
		for y := -10; y < 10; y++ {
			z := 0.05*float32(x) - 0.02*float32(y) + 1.0
			pts = append(pts, Point{float32(x), float32(y), z})
		}
	}
	a, b, c := fitPlane(pts)
	if math.Abs(float64(a-0.05)) > 0.01 || math.Abs(float64(b+0.02)) > 0.01 || math.Abs(float64(c-1.0)) > 0.05 {
		t.Errorf("plane = %f,%f,%f, want 0.05,-0.02,1.0", a, b, c)
	}
}

func TestClusterFindsSeparatedObjects(t *testing.T) {
	pc := &PointCloud{}
	// Two dense clusters far apart plus isolated noise.
	for i := 0; i < 50; i++ {
		d := float32(i) * 0.01
		pc.Points = append(pc.Points, Point{10 + d, 10 + d, 1})
		pc.Points = append(pc.Points, Point{-10 - d, -10 - d, 1})
	}
	pc.Points = append(pc.Points, Point{30, 30, 1}) // noise
	boxes := Cluster(pc, 1.0, 5)
	if len(boxes) != 2 {
		t.Fatalf("clusters = %d, want 2", len(boxes))
	}
	for _, b := range boxes {
		if b.Count != 50 {
			t.Errorf("cluster size = %d, want 50", b.Count)
		}
	}
}

func TestClusterOnGeneratedScene(t *testing.T) {
	g := gen()
	var found bool
	for i := uint64(0); i < 10 && !found; i++ {
		pc := g.NextFrame(i, "front", 0)
		_, nonGround := ClassifyGround(pc, 0.15)
		boxes := Cluster(nonGround, 1.5, 30)
		if len(boxes) > 0 {
			found = true
			for _, b := range boxes {
				if b.Max.X < b.Min.X || b.Max.Y < b.Min.Y || b.Max.Z < b.Min.Z {
					t.Fatal("degenerate box")
				}
				c := b.Center()
				if c.X < b.Min.X || c.X > b.Max.X {
					t.Fatal("center outside box")
				}
			}
		}
	}
	if !found {
		t.Error("no obstacle detected in 10 generated frames")
	}
}

func TestClusterEmpty(t *testing.T) {
	if Cluster(&PointCloud{}, 1, 1) != nil {
		t.Error("empty cloud should yield no boxes")
	}
}

func TestCloudSize(t *testing.T) {
	pc := &PointCloud{Points: make([]Point, 10)}
	if pc.Size() != 160 {
		t.Errorf("size = %d, want 160", pc.Size())
	}
	if pc.String() == "" {
		t.Error("empty String()")
	}
}

func TestCostModelScalesWithPoints(t *testing.T) {
	cm := DefaultCostModel()
	cm.JitterSigma = 0 // deterministic
	rng := sim.NewRNG(1)
	small := cm.ClassifyCost(1000, rng)
	large := cm.ClassifyCost(100000, rng)
	if large <= small {
		t.Error("cost does not scale with points")
	}
	if small < cm.BaseCost {
		t.Error("cost below base cost")
	}
}

// Property: costs are always positive and monotone in workload when jitter
// is disabled.
func TestCostMonotoneProperty(t *testing.T) {
	cm := DefaultCostModel()
	cm.JitterSigma = 0
	rng := sim.NewRNG(2)
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return cm.FuseCost(x, rng) <= cm.FuseCost(y, rng) &&
			cm.ClusterCost(x, rng) <= cm.ClusterCost(y, rng) &&
			cm.PlanCost(x, rng) <= cm.PlanCost(y, rng) &&
			cm.ClassifyCost(x, rng) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCostJitterSpreads(t *testing.T) {
	cm := DefaultCostModel()
	rng := sim.NewRNG(3)
	seen := map[sim.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[cm.ClassifyCost(10000, rng)] = true
	}
	if len(seen) < 40 {
		t.Errorf("jittered costs barely vary: %d distinct", len(seen))
	}
}
