package lidar

import (
	"math"

	"chainmon/internal/sim"
)

// Track is one object hypothesis maintained across frames by the Tracker.
type Track struct {
	ID int
	// Center is the last associated detection's center.
	Center Point
	// Velocity is the estimated planar velocity in m/s.
	Velocity Point
	// Age is the number of frames since the track was created.
	Age int
	// Misses is the number of consecutive frames without an association.
	Misses int
	// Hits is the total number of associated detections.
	Hits int
	// LastSeen is the timestamp of the last associated detection.
	LastSeen sim.Time
}

// Predict extrapolates the track center to the given time.
func (t *Track) Predict(at sim.Time) Point {
	dt := float32(at.Sub(t.LastSeen)) / float32(sim.Second)
	return Point{
		X: t.Center.X + t.Velocity.X*dt,
		Y: t.Center.Y + t.Velocity.Y*dt,
		Z: t.Center.Z,
	}
}

// Tracker associates bounding-box detections across frames by
// nearest-neighbor gating, maintaining stable IDs and simple constant-
// velocity estimates — the consumer-side processing of the plan service.
type Tracker struct {
	// Gate is the maximum association distance in meters.
	Gate float32
	// MaxMisses is how many frames a track coasts before being dropped.
	MaxMisses int
	// MinHits is how many associations a track needs before being
	// reported as confirmed.
	MinHits int

	tracks []*Track
	nextID int
}

// NewTracker returns a tracker with sensible automotive defaults.
func NewTracker() *Tracker {
	return &Tracker{Gate: 3.0, MaxMisses: 3, MinHits: 2}
}

// Update associates a frame of detections and returns the confirmed tracks.
func (tr *Tracker) Update(boxes []BoundingBox, at sim.Time) []*Track {
	type cand struct {
		track *Track
		box   int
		dist  float32
	}
	// Predicted positions for gating.
	var cands []cand
	for _, t := range tr.tracks {
		p := t.Predict(at)
		for i, b := range boxes {
			d := planarDist(p, b.Center())
			if d <= tr.Gate {
				cands = append(cands, cand{t, i, d})
			}
		}
	}
	// Greedy nearest-neighbor assignment (sufficient for sparse traffic).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].dist < cands[j-1].dist; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	usedTrack := make(map[*Track]bool)
	usedBox := make(map[int]bool)
	for _, c := range cands {
		if usedTrack[c.track] || usedBox[c.box] {
			continue
		}
		usedTrack[c.track] = true
		usedBox[c.box] = true
		tr.associate(c.track, boxes[c.box], at)
	}
	// Unmatched tracks coast; expired ones drop.
	kept := tr.tracks[:0]
	for _, t := range tr.tracks {
		if !usedTrack[t] {
			t.Misses++
			t.Age++
		}
		if t.Misses <= tr.MaxMisses {
			kept = append(kept, t)
		}
	}
	tr.tracks = kept
	// Unmatched detections spawn tracks.
	for i, b := range boxes {
		if !usedBox[i] {
			tr.nextID++
			tr.tracks = append(tr.tracks, &Track{
				ID: tr.nextID, Center: b.Center(), LastSeen: at, Hits: 1, Age: 1,
			})
		}
	}
	// Report confirmed tracks.
	var confirmed []*Track
	for _, t := range tr.tracks {
		if t.Hits >= tr.MinHits {
			confirmed = append(confirmed, t)
		}
	}
	return confirmed
}

func (tr *Tracker) associate(t *Track, b BoundingBox, at sim.Time) {
	c := b.Center()
	dt := float32(at.Sub(t.LastSeen)) / float32(sim.Second)
	if dt > 0 {
		// Exponentially smoothed constant-velocity estimate.
		const alpha = 0.5
		vx := (c.X - t.Center.X) / dt
		vy := (c.Y - t.Center.Y) / dt
		t.Velocity.X = alpha*vx + (1-alpha)*t.Velocity.X
		t.Velocity.Y = alpha*vy + (1-alpha)*t.Velocity.Y
	}
	t.Center = c
	t.LastSeen = at
	t.Hits++
	t.Age++
	t.Misses = 0
}

// Tracks returns all live tracks (confirmed or tentative).
func (tr *Tracker) Tracks() []*Track { return tr.tracks }

func planarDist(a, b Point) float32 {
	dx := float64(a.X - b.X)
	dy := float64(a.Y - b.Y)
	return float32(math.Sqrt(dx*dx + dy*dy))
}
