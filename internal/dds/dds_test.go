package dds

import (
	"testing"

	"chainmon/internal/netsim"
	"chainmon/internal/sim"
	"chainmon/internal/vclock"
)

// newTestDomain builds a two-ECU domain with deterministic, simple costs.
func newTestDomain() (*sim.Kernel, *Domain, *ECU, *ECU) {
	k := sim.NewKernel()
	d := NewDomain(k, sim.NewRNG(1))
	// Strip randomness for exact-latency assertions.
	d.KsoftirqCost = sim.Constant(10 * sim.Microsecond)
	d.DeliverCost = sim.Constant(20 * sim.Microsecond)
	d.InterECU = netsim.Config{BCRT: 500 * sim.Microsecond}
	d.Loopback = netsim.Config{BCRT: 50 * sim.Microsecond}
	e1 := d.NewECU("ecu1", 4, vclock.Config{})
	e2 := d.NewECU("ecu2", 4, vclock.Config{})
	e1.Proc.CtxSwitch = sim.Constant(0)
	e1.Proc.Wakeup = sim.Constant(0)
	e2.Proc.CtxSwitch = sim.Constant(0)
	e2.Proc.Wakeup = sim.Constant(0)
	return k, d, e1, e2
}

func TestPublishDeliversAcrossECUs(t *testing.T) {
	k, _, e1, e2 := newTestDomain()
	n1 := e1.NewNode("sender", PrioExecBase)
	n2 := e2.NewNode("receiver", PrioExecBase)

	var got *Sample
	var at sim.Time
	n2.Subscribe("topic", nil, func(s *Sample) { got = s; at = k.Now() })

	pub := n1.NewPublisher("topic")
	k.At(0, func() { pub.Publish(0, "hello", 0) })
	k.Run()

	if got == nil {
		t.Fatal("sample not delivered")
	}
	if got.Data != "hello" || got.Activation != 0 || got.Topic != "topic" {
		t.Errorf("sample = %+v", got)
	}
	// 500µs network + 10µs ksoftirq + 20µs deliver = 530µs.
	if want := sim.Time(530 * sim.Microsecond); at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
	if got.RecvTime.Sub(got.PubTime) != 530*sim.Microsecond {
		t.Errorf("recv-pub = %v", got.RecvTime.Sub(got.PubTime))
	}
}

func TestLoopbackUsedWithinECU(t *testing.T) {
	k, _, e1, _ := newTestDomain()
	n1 := e1.NewNode("a", PrioExecBase+1)
	n2 := e1.NewNode("b", PrioExecBase)
	var at sim.Time
	n2.Subscribe("t", nil, func(s *Sample) { at = k.Now() })
	pub := n1.NewPublisher("t")
	k.At(0, func() { pub.Publish(0, nil, 0) })
	k.Run()
	// 50µs loopback + 10 + 20 = 80µs.
	if want := sim.Time(80 * sim.Microsecond); at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestSequenceNumbersIncrement(t *testing.T) {
	k, _, e1, e2 := newTestDomain()
	n1 := e1.NewNode("s", PrioExecBase)
	n2 := e2.NewNode("r", PrioExecBase)
	var seqs []uint64
	n2.Subscribe("t", nil, func(s *Sample) { seqs = append(seqs, s.Activation) })
	pub := n1.NewPublisher("t")
	for i := 0; i < 5; i++ {
		i := i
		k.At(sim.Time(i)*sim.Time(sim.Millisecond), func() { pub.Publish(uint64(i), i, 0) })
	}
	k.Run()
	if len(seqs) != 5 {
		t.Fatalf("delivered %d, want 5", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("seqs = %v", seqs)
		}
	}
}

func TestPrePublishVetoSkipsPublication(t *testing.T) {
	k, _, e1, e2 := newTestDomain()
	n1 := e1.NewNode("s", PrioExecBase)
	n2 := e2.NewNode("r", PrioExecBase)
	var acts []uint64
	n2.Subscribe("t", nil, func(s *Sample) { acts = append(acts, s.Activation) })
	pub := n1.NewPublisher("t")
	skip := true
	pub.PrePublish = append(pub.PrePublish, func(*Sample) bool { return !skip })
	k.At(0, func() { pub.Publish(0, nil, 0) }) // vetoed
	k.At(sim.Time(sim.Millisecond), func() {
		skip = false
		pub.Publish(1, nil, 0)
	})
	k.Run()
	if len(acts) != 1 || acts[0] != 1 {
		t.Errorf("acts = %v, want [1] (activation 0 skipped)", acts)
	}
	published, skipped := pub.Stats()
	if published != 1 || skipped != 1 {
		t.Errorf("stats = %d,%d", published, skipped)
	}
}

func TestPublishBypassIgnoresVetoHooks(t *testing.T) {
	k, _, e1, e2 := newTestDomain()
	n1 := e1.NewNode("s", PrioExecBase)
	n2 := e2.NewNode("r", PrioExecBase)
	got := 0
	n2.Subscribe("t", nil, func(s *Sample) { got++ })
	pub := n1.NewPublisher("t")
	pub.PrePublish = append(pub.PrePublish, func(*Sample) bool { return false })
	k.At(0, func() {
		if pub.Publish(0, nil, 0) != nil {
			t.Error("regular publish should have been vetoed")
		}
		if pub.PublishBypass(0, "recovery", 0) == nil {
			t.Error("bypass publish returned nil")
		}
	})
	k.Run()
	if got != 1 {
		t.Errorf("delivered %d, want 1 (bypass only)", got)
	}
}

func TestOnPublishHookObservesSample(t *testing.T) {
	k, _, e1, _ := newTestDomain()
	n1 := e1.NewNode("s", PrioExecBase)
	var observed *Sample
	pub := n1.NewPublisher("t")
	pub.OnPublish = append(pub.OnPublish, func(s *Sample) { observed = s })
	k.At(42, func() { pub.Publish(0, "x", 7) })
	k.Run()
	if observed == nil || observed.PubTime != 42 || observed.Size != 7 {
		t.Errorf("observed = %+v", observed)
	}
}

func TestOnDeliverDiscard(t *testing.T) {
	k, _, e1, e2 := newTestDomain()
	n1 := e1.NewNode("s", PrioExecBase)
	n2 := e2.NewNode("r", PrioExecBase)
	calls := 0
	sub := n2.Subscribe("t", nil, func(s *Sample) { calls++ })
	sub.OnDeliver = append(sub.OnDeliver, func(s *Sample) bool { return s.Activation%2 == 0 })
	pub := n1.NewPublisher("t")
	for i := 0; i < 4; i++ {
		i := i
		k.At(sim.Time(i)*sim.Time(sim.Millisecond), func() { pub.Publish(uint64(i), nil, 0) })
	}
	k.Run()
	if calls != 2 {
		t.Errorf("callback ran %d times, want 2", calls)
	}
	delivered, discarded := sub.Stats()
	if delivered != 2 || discarded != 2 {
		t.Errorf("stats = %d,%d", delivered, discarded)
	}
}

func TestCallbackCostDelaysCompletion(t *testing.T) {
	k, _, e1, _ := newTestDomain()
	n1 := e1.NewNode("s", PrioExecBase+1)
	n2 := e1.NewNode("r", PrioExecBase)
	var done sim.Time
	n2.Subscribe("t", func(*Sample) sim.Duration { return 5 * sim.Millisecond },
		func(s *Sample) { done = k.Now() })
	pub := n1.NewPublisher("t")
	k.At(0, func() { pub.Publish(0, nil, 0) })
	k.Run()
	// 80µs delivery + 5ms callback.
	if want := sim.Time(80*sim.Microsecond + 5*sim.Millisecond); done != want {
		t.Errorf("done at %v, want %v", done, want)
	}
}

func TestMultipleSubscribersEachGetCopy(t *testing.T) {
	k, _, e1, e2 := newTestDomain()
	n1 := e1.NewNode("s", PrioExecBase)
	ra := e1.NewNode("ra", PrioExecBase)
	rb := e2.NewNode("rb", PrioExecBase)
	var sa, sb *Sample
	ra.Subscribe("t", nil, func(s *Sample) { sa = s })
	rb.Subscribe("t", nil, func(s *Sample) { sb = s })
	pub := n1.NewPublisher("t")
	k.At(0, func() { pub.Publish(0, "x", 0) })
	k.Run()
	if sa == nil || sb == nil {
		t.Fatal("not all subscribers received")
	}
	if sa == sb {
		t.Error("subscribers share a sample instance")
	}
	if sa.RecvTime == sb.RecvTime {
		t.Error("loopback and remote delivery should differ in time")
	}
}

func TestInjectReceiveBypassesHooks(t *testing.T) {
	k, _, _, e2 := newTestDomain()
	n2 := e2.NewNode("r", PrioExecBase)
	calls := 0
	sub := n2.Subscribe("t", nil, func(s *Sample) { calls++ })
	sub.OnDeliver = append(sub.OnDeliver, func(*Sample) bool { return false })
	k.At(0, func() { sub.InjectReceive(&Sample{Topic: "t", Data: "recovered"}) })
	k.Run()
	if calls != 1 {
		t.Errorf("callback ran %d times, want 1 (hooks bypassed)", calls)
	}
}

func TestDevicePublishesPeriodically(t *testing.T) {
	k, _, _, e2 := newTestDomain()
	d := e2.Domain
	dev := d.NewDevice("lidar", "points", 100*sim.Millisecond, vclock.Config{})
	dev.Payload = func(n uint64) (any, int) { return n, 100 }
	n2 := e2.NewNode("r", PrioExecBase)
	var times []sim.Time
	var seqs []uint64
	n2.Subscribe("points", nil, func(s *Sample) {
		times = append(times, k.Now())
		seqs = append(seqs, s.Activation)
	})
	dev.Start(0)
	k.RunUntil(sim.Time(450 * sim.Millisecond))
	if len(times) != 5 { // t = 0, 100, 200, 300, 400 ms
		t.Fatalf("received %d samples, want 5", len(times))
	}
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		if gap != 100*sim.Millisecond {
			t.Errorf("gap %d = %v, want 100ms", i, gap)
		}
		if seqs[i] != uint64(i) {
			t.Errorf("seq[%d] = %d", i, seqs[i])
		}
	}
}

func TestDeviceJitterShiftsActivations(t *testing.T) {
	k, _, _, e2 := newTestDomain()
	d := e2.Domain
	dev := d.NewDevice("lidar", "points", 100*sim.Millisecond, vclock.Config{})
	dev.Jitter = sim.Constant(3 * sim.Millisecond)
	n2 := e2.NewNode("r", PrioExecBase)
	var first sim.Time
	n2.Subscribe("points", nil, func(s *Sample) {
		if first == 0 {
			first = k.Now()
		}
	})
	dev.Start(0)
	k.RunUntil(sim.Time(50 * sim.Millisecond))
	// 3ms jitter + 500µs net + 30µs stack.
	if want := sim.Time(3*sim.Millisecond + 530*sim.Microsecond); first != want {
		t.Errorf("first delivery at %v, want %v", first, want)
	}
}

func TestDeviceStop(t *testing.T) {
	k, _, _, e2 := newTestDomain()
	d := e2.Domain
	dev := d.NewDevice("lidar", "points", 10*sim.Millisecond, vclock.Config{})
	n2 := e2.NewNode("r", PrioExecBase)
	count := 0
	n2.Subscribe("points", nil, func(s *Sample) { count++ })
	dev.Start(0)
	k.At(sim.Time(35*sim.Millisecond), dev.Stop)
	k.RunUntil(sim.Time(200 * sim.Millisecond))
	if count != 4 { // 0,10,20,30
		t.Errorf("count = %d, want 4", count)
	}
}

func TestSrcTimestampUsesLocalClock(t *testing.T) {
	k := sim.NewKernel()
	d := NewDomain(k, sim.NewRNG(9))
	e1 := d.NewECU("e1", 2, vclock.Config{Epsilon: 50 * sim.Microsecond, DriftStep: 50 * sim.Microsecond})
	n1 := e1.NewNode("s", PrioExecBase)
	pub := n1.NewPublisher("t")
	var s *Sample
	k.At(sim.Time(5*sim.Second), func() { s = pub.Publish(0, nil, 0) })
	k.Run()
	if s == nil {
		t.Fatal("no sample")
	}
	diff := s.SrcTimestamp.Sub(s.PubTime)
	if diff == 0 {
		t.Log("offset happened to be zero (acceptable but unlikely)")
	}
	if diff > 50*sim.Microsecond || diff < -50*sim.Microsecond {
		t.Errorf("timestamp offset %v exceeds ε", diff)
	}
}

func TestLifespanDropsStaleSamples(t *testing.T) {
	k, d, e1, e2 := newTestDomain()
	// A slow link: 30 ms latency exceeds a 10 ms lifespan.
	d.SetLink("ecu1", "ecu2", netsim.Config{BCRT: 30 * sim.Millisecond})
	n1 := e1.NewNode("s", PrioExecBase)
	n2 := e2.NewNode("r", PrioExecBase)
	calls := 0
	sub := n2.Subscribe("t", nil, func(s *Sample) { calls++ })
	sub.Lifespan = 10 * sim.Millisecond
	pub := n1.NewPublisher("t")
	k.At(0, func() { pub.Publish(0, nil, 0) })
	k.Run()
	if calls != 0 {
		t.Error("stale sample reached the application")
	}
	if sub.Expired() != 1 {
		t.Errorf("expired = %d, want 1", sub.Expired())
	}
	// Fresh samples pass.
	sub.Lifespan = 100 * sim.Millisecond
	k.At(k.Now()+1, func() { pub.Publish(1, nil, 0) })
	k.Run()
	if calls != 1 || sub.Expired() != 1 {
		t.Errorf("calls=%d expired=%d after loosening lifespan", calls, sub.Expired())
	}
}

func TestDropOnWireLosesTransmission(t *testing.T) {
	k, _, e1, e2 := newTestDomain()
	n1 := e1.NewNode("s", PrioExecBase)
	n2 := e2.NewNode("r", PrioExecBase)
	calls := 0
	n2.Subscribe("t", nil, func(s *Sample) { calls++ })
	pub := n1.NewPublisher("t")
	published := 0
	pub.OnPublish = append(pub.OnPublish, func(*Sample) { published++ })
	pub.DropOnWire = append(pub.DropOnWire, func(s *Sample) bool { return s.Activation == 1 })
	for i := 0; i < 3; i++ {
		act := uint64(i)
		k.At(sim.Time(i)*sim.Time(sim.Millisecond), func() { pub.Publish(act, nil, 0) })
	}
	k.Run()
	if published != 3 {
		t.Errorf("published = %d, want 3 (publication event happens)", published)
	}
	if calls != 2 {
		t.Errorf("delivered = %d, want 2 (one lost on the wire)", calls)
	}
}

func TestNodeTimerFiresPeriodically(t *testing.T) {
	k, _, e1, _ := newTestDomain()
	n := e1.NewNode("app", PrioExecBase)
	var fired []uint64
	var times []sim.Time
	tm := n.NewTimer(10*sim.Millisecond, sim.Constant(sim.Millisecond), func(i uint64) {
		fired = append(fired, i)
		times = append(times, k.Now())
	})
	tm.Start(0)
	k.At(sim.Time(45*sim.Millisecond), tm.Stop)
	k.RunUntil(sim.Time(100 * sim.Millisecond))
	if len(fired) != 5 { // t = 0,10,20,30,40 ms
		t.Fatalf("fired %d times, want 5", len(fired))
	}
	for i, idx := range fired {
		if idx != uint64(i) {
			t.Errorf("firing index %d = %d", i, idx)
		}
	}
	// Each callback completes 1 ms (its cost) after the grid point.
	if times[1] != sim.Time(11*sim.Millisecond) {
		t.Errorf("second firing completed at %v", times[1])
	}
	if tm.Firings() != 5 {
		t.Errorf("Firings() = %d", tm.Firings())
	}
}

func TestNodeTimerValidation(t *testing.T) {
	_, _, e1, _ := newTestDomain()
	n := e1.NewNode("app", PrioExecBase)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero period")
		}
	}()
	n.NewTimer(0, nil, nil)
}

func TestSampleString(t *testing.T) {
	s := &Sample{Topic: "t", Activation: 3, SrcTimestamp: sim.Time(sim.Millisecond)}
	if s.String() != "t#3@1ms" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestDeliverLocalRunsHooksAndCallback(t *testing.T) {
	k, _, _, e2 := newTestDomain()
	n := e2.NewNode("r", PrioExecBase)
	hooks, calls := 0, 0
	sub := n.Subscribe("t", nil, func(s *Sample) { calls++ })
	sub.OnDeliver = append(sub.OnDeliver, func(*Sample) bool { hooks++; return true })
	k.At(0, func() { sub.DeliverLocal(&Sample{Topic: "t", Activation: 1}) })
	k.Run()
	if hooks != 1 || calls != 1 {
		t.Errorf("hooks=%d calls=%d, want 1,1", hooks, calls)
	}
	// A vetoing hook discards before the callback.
	sub.OnDeliver = append(sub.OnDeliver, func(*Sample) bool { return false })
	k.At(k.Now()+1, func() { sub.DeliverLocal(&Sample{Topic: "t", Activation: 2}) })
	k.Run()
	if calls != 1 {
		t.Errorf("vetoed DeliverLocal reached the callback")
	}
	if _, discarded := sub.Stats(); discarded != 1 {
		t.Errorf("discarded = %d, want 1", discarded)
	}
}

func TestDomainAccessors(t *testing.T) {
	k, d, e1, _ := newTestDomain()
	if d.Kernel() != k || d.RNG() == nil {
		t.Error("domain accessors wrong")
	}
	if len(d.ECUs()) != 2 {
		t.Errorf("ECUs = %d", len(d.ECUs()))
	}
	n := e1.NewNode("x", PrioExecBase)
	if len(e1.Nodes()) == 0 {
		t.Error("Nodes() empty")
	}
	sub := n.Subscribe("t", nil, nil)
	if sub.Node() != n {
		t.Error("Node() wrong")
	}
}
