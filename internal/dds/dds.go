// Package dds is a data-centric publish/subscribe middleware modelled after
// the DDS middlewares ROS2 is built on (the paper uses eProsima Fast-RTPS).
// It provides domains, ECUs, nodes with single-threaded executors,
// publishers, subscriptions, and periodic sensor devices — all running in
// virtual time on the sim kernel.
//
// Samples carry the publisher's source timestamp (read from the sender's
// local PTP-synchronized clock), which is what the paper's
// synchronization-based remote monitoring interprets at the receiver.
//
// Monitors attach through three hook points that correspond exactly to the
// paper's observable communication events:
//
//   - Publisher.PrePublish — may veto a publication (the local monitor's
//     "skip next publication" propagation mechanism);
//   - Publisher.OnPublish — publication events (local segment start/end);
//   - Subscription.OnDeliver — receive events in the DDS subscriber, before
//     the application callback is dispatched (remote monitor timer
//     reprogramming, late-sample discard, local segment start/end).
package dds

import (
	"fmt"

	"chainmon/internal/netsim"
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
	"chainmon/internal/vclock"
)

// Thread priorities used across an ECU, mirroring the evaluation setup:
// the monitor thread has the highest priority, the ksoftirq threads (network
// interrupt handling) sit just below, middleware listener threads next, and
// executor threads are assigned descending priorities per process.
const (
	PrioMonitor  = 1000
	PrioKsoftirq = 900
	PrioMiddle   = 500
	PrioExecBase = 100
)

// Sample is one published message instance.
type Sample struct {
	Topic string
	// Writer identifies the publisher (DDS topic key for keyed monitors).
	Writer string
	// Activation is the chain execution index n this sample belongs to.
	// It is assigned by the application (derived from the activation of the
	// input that triggered the computation; sensor devices count their own
	// activations), so that the n-th events of all segments of a chain
	// correspond even when a publication is omitted for propagation.
	Activation uint64
	// SrcTimestamp is the sender's local clock at publication time; it is
	// transmitted with the data as in DDS.
	SrcTimestamp sim.Time
	// PubTime is the global time of publication (tracing only — a real
	// system never sees this).
	PubTime sim.Time
	// RecvTime is the global time of delivery at the subscriber, filled in
	// by the middleware before OnDeliver hooks run.
	RecvTime sim.Time
	// Size in bytes, drives transmission time.
	Size int
	// Data is the application payload.
	Data any
	// Recovered marks samples synthesized by a remote-segment recovery
	// handler (issue_receive in Algorithm 1); the remote monitor passes
	// them through without touching its expectation state.
	Recovered bool
}

func (s *Sample) String() string {
	return fmt.Sprintf("%s#%d@%v", s.Topic, s.Activation, sim.Duration(s.SrcTimestamp))
}

// Domain is the set of ECUs and the communication fabric between them.
type Domain struct {
	k   *sim.Kernel
	rng *sim.RNG

	ecus  []*ECU
	subs  map[string][]*Subscription // topic → subscriptions
	links map[linkKey]*netsim.Link

	sink       *telemetry.Sink // nil when uninstrumented
	ddsTels    map[string]*ddsTel
	flowScopes map[string]uint8 // topic → flow scope id

	// InterECU is the link configuration used when two ECUs communicate
	// and no explicit link was installed. Defaults to netsim.Ethernet().
	InterECU netsim.Config
	// Loopback is the intra-ECU link configuration.
	// Defaults to netsim.Loopback().
	Loopback netsim.Config
	// KsoftirqCost is the per-message network-stack processing cost on the
	// receiving ECU (runs at PrioKsoftirq).
	KsoftirqCost sim.Dist
	// DeliverCost is the per-message middleware processing cost at the
	// receiver (deserialization, history cache; runs at PrioMiddle).
	DeliverCost sim.Dist
}

type linkKey struct{ from, to string }

// NewDomain creates an empty domain on the kernel.
func NewDomain(k *sim.Kernel, rng *sim.RNG) *Domain {
	return &Domain{
		k:            k,
		rng:          rng.Derive("dds"),
		subs:         make(map[string][]*Subscription),
		links:        make(map[linkKey]*netsim.Link),
		InterECU:     netsim.Ethernet(),
		Loopback:     netsim.Loopback(),
		KsoftirqCost: sim.LogNormalDist{Median: 8 * sim.Microsecond, Sigma: 0.5, Shift: 2 * sim.Microsecond, Max: 200 * sim.Microsecond},
		DeliverCost:  sim.LogNormalDist{Median: 15 * sim.Microsecond, Sigma: 0.5, Shift: 5 * sim.Microsecond, Max: 500 * sim.Microsecond},
	}
}

// Kernel returns the simulation kernel.
func (d *Domain) Kernel() *sim.Kernel { return d.k }

// RNG returns the domain's random stream.
func (d *Domain) RNG() *sim.RNG { return d.rng }

// ECUs returns the registered ECUs.
func (d *Domain) ECUs() []*ECU { return d.ecus }

// ECU is one processing resource: a multicore processor with a local
// PTP-synchronized clock and the kernel threads of the receive path.
type ECU struct {
	Name   string
	Domain *Domain
	Proc   *sim.Processor
	Clock  *vclock.Clock

	// Ksoftirq handles incoming network traffic, just below the monitor
	// thread's priority as in the paper's evaluation setup.
	Ksoftirq *sim.Thread

	nodes []*Node
}

// NewECU registers a processing resource in the domain.
func (d *Domain) NewECU(name string, cores int, clockCfg vclock.Config) *ECU {
	proc := sim.NewProcessor(d.k, d.rng, name, cores)
	proc.CtxSwitch = sim.LogNormalDist{Median: 2 * sim.Microsecond, Sigma: 0.4, Max: 50 * sim.Microsecond}
	proc.Wakeup = sim.MixtureDist{
		Base:     sim.LogNormalDist{Median: 5 * sim.Microsecond, Sigma: 0.5, Shift: 1 * sim.Microsecond, Max: 100 * sim.Microsecond},
		Tail:     sim.LogNormalDist{Median: 80 * sim.Microsecond, Sigma: 0.6, Max: 2 * sim.Millisecond},
		TailProb: 0.002,
	}
	e := &ECU{
		Name:   name,
		Domain: d,
		Proc:   proc,
		Clock:  vclock.New(d.k, d.rng, name, clockCfg),
	}
	e.Ksoftirq = proc.NewThread(name+"/ksoftirq", PrioKsoftirq)
	d.ecus = append(d.ecus, e)
	return e
}

// SetLink installs an explicit unidirectional link between two ECUs (or from
// a Device's virtual ECU name).
func (d *Domain) SetLink(from, to string, cfg netsim.Config) *netsim.Link {
	l := netsim.NewLink(d.k, d.rng, from+"→"+to, cfg)
	l.AttachTelemetry(d.sink)
	d.links[linkKey{from, to}] = l
	return l
}

// Link returns the link used from one resource to another, creating it with
// the domain defaults on first use.
func (d *Domain) Link(from, to string) *netsim.Link {
	key := linkKey{from, to}
	if l, ok := d.links[key]; ok {
		return l
	}
	cfg := d.InterECU
	if from == to {
		cfg = d.Loopback
	}
	l := netsim.NewLink(d.k, d.rng, from+"→"+to, cfg)
	l.AttachTelemetry(d.sink)
	d.links[key] = l
	return l
}

// Node is a single-threaded process (a ROS node / service): an executor
// thread dispatching application callbacks plus a middleware listener
// thread handling the receive path.
type Node struct {
	Name string
	ECU  *ECU

	// Exec is the executor thread running application callbacks.
	Exec *sim.Thread
	// Middleware is the DDS listener thread (deserialization, QoS timers in
	// the unoptimized Fig. 12 variant).
	Middleware *sim.Thread
}

// NewNode creates a process on the ECU. execPrio is the executor thread
// priority (the paper assigns descending priorities per process).
func (e *ECU) NewNode(name string, execPrio int) *Node {
	n := &Node{
		Name:       name,
		ECU:        e,
		Exec:       e.Proc.NewThread(name+"/exec", execPrio),
		Middleware: e.Proc.NewThread(name+"/mw", PrioMiddle),
	}
	e.nodes = append(e.nodes, n)
	return n
}

// Nodes returns the processes on this ECU.
func (e *ECU) Nodes() []*Node { return e.nodes }

// Timer is a periodic executor callback (the ROS2 timer callback type).
type Timer struct {
	node    *Node
	period  sim.Duration
	cost    sim.Dist
	fn      func(n uint64)
	n       uint64
	stopped bool
}

// NewTimer registers a periodic callback on the node's executor: every
// period, a work item with a sampled cost is queued; fn receives the firing
// index. Call Start to begin.
func (n *Node) NewTimer(period sim.Duration, cost sim.Dist, fn func(n uint64)) *Timer {
	if period <= 0 {
		panic("dds: timer needs a positive period")
	}
	if cost == nil {
		cost = sim.Constant(0)
	}
	return &Timer{node: n, period: period, cost: cost, fn: fn}
}

// Start begins firing at the given offset.
func (t *Timer) Start(offset sim.Time) {
	d := t.node.ECU.Domain
	var fire func()
	fire = func() {
		if t.stopped {
			return
		}
		idx := t.n
		t.n++
		t.node.Exec.Enqueue("timer", t.cost.Sample(d.rng), func() {
			if t.fn != nil {
				t.fn(idx)
			}
		})
		d.k.After(t.period, fire)
	}
	d.k.At(offset, fire)
}

// Stop halts the timer after the current period.
func (t *Timer) Stop() { t.stopped = true }

// Firings returns how many times the timer has fired.
func (t *Timer) Firings() uint64 { return t.n }

// Publisher writes samples on a topic.
type Publisher struct {
	node   *Node
	domain *Domain
	Topic  string
	Writer string

	// PrePublish hooks run before a sample is sent; if any returns false
	// the publication is skipped entirely. This is the mechanism behind
	// the local monitor's skip-next-publication propagation.
	PrePublish []func(*Sample) bool
	// OnPublish hooks observe successful publication events.
	OnPublish []func(*Sample)
	// DropOnWire hooks run after the publication event but before network
	// routing; returning true loses the sample on the wire (fault
	// injection: the publication happened, the transmission did not).
	DropOnWire []func(*Sample) bool

	published uint64
	skipped   uint64
}

// NewPublisher creates a publisher for the node.
func (n *Node) NewPublisher(topic string) *Publisher {
	return &Publisher{
		node:   n,
		domain: n.ECU.Domain,
		Topic:  topic,
		Writer: n.Name + "/" + topic,
	}
}

// Stats returns publication counters.
func (p *Publisher) Stats() (published, skipped uint64) { return p.published, p.skipped }

// Publish sends a sample for the given activation to all subscriptions of
// the topic. It must be called from simulation context (inside a work item
// or kernel event). It returns the sample, or nil if a PrePublish hook
// vetoed.
func (p *Publisher) Publish(activation uint64, data any, size int) *Sample {
	now := p.domain.k.Now()
	s := &Sample{
		Topic:        p.Topic,
		Writer:       p.Writer,
		Activation:   activation,
		SrcTimestamp: p.node.ECU.Clock.Now(),
		PubTime:      now,
		Size:         size,
		Data:         data,
	}
	for _, hook := range p.PrePublish {
		if !hook(s) {
			p.skipped++
			if p.domain.sink != nil {
				p.domain.telSkip(p.node.ECU.Name, s)
			}
			return nil
		}
	}
	p.published++
	for _, hook := range p.OnPublish {
		hook(s)
	}
	if p.domain.sink != nil {
		p.domain.telSend(p.node.ECU.Name, s)
	}
	for _, hook := range p.DropOnWire {
		if hook(s) {
			return s
		}
	}
	p.domain.route(p.node.ECU.Name, s)
	return s
}

// PublishBypass sends a sample without running PrePublish hooks. The local
// monitor uses it to publish recovery data from an exception handler: the
// recovery publication must not be vetoed by the monitor's own skip entry
// for the activation.
func (p *Publisher) PublishBypass(activation uint64, data any, size int) *Sample {
	s := &Sample{
		Topic:        p.Topic,
		Writer:       p.Writer,
		Activation:   activation,
		SrcTimestamp: p.node.ECU.Clock.Now(),
		PubTime:      p.domain.k.Now(),
		Size:         size,
		Data:         data,
	}
	p.published++
	for _, hook := range p.OnPublish {
		hook(s)
	}
	if p.domain.sink != nil {
		p.domain.telSend(p.node.ECU.Name, s)
	}
	for _, hook := range p.DropOnWire {
		if hook(s) {
			return s
		}
	}
	p.domain.route(p.node.ECU.Name, s)
	return s
}

// route delivers a sample to every subscription of its topic.
func (d *Domain) route(fromECU string, s *Sample) {
	var flow uint32
	if d.sink != nil {
		flow = d.flowFor(s.Topic, s.Activation)
	}
	for _, sub := range d.subs[s.Topic] {
		sub := sub
		link := d.Link(fromECU, sub.node.ECU.Name)
		// Each subscription gets its own copy so RecvTime and hook
		// decisions do not leak across receivers.
		dup := *s
		link.SendTagged(s.Size, s.Activation, flow, func() { sub.arrive(&dup) })
	}
}

// Subscription receives samples of one topic at a node.
type Subscription struct {
	node  *Node
	Topic string

	// OnDeliver hooks run on the middleware thread when a sample arrives,
	// before the application callback is scheduled. Returning false
	// discards the sample (late messages after an exception are discarded
	// to keep the constant-rate assumption, §IV-B.3).
	OnDeliver []func(*Sample) bool

	// Callback is the application logic, dispatched on the executor.
	Callback func(*Sample)
	// Cost models the callback execution time as a function of the sample
	// (data-dependent compute). Nil means zero cost.
	Cost func(*Sample) sim.Duration
	// DeliverCost overrides the domain's middleware processing cost for
	// this subscription (deserialization and message take, which grow with
	// payload size — e.g. rviz2 taking a large point cloud). Nil uses the
	// domain default.
	DeliverCost func(*Sample) sim.Duration
	// Lifespan is the DDS lifespan QoS: samples whose source timestamp is
	// older than this (judged against the receiver's local clock) are
	// dropped before the OnDeliver hooks run. Zero disables the QoS.
	Lifespan sim.Duration

	expired uint64

	delivered uint64
	discarded uint64
}

// Subscribe registers a subscription on the topic.
func (n *Node) Subscribe(topic string, cost func(*Sample) sim.Duration, cb func(*Sample)) *Subscription {
	sub := &Subscription{node: n, Topic: topic, Callback: cb, Cost: cost}
	d := n.ECU.Domain
	d.subs[topic] = append(d.subs[topic], sub)
	return sub
}

// Node returns the subscribing node.
func (s *Subscription) Node() *Node { return s.node }

// Stats returns delivery counters: samples that reached the application
// callback and samples discarded by OnDeliver hooks.
func (s *Subscription) Stats() (delivered, discarded uint64) { return s.delivered, s.discarded }

// Expired returns the number of samples dropped by the lifespan QoS.
func (s *Subscription) Expired() uint64 { return s.expired }

// arrive is the receive path: ksoftirq → middleware thread → hooks →
// executor callback.
func (sub *Subscription) arrive(s *Sample) {
	e := sub.node.ECU
	d := e.Domain
	e.Ksoftirq.Enqueue("rx/"+s.Topic, d.KsoftirqCost.Sample(d.rng), func() {
		cost := d.DeliverCost.Sample(d.rng)
		if sub.DeliverCost != nil {
			cost = sub.DeliverCost(s)
		}
		sub.node.Middleware.Enqueue("deliver/"+s.Topic, cost, func() {
			s.RecvTime = d.k.Now()
			if sub.Lifespan > 0 && e.Clock.Now().Sub(s.SrcTimestamp) > sub.Lifespan {
				sub.expired++
				return
			}
			if d.sink != nil {
				d.telRecv(e.Name, s)
			}
			for _, hook := range sub.OnDeliver {
				if !hook(s) {
					sub.discarded++
					return
				}
			}
			sub.dispatch(s)
		})
	})
}

// dispatch schedules the application callback on the executor. It is also
// used by remote-monitor recovery handlers to issue a substitute receive
// event (Algorithm 1, issue_receive).
func (sub *Subscription) dispatch(s *Sample) {
	sub.delivered++
	var cost sim.Duration
	if sub.Cost != nil {
		cost = sub.Cost(s)
	}
	sub.node.Exec.Enqueue("cb/"+s.Topic, cost, func() {
		if sub.Callback != nil {
			sub.Callback(s)
		}
	})
}

// InjectReceive delivers a synthesized sample directly to the application
// callback, bypassing network and hooks.
func (sub *Subscription) InjectReceive(s *Sample) {
	sub.dispatch(s)
}

// DeliverLocal runs the full local delivery path (OnDeliver hooks, then the
// application callback) for a synthesized sample, without network or kernel
// receive costs. Remote-segment recovery handlers use it to issue the
// receive event with recovered data so that downstream monitors observe a
// regular start event.
func (sub *Subscription) DeliverLocal(s *Sample) {
	s.RecvTime = sub.node.ECU.Domain.k.Now()
	for _, hook := range sub.OnDeliver {
		if !hook(s) {
			sub.discarded++
			return
		}
	}
	sub.dispatch(s)
}

// Device is a sensor (e.g. a lidar) that publishes a topic periodically
// from its own resource, with optional activation jitter. It owns a clock
// but no processor: sensors are fixed-function hardware.
type Device struct {
	Name   string
	Clock  *vclock.Clock
	domain *Domain
	Topic  string
	Writer string
	seq    uint64

	Period sim.Duration
	// Jitter delays each activation relative to the periodic grid (J^a).
	Jitter sim.Dist
	// Payload produces the data and size for activation n.
	Payload func(n uint64) (any, int)
	// Perturb, if set, lets experiments inject faults per activation:
	// drop suppresses the publication entirely, delay shifts it.
	Perturb func(n uint64) (drop bool, delay sim.Duration)

	// OnPublish hooks observe the device's publication events.
	OnPublish []func(*Sample)

	stopped bool
}

// NewDevice creates a periodic sensor device in the domain.
func (d *Domain) NewDevice(name, topic string, period sim.Duration, clockCfg vclock.Config) *Device {
	dev := &Device{
		Name:   name,
		Clock:  vclock.New(d.k, d.rng, name, clockCfg),
		domain: d,
		Topic:  topic,
		Writer: name + "/" + topic,
		Period: period,
		Jitter: sim.Constant(0),
	}
	return dev
}

// Start begins periodic publication at the given offset.
func (dev *Device) Start(offset sim.Time) {
	var fire func()
	grid := offset
	fire = func() {
		if dev.stopped {
			return
		}
		act := dev.seq
		dev.seq++
		j := dev.Jitter.Sample(dev.domain.rng)
		drop := false
		if dev.Perturb != nil {
			var extra sim.Duration
			drop, extra = dev.Perturb(act)
			j += extra
		}
		if !drop {
			dev.domain.k.At(grid.Add(j), func() { dev.publish(act) })
		}
		grid = grid.Add(dev.Period)
		dev.domain.k.At(grid, fire)
	}
	dev.domain.k.At(grid, fire)
}

// Stop halts the device after the current period.
func (dev *Device) Stop() { dev.stopped = true }

func (dev *Device) publish(act uint64) {
	var data any
	var size int
	if dev.Payload != nil {
		data, size = dev.Payload(act)
	}
	s := &Sample{
		Topic:        dev.Topic,
		Writer:       dev.Writer,
		Activation:   act,
		SrcTimestamp: dev.Clock.Now(),
		PubTime:      dev.domain.k.Now(),
		Size:         size,
		Data:         data,
	}
	for _, hook := range dev.OnPublish {
		hook(s)
	}
	if dev.domain.sink != nil {
		dev.domain.telSend(dev.Name, s)
	}
	dev.domain.route(dev.Name, s)
}
