package dds

import "chainmon/internal/telemetry"

// ddsTel is the send/receive probe of one resource (an ECU or a device).
// Lookup is lazy by resource name; the uninstrumented path only pays the
// domain's nil-sink check.
type ddsTel struct {
	track *telemetry.Track
	sends *telemetry.Counter
	recvs *telemetry.Counter
	skips *telemetry.Counter
}

// AttachTelemetry wires the domain's publish/deliver paths and every link
// (present and future) to the sink. A nil sink leaves the domain dark.
func (d *Domain) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	d.sink = sink
	d.ddsTels = make(map[string]*ddsTel)
	d.flowScopes = make(map[string]uint8)
	for _, l := range d.links {
		l.AttachTelemetry(sink)
	}
}

// flowFor resolves the flow identity of a sample: the topic's flow scope
// (bound via Recorder.BindFlow, auto-bound to the topic name otherwise)
// packed with the activation index. The scope id is cached per topic so the
// publish hot path pays one map lookup, not an intern.
func (d *Domain) flowFor(topic string, act uint64) uint32 {
	id, ok := d.flowScopes[topic]
	if !ok {
		id = d.sink.Rec.FlowScope(topic)
		d.flowScopes[topic] = id
	}
	return telemetry.FlowID(id, act)
}

// telFor returns the resource's probe, creating it on first use.
func (d *Domain) telFor(resource string) *ddsTel {
	t, ok := d.ddsTels[resource]
	if !ok {
		res := telemetry.Label{Name: "resource", Value: resource}
		t = &ddsTel{
			track: d.sink.Rec.Track(resource + "/dds"),
			sends: d.sink.Reg.Counter("chainmon_dds_sends_total",
				"Samples published per resource.", res),
			recvs: d.sink.Reg.Counter("chainmon_dds_receives_total",
				"Samples delivered to subscriptions per resource.", res),
			skips: d.sink.Reg.Counter("chainmon_dds_skips_total",
				"Publications suppressed by a PrePublish veto per resource.", res),
		}
		d.ddsTels[resource] = t
	}
	return t
}

// telSend records one publication on the sending resource's track.
func (d *Domain) telSend(resource string, s *Sample) {
	t := d.telFor(resource)
	t.sends.Inc()
	t.track.Append(telemetry.Event{
		TS: int64(s.PubTime), Act: s.Activation, Arg: int64(s.Size),
		Flow: d.flowFor(s.Topic, s.Activation),
		Kind: telemetry.KindDDSSend, Label: d.sink.Rec.Intern(s.Topic),
	})
}

// telRecv records one delivery on the receiving ECU's track; Arg is the
// publication-to-delivery latency.
func (d *Domain) telRecv(resource string, s *Sample) {
	t := d.telFor(resource)
	t.recvs.Inc()
	t.track.Append(telemetry.Event{
		TS: int64(s.RecvTime), Act: s.Activation, Arg: int64(s.RecvTime.Sub(s.PubTime)),
		Flow: d.flowFor(s.Topic, s.Activation),
		Kind: telemetry.KindDDSRecv, Label: d.sink.Rec.Intern(s.Topic),
	})
}

// telSkip records a publication suppressed by a PrePublish veto — the
// monitor's skip-next-publication propagation hop. The event keeps the
// activation's flow id, so the flow trace shows where the chain was cut.
func (d *Domain) telSkip(resource string, s *Sample) {
	t := d.telFor(resource)
	t.skips.Inc()
	t.track.Append(telemetry.Event{
		TS: int64(s.PubTime), Act: s.Activation, Arg: int64(s.Size),
		Flow: d.flowFor(s.Topic, s.Activation),
		Kind: telemetry.KindPubSkip, Label: d.sink.Rec.Intern(s.Topic),
	})
}
