package dds

import "chainmon/internal/telemetry"

// ddsTel is the send/receive probe of one resource (an ECU or a device).
// Lookup is lazy by resource name; the uninstrumented path only pays the
// domain's nil-sink check.
type ddsTel struct {
	track *telemetry.Track
	sends *telemetry.Counter
	recvs *telemetry.Counter
}

// AttachTelemetry wires the domain's publish/deliver paths and every link
// (present and future) to the sink. A nil sink leaves the domain dark.
func (d *Domain) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	d.sink = sink
	d.ddsTels = make(map[string]*ddsTel)
	for _, l := range d.links {
		l.AttachTelemetry(sink)
	}
}

// telFor returns the resource's probe, creating it on first use.
func (d *Domain) telFor(resource string) *ddsTel {
	t, ok := d.ddsTels[resource]
	if !ok {
		res := telemetry.Label{Name: "resource", Value: resource}
		t = &ddsTel{
			track: d.sink.Rec.Track(resource + "/dds"),
			sends: d.sink.Reg.Counter("chainmon_dds_sends_total",
				"Samples published per resource.", res),
			recvs: d.sink.Reg.Counter("chainmon_dds_receives_total",
				"Samples delivered to subscriptions per resource.", res),
		}
		d.ddsTels[resource] = t
	}
	return t
}

// telSend records one publication on the sending resource's track.
func (d *Domain) telSend(resource string, s *Sample) {
	t := d.telFor(resource)
	t.sends.Inc()
	t.track.Append(telemetry.Event{
		TS: int64(s.PubTime), Act: s.Activation, Arg: int64(s.Size),
		Kind: telemetry.KindDDSSend, Label: d.sink.Rec.Intern(s.Topic),
	})
}

// telRecv records one delivery on the receiving ECU's track; Arg is the
// publication-to-delivery latency.
func (d *Domain) telRecv(resource string, s *Sample) {
	t := d.telFor(resource)
	t.recvs.Inc()
	t.track.Append(telemetry.Event{
		TS: int64(s.RecvTime), Act: s.Activation, Arg: int64(s.RecvTime.Sub(s.PubTime)),
		Kind: telemetry.KindDDSRecv, Label: d.sink.Rec.Intern(s.Topic),
	})
}
