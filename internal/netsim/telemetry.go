package netsim

import (
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
)

// linkTel is a link's probe. All links share the "net" track (the simulation
// is single-threaded, so the single-writer contract holds) and are told
// apart by the interned link name. Events carry the sender's activation and
// flow tags (SendTagged) so the network hop participates in flow stitching.
type linkTel struct {
	track  *telemetry.Track
	label  uint16
	sends  *telemetry.Counter
	losses *telemetry.Counter
	holds  *telemetry.Counter
	dups   *telemetry.Counter
}

// AttachTelemetry wires the link to the sink. A nil sink leaves it dark.
func (l *Link) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	link := telemetry.Label{Name: "link", Value: l.Name}
	l.tel = &linkTel{
		track: sink.Rec.Track("net"),
		label: sink.Rec.Intern(l.Name),
		sends: sink.Reg.Counter("chainmon_link_sends_total",
			"Messages handed to a link.", link),
		losses: sink.Reg.Counter("chainmon_link_losses_total",
			"Messages lost on a link (best-effort drops).", link),
		holds: sink.Reg.Counter("chainmon_link_holds_total",
			"Messages reordered by a hold fault.", link),
		dups: sink.Reg.Counter("chainmon_link_duplicates_total",
			"Extra copies delivered by a duplication fault.", link),
	}
}

func (t *linkTel) send(at sim.Time, act uint64, flow uint32, resp sim.Duration) {
	t.track.Append(telemetry.Event{
		TS: int64(at), Act: act, Arg: int64(resp), Flow: flow,
		Kind: telemetry.KindNetSend, Label: t.label,
	})
}

func (t *linkTel) drop(at sim.Time, act uint64, flow uint32, size int) {
	t.losses.Inc()
	t.track.Append(telemetry.Event{
		TS: int64(at), Act: act, Arg: int64(size), Flow: flow,
		Kind: telemetry.KindNetDrop, Label: t.label,
	})
}

func (t *linkTel) hold(at sim.Time, act uint64, flow uint32, hold sim.Duration) {
	t.holds.Inc()
	t.track.Append(telemetry.Event{
		TS: int64(at), Act: act, Arg: int64(hold), Flow: flow,
		Kind: telemetry.KindNetHold, Label: t.label,
	})
}

func (t *linkTel) dup(at sim.Time, act uint64, flow uint32, extra sim.Duration) {
	t.dups.Inc()
	t.track.Append(telemetry.Event{
		TS: int64(at), Act: act, Arg: int64(extra), Flow: flow,
		Kind: telemetry.KindNetDup, Label: t.label,
	})
}
