package netsim

import (
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
)

// linkTel is a link's probe. All links share the "net" track (the simulation
// is single-threaded, so the single-writer contract holds) and are told
// apart by the interned link name.
type linkTel struct {
	track  *telemetry.Track
	label  uint16
	sends  *telemetry.Counter
	losses *telemetry.Counter
	holds  *telemetry.Counter
	dups   *telemetry.Counter
}

// AttachTelemetry wires the link to the sink. A nil sink leaves it dark.
func (l *Link) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	link := telemetry.Label{Name: "link", Value: l.Name}
	l.tel = &linkTel{
		track: sink.Rec.Track("net"),
		label: sink.Rec.Intern(l.Name),
		sends: sink.Reg.Counter("chainmon_link_sends_total",
			"Messages handed to a link.", link),
		losses: sink.Reg.Counter("chainmon_link_losses_total",
			"Messages lost on a link (best-effort drops).", link),
		holds: sink.Reg.Counter("chainmon_link_holds_total",
			"Messages reordered by a hold fault.", link),
		dups: sink.Reg.Counter("chainmon_link_duplicates_total",
			"Extra copies delivered by a duplication fault.", link),
	}
}

func (t *linkTel) drop(at sim.Time, size int) {
	t.losses.Inc()
	t.track.Append(telemetry.Event{
		TS: int64(at), Arg: int64(size), Kind: telemetry.KindNetDrop, Label: t.label,
	})
}

func (t *linkTel) hold(at sim.Time, hold sim.Duration) {
	t.holds.Inc()
	t.track.Append(telemetry.Event{
		TS: int64(at), Arg: int64(hold), Kind: telemetry.KindNetHold, Label: t.label,
	})
}

func (t *linkTel) dup(at sim.Time, extra sim.Duration) {
	t.dups.Inc()
	t.track.Append(telemetry.Event{
		TS: int64(at), Arg: int64(extra), Kind: telemetry.KindNetDup, Label: t.label,
	})
}
