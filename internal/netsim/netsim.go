// Package netsim models the communication fabric between ECUs: per-link
// best-case response time, response-time jitter, bandwidth and message loss.
// Delivery on a link is FIFO (in-order), matching the middleware assumption
// in the paper's system model; losses are the paper's "lossy transmission
// channel" that remote-segment monitoring is built around.
package netsim

import (
	"fmt"

	"chainmon/internal/sim"
)

// Link is a unidirectional communication path between two resources.
type Link struct {
	Name string

	k   *sim.Kernel
	rng *sim.RNG

	// BCRT is the best-case response time of the link (propagation plus
	// minimal stack traversal).
	BCRT sim.Duration
	// Jitter is the additional response time above BCRT (J^R in the paper).
	Jitter sim.Dist
	// BytesPerSecond is the serialization bandwidth; 0 means infinite.
	BytesPerSecond int64
	// LossProb is the probability that a message is dropped entirely.
	LossProb float64
	// RetransmitDelay models reliable DDS QoS: when set, a lost message is
	// not dropped but delivered after an additional NACK/retransmission
	// delay on top of its nominal response time. The paper notes the
	// synchronization-based monitor is transparent to such retransmissions
	// — a retransmitted sample that still misses its deadline is discarded
	// like any late sample.
	RetransmitDelay sim.Dist

	// DropFault, when set, is consulted for every send after the nominal
	// LossProb draw; returning true loses the message like a regular loss.
	// Installed by internal/faultinject for correlated (bursty) loss models
	// that the i.i.d. LossProb cannot express.
	DropFault func(at sim.Time, size int) bool
	// DelayFault, when set, returns additional response time added to every
	// send (fault injection: transient latency spikes, e.g. a congested
	// switch or a link renegotiation).
	DelayFault func(at sim.Time) sim.Duration
	// HoldFault, when set, returns a positive duration to hold the message
	// back past the FIFO order: the held message is delivered late and
	// subsequent sends overtake it (fault injection: reordering, e.g. a
	// retransmission path or a misbehaving switch queue). The held message
	// does not advance the link's FIFO floor.
	HoldFault func(at sim.Time, size int) sim.Duration
	// DupFault, when set, may deliver a second copy of the message after an
	// additional delay (fault injection: duplication, e.g. a retransmission
	// whose original was not lost after all).
	DupFault func(at sim.Time, size int) (dup bool, extra sim.Duration)

	lastDelivery sim.Time
	sent         uint64
	lost         uint64
	retransmits  uint64
	faultDrops   uint64
	held         uint64
	duplicated   uint64

	tel *linkTel // nil when uninstrumented
}

// Config parameterizes a link.
type Config struct {
	BCRT           sim.Duration
	Jitter         sim.Dist
	BytesPerSecond int64
	LossProb       float64
	// RetransmitDelay enables reliable QoS: lost messages are delivered
	// after this extra delay instead of dropped. Nil = best effort.
	RetransmitDelay sim.Dist
}

// NewLink creates a link on the kernel.
func NewLink(k *sim.Kernel, rng *sim.RNG, name string, cfg Config) *Link {
	if cfg.Jitter == nil {
		cfg.Jitter = sim.Constant(0)
	}
	return &Link{
		Name:            name,
		k:               k,
		rng:             rng.Derive("link/" + name),
		BCRT:            cfg.BCRT,
		Jitter:          cfg.Jitter,
		BytesPerSecond:  cfg.BytesPerSecond,
		LossProb:        cfg.LossProb,
		RetransmitDelay: cfg.RetransmitDelay,
	}
}

// Stats returns how many messages were sent and how many of those were lost.
func (l *Link) Stats() (sent, lost uint64) { return l.sent, l.lost }

// Retransmits returns how many messages were recovered by the reliable QoS.
func (l *Link) Retransmits() uint64 { return l.retransmits }

// FaultDrops returns how many losses were caused by an installed DropFault
// hook (a subset of the lost count reported by Stats).
func (l *Link) FaultDrops() uint64 { return l.faultDrops }

// Held returns how many messages a HoldFault reordered past the FIFO order.
func (l *Link) Held() uint64 { return l.held }

// Duplicated returns how many extra copies a DupFault delivered.
func (l *Link) Duplicated() uint64 { return l.duplicated }

// ResponseBounds returns the best-case response time and a practical
// worst-case (BCRT + jitter upper bound) for a message of the given size.
// These are the BCRT and BCRT+J^R terms the synchronization-based monitor's
// d_mon is assembled from.
func (l *Link) ResponseBounds(size int) (bcrt, wcrt sim.Duration) {
	tx := l.transmissionTime(size)
	_, jhi := l.Jitter.Bounds()
	return l.BCRT + tx, l.BCRT + tx + jhi
}

func (l *Link) transmissionTime(size int) sim.Duration {
	if l.BytesPerSecond <= 0 || size <= 0 {
		return 0
	}
	return sim.Duration(int64(size) * int64(sim.Second) / l.BytesPerSecond)
}

// Send transmits a message of the given size. If the message is not lost,
// deliver runs at the receiver after BCRT + transmission + jitter, no
// earlier than any previously sent message (FIFO). It returns the scheduled
// delivery time and false if the message was dropped.
func (l *Link) Send(size int, deliver func()) (sim.Time, bool) {
	return l.SendTagged(size, 0, 0, deliver)
}

// SendTagged is Send with the sender's causal tags: the activation index
// and the flow identity (telemetry.FlowID) of the sample on the wire. The
// link's trace events — the successful transmission as well as drop, hold
// and duplication faults — carry the tags, so the Perfetto flow view can
// stitch the network hop between dds-send and dds-recv (or show where a
// flow died on the wire). Untraced callers use Send, which passes zero tags.
func (l *Link) SendTagged(size int, act uint64, flow uint32, deliver func()) (sim.Time, bool) {
	l.sent++
	resp := l.BCRT + l.transmissionTime(size) + l.Jitter.Sample(l.rng)
	if l.DelayFault != nil {
		resp += l.DelayFault(l.k.Now())
	}
	lost := l.rng.Bool(l.LossProb)
	if !lost && l.DropFault != nil && l.DropFault(l.k.Now(), size) {
		lost = true
		l.faultDrops++
	}
	if l.tel != nil {
		l.tel.sends.Inc()
	}
	if lost {
		if l.RetransmitDelay == nil {
			l.lost++
			if l.tel != nil {
				l.tel.drop(l.k.Now(), act, flow, size)
			}
			return 0, false
		}
		// Reliable QoS: the receiver NACKs and the writer retransmits;
		// the sample arrives late instead of never.
		l.retransmits++
		resp += l.RetransmitDelay.Sample(l.rng)
	}
	var hold sim.Duration
	if !lost && l.HoldFault != nil {
		hold = l.HoldFault(l.k.Now(), size)
	}
	at := l.k.Now().Add(resp)
	if hold > 0 {
		// Reordering: the held message is delivered late and does not
		// advance the FIFO floor, so subsequent sends overtake it.
		l.held++
		at = at.Add(hold)
		if l.tel != nil {
			l.tel.hold(l.k.Now(), act, flow, hold)
		}
	} else {
		if at < l.lastDelivery {
			at = l.lastDelivery // FIFO: no overtaking on a link
		}
		l.lastDelivery = at
	}
	if l.tel != nil {
		// The accepted transmission: one net-send hop between the sender's
		// dds-send and the receiver's dds-recv, tagged with the flow.
		l.tel.send(l.k.Now(), act, flow, at.Sub(l.k.Now()))
	}
	if deliver != nil {
		l.k.At(at, deliver)
	}
	if !lost && l.DupFault != nil {
		if dup, extra := l.DupFault(l.k.Now(), size); dup {
			l.duplicated++
			if l.tel != nil {
				l.tel.dup(l.k.Now(), act, flow, extra)
			}
			if deliver != nil {
				l.k.At(at.Add(extra), deliver)
			}
		}
	}
	return at, true
}

func (l *Link) String() string {
	return fmt.Sprintf("link(%s, bcrt=%v, jitter=%v, loss=%.3f)", l.Name, l.BCRT, l.Jitter, l.LossProb)
}

// Loopback returns a link configuration suitable for intra-ECU DDS
// communication: small latency, small jitter, no loss.
func Loopback() Config {
	return Config{
		BCRT: 20 * sim.Microsecond,
		Jitter: sim.LogNormalDist{
			Median: 15 * sim.Microsecond,
			Sigma:  0.6,
			Max:    2 * sim.Millisecond,
		},
	}
}

// Ethernet returns a link configuration for inter-ECU communication
// resembling the automotive Ethernet setup of the use case.
func Ethernet() Config {
	return Config{
		BCRT: 300 * sim.Microsecond,
		Jitter: sim.LogNormalDist{
			Median: 200 * sim.Microsecond,
			Sigma:  0.8,
			Max:    20 * sim.Millisecond,
		},
		BytesPerSecond: 125_000_000, // 1 Gbit/s
		LossProb:       0.001,
	}
}
