package netsim

import (
	"testing"
	"testing/quick"

	"chainmon/internal/sim"
)

func TestSendDeliversAfterBCRT(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, sim.NewRNG(1), "l", Config{BCRT: 100 * sim.Microsecond})
	var delivered sim.Time
	at, ok := l.Send(0, func() { delivered = k.Now() })
	if !ok {
		t.Fatal("message lost on loss-free link")
	}
	k.Run()
	if delivered != sim.Time(100*sim.Microsecond) || at != delivered {
		t.Errorf("delivered at %v (scheduled %v), want 100µs", delivered, at)
	}
}

func TestTransmissionTimeScalesWithSize(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, sim.NewRNG(1), "l", Config{BytesPerSecond: 1_000_000})
	var delivered sim.Time
	l.Send(1000, func() { delivered = k.Now() }) // 1000 B at 1 MB/s = 1 ms
	k.Run()
	if delivered != sim.Time(sim.Millisecond) {
		t.Errorf("delivered at %v, want 1ms", delivered)
	}
}

func TestFIFONoOvertaking(t *testing.T) {
	f := func(seed int64) bool {
		k := sim.NewKernel()
		l := NewLink(k, sim.NewRNG(seed), "l", Config{
			BCRT:   10 * sim.Microsecond,
			Jitter: sim.LogNormalDist{Median: 100 * sim.Microsecond, Sigma: 1.5},
		})
		var order []int
		send := func(i int) { l.Send(0, func() { order = append(order, i) }) }
		// Send 20 messages back to back at slightly different times.
		for i := 0; i < 20; i++ {
			i := i
			k.At(sim.Time(i)*10, func() { send(i) })
		}
		k.Run()
		if len(order) != 20 {
			return false
		}
		for i := range order {
			if order[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLossProbability(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, sim.NewRNG(2), "l", Config{LossProb: 0.25})
	delivered := 0
	const n = 10000
	for i := 0; i < n; i++ {
		l.Send(0, func() { delivered++ })
	}
	k.Run()
	sent, lost := l.Stats()
	if sent != n {
		t.Errorf("sent = %d", sent)
	}
	frac := float64(lost) / n
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("loss fraction = %f, want ≈0.25", frac)
	}
	if delivered != int(sent-lost) {
		t.Errorf("delivered %d, want %d", delivered, sent-lost)
	}
}

func TestSendReportsLoss(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, sim.NewRNG(3), "l", Config{LossProb: 1.0})
	_, ok := l.Send(0, func() { t.Error("lost message delivered") })
	if ok {
		t.Error("Send reported delivery on certain loss")
	}
	k.Run()
}

func TestResponseBounds(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, sim.NewRNG(4), "l", Config{
		BCRT:           100 * sim.Microsecond,
		Jitter:         sim.UniformDist{Lo: 0, Hi: 50 * sim.Microsecond},
		BytesPerSecond: 1_000_000,
	})
	bcrt, wcrt := l.ResponseBounds(1000)
	if bcrt != 100*sim.Microsecond+sim.Millisecond {
		t.Errorf("bcrt = %v", bcrt)
	}
	if wcrt != bcrt+50*sim.Microsecond {
		t.Errorf("wcrt = %v", wcrt)
	}
}

func TestDeliveryTimeNeverBeforeBCRT(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, sim.NewRNG(5), "l", Ethernet())
	for i := 0; i < 500; i++ {
		sendAt := k.Now()
		at, ok := l.Send(100, nil)
		if ok && at.Sub(sendAt) < l.BCRT {
			t.Fatalf("delivery %v before BCRT %v", at.Sub(sendAt), l.BCRT)
		}
		k.RunFor(sim.Millisecond)
	}
}

func TestPresetConfigs(t *testing.T) {
	if Loopback().BCRT <= 0 || Ethernet().BCRT <= 0 {
		t.Error("preset BCRT not positive")
	}
	if Ethernet().LossProb <= 0 {
		t.Error("ethernet preset should model loss")
	}
	k := sim.NewKernel()
	l := NewLink(k, sim.NewRNG(6), "eth", Ethernet())
	if l.String() == "" {
		t.Error("empty String()")
	}
}

func TestReliableQoSRetransmitsInsteadOfDropping(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, sim.NewRNG(7), "rel", Config{
		BCRT:            sim.Millisecond,
		LossProb:        0.3,
		RetransmitDelay: sim.Constant(20 * sim.Millisecond),
	})
	delivered := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if _, ok := l.Send(0, func() { delivered++ }); !ok {
			t.Fatal("reliable link reported a drop")
		}
	}
	k.Run()
	if delivered != n {
		t.Fatalf("delivered %d of %d on a reliable link", delivered, n)
	}
	_, lost := l.Stats()
	if lost != 0 {
		t.Errorf("lost = %d on reliable link", lost)
	}
	if r := l.Retransmits(); r < 250 || r > 350 {
		t.Errorf("retransmits = %d, want ≈300", r)
	}
}

func TestRetransmittedMessagesKeepFIFO(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, sim.NewRNG(8), "rel", Config{
		BCRT:            sim.Millisecond,
		LossProb:        0.5,
		RetransmitDelay: sim.Constant(50 * sim.Millisecond),
	})
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		k.At(sim.Time(i)*sim.Time(10*sim.Millisecond), func() {
			l.Send(0, func() { order = append(order, i) })
		})
	}
	k.Run()
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("FIFO violated after retransmission: %v", order)
		}
	}
}
