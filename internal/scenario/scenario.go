// Package scenario loads perception-scenario descriptions from JSON, so
// experiments can be configured declaratively (cmd/chainmon -config). All
// durations are strings in Go syntax ("100ms", "50µs").
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"chainmon/internal/faultinject"
	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
	"chainmon/internal/weaklyhard"
)

// Duration marshals as a Go duration string.
type Duration sim.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"100ms\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("scenario: parsing duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Recovery policies selectable by name.
const (
	PolicyPropagate = "propagate"
	PolicyHoldover  = "holdover"
)

// File is the JSON scenario schema. Zero fields keep the defaults of
// perception.DefaultConfig().
type File struct {
	Seed           int64    `json:"seed,omitempty"`
	Frames         int      `json:"frames,omitempty"`
	Period         Duration `json:"period,omitempty"`
	LocalDeadline  Duration `json:"local_deadline,omitempty"`
	RemoteDeadline Duration `json:"remote_deadline,omitempty"`
	Constraint     *struct {
		M int `json:"m"`
		K int `json:"k"`
	} `json:"constraint,omitempty"`
	LossProb     float64  `json:"loss_prob,omitempty"`
	FullChain    bool     `json:"full_chain,omitempty"`
	ECU1Cores    int      `json:"ecu1_cores,omitempty"`
	ECU2Cores    int      `json:"ecu2_cores,omitempty"`
	ClockEpsilon Duration `json:"clock_epsilon,omitempty"`
	RealCompute  bool     `json:"real_compute,omitempty"`
	GroundFirst  bool     `json:"ground_first,omitempty"`
	// Partition: "" (free migration), "balanced" or "colocated".
	Partition string `json:"partition,omitempty"`
	// Recovery maps segment names (e.g. "s0a/front-lidar") to a policy:
	// "propagate" (default) or "holdover" (recover with a repeated frame).
	Recovery map[string]string `json:"recovery,omitempty"`
	// RemoteVariant: "monitor-thread" (default) or "dds-context".
	RemoteVariant string `json:"remote_variant,omitempty"`
	// Faults is an embedded fault campaign applied to the built system
	// (see internal/faultinject for the per-type fields). Load validates
	// but otherwise ignores it; use LoadFull to obtain the campaign.
	Faults []faultinject.Spec `json:"faults,omitempty"`
}

// Load reads a scenario and merges it over the default configuration. An
// embedded fault campaign is validated but dropped; callers that run
// campaigns use LoadFull.
func Load(r io.Reader) (perception.Config, error) {
	cfg, _, err := LoadFull(r)
	return cfg, err
}

// LoadFull reads a scenario plus its embedded fault campaign. The campaign
// may be empty (no "faults" key); it is validated either way.
func LoadFull(r io.Reader) (perception.Config, faultinject.Campaign, error) {
	cfg := perception.DefaultConfig()
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return cfg, faultinject.Campaign{}, fmt.Errorf("scenario: %w", err)
	}
	camp := faultinject.Campaign{Name: "scenario", Faults: f.Faults}
	if err := camp.Validate(); err != nil {
		return cfg, camp, fmt.Errorf("scenario: %w", err)
	}
	cfg, err := Apply(cfg, f)
	return cfg, camp, err
}

// Apply merges a scenario file over a base configuration.
func Apply(cfg perception.Config, f File) (perception.Config, error) {
	if f.Seed != 0 {
		cfg.Seed = f.Seed
	}
	if f.Frames != 0 {
		if f.Frames < 0 {
			return cfg, fmt.Errorf("scenario: negative frames %d", f.Frames)
		}
		cfg.Frames = f.Frames
	}
	if f.Period != 0 {
		cfg.Period = sim.Duration(f.Period)
	}
	if f.LocalDeadline != 0 {
		cfg.LocalDeadline = sim.Duration(f.LocalDeadline)
	}
	if f.RemoteDeadline != 0 {
		cfg.RemoteDeadline = sim.Duration(f.RemoteDeadline)
	}
	if f.Constraint != nil {
		c := weaklyhard.Constraint{M: f.Constraint.M, K: f.Constraint.K}
		if !c.Valid() {
			return cfg, fmt.Errorf("scenario: invalid constraint (%d,%d)", c.M, c.K)
		}
		cfg.Constraint = c
	}
	if f.LossProb != 0 {
		if f.LossProb < 0 || f.LossProb > 1 {
			return cfg, fmt.Errorf("scenario: loss_prob %f out of [0,1]", f.LossProb)
		}
		cfg.Network.LossProb = f.LossProb
	}
	cfg.FullChain = cfg.FullChain || f.FullChain
	if f.ECU1Cores != 0 {
		cfg.ECU1Cores = f.ECU1Cores
	}
	if f.ECU2Cores != 0 {
		cfg.ECU2Cores = f.ECU2Cores
	}
	if f.ClockEpsilon != 0 {
		cfg.ClockEpsilon = sim.Duration(f.ClockEpsilon)
	}
	cfg.RealCompute = cfg.RealCompute || f.RealCompute
	cfg.GroundFirst = cfg.GroundFirst || f.GroundFirst
	switch f.Partition {
	case "", "balanced", "colocated":
		if f.Partition != "" {
			cfg.Partition = f.Partition
		}
	default:
		return cfg, fmt.Errorf("scenario: unknown partition %q", f.Partition)
	}

	switch f.RemoteVariant {
	case "", "monitor-thread":
		cfg.RemoteVariant = monitor.VariantMonitorThread
	case "dds-context":
		cfg.RemoteVariant = monitor.VariantDDSContext
	default:
		return cfg, fmt.Errorf("scenario: unknown remote_variant %q", f.RemoteVariant)
	}

	if len(f.Recovery) > 0 {
		if cfg.Handlers == nil {
			cfg.Handlers = make(map[string]monitor.Handler)
		}
		for seg, policy := range f.Recovery {
			h, err := handlerFor(policy)
			if err != nil {
				return cfg, err
			}
			cfg.Handlers[seg] = h
		}
	}
	return cfg, nil
}

func handlerFor(policy string) (monitor.Handler, error) {
	switch policy {
	case PolicyPropagate:
		return nil, nil
	case PolicyHoldover:
		return func(ctx *monitor.ExceptionContext) *monitor.Recovery {
			return &monitor.Recovery{
				Data: &perception.FrameData{Points: 11000, FrontOnly: true},
				Size: 16 * 11000,
			}
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown recovery policy %q", policy)
	}
}
