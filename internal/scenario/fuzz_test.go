package scenario

import (
	"strings"
	"testing"
)

// FuzzLoad checks that arbitrary scenario input never panics the loader and
// that accepted configurations are structurally sane.
func FuzzLoad(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"frames": 100, "period": "50ms"}`)
	f.Add(`{"constraint": {"m": 1, "k": 5}, "recovery": {"x": "holdover"}}`)
	f.Add(`{"partition": "balanced", "remote_variant": "dds-context"}`)
	f.Add(`{"loss_prob": 0.5, "clock_epsilon": "50µs"}`)
	f.Fuzz(func(t *testing.T, input string) {
		cfg, err := Load(strings.NewReader(input))
		if err != nil {
			return
		}
		if cfg.Frames < 0 {
			t.Fatal("accepted negative frames")
		}
		if cfg.Network.LossProb < 0 || cfg.Network.LossProb > 1 {
			t.Fatalf("accepted loss probability %f", cfg.Network.LossProb)
		}
		if !cfg.Constraint.Valid() {
			t.Fatalf("accepted invalid constraint %v", cfg.Constraint)
		}
	})
}
