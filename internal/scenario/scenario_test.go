package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"chainmon/internal/faultinject"
	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
)

func TestLoadFullScenario(t *testing.T) {
	src := `{
		"seed": 7,
		"frames": 250,
		"period": "50ms",
		"local_deadline": "60ms",
		"remote_deadline": "15ms",
		"constraint": {"m": 1, "k": 8},
		"loss_prob": 0.02,
		"full_chain": true,
		"ecu2_cores": 4,
		"clock_epsilon": "25µs",
		"recovery": {"s0a/front-lidar": "holdover", "s0b/rear-lidar": "propagate"},
		"remote_variant": "dds-context"
	}`
	cfg, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Frames != 250 {
		t.Errorf("seed/frames = %d/%d", cfg.Seed, cfg.Frames)
	}
	if cfg.Period != 50*sim.Millisecond || cfg.LocalDeadline != 60*sim.Millisecond {
		t.Errorf("durations wrong: %v %v", cfg.Period, cfg.LocalDeadline)
	}
	if cfg.Constraint.M != 1 || cfg.Constraint.K != 8 {
		t.Errorf("constraint = %v", cfg.Constraint)
	}
	if cfg.Network.LossProb != 0.02 || !cfg.FullChain || cfg.ECU2Cores != 4 {
		t.Error("flags not applied")
	}
	if cfg.ClockEpsilon != 25*sim.Microsecond {
		t.Errorf("epsilon = %v", cfg.ClockEpsilon)
	}
	if cfg.RemoteVariant != monitor.VariantDDSContext {
		t.Error("variant not applied")
	}
	if cfg.Handlers["s0a/front-lidar"] == nil {
		t.Error("holdover handler missing")
	}
	if cfg.Handlers["s0b/rear-lidar"] != nil {
		t.Error("propagate should map to a nil handler")
	}
}

func TestLoadEmptyKeepsDefaults(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	def := perception.DefaultConfig()
	if cfg.Period != def.Period || cfg.Frames != def.Frames || cfg.Constraint != def.Constraint {
		t.Error("defaults not preserved")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := []string{
		`{"period": 100}`,                  // duration must be a string
		`{"period": "notaduration"}`,       // bad duration
		`{"constraint": {"m": 9, "k": 2}}`, // invalid (m,k)
		`{"loss_prob": 1.5}`,               // out of range
		`{"frames": -4}`,                   // negative
		`{"recovery": {"x": "teleport"}}`,  // unknown policy
		`{"remote_variant": "quantum"}`,    // unknown variant
		`{"unknown_field": true}`,          // strict decoding
		`{`,                                // malformed JSON
		`{"faults": [{"type": "warp"}]}`,   // unknown fault type
		// Strict decoding reaches into nested fault specs: a misspelled
		// campaign key must fail loudly, not silently keep defaults.
		`{"faults": [{"type": "overload", "ecu": "ecu2", "utilisation": 0.9}]}`,
	}
	for i, src := range cases {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted: %s", i, src)
		}
	}
}

func TestLoadFullEmbeddedFaults(t *testing.T) {
	src := `{
		"frames": 100,
		"full_chain": true,
		"faults": [
			{"type": "latency-spike", "from": "1s",
			 "link_from": "ecu1", "link_to": "ecu2", "delay": "30ms"},
			{"type": "sensor-dropout", "from": "5s", "until": "6s",
			 "device": "front-lidar"}
		]
	}`
	cfg, camp, err := LoadFull(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.FullChain || cfg.Frames != 100 {
		t.Errorf("config not applied: %+v", cfg)
	}
	if len(camp.Faults) != 2 || camp.Faults[0].Type != faultinject.TypeLatencySpike {
		t.Fatalf("campaign not loaded: %+v", camp)
	}
	if sim.Duration(camp.Faults[0].Delay) != 30*sim.Millisecond {
		t.Errorf("delay = %v", sim.Duration(camp.Faults[0].Delay))
	}
	// Load drops but still validates the campaign.
	if _, err := Load(strings.NewReader(src)); err != nil {
		t.Errorf("Load rejected a valid embedded campaign: %v", err)
	}
}

func TestDurationRoundTrip(t *testing.T) {
	b, err := json.Marshal(Duration(150 * sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var d Duration
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatal(err)
	}
	if sim.Duration(d) != 150*sim.Millisecond {
		t.Errorf("round trip = %v", sim.Duration(d))
	}
}

func TestScenarioRunsEndToEnd(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{
		"frames": 60,
		"full_chain": true,
		"loss_prob": 0.05,
		"recovery": {"s0a/front-lidar": "holdover", "s0b/rear-lidar": "holdover"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	s := perception.Build(cfg)
	s.Run()
	exec, _, _ := s.ChainFront.Totals()
	if exec == 0 {
		t.Error("scenario produced no chain executions")
	}
}

func TestHoldoverHandlerProducesRecovery(t *testing.T) {
	h, err := handlerFor(PolicyHoldover)
	if err != nil || h == nil {
		t.Fatal("holdover handler missing")
	}
	rec := h(&monitor.ExceptionContext{Activation: 3})
	if rec == nil || rec.Size == 0 {
		t.Error("holdover recovery empty")
	}
}
