package weaklyhard

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstraintValidity(t *testing.T) {
	cases := []struct {
		c     Constraint
		valid bool
	}{
		{Constraint{0, 1}, true},
		{Constraint{1, 1}, true},
		{Constraint{2, 1}, false},
		{Constraint{-1, 5}, false},
		{Constraint{0, 0}, false},
		{Constraint{3, 10}, true},
	}
	for _, c := range cases {
		if got := c.c.Valid(); got != c.valid {
			t.Errorf("%v.Valid() = %v, want %v", c.c, got, c.valid)
		}
	}
	if !(Constraint{5, 5}).Trivial() || (Constraint{4, 5}).Trivial() {
		t.Error("Trivial wrong")
	}
	if (Constraint{1, 5}).String() != "(1,5)" {
		t.Error("String wrong")
	}
}

func TestMaxMissesInAnyWindow(t *testing.T) {
	seq := []bool{false, true, true, false, true, false, false, true, true, true}
	cases := []struct {
		k, want int
	}{
		{1, 1}, {2, 2}, {3, 3}, {4, 3}, {10, 6}, {20, 6}, {0, 0},
	}
	for _, c := range cases {
		if got := MaxMissesInAnyWindow(seq, c.k); got != c.want {
			t.Errorf("MaxMissesInAnyWindow(k=%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestMaxMissesShortSequence(t *testing.T) {
	if got := MaxMissesInAnyWindow([]bool{true, true}, 5); got != 2 {
		t.Errorf("short sequence = %d, want 2", got)
	}
	if got := MaxMissesInAnyWindow(nil, 5); got != 0 {
		t.Errorf("empty sequence = %d, want 0", got)
	}
}

// Reference implementation: enumerate all windows explicitly.
func naiveMaxMisses(misses []bool, k int) int {
	if k <= 0 {
		return 0
	}
	maxm := 0
	for n := 0; n < len(misses); n++ {
		cnt := 0
		for j := n; j < n+k && j < len(misses); j++ {
			if misses[j] {
				cnt++
			}
		}
		if cnt > maxm {
			maxm = cnt
		}
	}
	return maxm
}

func TestMaxMissesMatchesNaiveProperty(t *testing.T) {
	f := func(seq []bool, kRaw uint8) bool {
		k := int(kRaw%16) + 1
		return MaxMissesInAnyWindow(seq, k) == naiveMaxMisses(seq, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxWindowSum(t *testing.T) {
	w := []int{1, 0, 2, 0, 0, 3}
	if got := MaxWindowSum(w, 2); got != 3 {
		t.Errorf("MaxWindowSum(k=2) = %d, want 3", got)
	}
	if got := MaxWindowSum(w, 4); got != 5 {
		t.Errorf("MaxWindowSum(k=4) = %d, want 5", got)
	}
	if got := MaxWindowSum(w, 6); got != 6 {
		t.Errorf("MaxWindowSum(k=6) = %d, want 6", got)
	}
}

func TestMaxWindowSumAgreesWithBoolVersion(t *testing.T) {
	f := func(seq []bool, kRaw uint8) bool {
		k := int(kRaw%16) + 1
		w := make([]int, len(seq))
		for i, m := range seq {
			if m {
				w[i] = 1
			}
		}
		return MaxWindowSum(w, k) == MaxMissesInAnyWindow(seq, k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSatisfiedBy(t *testing.T) {
	c := Constraint{M: 1, K: 3}
	if !c.SatisfiedBy([]bool{true, false, false, true, false, false}) {
		t.Error("sequence with isolated misses should satisfy (1,3)")
	}
	if c.SatisfiedBy([]bool{true, true, false, false}) {
		t.Error("two misses in a window of 3 should violate (1,3)")
	}
}

func TestCounterSlidingWindow(t *testing.T) {
	ctr := NewCounter(Constraint{M: 1, K: 3})
	if m := ctr.Record(true); m != 1 {
		t.Errorf("misses = %d, want 1", m)
	}
	if ctr.Violated() {
		t.Error("violated too early")
	}
	if m := ctr.Record(true); m != 2 {
		t.Errorf("misses = %d, want 2", m)
	}
	if !ctr.Violated() {
		t.Error("should be violated with 2 misses in window")
	}
	ctr.Record(false)
	// Window is now [true,true,false] → still 2 misses.
	if ctr.Misses() != 2 {
		t.Errorf("misses = %d, want 2", ctr.Misses())
	}
	// Oldest miss slides out.
	if m := ctr.Record(false); m != 1 {
		t.Errorf("misses = %d, want 1 after slide-out", m)
	}
	if ctr.Violated() {
		t.Error("should have recovered")
	}
	if ctr.Budget() != 0 {
		t.Errorf("budget = %d, want 0 (1 miss of 1 allowed)", ctr.Budget())
	}
	exec, misses, viol := ctr.Totals()
	if exec != 4 || misses != 2 || viol != 2 {
		t.Errorf("totals = %d,%d,%d", exec, misses, viol)
	}
}

func TestCounterBudget(t *testing.T) {
	ctr := NewCounter(Constraint{M: 2, K: 5})
	if ctr.Budget() != 2 {
		t.Errorf("initial budget = %d", ctr.Budget())
	}
	ctr.Record(true)
	if ctr.Budget() != 1 {
		t.Errorf("budget = %d, want 1", ctr.Budget())
	}
	ctr.Record(true)
	ctr.Record(true)
	if ctr.Budget() != 0 {
		t.Errorf("budget = %d, want 0 when violated", ctr.Budget())
	}
}

func TestCounterReset(t *testing.T) {
	ctr := NewCounter(Constraint{M: 1, K: 4})
	for i := 0; i < 10; i++ {
		ctr.Record(i%2 == 0)
	}
	ctr.Reset()
	if ctr.Misses() != 0 || ctr.Violated() {
		t.Error("reset did not clear window")
	}
	if e, m, v := ctr.Totals(); e+m+v != 0 {
		t.Error("reset did not clear totals")
	}
}

func TestCounterPanicsOnInvalidConstraint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCounter(Constraint{M: 5, K: 2})
}

// Property: the online counter agrees with offline window analysis for the
// trailing window at every step.
func TestCounterMatchesOfflineProperty(t *testing.T) {
	f := func(seq []bool, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		ctr := NewCounter(Constraint{M: 0, K: k})
		for i, miss := range seq {
			got := ctr.Record(miss)
			lo := i - k + 1
			if lo < 0 {
				lo = 0
			}
			want := 0
			for _, m := range seq[lo : i+1] {
				if m {
					want++
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMissSequence(t *testing.T) {
	seq := MissSequence([]int64{10, 20, 30}, 20)
	want := []bool{false, false, true}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq = %v, want %v", seq, want)
		}
	}
}

func TestMinDeadlineExact(t *testing.T) {
	lat := []int64{10, 50, 20, 50, 30}
	// (0,k): no miss allowed anywhere → d = max = 50.
	if d, ok := MinDeadline(lat, Constraint{M: 0, K: 5}); !ok || d != 50 {
		t.Errorf("MinDeadline (0,5) = %d,%v, want 50", d, ok)
	}
	// (1,5): one miss allowed per 5 → the two 50s are 2 misses in one
	// window if d < 50... so still 50? No: d=30 gives misses at both 50s
	// (positions 1,3) → window of 5 contains 2 > 1. d must be ≥ 50.
	if d, _ := MinDeadline(lat, Constraint{M: 1, K: 5}); d != 50 {
		t.Errorf("MinDeadline (1,5) = %d, want 50", d)
	}
	// (2,5): two misses allowed → d=30 works (misses at 50s only).
	if d, _ := MinDeadline(lat, Constraint{M: 2, K: 5}); d != 30 {
		t.Errorf("MinDeadline (2,5) = %d, want 30", d)
	}
	// (1,2): windows of 2 never contain both 50s → d=30 works.
	if d, _ := MinDeadline(lat, Constraint{M: 1, K: 2}); d != 30 {
		t.Errorf("MinDeadline (1,2) = %d, want 30", d)
	}
}

func TestMinDeadlineEmpty(t *testing.T) {
	if _, ok := MinDeadline(nil, Constraint{M: 0, K: 1}); ok {
		t.Error("empty input should not be ok")
	}
}

// Property: MinDeadline result always satisfies the constraint, and one
// candidate step lower never does (minimality over candidate values).
func TestMinDeadlineMinimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(40)
		lat := make([]int64, n)
		for i := range lat {
			lat[i] = int64(rng.Intn(20))
		}
		k := 1 + rng.Intn(8)
		m := rng.Intn(k + 1)
		c := Constraint{M: m, K: k}
		d, ok := MinDeadline(lat, c)
		if !ok {
			t.Fatalf("MinDeadline failed on valid input")
		}
		if !c.SatisfiedBy(MissSequence(lat, d)) {
			t.Fatalf("result %d does not satisfy %v for %v", d, c, lat)
		}
		if c.SatisfiedBy(MissSequence(lat, d-1)) && d > minVal(lat) {
			// d-1 might not be a candidate, but if it satisfies, any
			// candidate below d would too (monotonicity) → not minimal.
			t.Fatalf("result %d not minimal for %v over %v", d, c, lat)
		}
	}
}

func minVal(v []int64) int64 {
	m := v[0]
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}
