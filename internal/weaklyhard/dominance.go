package weaklyhard

// This file implements the constraint-dominance relation of the weakly-hard
// theory the paper builds on (Bernat, Burns, Llamosí: "Weakly hard
// real-time systems", IEEE ToC 50(4), 2001): a constraint c1 is harder than
// c2 — written c1 ⪯ c2 — when every miss sequence satisfying c1 also
// satisfies c2. Budgeting can use dominance to reuse deadline assignments
// solved for one constraint for any easier one.

// Implies reports whether satisfaction of c (by any infinite miss sequence)
// implies satisfaction of other — i.e. c is at least as hard as other.
//
// For the "at most m misses in any window of k" constraint class the exact
// condition from the weakly-hard theory is used:
//
//	(m1,k1) ⪯ (m2,k2)  ⇔  m1 ≤ m2  ∧  the densest sequence allowed by
//	(m1,k1) fits (m2,k2).
//
// The densest (m1,k1)-feasible sequence packs m1 misses at the start of
// every k1-period; checking (m2,k2) against that extremal sequence decides
// the implication.
func (c Constraint) Implies(other Constraint) bool {
	if !c.Valid() || !other.Valid() {
		return false
	}
	if other.Trivial() {
		return true
	}
	if c.Trivial() {
		return false
	}
	if c.M == 0 {
		return true // a hard constraint satisfies everything
	}
	if other.M == 0 {
		return false // only hard constraints imply a hard constraint
	}
	// Extremal sequence: m1 misses then k1-m1 hits, repeated. Any window
	// of other.K placed over this periodic pattern must hold ≤ other.M
	// misses. Enumerate window start offsets over one period plus the
	// window length (sufficient by periodicity).
	period := c.K
	misses := make([]bool, 0, 2*period+other.K)
	for len(misses) < 2*period+other.K {
		for i := 0; i < c.M; i++ {
			misses = append(misses, true)
		}
		for i := 0; i < period-c.M; i++ {
			misses = append(misses, false)
		}
	}
	return MaxMissesInAnyWindow(misses[:2*period+other.K], other.K) <= other.M
}

// Equivalent reports whether two constraints admit exactly the same miss
// sequences.
func (c Constraint) Equivalent(other Constraint) bool {
	return c.Implies(other) && other.Implies(c)
}

// Tighten returns the harder of the two constraints if they are comparable,
// and ok=false if neither implies the other (incomparable constraints must
// both be monitored).
func Tighten(a, b Constraint) (Constraint, bool) {
	if a.Implies(b) {
		return a, true
	}
	if b.Implies(a) {
		return b, true
	}
	return Constraint{}, false
}
