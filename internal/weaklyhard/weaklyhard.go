// Package weaklyhard implements the weakly-hard (m,k) constraint algebra of
// Bernat, Burns and Llamosí that the paper's end-to-end latency requirement
// is expressed in: at most m deadline misses are tolerated within any k
// consecutive executions.
//
// The package provides an online sliding-window counter (used by monitors to
// expose the current miss count to exception handlers, Algorithms 1 and 2),
// and offline window analysis over recorded miss sequences (used by the
// budgeting constraint solver, Eqs. 5–7).
//
// Windows contain k consecutive executions (indices j with n ≤ j < n+k);
// the paper's Eq. 6 writes the window as n ≤ j ≤ n+k, which would span k+1
// executions — we follow the standard k-execution definition from the
// weakly-hard literature the paper cites.
package weaklyhard

import (
	"fmt"
	"slices"
)

// Constraint is a weakly-hard (m,k) constraint: at most M misses in any K
// consecutive executions. M=0 is a hard constraint on every window.
type Constraint struct {
	M int
	K int
}

// Valid reports whether the constraint is well-formed (0 ≤ M ≤ K, K ≥ 1).
func (c Constraint) Valid() bool {
	return c.K >= 1 && c.M >= 0 && c.M <= c.K
}

// Trivial reports whether the constraint can never be violated (M = K).
func (c Constraint) Trivial() bool { return c.M >= c.K }

func (c Constraint) String() string {
	return fmt.Sprintf("(%d,%d)", c.M, c.K)
}

// SatisfiedBy reports whether a miss sequence (true = miss) satisfies the
// constraint in every window of K consecutive executions. Sequences shorter
// than K are checked against their single partial window.
func (c Constraint) SatisfiedBy(misses []bool) bool {
	return MaxMissesInAnyWindow(misses, c.K) <= c.M
}

// MaxMissesInAnyWindow returns the maximum number of misses found in any
// window of k consecutive entries of the sequence (the max over n of the
// paper's m_i(n)). Short sequences are treated as one partial window.
func MaxMissesInAnyWindow(misses []bool, k int) int {
	if k <= 0 {
		return 0
	}
	cur, maxm := 0, 0
	for i, miss := range misses {
		if miss {
			cur++
		}
		if i >= k && misses[i-k] {
			cur--
		}
		if cur > maxm {
			maxm = cur
		}
	}
	return maxm
}

// MaxWindowSum is MaxMissesInAnyWindow generalized to integer miss weights,
// used by the budgeting solver where propagated misses from preceding
// segments add to a segment's window count (Eq. 7).
func MaxWindowSum(weights []int, k int) int {
	if k <= 0 {
		return 0
	}
	cur, maxs := 0, 0
	for i, w := range weights {
		cur += w
		if i >= k {
			cur -= weights[i-k]
		}
		if cur > maxs {
			maxs = cur
		}
	}
	return maxs
}

// Counter is an online sliding-window (m,k) monitor over the last K
// executions. It is the "current number of misses within the last k
// executions" passed to the application exception handlers.
type Counter struct {
	c      Constraint
	window []bool // ring buffer of the last K outcomes
	head   int
	filled int
	misses int

	total       uint64
	totalMisses uint64
	violations  uint64 // number of Record calls that left the window violated
}

// NewCounter creates a counter for the constraint. It panics on an invalid
// constraint since that is always a configuration bug.
func NewCounter(c Constraint) *Counter {
	if !c.Valid() {
		panic(fmt.Sprintf("weaklyhard: invalid constraint %v", c))
	}
	return &Counter{c: c, window: make([]bool, c.K)}
}

// Constraint returns the constraint being tracked.
func (ctr *Counter) Constraint() Constraint { return ctr.c }

// Record registers the outcome of the next execution and returns the miss
// count of the current window (the handler argument m in Algorithms 1 and 2).
func (ctr *Counter) Record(miss bool) int {
	if ctr.filled == len(ctr.window) {
		if ctr.window[ctr.head] {
			ctr.misses--
		}
	} else {
		ctr.filled++
	}
	ctr.window[ctr.head] = miss
	if miss {
		ctr.misses++
		ctr.totalMisses++
	}
	ctr.head = (ctr.head + 1) % len(ctr.window)
	ctr.total++
	if ctr.misses > ctr.c.M {
		ctr.violations++
	}
	return ctr.misses
}

// Misses returns the miss count in the current window.
func (ctr *Counter) Misses() int { return ctr.misses }

// Violated reports whether the current window violates the constraint.
func (ctr *Counter) Violated() bool { return ctr.misses > ctr.c.M }

// Budget returns how many further misses the current window tolerates
// before violating the constraint (clamped at 0).
func (ctr *Counter) Budget() int {
	b := ctr.c.M - ctr.misses
	if b < 0 {
		return 0
	}
	return b
}

// Totals returns lifetime counts: executions, misses, and how many
// executions completed with the window in a violated state.
func (ctr *Counter) Totals() (executions, misses, violations uint64) {
	return ctr.total, ctr.totalMisses, ctr.violations
}

// Reset clears the window and lifetime counters.
func (ctr *Counter) Reset() {
	for i := range ctr.window {
		ctr.window[i] = false
	}
	ctr.head, ctr.filled, ctr.misses = 0, 0, 0
	ctr.total, ctr.totalMisses, ctr.violations = 0, 0, 0
}

// MissSequence derives a miss sequence from latencies and a deadline:
// entry n is true iff latencies[n] > deadline.
func MissSequence(latencies []int64, deadline int64) []bool {
	out := make([]bool, len(latencies))
	for i, l := range latencies {
		out[i] = l > deadline
	}
	return out
}

// MinDeadline returns the smallest deadline value d (drawn from the distinct
// latency values) such that the miss sequence of latencies against d
// satisfies the constraint, along with true on success. If even the maximum
// latency cannot satisfy it (impossible, since that yields zero misses),
// ok is false only for empty input.
//
// This is the single-variable subproblem the budgeting CSP decomposes into
// for propagation factor p = 0.
func MinDeadline(latencies []int64, c Constraint) (d int64, ok bool) {
	if len(latencies) == 0 {
		return 0, false
	}
	cands := distinctSorted(latencies)
	// Feasibility is monotone in d: larger deadlines can only reduce
	// misses, so binary-search the candidate values.
	lo, hi := 0, len(cands)-1
	if !c.SatisfiedBy(MissSequence(latencies, cands[hi])) {
		// Max latency produces zero misses, so this can only fire for
		// trivially impossible constraints like (M<0); guard anyway.
		return 0, false
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if c.SatisfiedBy(MissSequence(latencies, cands[mid])) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return cands[lo], true
}

func distinctSorted(vals []int64) []int64 {
	out := make([]int64, len(vals))
	copy(out, vals)
	slices.Sort(out)
	return slices.Compact(out)
}
