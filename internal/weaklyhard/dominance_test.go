package weaklyhard

import (
	"math/rand"
	"testing"
)

func TestImpliesBasics(t *testing.T) {
	cases := []struct {
		a, b Constraint
		want bool
	}{
		{Constraint{0, 1}, Constraint{1, 10}, true},  // hard implies anything
		{Constraint{1, 10}, Constraint{0, 1}, false}, // nothing implies hard (except hard)
		{Constraint{0, 5}, Constraint{0, 3}, true},   // hard implies hard
		{Constraint{1, 5}, Constraint{1, 5}, true},   // reflexive
		{Constraint{1, 10}, Constraint{1, 5}, true},  // larger window, same m → harder
		{Constraint{1, 5}, Constraint{1, 10}, false}, // m misses may cluster at window joins
		{Constraint{1, 5}, Constraint{2, 5}, true},   // fewer misses allowed → harder
		{Constraint{2, 5}, Constraint{1, 5}, false},
		{Constraint{1, 4}, Constraint{2, 8}, true},  // 1-in-4 densest packs 2 per 8
		{Constraint{2, 8}, Constraint{1, 4}, false}, // 2 adjacent misses violate (1,4)
		{Constraint{3, 3}, Constraint{1, 2}, false}, // trivial implies nothing nontrivial
		{Constraint{1, 2}, Constraint{3, 3}, true},  // anything implies trivial
	}
	for _, c := range cases {
		if got := c.a.Implies(c.b); got != c.want {
			t.Errorf("%v.Implies(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestImpliesInvalidConstraints(t *testing.T) {
	if (Constraint{-1, 3}).Implies(Constraint{1, 3}) {
		t.Error("invalid constraint should imply nothing")
	}
	if (Constraint{1, 3}).Implies(Constraint{5, 3}) {
		t.Error("implication into an invalid constraint")
	}
}

// Property: if a.Implies(b), then every randomly generated sequence
// satisfying a also satisfies b.
func TestImpliesSemanticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 400; trial++ {
		a := Constraint{M: rng.Intn(4), K: 1 + rng.Intn(8)}
		if a.M > a.K {
			a.M = a.K
		}
		b := Constraint{M: rng.Intn(4), K: 1 + rng.Intn(8)}
		if b.M > b.K {
			b.M = b.K
		}
		if !a.Implies(b) {
			continue
		}
		// Generate sequences satisfying a (rejection sampling) and check b.
		for s := 0; s < 20; s++ {
			seq := make([]bool, 40)
			for i := range seq {
				seq[i] = rng.Intn(3) == 0
			}
			// Repair to satisfy a: clear misses until it does.
			for !a.SatisfiedBy(seq) {
				idx := rng.Intn(len(seq))
				seq[idx] = false
			}
			if !b.SatisfiedBy(seq) {
				t.Fatalf("%v implies %v, but sequence %v satisfies only the former", a, b, seq)
			}
		}
	}
}

// Property: Implies is consistent with an exhaustive check over all short
// periodic miss patterns.
func TestImpliesAgainstExhaustiveSearch(t *testing.T) {
	sat := func(c Constraint, pattern uint16, n int) bool {
		// Periodic infinite sequence with period n: check windows over 3
		// periods, which covers all alignments.
		seq := make([]bool, 3*n+c.K)
		for i := range seq {
			seq[i] = pattern&(1<<(i%n)) != 0
		}
		return c.SatisfiedBy(seq)
	}
	constraints := []Constraint{
		{0, 2}, {1, 2}, {1, 3}, {2, 3}, {1, 4}, {2, 4}, {1, 5}, {2, 5}, {3, 5},
	}
	const n = 6
	for _, a := range constraints {
		for _, b := range constraints {
			want := true
			for p := uint16(0); p < 1<<n; p++ {
				if sat(a, p, n) && !sat(b, p, n) {
					want = false
					break
				}
			}
			got := a.Implies(b)
			if got && !want {
				// Implies claimed but a counterexample pattern exists.
				t.Errorf("%v.Implies(%v) = true, but a period-%d counterexample exists", a, b, n)
			}
			// got=false with want=true is allowed only if a longer
			// counterexample exists; for these window sizes period-6
			// patterns are not exhaustive, so do not assert it.
		}
	}
}

func TestEquivalent(t *testing.T) {
	if !(Constraint{0, 3}).Equivalent(Constraint{0, 5}) {
		t.Error("hard constraints are equivalent regardless of k")
	}
	if (Constraint{1, 3}).Equivalent(Constraint{1, 4}) {
		t.Error("(1,3) and (1,4) differ")
	}
}

func TestTighten(t *testing.T) {
	c, ok := Tighten(Constraint{1, 10}, Constraint{1, 5})
	if !ok || c != (Constraint{1, 10}) {
		t.Errorf("Tighten = %v,%v", c, ok)
	}
	c, ok = Tighten(Constraint{1, 5}, Constraint{1, 10})
	if !ok || c != (Constraint{1, 10}) {
		t.Errorf("Tighten (swapped) = %v,%v", c, ok)
	}
	// (1,2) allows misses two apart (3 per 5-window), violating (2,5);
	// (2,5) allows adjacent misses, violating (1,2) — incomparable.
	if _, ok := Tighten(Constraint{1, 2}, Constraint{2, 5}); ok {
		t.Error("incomparable constraints must not tighten")
	}
}
