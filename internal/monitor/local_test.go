package monitor

import (
	"testing"

	"chainmon/internal/dds"
	"chainmon/internal/netsim"
	"chainmon/internal/sim"
	"chainmon/internal/vclock"
	"chainmon/internal/weaklyhard"
)

// testRig is a deterministic two-node pipeline on one ECU:
// producer --"in"--> worker --"out"--> sink.
// The worker's callback cost is controlled per activation.
type testRig struct {
	k        *sim.Kernel
	domain   *dds.Domain
	ecu      *dds.ECU
	producer *dds.Node
	worker   *dds.Node
	sink     *dds.Node

	inPub   *dds.Publisher
	workSub *dds.Subscription
	outPub  *dds.Publisher
	sinkSub *dds.Subscription

	mon *LocalMonitor

	costs    map[uint64]sim.Duration // worker cost per activation
	defCost  sim.Duration
	received []uint64 // activations seen at sink
	sinkData map[uint64]any
}

func newTestRig() *testRig {
	k := sim.NewKernel()
	d := dds.NewDomain(k, sim.NewRNG(1))
	d.KsoftirqCost = sim.Constant(0)
	d.DeliverCost = sim.Constant(0)
	d.Loopback = netsim.Config{BCRT: 10 * sim.Microsecond}
	ecu := d.NewECU("ecu", 4, vclock.Config{})
	ecu.Proc.CtxSwitch = sim.Constant(0)
	ecu.Proc.Wakeup = sim.Constant(0)

	r := &testRig{
		k: k, domain: d, ecu: ecu,
		producer: ecu.NewNode("producer", dds.PrioExecBase+2),
		worker:   ecu.NewNode("worker", dds.PrioExecBase+1),
		sink:     ecu.NewNode("sink", dds.PrioExecBase),
		costs:    make(map[uint64]sim.Duration),
		defCost:  1 * sim.Millisecond,
		sinkData: make(map[uint64]any),
	}
	r.inPub = r.producer.NewPublisher("in")
	r.outPub = r.worker.NewPublisher("out")
	r.workSub = r.worker.Subscribe("in",
		func(s *dds.Sample) sim.Duration { return r.cost(s.Activation) },
		func(s *dds.Sample) { r.outPub.Publish(s.Activation, s.Data, 0) },
	)
	r.sinkSub = r.sink.Subscribe("out", nil, func(s *dds.Sample) {
		r.received = append(r.received, s.Activation)
		r.sinkData[s.Activation] = s.Data
	})
	r.mon = NewLocalMonitor(ecu)
	r.mon.PostCost = sim.Constant(5 * sim.Microsecond)
	r.mon.ScanCost = sim.Constant(10 * sim.Microsecond)
	return r
}

func (r *testRig) cost(act uint64) sim.Duration {
	if c, ok := r.costs[act]; ok {
		return c
	}
	return r.defCost
}

// produce publishes activations 0..n-1 with the given period.
func (r *testRig) produce(n int, period sim.Duration) {
	for i := 0; i < n; i++ {
		act := uint64(i)
		r.k.At(sim.Time(i)*sim.Time(period), func() { r.inPub.Publish(act, act, 0) })
	}
}

// segment registers the worker receive→publish local segment.
func (r *testRig) segment(dmon sim.Duration, c weaklyhard.Constraint, h Handler) *LocalSegment {
	seg := r.mon.AddSegment(SegmentConfig{
		Name:        "worker",
		DMon:        dmon,
		DEx:         1 * sim.Millisecond,
		Period:      100 * sim.Millisecond,
		Constraint:  c,
		Handler:     h,
		HandlerCost: sim.Constant(20 * sim.Microsecond),
	})
	seg.StartOnDeliver(r.workSub)
	seg.EndOnPublish(r.outPub)
	return seg
}

func TestLocalSegmentOKPath(t *testing.T) {
	r := newTestRig()
	seg := r.segment(50*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5}, nil)
	r.produce(5, 100*sim.Millisecond)
	r.k.Run()

	ok, rec, miss := seg.Stats().Counts()
	if ok != 5 || rec != 0 || miss != 0 {
		t.Fatalf("counts = %d,%d,%d, want 5,0,0", ok, rec, miss)
	}
	if len(r.received) != 5 {
		t.Fatalf("sink received %d, want 5", len(r.received))
	}
	// Latency = callback cost + loopback delivery of the start event.
	lat := seg.Stats().Latencies()
	if lat.Len() != 5 {
		t.Fatalf("latency samples = %d", lat.Len())
	}
	if lat.Max() > float64(2*sim.Millisecond) || lat.Min() < float64(1*sim.Millisecond) {
		t.Errorf("latency range [%v,%v] implausible",
			sim.Duration(lat.Min()), sim.Duration(lat.Max()))
	}
	if seg.Counter().Violated() {
		t.Error("counter violated without misses")
	}
}

func TestLocalSegmentTimeoutPropagates(t *testing.T) {
	r := newTestRig()
	var excCtx *ExceptionContext
	seg := r.segment(50*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5},
		func(ctx *ExceptionContext) *Recovery { excCtx = ctx; return nil })
	r.costs[2] = 80 * sim.Millisecond // activation 2 exceeds the 50 ms deadline
	r.produce(5, 200*sim.Millisecond)
	r.k.Run()

	ok, rec, miss := seg.Stats().Counts()
	if ok != 4 || rec != 0 || miss != 1 {
		t.Fatalf("counts = %d,%d,%d, want 4,0,1", ok, rec, miss)
	}
	if excCtx == nil {
		t.Fatal("handler not called")
	}
	if excCtx.Activation != 2 || excCtx.Propagated {
		t.Errorf("ctx = %+v", excCtx)
	}
	// Propagation by omission: the late publication of activation 2 is
	// skipped, so the sink must not see it.
	for _, a := range r.received {
		if a == 2 {
			t.Error("sink received the late publication of a missed activation")
		}
	}
	if len(r.received) != 4 {
		t.Errorf("sink received %d, want 4", len(r.received))
	}
	_, skipped := r.outPub.Stats()
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	// The miss is recorded in the (m,k) window.
	_, misses, _ := seg.Counter().Totals()
	if misses != 1 {
		t.Errorf("recorded misses = %d, want 1", misses)
	}
}

func TestLocalSegmentRecoveryPublishesSubstitute(t *testing.T) {
	r := newTestRig()
	seg := r.segment(50*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5},
		func(ctx *ExceptionContext) *Recovery {
			return &Recovery{Data: "substitute"}
		})
	r.costs[1] = 80 * sim.Millisecond
	r.produce(3, 200*sim.Millisecond)
	r.k.Run()

	ok, rec, miss := seg.Stats().Counts()
	if ok != 2 || rec != 1 || miss != 0 {
		t.Fatalf("counts = %d,%d,%d, want 2,1,0", ok, rec, miss)
	}
	if len(r.received) != 3 {
		t.Fatalf("sink received %d, want 3 (incl. recovery)", len(r.received))
	}
	if r.sinkData[1] != "substitute" {
		t.Errorf("sink data for act 1 = %v, want substitute", r.sinkData[1])
	}
	// Recovery must not count as a miss.
	_, misses, _ := seg.Counter().Totals()
	if misses != 0 {
		t.Errorf("recorded misses = %d, want 0", misses)
	}
	// The late regular publication was skipped.
	_, skipped := r.outPub.Stats()
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
}

func TestLocalExceptionTimingBounds(t *testing.T) {
	r := newTestRig()
	seg := r.segment(50*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 2}, nil)
	r.costs[0] = 200 * sim.Millisecond
	r.produce(1, 100*sim.Millisecond)
	r.k.Run()

	res := seg.Stats().Resolutions()
	if len(res) != 1 {
		t.Fatalf("resolutions = %d", len(res))
	}
	x := res[0]
	if !x.Exception || x.Status != StatusMissed {
		t.Fatalf("resolution = %+v", x)
	}
	// Latency is bounded: dMon (50ms) + scan (10µs) + handler (20µs);
	// allow some slack for event posting.
	lo := 50 * sim.Millisecond
	hi := 50*sim.Millisecond + 100*sim.Microsecond
	if x.Latency < lo || x.Latency > hi {
		t.Errorf("exception latency %v outside [%v,%v]", x.Latency, lo, hi)
	}
	// Detection latency: deadline → handler entry = scan cost (10µs).
	if x.DetectionLatency <= 0 || x.DetectionLatency > 50*sim.Microsecond {
		t.Errorf("detection latency %v implausible", x.DetectionLatency)
	}
}

func TestFixedProcessingOrderDelaysSecondSegment(t *testing.T) {
	// Two segments with the same start event and deadline (the objects and
	// ground segments of the evaluation): the segment registered second is
	// handled after the first, so its handler entry is delayed (Fig. 10).
	r := newTestRig()
	segA := r.mon.AddSegment(SegmentConfig{
		Name: "objects", DMon: 50 * sim.Millisecond, Period: 100 * sim.Millisecond,
		Constraint:  weaklyhard.Constraint{M: 1, K: 2},
		HandlerCost: sim.Constant(30 * sim.Microsecond),
	})
	segA.StartOnDeliver(r.workSub)
	segA.EndOnPublish(r.outPub)
	segB := r.mon.AddSegment(SegmentConfig{
		Name: "ground", DMon: 50 * sim.Millisecond, Period: 100 * sim.Millisecond,
		Constraint:  weaklyhard.Constraint{M: 1, K: 2},
		HandlerCost: sim.Constant(30 * sim.Microsecond),
	})
	segB.StartOnDeliver(r.workSub)
	segB.EndOnPublish(r.outPub)

	r.costs[0] = 200 * sim.Millisecond
	r.produce(1, 100*sim.Millisecond)
	r.k.Run()

	ra := segA.Stats().Resolutions()
	rb := segB.Stats().Resolutions()
	if len(ra) != 1 || len(rb) != 1 {
		t.Fatalf("resolutions = %d,%d", len(ra), len(rb))
	}
	if !ra[0].Exception || !rb[0].Exception {
		t.Fatal("both segments should raise exceptions")
	}
	gap := rb[0].HandlerEntry.Sub(ra[0].HandlerEntry)
	if gap < 30*sim.Microsecond {
		t.Errorf("second segment handler entry gap %v, want ≥ handler cost of first", gap)
	}
}

func TestEndOnDeliverDiscardsLateEnd(t *testing.T) {
	// Segment ends at the sink's reception (the rviz case). After an
	// exception, the late reception must be discarded.
	r := newTestRig()
	seg := r.mon.AddSegment(SegmentConfig{
		Name: "to-sink", DMon: 50 * sim.Millisecond, Period: 100 * sim.Millisecond,
		Constraint:  weaklyhard.Constraint{M: 2, K: 4},
		HandlerCost: sim.Constant(10 * sim.Microsecond),
	})
	seg.StartOnDeliver(r.workSub)
	seg.EndOnDeliver(r.sinkSub)

	r.costs[0] = 200 * sim.Millisecond
	r.produce(2, 300*sim.Millisecond)
	r.k.Run()

	ok, _, miss := seg.Stats().Counts()
	if ok != 1 || miss != 1 {
		t.Fatalf("counts ok=%d miss=%d, want 1,1", ok, miss)
	}
	// The sink's subscription discarded the late end reception of act 0.
	_, discarded := r.sinkSub.Stats()
	if discarded != 1 {
		t.Errorf("discarded = %d, want 1", discarded)
	}
	// Activation 1 still went through.
	found := false
	for _, a := range r.received {
		if a == 1 {
			found = true
		}
		if a == 0 {
			t.Error("sink callback ran for the excepted activation")
		}
	}
	if !found {
		t.Error("activation 1 not received")
	}
}

func TestPropagateIntoInvokesHandlerDirectly(t *testing.T) {
	r := newTestRig()
	var ctxs []*ExceptionContext
	seg := r.segment(50*sim.Millisecond, weaklyhard.Constraint{M: 2, K: 4},
		func(ctx *ExceptionContext) *Recovery {
			ctxs = append(ctxs, ctx)
			if ctx.Propagated {
				return &Recovery{Data: "prop-recovery"}
			}
			return nil
		})
	// Activation 0 never starts (no sample published); the preceding
	// remote segment propagates the violation explicitly.
	r.k.At(0, func() { seg.PropagateInto(0) })
	// Activation 1 runs normally.
	r.k.At(sim.Time(100*sim.Millisecond), func() { r.inPub.Publish(1, 1, 0) })
	r.k.Run()

	if len(ctxs) != 1 || !ctxs[0].Propagated || ctxs[0].Activation != 0 {
		t.Fatalf("handler contexts = %+v", ctxs)
	}
	ok, rec, miss := seg.Stats().Counts()
	if ok != 1 || rec != 1 || miss != 0 {
		t.Fatalf("counts = %d,%d,%d, want 1,1,0", ok, rec, miss)
	}
	// The propagated recovery published substitute data for act 0.
	if r.sinkData[0] != "prop-recovery" {
		t.Errorf("sink data for act 0 = %v", r.sinkData[0])
	}
}

func TestPropagateIntoWithoutRecoveryForwards(t *testing.T) {
	r := newTestRig()
	seg := r.segment(50*sim.Millisecond, weaklyhard.Constraint{M: 2, K: 4}, nil)
	next := &recordingPropagator{}
	seg.PropagateTo(next)
	r.k.At(0, func() { seg.PropagateInto(0) })
	r.k.Run()
	if len(next.acts) != 1 || next.acts[0] != 0 {
		t.Fatalf("forwarded = %v, want [0]", next.acts)
	}
	_, _, miss := seg.Stats().Counts()
	if miss != 1 {
		t.Errorf("miss = %d, want 1", miss)
	}
}

type recordingPropagator struct{ acts []uint64 }

func (p *recordingPropagator) PropagateInto(act uint64) { p.acts = append(p.acts, act) }

func TestWeaklyHardWindowAcrossActivations(t *testing.T) {
	r := newTestRig()
	seg := r.segment(50*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 3}, nil)
	// Activations 1 and 2 miss → window of 3 has 2 misses → violation.
	r.costs[1] = 80 * sim.Millisecond
	r.costs[2] = 80 * sim.Millisecond
	r.produce(5, 200*sim.Millisecond)
	r.k.Run()
	_, misses, violations := seg.Counter().Totals()
	if misses != 2 {
		t.Fatalf("misses = %d, want 2", misses)
	}
	if violations == 0 {
		t.Error("(1,3) constraint should have been violated")
	}
}

func TestMonitorOverheadsCollected(t *testing.T) {
	r := newTestRig()
	r.segment(50*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5}, nil)
	r.produce(10, 100*sim.Millisecond)
	r.k.Run()
	o := r.mon.Overheads()
	if o.StartPost.Len() != 10 {
		t.Errorf("start posts = %d, want 10", o.StartPost.Len())
	}
	if o.EndPost.Len() != 10 {
		t.Errorf("end posts = %d, want 10", o.EndPost.Len())
	}
	if o.MonLatency.Len() != 10 {
		t.Errorf("monitor latencies = %d, want 10", o.MonLatency.Len())
	}
	if o.MonExec.Len() == 0 {
		t.Error("no monitor execution samples")
	}
	for _, row := range o.Rows() {
		if row == "" {
			t.Error("empty overhead row")
		}
	}
}

func TestAddSegmentValidation(t *testing.T) {
	r := newTestRig()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for DMon=0")
		}
	}()
	r.mon.AddSegment(SegmentConfig{Name: "bad"})
}

func TestStatusString(t *testing.T) {
	if StatusOK.String() != "ok" || StatusRecovered.String() != "recovered" ||
		StatusMissed.String() != "missed" || Status(9).String() == "" {
		t.Error("status strings wrong")
	}
}

func TestReorderBufSkipsPermanentGaps(t *testing.T) {
	var got []uint64
	b := newReorderBuf(func(r Resolution) { got = append(got, r.Activation) })
	b.add(Resolution{Activation: 0})
	// Activation 1 never resolves; 2..70 do.
	for a := uint64(2); a <= 70; a++ {
		b.add(Resolution{Activation: a})
	}
	if len(got) < 60 {
		t.Fatalf("delivered %d resolutions; gap not skipped", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("out-of-order delivery")
		}
	}
}

func TestReorderBufStartsMidStream(t *testing.T) {
	var got []uint64
	b := newReorderBuf(func(r Resolution) { got = append(got, r.Activation) })
	b.add(Resolution{Activation: 42})
	b.add(Resolution{Activation: 43})
	if len(got) != 2 || got[0] != 42 {
		t.Fatalf("got = %v", got)
	}
}
