package monitor

import (
	"math/rand"
	"testing"

	"chainmon/internal/dds"
	"chainmon/internal/netsim"
	"chainmon/internal/sim"
	"chainmon/internal/vclock"
	"chainmon/internal/weaklyhard"
)

// Soundness of local monitoring: for randomized workloads, every activation
// whose true segment latency exceeds the monitored deadline (beyond the
// bounded detection window) raises a temporal exception, and no activation
// within the deadline does. This is the core guarantee the paper's Fig. 9
// rests on ("we can guarantee a reaction within 100 ms").
func TestLocalMonitorSoundnessProperty(t *testing.T) {
	const (
		period    = 100 * sim.Millisecond
		dmon      = 30 * sim.Millisecond
		frames    = 120
		tolerance = 2 * sim.Millisecond // detection + handling window
	)
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 100))

		k := sim.NewKernel()
		d := dds.NewDomain(k, sim.NewRNG(int64(trial)+200))
		d.Loopback = netsim.Config{BCRT: 20 * sim.Microsecond}
		ecu := d.NewECU("ecu", 2, vclock.Config{})
		producer := ecu.NewNode("producer", dds.PrioExecBase+2)
		worker := ecu.NewNode("worker", dds.PrioExecBase+1)

		// Random per-activation costs straddling the deadline.
		costs := make([]sim.Duration, frames)
		for i := range costs {
			costs[i] = sim.Duration(rng.Int63n(int64(60 * sim.Millisecond)))
		}
		outPub := worker.NewPublisher("out")
		sub := worker.Subscribe("in",
			func(s *dds.Sample) sim.Duration { return costs[s.Activation] },
			func(s *dds.Sample) { outPub.Publish(s.Activation, nil, 0) })

		lm := NewLocalMonitor(ecu)
		seg := lm.AddSegment(SegmentConfig{
			Name: "w", DMon: dmon, Period: period,
			Constraint:  weaklyhard.Constraint{M: frames, K: frames},
			HandlerCost: sim.Constant(10 * sim.Microsecond),
		})
		seg.StartOnDeliver(sub)
		seg.EndOnPublish(outPub)

		// Ground truth: actual start (reception) and end (publication).
		truth := make(map[uint64]sim.Duration)
		starts := make(map[uint64]sim.Time)
		sub.OnDeliver = append(sub.OnDeliver, func(s *dds.Sample) bool {
			starts[s.Activation] = k.Now()
			return true
		})
		outPub.OnPublish = append(outPub.OnPublish, func(s *dds.Sample) {
			if st, ok := starts[s.Activation]; ok {
				if _, done := truth[s.Activation]; !done {
					truth[s.Activation] = k.Now().Sub(st)
				}
			}
		})

		inPub := producer.NewPublisher("in")
		for i := 0; i < frames; i++ {
			act := uint64(i)
			k.At(sim.Time(i)*sim.Time(period), func() { inPub.Publish(act, nil, 0) })
		}
		k.Run()

		byAct := make(map[uint64]Resolution)
		for _, r := range seg.Stats().Resolutions() {
			byAct[r.Activation] = r
		}
		if len(byAct) != frames {
			t.Fatalf("trial %d: resolved %d of %d activations", trial, len(byAct), frames)
		}
		for act := uint64(0); act < frames; act++ {
			r := byAct[act]
			trueLat, haveTruth := truth[act]
			if !haveTruth {
				// The publication was skipped (propagation after an
				// exception) — the exception must have been raised.
				if !r.Exception {
					t.Fatalf("trial %d act %d: no publication and no exception", trial, act)
				}
				continue
			}
			switch {
			case trueLat <= dmon:
				if r.Exception {
					t.Errorf("trial %d act %d: false exception (true latency %v ≤ %v)",
						trial, act, trueLat, dmon)
				}
			case trueLat > dmon+tolerance:
				if !r.Exception {
					t.Errorf("trial %d act %d: undetected violation (true latency %v > %v)",
						trial, act, trueLat, dmon)
				}
			}
			// Monitored latency is always bounded.
			if r.Latency > dmon+tolerance {
				t.Errorf("trial %d act %d: monitored latency %v exceeds bound", trial, act, r.Latency)
			}
		}
	}
}

// Soundness of remote monitoring against random losses: every dropped
// sample raises exactly one exception, every delivered sample resolves OK,
// and activation accounting never drifts.
func TestRemoteMonitorSoundnessUnderRandomLoss(t *testing.T) {
	const frames = 200
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 300))
		dropped := make(map[uint64]bool)
		for i := 0; i < frames; i++ {
			if rng.Float64() < 0.15 {
				dropped[uint64(i)] = true
			}
		}

		r := newRemoteRig()
		m := r.monitor(10*sim.Millisecond, weaklyhard.Constraint{M: frames, K: frames},
			nil, VariantMonitorThread)
		m.SetLastActivation(frames - 1)
		for i := 0; i < frames; i++ {
			if !dropped[uint64(i)] {
				r.send(uint64(i), 0)
			}
		}
		horizon := sim.Time(frames+2) * sim.Time(rigPeriod)
		r.k.At(horizon, m.Stop)
		r.k.RunUntil(horizon.Add(sim.Second))

		byAct := make(map[uint64]Resolution)
		for _, res := range m.Stats().Resolutions() {
			byAct[res.Activation] = res
		}
		// Activation 0 dropped means monitoring starts at the first
		// received sample; exclude leading drops from the check.
		first := uint64(0)
		for dropped[first] {
			first++
		}
		for act := first; act < frames; act++ {
			res, ok := byAct[act]
			if !ok {
				t.Fatalf("trial %d act %d: unresolved", trial, act)
			}
			if dropped[act] && res.Status != StatusMissed {
				t.Errorf("trial %d act %d: dropped but resolved %v", trial, act, res.Status)
			}
			if !dropped[act] && res.Status != StatusOK {
				t.Errorf("trial %d act %d: delivered but resolved %v", trial, act, res.Status)
			}
		}
	}
}
