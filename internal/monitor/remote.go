package monitor

import (
	"fmt"

	"chainmon/internal/dds"
	rt "chainmon/internal/runtime"
	"chainmon/internal/runtime/simtime"
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
	"chainmon/internal/weaklyhard"
)

// RemoteVariant selects where the remote monitor's timeout routine runs.
type RemoteVariant int

const (
	// VariantMonitorThread forwards timer programming and timeout handling
	// to the ECU's high-priority monitor thread — the design the paper
	// proposes after the Fig. 12 measurement.
	VariantMonitorThread RemoteVariant = iota
	// VariantDDSContext runs the timeout routine in the middleware thread,
	// like the existing ROS2 deadline/lifespan QoS mechanisms. Under load
	// its exception entry latency grows to milliseconds (Fig. 12).
	VariantDDSContext
)

func (v RemoteVariant) String() string {
	if v == VariantDDSContext {
		return "dds-context"
	}
	return "monitor-thread"
}

// RemoteMonitor supervises one remote segment with the paper's
// synchronization-based approach: the timer for the reception of the next
// sample is programmed from the transmitted source timestamp of the
// PTP-synchronized sender, t = t_st,n + P + d_mon, so that — unlike
// inter-arrival monitoring — consecutive deadline misses are detected and
// the pessimism is bounded by J^a + ε.
//
// The monitor is instantiated at the receiver, directly at the DDS
// subscriber. Samples that arrive after their exception are discarded to
// keep the constant-rate assumption needed for chain composability and
// reliable (m,k) accounting.
//
// Like the local monitor it is compiled against the runtime abstraction —
// clock reads, timer programming and timeout dispatch go through
// runtime.Clock, runtime.TimerHost, runtime.SyncClock and runtime.Executor;
// the simulation experiments bind the simtime adapters.
type RemoteMonitor struct {
	cfg     SegmentConfig
	variant RemoteVariant
	sub     *dds.Subscription
	rng     *sim.RNG

	clock  rt.Clock     // local-ECU time
	timers rt.TimerHost // deadline timer programming
	sync   rt.SyncClock // sender-deadline → local-delay conversion
	exec   rt.Executor  // timeout-routine dispatch (variant's thread)

	// TimeoutRoutineCost is the execution cost of the timeout routine
	// before the handler decision runs.
	TimeoutRoutineCost sim.Dist

	started       bool
	expected      uint64
	deadlineLocal sim.Time // local-clock deadline for the expected activation
	timer         rt.Timer
	writer        string // the writer this monitor supervises (from samples)

	counter *weaklyhard.Counter
	reorder *reorderBuf
	stats   *SegmentStats

	propagateTo  Propagator
	onResolve    []ResolveFunc
	lateDiscards uint64
	stopped      bool
	lastAct      uint64
	lastActSet   bool

	tel *remoteTel // nil when uninstrumented

	// budget is the hot-swappable deadline table (nil = static deadlines);
	// staged versions are folded in before the next deadline is derived.
	budget     *BudgetTable
	budgetSeen uint64
	budgetName string // table identity; family template name for keyed monitors
}

// NewRemoteMonitor attaches a synchronization-based monitor to the
// subscription. With VariantMonitorThread the timeout handling runs on the
// given LocalMonitor's thread; with VariantDDSContext it runs on the
// subscribing node's middleware thread and lm may be nil.
//
// The monitor's delivery hook is prepended so that late-sample discard
// happens before any downstream segment hooks observe the reception.
func NewRemoteMonitor(sub *dds.Subscription, cfg SegmentConfig, variant RemoteVariant, lm *LocalMonitor) *RemoteMonitor {
	m := newDetachedRemoteMonitor(sub, cfg, variant, lm)
	sub.OnDeliver = append([]func(*dds.Sample) bool{m.onDeliver}, sub.OnDeliver...)
	return m
}

// newDetachedRemoteMonitor builds a monitor without installing its delivery
// hook; KeyedRemoteMonitor feeds detached instances per topic key.
func newDetachedRemoteMonitor(sub *dds.Subscription, cfg SegmentConfig, variant RemoteVariant, lm *LocalMonitor) *RemoteMonitor {
	if cfg.DMon <= 0 || cfg.Period <= 0 {
		panic(fmt.Sprintf("monitor: remote segment %q needs positive DMon and Period", cfg.Name))
	}
	if !cfg.Constraint.Valid() {
		cfg.Constraint = weaklyhard.Constraint{M: 0, K: 1}
	}
	ecu := sub.Node().ECU
	k := ecu.Proc.Kernel()
	m := &RemoteMonitor{
		cfg:     cfg,
		variant: variant,
		sub:     sub,
		rng:     ecu.Proc.RNG().Derive("remotemon/" + cfg.Name),
		clock:   simtime.Clock{K: k},
		timers:  simtime.TimerHost{K: k},
		sync:    simtime.SyncClock{C: ecu.Clock},
		TimeoutRoutineCost: sim.LogNormalDist{
			Median: 10 * sim.Microsecond, Sigma: 0.4,
			Shift: 2 * sim.Microsecond, Max: 100 * sim.Microsecond,
		},
		counter: weaklyhard.NewCounter(cfg.Constraint),
		stats:   NewSegmentStats(cfg.Name),
	}
	switch variant {
	case VariantMonitorThread:
		if lm == nil {
			panic("monitor: VariantMonitorThread needs a LocalMonitor")
		}
		m.exec = simtime.Executor{T: lm.Thread}
	case VariantDDSContext:
		m.exec = simtime.Executor{T: sub.Node().Middleware}
	}
	m.reorder = newReorderBuf(func(r Resolution) {
		m.counter.Record(r.Status == StatusMissed)
		m.stats.record(r)
		if m.tel != nil {
			m.tel.verdict(r)
		}
		for _, fn := range m.onResolve {
			fn(r)
		}
	})
	return m
}

// KeyedRemoteMonitor supervises a topic with multiple communication
// partners: one synchronization-based monitor per observed writer (DDS
// topic key), instantiated lazily on the first sample of each key
// (§IV-B.2 of the paper).
type KeyedRemoteMonitor struct {
	sub     *dds.Subscription
	cfg     SegmentConfig
	variant RemoteVariant
	lm      *LocalMonitor

	monitors map[string]*RemoteMonitor
	order    []string
	onCreate func(writer string, m *RemoteMonitor)
	sink     *telemetry.Sink // nil when uninstrumented
	budget   *BudgetTable    // nil = static deadlines
}

// NewKeyedRemoteMonitor attaches a per-writer monitor family to the
// subscription. cfg is the template configuration applied to every writer's
// monitor (the name is suffixed with the writer key). onCreate, if not nil,
// is invoked for each newly instantiated monitor so callers can wire
// propagation targets and observers per key.
func NewKeyedRemoteMonitor(sub *dds.Subscription, cfg SegmentConfig, variant RemoteVariant, lm *LocalMonitor, onCreate func(writer string, m *RemoteMonitor)) *KeyedRemoteMonitor {
	if cfg.DMon <= 0 || cfg.Period <= 0 {
		panic(fmt.Sprintf("monitor: keyed remote segment %q needs positive DMon and Period", cfg.Name))
	}
	km := &KeyedRemoteMonitor{
		sub: sub, cfg: cfg, variant: variant, lm: lm,
		monitors: make(map[string]*RemoteMonitor),
		onCreate: onCreate,
	}
	sub.OnDeliver = append([]func(*dds.Sample) bool{km.onDeliver}, sub.OnDeliver...)
	return km
}

func (km *KeyedRemoteMonitor) onDeliver(s *dds.Sample) bool {
	if s.Recovered {
		return true
	}
	m, ok := km.monitors[s.Writer]
	if !ok {
		cfg := km.cfg
		cfg.Name = cfg.Name + "@" + s.Writer
		m = newDetachedRemoteMonitor(km.sub, cfg, km.variant, km.lm)
		m.budgetName = km.cfg.Name
		m.AttachBudget(km.budget)
		m.AttachTelemetry(km.sink)
		km.monitors[s.Writer] = m
		km.order = append(km.order, s.Writer)
		if km.onCreate != nil {
			km.onCreate(s.Writer, m)
		}
	}
	return m.onDeliver(s)
}

// Monitor returns the per-writer monitor, or nil if that writer has not
// published yet.
func (km *KeyedRemoteMonitor) Monitor(writer string) *RemoteMonitor {
	return km.monitors[writer]
}

// Writers returns the observed writer keys in first-seen order.
func (km *KeyedRemoteMonitor) Writers() []string {
	return append([]string(nil), km.order...)
}

// Stop disarms every per-writer monitor.
func (km *KeyedRemoteMonitor) Stop() {
	for _, m := range km.monitors {
		m.Stop()
	}
}

// Config returns the segment configuration.
func (m *RemoteMonitor) Config() SegmentConfig { return m.cfg }

// Stats returns the segment's measurement collectors.
func (m *RemoteMonitor) Stats() *SegmentStats { return m.stats }

// Counter returns the segment's (m,k) window counter.
func (m *RemoteMonitor) Counter() *weaklyhard.Counter { return m.counter }

// LateDiscards returns how many samples arrived after their exception and
// were discarded.
func (m *RemoteMonitor) LateDiscards() uint64 { return m.lateDiscards }

// OnResolve registers an observer of in-order activation resolutions.
func (m *RemoteMonitor) OnResolve(fn ResolveFunc) { m.onResolve = append(m.onResolve, fn) }

// PropagateTo sets the subsequent local segment that receives error
// propagation events for unrecoverable violations (Algorithm 1, line 7).
func (m *RemoteMonitor) PropagateTo(p Propagator) { m.propagateTo = p }

// SetLastActivation bounds the supervised stream: once the expectation
// passes the given activation the monitor disarms instead of raising
// further exceptions. Finite experiment runs use this to end supervision
// cleanly with the last real activation.
func (m *RemoteMonitor) SetLastActivation(act uint64) {
	m.lastAct = act
	m.lastActSet = true
}

// Start arms the monitor before the first reception: activation `first` is
// expected by the given local-clock deadline. Without Start, monitoring
// begins at the first received sample (as in the paper's sequence diagram),
// which cannot detect the loss of the very first sample.
func (m *RemoteMonitor) Start(first uint64, deadlineLocal sim.Time) {
	m.started = true
	m.expected = first
	m.deadlineLocal = deadlineLocal
	m.armTimer()
}

// onDeliver is the monitor's hook in the DDS subscriber.
func (m *RemoteMonitor) onDeliver(s *dds.Sample) bool {
	if s.Recovered {
		return true // our own issued receive event
	}
	m.applyBudget()
	now := sim.Time(m.clock.Now())
	m.writer = s.Writer
	if !m.started {
		m.started = true
		m.resolveOK(s, now)
		m.expected = s.Activation + 1
		m.deadlineLocal = s.SrcTimestamp.Add(m.cfg.Period + m.cfg.DMon)
		m.armTimer()
		return true
	}
	if s.Activation < m.expected {
		// Too late: the corresponding exception already fired; discard so
		// the receive event is skipped (§IV-B.3).
		m.lateDiscards++
		if m.tel != nil {
			m.tel.discards.Inc()
		}
		return false
	}
	if s.Activation > m.expected {
		// In-order delivery proves the intermediate activations are lost;
		// raise their exceptions immediately.
		for a := m.expected; a < s.Activation; a++ {
			m.runHandler(a, 0)
			m.deadlineLocal = m.deadlineLocal.Add(m.cfg.Period)
		}
		m.expected = s.Activation
	}
	// On-time reception of the expected activation: reconfigure the timer
	// from the received source timestamp.
	m.resolveOK(s, now)
	m.expected = s.Activation + 1
	m.deadlineLocal = s.SrcTimestamp.Add(m.cfg.Period + m.cfg.DMon)
	m.armTimer()
	return true
}

func (m *RemoteMonitor) resolveOK(s *dds.Sample, now sim.Time) {
	m.resolve(Resolution{
		Activation: s.Activation,
		Status:     StatusOK,
		Start:      s.PubTime,
		End:        now,
		Latency:    now.Sub(s.PubTime),
	})
}

// Stop disarms the monitor: no further timeouts fire. Supervision of a
// terminating stream must be stopped explicitly, exactly like disabling the
// corresponding QoS in DDS.
func (m *RemoteMonitor) Stop() {
	m.stopped = true
	if m.timer != nil {
		m.timer.Cancel()
		m.timer = nil
	}
}

// armTimer programs the deadline timer for the expected activation.
func (m *RemoteMonitor) armTimer() {
	if m.timer != nil {
		m.timer.Cancel()
	}
	if m.stopped {
		return
	}
	delay := m.sync.GlobalAfter(rt.Time(m.deadlineLocal))
	if delay < 0 {
		delay = 0
	}
	act := m.expected
	m.timer = m.timers.After(delay, func() { m.onTimeout(act) })
	if m.tel != nil {
		m.tel.programs.Inc()
		m.tel.track.Append(telemetry.Event{
			TS: int64(m.clock.Now()), Act: act, Arg: int64(m.deadlineLocal),
			Flow: m.tel.flow(act),
			Kind: telemetry.KindTimerProgram, Label: m.tel.label,
		})
	}
}

// onTimeout dispatches the timeout routine onto the variant's thread. The
// latency from here to the routine's entry is the Fig. 12 measurement.
func (m *RemoteMonitor) onTimeout(act uint64) {
	deadlineGlobal := sim.Time(m.clock.Now())
	cost := m.TimeoutRoutineCost.Sample(m.rng)
	m.exec.Exec("rtimeout/"+m.cfg.Name, cost, func(started rt.Time) {
		if m.expected != act {
			return // the sample slipped in between deadline and entry
		}
		m.handleTimeout(act, sim.Time(started).Sub(deadlineGlobal))
	})
}

// handleTimeout raises the temporal exception for the expected activation:
// the handler either recovers by issuing a receive event with substitute
// data, or the violation is propagated to the subsequent local segment
// (Algorithm 1).
func (m *RemoteMonitor) handleTimeout(act uint64, detection sim.Duration) {
	if m.lastActSet && act > m.lastAct {
		m.Stop()
		return
	}
	m.applyBudget()
	m.runHandler(act, detection)
	// Next deadline: add the publication period to the last set deadline
	// and restart the timer (Fig. 8).
	m.expected = act + 1
	m.deadlineLocal = m.deadlineLocal.Add(m.cfg.Period)
	m.armTimer()
}

// runHandler raises the temporal exception for the activation. A zero
// detection latency marks violations proven by a later in-order arrival
// rather than a timer expiry.
func (m *RemoteMonitor) runHandler(act uint64, detection sim.Duration) {
	now := sim.Time(m.clock.Now())
	ctx := &ExceptionContext{
		Segment:    m.cfg.Name,
		Activation: act,
		Misses:     m.counter.Misses(),
		Budget:     m.counter.Budget(),
		RaisedAt:   now,
	}
	var rec *Recovery
	if m.cfg.Handler != nil {
		rec = m.cfg.Handler(ctx)
	}
	r := Resolution{
		Activation:       act,
		Exception:        true,
		End:              now,
		HandlerEntry:     now,
		HandlerDone:      now,
		DetectionLatency: detection,
	}
	if rec != nil {
		// Recovery: issue the receive event with the recovered data
		// (Algorithm 1, line 4). Downstream hooks and the application
		// callback observe a regular reception.
		r.Status = StatusRecovered
		m.sub.DeliverLocal(&dds.Sample{
			Topic:      m.sub.Topic,
			Writer:     m.writer,
			Activation: act,
			Data:       rec.Data,
			Size:       rec.Size,
			Recovered:  true,
		})
	} else {
		// Propagation: an error propagation event is sent to the monitor
		// of the subsequent local segment instead of a start event
		// (Algorithm 1, line 7).
		r.Status = StatusMissed
		if m.propagateTo != nil {
			m.propagateTo.PropagateInto(act)
		}
	}
	if m.tel != nil {
		m.tel.handlerDone(act, now, now, rec != nil)
	}
	m.resolve(r)
}

func (m *RemoteMonitor) resolve(r Resolution) {
	m.reorder.add(r)
}

// InterArrivalMonitor is the baseline the paper argues against (Fig. 6): a
// DDS-deadline-QoS-style supervisor that programs a timer for t_max after
// each arrival. It cannot detect consecutive deadline misses (the timer is
// only programmed on arrivals, without interpreting timestamps), so it is
// only suitable for m = 0, and any t_max trades false positives against
// undetected violations.
type InterArrivalMonitor struct {
	sub  *dds.Subscription
	TMax sim.Duration

	clock      rt.Clock
	timers     rt.TimerHost
	timer      rt.Timer
	arrivals   uint64
	detections []sim.Time
	onDetect   func(sim.Time)
	stopped    bool
}

// NewInterArrivalMonitor attaches an inter-arrival supervisor to the
// subscription with the given maximum inter-arrival time t_max.
func NewInterArrivalMonitor(sub *dds.Subscription, tMax sim.Duration) *InterArrivalMonitor {
	k := sub.Node().ECU.Proc.Kernel()
	m := &InterArrivalMonitor{
		sub: sub, TMax: tMax,
		clock:  simtime.Clock{K: k},
		timers: simtime.TimerHost{K: k},
	}
	sub.OnDeliver = append([]func(*dds.Sample) bool{m.onDeliver}, sub.OnDeliver...)
	return m
}

// OnDetect registers a callback invoked at each detection.
func (m *InterArrivalMonitor) OnDetect(fn func(sim.Time)) { m.onDetect = fn }

// Arrivals returns the number of observed receptions.
func (m *InterArrivalMonitor) Arrivals() uint64 { return m.arrivals }

// Detections returns the times at which the inter-arrival timer expired.
func (m *InterArrivalMonitor) Detections() []sim.Time { return m.detections }

// Stop disarms the supervisor.
func (m *InterArrivalMonitor) Stop() {
	m.stopped = true
	if m.timer != nil {
		m.timer.Cancel()
		m.timer = nil
	}
}

func (m *InterArrivalMonitor) onDeliver(s *dds.Sample) bool {
	m.arrivals++
	m.arm()
	return true
}

func (m *InterArrivalMonitor) arm() {
	if m.timer != nil {
		m.timer.Cancel()
	}
	if m.stopped {
		return
	}
	m.timer = m.timers.After(m.TMax, m.expire)
}

func (m *InterArrivalMonitor) expire() {
	now := sim.Time(m.clock.Now())
	m.detections = append(m.detections, now)
	if m.onDetect != nil {
		m.onDetect(now)
	}
	if m.stopped {
		return
	}
	// Like the DDS deadline QoS, the supervision continues: the next
	// detection is due t_max later unless a sample arrives first.
	m.timer = m.timers.After(m.TMax, m.expire)
}
