package monitor

import (
	"fmt"

	"chainmon/internal/dds"
	"chainmon/internal/sim"
	"chainmon/internal/weaklyhard"
)

// SegmentKind distinguishes the two segment types of the system model.
type SegmentKind int

// Segment kinds.
const (
	// KindLocal: starts with a receive event and ends with a publication
	// (or a reception, for chain-terminal sinks) on the same ECU.
	KindLocal SegmentKind = iota
	// KindRemote: starts with a publication and ends with a reception on
	// another ECU.
	KindRemote
)

func (k SegmentKind) String() string {
	if k == KindRemote {
		return "remote"
	}
	return "local"
}

// SegmentSpec declares one segment of a chain for the builder.
type SegmentSpec struct {
	Name string
	Kind SegmentKind
	// DMon/DEx/Handler/HandlerCost as in SegmentConfig; Period and
	// Constraint are inherited from the chain.
	DMon        sim.Duration
	DEx         sim.Duration
	Handler     Handler
	HandlerCost sim.Dist

	// Local segments: StartSub is the reception that starts the segment;
	// exactly one of EndPub (publication end, with skip propagation) or
	// EndSub (reception end, chain-terminal) must be set.
	StartSub *dds.Subscription
	EndPub   *dds.Publisher
	EndSub   *dds.Subscription

	// Remote segments: Sub is the monitored subscription at the receiver;
	// Variant selects the timeout-routine placement.
	Sub     *dds.Subscription
	Variant RemoteVariant
}

// ChainSpec declares a full event chain: an alternating sequence of remote
// and local segments with the chain-level requirements.
type ChainSpec struct {
	Name       string
	Be2e       sim.Duration
	Bseg       sim.Duration
	Period     sim.Duration
	Constraint weaklyhard.Constraint
	Segments   []SegmentSpec
}

// BuiltChain is the wired result of BuildChain.
type BuiltChain struct {
	Chain *Chain
	// Locals and Remotes hold the created monitors by segment name.
	Locals  map[string]*LocalSegment
	Remotes map[string]*RemoteMonitor
	// Monitors holds the per-ECU local monitor threads that were used or
	// created.
	Monitors map[*dds.ECU]*LocalMonitor
	// Budget is the chain's hot-swappable deadline table, attached to every
	// monitor of the chain. Deadlines staged on it retime the corresponding
	// segments at runtime (the construction-time DMon values remain in force
	// until the first Stage).
	Budget *BudgetTable
}

// BuildChain validates a chain specification and wires everything the paper
// requires: per-ECU monitor threads, local segments with their event hooks
// and skip-propagation, synchronization-based remote monitors, explicit
// remote→local error propagation, and the chain-level (m,k) accounting.
//
// Validation enforces the system model: segments alternate between remote
// and local so there are no unmonitored gaps, each local segment's start
// subscription lives on the same ECU as its end, the budget Eq. 1 holds
// (Σ(d_mon+d_ex) ≤ B_e2e), and every deadline respects B_seg (Eq. 4).
//
// Existing monitors can be passed in; ECUs without one get a fresh monitor
// thread.
func BuildChain(spec ChainSpec, monitors map[*dds.ECU]*LocalMonitor) (*BuiltChain, error) {
	if len(spec.Segments) == 0 {
		return nil, fmt.Errorf("monitor: chain %q has no segments", spec.Name)
	}
	if !spec.Constraint.Valid() {
		return nil, fmt.Errorf("monitor: chain %q has invalid constraint %v", spec.Name, spec.Constraint)
	}
	if spec.Period <= 0 {
		return nil, fmt.Errorf("monitor: chain %q needs a positive period", spec.Name)
	}
	var sum sim.Duration
	for i, s := range spec.Segments {
		if s.DMon <= 0 {
			return nil, fmt.Errorf("monitor: segment %q needs a positive DMon", s.Name)
		}
		if i > 0 && s.Kind == spec.Segments[i-1].Kind {
			return nil, fmt.Errorf("monitor: segments %q and %q are both %v — the chain must alternate (no unmonitored gaps)",
				spec.Segments[i-1].Name, s.Name, s.Kind)
		}
		d := s.DMon + s.DEx
		sum += d
		if spec.Bseg > 0 && d > spec.Bseg {
			return nil, fmt.Errorf("monitor: segment %q deadline %v exceeds B_seg %v (Eq. 4)", s.Name, d, spec.Bseg)
		}
		switch s.Kind {
		case KindLocal:
			if s.StartSub == nil {
				return nil, fmt.Errorf("monitor: local segment %q needs StartSub", s.Name)
			}
			if (s.EndPub == nil) == (s.EndSub == nil) {
				return nil, fmt.Errorf("monitor: local segment %q needs exactly one of EndPub or EndSub", s.Name)
			}
			if s.EndSub != nil && s.EndSub.Node().ECU != s.StartSub.Node().ECU {
				return nil, fmt.Errorf("monitor: local segment %q spans ECUs %s and %s",
					s.Name, s.StartSub.Node().ECU.Name, s.EndSub.Node().ECU.Name)
			}
			if s.EndSub != nil && i != len(spec.Segments)-1 {
				return nil, fmt.Errorf("monitor: local segment %q ends at a reception but is not chain-terminal", s.Name)
			}
		case KindRemote:
			if s.Sub == nil {
				return nil, fmt.Errorf("monitor: remote segment %q needs Sub", s.Name)
			}
		default:
			return nil, fmt.Errorf("monitor: segment %q has unknown kind %d", s.Name, s.Kind)
		}
	}
	if spec.Be2e > 0 && sum > spec.Be2e {
		return nil, fmt.Errorf("monitor: chain %q deadline sum %v exceeds B_e2e %v (Eq. 1)", spec.Name, sum, spec.Be2e)
	}

	if monitors == nil {
		monitors = make(map[*dds.ECU]*LocalMonitor)
	}
	lmFor := func(ecu *dds.ECU) *LocalMonitor {
		if lm, ok := monitors[ecu]; ok {
			return lm
		}
		lm := NewLocalMonitor(ecu)
		monitors[ecu] = lm
		return lm
	}

	built := &BuiltChain{
		Chain:    NewChain(spec.Name, spec.Be2e, spec.Bseg, spec.Constraint),
		Locals:   make(map[string]*LocalSegment),
		Remotes:  make(map[string]*RemoteMonitor),
		Monitors: monitors,
		Budget:   NewBudgetTable(),
	}
	segs := make([]MonitoredSegment, len(spec.Segments))
	for i, s := range spec.Segments {
		cfg := SegmentConfig{
			Name: s.Name, DMon: s.DMon, DEx: s.DEx,
			Period: spec.Period, Constraint: spec.Constraint,
			Handler: s.Handler, HandlerCost: s.HandlerCost,
		}
		switch s.Kind {
		case KindLocal:
			lm := lmFor(s.StartSub.Node().ECU)
			seg := lm.AddSegment(cfg)
			seg.StartOnDeliver(s.StartSub)
			if s.EndPub != nil {
				seg.EndOnPublish(s.EndPub)
			} else {
				seg.EndOnDeliver(s.EndSub)
			}
			lm.AttachBudget(built.Budget)
			built.Locals[s.Name] = seg
			segs[i] = seg
		case KindRemote:
			lm := lmFor(s.Sub.Node().ECU)
			rm := NewRemoteMonitor(s.Sub, cfg, s.Variant, lm)
			rm.AttachBudget(built.Budget)
			built.Remotes[s.Name] = rm
			segs[i] = rm
		}
	}
	// Wire explicit remote→local propagation; local→remote propagation is
	// implicit through the omitted publication.
	for i, s := range spec.Segments {
		if s.Kind == KindRemote && i+1 < len(spec.Segments) {
			built.Remotes[s.Name].PropagateTo(built.Locals[spec.Segments[i+1].Name])
		}
	}
	for _, seg := range segs {
		built.Chain.Append(seg)
	}
	built.Chain.Seal()
	return built, nil
}
