package monitor

import (
	"sync"
	"sync/atomic"

	rt "chainmon/internal/runtime"
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
)

// DeadlineUpdate retimes one segment's monitored deadline d_mon. The
// exception budget d_ex is a solver constant, so the segment deadline
// d = d_mon + d_ex moves with d_mon.
type DeadlineUpdate struct {
	Segment string
	DMon    sim.Duration
}

// budgetVersion is one immutable snapshot of the staged budget table. Each
// version carries the FULL set of staged deadlines (not a delta), so a
// monitor that slept through intermediate epochs converges to the current
// table from whichever version it loads next.
type budgetVersion struct {
	epoch   uint64
	updates []DeadlineUpdate
}

// BudgetTable is the versioned, hot-swappable source of per-segment
// monitored deadlines. The adaptive controller (or a test) stages new
// deadlines; monitors apply them on their own execution contexts — the
// local monitor at the top of a scan pass, the remote monitor at the top
// of its delivery/timeout handlers — so in-flight activations always
// finish under the deadline they were armed with (the swap barrier).
//
// The staged side is mutex-serialized; the monitor side is one atomic
// pointer load plus an epoch compare per pass, allocation-free, with no
// locks on the hot path.
type BudgetTable struct {
	mu      sync.Mutex
	epoch   uint64
	current map[string]sim.Duration
	order   []string // deterministic update order: first-staged first
	wakers  []func()

	version atomic.Pointer[budgetVersion]
	applied atomic.Uint64
}

// NewBudgetTable creates an empty table at epoch 0 (monitors keep their
// construction-time deadlines until the first Stage).
func NewBudgetTable() *BudgetTable {
	return &BudgetTable{current: make(map[string]sim.Duration)}
}

// Stage publishes a new budget version containing the given retimings (on
// top of everything staged before) and returns its epoch. Registered
// monitor wakers are kicked so wall-clock scan loops pick the version up
// promptly; on the sim timebase the kick enqueues a deterministic scan
// work item. Updates with a non-positive deadline are ignored — a budget
// can shrink, never vanish.
func (t *BudgetTable) Stage(updates []DeadlineUpdate) uint64 {
	t.mu.Lock()
	for _, u := range updates {
		if u.DMon <= 0 {
			continue
		}
		if _, ok := t.current[u.Segment]; !ok {
			t.order = append(t.order, u.Segment)
		}
		t.current[u.Segment] = u.DMon
	}
	t.epoch++
	v := &budgetVersion{epoch: t.epoch, updates: make([]DeadlineUpdate, 0, len(t.order))}
	for _, name := range t.order {
		v.updates = append(v.updates, DeadlineUpdate{Segment: name, DMon: t.current[name]})
	}
	t.version.Store(v)
	wakers := t.wakers
	t.mu.Unlock()
	for _, w := range wakers {
		w()
	}
	return v.epoch
}

// Epoch returns the most recently staged epoch (0 = nothing staged).
func (t *BudgetTable) Epoch() uint64 {
	if v := t.version.Load(); v != nil {
		return v.epoch
	}
	return 0
}

// AppliedEpoch returns the highest epoch any attached monitor has applied.
func (t *BudgetTable) AppliedEpoch() uint64 { return t.applied.Load() }

// Deadlines returns a copy of the currently staged per-segment deadlines.
func (t *BudgetTable) Deadlines() map[string]sim.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]sim.Duration, len(t.current))
	for name, d := range t.current {
		out[name] = d
	}
	return out
}

// RegisterWaker adds a monitor wake callback invoked after every Stage.
func (t *BudgetTable) RegisterWaker(fn func()) {
	if fn == nil {
		return
	}
	t.mu.Lock()
	t.wakers = append(t.wakers, fn)
	t.mu.Unlock()
}

func (t *BudgetTable) load() *budgetVersion { return t.version.Load() }

func (t *BudgetTable) markApplied(epoch uint64) {
	for {
		cur := t.applied.Load()
		if cur >= epoch || t.applied.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// budgetBinding is one monitor's subscription to a table: the last epoch
// this monitor applied, so a scan pass is a pointer load and a compare.
type budgetBinding struct {
	table *BudgetTable
	seen  uint64
}

// AttachBudget subscribes the local monitor to a budget table. Staged
// deadlines are applied at the top of scan passes — on the scan thread,
// amortized, before the core drains — so every activation drained
// afterwards is armed under the new deadline while in-flight ones keep
// theirs (runtime.Core.SetDeadline with retime=false). A monitor can serve
// several chains and therefore several tables.
func (m *LocalMonitor) AttachBudget(t *BudgetTable) {
	if t == nil {
		return
	}
	for _, b := range m.budgets {
		if b.table == t {
			return
		}
	}
	m.budgets = append(m.budgets, budgetBinding{table: t})
	t.RegisterWaker(m.sched.ForceWake)
}

// applyBudgets folds any newly staged budget versions into the monitor's
// segments. Runs on the scan thread; allocation-free (atomic load, epoch
// compare, and a pair of small nested loops over live segments).
func (m *LocalMonitor) applyBudgets(now rt.Time) {
	for i := range m.budgets {
		b := &m.budgets[i]
		v := b.table.load()
		if v == nil || v.epoch == b.seen {
			continue
		}
		for _, u := range v.updates {
			for _, s := range m.segments {
				if s.cfg.Name == u.Segment && s.cfg.DMon != u.DMon {
					s.cfg.DMon = u.DMon
					m.core.SetDeadline(s.core, rt.Duration(u.DMon), now, false)
					// Record the swap on the monitor track so offline
					// consumers (the blame engine's epoch accounting) see
					// deadline changes in order with the arms they retime,
					// whether the swap came from the adaptive controller or
					// a scripted actuation.
					if m.tel != nil && s.tel != nil {
						m.tel.track.Append(telemetry.Event{
							TS: int64(now), Act: v.epoch, Arg: int64(u.DMon),
							Kind: telemetry.KindBudgetSwap, Label: s.tel.label,
						})
					}
				}
			}
		}
		b.seen = v.epoch
		b.table.markApplied(v.epoch)
	}
}

// AttachBudget subscribes the remote monitor to a budget table. Staged
// deadlines are applied at the top of the delivery and timeout handlers,
// before the next local deadline is derived from the source timestamp —
// the armed timer for the currently expected activation is left untouched,
// which is exactly the swap barrier: the in-flight activation finishes
// under the deadline it started with.
func (m *RemoteMonitor) AttachBudget(t *BudgetTable) {
	if t == nil {
		return
	}
	m.budget = t
	if m.budgetName == "" {
		m.budgetName = m.cfg.Name
	}
}

func (m *RemoteMonitor) applyBudget() {
	if m.budget == nil {
		return
	}
	v := m.budget.load()
	if v == nil || v.epoch == m.budgetSeen {
		return
	}
	for _, u := range v.updates {
		if u.Segment == m.budgetName {
			m.cfg.DMon = u.DMon
		}
	}
	m.budgetSeen = v.epoch
	m.budget.markApplied(v.epoch)
}

// AttachBudget subscribes the whole per-writer monitor family to a table.
// Existing and future per-writer monitors match updates against the family
// template name (the writer suffix is a routing detail, not a budget
// identity).
func (km *KeyedRemoteMonitor) AttachBudget(t *BudgetTable) {
	if t == nil {
		return
	}
	km.budget = t
	for _, m := range km.monitors {
		m.budgetName = km.cfg.Name
		m.AttachBudget(t)
	}
}
