package monitor

import (
	"fmt"

	"chainmon/internal/dds"
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
	"chainmon/internal/weaklyhard"
)

// LocalMonitor supervises the local segments of one ECU. It models the
// paper's implementation (Fig. 4): the instrumented DDS subscriber and
// publisher code posts start and end events into per-segment wait-free ring
// buffers in shared memory; a single monitor thread per ECU, running at the
// highest scheduling priority, is woken through a semaphore on start events,
// drains the buffers in a fixed order, maintains a timeout queue, and raises
// temporal exceptions whose handlers execute on the monitor thread.
type LocalMonitor struct {
	ECU    *dds.ECU
	Thread *sim.Thread

	rng      *sim.RNG
	segments []*LocalSegment

	// PostCost is the overhead of posting one event into a ring buffer
	// (start-event / end-event overhead in Fig. 11).
	PostCost sim.Dist
	// ScanCost is the execution time of one monitor-thread drain pass.
	ScanCost sim.Dist

	scanQueued bool
	overheads  *OverheadStats
	skipTables map[*dds.Publisher]map[uint64]bool

	tel          *monTel // nil when uninstrumented
	lastScanCost sim.Duration
}

// NewLocalMonitor creates the monitor thread of an ECU at the highest
// scheduling priority.
func NewLocalMonitor(ecu *dds.ECU) *LocalMonitor {
	return &LocalMonitor{
		ECU:    ecu,
		Thread: ecu.Proc.NewThread(ecu.Name+"/monitor", dds.PrioMonitor),
		rng:    ecu.Proc.RNG().Derive("localmon"),
		PostCost: sim.LogNormalDist{
			Median: 15 * sim.Microsecond, Sigma: 0.5,
			Shift: 3 * sim.Microsecond, Max: 100 * sim.Microsecond,
		},
		ScanCost: sim.LogNormalDist{
			Median: 20 * sim.Microsecond, Sigma: 0.4,
			Shift: 5 * sim.Microsecond, Max: 150 * sim.Microsecond,
		},
		overheads:  NewOverheadStats(),
		skipTables: make(map[*dds.Publisher]map[uint64]bool),
	}
}

// Overheads returns the Fig. 11 overhead collectors of this monitor.
func (m *LocalMonitor) Overheads() *OverheadStats { return m.overheads }

// Segments returns the registered segments in their fixed processing order.
func (m *LocalMonitor) Segments() []*LocalSegment { return m.segments }

// ringEvent is one posted start or end event.
type ringEvent struct {
	act    uint64
	ts     sim.Time // event time (global)
	posted sim.Time // when it was placed into the ring
}

// armedTimeout tracks one outstanding segment activation.
type armedTimeout struct {
	act      uint64
	start    sim.Time
	deadline sim.Time
	timer    *sim.Event
}

// LocalSegment is one monitored local segment: it starts with a receive
// event and ends with a publication event — or, as in the evaluation's rviz
// setup, with a reception — on the same ECU. A segment may span several
// processes.
type LocalSegment struct {
	cfg SegmentConfig
	mon *LocalMonitor

	startRing []ringEvent
	endRing   []ringEvent
	pending   map[uint64]*armedTimeout
	excepted  map[uint64]bool
	resolved  map[uint64]bool

	counter *weaklyhard.Counter
	reorder *reorderBuf
	stats   *SegmentStats

	// endPub is the publisher whose publication is this segment's end
	// event; used for recovery publication and skip-next propagation.
	// Nil when the segment ends at a reception.
	endPub *dds.Publisher
	tel    *segTel // nil when uninstrumented
	// endSub is the subscription used by remote recovery handlers; set
	// when the segment starts at this subscription.
	propagateTo Propagator
	onResolve   []ResolveFunc
}

// AddSegment registers a local segment. Registration order is the fixed
// order in which the monitor thread processes the per-segment buffers — the
// source of the Fig. 10 asymmetry between the objects and ground segments.
func (m *LocalMonitor) AddSegment(cfg SegmentConfig) *LocalSegment {
	if cfg.DMon <= 0 {
		panic(fmt.Sprintf("monitor: segment %q needs a positive DMon", cfg.Name))
	}
	if !cfg.Constraint.Valid() {
		cfg.Constraint = weaklyhard.Constraint{M: 0, K: 1}
	}
	s := &LocalSegment{
		cfg:      cfg,
		mon:      m,
		pending:  make(map[uint64]*armedTimeout),
		excepted: make(map[uint64]bool),
		resolved: make(map[uint64]bool),
		counter:  weaklyhard.NewCounter(cfg.Constraint),
		stats:    NewSegmentStats(cfg.Name),
	}
	s.reorder = newReorderBuf(func(r Resolution) {
		s.counter.Record(r.Status == StatusMissed)
		s.stats.record(r)
		if s.tel != nil {
			s.tel.verdict(r)
		}
		for _, fn := range s.onResolve {
			fn(r)
		}
	})
	if m.tel != nil {
		s.tel = newSegTel(m.tel.sink, m.tel.track, s.cfg.Name)
	}
	m.segments = append(m.segments, s)
	return s
}

// Config returns the segment configuration.
func (s *LocalSegment) Config() SegmentConfig { return s.cfg }

// Stats returns the segment's measurement collectors.
func (s *LocalSegment) Stats() *SegmentStats { return s.stats }

// Counter returns the segment's (m,k) window counter.
func (s *LocalSegment) Counter() *weaklyhard.Counter { return s.counter }

// OnResolve registers an observer of in-order activation resolutions.
func (s *LocalSegment) OnResolve(fn ResolveFunc) { s.onResolve = append(s.onResolve, fn) }

// PropagateTo sets an explicit onward propagation target invoked for
// unrecovered misses (used when the segment's end event is a reception and
// omission-based propagation is unavailable).
func (s *LocalSegment) PropagateTo(p Propagator) { s.propagateTo = p }

// StartOnDeliver makes receptions of the subscription this segment's start
// events: the instrumented DDS subscriber posts the timestamp into the ring
// buffer and raises the monitor's semaphore.
func (s *LocalSegment) StartOnDeliver(sub *dds.Subscription) {
	sub.OnDeliver = append(sub.OnDeliver, func(smp *dds.Sample) bool {
		s.postStart(smp.Activation)
		return true
	})
}

// StartInjected posts a start event directly (used by recovery paths that
// issue substitute receive events).
func (s *LocalSegment) StartInjected(act uint64) { s.postStart(act) }

// EndOnPublish makes publications of the publisher this segment's end
// events, and installs the skip-next-publication veto used for propagation.
func (s *LocalSegment) EndOnPublish(pub *dds.Publisher) {
	s.endPub = pub
	s.mon.ensureSkipVeto(pub)
	pub.OnPublish = append(pub.OnPublish, func(smp *dds.Sample) {
		s.postEnd(smp.Activation)
	})
}

// EndOnDeliver makes receptions at the subscription this segment's end
// events (the evaluation's segments end at receptions inside rviz, which
// publishes nothing).
func (s *LocalSegment) EndOnDeliver(sub *dds.Subscription) {
	sub.OnDeliver = append(sub.OnDeliver, func(smp *dds.Sample) bool {
		if s.excepted[smp.Activation] {
			// The exception already resolved this activation; the late
			// end event and its receive action are discarded.
			return false
		}
		s.postEnd(smp.Activation)
		return true
	})
}

// ensureSkipVeto installs the publisher-side evaluation of the shared skip
// counter exactly once per publisher (several segments may share an end
// publication).
func (m *LocalMonitor) ensureSkipVeto(pub *dds.Publisher) {
	if _, ok := m.skipTables[pub]; ok {
		return
	}
	table := make(map[uint64]bool)
	m.skipTables[pub] = table
	pub.PrePublish = append(pub.PrePublish, func(smp *dds.Sample) bool {
		if table[smp.Activation] {
			delete(table, smp.Activation)
			return false
		}
		return true
	})
}

// markSkip arranges for the (late) publication of the activation to be
// omitted.
func (m *LocalMonitor) markSkip(pub *dds.Publisher, act uint64) {
	if pub == nil {
		return
	}
	m.skipTables[pub][act] = true
}

// postStart models the instrumented subscriber: post into the start ring,
// record the posting overhead, and raise the monitor semaphore.
func (s *LocalSegment) postStart(act uint64) {
	now := s.mon.ECU.Proc.Kernel().Now()
	s.mon.overheads.StartPost.AddDuration(s.mon.PostCost.Sample(s.mon.rng))
	s.startRing = append(s.startRing, ringEvent{act: act, ts: now, posted: now})
	if s.tel != nil {
		s.tel.track.Append(telemetry.Event{
			TS: int64(now), Act: act, Arg: int64(len(s.startRing)),
			Kind: telemetry.KindRingPostStart, Label: s.tel.label,
		})
	}
	s.mon.wake()
}

// postEnd models the instrumented publisher: post into the end ring without
// waking the monitor (processing end events is not time critical, saving a
// context switch).
func (s *LocalSegment) postEnd(act uint64) {
	now := s.mon.ECU.Proc.Kernel().Now()
	s.mon.overheads.EndPost.AddDuration(s.mon.PostCost.Sample(s.mon.rng))
	s.endRing = append(s.endRing, ringEvent{act: act, ts: now, posted: now})
	if s.tel != nil {
		s.tel.track.Append(telemetry.Event{
			TS: int64(now), Act: act, Arg: int64(len(s.endRing)),
			Kind: telemetry.KindRingPostEnd, Label: s.tel.label,
		})
	}
}

// wake raises the monitor semaphore: one scan pass is queued on the monitor
// thread unless one is already outstanding.
func (m *LocalMonitor) wake() {
	if m.scanQueued {
		return
	}
	m.scanQueued = true
	m.queueScan()
}

// forceWake queues a scan unconditionally; timeout timers use it so that a
// scan that is already queued but might run before the deadline cannot
// swallow the timeout.
func (m *LocalMonitor) forceWake() {
	m.scanQueued = true
	m.queueScan()
}

func (m *LocalMonitor) queueScan() {
	cost := m.ScanCost.Sample(m.rng)
	m.overheads.MonExec.AddDuration(cost)
	if m.tel != nil {
		m.lastScanCost = cost
	}
	m.Thread.Enqueue("monitor/scan", cost, m.scan)
}

// scan is one monitor-thread pass: drain all rings in the fixed segment
// order, arm timeouts for new start events, resolve completed activations,
// and fire due temporal exceptions.
func (m *LocalMonitor) scan() {
	m.scanQueued = false
	now := m.ECU.Proc.Kernel().Now()
	for _, s := range m.segments {
		s.drain(now)
	}
	for _, s := range m.segments {
		s.fireDue(now)
	}
	if m.tel != nil {
		m.tel.scans.Inc()
		depth := 0
		for _, s := range m.segments {
			depth += len(s.pending)
		}
		m.tel.depth.Set(int64(depth))
		m.tel.track.Append(telemetry.Event{
			TS: int64(now), Arg: int64(m.lastScanCost), Kind: telemetry.KindScan,
		})
		m.tel.track.Append(telemetry.Event{
			TS: int64(now), Arg: int64(depth), Kind: telemetry.KindTimeoutQueue,
		})
	}
}

func (s *LocalSegment) drain(now sim.Time) {
	k := s.mon.ECU.Proc.Kernel()
	for _, ev := range s.startRing {
		s.mon.overheads.MonLatency.AddDuration(now.Sub(ev.posted))
		if s.resolved[ev.act] || s.excepted[ev.act] {
			continue // propagated-in activation that was already handled
		}
		a := &armedTimeout{act: ev.act, start: ev.ts, deadline: ev.ts.Add(s.cfg.DMon)}
		s.pending[ev.act] = a
		if s.tel != nil {
			s.tel.track.Append(telemetry.Event{
				TS: int64(now), Act: ev.act, Arg: int64(a.deadline),
				Kind: telemetry.KindTimeoutArm, Label: s.tel.label,
			})
		}
		if a.deadline > now {
			a.timer = k.AtPriority(a.deadline, dds.PrioMonitor, s.mon.forceWake)
		}
		// Deadlines already in the past are picked up by fireDue below.
	}
	s.startRing = s.startRing[:0]
	for _, ev := range s.endRing {
		if a, ok := s.pending[ev.act]; ok {
			if a.timer != nil {
				k.Cancel(a.timer)
			}
			delete(s.pending, ev.act)
			s.resolve(Resolution{
				Activation: ev.act,
				Status:     StatusOK,
				Start:      a.start,
				End:        ev.ts,
				Latency:    ev.ts.Sub(a.start),
			})
		}
		// End events for excepted activations are discarded; end events
		// without a start cannot occur (causality).
	}
	s.endRing = s.endRing[:0]
}

// fireDue raises temporal exceptions for all armed activations whose
// monitored deadline has passed without an end event.
func (s *LocalSegment) fireDue(now sim.Time) {
	var due []*armedTimeout
	for _, a := range s.pending {
		if a.deadline <= now {
			due = append(due, a)
		}
	}
	// Deterministic order by activation.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && due[j].act < due[j-1].act; j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	for _, a := range due {
		delete(s.pending, a.act)
		s.excepted[a.act] = true
		if s.tel != nil {
			s.tel.track.Append(telemetry.Event{
				TS: int64(now), Act: a.act,
				Kind: telemetry.KindTimeoutFire, Label: s.tel.label,
			})
		}
		s.raiseException(a.act, a.start, a.deadline, false)
	}
}

// raiseException queues the exception handling on the monitor thread
// (highest priority, bounded cost) and performs the Algorithm 2 decision at
// handler completion.
func (s *LocalSegment) raiseException(act uint64, start, deadline sim.Time, propagated bool) {
	k := s.mon.ECU.Proc.Kernel()
	raisedAt := k.Now()
	cost := s.cfg.handlerCost(s.mon.rng)
	// The monitor thread dispatches the handler to itself (no wakeup):
	// handlers of simultaneous exceptions run back to back in the fixed
	// segment order.
	var w *sim.WorkItem
	w = s.mon.Thread.EnqueueDirect("exc/"+s.cfg.Name, cost, func() {
		now := k.Now()
		ctx := &ExceptionContext{
			Segment:    s.cfg.Name,
			Activation: act,
			Misses:     s.counter.Misses(),
			Budget:     s.counter.Budget(),
			Propagated: propagated,
			RaisedAt:   raisedAt,
		}
		var rec *Recovery
		if s.cfg.Handler != nil {
			rec = s.cfg.Handler(ctx)
		}
		r := Resolution{
			Activation:   act,
			Start:        start,
			End:          now,
			Exception:    true,
			HandlerEntry: w.Started(),
			HandlerDone:  now,
		}
		if start != 0 {
			r.Latency = now.Sub(start)
		}
		if !propagated {
			r.DetectionLatency = w.Started().Sub(deadline)
		}
		if rec != nil {
			// Recovery (Algorithm 2, line 4): publish the recovered data
			// as a regular middleware message; the late regular
			// publication is skipped.
			r.Status = StatusRecovered
			if s.endPub != nil {
				s.endPub.PublishBypass(act, rec.Data, rec.Size)
				if !propagated {
					s.mon.markSkip(s.endPub, act)
				}
			}
		} else {
			// Propagation (Algorithm 2, line 7): omit the late
			// publication; the subsequent remote segment detects the
			// missing publication by timeout.
			r.Status = StatusMissed
			if !propagated {
				s.mon.markSkip(s.endPub, act)
			}
			if s.propagateTo != nil {
				s.propagateTo.PropagateInto(act)
			}
		}
		if s.tel != nil {
			s.tel.handlerDone(act, w.Started(), now, rec != nil)
		}
		s.resolve(r)
	})
}

// PropagateInto implements Propagator: an unrecoverable violation of the
// preceding (remote) segment arrives as an error propagation event instead
// of a start event. The exception handling is invoked directly.
func (s *LocalSegment) PropagateInto(act uint64) {
	if s.resolved[act] || s.excepted[act] {
		return
	}
	s.excepted[act] = true
	s.raiseException(act, 0, 0, true)
}

func (s *LocalSegment) resolve(r Resolution) {
	if s.resolved[r.Activation] {
		return
	}
	// The excepted marker is kept after resolution so that late end events
	// (and their receive actions, for EndOnDeliver segments) are discarded.
	s.resolved[r.Activation] = true
	s.reorder.add(r)
	if r.Activation%256 == 0 {
		s.gc(r.Activation)
	}
}

// gc bounds the bookkeeping maps: activations far in the past can no longer
// receive events.
func (s *LocalSegment) gc(act uint64) {
	const horizon = 4096
	if act < horizon {
		return
	}
	old := act - horizon
	for a := range s.resolved {
		if a < old {
			delete(s.resolved, a)
		}
	}
	for a := range s.excepted {
		if a < old {
			delete(s.excepted, a)
		}
	}
}
