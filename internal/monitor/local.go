package monitor

import (
	"fmt"

	"chainmon/internal/dds"
	"chainmon/internal/livestats"
	rt "chainmon/internal/runtime"
	"chainmon/internal/runtime/simtime"
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
	"chainmon/internal/weaklyhard"
)

// LocalMonitor supervises the local segments of one ECU. It models the
// paper's implementation (Fig. 4): the instrumented DDS subscriber and
// publisher code posts start and end events into per-segment wait-free ring
// buffers in shared memory; a single monitor thread per ECU, running at the
// highest scheduling priority, is woken through a semaphore on start events,
// drains the buffers in a fixed order, maintains a timeout queue, and raises
// temporal exceptions whose handlers execute on the monitor thread.
//
// The ring-drain/timeout-queue algorithm itself lives in runtime.Core; this
// type adds the verdict bookkeeping (skip propagation, (m,k) accounting,
// Algorithm 2 decisions) and binds the core to a timebase. NewLocalMonitor
// builds it on the deterministic simulation runtime; NewWallclockMonitor
// builds the same logic on the wall-clock runtime (real rings, real
// goroutines — see internal/runtime/walltime).
type LocalMonitor struct {
	ECU    *dds.ECU    // nil on the wall-clock runtime
	Thread *sim.Thread // nil on the wall-clock runtime

	clock rt.Clock
	exec  rt.Executor
	sched rt.Waker
	// armTimer arms a scan at the deadline (simtime kernel timer); nil when
	// the host loop sleeps on Core.NextDeadline instead (walltime).
	armTimer func(deadline rt.Time, fire func()) rt.Timer
	// forceWake is the bound m.sched.ForceWake method value, created once —
	// evaluating it per armed timeout would allocate on every activation.
	forceWake func()
	newRing   func() rt.EventRing

	rng      *sim.RNG
	core     *rt.Core
	segments []*LocalSegment

	// PostCost is the overhead of posting one event into a ring buffer
	// (start-event / end-event overhead in Fig. 11).
	PostCost sim.Dist
	// ScanCost is the execution time of one monitor-thread drain pass.
	ScanCost sim.Dist

	overheads  *OverheadStats
	skipTables map[*dds.Publisher]map[uint64]bool

	tel          *monTel        // nil when uninstrumented
	live         *livestats.Set // nil when no live health surface is attached
	lastScanCost sim.Duration

	// budgets are the hot-swappable deadline tables this monitor serves;
	// staged versions are folded in at the top of each scan pass.
	budgets []budgetBinding
}

// NewLocalMonitor creates the monitor thread of an ECU at the highest
// scheduling priority, on the deterministic simulation runtime.
func NewLocalMonitor(ecu *dds.ECU) *LocalMonitor {
	k := ecu.Proc.Kernel()
	m := &LocalMonitor{
		ECU:    ecu,
		Thread: ecu.Proc.NewThread(ecu.Name+"/monitor", dds.PrioMonitor),
		clock:  simtime.Clock{K: k},
		rng:    ecu.Proc.RNG().Derive("localmon"),
		PostCost: sim.LogNormalDist{
			Median: 15 * sim.Microsecond, Sigma: 0.5,
			Shift: 3 * sim.Microsecond, Max: 100 * sim.Microsecond,
		},
		ScanCost: sim.LogNormalDist{
			Median: 20 * sim.Microsecond, Sigma: 0.4,
			Shift: 5 * sim.Microsecond, Max: 150 * sim.Microsecond,
		},
		core:       rt.NewCore(),
		overheads:  NewOverheadStats(),
		skipTables: make(map[*dds.Publisher]map[uint64]bool),
		newRing:    func() rt.EventRing { return &rt.SliceRing{} },
	}
	m.exec = simtime.Executor{T: m.Thread}
	sc := &simScheduler{m: m}
	sc.scanFn = sc.runScan
	m.sched = sc
	m.forceWake = sc.ForceWake
	timers := simtime.TimerHost{K: k}
	m.armTimer = func(deadline rt.Time, fire func()) rt.Timer {
		return timers.At(deadline, dds.PrioMonitor, fire)
	}
	return m
}

// NewWallclockMonitor runs the same local-monitor logic on a wall-clock
// runtime: waker is the monitor semaphore, newRing supplies the per-segment
// SPSC rings, and exception handlers run inline on the goroutine that calls
// ScanNow (the walltime.Loop). There are no per-activation timers — the
// host loop sleeps until Core().NextDeadline().
//
// Concurrency contract: StartInjected/EndInjected must come from a single
// producer goroutine per segment; ScanNow and PropagateInto belong to the
// monitor goroutine. Cost models default to zero (on a real clock the
// costs are real) and must stay RNG-free on the producer path. Attach
// telemetry with AttachWallclockTelemetry, which keeps producer-side posts
// on per-segment tracks so the recorder's single-writer contract holds.
func NewWallclockMonitor(clock rt.Clock, waker rt.Waker, newRing func() rt.EventRing, seed int64) *LocalMonitor {
	m := &LocalMonitor{
		clock:      clock,
		rng:        sim.NewRNG(seed).Derive("localmon"),
		PostCost:   sim.Constant(0),
		ScanCost:   sim.Constant(0),
		core:       rt.NewCore(),
		overheads:  NewOverheadStats(),
		skipTables: make(map[*dds.Publisher]map[uint64]bool),
		newRing:    newRing,
		sched:      waker,
	}
	m.exec = inlineExecutor{clock: clock}
	return m
}

// Overheads returns the Fig. 11 overhead collectors of this monitor.
func (m *LocalMonitor) Overheads() *OverheadStats { return m.overheads }

// Segments returns the registered segments in their fixed processing order.
func (m *LocalMonitor) Segments() []*LocalSegment { return m.segments }

// Core exposes the shared monitor core (the wall-clock loop sleeps on its
// NextDeadline).
func (m *LocalMonitor) Core() *rt.Core { return m.core }

// ScanNow runs one monitor pass at the current clock time. The wall-clock
// loop calls it after a semaphore wake or deadline sleep; on the simulation
// runtime scans are scheduled through the wake path instead.
func (m *LocalMonitor) ScanNow() { m.scan() }

// scanScheduler is the simtime rt.Waker: it queues scan passes on the
// simulated monitor thread with a sampled scan cost, coalescing wakes while
// one pass is outstanding.
type simScheduler struct {
	m      *LocalMonitor
	queued bool
	// scanFn is the bound runScan method value, created once so queueing a
	// scan does not allocate a closure per pass.
	scanFn func()
}

// Wake raises the monitor semaphore: one scan pass is queued on the monitor
// thread unless one is already outstanding.
func (sc *simScheduler) Wake() {
	if sc.queued {
		return
	}
	sc.queued = true
	sc.queue()
}

// ForceWake queues a scan unconditionally; timeout timers use it so that a
// scan that is already queued but might run before the deadline cannot
// swallow the timeout.
func (sc *simScheduler) ForceWake() {
	sc.queued = true
	sc.queue()
}

func (sc *simScheduler) queue() {
	m := sc.m
	cost := m.ScanCost.Sample(m.rng)
	m.overheads.MonExec.AddDuration(cost)
	if m.tel != nil {
		m.lastScanCost = cost
	}
	m.Thread.Enqueue("monitor/scan", cost, sc.scanFn)
}

func (sc *simScheduler) runScan() {
	sc.queued = false
	sc.m.scan()
}

// inlineExecutor runs handler work immediately on the calling goroutine —
// on the wall-clock runtime that is the monitor goroutine itself, matching
// the paper's "handlers execute on the monitor thread".
type inlineExecutor struct{ clock rt.Clock }

func (e inlineExecutor) Exec(_ string, _ rt.Duration, fn func(rt.Time))       { fn(e.clock.Now()) }
func (e inlineExecutor) ExecDirect(_ string, _ rt.Duration, fn func(rt.Time)) { fn(e.clock.Now()) }

// LocalSegment is one monitored local segment: it starts with a receive
// event and ends with a publication event — or, as in the evaluation's rviz
// setup, with a reception — on the same ECU. A segment may span several
// processes.
type LocalSegment struct {
	cfg  SegmentConfig
	mon  *LocalMonitor
	core *rt.Segment

	excepted map[uint64]bool
	resolved map[uint64]bool

	counter *weaklyhard.Counter
	reorder *reorderBuf
	stats   *SegmentStats

	// endPub is the publisher whose publication is this segment's end
	// event; used for recovery publication and skip-next propagation.
	// Nil when the segment ends at a reception.
	endPub *dds.Publisher
	tel    *segTel // nil when uninstrumented
	// propagateTo receives error propagation events for unrecovered misses.
	propagateTo Propagator
	onResolve   []ResolveFunc
}

// AddSegment registers a local segment. Registration order is the fixed
// order in which the monitor thread processes the per-segment buffers — the
// source of the Fig. 10 asymmetry between the objects and ground segments.
func (m *LocalMonitor) AddSegment(cfg SegmentConfig) *LocalSegment {
	if cfg.DMon <= 0 {
		panic(fmt.Sprintf("monitor: segment %q needs a positive DMon", cfg.Name))
	}
	if !cfg.Constraint.Valid() {
		cfg.Constraint = weaklyhard.Constraint{M: 0, K: 1}
	}
	s := &LocalSegment{
		cfg:      cfg,
		mon:      m,
		excepted: make(map[uint64]bool),
		resolved: make(map[uint64]bool),
		counter:  weaklyhard.NewCounter(cfg.Constraint),
		stats:    NewSegmentStats(cfg.Name),
	}
	s.reorder = newReorderBuf(func(r Resolution) {
		s.counter.Record(r.Status == StatusMissed)
		s.stats.record(r)
		if s.tel != nil {
			s.tel.verdict(r)
		}
		for _, fn := range s.onResolve {
			fn(r)
		}
	})
	s.core = m.core.AddSegment(cfg.Name, cfg.DMon, m.newRing(), m.newRing(), rt.SegmentHooks{
		DrainLatency: func(lat rt.Duration) {
			m.overheads.MonLatency.AddDuration(lat)
		},
		SkipArm: func(act uint64) bool {
			return s.resolved[act] || s.excepted[act]
		},
		Arm: func(start rt.Event, deadline, now rt.Time) rt.Timer {
			if s.tel != nil {
				s.tel.track.Append(telemetry.Event{
					TS: int64(now), Act: start.Act, Arg: int64(deadline),
					Flow: start.Flow,
					Kind: telemetry.KindTimeoutArm, Label: s.tel.label,
				})
			}
			if m.armTimer != nil && deadline > now {
				return m.armTimer(deadline, m.forceWake)
			}
			return nil
		},
		OK: func(start rt.Event, end rt.Time) {
			s.resolve(Resolution{
				Activation: start.Act,
				Status:     StatusOK,
				Start:      sim.Time(start.TS),
				End:        sim.Time(end),
				Latency:    end.Sub(start.TS),
			})
		},
		Expire: func(start rt.Event, deadline, now rt.Time) {
			s.excepted[start.Act] = true
			if s.tel != nil {
				s.tel.track.Append(telemetry.Event{
					TS: int64(now), Act: start.Act,
					Flow: start.Flow,
					Kind: telemetry.KindTimeoutFire, Label: s.tel.label,
				})
			}
			s.raiseException(start.Act, sim.Time(start.TS), sim.Time(deadline), false)
		},
	})
	if m.tel != nil {
		s.tel = newSegTel(m.tel.sink, m.tel.track, m.tel.postTrack(s.cfg.Name), s.cfg.Name)
	}
	if m.live != nil {
		s.attachLive(m.live)
	}
	m.segments = append(m.segments, s)
	return s
}

// Config returns the segment configuration.
func (s *LocalSegment) Config() SegmentConfig { return s.cfg }

// Stats returns the segment's measurement collectors.
func (s *LocalSegment) Stats() *SegmentStats { return s.stats }

// Counter returns the segment's (m,k) window counter.
func (s *LocalSegment) Counter() *weaklyhard.Counter { return s.counter }

// OnResolve registers an observer of in-order activation resolutions.
func (s *LocalSegment) OnResolve(fn ResolveFunc) { s.onResolve = append(s.onResolve, fn) }

// PropagateTo sets an explicit onward propagation target invoked for
// unrecovered misses (used when the segment's end event is a reception and
// omission-based propagation is unavailable).
func (s *LocalSegment) PropagateTo(p Propagator) { s.propagateTo = p }

// StartOnDeliver makes receptions of the subscription this segment's start
// events: the instrumented DDS subscriber posts the timestamp into the ring
// buffer and raises the monitor's semaphore.
func (s *LocalSegment) StartOnDeliver(sub *dds.Subscription) {
	sub.OnDeliver = append(sub.OnDeliver, func(smp *dds.Sample) bool {
		s.postStart(smp.Activation)
		return true
	})
}

// StartInjected posts a start event directly (used by recovery paths that
// issue substitute receive events, and by wall-clock scenario drivers).
func (s *LocalSegment) StartInjected(act uint64) { s.postStart(act) }

// EndInjected posts an end event directly (the wall-clock counterpart of an
// instrumented publication).
func (s *LocalSegment) EndInjected(act uint64) { s.postEnd(act) }

// EndOnPublish makes publications of the publisher this segment's end
// events, and installs the skip-next-publication veto used for propagation.
func (s *LocalSegment) EndOnPublish(pub *dds.Publisher) {
	s.endPub = pub
	s.mon.ensureSkipVeto(pub)
	pub.OnPublish = append(pub.OnPublish, func(smp *dds.Sample) {
		s.postEnd(smp.Activation)
	})
}

// EndOnDeliver makes receptions at the subscription this segment's end
// events (the evaluation's segments end at receptions inside rviz, which
// publishes nothing).
func (s *LocalSegment) EndOnDeliver(sub *dds.Subscription) {
	sub.OnDeliver = append(sub.OnDeliver, func(smp *dds.Sample) bool {
		if s.excepted[smp.Activation] {
			// The exception already resolved this activation; the late
			// end event and its receive action are discarded.
			return false
		}
		s.postEnd(smp.Activation)
		return true
	})
}

// ensureSkipVeto installs the publisher-side evaluation of the shared skip
// counter exactly once per publisher (several segments may share an end
// publication).
func (m *LocalMonitor) ensureSkipVeto(pub *dds.Publisher) {
	if _, ok := m.skipTables[pub]; ok {
		return
	}
	table := make(map[uint64]bool)
	m.skipTables[pub] = table
	pub.PrePublish = append(pub.PrePublish, func(smp *dds.Sample) bool {
		if table[smp.Activation] {
			delete(table, smp.Activation)
			return false
		}
		return true
	})
}

// markSkip arranges for the (late) publication of the activation to be
// omitted.
func (m *LocalMonitor) markSkip(pub *dds.Publisher, act uint64) {
	if pub == nil {
		return
	}
	m.skipTables[pub][act] = true
}

// postStart models the instrumented subscriber: post into the start ring,
// record the posting overhead, and raise the monitor semaphore.
func (s *LocalSegment) postStart(act uint64) {
	now := s.mon.clock.Now()
	s.mon.overheads.StartPost.AddDuration(s.mon.PostCost.Sample(s.mon.rng))
	var flow uint32
	if s.tel != nil {
		flow = s.tel.flow(act)
	}
	s.core.StartRing().Post(rt.Event{Act: act, TS: now, Flow: flow})
	if s.tel != nil {
		s.tel.posts.Append(telemetry.Event{
			TS: int64(now), Act: act, Arg: int64(s.core.StartRing().Len()),
			Flow: flow,
			Kind: telemetry.KindRingPostStart, Label: s.tel.label,
		})
	}
	s.mon.wake()
}

// postEnd models the instrumented publisher: post into the end ring without
// waking the monitor (processing end events is not time critical, saving a
// context switch).
func (s *LocalSegment) postEnd(act uint64) {
	now := s.mon.clock.Now()
	s.mon.overheads.EndPost.AddDuration(s.mon.PostCost.Sample(s.mon.rng))
	var flow uint32
	if s.tel != nil {
		flow = s.tel.flow(act)
	}
	s.core.EndRing().Post(rt.Event{Act: act, TS: now, Flow: flow})
	if s.tel != nil {
		s.tel.posts.Append(telemetry.Event{
			TS: int64(now), Act: act, Arg: int64(s.core.EndRing().Len()),
			Flow: flow,
			Kind: telemetry.KindRingPostEnd, Label: s.tel.label,
		})
	}
}

// wake raises the monitor semaphore.
func (m *LocalMonitor) wake() { m.sched.Wake() }

// scan is one monitor-thread pass, delegated to the shared core: drain all
// rings in the fixed segment order, arm timeouts for new start events,
// resolve completed activations, and fire due temporal exceptions.
func (m *LocalMonitor) scan() {
	now := m.clock.Now()
	if len(m.budgets) != 0 {
		m.applyBudgets(now)
	}
	m.core.Scan(now)
	if m.tel != nil {
		m.tel.scans.Inc()
		depth := m.core.PendingTimeouts()
		m.tel.depth.Set(int64(depth))
		m.tel.track.Append(telemetry.Event{
			TS: int64(now), Arg: int64(m.lastScanCost), Kind: telemetry.KindScan,
		})
		m.tel.track.Append(telemetry.Event{
			TS: int64(now), Arg: int64(depth), Kind: telemetry.KindTimeoutQueue,
		})
	}
}

// raiseException dispatches the exception handling onto the monitor's
// execution context (highest priority, bounded cost) and performs the
// Algorithm 2 decision at handler completion.
func (s *LocalSegment) raiseException(act uint64, start, deadline sim.Time, propagated bool) {
	m := s.mon
	raisedAt := sim.Time(m.clock.Now())
	cost := s.cfg.handlerCost(m.rng)
	// The monitor thread dispatches the handler to itself (no wakeup):
	// handlers of simultaneous exceptions run back to back in the fixed
	// segment order.
	m.exec.ExecDirect("exc/"+s.cfg.Name, cost, func(started rt.Time) {
		now := sim.Time(m.clock.Now())
		entry := sim.Time(started)
		ctx := &ExceptionContext{
			Segment:    s.cfg.Name,
			Activation: act,
			Misses:     s.counter.Misses(),
			Budget:     s.counter.Budget(),
			Propagated: propagated,
			RaisedAt:   raisedAt,
		}
		var rec *Recovery
		if s.cfg.Handler != nil {
			rec = s.cfg.Handler(ctx)
		}
		r := Resolution{
			Activation:   act,
			Start:        start,
			End:          now,
			Exception:    true,
			HandlerEntry: entry,
			HandlerDone:  now,
		}
		if start != 0 {
			r.Latency = now.Sub(start)
		}
		if !propagated {
			r.DetectionLatency = entry.Sub(deadline)
		}
		if rec != nil {
			// Recovery (Algorithm 2, line 4): publish the recovered data
			// as a regular middleware message; the late regular
			// publication is skipped.
			r.Status = StatusRecovered
			if s.endPub != nil {
				s.endPub.PublishBypass(act, rec.Data, rec.Size)
				if !propagated {
					s.mon.markSkip(s.endPub, act)
				}
			}
		} else {
			// Propagation (Algorithm 2, line 7): omit the late
			// publication; the subsequent remote segment detects the
			// missing publication by timeout.
			r.Status = StatusMissed
			if !propagated {
				s.mon.markSkip(s.endPub, act)
			}
			if s.propagateTo != nil {
				s.propagateTo.PropagateInto(act)
			}
		}
		if s.tel != nil {
			s.tel.handlerDone(act, entry, now, rec != nil)
		}
		s.resolve(r)
	})
}

// PropagateInto implements Propagator: an unrecoverable violation of the
// preceding (remote) segment arrives as an error propagation event instead
// of a start event. The exception handling is invoked directly.
func (s *LocalSegment) PropagateInto(act uint64) {
	if s.resolved[act] || s.excepted[act] {
		return
	}
	s.excepted[act] = true
	s.raiseException(act, 0, 0, true)
}

func (s *LocalSegment) resolve(r Resolution) {
	if s.resolved[r.Activation] {
		return
	}
	// The excepted marker is kept after resolution so that late end events
	// (and their receive actions, for EndOnDeliver segments) are discarded.
	s.resolved[r.Activation] = true
	s.reorder.add(r)
	if r.Activation%256 == 0 {
		s.gc(r.Activation)
	}
}

// gc bounds the bookkeeping maps: activations far in the past can no longer
// receive events.
func (s *LocalSegment) gc(act uint64) {
	const horizon = 4096
	if act < horizon {
		return
	}
	old := act - horizon
	for a := range s.resolved {
		if a < old {
			delete(s.resolved, a)
		}
	}
	for a := range s.excepted {
		if a < old {
			delete(s.excepted, a)
		}
	}
}
