package monitor

import (
	"fmt"

	"chainmon/internal/sim"
)

// SystemMode is the operating mode decided by the Supervisor.
type SystemMode int

// Modes, from healthy to safed.
const (
	// ModeNominal: every supervised chain's (m,k) window is intact.
	ModeNominal SystemMode = iota
	// ModeDegraded: at least one chain's window constraint is currently
	// violated; the application should fall back to conservative behavior
	// (e.g. reduced speed).
	ModeDegraded
	// ModeSafeStop: violations persisted beyond the configured tolerance;
	// the vehicle must transition to a safe state. SafeStop latches.
	ModeSafeStop
)

func (m SystemMode) String() string {
	switch m {
	case ModeNominal:
		return "nominal"
	case ModeDegraded:
		return "degraded"
	case ModeSafeStop:
		return "safe-stop"
	default:
		return fmt.Sprintf("SystemMode(%d)", int(m))
	}
}

// ModeChange records one supervisor transition.
type ModeChange struct {
	At     sim.Time
	From   SystemMode
	To     SystemMode
	Chain  string
	Reason string
}

// Supervisor is the paper's "system-level entity" that temporal exceptions
// escalate to when application handlers cannot contain them: it watches the
// chain-level weakly-hard counters and derives an operating mode. The
// exception handlers remain responsible for per-activation recovery; the
// supervisor decides when accumulated violations require a system reaction.
type Supervisor struct {
	k      *sim.Kernel
	chains []*Chain
	mode   SystemMode

	// SafeStopAfter is how many consecutive chain executions with a
	// violated window are tolerated before latching ModeSafeStop.
	SafeStopAfter int

	violatedStreak map[*Chain]int
	changes        []ModeChange
	onChange       []func(ModeChange)
}

// NewSupervisor creates a supervisor with the given safe-stop tolerance.
func NewSupervisor(k *sim.Kernel, safeStopAfter int) *Supervisor {
	if safeStopAfter < 1 {
		safeStopAfter = 1
	}
	return &Supervisor{
		k:              k,
		SafeStopAfter:  safeStopAfter,
		violatedStreak: make(map[*Chain]int),
	}
}

// Watch registers a sealed chain with the supervisor.
func (s *Supervisor) Watch(c *Chain) {
	s.chains = append(s.chains, c)
	c.OnExecution(func(Resolution) { s.evaluate(c) })
}

// OnModeChange registers a transition observer.
func (s *Supervisor) OnModeChange(fn func(ModeChange)) {
	s.onChange = append(s.onChange, fn)
}

// Mode returns the current system mode.
func (s *Supervisor) Mode() SystemMode { return s.mode }

// Changes returns the recorded transitions in order.
func (s *Supervisor) Changes() []ModeChange { return s.changes }

// evaluate recomputes the mode after a chain execution.
func (s *Supervisor) evaluate(c *Chain) {
	if s.mode == ModeSafeStop {
		return // latched
	}
	if c.Counter().Violated() {
		s.violatedStreak[c]++
		if s.violatedStreak[c] >= s.SafeStopAfter {
			s.transition(ModeSafeStop, c, fmt.Sprintf(
				"window violated for %d consecutive executions", s.violatedStreak[c]))
			return
		}
		if s.mode == ModeNominal {
			s.transition(ModeDegraded, c, fmt.Sprintf(
				"(m,k) window violated: %d misses in the last %d",
				c.Counter().Misses(), c.Constraint.K))
		}
		return
	}
	s.violatedStreak[c] = 0
	if s.mode == ModeDegraded && s.allClean() {
		s.transition(ModeNominal, c, "all chain windows recovered")
	}
}

func (s *Supervisor) allClean() bool {
	for _, c := range s.chains {
		if c.Counter().Violated() {
			return false
		}
	}
	return true
}

func (s *Supervisor) transition(to SystemMode, c *Chain, reason string) {
	ch := ModeChange{At: s.k.Now(), From: s.mode, To: to, Chain: c.Name, Reason: reason}
	s.mode = to
	s.changes = append(s.changes, ch)
	for _, fn := range s.onChange {
		fn(ch)
	}
}
