package monitor

import (
	"testing"

	"chainmon/internal/dds"
	"chainmon/internal/netsim"
	"chainmon/internal/sim"
	"chainmon/internal/vclock"
	"chainmon/internal/weaklyhard"
)

// remoteRig is a deterministic two-ECU pipeline: a sender node on ecu1
// publishes "data" periodically (activations scheduled by kernel timers so
// tests can drop or delay individual activations), a receiver node on ecu2
// subscribes.
type remoteRig struct {
	k        *sim.Kernel
	domain   *dds.Domain
	ecu1     *dds.ECU
	ecu2     *dds.ECU
	sender   *dds.Node
	receiver *dds.Node
	pub      *dds.Publisher
	sub      *dds.Subscription
	lm       *LocalMonitor

	received []uint64
	recData  map[uint64]any
}

const rigPeriod = 100 * sim.Millisecond

func newRemoteRig() *remoteRig {
	k := sim.NewKernel()
	d := dds.NewDomain(k, sim.NewRNG(2))
	d.KsoftirqCost = sim.Constant(0)
	d.DeliverCost = sim.Constant(0)
	d.InterECU = netsim.Config{BCRT: 1 * sim.Millisecond}
	ecu1 := d.NewECU("ecu1", 4, vclock.Config{})
	ecu2 := d.NewECU("ecu2", 4, vclock.Config{})
	for _, e := range []*dds.ECU{ecu1, ecu2} {
		e.Proc.CtxSwitch = sim.Constant(0)
		e.Proc.Wakeup = sim.Constant(0)
	}
	r := &remoteRig{
		k: k, domain: d, ecu1: ecu1, ecu2: ecu2,
		sender:   ecu1.NewNode("sender", dds.PrioExecBase),
		receiver: ecu2.NewNode("receiver", dds.PrioExecBase),
		recData:  make(map[uint64]any),
	}
	r.pub = r.sender.NewPublisher("data")
	r.sub = r.receiver.Subscribe("data", nil, func(s *dds.Sample) {
		r.received = append(r.received, s.Activation)
		r.recData[s.Activation] = s.Data
	})
	r.lm = NewLocalMonitor(ecu2)
	r.lm.ScanCost = sim.Constant(5 * sim.Microsecond)
	return r
}

// send schedules activation act at its periodic slot plus delay; skip
// activations simply have no send scheduled.
func (r *remoteRig) send(act uint64, delay sim.Duration) {
	r.k.At(sim.Time(act)*sim.Time(rigPeriod)+sim.Time(delay), func() {
		r.pub.Publish(act, act, 0)
	})
}

func (r *remoteRig) monitor(dmon sim.Duration, c weaklyhard.Constraint, h Handler, v RemoteVariant) *RemoteMonitor {
	m := NewRemoteMonitor(r.sub, SegmentConfig{
		Name:        "s-remote",
		DMon:        dmon,
		Period:      rigPeriod,
		Constraint:  c,
		Handler:     h,
		HandlerCost: sim.Constant(10 * sim.Microsecond),
	}, v, r.lm)
	m.TimeoutRoutineCost = sim.Constant(5 * sim.Microsecond)
	return m
}

func TestRemoteAllOnTime(t *testing.T) {
	r := newRemoteRig()
	m := r.monitor(10*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5}, nil, VariantMonitorThread)
	for a := uint64(0); a < 10; a++ {
		r.send(a, 0)
	}
	r.k.RunUntil(sim.Time(1005 * sim.Millisecond))
	ok, rec, miss := m.Stats().Counts()
	if ok != 10 || rec != 0 || miss != 0 {
		t.Fatalf("counts = %d,%d,%d, want 10,0,0", ok, rec, miss)
	}
	if len(r.received) != 10 {
		t.Fatalf("received %d, want 10", len(r.received))
	}
	// Remote segment latency = network BCRT (1 ms).
	lat := m.Stats().Latencies()
	if lat.Median() != float64(1*sim.Millisecond) {
		t.Errorf("median latency = %v, want 1ms", sim.Duration(lat.Median()))
	}
}

func TestRemoteDetectsLostSample(t *testing.T) {
	r := newRemoteRig()
	var ctxs []*ExceptionContext
	m := r.monitor(10*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5},
		func(ctx *ExceptionContext) *Recovery { ctxs = append(ctxs, ctx); return nil },
		VariantMonitorThread)
	for a := uint64(0); a < 6; a++ {
		if a == 3 {
			continue // activation 3 is lost entirely
		}
		r.send(a, 0)
	}
	r.k.RunUntil(sim.Time(605 * sim.Millisecond))
	ok, _, miss := m.Stats().Counts()
	if ok != 5 || miss != 1 {
		t.Fatalf("counts ok=%d miss=%d, want 5,1", ok, miss)
	}
	if len(ctxs) != 1 || ctxs[0].Activation != 3 {
		t.Fatalf("handler contexts = %+v", ctxs)
	}
	// The exception must be raised near the programmed deadline:
	// src(2) + period + dMon = 200ms + 100ms + 10ms = 310ms.
	res := m.Stats().Resolutions()
	var exc *Resolution
	for i := range res {
		if res[i].Exception {
			exc = &res[i]
		}
	}
	if exc == nil {
		t.Fatal("no exception resolution")
	}
	want := sim.Time(310 * sim.Millisecond)
	slack := 50 * sim.Microsecond
	if exc.End < want || exc.End > want.Add(slack) {
		t.Errorf("exception at %v, want ≈%v", exc.End, want)
	}
}

func TestRemoteDetectsConsecutiveMisses(t *testing.T) {
	// The decisive advantage over inter-arrival monitoring: several
	// consecutive losses each raise their own timely exception.
	r := newRemoteRig()
	m := r.monitor(10*sim.Millisecond, weaklyhard.Constraint{M: 3, K: 8}, nil, VariantMonitorThread)
	for a := uint64(0); a < 8; a++ {
		if a >= 2 && a <= 4 {
			continue // 3 consecutive losses
		}
		r.send(a, 0)
	}
	r.k.RunUntil(sim.Time(805 * sim.Millisecond))
	ok, _, miss := m.Stats().Counts()
	if ok != 5 || miss != 3 {
		t.Fatalf("counts ok=%d miss=%d, want 5,3", ok, miss)
	}
	// Deadlines escalate period-by-period from the last received source
	// timestamp: src(1)+P+dMon = 210 ms, then 310, 410 ms.
	var excTimes []sim.Time
	for _, res := range m.Stats().Resolutions() {
		if res.Exception {
			excTimes = append(excTimes, res.End)
		}
	}
	if len(excTimes) != 3 {
		t.Fatalf("exceptions = %d, want 3", len(excTimes))
	}
	for i, want := range []sim.Time{
		sim.Time(210 * sim.Millisecond),
		sim.Time(310 * sim.Millisecond),
		sim.Time(410 * sim.Millisecond),
	} {
		if excTimes[i] < want || excTimes[i] > want.Add(sim.Millisecond) {
			t.Errorf("exception %d at %v, want ≈%v", i, excTimes[i], want)
		}
	}
}

func TestRemoteDiscardsLateSample(t *testing.T) {
	r := newRemoteRig()
	m := r.monitor(20*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5}, nil, VariantMonitorThread)
	r.send(0, 0)
	r.send(1, 0)
	r.send(2, 50*sim.Millisecond) // arrives 50ms late: after the 20ms deadline
	r.send(3, 0)
	r.k.RunUntil(sim.Time(405 * sim.Millisecond))
	ok, _, miss := m.Stats().Counts()
	if ok != 3 || miss != 1 {
		t.Fatalf("counts ok=%d miss=%d, want 3,1", ok, miss)
	}
	if m.LateDiscards() != 1 {
		t.Errorf("late discards = %d, want 1", m.LateDiscards())
	}
	// The application callback must not see the late activation 2
	// (receive event skipped).
	for _, a := range r.received {
		if a == 2 {
			t.Error("late sample reached the application")
		}
	}
}

func TestRemoteRecoveryIssuesReceiveEvent(t *testing.T) {
	r := newRemoteRig()
	m := r.monitor(10*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5},
		func(ctx *ExceptionContext) *Recovery { return &Recovery{Data: "held-over"} },
		VariantMonitorThread)
	r.send(0, 0)
	r.send(1, 0)
	// activation 2 lost
	r.send(3, 0)
	r.k.RunUntil(sim.Time(405 * sim.Millisecond))
	ok, rec, miss := m.Stats().Counts()
	if ok != 3 || rec != 1 || miss != 0 {
		t.Fatalf("counts = %d,%d,%d, want 3,1,0", ok, rec, miss)
	}
	if r.recData[2] != "held-over" {
		t.Errorf("recovered data = %v", r.recData[2])
	}
	// Recovery does not count as a miss.
	_, misses, _ := m.Counter().Totals()
	if misses != 0 {
		t.Errorf("misses = %d, want 0", misses)
	}
}

func TestRemotePropagatesToNextSegment(t *testing.T) {
	r := newRemoteRig()
	m := r.monitor(10*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5}, nil, VariantMonitorThread)
	next := &recordingPropagator{}
	m.PropagateTo(next)
	r.send(0, 0)
	// 1 lost
	r.send(2, 0)
	r.k.RunUntil(sim.Time(305 * sim.Millisecond))
	if len(next.acts) != 1 || next.acts[0] != 1 {
		t.Fatalf("propagated = %v, want [1]", next.acts)
	}
}

func TestRemoteStartDetectsFirstLoss(t *testing.T) {
	r := newRemoteRig()
	m := r.monitor(10*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5}, nil, VariantMonitorThread)
	// Arm before traffic: activation 0 expected by local-clock 30 ms.
	m.Start(0, sim.Time(30*sim.Millisecond))
	// activation 0 lost entirely; 1 and 2 arrive.
	r.send(1, 0)
	r.send(2, 0)
	r.k.RunUntil(sim.Time(305 * sim.Millisecond))
	ok, _, miss := m.Stats().Counts()
	if ok != 2 || miss != 1 {
		t.Fatalf("counts ok=%d miss=%d, want 2,1", ok, miss)
	}
	res := m.Stats().Resolutions()
	if res[0].Activation != 0 || res[0].Status != StatusMissed {
		t.Fatalf("first resolution = %+v", res[0])
	}
}

func TestRemoteInOrderArrivalProvesLoss(t *testing.T) {
	// dMon ≥ period: activation 3's arrival proves activation 2 was lost
	// before 2's (long) deadline expires.
	r := newRemoteRig()
	m := r.monitor(150*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5}, nil, VariantMonitorThread)
	r.send(0, 0)
	r.send(1, 0)
	// 2 lost
	r.send(3, 0)
	r.k.RunUntil(sim.Time(545 * sim.Millisecond))
	ok, _, miss := m.Stats().Counts()
	if ok != 3 || miss != 1 {
		t.Fatalf("counts ok=%d miss=%d, want 3,1", ok, miss)
	}
	// The exception fires at activation 3's arrival (~301ms), before the
	// timer deadline of 2 (100+100+150 = 350ms).
	for _, res := range m.Stats().Resolutions() {
		if res.Exception && res.End > sim.Time(350*sim.Millisecond) {
			t.Errorf("exception too late: %v", res.End)
		}
	}
}

func TestRemoteDDSContextEntryDelayedUnderLoad(t *testing.T) {
	// Fig. 12: with the timeout routine in the middleware context, a
	// higher-priority interfering thread delays exception entry; the
	// monitor-thread variant is immune.
	entry := func(variant RemoteVariant) sim.Duration {
		r := newRemoteRig()
		m := r.monitor(10*sim.Millisecond, weaklyhard.Constraint{M: 2, K: 5}, nil, variant)
		// Interfering load on ecu2 above middleware priority on all cores.
		for i := 0; i < 4; i++ {
			th := r.ecu2.Proc.NewThread("load", dds.PrioMiddle+10)
			r.ecu2.Proc.PeriodicLoad(th, "busy", 0, 3*sim.Millisecond, sim.Constant(2900*sim.Microsecond))
		}
		r.send(0, 0)
		r.send(1, 0)
		// 2 lost → exception
		r.send(3, 0)
		r.k.RunUntil(sim.Time(450 * sim.Millisecond))
		d := m.Stats().DetectionLatencies()
		if d.Len() == 0 {
			t.Fatalf("no detection latency for %v", variant)
		}
		return sim.Duration(d.Max())
	}
	dds := entry(VariantDDSContext)
	mon := entry(VariantMonitorThread)
	if dds <= mon {
		t.Errorf("dds-context entry %v should exceed monitor-thread %v under load", dds, mon)
	}
	if dds < 500*sim.Microsecond {
		t.Errorf("dds-context entry %v suspiciously small under saturating load", dds)
	}
	if mon > 100*sim.Microsecond {
		t.Errorf("monitor-thread entry %v too large", mon)
	}
}

func TestInterArrivalMissesConsecutiveLateArrivals(t *testing.T) {
	// The paper's core argument (Fig. 6): arrivals that are each within
	// t_max of the previous arrival but accumulate lateness are never
	// detected by inter-arrival monitoring.
	r := newRemoteRig()
	ia := NewInterArrivalMonitor(r.sub, 150*sim.Millisecond)
	// Ground truth: every activation after 0 is later than the previous by
	// 40 ms — by activation 5 the latency is 200 ms past nominal, far
	// beyond any sensible deadline, yet inter-arrival gaps stay at 140 ms.
	for a := uint64(0); a < 6; a++ {
		r.send(a, sim.Duration(a)*40*sim.Millisecond)
	}
	r.k.RunUntil(sim.Time(840 * sim.Millisecond))
	if n := len(ia.Detections()); n != 0 {
		t.Errorf("inter-arrival monitor fired %d times; accumulating lateness is invisible to it", n)
	}
	if ia.Arrivals() != 6 {
		t.Errorf("arrivals = %d", ia.Arrivals())
	}

	// The synchronization-based monitor detects every violation of the
	// same trace.
	r2 := newRemoteRig()
	m := r2.monitor(30*sim.Millisecond, weaklyhard.Constraint{M: 5, K: 6}, nil, VariantMonitorThread)
	for a := uint64(0); a < 6; a++ {
		r2.send(a, sim.Duration(a)*40*sim.Millisecond)
	}
	r2.k.RunUntil(sim.Time(825 * sim.Millisecond))
	_, _, miss := m.Stats().Counts()
	if miss < 4 {
		t.Errorf("sync-based monitor detected %d misses, want ≥4", miss)
	}
}

func TestInterArrivalDetectsFullStop(t *testing.T) {
	r := newRemoteRig()
	ia := NewInterArrivalMonitor(r.sub, 150*sim.Millisecond)
	detections := 0
	ia.OnDetect(func(sim.Time) { detections++ })
	r.send(0, 0)
	r.send(1, 0)
	// Traffic stops; run until 800 ms.
	r.k.RunUntil(sim.Time(800 * sim.Millisecond))
	// Timer expiry at ~251ms, then every 150 ms: ~251, 401, 551, 701.
	if detections < 3 {
		t.Errorf("detections = %d, want ≥3 after stream stops", detections)
	}
	if len(ia.Detections()) != detections {
		t.Errorf("callback/recorded mismatch")
	}
}

func TestRemoteMonitorValidation(t *testing.T) {
	r := newRemoteRig()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for missing period")
		}
	}()
	NewRemoteMonitor(r.sub, SegmentConfig{Name: "bad", DMon: sim.Millisecond}, VariantMonitorThread, r.lm)
}

func TestRemoteVariantString(t *testing.T) {
	if VariantMonitorThread.String() != "monitor-thread" || VariantDDSContext.String() != "dds-context" {
		t.Error("variant strings wrong")
	}
}

func TestChainTracksEndToEnd(t *testing.T) {
	// Remote segment → local segment chain: a lost sample propagates into
	// the local segment and counts exactly one chain violation.
	r := newRemoteRig()
	rm := r.monitor(10*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5}, nil, VariantMonitorThread)

	outPub := r.receiver.NewPublisher("out")
	r.sub.Callback = func(s *dds.Sample) { outPub.Publish(s.Activation, s.Data, 0) }
	r.sub.Cost = func(*dds.Sample) sim.Duration { return 2 * sim.Millisecond }

	ls := r.lm.AddSegment(SegmentConfig{
		Name: "s-local", DMon: 20 * sim.Millisecond, Period: rigPeriod,
		Constraint:  weaklyhard.Constraint{M: 1, K: 5},
		HandlerCost: sim.Constant(10 * sim.Microsecond),
	})
	ls.StartOnDeliver(r.sub)
	ls.EndOnPublish(outPub)
	rm.PropagateTo(ls)

	ch := NewChain("test", 40*sim.Millisecond, rigPeriod, weaklyhard.Constraint{M: 1, K: 5})
	ch.Append(rm).Append(ls)
	ch.Seal()

	for a := uint64(0); a < 6; a++ {
		if a == 2 {
			continue
		}
		r.send(a, 0)
	}
	r.k.RunUntil(sim.Time(605 * sim.Millisecond))

	exec, rec, viol := ch.Totals()
	if exec != 6 || rec != 0 || viol != 1 {
		t.Fatalf("chain totals = %d,%d,%d, want 6,0,1", exec, rec, viol)
	}
	if !ch.BudgetSatisfied() {
		t.Error("budget 10+20 ≤ 40 should be satisfied")
	}
	if !ch.ThroughputSatisfied() {
		t.Error("throughput should be satisfied")
	}
	if ch.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestChainSealValidation(t *testing.T) {
	ch := NewChain("c", sim.Second, sim.Second, weaklyhard.Constraint{M: 0, K: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Seal on empty chain should panic")
			}
		}()
		ch.Seal()
	}()
}

func TestRemoteMonitorTransparentToRetransmissions(t *testing.T) {
	// The paper: "the monitor works on a high level and is even transparent
	// to retransmissions of (partially) lost data e.g. over DDS". With a
	// reliable link, lost samples arrive late via retransmission; a
	// retransmission within the deadline resolves OK, one beyond it is
	// discarded like any late sample and the exception stands.
	run := func(retransmitDelay, dmon sim.Duration) (ok, miss int, discards uint64) {
		k := sim.NewKernel()
		d := dds.NewDomain(k, sim.NewRNG(7))
		d.KsoftirqCost = sim.Constant(0)
		d.DeliverCost = sim.Constant(0)
		d.SetLink("e1", "e2", netsim.Config{
			BCRT:            sim.Millisecond,
			LossProb:        0.2,
			RetransmitDelay: sim.Constant(retransmitDelay),
		})
		e1 := d.NewECU("e1", 2, vclock.Config{})
		e2 := d.NewECU("e2", 2, vclock.Config{})
		sender := e1.NewNode("s", dds.PrioExecBase)
		receiver := e2.NewNode("r", dds.PrioExecBase)
		pub := sender.NewPublisher("data")
		sub := receiver.Subscribe("data", nil, nil)
		lm := NewLocalMonitor(e2)
		m := NewRemoteMonitor(sub, SegmentConfig{
			Name: "rel", DMon: dmon, Period: rigPeriod,
			Constraint: weaklyhard.Constraint{M: 50, K: 50},
		}, VariantMonitorThread, lm)
		m.SetLastActivation(49)
		for i := 0; i < 50; i++ {
			act := uint64(i)
			k.At(sim.Time(act)*sim.Time(rigPeriod), func() { pub.Publish(act, nil, 0) })
		}
		horizon := sim.Time(52) * sim.Time(rigPeriod)
		k.At(horizon, m.Stop)
		k.RunUntil(horizon.Add(sim.Second))
		o, _, mi := m.Stats().Counts()
		return o, mi, m.LateDiscards()
	}

	// Fast retransmission (5 ms) within the 20 ms deadline: everything OK.
	ok, miss, _ := run(5*sim.Millisecond, 20*sim.Millisecond)
	if miss != 0 || ok != 50 {
		t.Errorf("fast retransmit: ok=%d miss=%d, want 50,0", ok, miss)
	}
	// Slow retransmission (50 ms) beyond the deadline: the lost samples
	// miss their deadline and the retransmitted copies are discarded.
	ok2, miss2, discards := run(50*sim.Millisecond, 20*sim.Millisecond)
	if miss2 == 0 {
		t.Error("slow retransmit: no misses despite late retransmissions")
	}
	if discards != uint64(miss2) {
		t.Errorf("late retransmitted samples discarded = %d, want %d (one per miss)", discards, miss2)
	}
	if ok2+miss2 != 50 {
		t.Errorf("accounting drifted: ok=%d miss=%d", ok2, miss2)
	}
}
