package monitor

import (
	"fmt"
	"strings"

	"chainmon/internal/sim"
	"chainmon/internal/weaklyhard"
)

// MonitoredSegment is the common interface of local and remote segment
// monitors, used for chain composition and reporting.
type MonitoredSegment interface {
	Config() SegmentConfig
	Stats() *SegmentStats
	Counter() *weaklyhard.Counter
	OnResolve(fn ResolveFunc)
}

var (
	_ MonitoredSegment = (*LocalSegment)(nil)
	_ MonitoredSegment = (*RemoteMonitor)(nil)
)

// Chain tracks the end-to-end state of one event chain: the ordered list of
// monitored segments and the chain-level weakly-hard accounting. Because
// unrecoverable violations propagate along the chain (explicitly for remote
// segments, by omitted publications for local segments), an execution of the
// chain is violated exactly when its final segment resolves as missed.
type Chain struct {
	Name string
	// Be2e is the end-to-end latency budget B^c_e2e.
	Be2e sim.Duration
	// Bseg is the per-segment throughput cap B^c_seg.
	Bseg sim.Duration
	// Constraint is the chain's weakly-hard (m,k) constraint.
	Constraint weaklyhard.Constraint

	segments []MonitoredSegment
	counter  *weaklyhard.Counter
	sealed   bool

	executions  uint64
	violations  uint64
	recovered   uint64
	onExecution []ResolveFunc
}

// NewChain creates a chain tracker.
func NewChain(name string, be2e, bseg sim.Duration, c weaklyhard.Constraint) *Chain {
	if !c.Valid() {
		panic(fmt.Sprintf("monitor: invalid chain constraint %v", c))
	}
	return &Chain{
		Name:       name,
		Be2e:       be2e,
		Bseg:       bseg,
		Constraint: c,
		counter:    weaklyhard.NewCounter(c),
	}
}

// Append adds the next segment of the chain, in order.
func (c *Chain) Append(seg MonitoredSegment) *Chain {
	if c.sealed {
		panic("monitor: Append after Seal")
	}
	c.segments = append(c.segments, seg)
	return c
}

// Seal finishes the wiring: the final segment's resolutions drive the
// chain-level (m,k) accounting from now on. Seal must be called exactly
// once, after all segments were appended.
func (c *Chain) Seal() {
	if c.sealed {
		panic("monitor: Seal called twice")
	}
	if len(c.segments) == 0 {
		panic("monitor: Seal on empty chain")
	}
	c.sealed = true
	c.segments[len(c.segments)-1].OnResolve(c.onFinalResolve)
}

// onFinalResolve records one chain execution per resolution of the final
// segment: StatusMissed means the violation propagated through the whole
// chain without recovery.
func (c *Chain) onFinalResolve(r Resolution) {
	c.executions++
	switch r.Status {
	case StatusMissed:
		c.violations++
		c.counter.Record(true)
	case StatusRecovered:
		c.recovered++
		c.counter.Record(false)
	default:
		c.counter.Record(false)
	}
	for _, fn := range c.onExecution {
		fn(r)
	}
}

// OnExecution registers an observer invoked after every chain execution is
// accounted (in activation order). System-level supervisors attach here.
func (c *Chain) OnExecution(fn ResolveFunc) {
	c.onExecution = append(c.onExecution, fn)
}

// Segments returns the chain's segments in order.
func (c *Chain) Segments() []MonitoredSegment { return c.segments }

// Counter returns the chain-level (m,k) window counter.
func (c *Chain) Counter() *weaklyhard.Counter { return c.counter }

// Totals returns chain executions, recovered executions and violations.
func (c *Chain) Totals() (executions, recovered, violations uint64) {
	return c.executions, c.recovered, c.violations
}

// BudgetSatisfied verifies Eq. 1/3: the sum of configured segment deadlines
// (d = DMon + DEx) must not exceed the end-to-end budget.
func (c *Chain) BudgetSatisfied() bool {
	var sum sim.Duration
	for _, s := range c.segments {
		cfg := s.Config()
		sum += cfg.DMon + cfg.DEx
	}
	return sum <= c.Be2e
}

// ThroughputSatisfied verifies Eq. 4 for every segment: d ≤ B_seg.
func (c *Chain) ThroughputSatisfied() bool {
	for _, s := range c.segments {
		cfg := s.Config()
		if cfg.DMon+cfg.DEx > c.Bseg {
			return false
		}
	}
	return true
}

// Summary renders a multi-line chain report.
func (c *Chain) Summary() string {
	var sb strings.Builder
	exec, rec, viol := c.Totals()
	fmt.Fprintf(&sb, "chain %s %v B_e2e=%v: executions=%d recovered=%d violations=%d\n",
		c.Name, c.Constraint, c.Be2e, exec, rec, viol)
	for _, s := range c.segments {
		fmt.Fprintf(&sb, "  %s\n", s.Stats().Summary())
	}
	return sb.String()
}
