package monitor

import (
	"strings"
	"testing"

	"chainmon/internal/dds"
	"chainmon/internal/sim"
	"chainmon/internal/weaklyhard"
)

// makeSpec builds a remote→local chain spec on a fresh remoteRig: the
// receiver republishes every sample on "out".
func makeSpec(r *remoteRig) ChainSpec {
	outPub := r.receiver.NewPublisher("out")
	r.sub.Callback = func(s *dds.Sample) { outPub.Publish(s.Activation, s.Data, 0) }
	r.sub.Cost = func(*dds.Sample) sim.Duration { return 2 * sim.Millisecond }
	return ChainSpec{
		Name: "built", Be2e: 50 * sim.Millisecond, Bseg: rigPeriod,
		Period: rigPeriod, Constraint: weaklyhard.Constraint{M: 1, K: 5},
		Segments: []SegmentSpec{
			{Name: "r0", Kind: KindRemote, DMon: 10 * sim.Millisecond, DEx: sim.Millisecond, Sub: r.sub},
			{Name: "l1", Kind: KindLocal, DMon: 20 * sim.Millisecond, DEx: sim.Millisecond,
				StartSub: r.sub, EndPub: outPub},
		},
	}
}

func TestBuildChainWiresEverything(t *testing.T) {
	r := newRemoteRig()
	spec := makeSpec(r)
	built, err := BuildChain(spec, map[*dds.ECU]*LocalMonitor{r.ecu2: r.lm})
	if err != nil {
		t.Fatal(err)
	}
	rm := built.Remotes["r0"]
	rm.SetLastActivation(9)
	for a := uint64(0); a < 10; a++ {
		if a == 4 {
			continue // lost
		}
		r.send(a, 0)
	}
	r.k.RunUntil(sim.Time(1100 * sim.Millisecond))

	exec, _, viol := built.Chain.Totals()
	if exec != 10 || viol != 1 {
		t.Fatalf("chain totals = %d,%d, want 10,1", exec, viol)
	}
	// The loss propagated explicitly into the local segment.
	_, _, localMiss := built.Locals["l1"].Stats().Counts()
	if localMiss != 1 {
		t.Errorf("local misses = %d, want 1 (propagated)", localMiss)
	}
	// Clean activations completed the whole chain.
	ok, _, _ := built.Locals["l1"].Stats().Counts()
	if ok != 9 {
		t.Errorf("local ok = %d, want 9", ok)
	}
	// The existing monitor was reused, not replaced.
	if built.Monitors[r.ecu2] != r.lm {
		t.Error("existing LocalMonitor not reused")
	}
}

func TestBuildChainValidation(t *testing.T) {
	cases := []struct {
		mutate func(*ChainSpec)
		want   string
	}{
		{func(s *ChainSpec) { s.Segments = nil }, "no segments"},
		{func(s *ChainSpec) { s.Constraint = weaklyhard.Constraint{M: 9, K: 2} }, "invalid constraint"},
		{func(s *ChainSpec) { s.Period = 0 }, "positive period"},
		{func(s *ChainSpec) { s.Segments[0].DMon = 0 }, "positive DMon"},
		{func(s *ChainSpec) { s.Segments[1].Kind = KindRemote }, "alternate"},
		{func(s *ChainSpec) { s.Segments[1].StartSub = nil }, "needs StartSub"},
		{func(s *ChainSpec) { s.Segments[1].EndPub = nil }, "exactly one of"},
		{func(s *ChainSpec) { s.Segments[0].Sub = nil }, "needs Sub"},
		{func(s *ChainSpec) { s.Be2e = 5 * sim.Millisecond }, "exceeds B_e2e"},
		{func(s *ChainSpec) { s.Bseg = 5 * sim.Millisecond }, "exceeds B_seg"},
	}
	for i, c := range cases {
		spec := makeSpec(newRemoteRig())
		c.mutate(&spec)
		_, err := BuildChain(spec, nil)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: err = %v, want substring %q", i, err, c.want)
		}
	}
}

func TestBuildChainTerminalReceptionEnd(t *testing.T) {
	// A chain whose final local segment ends at a reception (the rviz
	// case): remote → local(pub end) → remote-like is impossible here, so
	// use remote → local with EndSub on the same ECU.
	r := newRemoteRig()
	sinkNode := r.ecu2.NewNode("sink", dds.PrioExecBase)
	sinkSub := sinkNode.Subscribe("out", nil, nil)
	outPub := r.receiver.NewPublisher("out")
	r.sub.Callback = func(s *dds.Sample) { outPub.Publish(s.Activation, s.Data, 0) }

	spec := ChainSpec{
		Name: "terminal", Be2e: 60 * sim.Millisecond, Period: rigPeriod,
		Constraint: weaklyhard.Constraint{M: 1, K: 5},
		Segments: []SegmentSpec{
			{Name: "r0", Kind: KindRemote, DMon: 10 * sim.Millisecond, Sub: r.sub},
			{Name: "l1", Kind: KindLocal, DMon: 30 * sim.Millisecond,
				StartSub: r.sub, EndSub: sinkSub},
		},
	}
	built, err := BuildChain(spec, map[*dds.ECU]*LocalMonitor{r.ecu2: r.lm})
	if err != nil {
		t.Fatal(err)
	}
	built.Remotes["r0"].SetLastActivation(4)
	for a := uint64(0); a < 5; a++ {
		r.send(a, 0)
	}
	r.k.RunUntil(sim.Time(600 * sim.Millisecond))
	exec, _, viol := built.Chain.Totals()
	if exec != 5 || viol != 0 {
		t.Fatalf("chain totals = %d,%d, want 5,0", exec, viol)
	}
}

func TestBuildChainNonTerminalReceptionEndRejected(t *testing.T) {
	r := newRemoteRig()
	sinkNode := r.ecu2.NewNode("sink", dds.PrioExecBase)
	sinkSub := sinkNode.Subscribe("out", nil, nil)
	spec := ChainSpec{
		Name: "bad", Period: rigPeriod, Constraint: weaklyhard.Constraint{M: 0, K: 1},
		Segments: []SegmentSpec{
			{Name: "l0", Kind: KindLocal, DMon: sim.Millisecond, StartSub: r.sub, EndSub: sinkSub},
			{Name: "r1", Kind: KindRemote, DMon: sim.Millisecond, Sub: sinkSub},
		},
	}
	if _, err := BuildChain(spec, nil); err == nil || !strings.Contains(err.Error(), "chain-terminal") {
		t.Errorf("err = %v, want chain-terminal rejection", err)
	}
}

func TestSegmentKindString(t *testing.T) {
	if KindLocal.String() != "local" || KindRemote.String() != "remote" {
		t.Error("kind strings wrong")
	}
}
