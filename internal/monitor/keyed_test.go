package monitor

import (
	"fmt"
	"slices"
	"testing"

	"chainmon/internal/dds"
	"chainmon/internal/netsim"
	"chainmon/internal/sim"
	"chainmon/internal/vclock"
	"chainmon/internal/weaklyhard"
)

// keyedRig: two senders on different ECUs publish the same topic to one
// receiver — the multiple-communication-partners case of §IV-B.2.
type keyedRig struct {
	k        *sim.Kernel
	pubA     *dds.Publisher
	pubB     *dds.Publisher
	sub      *dds.Subscription
	lm       *LocalMonitor
	received []string
}

func newKeyedRig() *keyedRig {
	k := sim.NewKernel()
	d := dds.NewDomain(k, sim.NewRNG(5))
	d.KsoftirqCost = sim.Constant(0)
	d.DeliverCost = sim.Constant(0)
	d.InterECU = netsim.Config{BCRT: 1 * sim.Millisecond}
	ea := d.NewECU("ecu-a", 2, vclock.Config{})
	eb := d.NewECU("ecu-b", 2, vclock.Config{})
	rx := d.NewECU("ecu-rx", 2, vclock.Config{})
	for _, e := range []*dds.ECU{ea, eb, rx} {
		e.Proc.CtxSwitch = sim.Constant(0)
		e.Proc.Wakeup = sim.Constant(0)
	}
	r := &keyedRig{k: k}
	na := ea.NewNode("sender-a", dds.PrioExecBase)
	nb := eb.NewNode("sender-b", dds.PrioExecBase)
	nr := rx.NewNode("receiver", dds.PrioExecBase)
	r.pubA = na.NewPublisher("status")
	r.pubB = nb.NewPublisher("status")
	r.sub = nr.Subscribe("status", nil, func(s *dds.Sample) {
		r.received = append(r.received, s.Writer)
	})
	r.lm = NewLocalMonitor(rx)
	return r
}

func keyedCfg() SegmentConfig {
	return SegmentConfig{
		Name: "status-link", DMon: 10 * sim.Millisecond, Period: 100 * sim.Millisecond,
		Constraint:  weaklyhard.Constraint{M: 1, K: 5},
		HandlerCost: sim.Constant(5 * sim.Microsecond),
	}
}

func TestKeyedMonitorInstantiatesPerWriter(t *testing.T) {
	r := newKeyedRig()
	km := NewKeyedRemoteMonitor(r.sub, keyedCfg(), VariantMonitorThread, r.lm, nil)
	for i := 0; i < 5; i++ {
		act := uint64(i)
		r.k.At(sim.Time(i)*sim.Time(100*sim.Millisecond), func() {
			r.pubA.Publish(act, nil, 0)
			r.pubB.Publish(act, nil, 0)
		})
	}
	r.k.At(sim.Time(500*sim.Millisecond), km.Stop)
	r.k.RunUntil(sim.Time(sim.Second))

	writers := km.Writers()
	if len(writers) != 2 {
		t.Fatalf("writers = %v, want 2", writers)
	}
	for _, w := range writers {
		m := km.Monitor(w)
		if m == nil {
			t.Fatalf("no monitor for %s", w)
		}
		ok, _, miss := m.Stats().Counts()
		if ok != 5 || miss != 0 {
			t.Errorf("%s: counts ok=%d miss=%d, want 5,0", w, ok, miss)
		}
	}
	if km.Monitor("nonexistent") != nil {
		t.Error("unknown writer should be nil")
	}
}

func TestKeyedMonitorTracksWritersIndependently(t *testing.T) {
	r := newKeyedRig()
	created := map[string]bool{}
	km := NewKeyedRemoteMonitor(r.sub, keyedCfg(), VariantMonitorThread, r.lm,
		func(writer string, m *RemoteMonitor) {
			created[writer] = true
			m.SetLastActivation(5)
		})
	// Sender A loses activation 2; sender B is clean.
	for i := 0; i <= 5; i++ {
		act := uint64(i)
		r.k.At(sim.Time(i)*sim.Time(100*sim.Millisecond), func() {
			if act != 2 {
				r.pubA.Publish(act, nil, 0)
			}
			r.pubB.Publish(act, nil, 0)
		})
	}
	r.k.At(sim.Time(800*sim.Millisecond), km.Stop)
	r.k.RunUntil(sim.Time(sim.Second))

	if len(created) != 2 {
		t.Fatalf("onCreate calls = %d", len(created))
	}
	var a, b *RemoteMonitor
	for _, w := range km.Writers() {
		if created[w] {
			if km.Monitor(w).Stats().Exceptions() > 0 {
				a = km.Monitor(w)
			} else {
				b = km.Monitor(w)
			}
		}
	}
	if a == nil || b == nil {
		t.Fatalf("expected one faulty and one clean writer; writers=%v", km.Writers())
	}
	_, _, missA := a.Stats().Counts()
	if missA != 1 {
		t.Errorf("faulty writer misses = %d, want 1", missA)
	}
	_, _, missB := b.Stats().Counts()
	if missB != 0 {
		t.Errorf("clean writer misses = %d, want 0", missB)
	}
}

// TestKeyedMonitorWriterChurn staggers senders joining and leaving the
// topic: each writer's monitor must be instantiated lazily on its first
// sample (in join order), clean departures (SetLastActivation reached) must
// wind down without misses, and an abrupt departure must keep timing out
// until its bounded stream is exhausted — all while other writers are mid
// churn. The whole package runs under -race in CI, so this also shakes out
// any shared state between the per-writer monitors.
func TestKeyedMonitorWriterChurn(t *testing.T) {
	const (
		senders = 5
		lastAct = uint64(7)
		period  = 100 * sim.Millisecond
		stagger = 300 * sim.Millisecond
	)
	k := sim.NewKernel()
	d := dds.NewDomain(k, sim.NewRNG(5))
	d.KsoftirqCost = sim.Constant(0)
	d.DeliverCost = sim.Constant(0)
	d.InterECU = netsim.Config{BCRT: 1 * sim.Millisecond}
	ea := d.NewECU("ecu-a", 2, vclock.Config{})
	eb := d.NewECU("ecu-b", 2, vclock.Config{})
	rx := d.NewECU("ecu-rx", 2, vclock.Config{})
	for _, e := range []*dds.ECU{ea, eb, rx} {
		e.Proc.CtxSwitch = sim.Constant(0)
		e.Proc.Wakeup = sim.Constant(0)
	}
	sub := rx.NewNode("receiver", dds.PrioExecBase).Subscribe("status", nil, nil)
	lm := NewLocalMonitor(rx)

	var joinOrder []string
	km := NewKeyedRemoteMonitor(sub, keyedCfg(), VariantMonitorThread, lm,
		func(writer string, m *RemoteMonitor) {
			joinOrder = append(joinOrder, writer)
			m.SetLastActivation(lastAct)
		})

	pubs := make([]*dds.Publisher, senders)
	for i := 0; i < senders; i++ {
		ecu := ea
		if i%2 == 1 {
			ecu = eb
		}
		pubs[i] = ecu.NewNode(fmt.Sprintf("sender-%d", i), dds.PrioExecBase).NewPublisher("status")
		join := sim.Time(i) * sim.Time(stagger)
		for act := uint64(0); act <= lastAct; act++ {
			// The last sender departs abruptly after activation 3; the
			// rest publish their full bounded stream before leaving.
			if i == senders-1 && act > 3 {
				break
			}
			act, pub := act, pubs[i]
			k.At(join+sim.Time(act)*sim.Time(period), func() {
				pub.Publish(act, nil, 0)
			})
		}
	}
	k.At(sim.Time(5*sim.Second), km.Stop)
	k.RunUntil(sim.Time(6 * sim.Second))

	// Writer keys are node/topic pairs.
	want := make([]string, senders)
	for i := range want {
		want[i] = fmt.Sprintf("sender-%d/status", i)
	}
	if !slices.Equal(km.Writers(), want) || !slices.Equal(joinOrder, want) {
		t.Fatalf("writers = %v (created %v), want %v in join order", km.Writers(), joinOrder, want)
	}
	for i, w := range want {
		m := km.Monitor(w)
		ok, _, miss := m.Stats().Counts()
		if i == senders-1 {
			// Abrupt departure: activations 4..7 of the bounded stream
			// never arrive and must each surface as a timeout.
			if ok != 4 || miss != 4 {
				t.Errorf("%s: counts ok=%d miss=%d, want 4,4", w, ok, miss)
			}
		} else if ok != int(lastAct)+1 || miss != 0 {
			t.Errorf("%s: counts ok=%d miss=%d, want %d,0", w, ok, miss, lastAct+1)
		}
	}
}

func TestKeyedMonitorValidation(t *testing.T) {
	r := newKeyedRig()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewKeyedRemoteMonitor(r.sub, SegmentConfig{Name: "bad"}, VariantMonitorThread, r.lm, nil)
}
