package monitor

import (
	"sync"
	"testing"
	"time"

	rt "chainmon/internal/runtime"
	"chainmon/internal/runtime/walltime"
	"chainmon/internal/sim"
	"chainmon/internal/weaklyhard"
)

// TestBudgetTableVersioning pins the table semantics: versions are
// cumulative full snapshots, epochs are monotonic, non-positive deadlines
// are rejected, and wakers fire per stage.
func TestBudgetTableVersioning(t *testing.T) {
	tab := NewBudgetTable()
	if tab.Epoch() != 0 || tab.AppliedEpoch() != 0 {
		t.Fatalf("fresh table at epoch %d/%d, want 0/0", tab.Epoch(), tab.AppliedEpoch())
	}
	kicks := 0
	tab.RegisterWaker(func() { kicks++ })
	if e := tab.Stage([]DeadlineUpdate{{Segment: "a", DMon: 5 * sim.Millisecond}}); e != 1 {
		t.Fatalf("first stage at epoch %d, want 1", e)
	}
	if e := tab.Stage([]DeadlineUpdate{{Segment: "b", DMon: 7 * sim.Millisecond}, {Segment: "bogus", DMon: -1}}); e != 2 {
		t.Fatalf("second stage at epoch %d, want 2", e)
	}
	v := tab.load()
	if len(v.updates) != 2 {
		t.Fatalf("version carries %d updates, want the full 2-segment snapshot", len(v.updates))
	}
	if v.updates[0] != (DeadlineUpdate{Segment: "a", DMon: 5 * sim.Millisecond}) ||
		v.updates[1] != (DeadlineUpdate{Segment: "b", DMon: 7 * sim.Millisecond}) {
		t.Fatalf("snapshot %+v lost earlier updates or kept the invalid one", v.updates)
	}
	if kicks != 2 {
		t.Fatalf("wakers kicked %d times, want 2", kicks)
	}
	d := tab.Deadlines()
	if len(d) != 2 || d["a"] != 5*sim.Millisecond || d["b"] != 7*sim.Millisecond {
		t.Fatalf("staged deadlines %v", d)
	}
}

// TestBudgetSwapSimBarrier drives the deterministic rig across a mid-run
// shrink: the activation already in flight when the new table lands keeps
// its armed deadline (swap barrier), the next one is supervised under the
// tighter budget and misses.
func TestBudgetSwapSimBarrier(t *testing.T) {
	r := newTestRig()
	seg := r.segment(5*sim.Millisecond, weaklyhard.Constraint{M: 2, K: 4}, nil)
	tab := NewBudgetTable()
	r.mon.AttachBudget(tab)
	r.defCost = 3 * sim.Millisecond // OK under 5ms, a miss under 2ms
	r.produce(4, 100*sim.Millisecond)
	// Activation 2 starts at ~200ms and runs 3ms; the shrink is staged at
	// 201ms, mid-flight. The table's waker forces a scan pass, so the swap
	// applies immediately — but only to activations drained afterwards.
	r.k.At(sim.Time(201*sim.Millisecond), func() {
		tab.Stage([]DeadlineUpdate{{Segment: "worker", DMon: 2 * sim.Millisecond}})
	})
	r.k.Run()
	if got := tab.AppliedEpoch(); got != 1 {
		t.Fatalf("applied epoch %d, want 1", got)
	}
	if got := seg.Config().DMon; got != 2*sim.Millisecond {
		t.Fatalf("live config DMon %v, want the staged 2ms", got)
	}
	want := []Status{StatusOK, StatusOK, StatusOK, StatusMissed}
	res := seg.Stats().Resolutions()
	if len(res) != len(want) {
		t.Fatalf("%d resolutions, want %d", len(res), len(want))
	}
	for i, r := range res {
		if r.Status != want[i] {
			t.Fatalf("act %d resolved %v, want %v (in-flight act 2 must keep its 5ms deadline)", i, r.Status, want[i])
		}
	}
}

// TestBudgetSwapSimGrow covers the relax direction: activations missing
// under the tight initial deadline become OK once a grown budget is staged,
// and the in-flight activation at the swap still resolves under the
// deadline it started with.
func TestBudgetSwapSimGrow(t *testing.T) {
	r := newTestRig()
	seg := r.segment(2*sim.Millisecond, weaklyhard.Constraint{M: 4, K: 8}, nil)
	tab := NewBudgetTable()
	r.mon.AttachBudget(tab)
	r.defCost = 3 * sim.Millisecond
	r.produce(4, 100*sim.Millisecond)
	r.k.At(sim.Time(101*sim.Millisecond), func() {
		tab.Stage([]DeadlineUpdate{{Segment: "worker", DMon: 5 * sim.Millisecond}})
	})
	r.k.Run()
	want := []Status{StatusMissed, StatusMissed, StatusOK, StatusOK}
	res := seg.Stats().Resolutions()
	if len(res) != len(want) {
		t.Fatalf("%d resolutions, want %d", len(res), len(want))
	}
	for i, r := range res {
		if r.Status != want[i] {
			t.Fatalf("act %d resolved %v, want %v (growth must not relax the in-flight act 1)", i, r.Status, want[i])
		}
	}
}

// TestBudgetSwapUnderPreemptionWallclock is the -race battery on the wall
// timebase: a producer goroutine feeds activations, the monitor loop scans,
// and a third goroutine stages shrink/grow swaps concurrently. The test
// asserts the bookkeeping invariants that must survive arbitrary
// interleavings — every activation resolves exactly once, and after the
// final (generous) swap settles, late activations resolve OK.
func TestBudgetSwapUnderPreemptionWallclock(t *testing.T) {
	clock := walltime.NewClock()
	sem := walltime.NewSem()
	mon := NewWallclockMonitor(clock, sem, func() rt.EventRing { return walltime.NewRing(256) }, 1)
	seg := mon.AddSegment(SegmentConfig{
		Name: "w", DMon: 5 * time.Millisecond, Period: time.Millisecond,
		Constraint: weaklyhard.Constraint{M: 100, K: 200},
	})
	var mu sync.Mutex
	resolved := make(map[uint64]int)
	var last Resolution
	seg.OnResolve(func(r Resolution) {
		mu.Lock()
		resolved[r.Activation]++
		last = r
		mu.Unlock()
	})
	tab := NewBudgetTable()
	mon.AttachBudget(tab)

	loop := walltime.NewLoop(clock, sem)
	loop.Scan = mon.ScanNow
	loop.Next = mon.Core().NextDeadline
	loop.Start()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			d := 2 * time.Millisecond
			if i%2 == 1 {
				d = 8 * time.Millisecond
			}
			tab.Stage([]DeadlineUpdate{{Segment: "w", DMon: d}})
			time.Sleep(500 * time.Microsecond)
		}
		// Settle on a budget no activation below can miss.
		tab.Stage([]DeadlineUpdate{{Segment: "w", DMon: 50 * time.Millisecond}})
	}()
	const n = 100
	for act := uint64(0); act < n; act++ {
		seg.StartInjected(act)
		if act%5 == 0 {
			// Slow activations straddle the swapped deadlines, so some race
			// the expiry path while swaps land; fast ones resolve OK.
			time.Sleep(3 * time.Millisecond)
		} else {
			time.Sleep(200 * time.Microsecond)
		}
		seg.EndInjected(act)
	}
	<-done
	// Post a tail activation after the generous budget settled.
	seg.StartInjected(n)
	time.Sleep(time.Millisecond)
	seg.EndInjected(n)
	time.Sleep(20 * time.Millisecond)
	sem.Wake()
	time.Sleep(10 * time.Millisecond)
	loop.Stop()

	mu.Lock()
	defer mu.Unlock()
	if len(resolved) != n+1 {
		t.Fatalf("%d activations resolved, want %d", len(resolved), n+1)
	}
	for act, c := range resolved {
		if c != 1 {
			t.Fatalf("activation %d resolved %d times", act, c)
		}
	}
	if last.Activation != n || last.Status != StatusOK {
		t.Fatalf("tail activation resolved %v (act %d), want OK under the settled 50ms budget", last.Status, last.Activation)
	}
	if got := seg.Config().DMon; got != 50*sim.Millisecond {
		t.Fatalf("settled DMon %v, want 50ms", got)
	}
}
