// Package monitor implements the paper's core contribution: decentralized
// online latency monitoring of event chains with weakly-hard (m,k)
// constraints.
//
// An event chain is segmented into local segments (receive → publication or
// reception on the same ECU, possibly spanning several processes) and remote
// segments (publication → reception on another ECU). Local segments are
// supervised by a per-ECU high-priority monitor thread fed through
// shared-memory ring buffers (LocalMonitor); remote segments are supervised
// at the receiver by interpreting the transmitted source timestamps of the
// PTP-synchronized sender (RemoteMonitor), or — as the inferior baseline the
// paper analyzes — by plain inter-arrival supervision (InterArrivalMonitor).
//
// When a segment's end event does not occur within its monitored deadline
// d_mon, a temporal exception is raised and the application's exception
// handler decides between recovery (substitute data is published or a
// receive event is issued; the activation does not count as a miss) and
// propagation (the miss is forwarded along the chain so that per-segment
// (m,k) accounting remains sound for the end-to-end constraint) — exactly
// Algorithms 1 and 2 of the paper.
package monitor

import (
	"fmt"

	"chainmon/internal/sim"
	"chainmon/internal/weaklyhard"
)

// Status is the resolution of one segment activation.
type Status int

// Resolution statuses.
const (
	// StatusOK: the end event occurred within the monitored deadline
	// (or before the monitor processed the timeout).
	StatusOK Status = iota
	// StatusRecovered: a temporal exception was raised and the
	// application handler recovered with substitute data; the activation
	// does not count as a deadline miss.
	StatusRecovered
	// StatusMissed: a temporal exception was raised and not recovered;
	// the miss counts against the (m,k) constraint and is propagated.
	StatusMissed
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRecovered:
		return "recovered"
	case StatusMissed:
		return "missed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Recovery is the substitute data a handler provides when it can recover
// from a temporal exception (the non-nil return of user_exception in
// Algorithms 1 and 2).
type Recovery struct {
	Data any
	Size int
}

// ExceptionContext is passed to application exception handlers.
type ExceptionContext struct {
	// Segment is the name of the violating segment.
	Segment string
	// Activation is the chain execution index n.
	Activation uint64
	// Misses is the current number of misses within the last k executions
	// (the argument m of Algorithms 1 and 2), including this activation if
	// it ends up missed.
	Misses int
	// Budget is how many further misses the (m,k) window tolerates.
	Budget int
	// Propagated reports whether this exception was propagated from a
	// preceding segment rather than raised by this segment's own timeout.
	Propagated bool
	// RaisedAt is the global time the temporal exception was raised.
	RaisedAt sim.Time
}

// Handler is an application-specific exception handler. Returning nil
// propagates the violation; returning a Recovery recovers with substitute
// data. Handlers run on the monitor thread at the highest priority, so
// their cost must be small and bounded (d_ex).
type Handler func(*ExceptionContext) *Recovery

// Resolution records the outcome of one segment activation for tracing.
type Resolution struct {
	Activation uint64
	Status     Status
	// Start and End are global event times. For exception cases End is the
	// completion of the exception handler ("the end of the temporal
	// exception"); Start is zero for propagated-in activations that never
	// started.
	Start, End sim.Time
	// Latency is End-Start (the monitored segment latency definition:
	// end event or exception end, whichever occurs first).
	Latency sim.Duration
	// Exception reports whether a temporal exception was raised.
	Exception bool
	// HandlerEntry/HandlerDone bound the exception handling, when any.
	HandlerEntry, HandlerDone sim.Time
	// DetectionLatency is HandlerEntry minus the programmed deadline: the
	// time it took to detect the timeout and enter the handler (Figs. 10
	// and 12).
	DetectionLatency sim.Duration
}

// LatencySample returns the resolution's monitored-latency measurement and
// whether it contributes one. This is THE inclusion rule shared by the
// offline SegmentStats sample and the live sketch, so the two always
// summarize the same stream: propagated-in activations never started and
// contribute nothing; exception cases contribute their handler-completion
// latency only when positive; OK resolutions always contribute (a same-
// timestamp end event is a legitimate zero).
func (r Resolution) LatencySample() (sim.Duration, bool) {
	if r.Start == 0 && r.Status != StatusOK {
		return 0, false
	}
	if r.Latency > 0 || r.Status == StatusOK {
		return r.Latency, true
	}
	return 0, false
}

// SegmentConfig parameterizes one monitored segment.
type SegmentConfig struct {
	// Name identifies the segment (e.g. "s1/fusion").
	Name string
	// DMon is the monitored deadline d_mon: a temporal exception is raised
	// if the end event does not occur within DMon of the start event.
	DMon sim.Duration
	// DEx is the budgeted worst-case exception handling latency; the
	// segment deadline is d = DMon + DEx. DEx is bookkeeping for the
	// budgeting step — the actual handler cost is HandlerCost.
	DEx sim.Duration
	// Period is the activation period of the chain.
	Period sim.Duration
	// Constraint is the weakly-hard constraint applied to this segment
	// (the paper uses the chain's (m,k) for each segment, enabled by miss
	// propagation).
	Constraint weaklyhard.Constraint
	// Handler is the application exception handler (nil = always
	// propagate).
	Handler Handler
	// HandlerCost models the handler execution time on the monitor thread.
	HandlerCost sim.Dist
}

func (c *SegmentConfig) handlerCost(rng *sim.RNG) sim.Duration {
	if c.HandlerCost == nil {
		return 0
	}
	return c.HandlerCost.Sample(rng)
}

// Propagator receives explicitly propagated violations (remote → local
// propagation uses an error propagation event; local → remote propagation is
// implicit through the omitted publication).
type Propagator interface {
	// PropagateInto informs the next segment that activation n arrived as
	// an unrecoverable violation.
	PropagateInto(activation uint64)
}

// MultiPropagator fans a propagated violation out to several subsequent
// segments (e.g. when two local segments share the same start event, as the
// objects and ground segments of the evaluation do).
type MultiPropagator []Propagator

// PropagateInto implements Propagator.
func (m MultiPropagator) PropagateInto(activation uint64) {
	for _, p := range m {
		p.PropagateInto(activation)
	}
}

// ResolveFunc observes segment resolutions in activation order; chains
// attach these to their final segment.
type ResolveFunc func(Resolution)

// reorderBuf delivers resolutions to a callback in activation order even if
// they are produced slightly out of order (an exception for n can resolve
// after the end event of n+1 was already processed). Activations that never
// resolve at this segment — possible in partially monitored setups where an
// upstream loss is not propagated in — are skipped once the reorder window
// fills, so the stream cannot stall.
type reorderBuf struct {
	next    uint64
	started bool
	pending map[uint64]Resolution
	sink    func(Resolution)
}

// reorderWindow is how many out-of-order resolutions are buffered before a
// gap is declared permanently missing.
const reorderWindow = 64

func newReorderBuf(sink func(Resolution)) *reorderBuf {
	return &reorderBuf{pending: make(map[uint64]Resolution), sink: sink}
}

func (b *reorderBuf) add(r Resolution) {
	if !b.started {
		// The stream starts at the first activation actually observed
		// (a chain may begin monitoring mid-stream).
		b.next = r.Activation
		b.started = true
	}
	b.pending[r.Activation] = r
	b.flush()
	if len(b.pending) > reorderWindow {
		// Skip the gap: advance to the earliest buffered activation.
		min := r.Activation
		for a := range b.pending {
			if a < min {
				min = a
			}
		}
		b.next = min
		b.flush()
	}
}

func (b *reorderBuf) flush() {
	for {
		r, ok := b.pending[b.next]
		if !ok {
			return
		}
		delete(b.pending, b.next)
		b.next++
		b.sink(r)
	}
}
