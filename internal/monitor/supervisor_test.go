package monitor

import (
	"testing"

	"chainmon/internal/sim"
	"chainmon/internal/weaklyhard"
)

// supervisedChain builds a remote→local chain under a supervisor and
// returns the rig plus the supervisor.
func supervisedChain(safeStopAfter int) (*remoteRig, *RemoteMonitor, *Chain, *Supervisor) {
	r := newRemoteRig()
	rm := r.monitor(10*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5}, nil, VariantMonitorThread)
	ch := NewChain("c", 50*sim.Millisecond, rigPeriod, weaklyhard.Constraint{M: 1, K: 5})
	ch.Append(rm)
	ch.Seal()
	sup := NewSupervisor(r.k, safeStopAfter)
	sup.Watch(ch)
	return r, rm, ch, sup
}

func TestSupervisorStaysNominalWhenClean(t *testing.T) {
	r, rm, _, sup := supervisedChain(3)
	rm.SetLastActivation(9)
	for a := uint64(0); a < 10; a++ {
		r.send(a, 0)
	}
	r.k.RunUntil(sim.Time(1100 * sim.Millisecond))
	if sup.Mode() != ModeNominal {
		t.Errorf("mode = %v, want nominal", sup.Mode())
	}
	if len(sup.Changes()) != 0 {
		t.Errorf("changes = %v", sup.Changes())
	}
}

func TestSupervisorDegradesAndRecovers(t *testing.T) {
	r, rm, _, sup := supervisedChain(100) // never safe-stop
	rm.SetLastActivation(19)
	for a := uint64(0); a < 20; a++ {
		if a == 4 || a == 5 {
			continue // two adjacent losses violate (1,5)
		}
		r.send(a, 0)
	}
	r.k.RunUntil(sim.Time(2100 * sim.Millisecond))

	changes := sup.Changes()
	if len(changes) < 2 {
		t.Fatalf("changes = %v, want degrade + recover", changes)
	}
	if changes[0].To != ModeDegraded {
		t.Errorf("first transition to %v, want degraded", changes[0].To)
	}
	last := changes[len(changes)-1]
	if last.To != ModeNominal {
		t.Errorf("final mode %v, want nominal after window recovery", last.To)
	}
	if sup.Mode() != ModeNominal {
		t.Errorf("mode = %v", sup.Mode())
	}
	if changes[0].Reason == "" || changes[0].Chain != "c" {
		t.Errorf("change metadata missing: %+v", changes[0])
	}
}

func TestSupervisorLatchesSafeStop(t *testing.T) {
	r, rm, _, sup := supervisedChain(2)
	rm.SetLastActivation(19)
	notified := 0
	sup.OnModeChange(func(ModeChange) { notified++ })
	for a := uint64(0); a < 20; a++ {
		if a >= 4 && a <= 8 {
			continue // five consecutive losses: sustained violation
		}
		r.send(a, 0)
	}
	r.k.RunUntil(sim.Time(2100 * sim.Millisecond))

	if sup.Mode() != ModeSafeStop {
		t.Fatalf("mode = %v, want safe-stop", sup.Mode())
	}
	// Latched: later clean executions must not lift it.
	last := sup.Changes()[len(sup.Changes())-1]
	if last.To != ModeSafeStop {
		t.Errorf("last transition %v", last)
	}
	if notified != len(sup.Changes()) {
		t.Errorf("observer calls = %d, changes = %d", notified, len(sup.Changes()))
	}
}

func TestSupervisorMultipleChains(t *testing.T) {
	// Two chains; only one degrades — mode returns to nominal only when
	// all windows are clean (trivially true once the bad chain recovers).
	r := newRemoteRig()
	rm := r.monitor(10*sim.Millisecond, weaklyhard.Constraint{M: 1, K: 5}, nil, VariantMonitorThread)
	rm.SetLastActivation(19)

	chA := NewChain("a", 50*sim.Millisecond, rigPeriod, weaklyhard.Constraint{M: 1, K: 5})
	chA.Append(rm)
	chA.Seal()

	sup := NewSupervisor(r.k, 100)
	sup.Watch(chA)

	for a := uint64(0); a < 20; a++ {
		if a == 7 || a == 8 {
			continue
		}
		r.send(a, 0)
	}
	r.k.RunUntil(sim.Time(2100 * sim.Millisecond))
	if sup.Mode() != ModeNominal {
		t.Errorf("mode = %v after recovery", sup.Mode())
	}
	if len(sup.Changes()) == 0 {
		t.Error("no transitions recorded")
	}
}

func TestSystemModeString(t *testing.T) {
	if ModeNominal.String() != "nominal" || ModeDegraded.String() != "degraded" ||
		ModeSafeStop.String() != "safe-stop" || SystemMode(9).String() == "" {
		t.Error("mode strings wrong")
	}
}
