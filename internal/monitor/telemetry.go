package monitor

import (
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
)

// monTel is a LocalMonitor's probe: the monitor's scan/exception activity on
// the ECU's monitor track plus the shared scan counters. postTrack yields the
// track that a segment's producer-side ring-post events go to — on the
// simulation runtime it is the (single-threaded) monitor track itself; on the
// wall-clock runtime each segment gets its own producer-owned track so the
// single-writer contract holds across goroutines.
type monTel struct {
	sink      *telemetry.Sink
	track     *telemetry.Track
	scans     *telemetry.Counter
	depth     *telemetry.Gauge
	postTrack func(seg string) *telemetry.Track
}

// segTel carries one segment's verdict-path instrumentation. The verdict
// counters are incremented inside the same reorder-buffer sink that feeds
// SegmentStats, so the exported miss/OK counts match Counts() exactly.
// scope is the segment's flow scope (Recorder.FlowScope of its name, unless
// bound to a chain-wide scope first); every verdict, handler and ring-post
// event carries FlowID(scope, act) so the activation's path can be stitched
// across tracks.
type segTel struct {
	track     *telemetry.Track
	posts     *telemetry.Track
	label     uint16
	scope     uint8
	resolved  [3]*telemetry.Counter // indexed by Status
	latency   *telemetry.Histogram
	detection *telemetry.Histogram
	handlers  [2]*telemetry.Counter // recovered, propagated
}

func newSegTel(sink *telemetry.Sink, track, posts *telemetry.Track, name string) *segTel {
	seg := telemetry.Label{Name: "segment", Value: name}
	st := &segTel{
		track: track,
		posts: posts,
		label: sink.Rec.Intern(name),
		scope: sink.Rec.FlowScope(name),
		latency: sink.Reg.Histogram("chainmon_segment_latency_seconds",
			"Segment latency per resolved activation.", nil, seg),
		detection: sink.Reg.Histogram("chainmon_detection_latency_seconds",
			"Deadline expiry to exception-handler entry.", nil, seg),
	}
	for i, status := range []string{"ok", "recovered", "missed"} {
		st.resolved[i] = sink.Reg.Counter("chainmon_segment_resolutions_total",
			"Resolved activations per segment and verdict.", seg,
			telemetry.Label{Name: "status", Value: status})
	}
	for i, outcome := range []string{"recovered", "propagated"} {
		st.handlers[i] = sink.Reg.Counter("chainmon_exception_handlers_total",
			"Temporal-exception handler runs per segment and outcome.", seg,
			telemetry.Label{Name: "outcome", Value: outcome})
	}
	return st
}

// verdict records one in-order resolution: counter, latency/detection
// histograms, and a KindVerdict trace event.
func (st *segTel) verdict(r Resolution) {
	if int(r.Status) < len(st.resolved) {
		st.resolved[r.Status].Inc()
	}
	if r.Latency > 0 {
		st.latency.Observe(int64(r.Latency))
	}
	if r.DetectionLatency > 0 {
		st.detection.Observe(int64(r.DetectionLatency))
	}
	st.track.Append(telemetry.Event{
		TS: int64(r.End), Act: r.Activation, Arg: int64(r.Latency),
		Flow: telemetry.FlowID(st.scope, r.Activation),
		Kind: telemetry.KindVerdict, Status: uint8(r.Status), Label: st.label,
	})
}

// flow is the flow identity of one of this segment's activations.
func (st *segTel) flow(act uint64) uint32 { return telemetry.FlowID(st.scope, act) }

// handlerDone records one exception-handler completion as a span event.
func (st *segTel) handlerDone(act uint64, entry, done sim.Time, recovered bool) {
	outcome, idx := telemetry.OutcomePropagated, 1
	if recovered {
		outcome, idx = telemetry.OutcomeRecovered, 0
	}
	st.handlers[idx].Inc()
	st.track.Append(telemetry.Event{
		TS: int64(done), Act: act, Arg: int64(done.Sub(entry)),
		Flow: st.flow(act),
		Kind: telemetry.KindExcHandler, Status: outcome, Label: st.label,
	})
}

// AttachTelemetry wires the local monitor and all its segments (present and
// future) to the sink. A nil sink leaves the monitor dark. On the simulation
// runtime everything executes on one goroutine, so ring-post events share the
// monitor track; wall-clock monitors must use AttachWallclockTelemetry, which
// splits producer-side posts onto per-segment tracks.
func (m *LocalMonitor) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	if m.ECU == nil {
		panic("monitor: use AttachWallclockTelemetry on the wall-clock runtime (producer posts need their own tracks)")
	}
	m.attachTelemetry(sink, m.ECU.Name, nil)
}

// AttachWallclockTelemetry wires a wall-clock monitor (NewWallclockMonitor)
// to the sink under the given resource name. Producer-side ring-post events
// are recorded on per-segment "<segment>/posts" tracks owned by the posting
// goroutine; monitor-goroutine events (arm/fire/verdict/handler/scan) go to
// the "<name>/monitor" track. This preserves the flight recorder's
// single-writer-per-track contract: StartInjected/EndInjected must still come
// from one producer goroutine per segment.
func (m *LocalMonitor) AttachWallclockTelemetry(sink *telemetry.Sink, name string) {
	if sink == nil {
		return
	}
	if m.ECU != nil {
		panic("monitor: AttachWallclockTelemetry on a simulation monitor; use AttachTelemetry")
	}
	m.attachTelemetry(sink, name, func(seg string) *telemetry.Track {
		return sink.Rec.Track(seg + "/posts")
	})
}

func (m *LocalMonitor) attachTelemetry(sink *telemetry.Sink, name string, postTrack func(string) *telemetry.Track) {
	track := sink.Rec.Track(name + "/monitor")
	if postTrack == nil {
		postTrack = func(string) *telemetry.Track { return track }
	}
	ecu := telemetry.Label{Name: "ecu", Value: name}
	m.tel = &monTel{
		sink:      sink,
		track:     track,
		postTrack: postTrack,
		scans: sink.Reg.Counter("chainmon_monitor_scans_total",
			"Monitor-thread drain passes.", ecu),
		depth: sink.Reg.Gauge("chainmon_monitor_timeout_queue_depth",
			"Armed local timeouts after a monitor pass.", ecu),
	}
	for _, s := range m.segments {
		s.tel = newSegTel(sink, track, postTrack(s.cfg.Name), s.cfg.Name)
	}
}

// remoteTel is a RemoteMonitor's probe. It shares the ECU monitor track with
// the LocalMonitor of the same ECU (both execute on that thread in
// VariantMonitorThread; in VariantDDSContext the track models the
// middleware-thread context instead).
type remoteTel struct {
	*segTel
	programs *telemetry.Counter
	discards *telemetry.Counter
}

// AttachTelemetry wires the remote monitor to the sink. A nil sink leaves it
// dark.
func (m *RemoteMonitor) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	ecuName := m.sub.Node().ECU.Name
	seg := telemetry.Label{Name: "segment", Value: m.cfg.Name}
	monTrack := sink.Rec.Track(ecuName + "/monitor")
	m.tel = &remoteTel{
		segTel: newSegTel(sink, monTrack, monTrack, m.cfg.Name),
		programs: sink.Reg.Counter("chainmon_timer_programs_total",
			"Remote deadline-timer programming operations.", seg),
		discards: sink.Reg.Counter("chainmon_late_discards_total",
			"Samples discarded because their exception already fired.", seg),
	}
}

// AttachTelemetry wires every per-writer monitor (present and future) to the
// sink. A nil sink leaves the family dark.
func (km *KeyedRemoteMonitor) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	km.sink = sink
	for _, w := range km.order {
		km.monitors[w].AttachTelemetry(sink)
	}
}

// AttachTelemetry records supervisor mode transitions on a dedicated track
// and as a mode gauge. A nil sink leaves the supervisor dark.
func (s *Supervisor) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	track := sink.Rec.Track("supervisor")
	mode := sink.Reg.Gauge("chainmon_system_mode",
		"Current supervisor mode (0 nominal, 1 degraded, 2 safe-stop).")
	transitions := sink.Reg.Counter("chainmon_mode_transitions_total",
		"Supervisor mode transitions.")
	s.OnModeChange(func(ch ModeChange) {
		transitions.Inc()
		mode.Set(int64(ch.To))
		track.Append(telemetry.Event{
			TS: int64(ch.At), Arg: int64(ch.From),
			Kind: telemetry.KindModeChange, Status: uint8(ch.To),
			Label: sink.Rec.Intern(ch.Chain),
		})
	})
}

// AttachTelemetry counts the chain's end-to-end executions by verdict. A nil
// sink leaves the chain dark.
func (c *Chain) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	chain := telemetry.Label{Name: "chain", Value: c.Name}
	var counters [3]*telemetry.Counter
	for i, status := range []string{"ok", "recovered", "missed"} {
		counters[i] = sink.Reg.Counter("chainmon_chain_executions_total",
			"Chain end-to-end executions per verdict.", chain,
			telemetry.Label{Name: "status", Value: status})
	}
	c.OnExecution(func(r Resolution) {
		if int(r.Status) < len(counters) {
			counters[r.Status].Inc()
		}
	})
}
