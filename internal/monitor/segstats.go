package monitor

import (
	"fmt"

	"chainmon/internal/stats"
)

// SegmentStats accumulates per-segment measurements: the monitored segment
// latencies (Fig. 9), the latencies of the temporal exception cases
// (Fig. 10), detection/entry latencies (Figs. 10 and 12), and the resolution
// counts by status.
type SegmentStats struct {
	Name string

	resolutions []Resolution
	latency     *stats.Sample // all activations (monitored latency definition)
	excLatency  *stats.Sample // exception cases only
	detection   *stats.Sample // deadline → handler entry
	counts      [3]int        // by Status
}

// NewSegmentStats creates an empty collector.
func NewSegmentStats(name string) *SegmentStats {
	return &SegmentStats{
		Name:       name,
		latency:    stats.NewSample(),
		excLatency: stats.NewSample(),
		detection:  stats.NewSample(),
	}
}

func (s *SegmentStats) record(r Resolution) {
	s.resolutions = append(s.resolutions, r)
	s.counts[r.Status]++
	if lat, ok := r.LatencySample(); ok {
		s.latency.AddDuration(lat)
	}
	if r.Exception {
		if r.Start != 0 {
			s.excLatency.AddDuration(r.Latency)
		}
		s.detection.AddDuration(r.DetectionLatency)
	}
}

// Resolutions returns all recorded resolutions in activation order.
func (s *SegmentStats) Resolutions() []Resolution { return s.resolutions }

// Latencies returns the monitored latency sample over all activations that
// started (end event or exception end, whichever came first).
func (s *SegmentStats) Latencies() *stats.Sample { return s.latency }

// ExceptionLatencies returns the latency sample of exception cases only.
func (s *SegmentStats) ExceptionLatencies() *stats.Sample { return s.excLatency }

// DetectionLatencies returns the deadline-to-handler-entry sample.
func (s *SegmentStats) DetectionLatencies() *stats.Sample { return s.detection }

// Counts returns how many activations resolved ok, recovered and missed.
func (s *SegmentStats) Counts() (ok, recovered, missed int) {
	return s.counts[StatusOK], s.counts[StatusRecovered], s.counts[StatusMissed]
}

// Exceptions returns the number of temporal exceptions raised.
func (s *SegmentStats) Exceptions() int {
	return s.counts[StatusRecovered] + s.counts[StatusMissed]
}

// Summary renders a one-line overview.
func (s *SegmentStats) Summary() string {
	ok, rec, miss := s.Counts()
	return fmt.Sprintf("%-24s activations=%d ok=%d recovered=%d missed=%d", s.Name, len(s.resolutions), ok, rec, miss)
}

// OverheadStats collects the local-monitoring overhead measurements of
// Fig. 11 in the simulated system: event posting costs, the monitor latency
// (post → processed by the monitor thread) and the monitor execution time.
type OverheadStats struct {
	StartPost  *stats.Sample // start-event overhead
	EndPost    *stats.Sample // end-event overhead
	MonLatency *stats.Sample // monitor latency: post → drained
	MonExec    *stats.Sample // monitor thread execution time per scan
}

// NewOverheadStats creates empty overhead collectors.
func NewOverheadStats() *OverheadStats {
	return &OverheadStats{
		StartPost:  stats.NewSample(),
		EndPost:    stats.NewSample(),
		MonLatency: stats.NewSample(),
		MonExec:    stats.NewSample(),
	}
}

// Rows renders the four overhead boxplot rows of Fig. 11.
func (o *OverheadStats) Rows() []string {
	return []string{
		o.StartPost.Tukey().DurationRow("start-event overhead"),
		o.EndPost.Tukey().DurationRow("end-event overhead"),
		o.MonLatency.Tukey().DurationRow("monitor latency"),
		o.MonExec.Tukey().DurationRow("monitor execution time"),
	}
}
