package monitor

import (
	"chainmon/internal/livestats"
	rt "chainmon/internal/runtime"
)

// AttachLive wires the local monitor and all its segments (present and
// future) to a live health set: every segment gets a latency sketch fed by
// the same resolution stream — and the same LatencySample inclusion rule —
// as SegmentStats, an (m,k) SLO sliding in lockstep with the segment's
// weakly-hard counter, and a ring-drain latency sketch chained onto the
// shared runtime core's DrainLatency hook, so both timebases feed it
// identically. A nil set leaves the monitor dark. The set is internally
// locked, so one attach call serves simulation and wall-clock monitors
// alike.
func (m *LocalMonitor) AttachLive(set *livestats.Set) {
	if set == nil {
		return
	}
	m.live = set
	for _, s := range m.segments {
		s.attachLive(set)
	}
}

func (s *LocalSegment) attachLive(set *livestats.Set) {
	scope := set.Segment(s.cfg.Name, s.cfg.Constraint)
	s.core.AppendHooks(rt.SegmentHooks{
		DrainLatency: func(lat rt.Duration) { scope.ObserveDrain(float64(lat)) },
	})
	attachLiveScope(scope, s)
}

// AttachLiveSegment wires any monitored segment (local or remote) to the
// set; remote monitors have no runtime core, so only the resolution stream
// feeds their scope.
func AttachLiveSegment(set *livestats.Set, seg MonitoredSegment) {
	if set == nil {
		return
	}
	cfg := seg.Config()
	attachLiveScope(set.Segment(cfg.Name, cfg.Constraint), seg)
}

// attachLiveScope subscribes a scope to a segment's in-order resolution
// stream. Observers run after the segment's weakly-hard counter updated
// (the reorder-buffer sink runs first), so the scope's SLO window always
// matches the counter the monitor itself consulted.
func attachLiveScope(scope *livestats.Scope, seg interface{ OnResolve(ResolveFunc) }) {
	seg.OnResolve(func(r Resolution) {
		miss := r.Status == StatusMissed
		if lat, ok := r.LatencySample(); ok {
			scope.Observe(float64(lat), miss)
		} else {
			scope.Record(miss)
		}
	})
}

// AttachLive tracks the chain's end-to-end (m,k) window and the latency of
// its verdict-bearing final segment in the set. A nil set leaves the chain
// dark.
func (c *Chain) AttachLive(set *livestats.Set) {
	if set == nil {
		return
	}
	scope := set.Chain(c.Name, c.Constraint)
	c.OnExecution(func(r Resolution) {
		miss := r.Status == StatusMissed
		if lat, ok := r.LatencySample(); ok {
			scope.Observe(float64(lat), miss)
		} else {
			scope.Record(miss)
		}
	})
}
