package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultTrackCap is the per-track event capacity used when NewRecorder is
// given a non-positive capacity: 64Ki events ≈ 2 MiB per track.
const DefaultTrackCap = 1 << 16

// Recorder owns the flight-recorder tracks, the label intern table and the
// flow-scope table. Track creation, interning and scope binding take a mutex
// (they happen at attach time); appending to a track is wait-free and
// lock-free.
type Recorder struct {
	trackCap int

	mu       sync.Mutex
	tracks   []*Track
	byName   map[string]*Track
	labels   []string
	ids      map[string]uint16
	scopes   []string         // flow-scope names; id 0 is unused ("no flow")
	scopeIDs map[string]uint8 // scope name → id
	streams  map[string]uint8 // event-stream name (topic, segment) → scope id
	stream   *StreamWriter    // nil when events are not teed to disk
	observer func(track uint16, ev Event)
}

// NewRecorder creates a recorder whose tracks hold trackCap events each,
// rounded up to a power of two.
func NewRecorder(trackCap int) *Recorder {
	if trackCap <= 0 {
		trackCap = DefaultTrackCap
	}
	cap := 1
	for cap < trackCap {
		cap <<= 1
	}
	return &Recorder{
		trackCap: cap,
		byName:   map[string]*Track{},
		labels:   []string{""}, // id 0 is the empty label
		ids:      map[string]uint16{"": 0},
		scopes:   []string{""}, // id 0 means "no flow"
		scopeIDs: map[string]uint8{},
		streams:  map[string]uint8{},
	}
}

// SetStream tees every future Append to the writer, in addition to the
// in-memory ring. It must be called before any track is created: the stream
// registers tracks (and, in background mode, their staging rings) at track
// creation time, so a late attachment would silently miss tracks.
func (r *Recorder) SetStream(sw *StreamWriter) {
	if r == nil || sw == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.tracks) > 0 {
		panic("telemetry: SetStream must be called before any track is created")
	}
	r.stream = sw
	// Replay definitions interned before the stream was attached so event
	// records never reference an undefined id.
	for id := 1; id < len(r.labels); id++ {
		sw.defineLabel(uint16(id), r.labels[id])
	}
	for id := 1; id < len(r.scopes); id++ {
		sw.defineScope(uint8(id), r.scopes[id])
	}
}

// SetObserver tees every future Append to fn, in append order. Like
// SetStream it must be called before any track is created (tracks capture
// the observer at creation). The callback runs on the appending goroutine;
// with multiple appending goroutines it must be internally synchronized.
// When a stream writer is also attached, prefer StreamWriter.SetObserver —
// it sees the log's drain order, which is what offline replay reproduces.
func (r *Recorder) SetObserver(fn func(track uint16, ev Event)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.tracks) > 0 {
		panic("telemetry: SetObserver must be called before any track is created")
	}
	r.observer = fn
}

// Stream returns the attached stream writer (nil when events stay in
// memory only).
func (r *Recorder) Stream() *StreamWriter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stream
}

// Track returns the named track, creating it on first use. Tracks are
// single-writer: exactly one goroutine may Append to a given track. A nil
// recorder returns a nil track, whose Append is a no-op.
func (r *Recorder) Track(name string) *Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.byName[name]; ok {
		return t
	}
	t := &Track{
		name: name,
		id:   uint16(len(r.tracks)),
		buf:  make([]Event, r.trackCap),
		mask: uint64(r.trackCap - 1),
		obs:  r.observer,
	}
	if r.stream != nil {
		t.sw = r.stream
		r.stream.register(t)
	}
	r.tracks = append(r.tracks, t)
	r.byName[name] = t
	return t
}

// Intern returns a stable id for the string, for use as Event.Label.
// A nil recorder returns 0 (the empty label).
func (r *Recorder) Intern(s string) uint16 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.ids[s]; ok {
		return id
	}
	id := uint16(len(r.labels))
	r.labels = append(r.labels, s)
	r.ids[s] = id
	if r.stream != nil {
		r.stream.defineLabel(id, s)
	}
	return id
}

// LabelName resolves an interned label id.
func (r *Recorder) LabelName(id uint16) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(id) < len(r.labels) {
		return r.labels[id]
	}
	return ""
}

// BindFlow assigns an event stream (a topic or segment name) to a named flow
// scope, so events of different streams that belong to the same causal chain
// share flow identities. Streams that are never bound fall into a scope of
// their own name on first use (see FlowScope). Bindings must be installed
// before the instrumented run starts.
func (r *Recorder) BindFlow(stream, scope string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.streams[stream] = r.internScope(scope)
}

// FlowScope resolves the flow-scope id of an event stream, auto-binding
// unbound streams to a scope of their own name. A nil recorder returns 0
// (no flow).
func (r *Recorder) FlowScope(stream string) uint8 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.streams[stream]; ok {
		return id
	}
	id := r.internScope(stream)
	r.streams[stream] = id
	return id
}

// internScope creates or returns a scope id; callers hold r.mu.
func (r *Recorder) internScope(scope string) uint8 {
	if id, ok := r.scopeIDs[scope]; ok {
		return id
	}
	if len(r.scopes) > 255 {
		panic(fmt.Sprintf("telemetry: too many flow scopes (255 max), binding %q", scope))
	}
	id := uint8(len(r.scopes))
	r.scopes = append(r.scopes, scope)
	r.scopeIDs[scope] = id
	if r.stream != nil {
		r.stream.defineScope(id, scope)
	}
	return id
}

// ScopeName resolves a flow-scope id.
func (r *Recorder) ScopeName(id uint8) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(id) < len(r.scopes) {
		return r.scopes[id]
	}
	return ""
}

// Tracks returns the tracks in creation order.
func (r *Recorder) Tracks() []*Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Track(nil), r.tracks...)
}

// Dropped returns the total number of overwritten (dropped-oldest) events
// across all tracks. It is safe to call while the run is in progress.
func (r *Recorder) Dropped() uint64 {
	var total uint64
	for _, t := range r.Tracks() {
		total += t.Dropped()
	}
	return total
}

// Track is one fixed-capacity event ring with a single writer (one
// goroutine / one simulated thread context). Append overwrites the oldest
// event when the ring is full — the flight-recorder keeps the newest
// window and counts what it dropped.
type Track struct {
	name string
	id   uint16
	buf  []Event
	mask uint64
	// n counts appends. It is written only by the owning goroutine but read
	// by concurrent Len/Dropped (the live /metrics scrape), hence atomic.
	n atomic.Uint64
	// sw tees appends to the attached stream writer (nil when not
	// streaming); ring is the per-track staging ring of a background
	// writer (nil in direct mode). obs is the recorder-level observer
	// captured at track creation (nil when none).
	sw   *StreamWriter
	ring *streamRing
	obs  func(track uint16, ev Event)
}

// Name returns the track name.
func (t *Track) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// ID returns the track's creation-order index, used as the track id in the
// on-disk stream format.
func (t *Track) ID() uint16 {
	if t == nil {
		return 0
	}
	return t.id
}

// Append records an event. It is wait-free: one slot store and one counter
// increment, no allocation, no locks (the optional disk stream adds one
// staging-ring push). Append must only be called by the track's owning
// goroutine. A nil track ignores the event.
func (t *Track) Append(ev Event) {
	if t == nil {
		return
	}
	n := t.n.Load()
	t.buf[n&t.mask] = ev
	t.n.Store(n + 1)
	if t.sw != nil {
		t.sw.tee(t, ev)
	}
	if t.obs != nil {
		t.obs(t.id, ev)
	}
}

// Len returns the number of retained events (at most the track capacity).
func (t *Track) Len() int {
	if t == nil {
		return 0
	}
	if n := t.n.Load(); n < uint64(len(t.buf)) {
		return int(n)
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten because the ring was
// full. It is safe to call while the owning goroutine is still appending.
func (t *Track) Dropped() uint64 {
	if t == nil {
		return 0
	}
	if n := t.n.Load(); n > uint64(len(t.buf)) {
		return n - uint64(len(t.buf))
	}
	return 0
}

// Events returns the retained events in append order (oldest first). It
// must not run concurrently with Append; exporters call it after the run.
func (t *Track) Events() []Event {
	if t == nil {
		return nil
	}
	n := t.n.Load()
	if n <= uint64(len(t.buf)) {
		return append([]Event(nil), t.buf[:n]...)
	}
	head := n & t.mask
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[head:]...)
	out = append(out, t.buf[:head]...)
	return out
}
