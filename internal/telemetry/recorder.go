package telemetry

import "sync"

// DefaultTrackCap is the per-track event capacity used when NewRecorder is
// given a non-positive capacity: 64Ki events ≈ 2 MiB per track.
const DefaultTrackCap = 1 << 16

// Recorder owns the flight-recorder tracks and the label intern table.
// Track creation and interning take a mutex (they happen at attach time);
// appending to a track is wait-free and lock-free.
type Recorder struct {
	trackCap int

	mu     sync.Mutex
	tracks []*Track
	byName map[string]*Track
	labels []string
	ids    map[string]uint16
}

// NewRecorder creates a recorder whose tracks hold trackCap events each,
// rounded up to a power of two.
func NewRecorder(trackCap int) *Recorder {
	if trackCap <= 0 {
		trackCap = DefaultTrackCap
	}
	cap := 1
	for cap < trackCap {
		cap <<= 1
	}
	return &Recorder{
		trackCap: cap,
		byName:   map[string]*Track{},
		labels:   []string{""}, // id 0 is the empty label
		ids:      map[string]uint16{"": 0},
	}
}

// Track returns the named track, creating it on first use. Tracks are
// single-writer: exactly one goroutine may Append to a given track. A nil
// recorder returns a nil track, whose Append is a no-op.
func (r *Recorder) Track(name string) *Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.byName[name]; ok {
		return t
	}
	t := &Track{
		name: name,
		buf:  make([]Event, r.trackCap),
		mask: uint64(r.trackCap - 1),
	}
	r.tracks = append(r.tracks, t)
	r.byName[name] = t
	return t
}

// Intern returns a stable id for the string, for use as Event.Label.
// A nil recorder returns 0 (the empty label).
func (r *Recorder) Intern(s string) uint16 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.ids[s]; ok {
		return id
	}
	id := uint16(len(r.labels))
	r.labels = append(r.labels, s)
	r.ids[s] = id
	return id
}

// LabelName resolves an interned label id.
func (r *Recorder) LabelName(id uint16) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(id) < len(r.labels) {
		return r.labels[id]
	}
	return ""
}

// Tracks returns the tracks in creation order.
func (r *Recorder) Tracks() []*Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Track(nil), r.tracks...)
}

// Dropped returns the total number of overwritten (dropped-oldest) events
// across all tracks.
func (r *Recorder) Dropped() uint64 {
	var total uint64
	for _, t := range r.Tracks() {
		total += t.Dropped()
	}
	return total
}

// Track is one fixed-capacity event ring with a single writer (one
// goroutine / one simulated thread context). Append overwrites the oldest
// event when the ring is full — the flight-recorder keeps the newest
// window and counts what it dropped.
type Track struct {
	name string
	buf  []Event
	mask uint64
	n    uint64
}

// Name returns the track name.
func (t *Track) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Append records an event. It is wait-free: one slot store and one counter
// increment, no allocation, no locks. Append must only be called by the
// track's owning goroutine. A nil track ignores the event.
func (t *Track) Append(ev Event) {
	if t == nil {
		return
	}
	t.buf[t.n&t.mask] = ev
	t.n++
}

// Len returns the number of retained events (at most the track capacity).
func (t *Track) Len() int {
	if t == nil {
		return 0
	}
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten because the ring was
// full.
func (t *Track) Dropped() uint64 {
	if t == nil {
		return 0
	}
	if t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events returns the retained events in append order (oldest first). It
// must not run concurrently with Append; exporters call it after the run.
func (t *Track) Events() []Event {
	if t == nil {
		return nil
	}
	if t.n <= uint64(len(t.buf)) {
		return append([]Event(nil), t.buf[:t.n]...)
	}
	head := t.n & t.mask
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[head:]...)
	out = append(out, t.buf[:head]...)
	return out
}
