package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, "sim", StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(16)
	r.SetStream(sw)
	r.BindFlow("seg", "chain")
	scope := r.FlowScope("seg")
	a := r.Track("a")
	b := r.Track("b")
	lbl := r.Intern("seg")
	want := []struct {
		tr *Track
		ev Event
	}{
		{a, Event{TS: 10, Act: 1, Arg: 7, Flow: FlowID(scope, 1), Kind: KindDDSSend, Label: lbl}},
		{b, Event{TS: 20, Act: 1, Arg: -3, Flow: FlowID(scope, 1), Kind: KindVerdict, Label: lbl, Status: StatusOK}},
		{a, Event{TS: 30, Act: 2, Kind: KindScan}},
	}
	for _, w := range want {
		w.tr.Append(w.ev)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sw.EventsWritten(); got != 3 {
		t.Errorf("EventsWritten = %d, want 3", got)
	}
	if sw.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0 in direct mode", sw.Dropped())
	}

	l, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if l.Timebase != "sim" {
		t.Errorf("timebase = %q", l.Timebase)
	}
	if l.Events() != 3 {
		t.Fatalf("log events = %d, want 3", l.Events())
	}
	tracks := l.Tracks()
	if len(tracks) != 2 || tracks[0].Name != "a" || tracks[1].Name != "b" {
		t.Fatalf("tracks = %+v", tracks)
	}
	if got := tracks[0].Events[0]; got != want[0].ev {
		t.Errorf("a[0] = %+v, want %+v", got, want[0].ev)
	}
	if got := tracks[1].Events[0]; got != want[1].ev {
		t.Errorf("b[0] = %+v, want %+v", got, want[1].ev)
	}
	if got := l.LabelName(lbl); got != "seg" {
		t.Errorf("label = %q", got)
	}
	if got := l.ScopeName(scope); got != "chain" {
		t.Errorf("scope = %q", got)
	}
}

func TestStreamSetStreamAfterTrackPanics(t *testing.T) {
	r := NewRecorder(8)
	r.Track("early")
	sw, err := NewStreamWriter(&bytes.Buffer{}, "sim", StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetStream after Track did not panic")
		}
	}()
	r.SetStream(sw)
}

// Labels and scopes interned before SetStream must still be defined in the
// log (SetStream replays them), so a late-attached stream stays decodable.
func TestStreamReplaysEarlyDefinitions(t *testing.T) {
	r := NewRecorder(8)
	lbl := r.Intern("early-label")
	r.BindFlow("s", "early-scope")
	scope := r.FlowScope("s")
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, "sim", StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r.SetStream(sw)
	r.Track("t").Append(Event{TS: 1, Flow: FlowID(scope, 1), Kind: KindScan, Label: lbl})
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LabelName(lbl); got != "early-label" {
		t.Errorf("label = %q", got)
	}
	if got := l.ScopeName(scope); got != "early-scope" {
		t.Errorf("scope = %q", got)
	}
}

// The background writer must survive concurrent producers under -race and
// lose nothing when the staging rings are large enough.
func TestStreamBackgroundConcurrent(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, "wall", StreamOptions{
		Background: true,
		RingCap:    4096,
		FlushEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(64)
	r.SetStream(sw)
	const producers, perTrack = 4, 1000
	tracks := make([]*Track, producers)
	for i := range tracks {
		tracks[i] = r.Track(string(rune('a' + i)))
	}
	var wg sync.WaitGroup
	for i, tr := range tracks {
		wg.Add(1)
		go func(i int, tr *Track) {
			defer wg.Done()
			for n := 0; n < perTrack; n++ {
				tr.Append(Event{TS: int64(n), Act: uint64(n), Kind: KindRingPostStart})
			}
		}(i, tr)
	}
	wg.Wait()
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if sw.Dropped() != 0 {
		t.Fatalf("dropped %d events with room in every ring", sw.Dropped())
	}
	l, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if l.Events() != producers*perTrack {
		t.Fatalf("log events = %d, want %d", l.Events(), producers*perTrack)
	}
	for _, tr := range l.Tracks() {
		if len(tr.Events) != perTrack {
			t.Errorf("track %s: %d events, want %d", tr.Name, len(tr.Events), perTrack)
		}
		for n, ev := range tr.Events {
			if ev.TS != int64(n) {
				t.Fatalf("track %s: event %d has ts %d (ring reordered?)", tr.Name, n, ev.TS)
			}
		}
	}
}

// A saturated staging ring drops the newest events, counts them, and keeps
// everything it accepted.
func TestStreamBackgroundDropAccounting(t *testing.T) {
	reg := NewRegistry()
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, "wall", StreamOptions{
		Background: true,
		RingCap:    8,
		FlushEvery: time.Hour, // only the Close drain runs
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(8)
	r.SetStream(sw)
	tr := r.Track("t")
	for i := 0; i < 100; i++ {
		tr.Append(Event{TS: int64(i), Kind: KindScan})
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sw.Dropped(); got != 92 {
		t.Errorf("Dropped = %d, want 92", got)
	}
	if got := sw.EventsWritten(); got != 8 {
		t.Errorf("EventsWritten = %d, want 8", got)
	}
	var b strings.Builder
	if err := (&Sink{Rec: r, Reg: reg}).WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `chainmon_stream_dropped_total{track="t"} 92`) {
		t.Errorf("drop counter missing from metrics:\n%s", b.String())
	}
	l, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if l.Events() != 8 {
		t.Errorf("log events = %d, want 8", l.Events())
	}
}

// A log truncated mid-record (crash, disk full) must still parse up to the
// last complete record.
func TestStreamTruncatedLogTolerated(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, "sim", StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(8)
	r.SetStream(sw)
	tr := r.Track("t")
	tr.Append(Event{TS: 1, Kind: KindScan})
	tr.Append(Event{TS: 2, Kind: KindScan})
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-10] // slices into the last event record
	l, err := ReadLog(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("truncated log: %v", err)
	}
	if l.Events() != 1 {
		t.Errorf("events = %d, want 1 (the complete record)", l.Events())
	}
}

// Flow stitching in the converted Perfetto JSON: multi-track flows get
// s/t/f events sharing the flow id, single-hop flows get none.
func TestLogPerfettoFlowEvents(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, "sim", StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(16)
	r.SetStream(sw)
	r.BindFlow("seg", "chain")
	scope := r.FlowScope("seg")
	a, b, c := r.Track("a"), r.Track("b"), r.Track("c")
	flow := FlowID(scope, 7)
	lone := FlowID(scope, 8)
	a.Append(Event{TS: 100, Act: 7, Flow: flow, Kind: KindDDSSend})
	b.Append(Event{TS: 200, Act: 7, Flow: flow, Kind: KindNetSend})
	c.Append(Event{TS: 300, Act: 7, Flow: flow, Kind: KindDDSRecv})
	c.Append(Event{TS: 400, Act: 8, Flow: lone, Kind: KindVerdict, Status: StatusOK})
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := l.WritePerfetto(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v\n%s", err, out.String())
	}
	phases := map[string]int{}
	var lastTS float64 = -1
	for _, ev := range doc.TraceEvents {
		if ev["cat"] != "flow" {
			continue
		}
		ph := ev["ph"].(string)
		phases[ph]++
		if id := ev["id"].(float64); uint32(id) != flow {
			t.Errorf("flow event has id %v, want %d (flow %d must emit no flow events)", id, flow, lone)
		}
		ts := ev["ts"].(float64)
		if ts < lastTS {
			t.Errorf("flow event timestamps not monotone: %v after %v", ts, lastTS)
		}
		lastTS = ts
		if ph == "f" && ev["bp"] != "e" {
			t.Errorf(`finish event missing "bp":"e": %v`, ev)
		}
	}
	if phases["s"] != 1 || phases["t"] != 1 || phases["f"] != 1 {
		t.Errorf("flow phases = %v, want one each of s/t/f", phases)
	}
}
