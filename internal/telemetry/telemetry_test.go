package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTrackAppendWrapAndDrop(t *testing.T) {
	r := NewRecorder(8)
	tr := r.Track("a")
	for i := 0; i < 20; i++ {
		tr.Append(Event{TS: int64(i), Kind: KindScan})
	}
	if got := tr.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("Events len = %d, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := int64(12 + i); ev.TS != want {
			t.Fatalf("event %d: TS = %d, want %d (oldest-first after wrap)", i, ev.TS, want)
		}
	}
	if got := r.Dropped(); got != 12 {
		t.Fatalf("Recorder.Dropped = %d, want 12", got)
	}
}

func TestTrackPartialFill(t *testing.T) {
	r := NewRecorder(8)
	tr := r.Track("a")
	for i := 0; i < 3; i++ {
		tr.Append(Event{TS: int64(i)})
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].TS != 0 || evs[2].TS != 2 {
		t.Fatalf("Events = %+v, want TS 0..2", evs)
	}
}

func TestNilRecorderAndTrack(t *testing.T) {
	var r *Recorder
	tr := r.Track("x")
	tr.Append(Event{}) // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil track should be empty")
	}
	if r.Intern("x") != 0 {
		t.Fatal("nil recorder Intern should return 0")
	}
	if r.Tracks() != nil {
		t.Fatal("nil recorder Tracks should return nil")
	}
}

func TestTrackCapRoundsUp(t *testing.T) {
	r := NewRecorder(100)
	tr := r.Track("a")
	for i := 0; i < 128; i++ {
		tr.Append(Event{})
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("cap should round 100 up to 128; dropped %d", got)
	}
	tr.Append(Event{})
	if got := tr.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
}

func TestIntern(t *testing.T) {
	r := NewRecorder(8)
	a := r.Intern("s1a/fusion-front")
	b := r.Intern("s1a/fusion-front")
	c := r.Intern("other")
	if a != b {
		t.Fatalf("Intern not stable: %d vs %d", a, b)
	}
	if a == c {
		t.Fatal("distinct strings interned to same id")
	}
	if got := r.LabelName(a); got != "s1a/fusion-front" {
		t.Fatalf("LabelName = %q", got)
	}
	if got := r.LabelName(0); got != "" {
		t.Fatalf("LabelName(0) = %q, want empty", got)
	}
}

func TestRegistryDedupAndTypes(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("x_total", "help", Label{"seg", "a"})
	c2 := reg.Counter("x_total", "ignored", Label{"seg", "a"})
	if c1 != c2 {
		t.Fatal("same name+labels must return the same counter")
	}
	c3 := reg.Counter("x_total", "help", Label{"seg", "b"})
	if c1 == c3 {
		t.Fatal("different labels must return distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two types should panic")
		}
	}()
	reg.Gauge("x_total", "help")
}

func TestGaugeMax(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth", "")
	g.Set(5)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 5 {
		t.Fatalf("Value=%d Max=%d, want 3/5", g.Value(), g.Max())
	}
	g.SetMax(10)
	if g.Value() != 3 || g.Max() != 10 {
		t.Fatalf("after SetMax: Value=%d Max=%d, want 3/10", g.Value(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5126 {
		t.Fatalf("Count=%d Sum=%d", h.Count(), h.Sum())
	}
	want := []uint64{2, 2, 0, 1} // ≤10, ≤100, ≤1000, +Inf
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestWriteMetricsFormat(t *testing.T) {
	s := NewSink(8)
	s.Reg.Counter("chainmon_test_total", "test counter", Label{"seg", "s1"}).Add(3)
	s.Reg.Counter("chainmon_test_total", "test counter", Label{"seg", "s0"}).Inc()
	s.Reg.Gauge("chainmon_depth", "depth gauge").Set(-2)
	h := s.Reg.Histogram("chainmon_lat_seconds", "latency", []int64{1_000_000, 100_000_000})
	h.Observe(500_000)
	h.Observe(50_000_000)
	h.Observe(2_000_000_000)

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# HELP chainmon_depth depth gauge
# TYPE chainmon_depth gauge
chainmon_depth -2
# HELP chainmon_lat_seconds latency
# TYPE chainmon_lat_seconds histogram
chainmon_lat_seconds_bucket{le="0.001"} 1
chainmon_lat_seconds_bucket{le="0.1"} 2
chainmon_lat_seconds_bucket{le="+Inf"} 3
chainmon_lat_seconds_sum 2.0505
chainmon_lat_seconds_count 3
# HELP chainmon_test_total test counter
# TYPE chainmon_test_total counter
chainmon_test_total{seg="s0"} 1
chainmon_test_total{seg="s1"} 3
`
	if got != want {
		t.Fatalf("WriteMetrics mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePerfettoValidJSON(t *testing.T) {
	s := NewSink(64)
	tr := s.Rec.Track("ecu1/monitor")
	seg := s.Rec.Intern(`s1a/"fusion"`)
	tr.Append(Event{TS: 1_000_000, Act: 1, Arg: 2, Kind: KindRingPostStart, Label: seg})
	tr.Append(Event{TS: 2_000_000, Act: 1, Arg: 500_000, Kind: KindExcHandler, Status: OutcomeRecovered, Label: seg})
	tr.Append(Event{TS: 2_500_000, Act: 1, Arg: 1_400_000, Kind: KindVerdict, Status: StatusRecovered, Label: seg})
	tr.Append(Event{TS: 3_000_000, Arg: 7, Kind: KindTimeoutQueue})
	s.Rec.Track("kernel").Append(Event{TS: 1, Arg: 42, Act: 9, Kind: KindKernelQueue})

	var buf bytes.Buffer
	if err := s.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 process metadata + 2 tracks × 2 metadata + 6 events (ring post emits
	// instant + counter).
	if len(doc.TraceEvents) != 11 {
		t.Fatalf("traceEvents = %d entries, want 11", len(doc.TraceEvents))
	}
	var sawSpan, sawCounter bool
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			sawSpan = true
			if ev["ts"].(float64) != 1500 || ev["dur"].(float64) != 500 {
				t.Fatalf("span ts/dur wrong: %v", ev)
			}
		case "C":
			sawCounter = true
		case "M", "i":
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	if !sawSpan || !sawCounter {
		t.Fatalf("missing span (%v) or counter (%v) events", sawSpan, sawCounter)
	}
}

func TestWriteEventsCSV(t *testing.T) {
	s := NewSink(8)
	tr := s.Rec.Track("net")
	tr.Append(Event{TS: 5, Arg: 100, Kind: KindNetDrop, Label: s.Rec.Intern("ecu1->ecu2")})
	var buf bytes.Buffer
	if err := s.WriteEventsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want header+1", len(lines))
	}
	if lines[1] != "net,5,net-drop,0,100,0,ecu1->ecu2," {
		t.Fatalf("row = %q", lines[1])
	}
	if !strings.HasSuffix(lines[0], ",flow") {
		t.Fatalf("header = %q, want trailing flow column", lines[0])
	}
}

func TestMicrosFormatting(t *testing.T) {
	cases := map[int64]string{
		0:         "0.000",
		1:         "0.001",
		999:       "0.999",
		1000:      "1.000",
		1_234_567: "1234.567",
		-1_500:    "-1.500",
		-1:        "-0.001",
	}
	for ns, want := range cases {
		if got := micros(ns); got != want {
			t.Errorf("micros(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[int64]string{
		0:             "0.0",
		50_000:        "0.00005",
		1_000_000_000: "1.0",
		2_050_500_000: "2.0505",
		-500_000_000:  "-0.5",
	}
	for ns, want := range cases {
		if got := formatSeconds(ns); got != want {
			t.Errorf("formatSeconds(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestJSONString(t *testing.T) {
	cases := map[string]string{
		"plain":    `"plain"`,
		`q"u`:      `"q\"u"`,
		"a\\b":     `"a\\b"`,
		"n\nl":     `"n\nl"`,
		"ctrl\x01": "\"ctrl\\u0001\"",
		"µs/段":     `"µs/段"`,
	}
	for in, want := range cases {
		got := jsonString(in)
		if got != want {
			t.Errorf("jsonString(%q) = %s, want %s", in, got, want)
			continue
		}
		var back string
		if err := json.Unmarshal([]byte(got), &back); err != nil || back != in {
			t.Errorf("jsonString(%q) does not round-trip: %v", in, err)
		}
	}
}

// TestConcurrentMetricUpdates exercises the lock-free metric handles from
// many goroutines; run under -race in CI.
func TestConcurrentMetricUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", []int64{10, 100})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.SetMax(int64(i*1000 + j))
				h.Observe(int64(j % 200))
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter=%d hist=%d, want 8000", c.Value(), h.Count())
	}
	if g.Max() != 7999 {
		t.Fatalf("gauge max = %d, want 7999", g.Max())
	}
}

func BenchmarkTrackAppend(b *testing.B) {
	r := NewRecorder(1 << 12)
	tr := r.Track("bench")
	ev := Event{TS: 1, Act: 2, Arg: 3, Kind: KindRingPostStart, Label: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.TS = int64(i)
		tr.Append(ev)
	}
}

func BenchmarkNilTrackAppend(b *testing.B) {
	var tr *Track
	ev := Event{Kind: KindRingPostStart}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Append(ev)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i%200) * 1_000_000)
	}
}
