package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Report is the end-to-end latency attribution derived from a streamed
// event log: per-scope hop statistics stitched from flow identities, the
// worst activation's hop-by-hop breakdown, and per-segment verdict
// statistics recomputed from KindVerdict events. The segment numbers use
// the same inclusion rule as monitor.SegmentStats, so the report's max
// latencies match Stats().Latencies().Max() exactly on the same run.
type Report struct {
	Timebase string
	Events   int
	Scopes   []*ScopeReport
	Segments []*SegmentReport
}

// HopStat summarizes one latency population.
type HopStat struct {
	Name  string
	Count int
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// PathStep is one hop of the worst activation's journey.
type PathStep struct {
	// Offset is the time since the flow's first event.
	Offset time.Duration
	Kind   Kind
	Track  string
	Label  string
}

// FlowPath is one ranked activation path of a scope's worst-N list.
type FlowPath struct {
	Act   uint64
	Flow  uint32
	Total time.Duration
	Path  []PathStep
}

// FlowWorse is the shared "worse activation" ordering used by both the
// report's worst-N path list and the blame engine's exemplar store, so the
// online top-K and the offline -top agree: larger end-to-end total first,
// ties broken by ascending flow id (the earlier activation wins).
func FlowWorse(totalA int64, flowA uint32, totalB int64, flowB uint32) bool {
	if totalA != totalB {
		return totalA > totalB
	}
	return flowA < flowB
}

// ScopeReport is the attribution of one flow scope (one chain).
type ScopeReport struct {
	Scope string
	// Flows is the number of stitched flows (≥ 2 hops) in the scope.
	Flows int
	// EndToEnd is first-hop → last-hop per flow.
	EndToEnd HopStat
	// Hops are consecutive-event transitions aggregated by kind pair, in
	// order of first appearance.
	Hops []*HopStat
	// WorstAct is the activation with the largest end-to-end span.
	WorstAct   uint64
	WorstTotal time.Duration
	WorstPath  []PathStep
	// TopPaths are the worst-N activation paths in FlowWorse order;
	// TopPaths[0] always mirrors WorstAct/WorstTotal/WorstPath.
	TopPaths []FlowPath
}

// SegmentReport is one segment's verdict accounting recomputed from trace
// events.
type SegmentReport struct {
	Name      string
	OK        int
	Recovered int
	Missed    int
	Latency   HopStat
}

// flowHop is one event of a flow with enough context to name the hop.
type flowHop struct {
	ts    int64
	track int
	idx   int
	kind  Kind
	label uint16
}

// BuildReport derives the attribution report from a parsed log, keeping the
// single worst activation path per scope.
func BuildReport(l *Log) *Report { return BuildReportTop(l, 1) }

// BuildReportTop derives the attribution report keeping the worst topN
// activation paths per scope (FlowWorse order).
func BuildReportTop(l *Log, topN int) *Report {
	if topN < 1 {
		topN = 1
	}
	rep := &Report{Timebase: l.Timebase, Events: l.Events()}

	flows := map[uint32][]flowHop{}
	segs := map[string]*SegmentReport{}
	segLats := map[string][]int64{}
	var segOrder []string
	for ti, t := range l.Tracks() {
		for ei, ev := range t.Events {
			if ev.Flow != 0 {
				flows[ev.Flow] = append(flows[ev.Flow], flowHop{
					ts: ev.TS, track: ti, idx: ei, kind: ev.Kind, label: ev.Label,
				})
			}
			if ev.Kind != KindVerdict {
				continue
			}
			name := l.LabelName(ev.Label)
			sr, ok := segs[name]
			if !ok {
				sr = &SegmentReport{Name: name}
				segs[name] = sr
				segOrder = append(segOrder, name)
			}
			switch ev.Status {
			case StatusOK:
				sr.OK++
			case StatusRecovered:
				sr.Recovered++
			case StatusMissed:
				sr.Missed++
			}
			// Same latency-sample rule as monitor.SegmentStats: OK verdicts
			// always count; exception verdicts only with a known positive
			// latency (propagated-in activations have none).
			if ev.Status == StatusOK || ev.Arg > 0 {
				segLats[name] = append(segLats[name], ev.Arg)
			}
		}
	}

	sort.Strings(segOrder)
	for _, name := range segOrder {
		sr := segs[name]
		sr.Latency = hopStat("latency", segLats[name])
		rep.Segments = append(rep.Segments, sr)
	}

	// Deterministic flow order: ascending flow id = (scope, activation).
	ids := make([]uint32, 0, len(flows))
	for id := range flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	type scopeAgg struct {
		rep     *ScopeReport
		hops    map[string]*[]int64
		hopSeen []string
		e2e     []int64
	}
	scopes := map[uint8]*scopeAgg{}
	var scopeOrder []uint8
	for _, id := range ids {
		hops := flows[id]
		if len(hops) < 2 {
			continue
		}
		sort.Slice(hops, func(i, j int) bool {
			if hops[i].ts != hops[j].ts {
				return hops[i].ts < hops[j].ts
			}
			if hops[i].track != hops[j].track {
				return hops[i].track < hops[j].track
			}
			return hops[i].idx < hops[j].idx
		})
		scopeID := FlowScopeOf(id)
		agg, ok := scopes[scopeID]
		if !ok {
			agg = &scopeAgg{
				rep:  &ScopeReport{Scope: l.ScopeName(scopeID)},
				hops: map[string]*[]int64{},
			}
			scopes[scopeID] = agg
			scopeOrder = append(scopeOrder, scopeID)
		}
		agg.rep.Flows++
		total := hops[len(hops)-1].ts - hops[0].ts
		agg.e2e = append(agg.e2e, total)
		for i := 1; i < len(hops); i++ {
			name := hops[i-1].kind.String() + "→" + hops[i].kind.String()
			lats, ok := agg.hops[name]
			if !ok {
				lats = &[]int64{}
				agg.hops[name] = lats
				agg.hopSeen = append(agg.hopSeen, name)
			}
			*lats = append(*lats, hops[i].ts-hops[i-1].ts)
		}
		top := agg.rep.TopPaths
		if len(top) < topN || FlowWorse(total, id, int64(top[len(top)-1].Total), top[len(top)-1].Flow) {
			path := make([]PathStep, len(hops))
			for i, h := range hops {
				path[i] = PathStep{
					Offset: time.Duration(h.ts - hops[0].ts),
					Kind:   h.kind,
					Track:  l.tracks[h.track].Name,
					Label:  l.LabelName(h.label),
				}
			}
			fp := FlowPath{Act: FlowAct(id), Flow: id, Total: time.Duration(total), Path: path}
			pos := len(top)
			for pos > 0 && FlowWorse(total, id, int64(top[pos-1].Total), top[pos-1].Flow) {
				pos--
			}
			top = append(top, FlowPath{})
			copy(top[pos+1:], top[pos:])
			top[pos] = fp
			if len(top) > topN {
				top = top[:topN]
			}
			agg.rep.TopPaths = top
		}
	}

	sort.Slice(scopeOrder, func(i, j int) bool { return scopeOrder[i] < scopeOrder[j] })
	for _, id := range scopeOrder {
		agg := scopes[id]
		agg.rep.EndToEnd = hopStat("end-to-end", agg.e2e)
		for _, name := range agg.hopSeen {
			st := hopStat(name, *agg.hops[name])
			agg.rep.Hops = append(agg.rep.Hops, &st)
		}
		if len(agg.rep.TopPaths) > 0 {
			agg.rep.WorstAct = agg.rep.TopPaths[0].Act
			agg.rep.WorstTotal = agg.rep.TopPaths[0].Total
			agg.rep.WorstPath = agg.rep.TopPaths[0].Path
		}
		rep.Scopes = append(rep.Scopes, agg.rep)
	}
	return rep
}

// hopStat sorts the population and extracts the quantiles (type-7 linear
// interpolation, matching internal/stats so cross-checks agree).
func hopStat(name string, lats []int64) HopStat {
	st := HopStat{Name: name, Count: len(lats)}
	if len(lats) == 0 {
		return st
	}
	sorted := append([]int64(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	st.P50 = quantileNS(sorted, 0.50)
	st.P95 = quantileNS(sorted, 0.95)
	st.P99 = quantileNS(sorted, 0.99)
	st.Max = time.Duration(sorted[len(sorted)-1])
	return st
}

func quantileNS(sorted []int64, q float64) time.Duration {
	n := len(sorted)
	h := q * float64(n-1)
	lo := int(h)
	if lo >= n-1 {
		return time.Duration(sorted[n-1])
	}
	frac := h - float64(lo)
	return time.Duration(float64(sorted[lo]) + frac*float64(sorted[lo+1]-sorted[lo]))
}

func (st HopStat) row() string {
	return fmt.Sprintf("n=%-5d p50=%-10v p95=%-10v p99=%-10v max=%v",
		st.Count, st.P50, st.P95, st.P99, st.Max)
}

// Write renders the report as the CLI text output.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "trace report (timebase %s, %d events, %d scopes)\n",
		r.Timebase, r.Events, len(r.Scopes))
	for _, sc := range r.Scopes {
		fmt.Fprintf(w, "\nscope %s: %d flows\n", sc.Scope, sc.Flows)
		fmt.Fprintf(w, "  %-28s %s\n", "end-to-end", sc.EndToEnd.row())
		for _, h := range sc.Hops {
			fmt.Fprintf(w, "  %-28s %s\n", h.Name, h.row())
		}
		for rank, fp := range sc.TopPaths {
			if rank == 0 {
				fmt.Fprintf(w, "  worst activation %d (total %v):\n", fp.Act, fp.Total)
			} else {
				fmt.Fprintf(w, "  #%d worst activation %d (total %v):\n", rank+1, fp.Act, fp.Total)
			}
			for _, p := range fp.Path {
				step := p.Kind.String()
				if p.Label != "" {
					step += " (" + p.Label + ")"
				}
				fmt.Fprintf(w, "    +%-12v %-28s @%s\n", p.Offset, step, p.Track)
			}
		}
	}
	if len(r.Segments) > 0 {
		fmt.Fprintf(w, "\nsegments (from verdict events):\n")
		for _, s := range r.Segments {
			fmt.Fprintf(w, "  %-24s ok=%-5d recovered=%-3d missed=%-4d %s\n",
				s.Name, s.OK, s.Recovered, s.Missed, s.Latency.row())
		}
	}
}
