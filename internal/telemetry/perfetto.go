package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// WritePerfetto writes the flight-recorder contents as Chrome trace-event
// JSON (the "JSON Array Format" with a traceEvents wrapper), loadable in
// Perfetto and chrome://tracing. One thread track per recorder track, all
// under a single "chainmon" process. Output is deterministic: tracks in
// creation order, events in append order, fixed number formatting.
func (s *Sink) WritePerfetto(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	emit(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"chainmon"}}`)
	tracks := s.Rec.Tracks()
	for i, t := range tracks {
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			i+1, jsonString(t.Name())))
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
			i+1, i+1))
	}

	for i, t := range tracks {
		tid := i + 1
		for _, ev := range t.Events() {
			name := ev.Kind.String()
			if ev.Label != 0 {
				name += "/" + s.Rec.LabelName(ev.Label)
			}
			switch ev.Kind {
			case KindExcHandler, KindScan:
				// Arg is the duration; the span ends at TS.
				emit(fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":%s,"args":{"act":%d,"status":%s}}`,
					tid, micros(ev.TS-ev.Arg), micros(ev.Arg), jsonString(name),
					ev.Act, jsonString(spanStatus(ev))))
			case KindTimeoutQueue, KindKernelQueue, KindClockSync:
				emit(fmt.Sprintf(`{"ph":"C","pid":1,"tid":%d,"ts":%s,"name":%s,"args":{"value":%d}}`,
					tid, micros(ev.TS), jsonString(name), ev.Arg))
			case KindRingPostStart, KindRingPostEnd:
				emit(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":%s,"args":{"act":%d,"occupancy":%d}}`,
					tid, micros(ev.TS), jsonString(name), ev.Act, ev.Arg))
				occ := "ring-occupancy"
				if ev.Label != 0 {
					occ += "/" + s.Rec.LabelName(ev.Label)
				}
				emit(fmt.Sprintf(`{"ph":"C","pid":1,"tid":%d,"ts":%s,"name":%s,"args":{"value":%d}}`,
					tid, micros(ev.TS), jsonString(occ), ev.Arg))
			case KindVerdict:
				emit(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":%s,"args":{"act":%d,"status":%s,"latency_ns":%d}}`,
					tid, micros(ev.TS), jsonString(name), ev.Act,
					jsonString(StatusName(ev.Status)), ev.Arg))
			default:
				emit(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":%s,"args":{"act":%d,"arg":%d}}`,
					tid, micros(ev.TS), jsonString(name), ev.Act, ev.Arg))
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

func spanStatus(ev Event) string {
	if ev.Kind == KindScan {
		return ""
	}
	switch ev.Status {
	case OutcomeRecovered:
		return "recovered"
	case OutcomePropagated:
		return "propagated"
	}
	return "unknown"
}

// micros renders nanoseconds as a decimal microsecond literal with fixed
// three fractional digits ("1234.500"), avoiding float formatting entirely
// so traces are byte-identical across runs and platforms.
func micros(ns int64) string {
	neg := ns < 0
	if neg {
		ns = -ns
	}
	s := fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
	if neg {
		return "-" + s
	}
	return s
}

// jsonString quotes s as a JSON string. strconv.Quote is close but emits
// \x escapes for some non-printables, which JSON forbids, so escape by hand.
func jsonString(s string) string {
	buf := make([]byte, 0, len(s)+2)
	buf = append(buf, '"')
	for _, r := range s {
		switch r {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			if r < 0x20 {
				buf = append(buf, []byte(fmt.Sprintf(`\u%04x`, r))...)
			} else {
				buf = append(buf, string(r)...)
			}
		}
	}
	return string(append(buf, '"'))
}

// formatSeconds renders nanoseconds as seconds with enough precision for
// Prometheus consumers, again without float rounding surprises.
func formatSeconds(ns int64) string {
	neg := ns < 0
	if neg {
		ns = -ns
	}
	s := fmt.Sprintf("%d.%09d", ns/1_000_000_000, ns%1_000_000_000)
	// Trim trailing zeros but keep at least one fractional digit.
	i := len(s) - 1
	for i > 0 && s[i] == '0' && s[i-1] != '.' {
		i--
	}
	s = s[:i+1]
	if neg {
		return "-" + s
	}
	return s
}
