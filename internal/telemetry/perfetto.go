package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WritePerfetto writes the flight-recorder contents as Chrome trace-event
// JSON (the "JSON Array Format" with a traceEvents wrapper), loadable in
// Perfetto and chrome://tracing. One thread track per recorder track, all
// under a single "chainmon" process. Events carrying a flow identity are
// additionally stitched with flow events ("ph":"s"/"t"/"f"), so the viewer
// draws arrows following one activation across tracks. Output is
// deterministic: tracks in creation order, events in append order, fixed
// number formatting.
func (s *Sink) WritePerfetto(w io.Writer) error {
	recTracks := s.Rec.Tracks()
	tracks := make([]exportTrack, len(recTracks))
	for i, t := range recTracks {
		tracks[i] = exportTrack{name: t.Name(), events: t.Events()}
	}
	return writePerfetto(w, tracks, s.Rec.LabelName, s.Rec.ScopeName)
}

// exportTrack is the exporter's view of one track: both the live Recorder
// and a parsed on-disk Log reduce to it, so the two sources share one
// writer.
type exportTrack struct {
	name   string
	events []Event
}

// flowRef locates one event of a flow: track index, event index, timestamp.
type flowRef struct {
	track int
	idx   int
	ts    int64
}

// writePerfetto is the shared Chrome trace-event writer.
func writePerfetto(w io.Writer, tracks []exportTrack, labelName func(uint16) string, scopeName func(uint8) string) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	emit(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"chainmon"}}`)
	for i, t := range tracks {
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			i+1, jsonString(t.name)))
		emit(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
			i+1, i+1))
	}

	// Flow pre-pass: collect every flow's hops across all tracks, order
	// them causally (by timestamp, ties broken by track then append order),
	// and assign each hop its flow phase: "s" starts the flow at the first
	// hop, "t" continues it, "f" (with "bp":"e" so the arrow ends *at* the
	// event) terminates it at the last hop. Flows with a single hop get no
	// flow events — there is nothing to stitch.
	flows := map[uint32][]flowRef{}
	for ti, t := range tracks {
		for ei, ev := range t.events {
			if ev.Flow != 0 {
				flows[ev.Flow] = append(flows[ev.Flow], flowRef{track: ti, idx: ei, ts: ev.TS})
			}
		}
	}
	phase := map[[2]int]byte{}
	for _, refs := range flows {
		if len(refs) < 2 {
			continue
		}
		sort.Slice(refs, func(i, j int) bool {
			if refs[i].ts != refs[j].ts {
				return refs[i].ts < refs[j].ts
			}
			if refs[i].track != refs[j].track {
				return refs[i].track < refs[j].track
			}
			return refs[i].idx < refs[j].idx
		})
		for i, ref := range refs {
			ph := byte('t')
			switch i {
			case 0:
				ph = 's'
			case len(refs) - 1:
				ph = 'f'
			}
			phase[[2]int{ref.track, ref.idx}] = ph
		}
	}

	for i, t := range tracks {
		tid := i + 1
		for ei, ev := range t.events {
			name := ev.Kind.String()
			if ev.Label != 0 {
				name += "/" + labelName(ev.Label)
			}
			switch ev.Kind {
			case KindExcHandler, KindScan:
				// Arg is the duration; the span ends at TS.
				emit(fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"name":%s,"args":{"act":%d,"status":%s}}`,
					tid, micros(ev.TS-ev.Arg), micros(ev.Arg), jsonString(name),
					ev.Act, jsonString(spanStatus(ev))))
			case KindTimeoutQueue, KindKernelQueue, KindClockSync:
				emit(fmt.Sprintf(`{"ph":"C","pid":1,"tid":%d,"ts":%s,"name":%s,"args":{"value":%d}}`,
					tid, micros(ev.TS), jsonString(name), ev.Arg))
			case KindRingPostStart, KindRingPostEnd:
				emit(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":%s,"args":{"act":%d,"occupancy":%d}}`,
					tid, micros(ev.TS), jsonString(name), ev.Act, ev.Arg))
				occ := "ring-occupancy"
				if ev.Label != 0 {
					occ += "/" + labelName(ev.Label)
				}
				emit(fmt.Sprintf(`{"ph":"C","pid":1,"tid":%d,"ts":%s,"name":%s,"args":{"value":%d}}`,
					tid, micros(ev.TS), jsonString(occ), ev.Arg))
			case KindVerdict:
				emit(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":%s,"args":{"act":%d,"status":%s,"latency_ns":%d}}`,
					tid, micros(ev.TS), jsonString(name), ev.Act,
					jsonString(StatusName(ev.Status)), ev.Arg))
			default:
				emit(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":%s,"args":{"act":%d,"arg":%d}}`,
					tid, micros(ev.TS), jsonString(name), ev.Act, ev.Arg))
			}
			if ph, ok := phase[[2]int{i, ei}]; ok {
				flowName := "flow/" + scopeName(FlowScopeOf(ev.Flow))
				switch ph {
				case 'f':
					emit(fmt.Sprintf(`{"ph":"f","bp":"e","pid":1,"tid":%d,"ts":%s,"id":%d,"name":%s,"cat":"flow"}`,
						tid, micros(ev.TS), ev.Flow, jsonString(flowName)))
				default:
					emit(fmt.Sprintf(`{"ph":%q,"pid":1,"tid":%d,"ts":%s,"id":%d,"name":%s,"cat":"flow"}`,
						string(ph), tid, micros(ev.TS), ev.Flow, jsonString(flowName)))
				}
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

func spanStatus(ev Event) string {
	if ev.Kind == KindScan {
		return ""
	}
	switch ev.Status {
	case OutcomeRecovered:
		return "recovered"
	case OutcomePropagated:
		return "propagated"
	}
	return "unknown"
}

// micros renders nanoseconds as a decimal microsecond literal with fixed
// three fractional digits ("1234.500"), avoiding float formatting entirely
// so traces are byte-identical across runs and platforms.
func micros(ns int64) string {
	neg := ns < 0
	if neg {
		ns = -ns
	}
	s := fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
	if neg {
		return "-" + s
	}
	return s
}

// jsonString quotes s as a JSON string. strconv.Quote is close but emits
// \x escapes for some non-printables, which JSON forbids, so escape by hand.
func jsonString(s string) string {
	buf := make([]byte, 0, len(s)+2)
	buf = append(buf, '"')
	for _, r := range s {
		switch r {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			if r < 0x20 {
				buf = append(buf, []byte(fmt.Sprintf(`\u%04x`, r))...)
			} else {
				buf = append(buf, string(r)...)
			}
		}
	}
	return string(append(buf, '"'))
}

// formatSeconds renders nanoseconds as seconds with enough precision for
// Prometheus consumers, again without float rounding surprises.
func formatSeconds(ns int64) string {
	neg := ns < 0
	if neg {
		ns = -ns
	}
	s := fmt.Sprintf("%d.%09d", ns/1_000_000_000, ns%1_000_000_000)
	// Trim trailing zeros but keep at least one fractional digit.
	i := len(s) - 1
	for i > 0 && s[i] == '0' && s[i-1] != '.' {
		i--
	}
	s = s[:i+1]
	if neg {
		return "-" + s
	}
	return s
}
