package telemetry

import (
	"bufio"
	"encoding/csv"
	"io"
	"strconv"
)

// WriteEventsCSV writes every retained flight-recorder event as CSV with the
// header track,ts_ns,kind,act,arg,status,label,flow — the raw form of the
// Perfetto trace, for offline analysis with ordinary tooling. Rows appear in
// track creation order, events oldest-first within a track. The flow column
// is "scope:act" for flow-carrying events and empty otherwise.
func (s *Sink) WriteEventsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"track", "ts_ns", "kind", "act", "arg", "status", "label", "flow"}); err != nil {
		return err
	}
	for _, t := range s.Rec.Tracks() {
		for _, ev := range t.Events() {
			flow := ""
			if ev.Flow != 0 {
				flow = s.Rec.ScopeName(FlowScopeOf(ev.Flow)) + ":" +
					strconv.FormatUint(FlowAct(ev.Flow), 10)
			}
			rec := []string{
				t.Name(),
				strconv.FormatInt(ev.TS, 10),
				ev.Kind.String(),
				strconv.FormatUint(ev.Act, 10),
				strconv.FormatInt(ev.Arg, 10),
				strconv.Itoa(int(ev.Status)),
				s.Rec.LabelName(ev.Label),
				flow,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}
