package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// WriteMetrics writes the registry in the Prometheus text exposition format
// (version 0.0.4). Families are sorted by name and rows by label string, so
// the dump is byte-identical for identical runs. Histogram buckets and sums
// are rendered in seconds, as Prometheus convention expects.
func (s *Sink) WriteMetrics(w io.Writer) error {
	s.runExportHooks()
	s.syncRecorderMetrics()
	bw := bufio.NewWriter(w)
	r := s.Reg
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		r.mu.Lock()
		f := r.fams[name]
		keys := append([]string(nil), f.order...)
		r.mu.Unlock()
		sort.Strings(keys)

		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, key := range keys {
			r.mu.Lock()
			m := f.rows[key]
			r.mu.Unlock()
			switch v := m.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, key, strconv.FormatUint(v.Value(), 10))
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, key, strconv.FormatInt(v.Value(), 10))
			case *Histogram:
				var cum uint64
				for i, b := range v.bounds {
					cum += v.counts[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %s\n", f.name,
						mergeLabel(key, "le", formatSeconds(b)),
						strconv.FormatUint(cum, 10))
				}
				cum += v.counts[len(v.bounds)].Load()
				fmt.Fprintf(bw, "%s_bucket%s %s\n", f.name,
					mergeLabel(key, "le", "+Inf"), strconv.FormatUint(cum, 10))
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, key, formatSeconds(v.Sum()))
				fmt.Fprintf(bw, "%s_count%s %s\n", f.name, key,
					strconv.FormatUint(v.Count(), 10))
			}
		}
	}
	return bw.Flush()
}

// syncRecorderMetrics mirrors the flight recorder's per-track drop-oldest
// counters into the registry before every export, so silent event loss
// during long runs is visible on /metrics alongside the streaming sink's
// chainmon_stream_* counters. Reading a track's counter is an atomic load,
// safe while producers are still appending.
func (s *Sink) syncRecorderMetrics() {
	if s.Rec == nil {
		return
	}
	for _, t := range s.Rec.Tracks() {
		s.Reg.Gauge("chainmon_flight_recorder_dropped_events",
			"Events overwritten (dropped-oldest) in a flight-recorder track ring.",
			Label{Name: "track", Value: t.Name()}).Set(int64(t.Dropped()))
	}
}

// mergeLabel inserts an extra label into an existing "{a=...}" label string
// (or creates one when the row has no labels).
func mergeLabel(key, name, value string) string {
	extra := fmt.Sprintf("%s=%q", name, value)
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}

// Handler returns an http.Handler serving the registry in the text
// exposition format, for the -metrics-addr flag.
func (s *Sink) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteMetrics(w)
	})
}
