package telemetry

import (
	"bufio"
	"encoding/binary"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// On-disk event-log format (see docs/telemetry.md):
//
//	[8]byte magic "CHMTRC01"
//	records: u32 payload length (little endian), u8 record type, payload
//
// Record types:
//
//	0x01 track def: u16 track id, name bytes
//	0x02 label def: u16 label id, name bytes
//	0x03 event:     u16 track, i64 ts, u64 act, i64 arg, u32 flow,
//	                u16 label, u8 kind, u8 status  (34 bytes)
//	0x04 meta:      "key=value" bytes
//	0x05 scope def: u8 scope id, name bytes
//
// Definitions always precede the first event that references them, so the
// log is readable as a forward-only stream.
const streamMagic = "CHMTRC01"

const (
	recTrackDef byte = 0x01
	recLabelDef byte = 0x02
	recEvent    byte = 0x03
	recMeta     byte = 0x04
	recScopeDef byte = 0x05
)

const eventPayloadLen = 34

// StreamOptions configures a StreamWriter.
type StreamOptions struct {
	// Background selects the concurrent writer: producers push events into
	// per-track wait-free staging rings and a drainer goroutine encodes and
	// flushes them. Required whenever tracks are appended from more than
	// one goroutine (the wall-clock runtime). The default (false) encodes
	// inline in Append — deterministic and byte-identical across same-seed
	// runs, for the single-goroutine simulation.
	Background bool
	// RingCap is the per-track staging-ring capacity of a background
	// writer, rounded up to a power of two (default 8192). When a ring is
	// full the newest event is dropped from the stream (never from the
	// in-memory flight recorder) and counted.
	RingCap int
	// FlushEvery is the background drain/flush period (default 100ms).
	FlushEvery time.Duration
	// Metrics, when non-nil, receives the writer's drop/flush/volume
	// counters (chainmon_stream_*).
	Metrics *Registry
	// RotateBytes, when > 0 and the writer owns its files (NewStreamFile),
	// rotates to a fresh gzip-compressed segment — path.0.gz, path.1.gz, … —
	// whenever the current segment's uncompressed encoded size crosses the
	// threshold. Every segment is independently readable: it restates the
	// magic, the timebase meta record and all track/label/scope definitions
	// seen so far, so a reader can start at any segment. Ignored by
	// NewStreamWriter (the caller owns the io.Writer there).
	RotateBytes int64
}

// defRecord is one retained definition record (track/label/scope), replayed
// at the start of every rotated segment so each segment is self-describing.
type defRecord struct {
	typ     byte
	payload []byte
}

// StreamWriter tees flight-recorder appends to an append-only binary event
// log, so multi-hour wall-clock runs keep bounded memory: the in-memory
// rings stay the fixed-size newest-window view while the log retains
// everything (minus explicitly counted drops). Attach with
// Recorder.SetStream before creating tracks; read back with ReadLog.
type StreamWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	err     error
	closed  bool
	scratch [eventPayloadLen + 5]byte

	background bool
	ringCap    int
	flushEvery time.Duration
	tracks     []*Track // background drain order = creation order
	stop       chan struct{}
	done       chan struct{}

	// observer sees every event record exactly as it reaches the log, in
	// log order (direct mode: append order; background mode: drain order).
	// It runs under sw.mu, so it must never call back into the Recorder or
	// append to a track. An offline replay of the written log through the
	// same observer sees an identical event sequence — that is the contract
	// the blame engine's online/offline byte-identity rests on.
	observer func(track uint16, ev Event)

	events  uint64 // guarded by mu
	bytes   uint64
	flushes atomic.Uint64

	eventsC  *Counter
	bytesC   *Counter
	flushesC *Counter
	reg      *Registry

	// File-owning rotation state (NewStreamFile; nil/zero otherwise).
	timebase    string
	out         *segmentedFile
	rotateBytes int64
	segBytes    uint64 // uncompressed bytes in the current segment
	rotating    bool   // guards against re-entrant rotation while replaying defs
	defs        []defRecord
	rotations   uint64
	rotationsC  *Counter
}

// NewStreamWriter creates a writer on w and writes the log header. timebase
// names the timestamp domain of the events ("sim" or "wall") and is recorded
// as log metadata.
func NewStreamWriter(w io.Writer, timebase string, opts StreamOptions) (*StreamWriter, error) {
	sw := newStreamWriterCore(w, timebase, opts)
	sw.writeHeaderLocked()
	if sw.err != nil {
		return nil, sw.err
	}
	sw.start()
	return sw, nil
}

// newStreamWriterCore builds a writer on w without writing the header or
// starting the background drainer, so NewStreamWriter and NewStreamFile
// share construction.
func newStreamWriterCore(w io.Writer, timebase string, opts StreamOptions) *StreamWriter {
	sw := &StreamWriter{
		bw:         bufio.NewWriterSize(w, 1<<16),
		background: opts.Background,
		ringCap:    opts.RingCap,
		flushEvery: opts.FlushEvery,
		reg:        opts.Metrics,
		timebase:   timebase,
	}
	if sw.ringCap <= 0 {
		sw.ringCap = 8192
	}
	if sw.flushEvery <= 0 {
		sw.flushEvery = 100 * time.Millisecond
	}
	if sw.reg != nil {
		sw.eventsC = sw.reg.Counter("chainmon_stream_events_total",
			"Events written to the streaming trace sink.")
		sw.bytesC = sw.reg.Counter("chainmon_stream_bytes_total",
			"Bytes written to the streaming trace sink.")
		sw.flushesC = sw.reg.Counter("chainmon_stream_flushes_total",
			"Buffered-writer flushes of the streaming trace sink.")
	}
	return sw
}

// writeHeaderLocked writes the magic and the timebase meta record; at
// construction no lock is needed, after a rotation the caller holds sw.mu.
func (sw *StreamWriter) writeHeaderLocked() {
	if _, err := sw.bw.WriteString(streamMagic); err != nil {
		sw.err = err
		return
	}
	sw.bytes += uint64(len(streamMagic))
	sw.segBytes += uint64(len(streamMagic))
	sw.writeRecordLocked(recMeta, []byte("timebase="+sw.timebase))
}

// start launches the background drainer when configured.
func (sw *StreamWriter) start() {
	if sw.background {
		sw.stop = make(chan struct{})
		sw.done = make(chan struct{})
		go sw.drainLoop()
	}
}

// register is called by Recorder.Track at track creation (the caller holds
// the recorder mutex; lock order is always recorder → stream).
func (sw *StreamWriter) register(t *Track) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	payload := make([]byte, 2+len(t.name))
	binary.LittleEndian.PutUint16(payload, t.id)
	copy(payload[2:], t.name)
	sw.retainDefLocked(recTrackDef, payload)
	sw.writeRecordLocked(recTrackDef, payload)
	if sw.background {
		t.ring = newStreamRing(sw.ringCap)
		if sw.reg != nil {
			t.ring.dropC = sw.reg.Counter("chainmon_stream_dropped_total",
				"Events dropped from the streaming trace sink because a staging ring was full.",
				Label{Name: "track", Value: t.name})
		}
		sw.tracks = append(sw.tracks, t)
	}
}

// defineLabel is called by Recorder.Intern under the recorder mutex.
func (sw *StreamWriter) defineLabel(id uint16, name string) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	payload := make([]byte, 2+len(name))
	binary.LittleEndian.PutUint16(payload, id)
	copy(payload[2:], name)
	sw.retainDefLocked(recLabelDef, payload)
	sw.writeRecordLocked(recLabelDef, payload)
}

// defineScope is called by the recorder's flow-scope intern under the
// recorder mutex.
func (sw *StreamWriter) defineScope(id uint8, name string) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	payload := make([]byte, 1+len(name))
	payload[0] = id
	copy(payload[1:], name)
	sw.retainDefLocked(recScopeDef, payload)
	sw.writeRecordLocked(recScopeDef, payload)
}

// tee is the Append hook: inline encode in direct mode, staging-ring push
// in background mode (wait-free; a full ring drops the event and counts it).
func (sw *StreamWriter) tee(t *Track, ev Event) {
	if t.ring != nil {
		if !t.ring.push(ev) {
			t.ring.drops.Add(1)
			if t.ring.dropC != nil {
				t.ring.dropC.Inc()
			}
		}
		return
	}
	sw.mu.Lock()
	sw.writeEventLocked(t.id, ev)
	sw.mu.Unlock()
}

// writeEventLocked encodes one event record; callers hold sw.mu.
func (sw *StreamWriter) writeEventLocked(track uint16, ev Event) {
	if sw.err != nil || sw.closed {
		return
	}
	b := sw.scratch[:]
	binary.LittleEndian.PutUint32(b[0:4], eventPayloadLen)
	b[4] = recEvent
	binary.LittleEndian.PutUint16(b[5:7], track)
	binary.LittleEndian.PutUint64(b[7:15], uint64(ev.TS))
	binary.LittleEndian.PutUint64(b[15:23], ev.Act)
	binary.LittleEndian.PutUint64(b[23:31], uint64(ev.Arg))
	binary.LittleEndian.PutUint32(b[31:35], ev.Flow)
	binary.LittleEndian.PutUint16(b[35:37], ev.Label)
	b[37] = byte(ev.Kind)
	b[38] = ev.Status
	if _, err := sw.bw.Write(b); err != nil {
		sw.err = err
		return
	}
	sw.events++
	sw.bytes += uint64(len(b))
	sw.segBytes += uint64(len(b))
	if sw.eventsC != nil {
		sw.eventsC.Inc()
		sw.bytesC.Add(uint64(len(b)))
	}
	if sw.observer != nil {
		sw.observer(track, ev)
	}
	sw.maybeRotateLocked()
}

// SetObserver installs a callback invoked for every event record written to
// the log, with exactly the records and ordering the log gets (events dropped
// from a full staging ring are invisible to both). Install before the run
// starts. The callback runs under the writer lock: it must be fast and must
// not call back into the Recorder or the writer.
func (sw *StreamWriter) SetObserver(fn func(track uint16, ev Event)) {
	sw.mu.Lock()
	sw.observer = fn
	sw.mu.Unlock()
}

// writeRecordLocked encodes one non-event record; callers hold sw.mu.
func (sw *StreamWriter) writeRecordLocked(typ byte, payload []byte) {
	if sw.err != nil || sw.closed {
		return
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := sw.bw.Write(hdr[:]); err != nil {
		sw.err = err
		return
	}
	if _, err := sw.bw.Write(payload); err != nil {
		sw.err = err
		return
	}
	sw.bytes += uint64(len(hdr) + len(payload))
	sw.segBytes += uint64(len(hdr) + len(payload))
	if sw.bytesC != nil {
		sw.bytesC.Add(uint64(len(hdr) + len(payload)))
	}
	sw.maybeRotateLocked()
}

// retainDefLocked remembers a definition record for replay at segment
// starts; a no-op unless the writer rotates.
func (sw *StreamWriter) retainDefLocked(typ byte, payload []byte) {
	if sw.rotateBytes > 0 {
		sw.defs = append(sw.defs, defRecord{typ: typ, payload: payload})
	}
}

// drainLoop is the background drainer: every FlushEvery it empties all
// staging rings in track-creation order and flushes the buffered writer.
func (sw *StreamWriter) drainLoop() {
	tick := time.NewTicker(sw.flushEvery)
	defer tick.Stop()
	for {
		select {
		case <-sw.stop:
			sw.drainOnce()
			sw.flushOnce()
			close(sw.done)
			return
		case <-tick.C:
			sw.drainOnce()
			sw.flushOnce()
		}
	}
}

func (sw *StreamWriter) drainOnce() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for _, t := range sw.tracks {
		for {
			ev, ok := t.ring.pop()
			if !ok {
				break
			}
			sw.writeEventLocked(t.id, ev)
		}
	}
}

func (sw *StreamWriter) flushOnce() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.closed {
		return
	}
	if err := sw.bw.Flush(); err != nil && sw.err == nil {
		sw.err = err
	}
	if sw.out != nil {
		if err := sw.out.flush(); err != nil && sw.err == nil {
			sw.err = err
		}
	}
	sw.flushes.Add(1)
	if sw.flushesC != nil {
		sw.flushesC.Inc()
	}
}

// Close drains any staged events (background mode), flushes the buffered
// writer, closes any owned files (NewStreamFile) and returns the first write
// error. Producers must have quiesced: events appended concurrently with
// Close may miss the final drain.
func (sw *StreamWriter) Close() error {
	if sw.background {
		close(sw.stop)
		<-sw.done
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if !sw.closed {
		if err := sw.bw.Flush(); err != nil && sw.err == nil {
			sw.err = err
		}
		if sw.out != nil {
			if err := sw.out.closeSegment(); err != nil && sw.err == nil {
				sw.err = err
			}
		}
		sw.flushes.Add(1)
		if sw.flushesC != nil {
			sw.flushesC.Inc()
		}
		sw.closed = true
	}
	return sw.err
}

// EventsWritten returns how many event records reached the log.
func (sw *StreamWriter) EventsWritten() uint64 {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.events
}

// BytesWritten returns the encoded log size so far (excluding data still in
// the bufio buffer only in the sense of flushing; counting is at encode
// time).
func (sw *StreamWriter) BytesWritten() uint64 {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.bytes
}

// Flushes returns how many times the buffered writer was flushed.
func (sw *StreamWriter) Flushes() uint64 { return sw.flushes.Load() }

// Rotations returns how many times the writer rotated to a new segment
// (always 0 without NewStreamFile + RotateBytes).
func (sw *StreamWriter) Rotations() uint64 {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.rotations
}

// Dropped returns how many events were dropped because a staging ring was
// full (always 0 in direct mode).
func (sw *StreamWriter) Dropped() uint64 {
	sw.mu.Lock()
	tracks := sw.tracks
	sw.mu.Unlock()
	var total uint64
	for _, t := range tracks {
		total += t.ring.drops.Load()
	}
	return total
}

// streamRing is the wait-free single-producer/single-consumer staging ring
// between a track's owning goroutine and the background drainer, using the
// usual sequence-slot scheme: slot i's seq is pos before the write and
// pos+1 after, so producer and consumer synchronize on the slot itself.
type streamRing struct {
	mask  uint64
	slots []streamSlot
	head  atomic.Uint64 // consumer position
	tail  atomic.Uint64 // producer position
	drops atomic.Uint64
	dropC *Counter
}

type streamSlot struct {
	seq atomic.Uint64
	ev  Event
}

func newStreamRing(capacity int) *streamRing {
	c := 1
	for c < capacity {
		c <<= 1
	}
	r := &streamRing{mask: uint64(c - 1), slots: make([]streamSlot, c)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push stores the event; it returns false (drop-newest) when the ring is
// full. Single producer.
func (r *streamRing) push(ev Event) bool {
	pos := r.tail.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos {
		return false // consumer has not freed this slot yet
	}
	slot.ev = ev
	slot.seq.Store(pos + 1)
	r.tail.Store(pos + 1)
	return true
}

// pop removes the oldest event. Single consumer.
func (r *streamRing) pop() (Event, bool) {
	pos := r.head.Load()
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos+1 {
		return Event{}, false
	}
	ev := slot.ev
	slot.seq.Store(pos + uint64(len(r.slots)))
	r.head.Store(pos + 1)
	return ev, true
}
