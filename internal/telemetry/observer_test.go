package telemetry

import (
	"bytes"
	"testing"
)

// TestRecorderObserverOrder pins the recorder-side observer contract: the
// observer sees every append, tagged with its track id, in the appending
// goroutine's program order.
func TestRecorderObserverOrder(t *testing.T) {
	r := NewRecorder(16)
	type seen struct {
		track uint16
		ev    Event
	}
	var got []seen
	r.SetObserver(func(track uint16, ev Event) { got = append(got, seen{track, ev}) })
	a := r.Track("a")
	b := r.Track("b")
	a.Append(Event{TS: 1, Act: 1, Kind: KindDDSSend})
	b.Append(Event{TS: 2, Act: 1, Kind: KindNetSend})
	a.Append(Event{TS: 3, Act: 2, Kind: KindDDSSend})

	if len(got) != 3 {
		t.Fatalf("observer saw %d events, want 3", len(got))
	}
	wantTracks := []uint16{a.ID(), b.ID(), a.ID()}
	wantTS := []int64{1, 2, 3}
	for i, s := range got {
		if s.track != wantTracks[i] || s.ev.TS != wantTS[i] {
			t.Errorf("event %d: track=%d ts=%d, want track=%d ts=%d",
				i, s.track, s.ev.TS, wantTracks[i], wantTS[i])
		}
	}
}

// TestRecorderObserverAfterTracksPanics pins the installation rule: the
// observer must be wired before the first track exists, so no append can
// slip past it.
func TestRecorderObserverAfterTracksPanics(t *testing.T) {
	r := NewRecorder(16)
	r.Track("a")
	defer func() {
		if recover() == nil {
			t.Error("SetObserver after track creation must panic")
		}
	}()
	r.SetObserver(func(uint16, Event) {})
}

// TestStreamObserverMatchesReplay pins the stream-side observer contract the
// blame engine's byte-identity rests on: the observer sees exactly the
// events, in exactly the order, that a replay of the written log yields.
func TestStreamObserverMatchesReplay(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, "sim", StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	type seen struct {
		track uint16
		ev    Event
	}
	var online []seen
	sw.SetObserver(func(track uint16, ev Event) { online = append(online, seen{track, ev}) })
	r := NewRecorder(16)
	r.SetStream(sw)
	a := r.Track("a")
	b := r.Track("b")
	for i := 0; i < 5; i++ {
		a.Append(Event{TS: int64(10 * i), Act: uint64(i), Kind: KindRingPostStart})
		b.Append(Event{TS: int64(10*i + 1), Act: uint64(i), Kind: KindVerdict})
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	l, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var replayed []seen
	l.Replay(func(track uint16, ev Event) { replayed = append(replayed, seen{track, ev}) })

	if len(online) != len(replayed) {
		t.Fatalf("observer saw %d events, replay yields %d", len(online), len(replayed))
	}
	for i := range online {
		if online[i] != replayed[i] {
			t.Errorf("event %d: observer %+v, replay %+v", i, online[i], replayed[i])
		}
	}
}

// TestAppendDetachedNoAlloc is the disabled-path cost gate: with no stream
// and no observer attached, Track.Append must stay allocation-free — the
// blame hooks' entire detached footprint is one nil check.
func TestAppendDetachedNoAlloc(t *testing.T) {
	r := NewRecorder(1 << 10)
	tr := r.Track("hot")
	ev := Event{TS: 1, Act: 1, Kind: KindRingPostStart}
	if avg := testing.AllocsPerRun(1000, func() { tr.Append(ev) }); avg != 0 {
		t.Errorf("detached Append allocates %v allocs/op, want 0", avg)
	}
}
