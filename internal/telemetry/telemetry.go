// Package telemetry is the monitor's own observability layer: a bounded
// flight recorder for typed trace events, a metrics registry of counters,
// gauges and fixed-bucket latency histograms, and exporters for the Chrome
// trace-event JSON format (loadable in Perfetto), the Prometheus text
// exposition format, and CSV.
//
// The package deliberately imports no other internal package: timestamps
// are plain int64 nanoseconds (virtual time for the simulation, monotonic
// wall time for internal/shmring), so every runtime package — including
// internal/sim itself — can emit into it without import cycles.
//
// Instrumented objects hold a nil pointer to a small pre-resolved probe
// struct by default; the uninstrumented hot path therefore costs exactly
// one pointer check. Tracks are single-writer: one per goroutine (per ECU
// thread in the simulation), appended wait-free with drop-oldest semantics
// and a dropped-event counter, so a run can never be slowed down or grown
// unboundedly by its own instrumentation.
package telemetry

import "sync"

// Kind is the type tag of a trace event.
type Kind uint8

// Event kinds. The comments state how Arg/Act/Status/Label are used.
const (
	// KindRingPostStart: a start event was posted into a segment's ring.
	// Act = activation, Arg = ring occupancy after the post, Label = segment.
	KindRingPostStart Kind = iota + 1
	// KindRingPostEnd: an end event was posted. Fields as KindRingPostStart.
	KindRingPostEnd
	// KindRingDrop: a posting was dropped because the ring was full.
	// Act = activation, Label = segment.
	KindRingDrop
	// KindScan: one monitor-thread drain pass completed. Arg = pass
	// duration in ns (the pass spans [TS-Arg, TS]).
	KindScan
	// KindTimeoutArm: a timeout was armed for an activation.
	// Act = activation, Arg = absolute deadline in ns, Label = segment.
	KindTimeoutArm
	// KindTimeoutFire: an armed timeout expired without an end event.
	// Act = activation, Label = segment.
	KindTimeoutFire
	// KindTimeoutQueue: timeout-queue depth sample. Arg = queue depth.
	KindTimeoutQueue
	// KindTimerProgram: a remote monitor programmed its deadline timer,
	// t = t_st,n + (i+1)·P + d_mon. Act = expected activation,
	// Arg = local-clock deadline in ns, Label = segment.
	KindTimerProgram
	// KindVerdict: a segment activation resolved. Act = activation,
	// Status = StatusOK/StatusRecovered/StatusMissed, Arg = latency in ns
	// (0 when unknown), Label = segment.
	KindVerdict
	// KindExcHandler: a temporal-exception handler ran. The span is
	// [TS-Arg, TS] (Arg = handler duration in ns), Act = activation,
	// Status = OutcomeRecovered/OutcomePropagated, Label = segment.
	KindExcHandler
	// KindDDSSend: a sample was published. Act = activation,
	// Arg = size in bytes, Label = topic.
	KindDDSSend
	// KindDDSRecv: a sample was delivered to a subscription.
	// Act = activation, Arg = publication→delivery latency in ns,
	// Label = topic.
	KindDDSRecv
	// KindNetDrop: a link lost a message. Arg = size, Label = link.
	KindNetDrop
	// KindNetHold: a reordering fault held a message back past the FIFO
	// order. Arg = hold delay in ns, Label = link.
	KindNetHold
	// KindNetDup: a duplication fault delivered a second copy.
	// Arg = extra delay in ns, Label = link.
	KindNetDup
	// KindClockSync: a clock's PTP random walk stepped. Arg = new
	// local-minus-global offset in ns, Label = clock.
	KindClockSync
	// KindKernelQueue: sim-kernel event-queue sample. Arg = pending
	// events, Act = heap operations so far.
	KindKernelQueue
	// KindModeChange: the supervisor changed the system mode.
	// Arg = old mode, Status = new mode, Label = triggering chain.
	KindModeChange
	// KindNetSend: a link accepted a message for delivery. Act = activation,
	// Arg = scheduled response time in ns (send → delivery), Label = link.
	KindNetSend
	// KindPubSkip: the monitor's skip-next-publication veto suppressed a
	// late publication (Algorithm 2 propagation). Act = activation,
	// Arg = size in bytes, Label = topic.
	KindPubSkip
	// KindBudgetSwap: the adaptive budget controller staged a new deadline
	// table version (one event per retimed segment). Act = table epoch,
	// Arg = new monitored deadline in ns, Label = segment.
	KindBudgetSwap
	// KindBlameExemplar: the blame engine admitted an activation into its
	// worst-exemplar store. Act = activation, Arg = end-to-end latency in
	// ns, Label = the primary blamed segment, Status = worst verdict.
	// Flow is deliberately 0 so exemplar records never join the causal
	// flows they describe.
	KindBlameExemplar

	kindCount
)

var kindNames = [kindCount]string{
	KindRingPostStart: "ring-post-start",
	KindRingPostEnd:   "ring-post-end",
	KindRingDrop:      "ring-drop",
	KindScan:          "scan",
	KindTimeoutArm:    "timeout-arm",
	KindTimeoutFire:   "timeout-fire",
	KindTimeoutQueue:  "timeout-queue",
	KindTimerProgram:  "timer-program",
	KindVerdict:       "verdict",
	KindExcHandler:    "exc-handler",
	KindDDSSend:       "dds-send",
	KindDDSRecv:       "dds-recv",
	KindNetDrop:       "net-drop",
	KindNetHold:       "net-hold",
	KindNetDup:        "net-dup",
	KindClockSync:     "clock-sync",
	KindKernelQueue:   "kernel-queue",
	KindModeChange:    "mode-change",
	KindNetSend:       "net-send",
	KindPubSkip:       "pub-skip",
	KindBudgetSwap:    "budget-swap",
	KindBlameExemplar: "blame-exemplar",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Verdict status codes carried in Event.Status for KindVerdict. The values
// match monitor.Status so conversion is a plain cast.
const (
	StatusOK        uint8 = 0
	StatusRecovered uint8 = 1
	StatusMissed    uint8 = 2
)

// StatusName renders a verdict status code.
func StatusName(s uint8) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRecovered:
		return "recovered"
	case StatusMissed:
		return "missed"
	}
	return "unknown"
}

// Exception handler outcomes carried in Event.Status for KindExcHandler.
const (
	OutcomeRecovered  uint8 = 1
	OutcomePropagated uint8 = 2
)

// Event is one flight-recorder record. It is a fixed-size value (32 bytes)
// so a track ring is a flat array with no per-event allocation.
type Event struct {
	// TS is the event timestamp in nanoseconds: virtual time for the
	// simulation, monotonic wall time for shmring.
	TS int64
	// Act is the activation index the event belongs to (0 when N/A).
	Act uint64
	// Arg is the kind-specific payload (see the Kind constants).
	Arg int64
	// Flow is the causal-flow identity of the event (0 = not part of a
	// flow). FlowID packs a flow scope and the activation index, so every
	// hop of one activation — publication, link transmission, delivery,
	// ring post, verdict — shares one id across tracks. The Perfetto
	// exporter stitches equal ids into flow arrows.
	Flow uint32
	// Label is an interned string id resolved via Recorder.LabelName
	// (0 = none).
	Label uint16
	// Kind tags the event type.
	Kind Kind
	// Status is the kind-specific status code.
	Status uint8
}

// Sink bundles the flight recorder and the metrics registry that an
// instrumented system emits into. A nil *Sink disables all instrumentation;
// every Attach function in the runtime packages treats nil as "stay dark".
type Sink struct {
	Rec *Recorder
	Reg *Registry

	hookMu sync.Mutex
	hooks  []func()
}

// AddExportHook registers fn to run at the start of every metrics export
// (WriteMetrics — which serves both the live /metrics scrape and the
// end-of-run -metrics-out snapshot). Components whose state is not already
// registry-backed (e.g. a livestats.Set republishing its gauges) hook in
// here, so every export surface sees the same values. Hooks must be safe
// to call concurrently with the instrumented system.
func (s *Sink) AddExportHook(fn func()) {
	s.hookMu.Lock()
	s.hooks = append(s.hooks, fn)
	s.hookMu.Unlock()
}

// runExportHooks invokes the registered hooks outside the hook lock, so a
// hook may itself touch the sink.
func (s *Sink) runExportHooks() {
	s.hookMu.Lock()
	hooks := append([]func(){}, s.hooks...)
	s.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// NewSink creates a sink whose tracks hold trackCap events each (rounded up
// to a power of two; 0 selects the default of 64Ki events per track).
func NewSink(trackCap int) *Sink {
	return &Sink{Rec: NewRecorder(trackCap), Reg: NewRegistry()}
}

// FlowID packs a flow scope and an activation index into the 32-bit flow
// identity carried by Event.Flow. The activation index is consistent across
// all segments and topics of a chain, so one (scope, act) pair names one
// end-to-end activation; the scope separates chains that reuse activation
// numbering. The low 24 bits wrap after ~16M activations per scope — far
// beyond any retained ring window.
func FlowID(scope uint8, act uint64) uint32 {
	return uint32(scope)<<24 | uint32(act&0xffffff)
}

// FlowScopeOf extracts the scope id of a flow identity.
func FlowScopeOf(flow uint32) uint8 { return uint8(flow >> 24) }

// FlowAct extracts the (truncated) activation index of a flow identity.
func FlowAct(flow uint32) uint64 { return uint64(flow & 0xffffff) }
