package telemetry

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// Log is a fully parsed on-disk event log — the offline twin of a Recorder:
// the same tracks, label table and flow scopes, reconstructed from the
// stream a StreamWriter produced. Unlike the in-memory rings it holds every
// streamed event, not just the newest window.
type Log struct {
	// Timebase is the timestamp domain recorded in the log metadata
	// ("sim" or "wall"; empty in logs without the meta record).
	Timebase string

	labels []string
	scopes []string
	tracks []*LogTrack
	byID   map[uint16]*LogTrack
	// order records the global file order of events across tracks — each
	// entry points at one event of one track — so Replay can re-feed a
	// consumer with exactly the sequence the online stream observer saw.
	order []logEvRef
}

// logEvRef locates one event in its track's Events slice.
type logEvRef struct {
	track uint16
	idx   uint32
}

// LogTrack is one track of a parsed log.
type LogTrack struct {
	ID     uint16
	Name   string
	Events []Event
}

// maxStreamRecordLen bounds a single record so a corrupt length prefix
// cannot ask for gigabytes.
const maxStreamRecordLen = 1 << 20

// newLog allocates an empty Log ready to absorb one or more streams.
func newLog() *Log {
	return &Log{
		labels: []string{""},
		scopes: []string{""},
		byID:   map[uint16]*LogTrack{},
	}
}

// ReadLog parses an event log written by a StreamWriter. It tolerates a
// truncated final record (a run killed mid-flush) but rejects structural
// corruption. For on-disk logs that may be gzip-compressed or rotated into
// segments, use OpenLogSet instead.
func ReadLog(r io.Reader) (*Log, error) {
	l := newLog()
	if err := l.readFrom(r); err != nil {
		return nil, err
	}
	return l, nil
}

// readFrom absorbs one CHMTRC01 stream into the log. Re-definitions with
// identical content — the per-segment def replay of a rotated log — merge
// silently; a track id re-defined under a different name is corruption.
func (l *Log) readFrom(r io.Reader) error {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("telemetry: reading log magic: %w", err)
	}
	if string(magic) != streamMagic {
		return fmt.Errorf("telemetry: not a chainmon event log (magic %q)", magic)
	}
	var hdr [5]byte
	payload := make([]byte, 0, 256)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // end of stream or truncated trailing record
			}
			return err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		typ := hdr[4]
		if n > maxStreamRecordLen {
			return fmt.Errorf("telemetry: corrupt log: record length %d", n)
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // truncated trailing record
			}
			return err
		}
		switch typ {
		case recTrackDef:
			if len(payload) < 2 {
				return fmt.Errorf("telemetry: corrupt track def")
			}
			id := binary.LittleEndian.Uint16(payload)
			name := string(payload[2:])
			if existing, ok := l.byID[id]; ok {
				if existing.Name != name {
					return fmt.Errorf("telemetry: track %d redefined as %q (was %q)", id, name, existing.Name)
				}
				break // def replay of a rotated segment
			}
			t := &LogTrack{ID: id, Name: name}
			l.tracks = append(l.tracks, t)
			l.byID[id] = t
		case recLabelDef:
			if len(payload) < 2 {
				return fmt.Errorf("telemetry: corrupt label def")
			}
			id := binary.LittleEndian.Uint16(payload)
			for len(l.labels) <= int(id) {
				l.labels = append(l.labels, "")
			}
			l.labels[id] = string(payload[2:])
		case recScopeDef:
			if len(payload) < 1 {
				return fmt.Errorf("telemetry: corrupt scope def")
			}
			id := payload[0]
			for len(l.scopes) <= int(id) {
				l.scopes = append(l.scopes, "")
			}
			l.scopes[id] = string(payload[1:])
		case recEvent:
			if len(payload) != eventPayloadLen {
				return fmt.Errorf("telemetry: corrupt event record (%d bytes)", len(payload))
			}
			trackID := binary.LittleEndian.Uint16(payload[0:2])
			t, ok := l.byID[trackID]
			if !ok {
				return fmt.Errorf("telemetry: event references undefined track %d", trackID)
			}
			l.order = append(l.order, logEvRef{track: trackID, idx: uint32(len(t.Events))})
			t.Events = append(t.Events, Event{
				TS:     int64(binary.LittleEndian.Uint64(payload[2:10])),
				Act:    binary.LittleEndian.Uint64(payload[10:18]),
				Arg:    int64(binary.LittleEndian.Uint64(payload[18:26])),
				Flow:   binary.LittleEndian.Uint32(payload[26:30]),
				Label:  binary.LittleEndian.Uint16(payload[30:32]),
				Kind:   Kind(payload[32]),
				Status: payload[33],
			})
		case recMeta:
			if kv := string(payload); strings.HasPrefix(kv, "timebase=") {
				l.Timebase = strings.TrimPrefix(kv, "timebase=")
			}
		default:
			return fmt.Errorf("telemetry: unknown record type 0x%02x", typ)
		}
	}
}

// Tracks returns the log's tracks in definition (creation) order.
func (l *Log) Tracks() []*LogTrack { return l.tracks }

// Replay invokes fn for every event in global file order — the exact order
// the StreamWriter encoded them, which is the order its online observer saw.
// Rotated log sets concatenate segments in rotation order, so the property
// holds across rotation too.
func (l *Log) Replay(fn func(track uint16, ev Event)) {
	for _, ref := range l.order {
		fn(ref.track, l.byID[ref.track].Events[ref.idx])
	}
}

// TrackName resolves a track id to its name ("" when undefined).
func (l *Log) TrackName(id uint16) string {
	if t, ok := l.byID[id]; ok {
		return t.Name
	}
	return ""
}

// LabelName resolves an interned label id of the log.
func (l *Log) LabelName(id uint16) string {
	if int(id) < len(l.labels) {
		return l.labels[id]
	}
	return ""
}

// ScopeName resolves a flow-scope id of the log.
func (l *Log) ScopeName(id uint8) string {
	if int(id) < len(l.scopes) {
		return l.scopes[id]
	}
	return ""
}

// Events returns the total number of events across all tracks.
func (l *Log) Events() int {
	n := 0
	for _, t := range l.tracks {
		n += len(t.Events)
	}
	return n
}

// WritePerfetto converts the log to Chrome trace-event JSON with flow
// events, exactly like Sink.WritePerfetto does for the in-memory recorder.
func (l *Log) WritePerfetto(w io.Writer) error {
	tracks := make([]exportTrack, len(l.tracks))
	for i, t := range l.tracks {
		tracks[i] = exportTrack{name: t.Name, events: t.Events}
	}
	return writePerfetto(w, tracks, l.LabelName, l.ScopeName)
}
