package telemetry

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestStreamFilePlain checks that a file-owning writer without rotation
// produces exactly the single-file format ReadLog already understands, and
// that OpenLogSet reads it through the same path.
func TestStreamFilePlain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.log")
	sw, err := NewStreamFile(path, "sim", StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(16)
	r.SetStream(sw)
	tr := r.Track("t")
	tr.Append(Event{TS: 1, Kind: KindScan})
	tr.Append(Event{TS: 2, Kind: KindScan})
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sw.Rotations(); got != 0 {
		t.Errorf("Rotations = %d, want 0", got)
	}
	l, err := OpenLogSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Events() != 2 || l.Timebase != "sim" {
		t.Errorf("events = %d timebase = %q", l.Events(), l.Timebase)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(bytes.NewReader(raw)); err != nil {
		t.Errorf("plain file not ReadLog-compatible: %v", err)
	}
}

// TestStreamFileRotateRoundTrip is the rotation round-trip: a tiny
// threshold forces many gzip segments, definitions made both before and
// after rotations must resolve everywhere, and OpenLogSet must reassemble
// the full in-order event stream. Each segment must also parse on its own,
// because the writer replays all definitions at every segment start.
func TestStreamFileRotateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.log")
	reg := NewRegistry()
	sw, err := NewStreamFile(path, "sim", StreamOptions{RotateBytes: 512, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(16)
	r.SetStream(sw)
	r.BindFlow("seg", "chain")
	scope := r.FlowScope("seg")
	early := r.Intern("early")
	a, b := r.Track("a"), r.Track("b")
	const perTrack = 60
	var late uint16
	for i := 0; i < perTrack; i++ {
		if i == perTrack/2 {
			late = r.Intern("late-label") // defined after at least one rotation
		}
		a.Append(Event{TS: int64(i), Act: uint64(i), Flow: FlowID(scope, uint64(i)), Kind: KindDDSSend, Label: early})
		b.Append(Event{TS: int64(i), Act: uint64(i), Kind: KindVerdict, Label: late, Status: StatusOK})
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	rot := sw.Rotations()
	if rot == 0 {
		t.Fatal("no rotation despite 512-byte threshold")
	}
	if _, err := os.Stat(path); err == nil {
		t.Errorf("rotating writer also created the base path %s", path)
	}
	for i := 0; i <= int(rot); i++ {
		if _, err := os.Stat(segmentName(path, i)); err != nil {
			t.Errorf("segment %d missing: %v", i, err)
		}
	}

	l, err := OpenLogSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Timebase != "sim" {
		t.Errorf("timebase = %q", l.Timebase)
	}
	if l.Events() != 2*perTrack {
		t.Fatalf("events = %d, want %d", l.Events(), 2*perTrack)
	}
	tracks := l.Tracks()
	if len(tracks) != 2 || tracks[0].Name != "a" || tracks[1].Name != "b" {
		t.Fatalf("tracks = %+v (def replay must not duplicate tracks)", tracks)
	}
	for _, tr := range tracks {
		if len(tr.Events) != perTrack {
			t.Fatalf("track %s: %d events, want %d", tr.Name, len(tr.Events), perTrack)
		}
		for i, ev := range tr.Events {
			if ev.TS != int64(i) {
				t.Fatalf("track %s: event %d has ts %d (order lost across rotation)", tr.Name, i, ev.TS)
			}
		}
	}
	if got := l.LabelName(early); got != "early" {
		t.Errorf("early label = %q", got)
	}
	if got := l.LabelName(late); got != "late-label" {
		t.Errorf("late label = %q", got)
	}
	if got := l.ScopeName(scope); got != "chain" {
		t.Errorf("scope = %q", got)
	}

	// A rotated segment alone must be self-describing: the defs replayed at
	// its start resolve every event it carries, even though the tracks were
	// created back in segment 0.
	f, err := os.Open(segmentName(path, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := ReadLog(gz)
	if err != nil {
		t.Fatalf("rotated segment not independently readable: %v", err)
	}
	if len(seg.Tracks()) != 2 {
		t.Errorf("rotated segment defines %d tracks, want 2", len(seg.Tracks()))
	}
	if seg.Events() == 0 || seg.Events() >= 2*perTrack {
		t.Errorf("rotated segment has %d events, want a nonzero strict subset", seg.Events())
	}

	var out strings.Builder
	if err := (&Sink{Rec: r, Reg: reg}).WriteMetrics(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "chainmon_stream_rotations_total") {
		t.Errorf("rotation counter missing from metrics:\n%s", out.String())
	}
}

// TestStreamFileGzipSniff checks that OpenLogSet transparently decompresses
// a single gzip-compressed log that is not part of a rotated set.
func TestStreamFileGzipSniff(t *testing.T) {
	var plain bytes.Buffer
	sw, err := NewStreamWriter(&plain, "wall", StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(8)
	r.SetStream(sw)
	r.Track("t").Append(Event{TS: 5, Kind: KindScan})
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.log.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if _, err := gz.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLogSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Events() != 1 || l.Timebase != "wall" {
		t.Errorf("events = %d timebase = %q", l.Events(), l.Timebase)
	}
}

// TestStreamFileTruncatedFinalSegment simulates a run killed mid-flush: the
// last segment is cut at an arbitrary byte. OpenLogSet must still return
// everything up to the cut, and an empty final segment (killed right after
// rotating) must not fail the whole set.
func TestStreamFileTruncatedFinalSegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.log")
	sw, err := NewStreamFile(path, "sim", StreamOptions{RotateBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(16)
	r.SetStream(sw)
	tr := r.Track("t")
	const total = 100
	for i := 0; i < total; i++ {
		tr.Append(Event{TS: int64(i), Kind: KindScan})
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	rot := int(sw.Rotations())
	if rot < 2 {
		t.Fatalf("need several segments, got %d rotations", rot)
	}

	last := segmentName(path, rot)
	raw, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLogSet(path)
	if err != nil {
		t.Fatalf("truncated final segment: %v", err)
	}
	if l.Events() == 0 || l.Events() >= total {
		t.Errorf("events = %d, want a nonzero strict subset of %d", l.Events(), total)
	}

	// Now cut the final segment to nothing at all.
	if err := os.WriteFile(last, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLogSet(path)
	if err != nil {
		t.Fatalf("empty final segment: %v", err)
	}
	if l2.Events() == 0 {
		t.Error("no events recovered from the intact segments")
	}
}

// TestStreamFileRotateBackground runs rotation under the concurrent
// background drainer (exercised with -race in CI): nothing may be lost or
// reordered within a track when the rings are large enough.
func TestStreamFileRotateBackground(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.log")
	sw, err := NewStreamFile(path, "wall", StreamOptions{
		Background:  true,
		RingCap:     4096,
		FlushEvery:  time.Millisecond,
		RotateBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(64)
	r.SetStream(sw)
	const producers, perTrack = 4, 500
	tracks := make([]*Track, producers)
	for i := range tracks {
		tracks[i] = r.Track(string(rune('a' + i)))
	}
	var wg sync.WaitGroup
	for _, tr := range tracks {
		wg.Add(1)
		go func(tr *Track) {
			defer wg.Done()
			for n := 0; n < perTrack; n++ {
				tr.Append(Event{TS: int64(n), Act: uint64(n), Kind: KindRingPostStart})
			}
		}(tr)
	}
	wg.Wait()
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if sw.Dropped() != 0 {
		t.Fatalf("dropped %d events with room in every ring", sw.Dropped())
	}
	if sw.Rotations() == 0 {
		t.Fatal("no rotation despite 2 KiB threshold")
	}
	l, err := OpenLogSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Events() != producers*perTrack {
		t.Fatalf("events = %d, want %d", l.Events(), producers*perTrack)
	}
	for _, tr := range l.Tracks() {
		if len(tr.Events) != perTrack {
			t.Errorf("track %s: %d events, want %d", tr.Name, len(tr.Events), perTrack)
		}
		for n, ev := range tr.Events {
			if ev.TS != int64(n) {
				t.Fatalf("track %s: event %d has ts %d", tr.Name, n, ev.TS)
			}
		}
	}
}
