package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. segment="s3a/objects").
type Label struct {
	Name, Value string
}

// L builds a label list from alternating name/value pairs.
func L(kv ...string) []Label {
	if len(kv)%2 != 0 {
		panic("telemetry: L needs name/value pairs")
	}
	ls := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{kv[i], kv[i+1]})
	}
	return ls
}

// labelString renders labels in Prometheus syntax ({} sorted by name), used
// both as the registry key and in the exposition output.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is a process-wide metrics table. Metric lookup/creation takes a
// mutex; updates on the returned handles are lock-free atomics, safe for
// concurrent writers (the shmring producer and monitor goroutines).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
	// names keeps family creation order out of the lock-free path; export
	// sorts by name anyway, this only bounds allocation.
	names []string
}

type family struct {
	name, help, typ string
	rows            map[string]any // labelString → *Counter/*Gauge/*Histogram
	order           []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func (r *Registry) row(name, help, typ, key string, make func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, rows: map[string]any{}}
		r.fams[name] = f
		r.names = append(r.names, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	m, ok := f.rows[key]
	if !ok {
		m = make()
		f.rows[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// Counter returns (creating on first use) a monotonically increasing
// counter. Repeated calls with the same name and labels return the same
// counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.row(name, help, "counter", labelString(labels),
		func() any { return &Counter{} }).(*Counter)
}

// Gauge returns (creating on first use) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.row(name, help, "gauge", labelString(labels),
		func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating on first use) a fixed-bucket histogram whose
// observations and bucket bounds are nanoseconds. All callers of one name
// must pass the same bounds.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	return r.row(name, help, "histogram", labelString(labels),
		func() any { return newHistogram(bounds) }).(*Histogram)
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that also tracks its maximum.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores the value and folds it into the running maximum.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// SetMax folds the value into the maximum without touching the current
// value.
func (g *Gauge) SetMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the last Set value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the largest value seen.
func (g *Gauge) Max() int64 { return g.max.Load() }

// DefLatencyBuckets is the default fixed bucket layout for latency
// histograms, in nanoseconds: 50µs … 1s, roughly logarithmic, spanning the
// posting overheads (µs) through the segment deadlines (100ms).
var DefLatencyBuckets = []int64{
	50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000,
	20_000_000, 50_000_000, 100_000_000, 150_000_000,
	250_000_000, 500_000_000, 1_000_000_000,
}

// Histogram is a fixed-bucket nanosecond histogram.
type Histogram struct {
	bounds []int64 // ascending upper bounds; the +Inf bucket is implicit
	counts []atomic.Uint64
	sum    atomic.Int64
	total  atomic.Uint64
}

func newHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one nanosecond observation.
func (h *Histogram) Observe(ns int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return ns <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(ns)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observations in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }
