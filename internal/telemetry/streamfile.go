package telemetry

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
)

// NewStreamFile creates a StreamWriter that owns its output files. With
// opts.RotateBytes == 0 it writes one plain file at path, exactly like
// NewStreamWriter over an os.File the caller would own. With
// opts.RotateBytes > 0 it writes gzip-compressed segments path.0.gz,
// path.1.gz, …, starting a new segment whenever the current one crosses the
// threshold (measured on uncompressed encoded bytes, so the cut point is
// deterministic for same-seed sim runs). Each segment restates the header
// and every definition seen so far, making every segment independently
// readable; OpenLogSet reassembles the set into one Log.
func NewStreamFile(path, timebase string, opts StreamOptions) (*StreamWriter, error) {
	out := &segmentedFile{path: path, rotate: opts.RotateBytes > 0}
	w, err := out.openSegment()
	if err != nil {
		return nil, err
	}
	sw := newStreamWriterCore(w, timebase, opts)
	sw.out = out
	sw.rotateBytes = opts.RotateBytes
	if sw.reg != nil && sw.rotateBytes > 0 {
		sw.rotationsC = sw.reg.Counter("chainmon_stream_rotations_total",
			"Segment rotations of the streaming trace sink.")
	}
	sw.writeHeaderLocked()
	if sw.err != nil {
		out.closeSegment()
		return nil, sw.err
	}
	sw.start()
	return sw, nil
}

// maybeRotateLocked cuts a new segment once the current one crosses the
// rotation threshold; callers hold sw.mu. Re-entrancy while the new
// segment's header and defs are being replayed is suppressed, so a
// threshold smaller than the def preamble still terminates.
func (sw *StreamWriter) maybeRotateLocked() {
	if sw.rotateBytes <= 0 || sw.out == nil || sw.rotating || sw.err != nil {
		return
	}
	if sw.segBytes < uint64(sw.rotateBytes) {
		return
	}
	sw.rotating = true
	defer func() { sw.rotating = false }()
	if err := sw.bw.Flush(); err != nil {
		sw.err = err
		return
	}
	if err := sw.out.closeSegment(); err != nil {
		sw.err = err
		return
	}
	w, err := sw.out.openSegment()
	if err != nil {
		sw.err = err
		return
	}
	sw.bw.Reset(w)
	sw.segBytes = 0
	sw.rotations++
	if sw.rotationsC != nil {
		sw.rotationsC.Inc()
	}
	sw.writeHeaderLocked()
	for _, d := range sw.defs {
		sw.writeRecordLocked(d.typ, d.payload)
	}
}

// segmentedFile manages the file (or gzip segment sequence) a file-owning
// StreamWriter writes into.
type segmentedFile struct {
	path   string
	rotate bool
	index  int
	file   *os.File
	gzw    *gzip.Writer
}

func (s *segmentedFile) openSegment() (io.Writer, error) {
	name := s.path
	if s.rotate {
		name = segmentName(s.path, s.index)
		s.index++
	}
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	s.file = f
	if s.rotate {
		s.gzw = gzip.NewWriter(f)
		return s.gzw, nil
	}
	return f, nil
}

// flush pushes buffered gzip data to the file so a killed run leaves a
// readable (if truncated) final segment.
func (s *segmentedFile) flush() error {
	if s.gzw != nil {
		return s.gzw.Flush()
	}
	return nil
}

func (s *segmentedFile) closeSegment() error {
	var first error
	if s.gzw != nil {
		if err := s.gzw.Close(); err != nil {
			first = err
		}
		s.gzw = nil
	}
	if s.file != nil {
		if err := s.file.Close(); err != nil && first == nil {
			first = err
		}
		s.file = nil
	}
	return first
}

// segmentName is the on-disk name of rotated segment i of a base path.
func segmentName(path string, i int) string {
	return fmt.Sprintf("%s.%d.gz", path, i)
}

// OpenLogSet opens an event log at path regardless of how it was written:
// a plain CHMTRC01 file, a single gzip-compressed file, or a rotated
// segment set path.0.gz, path.1.gz, … (when path itself does not exist).
// Rotated segments are merged into one Log — the definition replay at each
// segment start is recognized and deduplicated — and a truncated final
// segment (a run killed mid-flush) is tolerated just like ReadLog tolerates
// a truncated trailing record.
func OpenLogSet(path string) (*Log, error) {
	if _, err := os.Stat(path); err == nil {
		l := newLog()
		if err := readLogFile(l, path); err != nil {
			return nil, err
		}
		return l, nil
	}
	var segs []string
	for i := 0; ; i++ {
		seg := segmentName(path, i)
		if _, err := os.Stat(seg); err != nil {
			break
		}
		segs = append(segs, seg)
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("telemetry: no event log at %s (or %s)", path, segmentName(path, 0))
	}
	l := newLog()
	for i, seg := range segs {
		if err := readLogFile(l, seg); err != nil {
			// A final segment cut off before its header completed (run
			// killed right after rotating) is the same benign truncation
			// readFrom tolerates inside a record.
			if i == len(segs)-1 && isTruncation(err) {
				break
			}
			return nil, fmt.Errorf("telemetry: segment %s: %w", seg, err)
		}
	}
	return l, nil
}

// isTruncation reports whether err is a bare end-of-input — the signature
// of a segment truncated before its gzip or CHMTRC01 header finished.
func isTruncation(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// readLogFile parses one log file into l, transparently decompressing gzip
// (sniffed from the two-byte magic, so plain and compressed files share a
// code path).
func readLogFile(l *Log, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	head, err := br.Peek(2)
	if err == nil && head[0] == 0x1f && head[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return fmt.Errorf("telemetry: %s: %w", path, err)
		}
		defer gz.Close()
		return l.readFrom(gz)
	}
	return l.readFrom(br)
}
