package experiments

import (
	"fmt"
	"io"

	"chainmon/internal/dds"
	"chainmon/internal/monitor"
	"chainmon/internal/netsim"
	"chainmon/internal/parallel"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
	"chainmon/internal/stats"
	"chainmon/internal/vclock"
	"chainmon/internal/weaklyhard"
)

// This file contains ablation studies of the design choices DESIGN.md
// calls out: the ε term of the synchronization-based deadline formula, the
// segment deadline itself (the trade-off the budgeting step resolves), and
// the monitor thread's fixed buffer processing order.

// EpsilonRow is one point of the clock-error sweep.
type EpsilonRow struct {
	Epsilon sim.Duration
	// Compensated: dMon includes the ε term (the paper's formula) — no
	// false positives are expected.
	CompensatedFalsePos int
	// Uncompensated: dMon omits ε — clock disagreement alone produces
	// spurious exceptions once ε approaches the slack.
	UncompensatedFalsePos int
	Activations           int
}

// RunEpsilonAblation sweeps the clock synchronization error ε and counts
// false positives of the synchronization-based remote monitor with and
// without the ε term in d_mon (the paper: d_mon = BCRT + J^R + J^a + ε).
// All traffic is delivered on time, so every raised exception is spurious.
// The sweep points are independent simulations and are sharded over the
// worker pool (workers ≤ 0: GOMAXPROCS; 1: serial).
func RunEpsilonAblation(activations int, seed int64, epsilons []sim.Duration, workers int) []EpsilonRow {
	period := 100 * sim.Millisecond
	// The link: fixed BCRT, bounded jitter. Slack beyond BCRT+J^R is tiny
	// so that uncompensated clock error shows up immediately.
	bcrt := 500 * sim.Microsecond
	jr := 300 * sim.Microsecond

	run := func(eps sim.Duration, compensate bool) int {
		k := sim.NewKernel()
		d := dds.NewDomain(k, sim.NewRNG(seed))
		d.KsoftirqCost = sim.Constant(0)
		d.DeliverCost = sim.Constant(0)
		d.SetLink("tx", "rx", netsim.Config{
			BCRT:   bcrt,
			Jitter: sim.UniformDist{Lo: 0, Hi: jr},
		})
		e1 := d.NewECU("tx", 2, vclock.Config{Epsilon: eps, DriftStep: eps})
		e2 := d.NewECU("rx", 2, vclock.Config{Epsilon: eps, DriftStep: eps})
		for _, e := range []*dds.ECU{e1, e2} {
			e.Proc.CtxSwitch = sim.Constant(0)
			e.Proc.Wakeup = sim.Constant(0)
		}
		sender := e1.NewNode("s", dds.PrioExecBase)
		receiver := e2.NewNode("r", dds.PrioExecBase)
		pub := sender.NewPublisher("data")
		sub := receiver.Subscribe("data", nil, nil)
		lm := monitor.NewLocalMonitor(e2)
		dmon := bcrt + jr + 100*sim.Microsecond // +J^a slack (devices are exact here)
		if compensate {
			dmon += 2 * eps // sender and receiver may err in opposite directions
		}
		rm := monitor.NewRemoteMonitor(sub, monitor.SegmentConfig{
			Name: "r", DMon: dmon, Period: period,
			Constraint: weaklyhard.Constraint{M: 1, K: 1},
		}, monitor.VariantMonitorThread, lm)
		rm.SetLastActivation(uint64(activations - 1))
		for i := 0; i < activations; i++ {
			act := uint64(i)
			k.At(sim.Time(act)*sim.Time(period), func() { pub.Publish(act, nil, 64) })
		}
		horizon := sim.Time(activations) * sim.Time(period)
		k.At(horizon, rm.Stop)
		k.RunUntil(horizon.Add(sim.Second))
		_, _, miss := rm.Stats().Counts()
		return miss
	}

	return parallel.MapSlice(workers, epsilons, func(shard int, eps sim.Duration) EpsilonRow {
		return EpsilonRow{
			Epsilon:               eps,
			CompensatedFalsePos:   run(eps, true),
			UncompensatedFalsePos: run(eps, false),
			Activations:           activations,
		}
	})
}

// ReportEpsilonAblation prints the sweep.
func ReportEpsilonAblation(w io.Writer, rows []EpsilonRow) {
	section(w, "Ablation — the ε term of d_mon = BCRT + J^R + J^a + ε",
		"All traffic is on time; every exception is a false positive caused by\n"+
			"clock disagreement. With the ε term included (the paper's formula) the\n"+
			"monitor stays silent; without it, spurious exceptions appear once the\n"+
			"synchronization error eats the deadline slack.")
	fmt.Fprintf(w, "%-12s %22s %22s\n", "ε", "false-pos (with ε term)", "false-pos (without)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12v %22d %22d\n", r.Epsilon, r.CompensatedFalsePos, r.UncompensatedFalsePos)
	}
}

// DeadlineRow is one point of the segment-deadline sweep.
type DeadlineRow struct {
	DMon          sim.Duration
	ObjectsMisses int
	GroundMisses  int
	Activations   int
	// ChainBudget is 2·d_mon + overheads — what the end-to-end budget
	// would need to accommodate at this per-segment deadline.
	MaxLatency sim.Duration
}

// RunDeadlineSweep varies the monitored deadline of the two evaluation
// segments and reports the resulting miss counts — the trade-off between
// reaction time and miss rate that the Section III-C budgeting resolves
// against the (m,k) constraint.
// The sweep points are independent simulations and are sharded over the
// worker pool (workers ≤ 0: GOMAXPROCS; 1: serial).
func RunDeadlineSweep(frames int, seed int64, deadlines []sim.Duration, workers int) []DeadlineRow {
	return parallel.MapSlice(workers, deadlines, func(shard int, dmon sim.Duration) DeadlineRow {
		cfg := perception.DefaultConfig()
		cfg.Frames = frames
		cfg.Seed = seed
		cfg.LocalDeadline = dmon
		s := perception.Build(cfg)
		s.Run()
		_, _, om := s.SegObjects.Stats().Counts()
		_, _, gm := s.SegGround.Stats().Counts()
		return DeadlineRow{
			DMon:          dmon,
			ObjectsMisses: om,
			GroundMisses:  gm,
			Activations:   frames,
			MaxLatency:    sim.Duration(s.SegObjects.Stats().Latencies().Max()),
		}
	})
}

// ReportDeadlineSweep prints the sweep.
func ReportDeadlineSweep(w io.Writer, rows []DeadlineRow) {
	section(w, "Ablation — segment deadline d_mon vs miss rate",
		"Tightening the monitored deadline guarantees earlier reactions but\n"+
			"raises the miss rate the (m,k) constraint must absorb; the budgeting\n"+
			"CSP picks the smallest deadlines the constraint tolerates.")
	fmt.Fprintf(w, "%-10s %14s %14s %16s\n", "d_mon", "objects-miss", "ground-miss", "max latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10v %9d/%d %9d/%d %16v\n",
			r.DMon, r.ObjectsMisses, r.Activations, r.GroundMisses, r.Activations, r.MaxLatency)
	}
}

// MigrationRow compares global (migrating) and partitioned scheduling.
type MigrationRow struct {
	Scheduling    string
	ObjectsMisses int
	GroundMisses  int
	ObjectsP99    sim.Duration
	Activations   int
}

// RunMigrationAblation compares the evaluation's free-migration setup
// against two static partitions of ECU2: a balanced one (the heavy
// services isolated on distinct cores) and a pathological colocated one
// (all heavy services share a core).
// The three runs are independent simulations and are sharded over the
// worker pool (workers ≤ 0: GOMAXPROCS; 1: serial).
func RunMigrationAblation(frames int, seed int64, workers int) []MigrationRow {
	run := func(partition, name string) MigrationRow {
		cfg := perception.DefaultConfig()
		cfg.Frames = frames
		cfg.Seed = seed
		cfg.Monitored = false
		cfg.Record = true
		cfg.Partition = partition
		s := perception.Build(cfg)
		s.Run()
		tr := s.Recorder.Trace()
		obj := tr.Segment(perception.SegObjectsLocal).Sample()
		gnd := tr.Segment(perception.SegGroundLocal).Sample()
		deadline := float64(100 * sim.Millisecond)
		return MigrationRow{
			Scheduling:    name,
			ObjectsMisses: obj.CountAbove(deadline),
			GroundMisses:  gnd.CountAbove(deadline),
			ObjectsP99:    sim.Duration(obj.Quantile(0.99)),
			Activations:   obj.Len(),
		}
	}
	setups := []struct{ partition, name string }{
		{"", "global (migration, paper)"},
		{"balanced", "partitioned, balanced"},
		{"colocated", "partitioned, colocated"},
	}
	return parallel.MapSlice(workers, setups, func(shard int, s struct{ partition, name string }) MigrationRow {
		return run(s.partition, s.name)
	})
}

// ReportMigrationAblation prints the comparison.
func ReportMigrationAblation(w io.Writer, rows []MigrationRow) {
	section(w, "Ablation — free thread migration vs static partitioning on ECU2",
		"The evaluation allowed migration between cores. A well-chosen static\n"+
			"partition (heavy services isolated) can match or beat migration, but a\n"+
			"poor one (heavy services colocated) is catastrophic — migration buys\n"+
			"robustness against placement mistakes, at the cost of predictability.")
	fmt.Fprintf(w, "%-28s %14s %14s %14s\n", "scheduling", "objects>100ms", "ground>100ms", "objects p99")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %10d/%d %10d/%d %14v\n",
			r.Scheduling, r.ObjectsMisses, r.Activations, r.GroundMisses, r.Activations, r.ObjectsP99)
	}
}

// OrderRow compares the fixed buffer processing orders.
type OrderRow struct {
	Order string
	// MeanJointGap is the mean handler-entry gap (second − first segment)
	// over activations where both segments raised exceptions.
	MeanJointGap sim.Duration
	JointCount   int
}

// RunOrderAblation flips the monitor thread's fixed buffer processing order
// (objects-first, as in the evaluation, vs ground-first) and measures which
// segment's exception handling is delayed behind the other's.
// The two runs are independent simulations and are sharded over the worker
// pool (workers ≤ 0: GOMAXPROCS; 1: serial).
func RunOrderAblation(frames int, seed int64, workers int) []OrderRow {
	run := func(groundFirst bool) OrderRow {
		cfg := perception.DefaultConfig()
		cfg.Frames = frames
		cfg.Seed = seed
		cfg.GroundFirst = groundFirst
		s := perception.Build(cfg)
		s.Run()
		objEntry := map[uint64]sim.Time{}
		for _, r := range s.SegObjects.Stats().Resolutions() {
			if r.Exception {
				objEntry[r.Activation] = r.HandlerEntry
			}
		}
		gaps := stats.NewSample()
		for _, r := range s.SegGround.Stats().Resolutions() {
			if r.Exception {
				if oe, ok := objEntry[r.Activation]; ok {
					gaps.AddDuration(r.HandlerEntry.Sub(oe))
				}
			}
		}
		name := "objects-first (paper)"
		if groundFirst {
			name = "ground-first (ablation)"
		}
		return OrderRow{Order: name, MeanJointGap: sim.Duration(gaps.Mean()), JointCount: gaps.Len()}
	}
	return parallel.Map(workers, 2, func(shard int) OrderRow {
		return run(shard == 1)
	})
}

// ReportOrderAblation prints the comparison.
func ReportOrderAblation(w io.Writer, rows []OrderRow) {
	section(w, "Ablation — fixed buffer processing order of the monitor thread",
		"On activations where both segments raise exceptions, the segment\n"+
			"registered second enters its handler after the first one's handling\n"+
			"(the Fig. 10 asymmetry). Flipping the registration order flips the\n"+
			"sign of the ground-minus-objects handler entry gap.")
	fmt.Fprintf(w, "%-26s %18s %8s\n", "order", "mean gap (gnd−obj)", "joint n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %18v %8d\n", r.Order, r.MeanJointGap, r.JointCount)
	}
}
