package experiments

import (
	"bytes"
	"testing"
)

// TestFig9ParallelDeterminism pins the sharding guarantee on the figure
// drivers: a parallel run produces reports byte-identical to the serial run
// (each shard builds its own kernel and RNG streams from the seed, and the
// merge is ordered by shard index). Fig. 11 is deliberately absent: it
// measures wall-clock overheads on the real shared-memory implementation
// and always runs serially, so the serial/parallel identity is trivial.
func TestFig9ParallelDeterminism(t *testing.T) {
	render := func(workers int) []byte {
		r := RunFig9(120, 42, workers)
		var buf bytes.Buffer
		r.Report(&buf)
		r.ReportFig10(&buf)
		return buf.Bytes()
	}
	serial := render(1)
	for _, workers := range []int{2, 4} {
		if par := render(workers); !bytes.Equal(serial, par) {
			t.Errorf("Fig9 report at %d workers differs from serial", workers)
		}
	}
}

func TestFig12ParallelDeterminism(t *testing.T) {
	render := func(workers int) []byte {
		r := RunFig12(80, 42, []float64{0, 0.9}, workers)
		var buf bytes.Buffer
		r.Report(&buf)
		return buf.Bytes()
	}
	serial := render(1)
	if par := render(4); !bytes.Equal(serial, par) {
		t.Error("Fig12 report at 4 workers differs from serial")
	}
}

func TestAblationParallelDeterminism(t *testing.T) {
	serial := RunOrderAblation(100, 5, 1)
	par := RunOrderAblation(100, 5, 4)
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("order ablation row %d: serial %+v, parallel %+v", i, serial[i], par[i])
		}
	}
}
