// Package experiments regenerates every figure of the paper's evaluation
// (and the measurable claims of its concept sections) on the simulated
// system and, for the wall-clock overheads of Fig. 11, on the real
// shared-memory monitoring implementation. The package is shared by the
// repository's benchmarks (bench_test.go) and cmd/experiments.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"chainmon/internal/sim"
	"chainmon/internal/stats"
)

// section prints a figure header.
func section(w io.Writer, title, explain string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
	if explain != "" {
		fmt.Fprintf(w, "%s\n", explain)
	}
	fmt.Fprintln(w)
}

// row prints one Tukey boxplot row.
func row(w io.Writer, label string, s *stats.Sample) {
	fmt.Fprintln(w, s.Tukey().DurationRow(label))
}

// durationsOf converts sim latencies in a sample to a printable quantile
// triple for compact assertions.
func quantiles(s *stats.Sample) (med, p95, max sim.Duration) {
	return sim.Duration(s.Median()), sim.Duration(s.Quantile(0.95)), sim.Duration(s.Max())
}
