package experiments

import (
	"fmt"
	"io"

	"chainmon/internal/dds"
	"chainmon/internal/monitor"
	"chainmon/internal/netsim"
	"chainmon/internal/parallel"
	"chainmon/internal/sim"
	"chainmon/internal/vclock"
	"chainmon/internal/weaklyhard"
)

// scriptedJitter is a sim.Dist that returns a scripted per-message network
// delay (indexed by send order), used to inject deterministic fault
// patterns into a link.
type scriptedJitter struct {
	fn func(i int) sim.Duration
	i  int
}

func (s *scriptedJitter) Sample(*sim.RNG) sim.Duration {
	d := s.fn(s.i)
	s.i++
	return d
}

func (s *scriptedJitter) Bounds() (sim.Duration, sim.Duration) { return 0, 0 }
func (s *scriptedJitter) String() string                       { return "scripted" }

// Fig6Scenario is one fault pattern applied to a periodic remote stream.
// The sender publishes exactly on time; NetDelay is the network response
// time added to message i, and Drop loses it entirely.
type Fig6Scenario struct {
	Name     string
	NetDelay func(n uint64) sim.Duration
	Drop     func(n uint64) bool
}

// Fig6Row is the comparison result for one scenario.
type Fig6Row struct {
	Scenario string
	// TrueViolations is the ground truth: activations that arrived later
	// than d_mon after their publication (or never).
	TrueViolations int
	// SyncDetected/SyncFalsePos: violations flagged by the
	// synchronization-based monitor, split by ground truth.
	SyncDetected int
	SyncFalsePos int
	// SyncMissed: true violations the sync monitor did not flag.
	SyncMissed int
	// IADetections is the number of inter-arrival timer expiries. The
	// mechanism has no notion of which activation violated, so the count
	// is reported as-is.
	IADetections int
	Activations  int
}

// RunFig6 reproduces the Section III-B / Fig. 6 comparison of inter-arrival
// monitoring against synchronization-based monitoring on three network
// fault patterns: on-time delivery (false-positive check), accumulating
// network lateness (each arrival within t_max of the previous one while the
// absolute latency grows without bound — provably invisible to
// inter-arrival supervision), and bursty loss.
// The scenarios are independent simulations and are sharded over the worker
// pool (workers ≤ 0: GOMAXPROCS; 1: serial).
func RunFig6(activations int, seed int64, workers int) []Fig6Row {
	period := 100 * sim.Millisecond
	dmon := 20 * sim.Millisecond
	scenarios := []Fig6Scenario{
		{
			Name:     "on-time",
			NetDelay: func(uint64) sim.Duration { return 0 },
		},
		{
			// Message n is delivered 8·n ms late: consecutive arrivals
			// stay 108 ms apart (< t_max = 120 ms) forever.
			Name:     "accumulating lateness",
			NetDelay: func(n uint64) sim.Duration { return sim.Duration(n) * 8 * sim.Millisecond },
		},
		{
			Name:     "burst loss",
			NetDelay: func(uint64) sim.Duration { return 0 },
			Drop:     func(n uint64) bool { return n%16 >= 12 }, // 4 consecutive lost per 16
		},
	}
	return parallel.MapSlice(workers, scenarios, func(shard int, sc Fig6Scenario) Fig6Row {
		return runFig6Scenario(sc, activations, seed, period, dmon)
	})
}

func runFig6Scenario(sc Fig6Scenario, activations int, seed int64, period, dmon sim.Duration) Fig6Row {
	const bcrt = 300 * sim.Microsecond

	build := func() (*sim.Kernel, *dds.Publisher, *dds.Subscription, *monitor.LocalMonitor) {
		k := sim.NewKernel()
		d := dds.NewDomain(k, sim.NewRNG(seed))
		d.KsoftirqCost = sim.Constant(2 * sim.Microsecond)
		d.DeliverCost = sim.Constant(5 * sim.Microsecond)
		// Deterministic, scripted network: delay per message index.
		d.SetLink("tx", "rx", netsim.Config{
			BCRT: bcrt,
			Jitter: &scriptedJitter{fn: func(i int) sim.Duration {
				return delayOfMessage(sc, i)
			}},
		})
		e1 := d.NewECU("tx", 2, vclock.Config{Epsilon: 50 * sim.Microsecond})
		e2 := d.NewECU("rx", 2, vclock.Config{Epsilon: 50 * sim.Microsecond})
		sender := e1.NewNode("sender", dds.PrioExecBase)
		receiver := e2.NewNode("receiver", dds.PrioExecBase)
		pub := sender.NewPublisher("data")
		sub := receiver.Subscribe("data", nil, nil)
		return k, pub, sub, monitor.NewLocalMonitor(e2)
	}
	drive := func(k *sim.Kernel, pub *dds.Publisher) (map[uint64]bool, sim.Time) {
		trueLate := make(map[uint64]bool)
		var lastSend sim.Time
		for i := 0; i < activations; i++ {
			act := uint64(i)
			if sc.Drop != nil && sc.Drop(act) {
				trueLate[act] = true // never arrives
				continue
			}
			if sc.NetDelay(act)+bcrt > dmon {
				trueLate[act] = true
			}
			at := sim.Time(act) * sim.Time(period)
			if at > lastSend {
				lastSend = at
			}
			k.At(at, func() { pub.Publish(act, nil, 128) })
		}
		return trueLate, lastSend
	}

	// Synchronization-based monitor run.
	k, pub, sub, lm := build()
	rm := monitor.NewRemoteMonitor(sub, monitor.SegmentConfig{
		Name: "remote", DMon: dmon, Period: period,
		Constraint: weaklyhard.Constraint{M: 1, K: 1},
	}, monitor.VariantMonitorThread, lm)
	rm.SetLastActivation(uint64(activations - 1))
	trueLate, _ := drive(k, pub)
	horizon := sim.Time(activations)*sim.Time(period) + sim.Time(activations)*sim.Time(10*sim.Millisecond) + sim.Time(sim.Second)
	k.At(horizon, rm.Stop)
	k.RunUntil(horizon.Add(sim.Second))

	syncDet, syncFP := 0, 0
	flagged := make(map[uint64]bool)
	for _, res := range rm.Stats().Resolutions() {
		if res.Status == monitor.StatusMissed {
			flagged[res.Activation] = true
			if trueLate[res.Activation] {
				syncDet++
			} else {
				syncFP++
			}
		}
	}
	missed := 0
	for act := range trueLate {
		if !flagged[act] {
			missed++
		}
	}

	// Inter-arrival monitor run on an identical system, with the standard
	// t_max = period + d_mon.
	k2, pub2, sub2, _ := build()
	ia := monitor.NewInterArrivalMonitor(sub2, period+dmon)
	_, lastSend := drive(k2, pub2)
	k2.At(horizon, ia.Stop)
	k2.RunUntil(horizon.Add(sim.Second))

	// Count only detections during the active stream; expiries after the
	// final message are end-of-stream artifacts, not monitoring verdicts.
	iaDetections := 0
	for _, at := range ia.Detections() {
		if at <= lastSend.Add(sc.NetDelay(uint64(activations-1))+bcrt) {
			iaDetections++
		}
	}

	return Fig6Row{
		Scenario:       sc.Name,
		TrueViolations: len(trueLate),
		SyncDetected:   syncDet,
		SyncFalsePos:   syncFP,
		SyncMissed:     missed,
		IADetections:   iaDetections,
		Activations:    activations,
	}
}

// delayOfMessage maps the i-th actually sent message to its scripted
// network delay (drops shift the send index).
func delayOfMessage(sc Fig6Scenario, sendIdx int) sim.Duration {
	if sc.Drop == nil {
		return sc.NetDelay(uint64(sendIdx))
	}
	// Recover the activation of the sendIdx-th non-dropped message.
	idx := 0
	for act := uint64(0); ; act++ {
		if sc.Drop(act) {
			continue
		}
		if idx == sendIdx {
			return sc.NetDelay(act)
		}
		idx++
	}
}

// ReportFig6 prints the comparison table.
func ReportFig6(w io.Writer, rows []Fig6Row) {
	section(w, "Figure 6 / §III-B — Inter-arrival vs synchronization-based remote monitoring",
		"Ground truth = activations delivered later than d_mon after publication\n"+
			"(or lost). The paper's argument: inter-arrival timers cannot detect\n"+
			"consecutive or accumulating lateness (only usable for m = 0), whereas\n"+
			"interpreting the transmitted timestamps detects every violation with\n"+
			"pessimism bounded by J^a + ε. Inter-arrival detections cannot be\n"+
			"attributed to activations at all.")
	fmt.Fprintf(w, "%-24s %10s %10s %10s %10s %14s\n",
		"scenario", "true", "sync-det", "sync-fp", "sync-miss", "inter-arrival")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %10d %10d %10d %10d %14d\n",
			r.Scenario, r.TrueViolations, r.SyncDetected, r.SyncFalsePos, r.SyncMissed, r.IADetections)
	}
}
