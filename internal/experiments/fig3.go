package experiments

import (
	"fmt"
	"io"
	"sort"

	"chainmon/internal/dds"
	"chainmon/internal/lidar"
	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
)

// Fig3Event is one line of the error-case narrative.
type Fig3Event struct {
	Activation uint64
	Segment    string
	Status     monitor.Status
	Propagated bool
	At         sim.Time
}

// Fig3Result is the scripted reproduction of the paper's Fig. 3 chain
// execution in an error case.
type Fig3Result struct {
	Events []Fig3Event
	// RearRecovered: the fusion's rear segment missed and recovered with
	// the front-only point cloud.
	RearRecovered bool
	// FusedPropagated: the following remote segment missed without
	// recovery, propagating explicitly.
	FusedPropagated bool
	// FinalHandlerDirect: the last local segment entered error handling
	// through the propagation event (no own timeout).
	FinalHandlerDirect bool
	// FrontOnlyDelivered: the classifier received the front-only recovery
	// cloud for the perturbed activation.
	FrontOnlyDelivered bool
	ChainViolations    uint64
}

// RunFig3 reproduces the Fig. 3 error case on the full monitored chain:
//
//   - the front lidar's remote segment s0 finishes within its budget;
//   - the rear lidar is delayed past the fusion segment's deadline; the
//     application handler recovers by publishing the current point cloud
//     with only the front lidar's data;
//   - the fused publication for a later activation is lost, so the remote
//     segment s2 times out and — with recovery impossible — propagates the
//     error explicitly to s3, which goes directly into error handling.
func RunFig3(seed int64) Fig3Result {
	cfg := perception.DefaultConfig()
	cfg.Seed = seed
	cfg.Frames = 40
	cfg.FullChain = true

	const rearLateAct = 10  // rear lidar delayed past the fusion deadline
	const fusedLostAct = 20 // fused publication lost on the wire

	var res Fig3Result
	var frontOnly *perception.FrameData

	cfg.Handlers = map[string]monitor.Handler{
		// Fusion rear segment: recover by sending the point cloud with
		// only the front lidar's data (Fig. 3's recovery case).
		perception.SegFusionRear: func(ctx *monitor.ExceptionContext) *monitor.Recovery {
			fd := &perception.FrameData{
				Meta:      lidar.FrameMeta{Activation: ctx.Activation, GroundPoints: 6000, ObjectPoints: 5000},
				Points:    11000,
				FrontOnly: true,
			}
			frontOnly = fd
			return &monitor.Recovery{Data: fd, Size: 16 * fd.Points}
		},
		// The objects segment reacts fast to the propagated error but
		// cannot recover (no usable data): it alerts the application.
		perception.SegObjectsLocal: func(ctx *monitor.ExceptionContext) *monitor.Recovery {
			return nil
		},
	}

	s := perception.Build(cfg)
	// Delay the rear lidar's frame past the fusion segment deadline
	// (deadline is LocalDeadline/2 = 50 ms).
	s.RearLidar.Perturb = func(n uint64) (bool, sim.Duration) {
		if n == rearLateAct {
			return false, 70 * sim.Millisecond
		}
		return false, 0
	}
	// Lose the fused publication of a later activation on the wire: the
	// publication event happens (the fusion segments end normally), the
	// transmission does not, and the subscriber-side remote monitor
	// detects the loss by timeout.
	s.FusedPub.DropOnWire = append(s.FusedPub.DropOnWire, func(smp *dds.Sample) bool {
		return smp.Activation == fusedLostAct && !smp.Recovered
	})

	s.Run()

	collect := func(name string, segs map[string]*monitor.SegmentStats) {
		for _, r := range segs[name].Resolutions() {
			if r.Activation == rearLateAct || r.Activation == fusedLostAct {
				res.Events = append(res.Events, Fig3Event{
					Activation: r.Activation, Segment: name, Status: r.Status, At: r.End,
				})
			}
		}
	}
	segs := map[string]*monitor.SegmentStats{
		perception.SegFrontRemote:  s.RemFront.Stats(),
		perception.SegRearRemote:   s.RemRear.Stats(),
		perception.SegFusionFront:  s.FusionFront.Stats(),
		perception.SegFusionRear:   s.FusionRear.Stats(),
		perception.SegFusedRemote:  s.RemFused.Stats(),
		perception.SegObjectsLocal: s.SegObjects.Stats(),
	}
	for name := range segs {
		collect(name, segs)
	}
	sort.Slice(res.Events, func(i, j int) bool {
		if res.Events[i].Activation != res.Events[j].Activation {
			return res.Events[i].Activation < res.Events[j].Activation
		}
		return res.Events[i].At < res.Events[j].At
	})

	for _, r := range s.FusionRear.Stats().Resolutions() {
		if r.Activation == rearLateAct && r.Status == monitor.StatusRecovered {
			res.RearRecovered = true
		}
	}
	for _, r := range s.RemFused.Stats().Resolutions() {
		if r.Activation == fusedLostAct && r.Status == monitor.StatusMissed {
			res.FusedPropagated = true
		}
	}
	for _, r := range s.SegObjects.Stats().Resolutions() {
		if r.Activation == fusedLostAct && r.Exception && r.Start == 0 {
			res.FinalHandlerDirect = true
		}
	}
	res.FrontOnlyDelivered = frontOnly != nil
	_, _, res.ChainViolations = s.ChainFront.Totals()
	return res
}

// Report prints the narrative.
func (r Fig3Result) Report(w io.Writer) {
	section(w, "Figure 3 — Chain execution in an error case",
		"Scripted faults: the rear lidar frame of one activation is 70 ms late\n"+
			"(fusion recovers with the front-only cloud); the fused publication of a\n"+
			"later activation is lost (the remote segment propagates explicitly and\n"+
			"the final segment enters error handling directly).")
	for _, e := range r.Events {
		marker := ""
		if e.Status != monitor.StatusOK {
			marker = "  <--"
		}
		fmt.Fprintf(w, "  act %2d  %-22s %-10s @ %v%s\n", e.Activation, e.Segment, e.Status, e.At, marker)
	}
	fmt.Fprintf(w, "\nrear segment recovered with front-only cloud: %v\n", r.RearRecovered)
	fmt.Fprintf(w, "fused remote segment propagated explicitly:   %v\n", r.FusedPropagated)
	fmt.Fprintf(w, "final segment entered handler via propagation: %v\n", r.FinalHandlerDirect)
	fmt.Fprintf(w, "chain violations in the run:                   %d\n", r.ChainViolations)
}
