package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"chainmon/internal/sim"
	"chainmon/internal/stats"
)

func TestFig9ShapeHolds(t *testing.T) {
	r := RunFig9(400, 1, 1)

	// Claim 1: without monitoring, latencies show a heavy tail well above
	// the deadline (paper: up to ~600 ms at a 100 ms deadline).
	_, _, maxUnmon := quantiles(r.ObjectsUnmon)
	if maxUnmon < 150*sim.Millisecond {
		t.Errorf("unmonitored objects max %v — tail too light", maxUnmon)
	}
	// Claim 2: with monitoring, every activation is bounded by the
	// deadline plus bounded exception handling.
	for _, s := range []struct {
		name string
		max  sim.Duration
	}{
		{"objects", sim.Duration(r.ObjectsMon.Max())},
		{"ground", sim.Duration(r.GroundMon.Max())},
	} {
		if s.max > r.Deadline+5*sim.Millisecond {
			t.Errorf("monitored %s max %v exceeds deadline bound", s.name, s.max)
		}
	}
	// Claim 3: the ground segment raises more exceptions than objects
	// (paper: 1699 vs 934, a factor of ~1.8).
	if r.GroundExcCount <= r.ObjectsExcCount {
		t.Errorf("ground exceptions %d should exceed objects %d", r.GroundExcCount, r.ObjectsExcCount)
	}
	ratio := float64(r.GroundExcCount) / float64(r.ObjectsExcCount)
	if ratio < 1.1 || ratio > 4.0 {
		t.Errorf("ground/objects exception ratio %.2f far from the paper's ~1.8", ratio)
	}

	var buf bytes.Buffer
	r.Report(&buf)
	r.ReportFig10(&buf)
	if !strings.Contains(buf.String(), "Figure 9") || !strings.Contains(buf.String(), "Figure 10") {
		t.Error("report missing sections")
	}
}

func TestFig10ExceptionLatenciesBounded(t *testing.T) {
	r := RunFig9(400, 2, 1)
	if r.ObjectsExc.Len() == 0 || r.GroundExc.Len() == 0 {
		t.Fatal("no exception cases")
	}
	// Exception-case latencies sit just past the deadline: detection and
	// handler entry take at most a few hundred microseconds (paper).
	for _, s := range []struct {
		name string
		max  sim.Duration
	}{
		{"objects", sim.Duration(r.ObjectsExc.Max())},
		{"ground", sim.Duration(r.GroundExc.Max())},
	} {
		if s.max < r.Deadline {
			t.Errorf("%s exception latency below deadline", s.name)
		}
		if s.max > r.Deadline+2*sim.Millisecond {
			t.Errorf("%s exception latency %v too far past deadline", s.name, s.max)
		}
	}
	// Detection latency is sub-millisecond.
	if d := sim.Duration(r.ObjectsDetect.Max()); d > sim.Millisecond {
		t.Errorf("objects detection latency %v too large", d)
	}
	// The ground segment is processed after the objects segment by the
	// same monitor thread: whenever both segments raise an exception for
	// the same activation, the ground handler enters strictly after the
	// objects handler (Fig. 10's asymmetry).
	if r.JointEntryGap.Len() == 0 {
		t.Fatal("no joint-exception activations")
	}
	if r.JointEntryGap.Min() <= 0 {
		t.Errorf("ground handler entered before objects on a joint exception (gap %v)",
			sim.Duration(r.JointEntryGap.Min()))
	}
}

func TestFig11RealOverheads(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	r := RunFig11(300, 200*time.Microsecond)
	if r.StartPost.Len() < 600 || r.MonLatency.Len() < 500 {
		t.Fatalf("samples: start=%d monlat=%d", r.StartPost.Len(), r.MonLatency.Len())
	}
	// Posting must be sub-10µs median (paper: tens of µs on 2012 hardware).
	if m := time.Duration(r.StartPost.Median()); m > 50*time.Microsecond {
		t.Errorf("start-event posting median %v too slow", m)
	}
	// Monitor latency median should be well under a millisecond.
	if m := time.Duration(r.MonLatency.Median()); m > time.Millisecond {
		t.Errorf("monitor latency median %v too slow", m)
	}
	if r.Exceptions == 0 || r.OK == 0 {
		t.Errorf("need both paths: ok=%d exc=%d", r.OK, r.Exceptions)
	}
	var buf bytes.Buffer
	r.Report(&buf)
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Error("missing report section")
	}
}

func TestFig12VariantOrdering(t *testing.T) {
	r := RunFig12(240, 3, []float64{0, 0.5, 0.9}, 1)
	ddsLow := r.Entries["dds-context @ 0% load"]
	ddsHigh := r.Entries["dds-context @ 90% load"]
	monHigh := r.Entries["monitor-thread @ 90% load"]
	if ddsLow.Len() == 0 || ddsHigh.Len() == 0 || monHigh.Len() == 0 {
		t.Fatal("missing samples")
	}
	max := func(s *stats.Sample) sim.Duration { return sim.Duration(s.Max()) }
	// Claim: load worsens the DDS-context entry latency...
	if max(ddsHigh) <= max(ddsLow) {
		t.Errorf("dds-context max under load %v should exceed no-load %v", max(ddsHigh), max(ddsLow))
	}
	// ...while the monitor-thread variant stays small and bounded.
	if max(monHigh) >= max(ddsHigh) {
		t.Errorf("monitor-thread max %v should undercut dds-context %v under load",
			max(monHigh), max(ddsHigh))
	}
	if max(monHigh) > 500*sim.Microsecond {
		t.Errorf("monitor-thread entry %v not bounded tightly", max(monHigh))
	}
	// Paper magnitude check: dds-context outliers reach the millisecond
	// range under load.
	if max(ddsHigh) < 300*sim.Microsecond {
		t.Errorf("dds-context max %v under load suspiciously small", max(ddsHigh))
	}
	var buf bytes.Buffer
	r.Report(&buf)
	if !strings.Contains(buf.String(), "Figure 12") {
		t.Error("missing report section")
	}
}

func TestFig6Claims(t *testing.T) {
	rows := RunFig6(120, 4, 1)
	byName := map[string]Fig6Row{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	onTime := byName["on-time"]
	if onTime.SyncFalsePos != 0 || onTime.IADetections != 0 {
		t.Errorf("on-time scenario produced false alarms: %+v", onTime)
	}
	acc := byName["accumulating lateness"]
	if acc.TrueViolations == 0 {
		t.Fatal("accumulating scenario produced no violations")
	}
	// The decisive claim: inter-arrival sees nothing, sync sees all.
	if acc.IADetections != 0 {
		t.Errorf("inter-arrival detected %d accumulating-lateness violations; should be blind", acc.IADetections)
	}
	if acc.SyncMissed != 0 {
		t.Errorf("sync-based missed %d true violations", acc.SyncMissed)
	}
	burst := byName["burst loss"]
	if burst.SyncMissed != 0 {
		t.Errorf("sync-based missed %d burst losses", burst.SyncMissed)
	}
	if burst.SyncDetected != burst.TrueViolations {
		t.Errorf("sync detected %d of %d burst losses", burst.SyncDetected, burst.TrueViolations)
	}
	var buf bytes.Buffer
	ReportFig6(&buf, rows)
	if !strings.Contains(buf.String(), "inter-arrival") {
		t.Error("missing report content")
	}
}

func TestBudgetingSchedulabilityFrontier(t *testing.T) {
	r := RunBudgeting(300, 5)
	if r.TraceLen < 250 {
		t.Fatalf("aligned trace too short: %d", r.TraceLen)
	}
	// Monotonicity: relaxing the constraint (larger m) or the budget can
	// only keep or gain schedulability; the minimum sum shrinks with m.
	type key struct {
		m    int
		be2e sim.Duration
	}
	cells := map[key]BudgetCell{}
	for _, c := range r.Cells {
		cells[key{c.Constraint.M, c.Be2e}] = c
	}
	for _, c := range r.Cells {
		if up, ok := cells[key{c.Constraint.M + 1, c.Be2e}]; ok {
			if c.Schedulable && !up.Schedulable {
				t.Errorf("larger m lost schedulability: %v vs %v", c, up)
			}
			if c.Schedulable && up.Schedulable && up.Sum > c.Sum {
				t.Errorf("larger m increased minimum sum: m=%d Σ=%v vs m=%d Σ=%v",
					c.Constraint.M, c.Sum, up.Constraint.M, up.Sum)
			}
		}
	}
	// At a generous budget the chain must be schedulable even for m=0.
	if c := cells[key{0, 800 * sim.Millisecond}]; !c.Schedulable {
		t.Error("m=0 with 800 ms budget should be schedulable")
	}
	// There must be at least one infeasible cell (the frontier exists).
	foundInfeasible := false
	for _, c := range r.Cells {
		if !c.Schedulable {
			foundInfeasible = true
		}
	}
	if !foundInfeasible {
		t.Error("no infeasible cells — budgets too generous to show a frontier")
	}
	var buf bytes.Buffer
	r.Report(&buf)
	if !strings.Contains(buf.String(), "schedulable") {
		t.Error("missing report content")
	}
}

func TestFig3Narrative(t *testing.T) {
	r := RunFig3(6)
	if !r.RearRecovered {
		t.Error("rear fusion segment did not recover with the front-only cloud")
	}
	if !r.FusedPropagated {
		t.Error("fused remote segment did not propagate")
	}
	if !r.FinalHandlerDirect {
		t.Error("final segment did not enter its handler via propagation")
	}
	if !r.FrontOnlyDelivered {
		t.Error("front-only recovery data never produced")
	}
	if r.ChainViolations == 0 {
		t.Error("the propagated error must count as a chain violation")
	}
	if len(r.Events) == 0 {
		t.Error("no narrative events collected")
	}
	var buf bytes.Buffer
	r.Report(&buf)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("missing report section")
	}
}
