package experiments

import (
	"fmt"
	"io"

	"chainmon/internal/parallel"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
	"chainmon/internal/stats"
)

// Fig9Result carries the quantities Figs. 9 and 10 report.
type Fig9Result struct {
	Frames int

	// Unmonitored segment latencies (left half of Fig. 9).
	ObjectsUnmon *stats.Sample
	GroundUnmon  *stats.Sample
	// Monitored segment latencies (right half of Fig. 9): end event or
	// handled exception, whichever occurs first — capped at d_mon + d_ex.
	ObjectsMon *stats.Sample
	GroundMon  *stats.Sample

	// Fig. 10: latencies of the temporal exception cases only.
	ObjectsExc *stats.Sample
	GroundExc  *stats.Sample
	// Detection latencies (deadline → handler entry).
	ObjectsDetect *stats.Sample
	GroundDetect  *stats.Sample

	ObjectsExcCount int
	GroundExcCount  int
	Deadline        sim.Duration

	// JointEntryGap is, over activations where both segments raised an
	// exception, the ground handler entry minus the objects handler entry.
	// The monitor thread processes the buffers in fixed order (objects
	// first), so the gap is positive — the Fig. 10 asymmetry.
	JointEntryGap *stats.Sample
}

// RunFig9 reproduces Figs. 9 and 10: segment latencies on ECU2 with and
// without monitoring (one unmonitored recording run, one monitored run with
// the paper's 100 ms segment deadline), and the exception-case latencies.
// The two runs are independent simulations and are sharded over the worker
// pool (workers ≤ 0: GOMAXPROCS; 1: serial).
func RunFig9(frames int, seed int64, workers int) Fig9Result {
	base := perception.DefaultConfig()
	base.Frames = frames
	base.Seed = seed

	unmon := base
	unmon.Monitored = false
	unmon.Record = true
	mon := base

	var su, sm *perception.System
	parallel.ForEach(workers, 2, func(shard int) {
		if shard == 0 {
			su = perception.Build(unmon)
			su.Run()
		} else {
			sm = perception.Build(mon)
			sm.Run()
		}
	})
	tr := su.Recorder.Trace()

	gap := stats.NewSample()
	objEntry := make(map[uint64]sim.Time)
	for _, res := range sm.SegObjects.Stats().Resolutions() {
		if res.Exception {
			objEntry[res.Activation] = res.HandlerEntry
		}
	}
	for _, res := range sm.SegGround.Stats().Resolutions() {
		if res.Exception {
			if oe, ok := objEntry[res.Activation]; ok {
				gap.AddDuration(res.HandlerEntry.Sub(oe))
			}
		}
	}

	return Fig9Result{
		JointEntryGap:   gap,
		Frames:          frames,
		ObjectsUnmon:    tr.Segment(perception.SegObjectsLocal).Sample(),
		GroundUnmon:     tr.Segment(perception.SegGroundLocal).Sample(),
		ObjectsMon:      sm.SegObjects.Stats().Latencies(),
		GroundMon:       sm.SegGround.Stats().Latencies(),
		ObjectsExc:      sm.SegObjects.Stats().ExceptionLatencies(),
		GroundExc:       sm.SegGround.Stats().ExceptionLatencies(),
		ObjectsDetect:   sm.SegObjects.Stats().DetectionLatencies(),
		GroundDetect:    sm.SegGround.Stats().DetectionLatencies(),
		ObjectsExcCount: sm.SegObjects.Stats().Exceptions(),
		GroundExcCount:  sm.SegGround.Stats().Exceptions(),
		Deadline:        base.LocalDeadline,
	}
}

// Report prints the Fig. 9 rows.
func (r Fig9Result) Report(w io.Writer) {
	section(w, "Figure 9 — Segment latencies on ECU2 with and without monitoring",
		fmt.Sprintf("%d activations per segment; monitored deadline d_mon = %v.\n"+
			"Paper: unmonitored latencies reach ~600 ms; with monitoring every\n"+
			"activation is bounded by the 100 ms deadline (plus bounded handling).",
			r.Frames, r.Deadline))
	row(w, "objects (no monitoring)", r.ObjectsUnmon)
	row(w, "ground  (no monitoring)", r.GroundUnmon)
	row(w, "objects (monitored)", r.ObjectsMon)
	row(w, "ground  (monitored)", r.GroundMon)
	fmt.Fprintln(w)
	fmt.Fprint(w, stats.RenderBoxplots(
		[]string{"objects (no monitoring)", "ground  (no monitoring)", "objects (monitored)", "ground  (monitored)"},
		[]stats.Boxplot{r.ObjectsUnmon.Tukey(), r.GroundUnmon.Tukey(), r.ObjectsMon.Tukey(), r.GroundMon.Tukey()},
		70))
}

// ReportFig10 prints the Fig. 10 rows.
func (r Fig9Result) ReportFig10(w io.Writer) {
	section(w, "Figure 10 — Segment latencies for the temporal exception cases",
		fmt.Sprintf("Exception cases: objects n=%d, ground n=%d (paper: 934 and 1699 of ~4700).\n"+
			"Latency = deadline + detection + handler entry; the ground segment is\n"+
			"processed after the objects segment by the same monitor thread, so its\n"+
			"exceptions are delayed by the objects handling (fixed buffer order).",
			r.ObjectsExcCount, r.GroundExcCount))
	row(w, "objects (exception cases)", r.ObjectsExc)
	row(w, "ground  (exception cases)", r.GroundExc)
	row(w, "objects detection latency", r.ObjectsDetect)
	row(w, "ground  detection latency", r.GroundDetect)
	fmt.Fprintln(w)
	fmt.Fprint(w, stats.RenderBoxplots(
		[]string{"objects (exception cases)", "ground  (exception cases)"},
		[]stats.Boxplot{r.ObjectsExc.Tukey(), r.GroundExc.Tukey()},
		70))
}
