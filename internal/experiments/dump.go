package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"chainmon/internal/stats"
)

// DumpCSV writes one sample per named column into dir/<name>.csv (one value
// per row, nanoseconds), for external plotting of the figures. Missing
// directories are created.
func DumpCSV(dir string, samples map[string]*stats.Sample) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: creating dump dir: %w", err)
	}
	for name, s := range samples {
		if s == nil {
			continue
		}
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return fmt.Errorf("experiments: creating %s: %w", name, err)
		}
		fmt.Fprintln(f, "latency_ns")
		for _, v := range s.Values() {
			fmt.Fprintf(f, "%.0f\n", v)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Samples exposes the Fig. 9/10 samples for dumping.
func (r Fig9Result) Samples() map[string]*stats.Sample {
	return map[string]*stats.Sample{
		"fig9_objects_unmonitored": r.ObjectsUnmon,
		"fig9_ground_unmonitored":  r.GroundUnmon,
		"fig9_objects_monitored":   r.ObjectsMon,
		"fig9_ground_monitored":    r.GroundMon,
		"fig10_objects_exceptions": r.ObjectsExc,
		"fig10_ground_exceptions":  r.GroundExc,
		"fig10_objects_detection":  r.ObjectsDetect,
		"fig10_ground_detection":   r.GroundDetect,
	}
}

// Samples exposes the Fig. 11 samples for dumping.
func (r Fig11Result) Samples() map[string]*stats.Sample {
	return map[string]*stats.Sample{
		"fig11_start_post":  r.StartPost,
		"fig11_end_post":    r.EndPost,
		"fig11_mon_latency": r.MonLatency,
		"fig11_mon_exec":    r.MonExec,
	}
}

// Samples exposes the Fig. 12 samples for dumping.
func (r Fig12Result) Samples() map[string]*stats.Sample {
	out := make(map[string]*stats.Sample, len(r.Entries))
	for i, key := range r.order {
		out[fmt.Sprintf("fig12_%02d_%s", i, sanitize(key))] = r.Entries[key]
	}
	return out
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
