package experiments

import (
	"fmt"
	"io"

	"chainmon/internal/dds"
	"chainmon/internal/monitor"
	"chainmon/internal/netsim"
	"chainmon/internal/parallel"
	"chainmon/internal/sim"
	"chainmon/internal/stats"
	"chainmon/internal/vclock"
	"chainmon/internal/weaklyhard"
)

// Fig12Result compares the exception entry latency (deadline expiry →
// timeout routine entry) of the remote monitor when the timer lives in the
// DDS middleware context versus when it is forwarded to the high-priority
// monitor thread, across background load levels.
type Fig12Result struct {
	Loads   []float64 // CPU utilization of the interfering load
	Entries map[string]*stats.Sample
	order   []string
}

// RunFig12 reproduces Fig. 12: a periodic remote stream where every eighth
// sample is lost; the timeout routine's entry latency is measured under
// increasing interfering load for both placement variants. The paper
// measures only the DDS-context variant (~100 µs median, outliers near
// 2 ms under light load) and proposes the monitor-thread variant.
// The variant × load grid cells are independent simulations and are sharded
// over the worker pool (workers ≤ 0: GOMAXPROCS; 1: serial).
func RunFig12(samples int, seed int64, loads []float64, workers int) Fig12Result {
	type cell struct {
		variant monitor.RemoteVariant
		load    float64
	}
	cells := make([]cell, 0, 2*len(loads))
	for _, variant := range []monitor.RemoteVariant{monitor.VariantDDSContext, monitor.VariantMonitorThread} {
		for _, load := range loads {
			cells = append(cells, cell{variant, load})
		}
	}
	entries := parallel.MapSlice(workers, cells, func(shard int, c cell) *stats.Sample {
		return runFig12Once(samples, seed, c.variant, c.load)
	})
	res := Fig12Result{Loads: loads, Entries: make(map[string]*stats.Sample, len(cells))}
	for i, c := range cells {
		key := fmt.Sprintf("%s @ %.0f%% load", c.variant, c.load*100)
		res.order = append(res.order, key)
		res.Entries[key] = entries[i]
	}
	return res
}

func runFig12Once(samples int, seed int64, variant monitor.RemoteVariant, load float64) *stats.Sample {
	k := sim.NewKernel()
	d := dds.NewDomain(k, sim.NewRNG(seed))
	d.InterECU = netsim.Config{
		BCRT:   300 * sim.Microsecond,
		Jitter: sim.LogNormalDist{Median: 150 * sim.Microsecond, Sigma: 0.6, Max: 5 * sim.Millisecond},
	}
	ecu1 := d.NewECU("sender-ecu", 2, vclock.Config{Epsilon: 50 * sim.Microsecond})
	ecu2 := d.NewECU("receiver-ecu", 2, vclock.Config{Epsilon: 50 * sim.Microsecond})
	sender := ecu1.NewNode("sender", dds.PrioExecBase)
	receiver := ecu2.NewNode("receiver", dds.PrioExecBase)
	_ = sender

	pub := sender.NewPublisher("data")
	sub := receiver.Subscribe("data", nil, nil)
	lm := monitor.NewLocalMonitor(ecu2)
	period := 100 * sim.Millisecond
	rm := monitor.NewRemoteMonitor(sub, monitor.SegmentConfig{
		Name: "remote", DMon: 10 * sim.Millisecond, Period: period,
		Constraint: weaklyhard.Constraint{M: 8, K: 8},
	}, variant, lm)
	rm.SetLastActivation(uint64(samples - 1))

	// Interfering services: periodic work between the executor and
	// middleware priorities on every core of the receiver ECU.
	if load > 0 {
		loadPeriod := 2 * sim.Millisecond
		cost := sim.Duration(float64(loadPeriod) * load)
		for c := 0; c < ecu2.Proc.Cores; c++ {
			th := ecu2.Proc.NewThread(fmt.Sprintf("interference-%d", c), dds.PrioMiddle+10)
			ecu2.Proc.PeriodicLoad(th, "busy", sim.Time(c)*sim.Time(sim.Millisecond), loadPeriod,
				sim.LogNormalDist{Median: cost, Sigma: 0.2, Max: loadPeriod})
		}
	}

	for i := 0; i < samples; i++ {
		act := uint64(i)
		if act%8 == 7 {
			continue // lost → timeout → exception entry measured
		}
		k.At(sim.Time(i)*sim.Time(period), func() { pub.Publish(act, nil, 256) })
	}
	horizon := sim.Time(samples)*sim.Time(period) + sim.Time(200*sim.Millisecond)
	k.At(horizon, rm.Stop)
	k.RunUntil(horizon.Add(sim.Second))

	return rm.Stats().DetectionLatencies()
}

// Report prints the entry-latency rows per variant and load.
func (r Fig12Result) Report(w io.Writer) {
	section(w, "Figure 12 — Exception entry latency of remote monitoring",
		"Deadline expiry → timeout routine entry, per timer placement and load.\n"+
			"Paper (DDS context, low load): ~100 µs typical with outliers to ~2 ms;\n"+
			"more load worsens it. Forwarding to the high-priority monitor thread\n"+
			"keeps the entry latency small and bounded.")
	for _, key := range r.order {
		row(w, key, r.Entries[key])
	}
	fmt.Fprintln(w)
	boxes := make([]stats.Boxplot, len(r.order))
	for i, key := range r.order {
		boxes[i] = r.Entries[key].Tukey()
	}
	fmt.Fprint(w, stats.RenderBoxplots(r.order, boxes, 70))
}
