package experiments

import (
	"fmt"
	"io"
	"time"

	"chainmon/internal/shmring"
	"chainmon/internal/stats"
)

// Fig11Result carries the local-monitoring overheads of Fig. 11, measured
// wall-clock on the real ring-buffer/monitor-goroutine implementation.
type Fig11Result struct {
	Activations int
	StartPost   *stats.Sample
	EndPost     *stats.Sample
	MonLatency  *stats.Sample
	MonExec     *stats.Sample
	Exceptions  int
	OK          int
}

// RunFig11 drives the real shared-memory monitoring path for the given
// number of activations on two segments (objects and ground, as on ECU2).
// Roughly a fifth of the activations time out so both the OK path and the
// exception path are exercised. segmentWork is the simulated distance
// between start and end event; the deadline leaves generous headroom above
// it because time.Sleep on a non-realtime kernel overshoots by tens to
// hundreds of microseconds.
func RunFig11(activations int, segmentWork time.Duration) Fig11Result {
	deadline := 4*segmentWork + 10*time.Millisecond
	mon := shmring.NewMonitor()
	exc := make(chan uint64, 2*activations+2)
	objects := mon.AddSegment("objects", deadline, 1024, func(act uint64, _ time.Duration) {
		exc <- act
	})
	ground := mon.AddSegment("ground", deadline, 1024, nil)
	mon.Start()

	for i := 0; i < activations; i++ {
		act := uint64(i)
		objects.PostStart(act)
		ground.PostStart(act)
		if i%5 == 4 {
			// Timeout case: the end event arrives well after the
			// deadline, so the exception fires regardless of timer and
			// sleep overshoot on the test machine.
			time.Sleep(deadline + 10*time.Millisecond)
		} else {
			time.Sleep(segmentWork)
		}
		objects.PostEnd(act)
		ground.PostEnd(act)
	}
	// Let the last deadlines expire before stopping.
	time.Sleep(deadline + 4*segmentWork)
	mon.Stop()

	mo := objects.Measurements()
	mg := ground.Measurements()
	r := Fig11Result{Activations: activations}
	r.StartPost = stats.FromDurations(append(mo.StartPost, mg.StartPost...))
	r.EndPost = stats.FromDurations(append(mo.EndPost, mg.EndPost...))
	r.MonLatency = stats.FromDurations(append(mo.MonLatency, mg.MonLatency...))
	r.MonExec = stats.FromDurations(mo.ScanExec)
	r.Exceptions = mo.Exceptions + mg.Exceptions
	r.OK = mo.OK + mg.OK
	return r
}

// Report prints the four Fig. 11 rows.
func (r Fig11Result) Report(w io.Writer) {
	section(w, "Figure 11 — Measured overheads for local segment monitoring (real, wall clock)",
		fmt.Sprintf("%d activations on two segments through the wait-free ring buffers and\n"+
			"the monitor goroutine (%d ok / %d exceptions).\n"+
			"Paper: posting overheads of a few tens of µs (worst < 100 µs); monitor\n"+
			"latency below ~200 µs.", r.Activations, r.OK, r.Exceptions))
	row(w, "start-event overhead", r.StartPost)
	row(w, "end-event overhead", r.EndPost)
	row(w, "monitor latency", r.MonLatency)
	row(w, "monitor execution time", r.MonExec)
}
