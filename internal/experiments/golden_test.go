package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// TestFig9DumpGolden pins the exact CSV dump of a small Fig. 9/10 run.
// The experiment runs entirely in virtual time, so the dump is
// bit-for-bit deterministic for a fixed (frames, seed); any drift in the
// simulator, the monitor stack, or the CSV format shows up as a diff
// here. Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestFig9DumpGolden -update
func TestFig9DumpGolden(t *testing.T) {
	dir := t.TempDir()
	if err := DumpCSV(dir, RunFig9(30, 3, 1).Samples()); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString("== " + name + " ==\n")
		b.Write(data)
	}
	got := b.String()

	golden := filepath.Join("testdata", "fig9_dump.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to generate): %v", err)
	}
	if got != string(want) {
		t.Errorf("dump output drifted from %s (%d vs %d bytes);\n"+
			"first differing line: %s\nif the change is intended, rerun with -update",
			golden, len(got), len(want), firstDiffLine(got, string(want)))
	}
}

func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return al[i] + " != " + bl[i]
		}
	}
	return "(outputs are a prefix of one another)"
}
