package experiments

import (
	"bytes"
	"strings"
	"testing"

	"chainmon/internal/sim"
)

func TestEpsilonAblation(t *testing.T) {
	rows := RunEpsilonAblation(200, 7, []sim.Duration{
		0, 50 * sim.Microsecond, 200 * sim.Microsecond, 500 * sim.Microsecond,
	}, 2)
	for _, r := range rows {
		// The paper's formula (ε included) never produces false positives.
		if r.CompensatedFalsePos != 0 {
			t.Errorf("ε=%v: %d false positives despite the ε term", r.Epsilon, r.CompensatedFalsePos)
		}
	}
	// Without the ε term, large clock errors must produce false positives.
	last := rows[len(rows)-1]
	if last.UncompensatedFalsePos == 0 {
		t.Errorf("ε=%v without compensation produced no false positives — ε term untested", last.Epsilon)
	}
	// And at ε=0 both variants agree (no error to compensate).
	if rows[0].UncompensatedFalsePos != 0 {
		t.Errorf("ε=0 produced %d false positives", rows[0].UncompensatedFalsePos)
	}
	var buf bytes.Buffer
	ReportEpsilonAblation(&buf, rows)
	if !strings.Contains(buf.String(), "ε term") {
		t.Error("missing report")
	}
}

func TestDeadlineSweepMonotone(t *testing.T) {
	rows := RunDeadlineSweep(200, 8, []sim.Duration{
		60 * sim.Millisecond, 100 * sim.Millisecond, 140 * sim.Millisecond,
	}, 2)
	for i := 1; i < len(rows); i++ {
		if rows[i].ObjectsMisses > rows[i-1].ObjectsMisses {
			t.Errorf("objects misses rose with a looser deadline: %d@%v → %d@%v",
				rows[i-1].ObjectsMisses, rows[i-1].DMon, rows[i].ObjectsMisses, rows[i].DMon)
		}
		if rows[i].GroundMisses > rows[i-1].GroundMisses {
			t.Errorf("ground misses rose with a looser deadline")
		}
	}
	// The monitored latency cap follows the deadline.
	for _, r := range rows {
		if r.MaxLatency > r.DMon+5*sim.Millisecond {
			t.Errorf("max latency %v exceeds deadline %v bound", r.MaxLatency, r.DMon)
		}
	}
	var buf bytes.Buffer
	ReportDeadlineSweep(&buf, rows)
	if !strings.Contains(buf.String(), "d_mon") {
		t.Error("missing report")
	}
}

func TestMigrationAblation(t *testing.T) {
	rows := RunMigrationAblation(300, 10, 1)
	if len(rows) != 3 {
		t.Fatal("want three rows")
	}
	global, colocated := rows[0], rows[2]
	for _, r := range rows {
		if r.Activations < 290 {
			t.Fatalf("%s lost activations: %d", r.Scheduling, r.Activations)
		}
	}
	// Colocating the heavy services on one core must lengthen the tail
	// dramatically relative to free migration.
	if colocated.ObjectsP99 <= global.ObjectsP99 {
		t.Errorf("colocated p99 %v not worse than global %v", colocated.ObjectsP99, global.ObjectsP99)
	}
	if colocated.ObjectsMisses <= global.ObjectsMisses {
		t.Errorf("colocated misses %d not worse than global %d",
			colocated.ObjectsMisses, global.ObjectsMisses)
	}
	var buf bytes.Buffer
	ReportMigrationAblation(&buf, rows)
	if !strings.Contains(buf.String(), "colocated") {
		t.Error("missing report")
	}
}

func TestOrderAblationFlipsGap(t *testing.T) {
	rows := RunOrderAblation(300, 9, 1)
	if len(rows) != 2 {
		t.Fatal("want two rows")
	}
	paper, flipped := rows[0], rows[1]
	if paper.JointCount == 0 || flipped.JointCount == 0 {
		t.Fatal("no joint exceptions observed")
	}
	if paper.MeanJointGap <= 0 {
		t.Errorf("objects-first: ground should enter later (gap %v)", paper.MeanJointGap)
	}
	if flipped.MeanJointGap >= 0 {
		t.Errorf("ground-first: objects should enter later (gap %v)", flipped.MeanJointGap)
	}
	var buf bytes.Buffer
	ReportOrderAblation(&buf, rows)
	if !strings.Contains(buf.String(), "order") {
		t.Error("missing report")
	}
}
