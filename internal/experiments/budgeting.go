package experiments

import (
	"fmt"
	"io"

	"chainmon/internal/budget"
	"chainmon/internal/perception"
	"chainmon/internal/rta"
	"chainmon/internal/sim"
	"chainmon/internal/stats"
	"chainmon/internal/trace"
	"chainmon/internal/weaklyhard"
)

// BudgetCell is one entry of the schedulability table: the minimum feasible
// deadline assignment for a (m,k) constraint and an end-to-end budget.
type BudgetCell struct {
	Constraint  weaklyhard.Constraint
	Be2e        sim.Duration
	Schedulable bool
	Sum         sim.Duration
	Deadlines   []sim.Duration
}

// BudgetResult is the Section III-C experiment output.
type BudgetResult struct {
	SegmentNames []string
	TraceLen     int
	DEx          sim.Duration
	Cells        []BudgetCell
	// E2E is the recorded end-to-end latency distribution of the chain
	// (front lidar publication → objects reception), for comparing the
	// budgeted deadline sums against what the chain actually needs.
	E2E *stats.Sample
}

// RunBudgeting reproduces the Section III-C budgeting flow end to end:
// record an unmonitored trace of the perception chain (fusion local segment,
// fused remote segment, objects local segment), extend the latencies by
// d_ex, and solve the constraint satisfaction problem (Eqs. 2–7, with
// propagation p = 1) across a grid of (m,k) constraints and end-to-end
// budgets.
func RunBudgeting(frames int, seed int64) BudgetResult {
	cfg := perception.DefaultConfig()
	cfg.Frames = frames
	cfg.Seed = seed
	cfg.Monitored = false
	cfg.Record = true
	s := perception.Build(cfg)
	s.Run()
	tr := s.Recorder.Trace()

	segs := []string{perception.SegFusionFront, perception.SegFusedRemote, perception.SegObjectsLocal}
	aligned := alignSegments(tr, segs)

	// d_ex from analysis, per the paper's footnote 1: the exception
	// handlers are safety-critical, so their WCRT on the monitor thread is
	// bounded analytically (handlers of both evaluation segments plus the
	// monitor's scan work, FIFO at the same priority), then rounded up.
	handlerSet := rta.MonitorHandlerSet{
		ScanWCET:   150 * sim.Microsecond,
		ScanPeriod: 10 * sim.Millisecond,
		Handlers: []rta.Task{
			{Name: "objects", WCET: 200 * sim.Microsecond, Period: cfg.Period},
			{Name: "ground", WCET: 200 * sim.Microsecond, Period: cfg.Period},
		},
	}
	dEx := sim.Millisecond // fallback
	if _, bound, err := handlerSet.DEx(); err == nil {
		// Round the analytical bound up to a whole 100 µs for reporting.
		dEx = (bound/sim.Duration(100*sim.Microsecond) + 1) * 100 * sim.Microsecond
	}

	res := BudgetResult{SegmentNames: segs, DEx: dEx}
	if e2e := tr.Segment("e2e/front-objects"); e2e != nil {
		res.E2E = e2e.Sample()
	}
	if len(aligned) == 0 || len(aligned[0]) == 0 {
		return res
	}
	res.TraceLen = len(aligned[0])

	constraints := []weaklyhard.Constraint{
		{M: 0, K: 10}, {M: 1, K: 10}, {M: 2, K: 10}, {M: 3, K: 10}, {M: 5, K: 10},
	}
	budgets := []sim.Duration{150 * sim.Millisecond, 250 * sim.Millisecond, 400 * sim.Millisecond, 800 * sim.Millisecond}
	for _, c := range constraints {
		for _, be2e := range budgets {
			p := budget.Problem{
				DEx:        int64(dEx),
				Be2e:       int64(be2e),
				Bseg:       int64(cfg.Period) * 4, // throughput cap: pipeline depth 4
				Constraint: c,
			}
			for i, name := range segs {
				p.Segments = append(p.Segments, budget.SegmentInput{
					Name: name, Latencies: aligned[i], Propagation: 1,
				})
			}
			ok, a := budget.Schedulable(p)
			cell := BudgetCell{Constraint: c, Be2e: be2e, Schedulable: ok}
			if ok {
				cell.Sum = sim.Duration(a.Sum)
				for _, d := range a.Deadlines {
					cell.Deadlines = append(cell.Deadlines, sim.Duration(d))
				}
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res
}

// alignSegments returns the latency series of the named segments restricted
// to the activations every segment recorded, in activation order.
func alignSegments(tr *trace.Trace, names []string) [][]int64 {
	common := map[uint64]int{}
	for _, name := range names {
		st := tr.Segment(name)
		if st == nil {
			return nil
		}
		for _, a := range st.Activations {
			common[a]++
		}
	}
	out := make([][]int64, len(names))
	for i, name := range names {
		st := tr.Segment(name)
		for j, a := range st.Activations {
			if common[a] == len(names) {
				out[i] = append(out[i], int64(st.Latencies[j]))
			}
		}
	}
	return out
}

// Report prints the schedulability table.
func (r BudgetResult) Report(w io.Writer) {
	section(w, "Section III-C — Trace-based segment deadline budgeting (Eqs. 2–7)",
		fmt.Sprintf("Recorded %d aligned activations for segments %v; extended by\n"+
			"d_ex = %v (worst-case exception-handling response time from\n"+
			"fixed-priority analysis per footnote 1, rounded up); propagation p = 1\n"+
			"for every segment. Each cell is the minimum deadline assignment found\n"+
			"(greedy heuristic verified against Eqs. 5–7, exact branch-and-bound\n"+
			"fallback).", r.TraceLen, r.SegmentNames, r.DEx))
	fmt.Fprintf(w, "%-8s %-10s %-14s %-14s %s\n", "(m,k)", "B_e2e", "schedulable", "Σd", "deadlines")
	for _, c := range r.Cells {
		if c.Schedulable {
			fmt.Fprintf(w, "%-8s %-10v %-14v %-14v %v\n", c.Constraint, c.Be2e, true, c.Sum, c.Deadlines)
		} else {
			fmt.Fprintf(w, "%-8s %-10v %-14v %-14s %s\n", c.Constraint, c.Be2e, false, "-", "-")
		}
	}
	if r.E2E != nil && r.E2E.Len() > 0 {
		fmt.Fprintf(w, "\nrecorded end-to-end latency (front lidar → objects at plan):\n%s\n",
			r.E2E.Tukey().DurationRow("e2e/front-objects"))
	}
}
