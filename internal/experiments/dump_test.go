package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chainmon/internal/stats"
)

func TestDumpCSVWritesOneFilePerSample(t *testing.T) {
	dir := t.TempDir()
	s := stats.FromFloats([]float64{3, 1, 2})
	err := DumpCSV(dir, map[string]*stats.Sample{
		"alpha": s,
		"beta":  stats.NewSample(),
		"nil":   nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "alpha.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 || lines[0] != "latency_ns" {
		t.Fatalf("alpha.csv = %q", string(data))
	}
	// Values are the sorted sample.
	if lines[1] != "1" || lines[3] != "3" {
		t.Errorf("values = %v", lines[1:])
	}
	if _, err := os.Stat(filepath.Join(dir, "beta.csv")); err != nil {
		t.Error("empty sample should still produce a file")
	}
	if _, err := os.Stat(filepath.Join(dir, "nil.csv")); err == nil {
		t.Error("nil sample should be skipped")
	}
}

func TestDumpCSVCreatesNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b")
	if err := DumpCSV(dir, map[string]*stats.Sample{"x": stats.FromFloats([]float64{1})}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "x.csv")); err != nil {
		t.Error("nested directory not created")
	}
}

func TestSampleAccessors(t *testing.T) {
	r := Fig9Result{
		ObjectsUnmon: stats.NewSample(), GroundUnmon: stats.NewSample(),
		ObjectsMon: stats.NewSample(), GroundMon: stats.NewSample(),
		ObjectsExc: stats.NewSample(), GroundExc: stats.NewSample(),
		ObjectsDetect: stats.NewSample(), GroundDetect: stats.NewSample(),
	}
	if len(r.Samples()) != 8 {
		t.Errorf("fig9 samples = %d", len(r.Samples()))
	}
	r11 := Fig11Result{
		StartPost: stats.NewSample(), EndPost: stats.NewSample(),
		MonLatency: stats.NewSample(), MonExec: stats.NewSample(),
	}
	if len(r11.Samples()) != 4 {
		t.Errorf("fig11 samples = %d", len(r11.Samples()))
	}
	r12 := Fig12Result{Entries: map[string]*stats.Sample{"a b": stats.NewSample()}, order: []string{"a b"}}
	for name := range r12.Samples() {
		if strings.ContainsAny(name, " %/") {
			t.Errorf("unsanitized dump name %q", name)
		}
	}
}
