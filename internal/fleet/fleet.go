// Package fleet scales the single-vehicle perception simulation to a
// population: N independent vehicle sims are instantiated from one base
// scenario, each parameter-jittered by a seeded RNG (clock quality, link
// BCRT and jitter, executor load, frame period, loss), sharded across the
// work-stealing pool of internal/parallel and merged in vehicle order — a
// parallel fleet run produces output byte-identical to a serial one.
//
// Vehicle randomness uses seed splitting, not a shared RNG stream: the seed
// of vehicle i is a pure hash of (fleet seed, i), so growing the fleet from
// N to N+1 vehicles never perturbs vehicles 0..N−1 and any vehicle can be
// re-simulated in isolation from its index alone.
//
// On top of the per-vehicle runs the package aggregates fleet-level
// results: fleet-wide and per-vehicle deadline-miss rates (p50/p95/p99/max
// via internal/stats), per-fault-class breakdowns reusing the
// internal/faultinject campaigns, Prometheus rollups through
// internal/telemetry, and a saturation analyzer that binary-searches the
// load multiplier at which the monitored fleet starts missing deadlines.
package fleet

import (
	"fmt"

	"chainmon/internal/blame"
	"chainmon/internal/faultinject"
	"chainmon/internal/lidar"
	"chainmon/internal/monitor"
	"chainmon/internal/netsim"
	"chainmon/internal/parallel"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
)

// JitterSpec declares the relative jitter bound of every per-vehicle
// parameter: a field value j scales the base parameter by a factor drawn
// uniformly from [1−j, 1+j). All fields must lie in [0, 1) so every scale
// stays positive; Uniform(j) sets them all to the same fraction (the
// -fleet-jitter flag).
type JitterSpec struct {
	// ClockEpsilon jitters the clock synchronization error bound ε
	// (clock quality varies across the fleet's PTP hardware).
	ClockEpsilon float64 `json:"clock_epsilon"`
	// LinkBCRT jitters the inter-ECU link's best-case response time.
	LinkBCRT float64 `json:"link_bcrt"`
	// LinkJitter jitters the link's response-time jitter distribution
	// (median, shift and truncation scale together; the shape is kept).
	LinkJitter float64 `json:"link_jitter"`
	// Period jitters the lidar frame period (OEM variants ship different
	// sensor rates).
	Period float64 `json:"period"`
	// Load jitters the execution-cost model of every service on the
	// vehicle (slower or faster compute platforms).
	Load float64 `json:"load"`
	// Loss jitters the inter-ECU message loss probability.
	Loss float64 `json:"loss"`
}

// Uniform returns a spec with every field set to the same fraction.
func Uniform(j float64) JitterSpec {
	return JitterSpec{ClockEpsilon: j, LinkBCRT: j, LinkJitter: j, Period: j, Load: j, Loss: j}
}

// Validate checks every fraction is in [0, 1).
func (s JitterSpec) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"clock_epsilon", s.ClockEpsilon}, {"link_bcrt", s.LinkBCRT},
		{"link_jitter", s.LinkJitter}, {"period", s.Period},
		{"load", s.Load}, {"loss", s.Loss},
	} {
		if f.v < 0 || f.v >= 1 {
			return fmt.Errorf("fleet: jitter fraction %s=%g outside [0,1)", f.name, f.v)
		}
	}
	return nil
}

// VehicleSeed is the pure seed split: a splitmix64-style hash of the fleet
// seed and the vehicle index. No RNG state is shared between vehicles, so
// the seed of vehicle i does not depend on how many vehicles exist — the
// regression the determinism battery pins.
func VehicleSeed(fleetSeed int64, vehicle int) int64 {
	z := uint64(fleetSeed) + uint64(vehicle+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// VehicleParams are the concrete jittered multipliers of one vehicle, all
// drawn from the vehicle's own derived RNG. Every scale lies in
// [1−j, 1+j) for its spec fraction j.
type VehicleParams struct {
	Vehicle int   `json:"vehicle"`
	Seed    int64 `json:"seed"`

	ClockEps   float64 `json:"clock_eps_scale"`
	LinkBCRT   float64 `json:"link_bcrt_scale"`
	LinkJitter float64 `json:"link_jitter_scale"`
	Period     float64 `json:"period_scale"`
	Load       float64 `json:"load_scale"`
	Loss       float64 `json:"loss_scale"`
}

// DeriveParams draws the jitter multipliers of one vehicle. The draw order
// is fixed (clock, BCRT, link jitter, period, load, loss) and every field
// consumes exactly one variate even at fraction 0, so enabling jitter on
// one parameter never changes the draw of another.
func DeriveParams(fleetSeed int64, vehicle int, spec JitterSpec) VehicleParams {
	rng := sim.NewRNG(VehicleSeed(fleetSeed, vehicle)).Derive("fleet-jitter")
	scale := func(j float64) float64 { return 1 + rng.Uniform(-j, j) }
	return VehicleParams{
		Vehicle:    vehicle,
		Seed:       VehicleSeed(fleetSeed, vehicle),
		ClockEps:   scale(spec.ClockEpsilon),
		LinkBCRT:   scale(spec.LinkBCRT),
		LinkJitter: scale(spec.LinkJitter),
		Period:     scale(spec.Period),
		Load:       scale(spec.Load),
		Loss:       scale(spec.Loss),
	}
}

func scaleDur(d sim.Duration, s float64) sim.Duration {
	return sim.Duration(float64(d) * s)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ScaleDist scales a duration distribution by a factor, preserving its
// shape: the location parameters (and truncation bounds) scale, the
// shape parameters (σ) do not. Unknown distribution types are returned
// unchanged — the jitter spec only promises to jitter what it can model.
func ScaleDist(d sim.Dist, s float64) sim.Dist {
	switch v := d.(type) {
	case sim.Constant:
		return sim.Constant(scaleDur(sim.Duration(v), s))
	case sim.UniformDist:
		return sim.UniformDist{Lo: scaleDur(v.Lo, s), Hi: scaleDur(v.Hi, s)}
	case sim.NormalDist:
		return sim.NormalDist{Mean: scaleDur(v.Mean, s), Stddev: scaleDur(v.Stddev, s),
			Min: scaleDur(v.Min, s), Max: scaleDur(v.Max, s)}
	case sim.LogNormalDist:
		return sim.LogNormalDist{Median: scaleDur(v.Median, s), Sigma: v.Sigma,
			Shift: scaleDur(v.Shift, s), Max: scaleDur(v.Max, s)}
	default:
		return d
	}
}

// ScaleCosts multiplies every execution-cost coefficient of the model by
// the load factor; the multiplicative jitter shape (σ) is preserved. This
// is also the knob the saturation analyzer turns.
func ScaleCosts(c lidar.CostModel, s float64) lidar.CostModel {
	c.FusePerPoint = scaleDur(c.FusePerPoint, s)
	c.ClassifyPerPoint = scaleDur(c.ClassifyPerPoint, s)
	c.ClusterPerPoint = scaleDur(c.ClusterPerPoint, s)
	c.PlanPerObject = scaleDur(c.PlanPerObject, s)
	c.RenderPerPoint = scaleDur(c.RenderPerPoint, s)
	c.BaseCost = scaleDur(c.BaseCost, s)
	return c
}

// Apply builds the vehicle's perception configuration from the base
// scenario: the vehicle seed replaces the base seed and every jittered
// parameter is scaled by its multiplier. The base is not mutated.
func (p VehicleParams) Apply(base perception.Config) perception.Config {
	cfg := base
	cfg.Seed = p.Seed
	cfg.ClockEpsilon = scaleDur(base.ClockEpsilon, p.ClockEps)
	cfg.Period = scaleDur(base.Period, p.Period)
	cfg.Network = netsim.Config{
		BCRT:            scaleDur(base.Network.BCRT, p.LinkBCRT),
		Jitter:          ScaleDist(base.Network.Jitter, p.LinkJitter),
		BytesPerSecond:  base.Network.BytesPerSecond,
		LossProb:        clamp01(base.Network.LossProb * p.Loss),
		RetransmitDelay: base.Network.RetransmitDelay,
	}
	cfg.Costs = ScaleCosts(base.Costs, p.Load)
	return cfg
}

// SegmentCount is the per-segment verdict tally of one vehicle.
type SegmentCount struct {
	Name        string `json:"name"`
	Activations int    `json:"activations"`
	OK          int    `json:"ok"`
	Recovered   int    `json:"recovered"`
	Missed      int    `json:"missed"`
}

// VehicleResult is the retained outcome of one vehicle sim. The system
// itself is discarded on the worker, so a thousand-vehicle fleet does not
// hold a thousand kernels alive.
type VehicleResult struct {
	Vehicle  int           `json:"vehicle"`
	Seed     int64         `json:"seed"`
	Campaign string        `json:"campaign,omitempty"`
	Params   VehicleParams `json:"params"`

	Activations int     `json:"activations"`
	OK          int     `json:"ok"`
	Recovered   int     `json:"recovered"`
	Missed      int     `json:"missed"`
	MissRate    float64 `json:"miss_rate"` // exceptions / activations

	Segments []SegmentCount `json:"segments"`

	// Blame is the vehicle's compact miss-attribution rollup (nil unless
	// the fleet ran with Config.Blame).
	Blame *blame.Summary `json:"blame,omitempty"`

	// Oracle cross-check outcome (OracleChecked false when disabled).
	OracleChecked  bool     `json:"oracle_checked,omitempty"`
	FalseNegatives int      `json:"false_negatives,omitempty"`
	FalsePositives int      `json:"false_positives,omitempty"`
	Violations     []string `json:"violations,omitempty"`

	Err string `json:"err,omitempty"`
}

// Exceptions returns the vehicle's temporal-exception count.
func (v VehicleResult) Exceptions() int { return v.Recovered + v.Missed }

// monitoredStatsInto lists the vehicle's monitored segments in a fixed
// order, so the merged report is stable regardless of build internals. The
// buffer is the caller's scratch, reused across vehicles on one worker.
func monitoredStatsInto(buf []*monitor.SegmentStats, sys *perception.System) []*monitor.SegmentStats {
	out := buf[:0]
	if sys.RemFront != nil {
		out = append(out, sys.RemFront.Stats(), sys.RemRear.Stats(),
			sys.FusionFront.Stats(), sys.FusionRear.Stats(), sys.RemFused.Stats())
	}
	out = append(out, sys.SegObjects.Stats(), sys.SegGround.Stats())
	return out
}

// VehicleArena is the per-worker reusable scratch of a fleet run (see
// parallel.ForEachArena): buffers every vehicle overwrites in full, never
// state that flows between vehicles.
type VehicleArena struct {
	stats []*monitor.SegmentStats
}

// NewVehicleArena creates an empty arena.
func NewVehicleArena() *VehicleArena { return &VehicleArena{} }

// RunVehicle builds and runs one jittered vehicle sim: the base scenario
// under the vehicle's parameters, with an optional fault campaign and an
// optional ground-truth soundness oracle (requires a monitored full-chain
// base). Everything is constructed from the vehicle seed, so calls are
// independent and can run on any worker in any order.
func RunVehicle(base perception.Config, p VehicleParams, camp faultinject.Campaign, withOracle bool) VehicleResult {
	return NewVehicleArena().RunVehicle(base, p, camp, withOracle)
}

// RunVehicle runs one vehicle reusing the arena's scratch buffers.
func (a *VehicleArena) RunVehicle(base perception.Config, p VehicleParams, camp faultinject.Campaign, withOracle bool) VehicleResult {
	return a.runVehicle(base, p, camp, withOracle, false)
}

func (a *VehicleArena) runVehicle(base perception.Config, p VehicleParams, camp faultinject.Campaign, withOracle, withBlame bool) VehicleResult {
	res := VehicleResult{Vehicle: p.Vehicle, Seed: p.Seed, Campaign: camp.Name, Params: p}
	cfg := p.Apply(base)
	sys := perception.Build(cfg)

	// Per-vehicle blame: a private sink feeds a private engine through the
	// flight-recorder observer; the vehicle retains only the compact
	// Summary, so fleet memory stays flat in vehicle count. The summary is
	// a pure function of the vehicle seed, so the fleet rollup is
	// byte-identical between serial and parallel runs.
	var eng *blame.Engine
	var sink *telemetry.Sink
	if withBlame {
		sink = telemetry.NewSink(telemetry.DefaultTrackCap)
		eng = blame.New(blame.Options{})
		eng.SetTimebase("sim")
		sink.Rec.SetObserver(eng.Feed)
		perception.AttachTelemetry(sys, sink)
	}

	var orc *faultinject.Oracle
	if withOracle {
		orc = faultinject.ForPerception(sys, camp)
	}
	if len(camp.Faults) > 0 {
		if err := faultinject.NewInjector(sim.NewRNG(p.Seed)).Apply(camp, faultinject.TargetsOf(sys)); err != nil {
			res.Err = fmt.Sprintf("apply campaign %q: %v", camp.Name, err)
			return res
		}
	}
	sys.Run()

	a.stats = monitoredStatsInto(a.stats, sys)
	res.Segments = make([]SegmentCount, 0, len(a.stats))
	for _, st := range a.stats {
		ok, rec, miss := st.Counts()
		res.Segments = append(res.Segments, SegmentCount{
			Name: st.Name, Activations: ok + rec + miss, OK: ok, Recovered: rec, Missed: miss,
		})
		res.Activations += ok + rec + miss
		res.OK += ok
		res.Recovered += rec
		res.Missed += miss
	}
	if res.Activations > 0 {
		res.MissRate = float64(res.Exceptions()) / float64(res.Activations)
	}
	if eng != nil {
		eng.Flush()
		s := eng.Summarize(blame.RecorderResolvers(sink.Rec))
		res.Blame = &s
	}

	if orc != nil {
		res.OracleChecked = true
		rep := orc.Check()
		for _, v := range rep.Violations {
			switch v.Kind {
			case faultinject.KindFalseNegative, faultinject.KindLostNotDetected:
				res.FalseNegatives++
			case faultinject.KindFalsePositive:
				res.FalsePositives++
			}
			res.Violations = append(res.Violations, v.String())
		}
	}
	return res
}

// Config parameterizes a fleet run.
type Config struct {
	// Size is the number of vehicles.
	Size int
	// Seed is the fleet seed every vehicle seed is split from.
	Seed int64
	// Jitter declares the per-vehicle parameter jitter bounds.
	Jitter JitterSpec
	// Base is the scenario every vehicle is jittered from.
	Base perception.Config
	// Mix is an optional fault-class mix: vehicle i runs campaign
	// Mix[i mod len(Mix)]. An empty-fault campaign is a nominal slot.
	// Assignment is a pure function of the index, so growing the fleet
	// never reassigns existing vehicles.
	Mix []faultinject.Campaign
	// Oracle runs the ground-truth soundness oracle on every vehicle
	// (requires a monitored full-chain Base).
	Oracle bool
	// Blame attaches a per-vehicle miss-attribution engine and rolls the
	// per-vehicle summaries up into the fleet result. Off by default: it
	// attaches full telemetry to every vehicle sim, which nominal fleet
	// sweeps don't pay for.
	Blame bool
	// Workers is the worker-pool size (≤0: GOMAXPROCS, 1: serial).
	Workers int
}

// Validate checks the fleet configuration.
func (c Config) Validate() error {
	if c.Size <= 0 {
		return fmt.Errorf("fleet: size %d must be positive", c.Size)
	}
	if err := c.Jitter.Validate(); err != nil {
		return err
	}
	if c.Oracle && (!c.Base.Monitored || !c.Base.FullChain) {
		return fmt.Errorf("fleet: the oracle needs a monitored full-chain base scenario")
	}
	for _, m := range c.Mix {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("fleet: mix campaign %q: %w", m.Name, err)
		}
	}
	return nil
}

// Run executes the fleet: every vehicle sim is one shard of the work-
// stealing pool and results are merged in vehicle order, so the returned
// Result (and everything rendered from it) is byte-identical between
// serial and parallel runs.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	vehicles := parallel.MapArena(cfg.Workers, cfg.Size, NewVehicleArena,
		func(a *VehicleArena, i int) VehicleResult {
			p := DeriveParams(cfg.Seed, i, cfg.Jitter)
			var camp faultinject.Campaign
			if len(cfg.Mix) > 0 {
				camp = cfg.Mix[i%len(cfg.Mix)]
			}
			return a.runVehicle(cfg.Base, p, camp, cfg.Oracle, cfg.Blame)
		})
	return aggregate(cfg, vehicles), nil
}

// MixByName resolves a list of campaign names against the chaos-matrix
// campaign set of internal/faultinject. The name "nominal" (or "") maps to
// a fault-free slot, so mixed fleets can contain healthy vehicles.
func MixByName(names []string) ([]faultinject.Campaign, error) {
	all := faultinject.AllCampaigns()
	mix := make([]faultinject.Campaign, 0, len(names))
	for _, n := range names {
		if n == "" || n == "nominal" {
			mix = append(mix, faultinject.Campaign{Name: "nominal"})
			continue
		}
		found := false
		for _, e := range all {
			if e.Campaign.Name == n {
				mix = append(mix, e.Campaign)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fleet: unknown campaign %q in fault mix", n)
		}
	}
	return mix, nil
}
