package fleet

import (
	"math"
	"testing"

	"chainmon/internal/perception"
	"chainmon/internal/sim"
)

// TestFindKneeSyntheticCurve checks the analyzer against a monotone curve
// with a known knee: f(L) = L²/100, target 5% → the largest grid load with
// f ≤ 0.05 is 2.0 (2.25² / 100 = 0.050625 > 0.05).
func TestFindKneeSyntheticCurve(t *testing.T) {
	evals := 0
	knee, err := FindKnee(SaturationConfig{Lo: 1, Hi: 4, Step: 0.25, Target: 0.05},
		func(load float64) float64 { evals++; return load * load / 100 })
	if err != nil {
		t.Fatal(err)
	}
	if !knee.Bracketed {
		t.Fatalf("knee not bracketed: %+v", knee)
	}
	if math.Abs(knee.Load-2.0) > 1e-12 || math.Abs(knee.NextLoad-2.25) > 1e-12 {
		t.Fatalf("knee at load %g (next %g), want 2.0 (next 2.25)", knee.Load, knee.NextLoad)
	}
	if knee.MissRate > 0.05 || knee.NextMissRate <= 0.05 {
		t.Fatalf("bracket invariant broken: %+v", knee)
	}
	// 12 grid steps: 2 endpoint probes + ~ceil(log2(12)) bisections.
	if evals != knee.Evaluations || evals > 7 {
		t.Fatalf("binary search did %d evaluations (reported %d), expected ≤ 7", evals, knee.Evaluations)
	}
}

// TestFindKneeBracketInvariant is the property test: for seeded random
// monotone staircase curves and random targets, the result load L always
// satisfies miss(L) ≤ target and miss(L+step) > target (or the search
// reports why no such bracket exists).
func TestFindKneeBracketInvariant(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		rng := sim.NewRNG(seed)
		n := 2 + rng.Intn(40)
		sc := SaturationConfig{Lo: 0.5, Hi: 0.5 + float64(n)*0.125, Step: 0.125, Target: rng.Float64() * 0.5}
		// A monotone non-decreasing staircase over the grid.
		rates := make([]float64, n+1)
		acc := 0.0
		for i := range rates {
			acc += rng.Float64() * 0.08
			rates[i] = acc
		}
		eval := func(load float64) float64 {
			i := int(math.Round((load - sc.Lo) / sc.Step))
			return rates[i]
		}
		knee, err := FindKnee(sc, eval)
		switch {
		case err != nil:
			if rates[0] <= sc.Target {
				t.Fatalf("seed %d: spurious saturation error %v with f(lo)=%g ≤ target %g",
					seed, err, rates[0], sc.Target)
			}
		case !knee.Bracketed:
			if rates[n] > sc.Target {
				t.Fatalf("seed %d: unbracketed although f(hi)=%g > target %g", seed, rates[n], sc.Target)
			}
			if math.Abs(knee.Load-sc.Hi) > 1e-12 {
				t.Fatalf("seed %d: unbracketed knee not at Hi: %+v", seed, knee)
			}
		default:
			if knee.MissRate > sc.Target {
				t.Fatalf("seed %d: knee rate %g above target %g", seed, knee.MissRate, sc.Target)
			}
			if knee.NextMissRate <= sc.Target {
				t.Fatalf("seed %d: next rate %g not above target %g — bracket broken",
					seed, knee.NextMissRate, sc.Target)
			}
			if math.Abs(knee.NextLoad-(knee.Load+sc.Step)) > 1e-9 {
				t.Fatalf("seed %d: next load %g is not one step above %g", seed, knee.NextLoad, knee.Load)
			}
			maxEvals := 2 + int(math.Ceil(math.Log2(float64(n)))) + 1
			if knee.Evaluations > maxEvals {
				t.Fatalf("seed %d: %d evaluations for %d grid steps, expected ≤ %d",
					seed, knee.Evaluations, n, maxEvals)
			}
		}
	}
}

func TestFindKneeEdges(t *testing.T) {
	sc := SaturationConfig{Lo: 1, Hi: 2, Step: 0.5, Target: 0.1}
	if _, err := FindKnee(sc, func(float64) float64 { return 0.5 }); err == nil {
		t.Fatal("saturated-below-Lo curve accepted without error")
	}
	knee, err := FindKnee(sc, func(float64) float64 { return 0.0 })
	if err != nil {
		t.Fatal(err)
	}
	if knee.Bracketed || knee.Load != 2 {
		t.Fatalf("never-saturating curve should report the unbracketed top of range, got %+v", knee)
	}
	for _, bad := range []SaturationConfig{
		{Lo: 1, Hi: 1, Step: 0.1, Target: 0.1},
		{Lo: 1, Hi: 2, Step: 0, Target: 0.1},
		{Lo: 1, Hi: 2, Step: 0.1, Target: 1.5},
	} {
		if _, err := FindKnee(bad, func(float64) float64 { return 0 }); err == nil {
			t.Fatalf("invalid saturation config %+v accepted", bad)
		}
	}
}

// TestFleetSaturationKnee is the deterministic end-to-end knee: a small
// jittered fleet of the default vehicle, load swept over [0.3, 1.0] in
// steps of 0.1 against a 2% miss-rate target. The curve was measured
// monotone over this range (≈0% at 0.3–0.4 rising to ≈16% at 1.0), and
// the whole search is seeded, so the knee is pinned exactly.
func TestFleetSaturationKnee(t *testing.T) {
	base := perception.DefaultConfig()
	base.Frames = 60
	cfg := Config{Size: 6, Seed: 11, Jitter: Uniform(0.1), Base: base, Workers: 0}
	knee, err := SaturationSearch(cfg, SaturationConfig{Lo: 0.3, Hi: 1.0, Step: 0.1, Target: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if !knee.Bracketed {
		t.Fatalf("fleet never saturated in range: %+v", knee)
	}
	if knee.MissRate > 0.02 || knee.NextMissRate <= 0.02 {
		t.Fatalf("fleet knee bracket invariant broken: %+v", knee)
	}
	if math.Abs(knee.Load-0.6) > 1e-9 || math.Abs(knee.NextLoad-0.7) > 1e-9 {
		t.Fatalf("fleet knee moved: load %g (next %g), want 0.6 (next 0.7)", knee.Load, knee.NextLoad)
	}
	// The search must be deterministic end to end.
	again, err := SaturationSearch(cfg, SaturationConfig{Lo: 0.3, Hi: 1.0, Step: 0.1, Target: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if knee != again {
		t.Fatalf("saturation search not deterministic:\n%+v\n%+v", knee, again)
	}
}
