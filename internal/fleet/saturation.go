// The saturation analyzer: a bracketed binary search for the load
// multiplier at which the monitored fleet starts missing deadlines beyond
// an acceptable rate. The miss-rate curve of the perception stack is
// monotone in the execution-cost scale (heavier compute can only push more
// activations past their deadlines), which is exactly the shape a binary
// search exploits; the analyzer still verifies its bracket on the two
// final grid points, so a non-monotone eval cannot produce a lying report.
package fleet

import (
	"fmt"
	"math"
	"strings"
)

// SaturationConfig parameterizes a knee search over load multipliers.
type SaturationConfig struct {
	// Lo and Hi bound the searched load-multiplier range; Step is the
	// grid resolution the knee is reported at.
	Lo, Hi, Step float64
	// Target is the acceptable fleet miss rate: the knee is the largest
	// grid load whose miss rate is still ≤ Target.
	Target float64
}

// Validate checks the search range.
func (sc SaturationConfig) Validate() error {
	if sc.Step <= 0 {
		return fmt.Errorf("fleet: saturation step %g must be positive", sc.Step)
	}
	if sc.Hi <= sc.Lo {
		return fmt.Errorf("fleet: saturation range [%g, %g] is empty", sc.Lo, sc.Hi)
	}
	if sc.Target < 0 || sc.Target >= 1 {
		return fmt.Errorf("fleet: saturation target %g outside [0,1)", sc.Target)
	}
	return nil
}

// Knee is the saturation analyzer's report: the largest searched load L
// with miss-rate ≤ target, and the first grid point above it. When
// Bracketed is true the invariant MissRate ≤ Target < NextMissRate holds
// on the evaluated points; when false the whole range stayed below the
// target (the fleet never saturated within [Lo, Hi]).
type Knee struct {
	Target       float64 `json:"target"`
	Load         float64 `json:"load"`
	MissRate     float64 `json:"miss_rate"`
	NextLoad     float64 `json:"next_load,omitempty"`
	NextMissRate float64 `json:"next_miss_rate,omitempty"`
	Bracketed    bool    `json:"bracketed"`
	Evaluations  int     `json:"evaluations"`
}

// Report renders the knee as deterministic text.
func (k Knee) Report() string {
	var b strings.Builder
	if k.Bracketed {
		fmt.Fprintf(&b, "saturation knee: load %.4g miss=%s ≤ target %s < load %.4g miss=%s (%d evaluations)\n",
			k.Load, pct(k.MissRate), pct(k.Target), k.NextLoad, pct(k.NextMissRate), k.Evaluations)
	} else {
		fmt.Fprintf(&b, "saturation: no knee in range — load %.4g miss=%s stays ≤ target %s (%d evaluations)\n",
			k.Load, pct(k.MissRate), pct(k.Target), k.Evaluations)
	}
	return b.String()
}

// FindKnee binary-searches the load grid Lo, Lo+Step, …, Hi for the
// largest load whose evaluated miss rate is ≤ Target. eval must map a load
// multiplier to a miss rate and is assumed monotone non-decreasing;
// evaluations are memoized per grid point, so the search costs
// O(log((Hi−Lo)/Step)) fleet runs.
//
// The returned knee always satisfies the bracket invariant on its own
// evaluations: MissRate ≤ Target, and (when Bracketed) NextMissRate >
// Target with NextLoad = Load + Step on the grid.
func FindKnee(sc SaturationConfig, eval func(load float64) float64) (Knee, error) {
	if err := sc.Validate(); err != nil {
		return Knee{}, err
	}
	n := int(math.Round((sc.Hi - sc.Lo) / sc.Step))
	if n < 1 {
		return Knee{}, fmt.Errorf("fleet: saturation range [%g, %g] holds no step of %g", sc.Lo, sc.Hi, sc.Step)
	}
	grid := func(i int) float64 {
		if i == n {
			return sc.Hi // avoid float drift on the top grid point
		}
		return sc.Lo + float64(i)*sc.Step
	}
	memo := make(map[int]float64)
	evals := 0
	f := func(i int) float64 {
		if v, ok := memo[i]; ok {
			return v
		}
		v := eval(grid(i))
		memo[i] = v
		evals++
		return v
	}

	if f(0) > sc.Target {
		return Knee{Target: sc.Target, Evaluations: evals},
			fmt.Errorf("fleet: already saturated at load %g (miss-rate %.6f > target %.6f)", grid(0), f(0), sc.Target)
	}
	if f(n) <= sc.Target {
		return Knee{
			Target: sc.Target, Load: grid(n), MissRate: f(n),
			Bracketed: false, Evaluations: evals,
		}, nil
	}
	lo, hi := 0, n // f(lo) ≤ target, f(hi) > target — the bracket
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if f(mid) <= sc.Target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return Knee{
		Target: sc.Target,
		Load:   grid(lo), MissRate: f(lo),
		NextLoad: grid(hi), NextMissRate: f(hi),
		Bracketed:   true,
		Evaluations: evals,
	}, nil
}

// SaturationSearch runs FindKnee over real fleet evaluations: each grid
// point spins up a complete fleet whose base cost model is scaled by the
// load multiplier (per-vehicle load jitter still applies on top), and the
// fleet-wide miss rate is the evaluated value. Every evaluation builds its
// fleets from the same seeds, so the search is fully deterministic.
func SaturationSearch(cfg Config, sc SaturationConfig) (Knee, error) {
	if err := cfg.Validate(); err != nil {
		return Knee{}, err
	}
	var runErr error
	knee, err := FindKnee(sc, func(load float64) float64 {
		c := cfg
		c.Base.Costs = ScaleCosts(cfg.Base.Costs, load)
		res, err := Run(c)
		if err != nil {
			runErr = err
			return 1 // poison: saturate immediately
		}
		return res.Fleet.MissRate
	})
	if runErr != nil {
		return Knee{}, runErr
	}
	return knee, err
}
