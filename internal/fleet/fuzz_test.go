package fleet

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"chainmon/internal/perception"
	"chainmon/internal/scenario"
	"chainmon/internal/sim"
)

// inBounds checks a jitter multiplier against its declared spec fraction.
// The bound is [1−j, 1+j) up to floating-point rounding: for sub-ulp j the
// addition 1 + u can round one ulp past 1+j (fuzz-found with j ≈ 5.8e-15),
// so a few ulps of 1.0 are tolerated on either side.
func inBounds(scale, j float64) bool {
	const tol = 1e-15
	return scale >= 1-j-tol && scale <= 1+j+tol
}

// FuzzFleetJitter fuzzes the seed-split jitter derivation: for arbitrary
// fleet seeds, vehicle indices and jitter fractions, every multiplier must
// stay inside its declared [1−j, 1+j) bound, the derivation must be pure
// (same inputs → same params), and the jittered vehicle configuration must
// survive the strict scenario parser round trip — i.e. every fleet vehicle
// is expressible as a valid standalone scenario.
func FuzzFleetJitter(f *testing.F) {
	f.Add(int64(1), 0, 0.1)
	f.Add(int64(7), 3, 0.25)
	f.Add(int64(-99), 1000, 0.0)
	f.Add(int64(1<<62), 123456, 0.9)
	f.Fuzz(func(t *testing.T, fleetSeed int64, vehicle int, jitter float64) {
		if vehicle < 0 {
			vehicle = -(vehicle + 1)
		}
		if math.IsNaN(jitter) || math.IsInf(jitter, 0) {
			jitter = 0
		}
		jitter = math.Abs(math.Mod(jitter, 0.999))
		spec := Uniform(jitter)
		if err := spec.Validate(); err != nil {
			t.Fatalf("clamped spec invalid: %v", err)
		}

		p := DeriveParams(fleetSeed, vehicle, spec)
		if p2 := DeriveParams(fleetSeed, vehicle, spec); p != p2 {
			t.Fatalf("derivation not pure: %+v vs %+v", p, p2)
		}
		for _, s := range []struct {
			name  string
			scale float64
		}{
			{"clock", p.ClockEps}, {"bcrt", p.LinkBCRT}, {"link", p.LinkJitter},
			{"period", p.Period}, {"load", p.Load}, {"loss", p.Loss},
		} {
			if !inBounds(s.scale, jitter) {
				t.Fatalf("%s scale %g outside [1-%g, 1+%g)", s.name, s.scale, jitter, jitter)
			}
		}

		base := perception.DefaultConfig()
		cfg := p.Apply(base)
		if cfg.Period <= 0 || cfg.ClockEpsilon < 0 || cfg.Network.BCRT < 0 {
			t.Fatalf("jittered config degenerate: period=%v eps=%v bcrt=%v",
				cfg.Period, cfg.ClockEpsilon, cfg.Network.BCRT)
		}
		if cfg.Network.LossProb < 0 || cfg.Network.LossProb > 1 {
			t.Fatalf("jittered loss probability %g outside [0,1]", cfg.Network.LossProb)
		}
		if cfg.Seed == 0 {
			// scenario.Apply treats seed 0 as "keep default"; the round
			// trip below cannot represent it. Astronomically rare.
			t.Skip("vehicle seed hashed to zero")
		}

		// Round-trip the jittered vehicle through the strict scenario
		// parser: marshal the expressible fields, re-load, compare.
		file := scenario.File{
			Seed:           cfg.Seed,
			Frames:         cfg.Frames,
			Period:         scenario.Duration(cfg.Period),
			LocalDeadline:  scenario.Duration(cfg.LocalDeadline),
			RemoteDeadline: scenario.Duration(cfg.RemoteDeadline),
			LossProb:       cfg.Network.LossProb,
			ClockEpsilon:   scenario.Duration(cfg.ClockEpsilon),
		}
		enc, err := json.Marshal(file)
		if err != nil {
			t.Fatalf("marshal jittered scenario: %v", err)
		}
		parsed, err := scenario.Load(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("jittered scenario rejected by strict parser: %v\n%s", err, enc)
		}
		if parsed.Seed != cfg.Seed || parsed.Frames != cfg.Frames ||
			parsed.Period != cfg.Period || parsed.ClockEpsilon != cfg.ClockEpsilon {
			t.Fatalf("scenario round trip drifted: got seed=%d frames=%d period=%v eps=%v, want %d/%d/%v/%v",
				parsed.Seed, parsed.Frames, parsed.Period, parsed.ClockEpsilon,
				cfg.Seed, cfg.Frames, cfg.Period, cfg.ClockEpsilon)
		}
		if math.Abs(parsed.Network.LossProb-cfg.Network.LossProb) > 1e-15 {
			t.Fatalf("loss probability drifted: %g vs %g", parsed.Network.LossProb, cfg.Network.LossProb)
		}
	})
}

// TestScaleDistShapes pins the distribution scaling used by the link
// jitter knob: location parameters scale, shapes survive, and the sampled
// values of a scaled distribution respect the scaled truncation.
func TestScaleDistShapes(t *testing.T) {
	ln := sim.LogNormalDist{Median: 200 * sim.Microsecond, Sigma: 0.8, Max: 20 * sim.Millisecond}
	got := ScaleDist(ln, 1.5).(sim.LogNormalDist)
	if got.Median != 300*sim.Microsecond || got.Sigma != 0.8 || got.Max != 30*sim.Millisecond {
		t.Fatalf("lognormal scaled wrong: %+v", got)
	}
	u := ScaleDist(sim.UniformDist{Lo: 10, Hi: 20}, 2).(sim.UniformDist)
	if u.Lo != 20 || u.Hi != 40 {
		t.Fatalf("uniform scaled wrong: %+v", u)
	}
	c := ScaleDist(sim.Constant(100), 0.5).(sim.Constant)
	if sim.Duration(c) != 50 {
		t.Fatalf("constant scaled wrong: %v", c)
	}
	rng := sim.NewRNG(1)
	scaled := ScaleDist(ln, 0.5)
	for i := 0; i < 1000; i++ {
		if v := scaled.Sample(rng); v > 10*sim.Millisecond {
			t.Fatalf("scaled truncation violated: sample %v", v)
		}
	}
}

// TestScaleCostsProportional pins the load knob the saturation analyzer
// turns: every cost coefficient scales linearly, σ stays.
func TestScaleCostsProportional(t *testing.T) {
	base := perception.DefaultConfig().Costs
	c := ScaleCosts(base, 2)
	if c.ClassifyPerPoint != 2*base.ClassifyPerPoint || c.RenderPerPoint != 2*base.RenderPerPoint ||
		c.BaseCost != 2*base.BaseCost || c.JitterSigma != base.JitterSigma {
		t.Fatalf("cost scaling wrong: %+v", c)
	}
	if d := time.Duration(c.PlanPerObject); d != 2*time.Duration(base.PlanPerObject) {
		t.Fatalf("plan cost scaling wrong: %v", d)
	}
}
