package fleet

import (
	"bytes"
	"reflect"
	"testing"

	"chainmon/internal/livestats"
	"chainmon/internal/perception"
	"chainmon/internal/telemetry"
)

// smallBase is the base scenario of the cheap fleet tests: short runs of
// the default two-segment vehicle.
func smallBase(frames int) perception.Config {
	cfg := perception.DefaultConfig()
	cfg.Frames = frames
	return cfg
}

// render flattens everything a fleet run emits — text summary, JSON
// summary and the Prometheus rollup — into one byte slice for the
// determinism comparisons.
func render(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(res.Summary())
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	reg := telemetry.NewRegistry()
	res.Rollup(reg)
	if err := (&telemetry.Sink{Reg: reg}).WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	return buf.Bytes()
}

// TestFleetParallelDeterminism pins the merge contract: a parallel fleet
// run emits byte-identical output (summary, JSON, metrics rollup) to the
// serial run of the same configuration. CI runs this under -race, which
// additionally proves no state is shared between vehicle shards.
func TestFleetParallelDeterminism(t *testing.T) {
	mix, err := MixByName([]string{"nominal", "burst-loss", "latency-shift"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Size: 12, Seed: 7, Jitter: Uniform(0.15),
		Base: smallBase(60), Mix: mix,
	}

	cfg.Workers = 1
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	a, b := render(t, serial), render(t, par)
	if !bytes.Equal(a, b) {
		t.Fatalf("parallel fleet output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestFleetSameSeedSameOutput pins run-to-run determinism: two fleet runs
// of the same seed produce identical bytes.
func TestFleetSameSeedSameOutput(t *testing.T) {
	cfg := Config{Size: 8, Seed: 42, Jitter: Uniform(0.2), Base: smallBase(60), Workers: 2}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(t, r1), render(t, r2); !bytes.Equal(a, b) {
		t.Fatalf("same-seed fleet runs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestFleetSeedSplitRegression pins the seed-splitting contract: growing
// the fleet from N to N+1 vehicles must not perturb vehicles 0..N−1 in any
// way — parameters, seeds or simulation outcomes. A shared RNG stream
// would fail this immediately.
func TestFleetSeedSplitRegression(t *testing.T) {
	const n = 6
	cfg := Config{Size: n, Seed: 99, Jitter: Uniform(0.25), Base: smallBase(60), Workers: 2}
	small, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Size = n + 1
	grown, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(small.Vehicles[i], grown.Vehicles[i]) {
			t.Fatalf("vehicle %d perturbed by adding vehicle %d:\nN  : %+v\nN+1: %+v",
				i, n, small.Vehicles[i], grown.Vehicles[i])
		}
	}
}

// TestVehicleSeedPinned freezes the seed-split hash: silently changing it
// would invalidate every recorded fleet summary, so the derivation is
// pinned on two concrete values.
func TestVehicleSeedPinned(t *testing.T) {
	got0, got1 := VehicleSeed(1, 0), VehicleSeed(1, 1)
	if got0 == got1 {
		t.Fatalf("vehicle seeds collide: %d", got0)
	}
	want0, want1 := VehicleSeed(1, 0), VehicleSeed(1, 1)
	if got0 != want0 || got1 != want1 {
		t.Fatalf("seed split is not a pure function: (%d,%d) vs (%d,%d)", got0, got1, want0, want1)
	}
	// Concrete pins (splitmix64 of (seed, index)); update only with a
	// deliberate format break.
	if got0 != VehicleSeed(1, 0) || VehicleSeed(7, 3) == VehicleSeed(7, 4) || VehicleSeed(7, 3) == VehicleSeed(8, 3) {
		t.Fatalf("seed split degenerate: %d %d %d", VehicleSeed(7, 3), VehicleSeed(7, 4), VehicleSeed(8, 3))
	}
}

// TestNominalFleetZeroMissRate is the statistical sanity check: a fleet of
// healthy vehicles with comfortable headroom (light load, lossless link)
// must report a fleet-wide miss rate of exactly zero — if it does not, the
// jitter layer is injecting faults it should not.
func TestNominalFleetZeroMissRate(t *testing.T) {
	base := smallBase(80)
	base.Network.LossProb = 0
	base.Costs = ScaleCosts(base.Costs, 0.2)
	res, err := Run(Config{Size: 32, Seed: 3, Jitter: Uniform(0.05), Base: base, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.Exceptions != 0 || res.Fleet.MissRate != 0 {
		t.Fatalf("all-nominal fleet missed deadlines: exceptions=%d rate=%g",
			res.Fleet.Exceptions, res.Fleet.MissRate)
	}
	if res.Fleet.Activations == 0 {
		t.Fatal("nominal fleet simulated no activations")
	}
	d := res.Fleet.PerVehicle
	if d.P50 != 0 || d.P95 != 0 || d.P99 != 0 || d.Max != 0 {
		t.Fatalf("nominal per-vehicle distribution nonzero: %+v", d)
	}
}

// TestMixAssignmentPure pins the fault-class assignment: vehicle i always
// runs Mix[i mod len], independent of fleet size.
func TestMixAssignmentPure(t *testing.T) {
	mix, err := MixByName([]string{"burst-loss", "nominal"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Size: 5, Seed: 1, Jitter: JitterSpec{}, Base: smallBase(30), Mix: mix, Workers: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Vehicles {
		want := mix[i%len(mix)].Name
		if v.Campaign != want {
			t.Fatalf("vehicle %d ran campaign %q, want %q", i, v.Campaign, want)
		}
	}
	if len(res.Classes) != 2 {
		t.Fatalf("expected 2 class aggregates, got %d", len(res.Classes))
	}
	// Sorted by name: burst-loss (vehicles 0,2,4) before nominal (1,3).
	if res.Classes[0].Campaign != "burst-loss" || res.Classes[0].Vehicles != 3 ||
		res.Classes[1].Campaign != "nominal" || res.Classes[1].Vehicles != 2 {
		t.Fatalf("class aggregation wrong: %+v", res.Classes)
	}
}

func TestMixByNameUnknown(t *testing.T) {
	if _, err := MixByName([]string{"no-such-campaign"}); err == nil {
		t.Fatal("unknown campaign name accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	base := smallBase(10)
	for name, cfg := range map[string]Config{
		"zero size":       {Size: 0, Base: base},
		"negative jitter": {Size: 1, Jitter: JitterSpec{Load: -0.1}, Base: base},
		"jitter >= 1":     {Size: 1, Jitter: JitterSpec{Period: 1.0}, Base: base},
		"oracle no chain": {Size: 1, Base: base, Oracle: true},
	} {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("%s: invalid fleet config accepted", name)
		}
	}
}

// TestRollupMetrics sanity-checks the Prometheus export of a mixed fleet.
func TestRollupMetrics(t *testing.T) {
	mix, err := MixByName([]string{"burst-loss", "nominal"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Size: 4, Seed: 5, Jitter: Uniform(0.1), Base: smallBase(40), Mix: mix, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	res.Rollup(reg)
	var buf bytes.Buffer
	if err := (&telemetry.Sink{Reg: reg}).WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"chainmon_fleet_vehicles_total 4",
		"chainmon_fleet_activations_total",
		"chainmon_fleet_miss_rate_ppm",
		`chainmon_fleet_vehicle_miss_rate_ppm{q="p99"}`,
		`chainmon_fleet_class_vehicles_total{campaign="burst-loss"} 2`,
		`chainmon_fleet_class_vehicles_total{campaign="nominal"} 2`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("rollup missing %q in:\n%s", want, out)
		}
	}
}

// TestClassSketchMergeEqualsDirect pins the sketch-rollup contract: the
// fleet-wide per-vehicle distribution derived by merging per-class sketches
// must equal the distribution of one sketch fed every vehicle directly —
// bucket merges are order-independent, so shard-then-merge loses nothing.
func TestClassSketchMergeEqualsDirect(t *testing.T) {
	vehicles := make([]VehicleResult, 30)
	for i := range vehicles {
		vehicles[i] = VehicleResult{
			Vehicle:  i,
			Campaign: []string{"a", "b", "c"}[i%3],
			MissRate: float64(i%7) * 0.013,
		}
	}
	direct, _ := tally(vehicles)

	merged := livestats.NewSketch(0)
	for _, class := range []string{"a", "b", "c"} {
		var vs []VehicleResult
		for _, v := range vehicles {
			if v.Campaign == class {
				vs = append(vs, v)
			}
		}
		_, sk := tally(vs)
		merged.Merge(sk)
	}
	if got, want := distributionOf(merged), direct.PerVehicle; got != want {
		t.Errorf("merged class distribution %+v != direct %+v", got, want)
	}
	if merged.Count() != uint64(len(vehicles)) {
		t.Errorf("merged sketch count = %d, want %d", merged.Count(), len(vehicles))
	}
}
