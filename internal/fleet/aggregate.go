// Fleet aggregation: per-vehicle outcomes are reduced to fleet-wide
// totals, miss-rate distributions and per-fault-class breakdowns. All
// rendering (text summary and JSON) iterates in vehicle / sorted-class
// order, so serial and parallel fleets emit byte-identical reports.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"chainmon/internal/blame"
	"chainmon/internal/livestats"
)

// Distribution summarizes the per-vehicle miss rates of a (sub-)fleet. It
// is extracted from a mergeable quantile sketch, not a retained per-vehicle
// sample: sub-fleet sketches merge into the fleet-wide one without holding
// every vehicle's rate, so the rollup is constant-memory in fleet size.
type Distribution struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// distributionOf reads the quantiles out of a rate sketch. Max is exact
// (the sketch tracks it outside the buckets); the quantiles carry the
// sketch's relative rank-error bound, which at the default α is far below
// the ppm resolution the rollup exports.
func distributionOf(sk *livestats.Sketch) Distribution {
	if sk.Count() == 0 {
		return Distribution{}
	}
	return Distribution{
		P50: sk.Quantile(0.50),
		P95: sk.Quantile(0.95),
		P99: sk.Quantile(0.99),
		Max: sk.Max(),
	}
}

// Aggregate is the fleet-wide verdict tally.
type Aggregate struct {
	Vehicles    int     `json:"vehicles"`
	Activations int     `json:"activations"`
	OK          int     `json:"ok"`
	Recovered   int     `json:"recovered"`
	Missed      int     `json:"missed"`
	Exceptions  int     `json:"exceptions"`
	MissRate    float64 `json:"miss_rate"` // fleet-wide: exceptions / activations
	// PerVehicle is the distribution of per-vehicle miss rates — the
	// population statistic a single-vehicle run cannot produce.
	PerVehicle Distribution `json:"per_vehicle"`
}

// tally reduces a (sub-)fleet to its aggregate and the miss-rate sketch the
// aggregate's distribution was read from, so callers can keep merging
// upward (class sketches → fleet sketch).
func tally(vehicles []VehicleResult) (Aggregate, *livestats.Sketch) {
	a := Aggregate{Vehicles: len(vehicles)}
	sk := livestats.NewSketch(0)
	for _, v := range vehicles {
		a.Activations += v.Activations
		a.OK += v.OK
		a.Recovered += v.Recovered
		a.Missed += v.Missed
		sk.Observe(v.MissRate)
	}
	a.Exceptions = a.Recovered + a.Missed
	if a.Activations > 0 {
		a.MissRate = float64(a.Exceptions) / float64(a.Activations)
	}
	a.PerVehicle = distributionOf(sk)
	return a, sk
}

// ClassAggregate is the tally of the vehicles that ran one fault class.
type ClassAggregate struct {
	Campaign string `json:"campaign"`
	Aggregate
	FalseNegatives int `json:"false_negatives"`
	FalsePositives int `json:"false_positives"`
}

// Result is a fully aggregated fleet run.
type Result struct {
	Size    int              `json:"fleet_size"`
	Seed    int64            `json:"fleet_seed"`
	Jitter  JitterSpec       `json:"jitter"`
	Frames  int              `json:"frames"`
	Period  string           `json:"period"`
	Oracle  bool             `json:"oracle"`
	Classes []ClassAggregate `json:"classes,omitempty"`
	Fleet   Aggregate        `json:"fleet"`
	// Knee is the saturation analyzer's report (nil unless a saturation
	// search ran).
	Knee *Knee `json:"knee,omitempty"`
	// Blame is the fleet-wide miss-attribution rollup: the per-vehicle
	// summaries merged in vehicle order (nil unless Config.Blame).
	Blame    *blame.Summary  `json:"blame,omitempty"`
	Vehicles []VehicleResult `json:"vehicles"`
}

func aggregate(cfg Config, vehicles []VehicleResult) *Result {
	fleetAgg, _ := tally(vehicles)
	r := &Result{
		Size:     cfg.Size,
		Seed:     cfg.Seed,
		Jitter:   cfg.Jitter,
		Frames:   cfg.Base.Frames,
		Period:   fmt.Sprintf("%v", cfg.Base.Period),
		Oracle:   cfg.Oracle,
		Vehicles: vehicles,
		Fleet:    fleetAgg,
	}
	if len(cfg.Mix) > 0 {
		byClass := make(map[string][]VehicleResult)
		for _, v := range vehicles {
			byClass[v.Campaign] = append(byClass[v.Campaign], v)
		}
		names := make([]string, 0, len(byClass))
		for n := range byClass {
			names = append(names, n)
		}
		sort.Strings(names)
		// The fleet-wide distribution is re-derived by merging the class
		// sketches — the same shard-merge path a real fleet backend would
		// use — and bucket merges are order-independent, so this equals the
		// direct single-stream tally exactly.
		merged := livestats.NewSketch(0)
		for _, n := range names {
			vs := byClass[n]
			agg, sk := tally(vs)
			merged.Merge(sk)
			ca := ClassAggregate{Campaign: n, Aggregate: agg}
			for _, v := range vs {
				ca.FalseNegatives += v.FalseNegatives
				ca.FalsePositives += v.FalsePositives
			}
			r.Classes = append(r.Classes, ca)
		}
		r.Fleet.PerVehicle = distributionOf(merged)
	}
	if cfg.Blame {
		sums := make([]*blame.Summary, 0, len(vehicles))
		for _, v := range vehicles {
			sums = append(sums, v.Blame)
		}
		merged := blame.MergeSummaries(sums)
		r.Blame = &merged
	}
	return r
}

// FalseNegatives sums the oracle false negatives over the whole fleet.
func (r *Result) FalseNegatives() int {
	n := 0
	for _, v := range r.Vehicles {
		n += v.FalseNegatives
	}
	return n
}

// FalsePositives sums the oracle false positives over the whole fleet.
func (r *Result) FalsePositives() int {
	n := 0
	for _, v := range r.Vehicles {
		n += v.FalsePositives
	}
	return n
}

// Errs returns the vehicles whose run failed outright.
func (r *Result) Errs() []VehicleResult {
	var out []VehicleResult
	for _, v := range r.Vehicles {
		if v.Err != "" {
			out = append(out, v)
		}
	}
	return out
}

func pct(v float64) string { return fmt.Sprintf("%.4f%%", 100*v) }

func distRow(d Distribution) string {
	return fmt.Sprintf("p50=%s p95=%s p99=%s max=%s", pct(d.P50), pct(d.P95), pct(d.P99), pct(d.Max))
}

// Summary renders the fleet-level report as deterministic text: the header,
// the fleet tally, the per-vehicle miss-rate distribution, one row per
// fault class (sorted by name) and the saturation knee when present.
// Per-vehicle rows live in the JSON summary, not here — a thousand-vehicle
// fleet should not print a thousand lines.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d vehicles, seed %d, %d frames/vehicle at %s base period\n",
		r.Size, r.Seed, r.Frames, r.Period)
	fmt.Fprintf(&b, "jitter: clock=%g bcrt=%g link=%g period=%g load=%g loss=%g\n",
		r.Jitter.ClockEpsilon, r.Jitter.LinkBCRT, r.Jitter.LinkJitter,
		r.Jitter.Period, r.Jitter.Load, r.Jitter.Loss)
	f := r.Fleet
	fmt.Fprintf(&b, "fleet activations=%d ok=%d recovered=%d missed=%d exceptions=%d\n",
		f.Activations, f.OK, f.Recovered, f.Missed, f.Exceptions)
	fmt.Fprintf(&b, "fleet miss-rate %s (per vehicle: %s)\n", pct(f.MissRate), distRow(f.PerVehicle))
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "  class %-20s vehicles=%-4d activations=%-7d exceptions=%-6d miss=%s (%s)",
			c.Campaign, c.Vehicles, c.Activations, c.Exceptions, pct(c.MissRate), distRow(c.PerVehicle))
		if r.Oracle {
			fmt.Fprintf(&b, " falseNeg=%d falsePos=%d", c.FalseNegatives, c.FalsePositives)
		}
		b.WriteByte('\n')
	}
	if r.Oracle {
		fmt.Fprintf(&b, "oracle fleet-wide: falseNeg=%d falsePos=%d\n",
			r.FalseNegatives(), r.FalsePositives())
	}
	if r.Blame != nil {
		fmt.Fprintf(&b, "fleet blame: %s\n", r.Blame)
	}
	if errs := r.Errs(); len(errs) > 0 {
		for _, v := range errs {
			fmt.Fprintf(&b, "  vehicle %d FAILED: %s\n", v.Vehicle, v.Err)
		}
	}
	if r.Knee != nil {
		b.WriteString(r.Knee.Report())
	}
	return b.String()
}

// WriteJSON writes the full fleet summary — fleet and class aggregates
// plus one entry per vehicle — as indented JSON. The encoding is
// deterministic, so serial and parallel fleets write identical bytes.
func (r *Result) WriteJSON(w io.Writer) error {
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}
