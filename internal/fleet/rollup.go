// Prometheus rollups: the fleet aggregates exported through the
// internal/telemetry registry, so a fleet run can be scraped (or dumped
// with -metrics-out) like any single-vehicle run. Rates are exported in
// parts-per-million — the registry's gauges are integers, and ppm keeps
// four significant digits of a sub-percent miss rate.
package fleet

import (
	"chainmon/internal/telemetry"
)

func ppm(rate float64) int64 { return int64(rate * 1e6) }

func rollupDist(reg *telemetry.Registry, name, help string, d Distribution, labels ...telemetry.Label) {
	for _, q := range []struct {
		q string
		v float64
	}{{"p50", d.P50}, {"p95", d.P95}, {"p99", d.P99}, {"max", d.Max}} {
		l := append(append([]telemetry.Label(nil), labels...), telemetry.L("q", q.q)...)
		reg.Gauge(name, help, l...).Set(ppm(q.v))
	}
}

// Rollup exports the fleet-level aggregates into the registry:
//
//	chainmon_fleet_vehicles_total / _activations_total / _exceptions_total
//	chainmon_fleet_miss_rate_ppm            (fleet-wide rate)
//	chainmon_fleet_vehicle_miss_rate_ppm{q} (per-vehicle distribution)
//	chainmon_fleet_class_*{campaign}        (per-fault-class breakdown)
//	chainmon_fleet_blame_*                  (miss-attribution rollup, with Config.Blame)
//	chainmon_fleet_oracle_false_{negatives,positives}_total
func (r *Result) Rollup(reg *telemetry.Registry) {
	reg.Gauge("chainmon_fleet_vehicles_total", "vehicles simulated in the fleet run").Set(int64(r.Fleet.Vehicles))
	reg.Counter("chainmon_fleet_activations_total", "monitored activations across the fleet").Add(uint64(r.Fleet.Activations))
	reg.Counter("chainmon_fleet_exceptions_total", "temporal exceptions across the fleet").Add(uint64(r.Fleet.Exceptions))
	reg.Gauge("chainmon_fleet_miss_rate_ppm", "fleet-wide miss rate in parts per million").Set(ppm(r.Fleet.MissRate))
	rollupDist(reg, "chainmon_fleet_vehicle_miss_rate_ppm",
		"per-vehicle miss-rate distribution in parts per million", r.Fleet.PerVehicle)

	for _, c := range r.Classes {
		l := telemetry.L("campaign", c.Campaign)
		reg.Gauge("chainmon_fleet_class_vehicles_total", "vehicles per fault class", l...).Set(int64(c.Vehicles))
		reg.Counter("chainmon_fleet_class_activations_total", "monitored activations per fault class", l...).Add(uint64(c.Activations))
		reg.Counter("chainmon_fleet_class_exceptions_total", "temporal exceptions per fault class", l...).Add(uint64(c.Exceptions))
		reg.Gauge("chainmon_fleet_class_miss_rate_ppm", "per-class miss rate in parts per million", l...).Set(ppm(c.MissRate))
	}

	if r.Oracle {
		reg.Counter("chainmon_fleet_oracle_false_negatives_total",
			"ground-truth oracle false negatives across the fleet").Add(uint64(r.FalseNegatives()))
		reg.Counter("chainmon_fleet_oracle_false_positives_total",
			"ground-truth oracle false positives across the fleet").Add(uint64(r.FalsePositives()))
	}

	if r.Blame != nil {
		reg.Counter("chainmon_fleet_blame_flows_total",
			"activations attributed by the per-vehicle blame engines").Add(r.Blame.Flows)
		reg.Counter("chainmon_fleet_blame_missed_total",
			"attributed activations across the fleet whose worst verdict was a miss").Add(r.Blame.Missed)
		reg.Gauge("chainmon_fleet_blame_ns",
			"total blamed overrun time across the fleet in nanoseconds").Set(r.Blame.BlameNS)
		for _, h := range r.Blame.Hops {
			l := telemetry.L("hop", h.Name)
			reg.Gauge("chainmon_fleet_blame_share_ppm",
				"fraction of the fleet's blamed overrun attributable to a hop, in ppm", l...).Set(h.SharePPM)
		}
	}

	if r.Knee != nil {
		reg.Gauge("chainmon_fleet_saturation_load_milli",
			"saturation knee load multiplier in thousandths").Set(int64(r.Knee.Load * 1000))
		reg.Gauge("chainmon_fleet_saturation_miss_rate_ppm",
			"miss rate at the saturation knee in parts per million").Set(ppm(r.Knee.MissRate))
	}
}
