package fleet

import (
	"testing"

	"chainmon/internal/perception"
)

// TestMixedFaultFleetOracleSound runs the ground-truth soundness oracle on
// every vehicle of a mixed-fault fleet: healthy vehicles next to burst
// loss, latency shifts and clock steps, each parameter-jittered. The
// paper's soundness contract must hold fleet-wide — zero false negatives
// on any vehicle, and no exception outside the ε tolerance band (the
// oracle reports out-of-band false positives as violations, so an empty
// violation list is the ε-bounded-FP aggregate).
func TestMixedFaultFleetOracleSound(t *testing.T) {
	mix, err := MixByName([]string{"nominal", "burst-loss", "latency-shift", "clock-step"})
	if err != nil {
		t.Fatal(err)
	}
	base := perception.DefaultConfig()
	base.Frames = 120 // the chaos campaigns inject within the first 12 s
	base.FullChain = true
	cfg := Config{
		Size: 8, Seed: 17, Jitter: Uniform(0.05),
		Base: base, Mix: mix, Oracle: true, Workers: 0,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if errs := res.Errs(); len(errs) > 0 {
		t.Fatalf("vehicles failed outright: %+v", errs)
	}
	for _, v := range res.Vehicles {
		if !v.OracleChecked {
			t.Fatalf("vehicle %d ran without the oracle", v.Vehicle)
		}
		if v.FalseNegatives > 0 {
			t.Fatalf("vehicle %d (%s): %d false negatives — soundness broken:\n%v",
				v.Vehicle, v.Campaign, v.FalseNegatives, v.Violations)
		}
		if len(v.Violations) > 0 {
			t.Fatalf("vehicle %d (%s): oracle violations:\n%v", v.Vehicle, v.Campaign, v.Violations)
		}
	}
	if fn := res.FalseNegatives(); fn != 0 {
		t.Fatalf("fleet-wide false negatives: %d", fn)
	}
	if fp := res.FalsePositives(); fp != 0 {
		t.Fatalf("fleet-wide out-of-band false positives: %d", fp)
	}

	// The mixed faults must actually bite, or the zero-FN assertion is
	// vacuous: the faulty classes must out-miss the nominal class.
	var nominal, faulty *ClassAggregate
	for i := range res.Classes {
		c := &res.Classes[i]
		switch c.Campaign {
		case "nominal":
			nominal = c
		case "burst-loss":
			faulty = c
		}
	}
	if nominal == nil || faulty == nil {
		t.Fatalf("class breakdown incomplete: %+v", res.Classes)
	}
	if faulty.Exceptions == 0 {
		t.Fatal("burst-loss class caused no exceptions — the fault mix did not bite")
	}
}
