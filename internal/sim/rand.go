package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// RNG is a deterministic random source for a simulation component. Each
// component derives its own RNG from the scenario seed so that adding a
// component does not perturb the random streams of the others.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a seeded RNG.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Derive returns a new independent RNG whose seed is a deterministic
// function of this RNG's seed and the given label.
func (g *RNG) Derive(label string) *RNG {
	h := int64(1469598103934665603) // FNV-1a offset basis (truncated)
	for _, c := range label {
		h ^= int64(c)
		h *= 1099511628211
	}
	return NewRNG(h ^ g.r.Int63())
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform sample in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a normal sample with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Dist is a distribution of durations, used for execution times, network
// response times and kernel overheads.
type Dist interface {
	// Sample draws one duration. Implementations must never return a
	// negative duration.
	Sample(g *RNG) Duration
	// Bounds returns best-case and a practical worst-case duration
	// (the support for truncated distributions, a high quantile otherwise).
	Bounds() (lo, hi Duration)
	fmt.Stringer
}

// Constant is a degenerate distribution.
type Constant Duration

// Sample implements Dist.
func (c Constant) Sample(*RNG) Duration { return Duration(c) }

// Bounds implements Dist.
func (c Constant) Bounds() (Duration, Duration) { return Duration(c), Duration(c) }

func (c Constant) String() string { return fmt.Sprintf("const(%v)", Duration(c)) }

// UniformDist samples uniformly in [Lo,Hi].
type UniformDist struct {
	Lo, Hi Duration
}

// Sample implements Dist.
func (u UniformDist) Sample(g *RNG) Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + Duration(g.r.Int63n(int64(u.Hi-u.Lo)+1))
}

// Bounds implements Dist.
func (u UniformDist) Bounds() (Duration, Duration) { return u.Lo, u.Hi }

func (u UniformDist) String() string { return fmt.Sprintf("uniform(%v,%v)", u.Lo, u.Hi) }

// NormalDist is a normal distribution truncated to [Min,Max].
type NormalDist struct {
	Mean, Stddev Duration
	Min, Max     Duration
}

// Sample implements Dist.
func (n NormalDist) Sample(g *RNG) Duration {
	for i := 0; i < 64; i++ {
		v := Duration(g.Normal(float64(n.Mean), float64(n.Stddev)))
		if v >= n.Min && (n.Max == 0 || v <= n.Max) {
			return v
		}
	}
	return clampDur(n.Mean, n.Min, n.Max)
}

// Bounds implements Dist.
func (n NormalDist) Bounds() (Duration, Duration) {
	hi := n.Max
	if hi == 0 {
		hi = n.Mean + 4*n.Stddev
	}
	return n.Min, hi
}

func (n NormalDist) String() string {
	return fmt.Sprintf("normal(μ=%v,σ=%v,[%v,%v])", n.Mean, n.Stddev, n.Min, n.Max)
}

// LogNormalDist produces heavy-tailed positive samples: exp(N(Mu,Sigma)),
// scaled so the median is Median, shifted by Shift and truncated to Max
// (0 = no truncation). It models data-dependent compute times and network
// response-time tails.
type LogNormalDist struct {
	Median Duration // median of the multiplicative part
	Sigma  float64  // log-space standard deviation
	Shift  Duration // additive best-case offset
	Max    Duration // optional truncation; 0 disables
}

// Sample implements Dist.
func (l LogNormalDist) Sample(g *RNG) Duration {
	v := Duration(float64(l.Median)*math.Exp(l.Sigma*g.r.NormFloat64())) + l.Shift
	if v < l.Shift {
		v = l.Shift
	}
	if l.Max > 0 && v > l.Max {
		v = l.Max
	}
	return v
}

// Bounds implements Dist.
func (l LogNormalDist) Bounds() (Duration, Duration) {
	hi := l.Max
	if hi == 0 {
		// ~99.97 percentile in log space.
		hi = Duration(float64(l.Median)*math.Exp(3.4*l.Sigma)) + l.Shift
	}
	return l.Shift, hi
}

func (l LogNormalDist) String() string {
	return fmt.Sprintf("lognormal(med=%v,σ=%.2f,+%v,max=%v)", l.Median, l.Sigma, l.Shift, l.Max)
}

// MixtureDist samples from Base, but with probability TailProb from Tail.
// It models rare outliers (e.g. scheduling interference spikes).
type MixtureDist struct {
	Base     Dist
	Tail     Dist
	TailProb float64
}

// Sample implements Dist.
func (m MixtureDist) Sample(g *RNG) Duration {
	if g.Bool(m.TailProb) {
		return m.Tail.Sample(g)
	}
	return m.Base.Sample(g)
}

// Bounds implements Dist.
func (m MixtureDist) Bounds() (Duration, Duration) {
	blo, bhi := m.Base.Bounds()
	tlo, thi := m.Tail.Bounds()
	return minDur(blo, tlo), maxDur(bhi, thi)
}

func (m MixtureDist) String() string {
	return fmt.Sprintf("mix(%v | %.3f→%v)", m.Base, m.TailProb, m.Tail)
}

// ScaledDist multiplies another distribution's samples by Factor.
type ScaledDist struct {
	Base   Dist
	Factor float64
}

// Sample implements Dist.
func (s ScaledDist) Sample(g *RNG) Duration {
	return Duration(float64(s.Base.Sample(g)) * s.Factor)
}

// Bounds implements Dist.
func (s ScaledDist) Bounds() (Duration, Duration) {
	lo, hi := s.Base.Bounds()
	return Duration(float64(lo) * s.Factor), Duration(float64(hi) * s.Factor)
}

func (s ScaledDist) String() string { return fmt.Sprintf("%.2f*%v", s.Factor, s.Base) }

func clampDur(v, lo, hi Duration) Duration {
	if v < lo {
		return lo
	}
	if hi > 0 && v > hi {
		return hi
	}
	return v
}

func minDur(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// BoundedWalk is a random walk clamped to [-Bound,+Bound], used to model a
// slowly drifting clock offset under PTP correction.
type BoundedWalk struct {
	Bound Duration
	Step  Duration
	cur   Duration
}

// Next advances the walk and returns the new value.
func (w *BoundedWalk) Next(g *RNG) Duration {
	delta := Duration(g.Uniform(-float64(w.Step), float64(w.Step)))
	w.cur += delta
	if w.cur > w.Bound {
		w.cur = w.Bound
	}
	if w.cur < -w.Bound {
		w.cur = -w.Bound
	}
	return w.cur
}

// Value returns the current value without advancing.
func (w *BoundedWalk) Value() Duration { return w.cur }
