// Package sim provides a deterministic discrete-event simulation kernel and
// a fixed-priority preemptive multicore processor model. It is the substrate
// on which the middleware, executors and monitors run in virtual time.
//
// All experiments except the wall-clock microbenchmarks (internal/shmring)
// execute on this kernel, which makes every run reproducible bit-for-bit for
// a given seed.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is layout-compatible
// with time.Duration so the stdlib duration constants can be used directly.
type Duration = time.Duration

// Common time constants re-exported for convenience.
const (
	Nanosecond  Duration = time.Nanosecond
	Microsecond Duration = time.Microsecond
	Millisecond Duration = time.Millisecond
	Second      Duration = time.Second
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String formats the time as a duration offset from simulation start.
func (t Time) String() string {
	return fmt.Sprintf("t+%v", Duration(t))
}
