package sim

import (
	"testing"
	"time"
)

// overloadChurnInternal mirrors the exported benchmark workload
// (queue_bench_test.go) from inside the package, so the alloc gates can
// inspect freelist internals while driving the same push/pop/cancel mix.
func overloadChurnInternal(k *Kernel) (work, svc *Thread) {
	rng := NewRNG(1)
	proc := NewProcessor(k, rng, "ecu", 2)
	work = proc.NewThread("chain", 100)
	svc = proc.NewThread("svc", 50)
	proc.PeriodicLoad(work, "frame", 0, 100*Millisecond,
		NormalDist{Mean: 8 * Millisecond, Stddev: Millisecond, Min: Millisecond})
	proc.PeriodicLoad(svc, "busy", 0, Millisecond,
		UniformDist{Lo: 600 * Microsecond, Hi: 900 * Microsecond})
	return work, svc
}

// TestQueueChurnAllocFree is the CI allocation gate on the kernel hot path:
// once the per-thread work-item freelists and the event freelist are primed,
// the overload-churn workload (enqueue, wakeup, dispatch, preemption,
// completion) runs entirely without heap allocation. This pins the ISSUE 8
// win — BenchmarkKernelQueueChurn at 0 allocs/op — as a hard test.
func TestQueueChurnAllocFree(t *testing.T) {
	k := NewKernel()
	overloadChurnInternal(k)
	// Warm up: let every freelist and scratch buffer reach steady state.
	for i := 0; i < 20000; i++ {
		if !k.Step() {
			t.Fatal("queue drained during warm-up")
		}
	}
	allocs := testing.AllocsPerRun(5000, func() {
		if !k.Step() {
			t.Fatal("queue drained: churn should be self-perpetuating")
		}
	})
	if allocs != 0 {
		t.Fatalf("churn kernel step allocates %.2f/op, want 0", allocs)
	}
}

// TestEnqueueAllocFree gates the bare enqueue→run cycle: with a primed
// freelist, Enqueue (wakeup event + work item) and EnqueueDirect both reuse
// recycled state end to end.
func TestEnqueueAllocFree(t *testing.T) {
	k := NewKernel()
	p := NewProcessor(k, NewRNG(7), "ecu", 1)
	th := p.NewThread("a", 1)
	for i := 0; i < 16; i++ { // prime item and event freelists
		th.Enqueue("warm", 10*time.Nanosecond, nil)
		th.EnqueueDirect("warm", 10*time.Nanosecond, nil)
		k.Run()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		th.Enqueue("job", 10*time.Nanosecond, nil)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("Enqueue cycle allocates %.2f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		th.EnqueueDirect("job", 10*time.Nanosecond, nil)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("EnqueueDirect cycle allocates %.2f/op, want 0", allocs)
	}
}

// TestWorkItemRecycledAfterCompletion pins the freelist lifecycle: a
// completed item is parked on its thread's freelist with the stale Fn and
// label cleared, and the next enqueue pops exactly that item.
func TestWorkItemRecycledAfterCompletion(t *testing.T) {
	k := NewKernel()
	p := NewProcessor(k, NewRNG(7), "ecu", 1)
	th := p.NewThread("a", 1)
	ran := false
	w1 := th.Enqueue("first", 10*time.Nanosecond, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("item never ran")
	}
	if th.FreeItems() != 1 {
		t.Fatalf("freelist holds %d items after completion, want 1", th.FreeItems())
	}
	if !w1.inFree || w1.Fn != nil || w1.Label != "" {
		t.Fatalf("parked item leaked state: inFree=%v Fn=%p label=%q", w1.inFree, w1.Fn, w1.Label)
	}
	w2 := th.Enqueue("second", 10*time.Nanosecond, nil)
	if w2 != w1 {
		t.Fatalf("enqueue did not pop the recycled item (got %p, freelist had %p)", w2, w1)
	}
	if w2.Label != "second" || w2.inFree || w2.next != nil {
		t.Fatalf("recycled item not reset: label=%q inFree=%v next=%p", w2.Label, w2.inFree, w2.next)
	}
	if th.FreeItems() != 0 {
		t.Fatalf("freelist holds %d items after reuse, want 0", th.FreeItems())
	}
}

// TestWorkItemReuseUnderPreemption runs a low-priority item through a
// preemption before completion and verifies it still recycles cleanly —
// the preempt/cancel path must not leak items or corrupt the freelist.
func TestWorkItemReuseUnderPreemption(t *testing.T) {
	k := NewKernel()
	p := NewProcessor(k, NewRNG(7), "ecu", 1)
	lo := p.NewThread("lo", 1)
	hi := p.NewThread("hi", 10)
	w := lo.Enqueue("long", 100*time.Nanosecond, nil)
	k.At(50, func() { hi.Enqueue("h", 30*time.Nanosecond, nil) })
	preempted := w.Preemptions() // handle read before completion is fine
	k.Run()
	_ = preempted
	if lo.FreeItems() != 1 || hi.FreeItems() != 1 {
		t.Fatalf("freelists hold %d/%d items, want 1/1", lo.FreeItems(), hi.FreeItems())
	}
	// Both threads must reuse their own recycled items.
	w2 := lo.Enqueue("again", 10*time.Nanosecond, nil)
	if w2 != w {
		t.Fatalf("preempted item was not recycled (got %p want %p)", w2, w)
	}
	k.Run()
}

// TestRetainOptsOutOfRecycling pins the handle contract: a retained item
// stays off the freelist with its bookkeeping intact, while an unretained
// one is recycled.
func TestRetainOptsOutOfRecycling(t *testing.T) {
	k := NewKernel()
	p := NewProcessor(k, NewRNG(7), "ecu", 1)
	th := p.NewThread("a", 1)
	kept := th.Enqueue("kept", 10*time.Nanosecond, nil).Retain()
	k.Run()
	if th.FreeItems() != 0 {
		t.Fatalf("retained item leaked into freelist (%d items)", th.FreeItems())
	}
	if kept.Label != "kept" || kept.Finished() == 0 {
		t.Fatalf("retained handle lost bookkeeping: label=%q finished=%v", kept.Label, kept.Finished())
	}
	next := th.Enqueue("next", 10*time.Nanosecond, nil)
	if next == kept {
		t.Fatal("enqueue reused a retained item")
	}
	k.Run()
}

// TestFreelistNeverLeaksStaleState is the property test over the churn
// workload: at every step, every item parked on any freelist has its Fn and
// label cleared and its links consistent — a recycled slot can never run or
// report a previous item's work. The same walk under -race (CI runs the
// package race-enabled) doubles as the freelist churn race check.
func TestFreelistNeverLeaksStaleState(t *testing.T) {
	k := NewKernel()
	work, svc := overloadChurnInternal(k)
	threads := []*Thread{work, svc}
	for i := 0; i < 50000; i++ {
		if !k.Step() {
			t.Fatal("queue drained")
		}
		if i%97 != 0 {
			continue
		}
		for _, th := range threads {
			n := 0
			for w := th.free; w != nil; w = w.next {
				n++
				if !w.inFree {
					t.Fatalf("step %d: freelist item %p not marked inFree", i, w)
				}
				if w.Fn != nil || w.Label != "" {
					t.Fatalf("step %d: freelist item %p leaks Fn=%p label=%q", i, w, w.Fn, w.Label)
				}
				if w.t != th {
					t.Fatalf("step %d: item %p migrated freelists", i, w)
				}
				if n > th.freeLen {
					t.Fatalf("step %d: freelist longer than freeLen %d (cycle?)", i, th.freeLen)
				}
			}
			if n != th.freeLen {
				t.Fatalf("step %d: freeLen=%d but walked %d items", i, th.freeLen, n)
			}
		}
	}
}

// TestReleaseBeforeFireContract exercises the pooled-event interplay: the
// wakeup event of an enqueued item is pooled (released before firing), and
// a cancelled completion (preemption) must return its event without
// touching the not-yet-fired wakeup of another item.
func TestReleaseBeforeFireContract(t *testing.T) {
	k := NewKernel()
	p := NewProcessor(k, NewRNG(7), "ecu", 1)
	p.Wakeup = Constant(5 * time.Nanosecond)
	lo := p.NewThread("lo", 1)
	hi := p.NewThread("hi", 10)
	var order []string
	lo.Enqueue("a", 40*time.Nanosecond, func() { order = append(order, "a") })
	k.At(10, func() {
		hi.Enqueue("b", 10*time.Nanosecond, func() { order = append(order, "b") })
	})
	k.At(11, func() {
		hi.Enqueue("c", 10*time.Nanosecond, func() { order = append(order, "c") })
	})
	k.Run()
	if len(order) != 3 || order[0] != "b" || order[1] != "c" || order[2] != "a" {
		t.Fatalf("completion order %v, want [b c a]", order)
	}
	// hi held two live items at once (c was constructed before b completed),
	// so its freelist ends with both parked.
	if lo.FreeItems() != 1 || hi.FreeItems() != 2 {
		t.Fatalf("freelists %d/%d, want 1/2", lo.FreeItems(), hi.FreeItems())
	}
}
