package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// EventFunc is the action executed when a scheduled event fires.
type EventFunc func()

// Event is a scheduled occurrence in the simulation. Events are ordered by
// time; ties are broken by priority (higher first) and then by insertion
// order, which keeps runs deterministic.
type Event struct {
	at       Time
	priority int
	seq      uint64
	fn       EventFunc
	index    int // heap index; -1 once removed
	canceled bool
	// pooled events return to the kernel freelist once fired or canceled;
	// inFree guards against double-release.
	pooled bool
	inFree bool
}

// At returns the virtual time at which the event is (or was) scheduled.
func (e *Event) At() Time { return e.at }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the discrete-event simulation core: a virtual clock and a queue
// of pending events. A Kernel is not safe for concurrent use; the simulation
// is single-threaded by design so that runs are deterministic.
type Kernel struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	// executed counts fired events, useful for progress assertions in tests.
	executed uint64
	// queueProbe, when set, observes the queue depth after every heap
	// mutation (push, pop, remove). It is a plain callback rather than a
	// telemetry type so sim stays free of telemetry imports.
	queueProbe func(depth int)
	// free is the Event freelist feeding the *Pooled scheduling calls. The
	// queue under periodic load stays shallow (max depth ~4 in the overload
	// churn benchmark), so a handful of recycled events serves the entire
	// run and the per-event heap allocation disappears from the hot path.
	free []*Event
}

// NewKernel returns a kernel with the clock at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Executed returns the number of events fired so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events currently scheduled.
func (k *Kernel) Pending() int { return len(k.queue) }

// SetQueueProbe installs (or, with nil, removes) an observer called with the
// event-queue depth after every heap operation. The probe must not schedule
// or cancel events.
func (k *Kernel) SetQueueProbe(fn func(depth int)) { k.queueProbe = fn }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a modelling bug.
func (k *Kernel) At(t Time, fn EventFunc) *Event {
	return k.AtPriority(t, 0, fn)
}

// AtPriority schedules fn at time t with an explicit tie-break priority
// (higher priority fires first among events at the same instant).
func (k *Kernel) AtPriority(t Time, priority int, fn EventFunc) *Event {
	return k.schedule(t, priority, fn, false)
}

func (k *Kernel) schedule(t Time, priority int, fn EventFunc, pooled bool) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	k.seq++
	var e *Event
	if pooled && len(k.free) > 0 {
		e = k.free[len(k.free)-1]
		k.free[len(k.free)-1] = nil
		k.free = k.free[:len(k.free)-1]
		*e = Event{at: t, priority: priority, seq: k.seq, fn: fn, pooled: true}
	} else {
		e = &Event{at: t, priority: priority, seq: k.seq, fn: fn, pooled: pooled}
	}
	heap.Push(&k.queue, e)
	if k.queueProbe != nil {
		k.queueProbe(len(k.queue))
	}
	return e
}

// release returns a pooled event to the freelist once it can no longer fire.
func (k *Kernel) release(e *Event) {
	if !e.pooled || e.inFree {
		return
	}
	e.fn = nil
	e.inFree = true
	k.free = append(k.free, e)
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Duration, fn EventFunc) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// AtPooled schedules fn like At, drawing the Event from the kernel freelist
// and returning it there as soon as it fires or is canceled. The contract:
// the caller must drop its reference before the event fires — a retained
// handle ends up aliasing whatever event reuses the slot, so Cancel on a
// stale pooled handle targets the wrong event and Reschedule panics (the
// recycled fn is nil). Use the pooled calls for fire-and-forget scheduling
// on hot paths (self-rescheduling periodic loads, dispatch completions); use
// At/After when the handle outlives the event.
func (k *Kernel) AtPooled(t Time, fn EventFunc) *Event {
	return k.schedule(t, 0, fn, true)
}

// AfterPooled schedules fn to run d after the current time on a pooled
// event; see AtPooled for the handle contract.
func (k *Kernel) AfterPooled(d Duration, fn EventFunc) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.AtPooled(k.now.Add(d), fn)
}

// AtPriorityPooled schedules fn like AtPriority on a pooled event; see
// AtPooled for the handle contract.
func (k *Kernel) AtPriorityPooled(t Time, priority int, fn EventFunc) *Event {
	return k.schedule(t, priority, fn, true)
}

// FreeEvents returns the current freelist length (pooled events parked
// between firings), for allocation assertions in tests.
func (k *Kernel) FreeEvents() int { return len(k.free) }

// Cancel removes a scheduled event. Canceling an already-fired or
// already-canceled event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&k.queue, e.index)
	if k.queueProbe != nil {
		k.queueProbe(len(k.queue))
	}
	k.release(e)
}

// Reschedule moves a pending event to a new time, preserving its priority.
// If the event already fired or was canceled, a fresh event is scheduled.
func (k *Kernel) Reschedule(e *Event, t Time) *Event {
	if e != nil && !e.canceled && e.index >= 0 {
		if t < k.now {
			panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, k.now))
		}
		e.at = t
		heap.Fix(&k.queue, e.index)
		return e
	}
	if e == nil {
		panic("sim: rescheduling nil event")
	}
	return k.AtPriority(t, e.priority, e.fn)
}

// Step fires the next pending event and advances the clock to it.
// It reports whether an event was fired.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if k.queueProbe != nil {
			k.queueProbe(len(k.queue))
		}
		if e.canceled {
			k.release(e)
			continue
		}
		if e.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = e.at
		k.executed++
		fn := e.fn
		// Recycle before firing: the contract forbids the caller from
		// touching the handle once the event is due, and releasing first
		// lets fn's own rescheduling reuse the slot immediately (the
		// self-perpetuating periodic pattern runs entirely allocation-free).
		k.release(e)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with time ≤ horizon, then sets the clock to the
// horizon. Events scheduled beyond the horizon stay pending.
func (k *Kernel) RunUntil(horizon Time) {
	k.stopped = false
	for !k.stopped {
		if len(k.queue) == 0 {
			break
		}
		// Peek the earliest non-canceled event.
		e := k.queue[0]
		if e.canceled {
			heap.Pop(&k.queue)
			if k.queueProbe != nil {
				k.queueProbe(len(k.queue))
			}
			k.release(e)
			continue
		}
		if e.at > horizon {
			break
		}
		k.Step()
	}
	if k.now < horizon {
		k.now = horizon
	}
}

// RunFor executes events within the next d of virtual time.
func (k *Kernel) RunFor(d Duration) {
	k.RunUntil(k.now.Add(d))
}

// Stop makes Run/RunUntil return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64
