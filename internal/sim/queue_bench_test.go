package sim_test

import (
	"testing"

	"chainmon/internal/sim"
)

func TestQueueProbeObservesHeapOps(t *testing.T) {
	k := sim.NewKernel()
	var calls int
	var lastDepth int
	k.SetQueueProbe(func(depth int) {
		calls++
		lastDepth = depth
		if depth != k.Pending() {
			t.Fatalf("probe depth %d != Pending %d", depth, k.Pending())
		}
	})
	e1 := k.At(10, func() {})
	k.At(20, func() {})
	if calls != 2 || lastDepth != 2 {
		t.Fatalf("after 2 pushes: calls=%d depth=%d", calls, lastDepth)
	}
	k.Cancel(e1)
	if calls != 3 || lastDepth != 1 {
		t.Fatalf("after cancel: calls=%d depth=%d", calls, lastDepth)
	}
	k.Run()
	if calls != 4 || lastDepth != 0 {
		t.Fatalf("after run: calls=%d depth=%d", calls, lastDepth)
	}
	k.SetQueueProbe(nil)
	k.At(30, func() {})
	if calls != 4 {
		t.Fatal("probe fired after removal")
	}
}

// overloadChurn builds the event pattern of the faultinject overload
// campaign: a multi-core processor running chain threads at their nominal
// period plus a misbehaving high-rate background service, so the kernel
// queue sees the same push/pop/cancel mix as the chaos run.
func overloadChurn(k *sim.Kernel) {
	rng := sim.NewRNG(1)
	proc := sim.NewProcessor(k, rng, "ecu", 2)
	work := proc.NewThread("chain", 100)
	svc := proc.NewThread("svc", 50)
	// Nominal 100ms-period chain work…
	proc.PeriodicLoad(work, "frame", 0, 100*sim.Millisecond,
		sim.NormalDist{Mean: 8 * sim.Millisecond, Stddev: sim.Millisecond, Min: sim.Millisecond})
	// …plus the overload: a 1ms-period service with near-saturating cost.
	proc.PeriodicLoad(svc, "busy", 0, sim.Millisecond,
		sim.UniformDist{Lo: 600 * sim.Microsecond, Hi: 900 * sim.Microsecond})
}

// BenchmarkKernelQueueChurn measures the kernel event queue under the
// overload-campaign pattern with the telemetry probe attached, reporting
// the observed maximum queue depth and heap operations per fired event.
// The ROADMAP "profile the kernel event queue" findings come from this
// benchmark.
func BenchmarkKernelQueueChurn(b *testing.B) {
	k := sim.NewKernel()
	overloadChurn(k)
	var ops uint64
	var maxDepth int
	k.SetQueueProbe(func(depth int) {
		ops++
		if depth > maxDepth {
			maxDepth = depth
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Step() {
			b.Fatal("queue drained: churn should be self-perpetuating")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(maxDepth), "max-depth")
	b.ReportMetric(float64(ops)/float64(b.N), "heap-ops/event")
}

// BenchmarkKernelQueueChurnNoProbe is the identical workload without a
// probe; the delta to BenchmarkKernelQueueChurn is the instrumentation
// cost, the delta to the pre-telemetry baseline is the nil-check cost.
func BenchmarkKernelQueueChurnNoProbe(b *testing.B) {
	k := sim.NewKernel()
	overloadChurn(k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Step() {
			b.Fatal("queue drained: churn should be self-perpetuating")
		}
	}
}

// BenchmarkEventSchedule measures a bare schedule+fire cycle through the
// unpooled API: every cycle heap-allocates a fresh Event.
func BenchmarkEventSchedule(b *testing.B) {
	k := sim.NewKernel()
	var tick func()
	tick = func() { k.After(sim.Millisecond, tick) }
	k.At(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}

// BenchmarkEventSchedulePooled is the same cycle through the freelist API;
// after the first lap the Event is recycled and the loop runs allocation-free
// (asserted by TestPooledScheduleAllocFree).
func BenchmarkEventSchedulePooled(b *testing.B) {
	k := sim.NewKernel()
	var tick func()
	tick = func() { k.AfterPooled(sim.Millisecond, tick) }
	k.AtPooled(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}
