package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDeriveIndependence(t *testing.T) {
	a := NewRNG(7).Derive("x")
	b := NewRNG(7).Derive("y")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("derived streams look identical (%d/100 equal)", same)
	}
}

func TestRNGBoolEdges(t *testing.T) {
	g := NewRNG(1)
	if g.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !g.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestConstantDist(t *testing.T) {
	d := Constant(5 * time.Microsecond)
	g := NewRNG(1)
	if d.Sample(g) != 5*time.Microsecond {
		t.Error("constant sample wrong")
	}
	lo, hi := d.Bounds()
	if lo != hi || lo != 5*time.Microsecond {
		t.Error("constant bounds wrong")
	}
}

func TestUniformDistWithinBounds(t *testing.T) {
	d := UniformDist{Lo: 10, Hi: 20}
	g := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := d.Sample(g)
		if v < 10 || v > 20 {
			t.Fatalf("sample %v outside [10,20]", v)
		}
	}
	// Degenerate interval.
	dd := UniformDist{Lo: 10, Hi: 10}
	if dd.Sample(g) != 10 {
		t.Error("degenerate uniform wrong")
	}
}

func TestNormalDistTruncation(t *testing.T) {
	d := NormalDist{Mean: 100, Stddev: 50, Min: 80, Max: 120}
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := d.Sample(g)
		if v < 80 || v > 120 {
			t.Fatalf("sample %v outside truncation [80,120]", v)
		}
	}
}

func TestLogNormalDistProperties(t *testing.T) {
	d := LogNormalDist{Median: 100 * time.Microsecond, Sigma: 0.5, Shift: 10 * time.Microsecond}
	g := NewRNG(4)
	below := 0
	const n = 10000
	for i := 0; i < n; i++ {
		v := d.Sample(g)
		if v < 10*time.Microsecond {
			t.Fatalf("sample %v below shift", v)
		}
		if v < 110*time.Microsecond {
			below++
		}
	}
	// Median of shifted distribution should be near shift+median.
	if frac := float64(below) / n; frac < 0.45 || frac > 0.55 {
		t.Errorf("fraction below median+shift = %f, want ≈0.5", frac)
	}
}

func TestLogNormalTruncation(t *testing.T) {
	d := LogNormalDist{Median: 100, Sigma: 2, Max: 150}
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if v := d.Sample(g); v > 150 {
			t.Fatalf("sample %v above max", v)
		}
	}
}

func TestMixtureDistTailProbability(t *testing.T) {
	d := MixtureDist{
		Base:     Constant(1),
		Tail:     Constant(1000),
		TailProb: 0.1,
	}
	g := NewRNG(6)
	tail := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if d.Sample(g) == 1000 {
			tail++
		}
	}
	if frac := float64(tail) / n; frac < 0.08 || frac > 0.12 {
		t.Errorf("tail fraction = %f, want ≈0.1", frac)
	}
	lo, hi := d.Bounds()
	if lo != 1 || hi != 1000 {
		t.Errorf("bounds = %v,%v", lo, hi)
	}
}

func TestScaledDist(t *testing.T) {
	d := ScaledDist{Base: Constant(100), Factor: 2.5}
	g := NewRNG(7)
	if d.Sample(g) != 250 {
		t.Error("scaled sample wrong")
	}
	lo, hi := d.Bounds()
	if lo != 250 || hi != 250 {
		t.Errorf("bounds = %v,%v", lo, hi)
	}
}

func TestDistSamplesNeverNegative(t *testing.T) {
	dists := []Dist{
		Constant(0),
		UniformDist{Lo: 0, Hi: 100},
		NormalDist{Mean: 10, Stddev: 100, Min: 0, Max: 0},
		LogNormalDist{Median: 50, Sigma: 1},
		MixtureDist{Base: Constant(1), Tail: LogNormalDist{Median: 100, Sigma: 2}, TailProb: 0.5},
	}
	g := NewRNG(8)
	for _, d := range dists {
		for i := 0; i < 500; i++ {
			if v := d.Sample(g); v < 0 {
				t.Fatalf("%v produced negative sample %v", d, v)
			}
		}
	}
}

func TestBoundedWalkStaysInBounds(t *testing.T) {
	f := func(seed int64) bool {
		w := &BoundedWalk{Bound: 100, Step: 30}
		g := NewRNG(seed)
		for i := 0; i < 200; i++ {
			v := w.Next(g)
			if v > 100 || v < -100 {
				return false
			}
			if w.Value() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistStringers(t *testing.T) {
	for _, d := range []Dist{
		Constant(1),
		UniformDist{Lo: 1, Hi: 2},
		NormalDist{Mean: 1, Stddev: 2},
		LogNormalDist{Median: 1, Sigma: 0.5},
		MixtureDist{Base: Constant(1), Tail: Constant(2), TailProb: 0.5},
		ScaledDist{Base: Constant(1), Factor: 2},
	} {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}

func TestDistBounds(t *testing.T) {
	u := UniformDist{Lo: 1, Hi: 5}
	if lo, hi := u.Bounds(); lo != 1 || hi != 5 {
		t.Errorf("uniform bounds = %v,%v", lo, hi)
	}
	n := NormalDist{Mean: 10, Stddev: 2, Min: 1}
	if lo, hi := n.Bounds(); lo != 1 || hi != 18 {
		t.Errorf("normal bounds = %v,%v", lo, hi)
	}
	nm := NormalDist{Mean: 10, Stddev: 2, Min: 1, Max: 12}
	if _, hi := nm.Bounds(); hi != 12 {
		t.Errorf("truncated normal hi = %v", hi)
	}
	l := LogNormalDist{Median: 100, Sigma: 0.5, Shift: 10}
	if lo, hi := l.Bounds(); lo != 10 || hi <= 100 {
		t.Errorf("lognormal bounds = %v,%v", lo, hi)
	}
	lt := LogNormalDist{Median: 100, Sigma: 0.5, Max: 150}
	if _, hi := lt.Bounds(); hi != 150 {
		t.Errorf("truncated lognormal hi = %v", hi)
	}
	g := NewRNG(1)
	if v := g.Intn(10); v < 0 || v >= 10 {
		t.Errorf("Intn out of range: %d", v)
	}
}
