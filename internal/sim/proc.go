package sim

import "fmt"

// WorkItem is a unit of computation queued on a Thread: it occupies the
// thread for Cost of virtual CPU time and then runs Fn (the item's effects:
// publishing messages, programming timers, ...).
//
// Items are recycled through an intrusive per-thread freelist: once an item
// completes (after its Fn returned) it is returned to its thread and the
// next Enqueue reuses it, so steady-state enqueueing does not touch the
// heap. The handle returned by Enqueue/EnqueueDirect is therefore only
// valid until the item's Fn returns — reading latency bookkeeping after
// completion requires Retain, exactly like the kernel's pooled events
// require dropping the handle before the event fires.
type WorkItem struct {
	Label string
	Cost  Duration
	Fn    func()

	// t is the owning thread; items never migrate between freelists, so the
	// pre-bound wake callback stays valid across recycles.
	t *Thread
	// next links the item into the thread freelist while parked.
	next *WorkItem
	// wakeFn is the bound (*WorkItem).wake method value, created once when
	// the item is first allocated — the wakeup scheduling of Enqueue reuses
	// it instead of closing over the item on every call.
	wakeFn EventFunc

	enqueued   Time // when Enqueue was called
	ready      Time // when the wakeup latency elapsed and the item became runnable
	started    Time // first dispatch on a core
	finished   Time
	preemptCnt int
	retained   bool
	inFree     bool
}

// Enqueued returns the time Enqueue was called for this item.
func (w *WorkItem) Enqueued() Time { return w.enqueued }

// Started returns the time the item was first dispatched on a core.
func (w *WorkItem) Started() Time { return w.started }

// Finished returns the item's completion time.
func (w *WorkItem) Finished() Time { return w.finished }

// Preemptions returns how often the item was preempted.
func (w *WorkItem) Preemptions() int { return w.preemptCnt }

// Retain opts the item out of freelist recycling: the handle (and its
// latency bookkeeping) stays valid after completion instead of aliasing
// whatever work reuses the slot. Call it right after Enqueue when the
// timestamps are read after the run; fire-and-forget callers (the hot path)
// never need it.
func (w *WorkItem) Retain() *WorkItem {
	w.retained = true
	return w
}

// Thread is a schedulable entity with a fixed priority and a FIFO queue of
// work items. Higher Priority values take precedence.
type Thread struct {
	proc     *Processor
	Name     string
	Priority int
	// pinned is the core this thread is restricted to, or -1 for global
	// scheduling (free migration, the paper's evaluation setup).
	pinned int

	queue      []*WorkItem
	current    *WorkItem
	remaining  Duration
	running    bool
	blocked    bool // suspended outside the scheduler (fault injection)
	shouldRun  bool // scratch of Processor.reschedule, meaningless outside it
	dispatched Time // when the thread last got a core
	readySince Time
	completion *Event
	// completeFn is the bound t.complete method value, created once so
	// every dispatch does not allocate a fresh closure.
	completeFn EventFunc
	// free heads the intrusive freelist of recycled work items; freeLen
	// mirrors its length for allocation assertions in tests.
	free    *WorkItem
	freeLen int

	busy      Duration // accumulated executed CPU time
	completed uint64
}

// Processor models one ECU: a set of identical cores scheduling threads with
// global fixed-priority preemptive scheduling (threads migrate freely, as in
// the paper's evaluation setup).
type Processor struct {
	Name  string
	Cores int

	k   *Kernel
	rng *RNG

	// CtxSwitch is added to an item's remaining cost on every dispatch,
	// modelling context-switch and cache-refill overhead.
	CtxSwitch Dist
	// Wakeup is the latency between enqueueing a work item and the thread
	// becoming ready (kernel wakeup latency). On a PREEMPT_RT system this
	// is small with rare outliers.
	Wakeup Dist

	threads []*Thread
	// ready and coreTaken are reschedule scratch, reused across calls so the
	// scheduler itself never allocates. reschedule runs no user code, so the
	// buffers cannot be re-entered.
	ready     []*Thread
	coreTaken []bool
}

// NewProcessor creates a processor with the given core count. The overhead
// distributions default to zero and can be assigned afterwards.
func NewProcessor(k *Kernel, rng *RNG, name string, cores int) *Processor {
	if cores < 1 {
		panic("sim: processor needs at least one core")
	}
	return &Processor{
		Name:      name,
		Cores:     cores,
		k:         k,
		rng:       rng.Derive("proc/" + name),
		CtxSwitch: Constant(0),
		Wakeup:    Constant(0),
	}
}

// Kernel returns the simulation kernel this processor runs on.
func (p *Processor) Kernel() *Kernel { return p.k }

// RNG returns the processor's random stream.
func (p *Processor) RNG() *RNG { return p.rng }

// NewThread registers a thread on this processor.
func (p *Processor) NewThread(name string, priority int) *Thread {
	t := &Thread{proc: p, Name: name, Priority: priority, pinned: -1}
	t.completeFn = t.complete
	p.threads = append(p.threads, t)
	return t
}

// PinTo restricts the thread to one core (partitioned scheduling). Passing
// a negative core restores free migration.
func (t *Thread) PinTo(core int) {
	if core >= t.proc.Cores {
		panic(fmt.Sprintf("sim: pinning %q to core %d of %d", t.Name, core, t.proc.Cores))
	}
	if core < 0 {
		core = -1
	}
	t.pinned = core
}

// Pinned returns the core the thread is pinned to, or -1.
func (t *Thread) Pinned() int { return t.pinned }

// Threads returns the registered threads.
func (p *Processor) Threads() []*Thread { return p.threads }

// Utilization returns the fraction of total core time spent busy up to now.
func (p *Processor) Utilization() float64 {
	if p.k.Now() == 0 {
		return 0
	}
	var busy Duration
	for _, t := range p.threads {
		busy += t.BusyTime()
	}
	return float64(busy) / (float64(p.k.Now()) * float64(p.Cores))
}

// newItem is the single work-item constructor behind Enqueue and
// EnqueueDirect: it pops a recycled item off the thread freelist (or heap-
// allocates the first few laps) and initializes every field both entry
// points share, so the two paths cannot drift apart.
func (t *Thread) newItem(label string, cost Duration, fn func()) *WorkItem {
	if cost < 0 {
		panic(fmt.Sprintf("sim: negative cost %v for %q", cost, label))
	}
	w := t.free
	if w != nil {
		t.free = w.next
		t.freeLen--
		w.next = nil
		w.inFree = false
		w.Label, w.Cost, w.Fn = label, cost, fn
		w.ready, w.started, w.finished = 0, 0, 0
		w.preemptCnt = 0
		w.retained = false
	} else {
		w = &WorkItem{t: t, Label: label, Cost: cost, Fn: fn}
		w.wakeFn = w.wake
	}
	w.enqueued = t.proc.k.Now()
	return w
}

// releaseItem parks a completed item on the thread freelist. Retained items
// stay out; the stale Fn and Label are cleared so a recycled slot can never
// run or report a previous item's work.
func (t *Thread) releaseItem(w *WorkItem) {
	if w.retained || w.inFree {
		return
	}
	w.Fn = nil
	w.Label = ""
	w.inFree = true
	w.next = t.free
	t.free = w
	t.freeLen++
}

// FreeItems returns the number of work items parked on the freelist, for
// allocation assertions in tests.
func (t *Thread) FreeItems() int { return t.freeLen }

// wake makes the item runnable after the wakeup latency elapsed. It is
// scheduled through the pre-bound wakeFn, so enqueueing does not allocate a
// closure per item.
func (w *WorkItem) wake() {
	t := w.t
	w.ready = t.proc.k.Now()
	if len(t.queue) == 0 && t.current == nil {
		t.readySince = w.ready
	}
	t.queue = append(t.queue, w)
	t.proc.reschedule()
}

// Enqueue schedules a work item on the thread. The item becomes runnable
// after the processor's wakeup latency and then competes for a core at the
// thread's priority. The returned handle is valid until the item's Fn
// returns; Retain it when bookkeeping must survive completion.
func (t *Thread) Enqueue(label string, cost Duration, fn func()) *WorkItem {
	w := t.newItem(label, cost, fn)
	wake := t.proc.Wakeup.Sample(t.proc.rng)
	t.proc.k.AfterPooled(wake, w.wakeFn)
	return w
}

// EnqueueDirect schedules a work item without the wakeup latency: the item
// becomes runnable immediately. Use it for work a thread queues onto itself
// (it is already awake), e.g. the monitor thread dispatching exception
// handlers it will execute next. The handle contract matches Enqueue.
func (t *Thread) EnqueueDirect(label string, cost Duration, fn func()) *WorkItem {
	w := t.newItem(label, cost, fn)
	w.ready = w.enqueued
	if len(t.queue) == 0 && t.current == nil {
		t.readySince = w.ready
	}
	t.queue = append(t.queue, w)
	t.proc.reschedule()
	return w
}

// QueueLen returns the number of runnable-but-not-started items.
func (t *Thread) QueueLen() int { return len(t.queue) }

// Busy reports whether the thread currently holds a work item.
func (t *Thread) Busy() bool { return t.current != nil || len(t.queue) > 0 }

// BusyTime returns the accumulated CPU time consumed by the thread.
func (t *Thread) BusyTime() Duration {
	b := t.busy
	if t.running {
		b += t.proc.k.Now().Sub(t.dispatched)
	}
	return b
}

// Completed returns the number of finished work items.
func (t *Thread) Completed() uint64 { return t.completed }

// Block suspends the thread: it stops competing for cores until Unblock,
// while its queue keeps accumulating work. This models a thread stuck in a
// blocking call (a lost lock, a hung I/O operation) — it consumes no CPU,
// so the rest of the processor stays schedulable. An item in flight is
// preempted and resumes where it left off on Unblock.
func (t *Thread) Block() {
	if t.blocked {
		return
	}
	t.blocked = true
	t.proc.reschedule()
}

// Unblock resumes a blocked thread; pending work competes for a core again
// from now.
func (t *Thread) Unblock() {
	if !t.blocked {
		return
	}
	t.blocked = false
	if t.current != nil || len(t.queue) > 0 {
		t.readySince = t.proc.k.Now()
	}
	t.proc.reschedule()
}

// Blocked reports whether the thread is currently suspended.
func (t *Thread) Blocked() bool { return t.blocked }

func (t *Thread) ready() bool {
	return !t.blocked && (t.current != nil || len(t.queue) > 0)
}

// reschedule recomputes the running set after any arrival or completion.
// Pinned threads win their own core against other threads pinned there;
// unpinned threads share the remaining cores by global fixed priority.
func (p *Processor) reschedule() {
	now := p.k.Now()

	ready := p.ready[:0]
	for _, t := range p.threads {
		t.shouldRun = false
		if t.ready() {
			ready = append(ready, t)
		}
	}
	// Stable insertion sort by priority (desc), then readySince (asc):
	// registration order breaks remaining ties, exactly as sort.SliceStable
	// did, so scheduling decisions — and every golden — are unchanged.
	for i := 1; i < len(ready); i++ {
		t := ready[i]
		j := i - 1
		for j >= 0 && (ready[j].Priority < t.Priority ||
			(ready[j].Priority == t.Priority && ready[j].readySince > t.readySince)) {
			ready[j+1] = ready[j]
			j--
		}
		ready[j+1] = t
	}
	p.ready = ready

	if p.coreTaken == nil {
		p.coreTaken = make([]bool, p.Cores)
	}
	coreTaken := p.coreTaken
	for i := range coreTaken {
		coreTaken[i] = false
	}
	taken := 0
	// Pinned threads first: the highest-priority ready thread of each
	// core (ready is priority-sorted).
	for _, t := range ready {
		if t.pinned >= 0 && !coreTaken[t.pinned] {
			coreTaken[t.pinned] = true
			t.shouldRun = true
			taken++
		}
	}
	// Unpinned threads fill the remaining cores by global priority.
	for _, t := range ready {
		if taken >= p.Cores {
			break
		}
		if t.pinned < 0 && !t.shouldRun {
			t.shouldRun = true
			taken++
		}
	}

	// Preempt threads that lost their core.
	for _, t := range p.threads {
		if t.running && !t.shouldRun {
			t.preempt(now)
		}
	}
	// Dispatch threads that gained a core.
	for _, t := range ready {
		if t.shouldRun && !t.running {
			t.dispatch(now)
		}
	}
	// Drop scratch references so completed threads' items stay collectable
	// between reschedules.
	for i := range ready {
		ready[i] = nil
	}
}

func (t *Thread) preempt(now Time) {
	if t.completion != nil {
		t.proc.k.Cancel(t.completion)
		t.completion = nil
	}
	consumed := now.Sub(t.dispatched)
	t.busy += consumed
	t.remaining -= consumed
	if t.remaining < 0 {
		t.remaining = 0
	}
	t.running = false
	if t.current != nil {
		t.current.preemptCnt++
	}
}

func (t *Thread) dispatch(now Time) {
	if t.current == nil {
		t.current = t.queue[0]
		copy(t.queue, t.queue[1:])
		t.queue[len(t.queue)-1] = nil
		t.queue = t.queue[:len(t.queue)-1]
		t.remaining = t.current.Cost
		t.current.started = now
	}
	// Context-switch overhead on every dispatch (initial or resume).
	t.remaining += t.proc.CtxSwitch.Sample(t.proc.rng)
	t.running = true
	t.dispatched = now
	// Pooled: t.completion is nil'd in both complete() and preempt() before
	// the event can be recycled, so no stale handle survives.
	t.completion = t.proc.k.AtPriorityPooled(now.Add(t.remaining), t.Priority, t.completeFn)
}

func (t *Thread) complete() {
	now := t.proc.k.Now()
	t.busy += now.Sub(t.dispatched)
	t.running = false
	t.completion = nil
	w := t.current
	t.current = nil
	t.remaining = 0
	t.completed++
	w.finished = now
	if len(t.queue) > 0 {
		t.readySince = now
	}
	if w.Fn != nil {
		w.Fn()
	}
	// Recycle after Fn returned (callbacks may read the item's timestamps
	// while running) and before rescheduling — Fn may have enqueued new
	// work, which pops from the freelist, never aliasing w since w is only
	// parked here.
	t.releaseItem(w)
	t.proc.reschedule()
}

// PeriodicLoad drives a thread with periodic background work, used to model
// interfering services and load sweeps (Fig. 12). It starts at the given
// offset and re-arms itself every period.
func (p *Processor) PeriodicLoad(t *Thread, label string, offset Time, period Duration, cost Dist) {
	var arm func()
	arm = func() {
		t.Enqueue(label, cost.Sample(p.rng), nil)
		p.k.AfterPooled(period, arm)
	}
	p.k.AtPooled(offset, arm)
}

// PeriodicLoadWindow drives a thread with periodic background work only
// inside the [from, until) virtual-time window, used to model transient
// interference (fault injection: an ECU overloaded by a misbehaving
// service for a bounded interval).
func (p *Processor) PeriodicLoadWindow(t *Thread, label string, from, until Time, period Duration, cost Dist) {
	if until <= from {
		return
	}
	var arm func()
	arm = func() {
		if p.k.Now() >= until {
			return
		}
		t.Enqueue(label, cost.Sample(p.rng), nil)
		p.k.AfterPooled(period, arm)
	}
	p.k.AtPooled(from, arm)
}
