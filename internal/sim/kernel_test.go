package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Errorf("Now() = %v, want 30", k.Now())
	}
}

func TestKernelTieBreakBySeqThenPriority(t *testing.T) {
	k := NewKernel()
	var got []string
	k.At(10, func() { got = append(got, "first") })
	k.At(10, func() { got = append(got, "second") })
	k.AtPriority(10, 5, func() { got = append(got, "hiprio") })
	k.Run()
	if got[0] != "hiprio" || got[1] != "first" || got[2] != "second" {
		t.Fatalf("got order %v", got)
	}
}

func TestKernelAfterUsesCurrentTime(t *testing.T) {
	k := NewKernel()
	var fired Time
	k.At(100, func() {
		k.After(50, func() { fired = k.Now() })
	})
	k.Run()
	if fired != 150 {
		t.Errorf("fired at %v, want 150", fired)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(10, func() { fired = true })
	k.Cancel(e)
	k.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if !e.Canceled() {
		t.Error("event not marked canceled")
	}
	// Double cancel is a no-op.
	k.Cancel(e)
	k.Cancel(nil)
}

func TestKernelCancelFromWithinEarlierEvent(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(20, func() { fired = true })
	k.At(10, func() { k.Cancel(e) })
	k.Run()
	if fired {
		t.Error("event fired despite cancel at t=10")
	}
}

func TestKernelReschedule(t *testing.T) {
	k := NewKernel()
	var fired []Time
	e := k.At(10, func() { fired = append(fired, k.Now()) })
	k.At(5, func() { k.Reschedule(e, 42) })
	k.Run()
	if len(fired) != 1 || fired[0] != 42 {
		t.Fatalf("fired = %v, want [42]", fired)
	}
}

func TestKernelRescheduleFiredEventCreatesNewOne(t *testing.T) {
	k := NewKernel()
	count := 0
	e := k.At(10, func() { count++ })
	k.At(20, func() { k.Reschedule(e, 30) })
	k.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2 (original + rescheduled)", count)
	}
}

func TestKernelRunUntilLeavesLaterEventsPending(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(10, func() { ran++ })
	k.At(100, func() { ran++ })
	k.RunUntil(50)
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if k.Now() != 50 {
		t.Errorf("Now() = %v, want 50 after RunUntil", k.Now())
	}
	if k.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", k.Pending())
	}
	k.Run()
	if ran != 2 {
		t.Errorf("ran = %d after full Run, want 2", ran)
	}
}

func TestKernelRunForAdvancesRelative(t *testing.T) {
	k := NewKernel()
	k.RunFor(10 * time.Nanosecond)
	if k.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", k.Now())
	}
	k.RunFor(5 * time.Nanosecond)
	if k.Now() != 15 {
		t.Fatalf("Now() = %v, want 15", k.Now())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(1, func() { ran++; k.Stop() })
	k.At(2, func() { ran++ })
	k.Run()
	if ran != 1 {
		t.Errorf("ran = %d, want 1 (stopped after first)", ran)
	}
}

func TestKernelPanicsOnPastEvent(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		k.At(50, func() {})
	})
	k.Run()
}

func TestKernelSchedulingInsideEventSameTime(t *testing.T) {
	k := NewKernel()
	var order []string
	k.At(10, func() {
		order = append(order, "a")
		k.At(10, func() { order = append(order, "b") })
	})
	k.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

// Property: for any set of non-negative offsets, events fire in sorted order
// and the executed count matches.
func TestKernelOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, o := range offsets {
			k.At(Time(o), func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return k.Executed() == uint64(len(offsets))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	a := Time(1000)
	if a.Add(500*Nanosecond) != 1500 {
		t.Error("Add failed")
	}
	if a.Sub(Time(400)) != 600 {
		t.Error("Sub failed")
	}
	if !a.Before(1001) || a.Before(1000) {
		t.Error("Before failed")
	}
	if !a.After(999) || a.After(1000) {
		t.Error("After failed")
	}
	if Time(1500).String() != "t+1.5µs" {
		t.Errorf("String() = %q", Time(1500).String())
	}
}

func TestPooledEventRecycled(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.AtPooled(10, func() { fired++ })
	if k.FreeEvents() != 0 {
		t.Fatalf("freelist %d before firing", k.FreeEvents())
	}
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	if k.FreeEvents() != 1 {
		t.Fatalf("freelist %d after firing, want 1", k.FreeEvents())
	}
	// The next pooled schedule reuses the slot instead of growing the list.
	k.AtPooled(20, func() { fired++ })
	if k.FreeEvents() != 0 {
		t.Fatalf("freelist %d after reuse, want 0", k.FreeEvents())
	}
	k.Run()
	if fired != 2 || k.FreeEvents() != 1 {
		t.Fatalf("fired = %d, freelist = %d", fired, k.FreeEvents())
	}
}

func TestPooledEventCancelRecycles(t *testing.T) {
	k := NewKernel()
	e := k.AtPooled(10, func() { t.Fatal("canceled event fired") })
	k.Cancel(e)
	if k.FreeEvents() != 1 {
		t.Fatalf("freelist %d after cancel, want 1", k.FreeEvents())
	}
	// Double cancel must not double-release.
	k.Cancel(e)
	if k.FreeEvents() != 1 {
		t.Fatalf("freelist %d after double cancel, want 1", k.FreeEvents())
	}
	k.Run()
}

func TestPooledEventUnpooledUntouched(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {})
	e := k.At(20, func() {})
	k.Cancel(e)
	k.Run()
	if k.FreeEvents() != 0 {
		t.Fatalf("unpooled events leaked into freelist: %d", k.FreeEvents())
	}
}

// TestPooledScheduleAllocFree is the allocs/op assertion behind the ISSUE 3
// allocation cuts: once the freelist is primed, a self-rescheduling pooled
// event runs its schedule+fire cycle without any heap allocation.
func TestPooledScheduleAllocFree(t *testing.T) {
	k := NewKernel()
	var tick func()
	tick = func() { k.AfterPooled(Millisecond, tick) }
	k.AtPooled(0, tick)
	k.Step() // prime the freelist
	allocs := testing.AllocsPerRun(1000, func() {
		if !k.Step() {
			t.Fatal("queue drained")
		}
	})
	if allocs != 0 {
		t.Fatalf("pooled schedule+fire cycle allocates %.1f/op, want 0", allocs)
	}
}
