package sim

import (
	"testing"
	"time"
)

func newTestProc(cores int) (*Kernel, *Processor) {
	k := NewKernel()
	p := NewProcessor(k, NewRNG(1), "ecu0", cores)
	return k, p
}

func TestSingleItemRunsForItsCost(t *testing.T) {
	k, p := newTestProc(1)
	th := p.NewThread("a", 10)
	var done Time
	th.Enqueue("job", 100*time.Nanosecond, func() { done = k.Now() })
	k.Run()
	if done != 100 {
		t.Fatalf("done at %v, want 100", done)
	}
	if th.Completed() != 1 {
		t.Fatalf("completed = %d", th.Completed())
	}
	if th.BusyTime() != 100*time.Nanosecond {
		t.Fatalf("busy = %v", th.BusyTime())
	}
}

func TestFIFOWithinThread(t *testing.T) {
	k, p := newTestProc(1)
	th := p.NewThread("a", 10)
	var order []string
	th.Enqueue("j1", 10*time.Nanosecond, func() { order = append(order, "j1") })
	th.Enqueue("j2", 10*time.Nanosecond, func() { order = append(order, "j2") })
	th.Enqueue("j3", 10*time.Nanosecond, func() { order = append(order, "j3") })
	k.Run()
	if len(order) != 3 || order[0] != "j1" || order[1] != "j2" || order[2] != "j3" {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 30 {
		t.Fatalf("finished at %v, want 30", k.Now())
	}
}

func TestHigherPriorityPreempts(t *testing.T) {
	k, p := newTestProc(1)
	lo := p.NewThread("lo", 1)
	hi := p.NewThread("hi", 10)

	var loDone, hiDone Time
	lo.Enqueue("long", 100*time.Nanosecond, func() { loDone = k.Now() })
	k.At(10, func() {
		hi.Enqueue("short", 20*time.Nanosecond, func() { hiDone = k.Now() })
	})
	k.Run()
	if hiDone != 30 {
		t.Errorf("hi done at %v, want 30 (10 arrival + 20 cost)", hiDone)
	}
	if loDone != 120 {
		t.Errorf("lo done at %v, want 120 (100 cost + 20 preempted)", loDone)
	}
}

func TestEqualPriorityDoesNotPreempt(t *testing.T) {
	k, p := newTestProc(1)
	a := p.NewThread("a", 5)
	b := p.NewThread("b", 5)
	var aDone, bDone Time
	a.Enqueue("ja", 100*time.Nanosecond, func() { aDone = k.Now() })
	k.At(10, func() {
		b.Enqueue("jb", 10*time.Nanosecond, func() { bDone = k.Now() })
	})
	k.Run()
	if aDone != 100 {
		t.Errorf("a done at %v, want 100 (not preempted by equal prio)", aDone)
	}
	if bDone != 110 {
		t.Errorf("b done at %v, want 110", bDone)
	}
}

func TestTwoCoresRunInParallel(t *testing.T) {
	k, p := newTestProc(2)
	a := p.NewThread("a", 5)
	b := p.NewThread("b", 5)
	var aDone, bDone Time
	a.Enqueue("ja", 100*time.Nanosecond, func() { aDone = k.Now() })
	b.Enqueue("jb", 100*time.Nanosecond, func() { bDone = k.Now() })
	k.Run()
	if aDone != 100 || bDone != 100 {
		t.Errorf("done at %v/%v, want 100/100 (parallel)", aDone, bDone)
	}
}

func TestPreemptedWorkResumesWithRemainingCost(t *testing.T) {
	k, p := newTestProc(1)
	lo := p.NewThread("lo", 1)
	hi := p.NewThread("hi", 10)
	var loDone Time
	w := lo.Enqueue("long", 100*time.Nanosecond, func() { loDone = k.Now() }).Retain()
	k.At(50, func() { hi.Enqueue("h", 30*time.Nanosecond, nil) })
	k.Run()
	if loDone != 130 {
		t.Errorf("lo done at %v, want 130", loDone)
	}
	if w.Preemptions() != 1 {
		t.Errorf("preemptions = %d, want 1", w.Preemptions())
	}
	if w.Started() != 0 || w.Finished() != 130 {
		t.Errorf("started/finished = %v/%v", w.Started(), w.Finished())
	}
}

func TestWakeupLatencyDelaysReadiness(t *testing.T) {
	k, p := newTestProc(1)
	p.Wakeup = Constant(7 * time.Nanosecond)
	th := p.NewThread("a", 1)
	var done Time
	th.Enqueue("j", 10*time.Nanosecond, func() { done = k.Now() })
	k.Run()
	if done != 17 {
		t.Errorf("done at %v, want 17 (7 wakeup + 10 cost)", done)
	}
}

func TestCtxSwitchAddedPerDispatch(t *testing.T) {
	k, p := newTestProc(1)
	p.CtxSwitch = Constant(3 * time.Nanosecond)
	lo := p.NewThread("lo", 1)
	hi := p.NewThread("hi", 10)
	var loDone Time
	lo.Enqueue("long", 100*time.Nanosecond, func() { loDone = k.Now() })
	k.At(50, func() { hi.Enqueue("h", 10*time.Nanosecond, nil) })
	k.Run()
	// lo: dispatch at 0 (+3), preempted at 50, hi runs 50..63 (3+10),
	// lo resumes at 63 (+3 again), remaining was 100+3-50=53, +3 = 56 → 119.
	if loDone != 119 {
		t.Errorf("lo done at %v, want 119", loDone)
	}
}

func TestZeroCostItemCompletesImmediately(t *testing.T) {
	k, p := newTestProc(1)
	th := p.NewThread("a", 1)
	done := false
	th.Enqueue("nop", 0, func() { done = true })
	k.Run()
	if !done {
		t.Error("zero-cost item did not complete")
	}
	if k.Now() != 0 {
		t.Errorf("time advanced to %v for zero-cost item", k.Now())
	}
}

func TestNegativeCostPanics(t *testing.T) {
	_, p := newTestProc(1)
	th := p.NewThread("a", 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative cost")
		}
	}()
	th.Enqueue("bad", -1, nil)
}

func TestUtilizationAccounting(t *testing.T) {
	k, p := newTestProc(2)
	a := p.NewThread("a", 5)
	a.Enqueue("j", 100*time.Nanosecond, nil)
	k.Run()
	// 100ns busy on 2 cores over 100ns → 50%.
	if u := p.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %f, want 0.5", u)
	}
}

func TestPeriodicLoadGeneratesWork(t *testing.T) {
	k, p := newTestProc(1)
	th := p.NewThread("bg", 1)
	p.PeriodicLoad(th, "tick", 0, 100*time.Nanosecond, Constant(10*time.Nanosecond))
	k.RunUntil(1000)
	// Arms at 0,100,...,1000 → 11 enqueues; the one at t=1000 also completes
	// because RunUntil processes events at the horizon.
	if th.Completed() < 10 {
		t.Errorf("completed = %d, want >= 10", th.Completed())
	}
}

func TestEnqueueFromCompletionCallback(t *testing.T) {
	k, p := newTestProc(1)
	th := p.NewThread("a", 1)
	var second Time
	th.Enqueue("first", 10*time.Nanosecond, func() {
		th.Enqueue("second", 5*time.Nanosecond, func() { second = k.Now() })
	})
	k.Run()
	if second != 15 {
		t.Errorf("second done at %v, want 15", second)
	}
}

func TestManyThreadsDeterministic(t *testing.T) {
	run := func() Time {
		k := NewKernel()
		p := NewProcessor(k, NewRNG(42), "ecu", 2)
		p.CtxSwitch = UniformDist{Lo: 1 * time.Nanosecond, Hi: 5 * time.Nanosecond}
		p.Wakeup = UniformDist{Lo: 0, Hi: 3 * time.Nanosecond}
		var last Time
		for i := 0; i < 8; i++ {
			th := p.NewThread("t", i%4)
			for j := 0; j < 20; j++ {
				th.Enqueue("j", Duration(10+i+j)*time.Nanosecond, func() { last = k.Now() })
			}
		}
		k.Run()
		return last
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestPinnedThreadsShareOneCore(t *testing.T) {
	k, p := newTestProc(2)
	a := p.NewThread("a", 5)
	b := p.NewThread("b", 5)
	a.PinTo(0)
	b.PinTo(0)
	var aDone, bDone Time
	a.Enqueue("ja", 100*time.Nanosecond, func() { aDone = k.Now() })
	b.Enqueue("jb", 100*time.Nanosecond, func() { bDone = k.Now() })
	k.Run()
	// Serialized on core 0 despite the free second core.
	if aDone != 100 || bDone != 200 {
		t.Errorf("done at %v/%v, want 100/200 (partitioned)", aDone, bDone)
	}
}

func TestPinnedHigherPrioPreemptsOnItsCore(t *testing.T) {
	k, p := newTestProc(1)
	lo := p.NewThread("lo", 1)
	hi := p.NewThread("hi", 10)
	lo.PinTo(0)
	hi.PinTo(0)
	var loDone, hiDone Time
	lo.Enqueue("l", 100*time.Nanosecond, func() { loDone = k.Now() })
	k.At(10, func() { hi.Enqueue("h", 20*time.Nanosecond, func() { hiDone = k.Now() }) })
	k.Run()
	if hiDone != 30 || loDone != 120 {
		t.Errorf("done at hi=%v lo=%v, want 30/120", hiDone, loDone)
	}
}

func TestUnpinnedUsesRemainingCores(t *testing.T) {
	k, p := newTestProc(2)
	pinned := p.NewThread("pinned", 1)
	pinned.PinTo(0)
	free := p.NewThread("free", 1)
	var pDone, fDone Time
	pinned.Enqueue("p", 100*time.Nanosecond, func() { pDone = k.Now() })
	free.Enqueue("f", 100*time.Nanosecond, func() { fDone = k.Now() })
	k.Run()
	if pDone != 100 || fDone != 100 {
		t.Errorf("done at %v/%v, want parallel 100/100", pDone, fDone)
	}
}

func TestPinValidation(t *testing.T) {
	_, p := newTestProc(2)
	th := p.NewThread("t", 1)
	th.PinTo(-5)
	if th.Pinned() != -1 {
		t.Error("negative pin should mean unpinned")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range core")
		}
	}()
	th.PinTo(2)
}

// Property: total busy time equals the sum of all item costs plus dispatch
// overheads; with zero overheads it is exactly the sum of costs.
func TestBusyTimeConservation(t *testing.T) {
	k, p := newTestProc(3)
	var total Duration
	for i := 0; i < 5; i++ {
		th := p.NewThread("t", i)
		for j := 0; j < 10; j++ {
			c := Duration(7*(i+1)+j) * time.Nanosecond
			total += c
			th.Enqueue("j", c, nil)
		}
	}
	k.Run()
	var busy Duration
	for _, th := range p.Threads() {
		busy += th.BusyTime()
	}
	if busy != total {
		t.Errorf("busy = %v, want %v", busy, total)
	}
}

func TestEnqueueDirectSkipsWakeup(t *testing.T) {
	k, p := newTestProc(1)
	p.Wakeup = Constant(50 * time.Nanosecond) // would delay a normal Enqueue
	th := p.NewThread("a", 1)
	var done Time
	k.At(10, func() {
		th.EnqueueDirect("d", 5*time.Nanosecond, func() { done = k.Now() })
	})
	k.Run()
	if done != 15 {
		t.Errorf("done at %v, want 15 (no wakeup latency)", done)
	}
}

func TestEnqueueDirectFIFOWithQueue(t *testing.T) {
	k, p := newTestProc(1)
	th := p.NewThread("a", 1)
	var order []string
	k.At(0, func() {
		th.EnqueueDirect("first", 10*time.Nanosecond, func() { order = append(order, "first") })
		th.EnqueueDirect("second", 10*time.Nanosecond, func() { order = append(order, "second") })
	})
	k.Run()
	if len(order) != 2 || order[0] != "first" {
		t.Errorf("order = %v", order)
	}
}

func TestEnqueueDirectNegativeCostPanics(t *testing.T) {
	_, p := newTestProc(1)
	th := p.NewThread("a", 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	th.EnqueueDirect("bad", -1, nil)
}

func TestThreadIntrospection(t *testing.T) {
	k, p := newTestProc(1)
	if p.Kernel() != k {
		t.Error("Kernel() wrong")
	}
	if p.RNG() == nil {
		t.Error("RNG() nil")
	}
	th := p.NewThread("a", 1)
	w := th.Enqueue("j", 10*time.Nanosecond, nil).Retain()
	if th.QueueLen() != 0 { // not yet ready (wakeup pending as event)
		t.Errorf("queue len = %d before wakeup", th.QueueLen())
	}
	k.Run()
	if w.Enqueued() != 0 {
		t.Errorf("Enqueued() = %v", w.Enqueued())
	}
	if th.Busy() {
		t.Error("thread busy after completion")
	}
}
