package blame_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"chainmon/internal/blame"
	"chainmon/internal/lidar"
	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/telemetry"
)

// lossyConfig is a full-chain run with enough network loss to exercise the
// pub-skip path and recovery handlers on both remote segments, so the
// attribution ledger sees ok, recovered and missed verdicts.
func lossyConfig(seed int64) perception.Config {
	cfg := perception.DefaultConfig()
	cfg.Seed = seed
	cfg.Frames = 150
	cfg.FullChain = true
	cfg.Network.LossProb = 0.05
	cfg.Handlers = map[string]monitor.Handler{
		perception.SegFrontRemote: func(ctx *monitor.ExceptionContext) *monitor.Recovery {
			return &monitor.Recovery{Data: &perception.FrameData{Meta: heldOver(ctx.Activation), Points: 6000}, Size: 16 * 6000}
		},
		perception.SegRearRemote: func(ctx *monitor.ExceptionContext) *monitor.Recovery {
			return &monitor.Recovery{Data: &perception.FrameData{Meta: heldOver(ctx.Activation), Points: 6000}, Size: 16 * 6000}
		},
	}
	return cfg
}

func heldOver(act uint64) lidar.FrameMeta {
	return lidar.FrameMeta{Activation: act, GroundPoints: 6000}
}

// blamedRun executes the lossy scenario with a direct sim stream writer and
// an online blame engine observing it — exactly the wiring the chainmon
// binary uses for -trace-stream runs — and returns the online snapshot plus
// the raw log bytes. The engine sees precisely the events, in precisely the
// order, that reach the log: that is the byte-identity contract.
func blamedRun(t *testing.T, seed int64) (blame.Doc, []byte) {
	t.Helper()
	sink := telemetry.NewSink(1 << 14)
	var buf bytes.Buffer
	sw, err := telemetry.NewStreamWriter(&buf, "sim", telemetry.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := blame.New(blame.Options{})
	eng.SetTimebase("sim")
	sw.SetObserver(eng.Feed)
	sink.Rec.SetStream(sw) // before AttachTelemetry: tracks register on creation
	s := perception.Build(lossyConfig(seed))
	perception.AttachTelemetry(s, sink)
	s.Run()
	eng.Flush()
	eng.FlushExemplars(sink.Rec.Track("blame-exemplar"))
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return eng.Snapshot(blame.RecorderResolvers(sink.Rec)), buf.Bytes()
}

// TestSimOnlineOfflineByteIdentical pins the replay contract on the sim
// timebase: the online snapshot taken at the end of a streamed run and the
// offline snapshot recomputed from the written log marshal to identical
// bytes — same ledgers, same sketch quantiles, same exemplars, same shares.
func TestSimOnlineOfflineByteIdentical(t *testing.T) {
	online, raw := blamedRun(t, 11)
	l, err := telemetry.ReadLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	offline := blame.FromLog(l, blame.Options{}).Snapshot(blame.LogResolvers(l))

	got, err := json.MarshalIndent(online, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(offline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("online and offline blame reports diverge\nonline:\n%s\noffline:\n%s", got, want)
	}
	if online.Timebase != "sim" || offline.Timebase != "sim" {
		t.Errorf("timebases = %q/%q, want sim/sim", online.Timebase, offline.Timebase)
	}
	if online.Flows == 0 || online.Missed == 0 {
		t.Fatalf("flows=%d missed=%d: the lossy run must attribute misses", online.Flows, online.Missed)
	}
}

// TestLedgerConservationOnRealRun pins the conservation invariant on the
// real full-chain run, covering the pub-skip and recovery paths: in every
// scope, per-hop ledger totals sum exactly to the end-to-end total — the
// ledger partitions each activation's latency, it never double-counts or
// leaks time.
func TestLedgerConservationOnRealRun(t *testing.T) {
	doc, raw := blamedRun(t, 23)
	if len(doc.Scopes) == 0 {
		t.Fatal("no scopes attributed")
	}
	for _, sc := range doc.Scopes {
		var sum int64
		for _, h := range sc.Hops {
			sum += h.TotalNS
		}
		if sum != sc.E2ETotalNS {
			t.Errorf("scope %s: Σ hop totals = %d, want e2e total %d", sc.Scope, sum, sc.E2ETotalNS)
		}
		var share int64
		for _, h := range sc.Hops {
			share += h.SharePPM
		}
		if sc.TotalBlameNS > 0 && (share < 1_000_000-int64(len(sc.Hops)) || share > 1_000_000) {
			t.Errorf("scope %s: blame shares sum to %d ppm, want 1e6−ε..1e6", sc.Scope, share)
		}
	}
	// The conservation invariant above must have held over recovered
	// activations too: confirm the run actually exercised the recovery path.
	l, err := telemetry.ReadLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for _, tr := range l.Tracks() {
		for _, ev := range tr.Events {
			if ev.Kind == telemetry.KindVerdict && ev.Status == telemetry.StatusRecovered {
				recovered++
			}
		}
	}
	if recovered == 0 {
		t.Error("no recovered verdicts in the run despite recovery handlers under 5% loss")
	}
}
