package blame

import (
	"fmt"
	"sort"

	"chainmon/internal/telemetry"
)

// Resolvers turn the raw ids the engine works on into names at snapshot
// time. Feed never resolves names (it may run under the stream writer's
// lock); Snapshot runs outside every telemetry lock and may.
type Resolvers struct {
	Label func(uint16) string
	Scope func(uint8) string
	Track func(uint16) string // optional; "" when nil
}

// RecorderResolvers builds snapshot resolvers over a live recorder.
func RecorderResolvers(r *telemetry.Recorder) Resolvers {
	return Resolvers{
		Label: r.LabelName,
		Scope: r.ScopeName,
		Track: func(id uint16) string {
			for _, t := range r.Tracks() {
				if t.ID() == id {
					return t.Name()
				}
			}
			return ""
		},
	}
}

// LogResolvers builds snapshot resolvers over a parsed log.
func LogResolvers(l *telemetry.Log) Resolvers {
	return Resolvers{Label: l.LabelName, Scope: l.ScopeName, Track: l.TrackName}
}

// Doc is the engine's externally visible state: the `blame` section of
// /health online, and the output of `chainmon trace report -blame` offline.
// Same-seed online and offline snapshots marshal to identical bytes.
type Doc struct {
	Timebase      string     `json:"timebase,omitempty"`
	Epoch         uint64     `json:"epoch"`
	Flows         uint64     `json:"flows"`
	Missed        uint64     `json:"missed"`
	Skipped       uint64     `json:"skipped,omitempty"`
	TruncatedHops uint64     `json:"truncated_hops,omitempty"`
	Forced        uint64     `json:"forced_finalized,omitempty"`
	Scopes        []ScopeDoc `json:"scopes"`
}

// ScopeDoc is one chain's attribution.
type ScopeDoc struct {
	Scope        string        `json:"scope"`
	Flows        uint64        `json:"flows"`
	Missed       uint64        `json:"missed"`
	Skipped      uint64        `json:"skipped,omitempty"`
	E2ETotalNS   int64         `json:"e2e_total_ns"`
	TotalBlameNS int64         `json:"total_blame_ns"`
	Hops         []HopDoc      `json:"hops"`
	Segments     []SegmentDoc  `json:"segments,omitempty"`
	Exemplars    []ExemplarDoc `json:"exemplars,omitempty"`
}

// HopDoc is one ledger-entry population: a budgeted segment ("seg:<name>")
// or a kind→kind transition.
type HopDoc struct {
	Name     string `json:"name"`
	Count    uint64 `json:"count"`
	TotalNS  int64  `json:"total_ns"`
	BlameNS  int64  `json:"blame_ns"`
	SharePPM int64  `json:"share_ppm"`
	P50NS    int64  `json:"overrun_p50_ns"`
	P95NS    int64  `json:"overrun_p95_ns"`
	P99NS    int64  `json:"overrun_p99_ns"`
	MaxNS    int64  `json:"overrun_max_ns"`
}

// SegmentDoc is one segment's slack table row.
type SegmentDoc struct {
	Name       string `json:"name"`
	Armed      uint64 `json:"armed"`
	Missed     uint64 `json:"missed"`
	BudgetNS   int64  `json:"budget_ns"`
	Epoch      uint64 `json:"epoch"`
	OverrunNS  int64  `json:"overrun_ns"`
	DwellP50NS int64  `json:"dwell_p50_ns"`
	DwellP95NS int64  `json:"dwell_p95_ns"`
	DwellP99NS int64  `json:"dwell_p99_ns"`
	DwellMaxNS int64  `json:"dwell_max_ns"`
}

// ExemplarDoc is one retained worst miss with its full hop timeline.
type ExemplarDoc struct {
	Rank     int            `json:"rank"`
	Act      uint64         `json:"act"`
	Flow     uint32         `json:"flow"`
	E2ENS    int64          `json:"e2e_ns"`
	Status   string         `json:"status"`
	Epoch    uint64         `json:"epoch"`
	Primary  string         `json:"primary"`
	Timeline []TimelineStep `json:"timeline"`
}

// TimelineStep is one hop of an exemplar's journey.
type TimelineStep struct {
	OffsetNS int64  `json:"offset_ns"`
	Kind     string `json:"kind"`
	Label    string `json:"label,omitempty"`
	Track    string `json:"track,omitempty"`
	ArgNS    int64  `json:"arg,omitempty"`
	Status   uint8  `json:"status,omitempty"`
}

// rawScope carries one scope's snapshot data out of the engine lock with
// ids still unresolved, so name resolution (which takes telemetry locks)
// never nests inside the engine mutex.
type rawScope struct {
	scope     uint8
	doc       ScopeDoc
	hopKeys   []hopKey
	hopDocs   []HopDoc
	segLabels []uint16
	exemplars []*exemplar
}

// Snapshot renders the engine's current state. Safe to call concurrently
// with Feed (the live /health scrape); call Flush first when the run is
// over so tail activations are attributed. Name resolution runs after the
// engine lock is released — Feed may be executing under the stream
// writer's lock, and the resolvers take telemetry locks that must never
// nest inside ours.
func (e *Engine) Snapshot(res Resolvers) Doc {
	e.mu.Lock()
	doc := Doc{
		Timebase:      e.timebase,
		Epoch:         e.epoch,
		TruncatedHops: e.truncatedHops,
		Forced:        e.forced,
		Scopes:        []ScopeDoc{},
	}
	raws := make([]rawScope, 0, len(e.scopeIDs))
	for _, id := range e.scopeIDs {
		sc := e.scopes[id]
		raw := rawScope{
			scope: id,
			doc: ScopeDoc{
				Flows:      sc.flows,
				Missed:     sc.missed,
				Skipped:    sc.skipped,
				E2ETotalNS: sc.e2eNS,
			},
		}
		doc.Flows += sc.flows
		doc.Missed += sc.missed
		doc.Skipped += sc.skipped

		for _, key := range sc.hopOrder {
			raw.doc.TotalBlameNS += sc.hops[key].blameNS
		}
		for _, key := range sc.hopOrder {
			agg := sc.hops[key]
			p50, p95, p99, max := sketchQuantiles(agg.overrun)
			hd := HopDoc{
				Count:   agg.count,
				TotalNS: agg.totalNS,
				BlameNS: agg.blameNS,
				P50NS:   p50, P95NS: p95, P99NS: p99, MaxNS: max,
			}
			if raw.doc.TotalBlameNS > 0 {
				hd.SharePPM = agg.blameNS * 1_000_000 / raw.doc.TotalBlameNS
			}
			raw.hopKeys = append(raw.hopKeys, key)
			raw.hopDocs = append(raw.hopDocs, hd)
		}
		for _, label := range sc.segOrder {
			sa := sc.segs[label]
			p50, p95, p99, max := sketchQuantiles(sa.dwell)
			raw.segLabels = append(raw.segLabels, label)
			raw.doc.Segments = append(raw.doc.Segments, SegmentDoc{
				Armed:      sa.armed,
				Missed:     sa.missed,
				BudgetNS:   sa.budgetNS,
				Epoch:      sa.epoch,
				OverrunNS:  sa.overrunNS,
				DwellP50NS: p50, DwellP95NS: p95,
				DwellP99NS: p99, DwellMaxNS: max,
			})
		}
		raw.exemplars = append([]*exemplar(nil), sc.exemplars...)
		raws = append(raws, raw)
	}
	e.mu.Unlock()

	trackName := res.Track
	if trackName == nil {
		trackName = func(uint16) string { return "" }
	}
	for _, raw := range raws {
		sd := raw.doc
		sd.Scope = res.Scope(raw.scope)
		for i, key := range raw.hopKeys {
			raw.hopDocs[i].Name = hopName(key, res.Label)
		}
		sd.Hops = raw.hopDocs
		sort.Slice(sd.Hops, func(i, j int) bool { return sd.Hops[i].Name < sd.Hops[j].Name })
		for i, label := range raw.segLabels {
			sd.Segments[i].Name = res.Label(label)
		}
		sort.Slice(sd.Segments, func(i, j int) bool { return sd.Segments[i].Name < sd.Segments[j].Name })
		for rank, x := range raw.exemplars {
			xd := ExemplarDoc{
				Rank:    rank + 1,
				Act:     x.act,
				Flow:    x.flow,
				E2ENS:   x.e2eNS,
				Status:  telemetry.StatusName(x.status),
				Epoch:   x.epoch,
				Primary: res.Label(x.primary),
			}
			for _, h := range x.timeline {
				xd.Timeline = append(xd.Timeline, TimelineStep{
					OffsetNS: h.ts - x.timeline[0].ts,
					Kind:     h.kind.String(),
					Label:    res.Label(h.label),
					Track:    trackName(h.track),
					ArgNS:    h.arg,
					Status:   h.status,
				})
			}
			sd.Exemplars = append(sd.Exemplars, xd)
		}
		doc.Scopes = append(doc.Scopes, sd)
	}
	sort.Slice(doc.Scopes, func(i, j int) bool { return doc.Scopes[i].Scope < doc.Scopes[j].Scope })
	return doc
}

// hopName renders a ledger-entry key.
func hopName(key hopKey, label func(uint16) string) string {
	if key.seg {
		return "seg:" + label(key.label)
	}
	return key.from.String() + "→" + key.to.String()
}

// FromLog replays a parsed stream log through a fresh engine, in global
// file order — exactly the sequence the online stream observer saw — and
// flushes it. Snapshotting the result with LogResolvers(l) reproduces the
// online /health blame section byte for byte.
func FromLog(l *telemetry.Log, opt Options) *Engine {
	e := New(opt)
	e.SetTimebase(l.Timebase)
	l.Replay(e.Feed)
	e.Flush()
	return e
}

// PublishMetrics writes the engine's aggregates into the metrics registry
// as chainmon_blame_* gauges. Call from a Sink export hook so every scrape
// and snapshot sees current values.
func (e *Engine) PublishMetrics(reg *telemetry.Registry, res Resolvers) {
	doc := e.Snapshot(res)
	reg.Gauge("chainmon_blame_epoch",
		"Largest budget-table epoch observed by the blame engine.").Set(int64(doc.Epoch))
	reg.Gauge("chainmon_blame_flows_total",
		"Activations attributed by the blame engine.").Set(int64(doc.Flows))
	reg.Gauge("chainmon_blame_missed_total",
		"Attributed activations whose worst verdict was a miss.").Set(int64(doc.Missed))
	for _, sc := range doc.Scopes {
		scopeL := telemetry.L("scope", sc.Scope)
		reg.Gauge("chainmon_blame_scope_blame_ns",
			"Total blamed overrun time of a scope, in nanoseconds.", scopeL...).Set(sc.TotalBlameNS)
		for _, h := range sc.Hops {
			labels := telemetry.L("scope", sc.Scope, "hop", h.Name)
			reg.Gauge("chainmon_blame_share_ppm",
				"Fraction of the scope's blamed overrun attributable to a hop, in ppm.", labels...).Set(h.SharePPM)
			reg.Gauge("chainmon_blame_overrun_ns",
				"Blamed overrun of a hop on missed activations, in nanoseconds.",
				append(labels, telemetry.Label{Name: "q", Value: "max"})...).Set(h.MaxNS)
		}
		for _, s := range sc.Segments {
			labels := telemetry.L("scope", sc.Scope, "segment", s.Name)
			reg.Gauge("chainmon_blame_segment_overrun_ns",
				"Accumulated budget overrun of a segment, in nanoseconds.", labels...).Set(s.OverrunNS)
			reg.Gauge("chainmon_blame_segment_budget_ns",
				"Segment budget most recently seen in force at arm time, in nanoseconds.", labels...).Set(s.BudgetNS)
		}
	}
}

// Summary is the compact per-vehicle rollup the fleet layer aggregates:
// hop blame totals without sketches or exemplars.
type Summary struct {
	Flows   uint64     `json:"flows"`
	Missed  uint64     `json:"missed"`
	BlameNS int64      `json:"blame_ns"`
	Hops    []HopShare `json:"hops,omitempty"`
}

// HopShare is one hop's share of a Summary's blame.
type HopShare struct {
	Name     string `json:"name"`
	BlameNS  int64  `json:"blame_ns"`
	SharePPM int64  `json:"share_ppm"`
}

// Summarize folds the engine's scopes into one compact Summary (hop names
// merged across scopes, sorted).
func (e *Engine) Summarize(res Resolvers) Summary {
	doc := e.Snapshot(res)
	sum := Summary{Flows: doc.Flows, Missed: doc.Missed}
	byName := map[string]int64{}
	for _, sc := range doc.Scopes {
		for _, h := range sc.Hops {
			byName[h.Name] += h.BlameNS
			sum.BlameNS += h.BlameNS
		}
	}
	sum.Hops = sharesOf(byName, sum.BlameNS)
	return sum
}

// MergeSummaries folds per-vehicle summaries into a fleet-level one; the
// result is independent of input order except for the (stable, sorted) hop
// naming, so serial and parallel fleet merges agree byte for byte.
func MergeSummaries(sums []*Summary) Summary {
	out := Summary{}
	byName := map[string]int64{}
	for _, s := range sums {
		if s == nil {
			continue
		}
		out.Flows += s.Flows
		out.Missed += s.Missed
		out.BlameNS += s.BlameNS
		for _, h := range s.Hops {
			byName[h.Name] += h.BlameNS
		}
	}
	out.Hops = sharesOf(byName, out.BlameNS)
	return out
}

func sharesOf(byName map[string]int64, total int64) []HopShare {
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	var hops []HopShare
	for _, name := range names {
		hs := HopShare{Name: name, BlameNS: byName[name]}
		if total > 0 {
			hs.SharePPM = hs.BlameNS * 1_000_000 / total
		}
		hops = append(hops, hs)
	}
	return hops
}

// String renders a one-line digest for logs and fleet summaries.
func (s Summary) String() string {
	worst := "none"
	if len(s.Hops) > 0 {
		top := s.Hops[0]
		for _, h := range s.Hops[1:] {
			if h.BlameNS > top.BlameNS || (h.BlameNS == top.BlameNS && h.Name < top.Name) {
				top = h
			}
		}
		worst = fmt.Sprintf("%s (%d ppm)", top.Name, top.SharePPM)
	}
	return fmt.Sprintf("flows=%d missed=%d blame=%dns worst=%s", s.Flows, s.Missed, s.BlameNS, worst)
}
