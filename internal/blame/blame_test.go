package blame

import (
	"testing"

	"chainmon/internal/telemetry"
)

// feedFlow pushes a minimal budgeted-segment activation into the engine:
// ring-post-start at start, timeout-arm with an absolute deadline, and a
// verdict at start+e2e. label is the segment, scope the flow scope.
func feedFlow(e *Engine, scope uint8, act uint64, start, e2e, budget int64, label uint16, status uint8) {
	flow := telemetry.FlowID(scope, act)
	e.Feed(0, telemetry.Event{TS: start, Act: act, Flow: flow,
		Kind: telemetry.KindRingPostStart, Label: label})
	e.Feed(1, telemetry.Event{TS: start, Act: act, Arg: start + budget, Flow: flow,
		Kind: telemetry.KindTimeoutArm, Label: label})
	e.Feed(1, telemetry.Event{TS: start + e2e, Act: act, Arg: e2e, Flow: flow,
		Kind: telemetry.KindVerdict, Label: label, Status: status})
}

func res() Resolvers {
	return Resolvers{
		Label: func(id uint16) string { return map[uint16]string{1: "segA", 2: "segB"}[id] },
		Scope: func(id uint8) string { return "s" },
	}
}

// TestLedgerTelescoping pins the conservation invariant on a synthetic
// activation with hops outside any segment span: consecutive-hop deltas sum
// exactly to the end-to-end latency, so per scope Σ hop totals == Σ e2e.
func TestLedgerTelescoping(t *testing.T) {
	e := New(Options{})
	flow := telemetry.FlowID(3, 7)
	// dds-send(0) → net-send(10) → dds-recv(25) → post(30) → arm → verdict(70)
	e.Feed(0, telemetry.Event{TS: 0, Act: 7, Flow: flow, Kind: telemetry.KindDDSSend})
	e.Feed(0, telemetry.Event{TS: 10, Act: 7, Flow: flow, Kind: telemetry.KindNetSend})
	e.Feed(0, telemetry.Event{TS: 25, Act: 7, Flow: flow, Kind: telemetry.KindDDSRecv})
	e.Feed(1, telemetry.Event{TS: 30, Act: 7, Flow: flow, Kind: telemetry.KindRingPostStart, Label: 1})
	e.Feed(1, telemetry.Event{TS: 30, Act: 7, Arg: 30 + 15, Flow: flow, Kind: telemetry.KindTimeoutArm, Label: 1})
	e.Feed(1, telemetry.Event{TS: 70, Act: 7, Arg: 40, Flow: flow,
		Kind: telemetry.KindVerdict, Label: 1, Status: telemetry.StatusMissed})
	e.Flush()

	doc := e.Snapshot(res())
	if doc.Flows != 1 || doc.Missed != 1 {
		t.Fatalf("flows=%d missed=%d, want 1/1", doc.Flows, doc.Missed)
	}
	sc := doc.Scopes[0]
	if sc.E2ETotalNS != 70 {
		t.Fatalf("e2e total = %d, want 70", sc.E2ETotalNS)
	}
	var sum int64
	for _, h := range sc.Hops {
		sum += h.TotalNS
	}
	if sum != sc.E2ETotalNS {
		t.Errorf("Σ hop totals = %d, want e2e total %d (ledger must telescope)", sum, sc.E2ETotalNS)
	}
	// The segment dwelled 40 against a budget of 15: 25 of overrun, blamed
	// on the seg hop; the transit hops carry their full deltas as blame.
	var seg *SegmentDoc
	for i := range sc.Segments {
		if sc.Segments[i].Name == "segA" {
			seg = &sc.Segments[i]
		}
	}
	if seg == nil {
		t.Fatal("segment segA missing from slack table")
	}
	if seg.BudgetNS != 15 || seg.OverrunNS != 25 || seg.Armed != 1 || seg.Missed != 1 {
		t.Errorf("segA budget=%d overrun=%d armed=%d missed=%d, want 15/25/1/1",
			seg.BudgetNS, seg.OverrunNS, seg.Armed, seg.Missed)
	}
	// Blame shares sum to ~1e6 (integer division loses at most len(hops)-1).
	var share int64
	for _, h := range sc.Hops {
		share += h.SharePPM
	}
	if sc.TotalBlameNS > 0 && (share < 1_000_000-int64(len(sc.Hops)) || share > 1_000_000) {
		t.Errorf("blame shares sum to %d ppm, want 1e6−ε..1e6", share)
	}
}

// TestExemplarEviction pins the deterministic top-K ordering: worse = larger
// e2e, ties by ascending flow id, capped at K with the best-of-the-worst
// evicted first.
func TestExemplarEviction(t *testing.T) {
	e := New(Options{TopK: 2})
	feedFlow(e, 1, 1, 0, 10, 5, 1, telemetry.StatusMissed)
	feedFlow(e, 1, 2, 100, 30, 5, 1, telemetry.StatusMissed)
	feedFlow(e, 1, 3, 200, 20, 5, 1, telemetry.StatusMissed)
	feedFlow(e, 1, 4, 300, 30, 5, 1, telemetry.StatusMissed)
	feedFlow(e, 1, 5, 400, 8, 5, 1, telemetry.StatusOK) // OK: never an exemplar
	e.Flush()

	doc := e.Snapshot(res())
	xs := doc.Scopes[0].Exemplars
	if len(xs) != 2 {
		t.Fatalf("%d exemplars, want 2", len(xs))
	}
	// Both e2e=30; the tie goes to the lower flow id (act 2 before act 4).
	if xs[0].Act != 2 || xs[1].Act != 4 {
		t.Errorf("exemplar acts = %d,%d, want 2,4", xs[0].Act, xs[1].Act)
	}
	if xs[0].Rank != 1 || xs[1].Rank != 2 {
		t.Errorf("ranks = %d,%d, want 1,2", xs[0].Rank, xs[1].Rank)
	}
	for _, x := range xs {
		if x.E2ENS != 30 || x.Status != "missed" || x.Primary != "segA" {
			t.Errorf("exemplar %+v, want e2e=30 status=missed primary=segA", x)
		}
	}
}

// TestEpochTracking pins the budget-epoch bookkeeping: the engine's epoch is
// the max budget-swap epoch seen, and a segment's slack row records the
// epoch in force when its activation was armed.
func TestEpochTracking(t *testing.T) {
	e := New(Options{})
	feedFlow(e, 1, 1, 0, 10, 20, 1, telemetry.StatusOK)
	e.Feed(0, telemetry.Event{TS: 50, Act: 3, Arg: 7, Kind: telemetry.KindBudgetSwap, Label: 1})
	if e.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", e.Epoch())
	}
	feedFlow(e, 1, 2, 100, 10, 7, 1, telemetry.StatusOK)
	e.Flush()

	doc := e.Snapshot(res())
	if doc.Epoch != 3 {
		t.Errorf("doc epoch = %d, want 3", doc.Epoch)
	}
	seg := doc.Scopes[0].Segments[0]
	if seg.Epoch != 3 || seg.BudgetNS != 7 {
		t.Errorf("segment epoch=%d budget=%d, want 3/7 (last arm under the swapped budget)", seg.Epoch, seg.BudgetNS)
	}
}

// TestConstantMemoryCaps pins the bounded-state behavior: beyond MaxPending
// the oldest flow is force-finalized (and counted), and hops past MaxHops
// are dropped (and counted) rather than retained.
func TestConstantMemoryCaps(t *testing.T) {
	e := New(Options{MaxPending: 4, MaxHops: 3, Window: 1 << 30})
	for act := uint64(1); act <= 8; act++ {
		flow := telemetry.FlowID(1, act)
		e.Feed(0, telemetry.Event{TS: int64(act) * 10, Act: act, Flow: flow, Kind: telemetry.KindDDSSend})
	}
	for i := 0; i < 10; i++ {
		flow := telemetry.FlowID(1, 8)
		e.Feed(0, telemetry.Event{TS: 100 + int64(i), Act: 8, Flow: flow, Kind: telemetry.KindNetSend})
	}
	e.Flush()
	doc := e.Snapshot(res())
	if doc.Forced == 0 {
		t.Errorf("forced finalizations = 0, want > 0 with MaxPending 4 and 8 live flows")
	}
	if doc.TruncatedHops == 0 {
		t.Errorf("truncated hops = 0, want > 0 with MaxHops 3 and an 11-hop flow")
	}
}

// TestSweepFinalizesOutOfWindow pins the online finalization rule: once
// activation a+Window arrives in a scope, activation a resolves without a
// Flush — the live /health path.
func TestSweepFinalizesOutOfWindow(t *testing.T) {
	e := New(Options{Window: 4})
	feedFlow(e, 1, 1, 0, 10, 20, 1, telemetry.StatusOK)
	doc := e.Snapshot(res())
	if doc.Flows != 0 {
		t.Fatalf("flow finalized before its window elapsed")
	}
	feedFlow(e, 1, 5, 500, 10, 20, 1, telemetry.StatusOK)
	doc = e.Snapshot(res())
	if doc.Flows != 1 {
		t.Errorf("flows = %d, want 1 (act 1 is 4 activations behind act 5)", doc.Flows)
	}
}
