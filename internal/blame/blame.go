// Package blame is the online per-activation miss-attribution engine: it
// stitches the flow-id hop events the telemetry layer already emits
// (dds-send → net-send → dds-recv → ring-post → verdict, including pub-skip
// and recovery paths) into per-activation hop ledgers, scores each ledger
// entry against the per-segment budget that was in force when the
// activation was armed, and folds the result into constant-memory
// aggregates: per-hop overrun sketches (livestats DDSketch machinery),
// per-hop blame-share counters, per-segment slack tables and a top-K
// worst-exemplar store with deterministic eviction.
//
// The engine is fed one event at a time through Feed, from either of two
// equivalent taps:
//
//   - StreamWriter.SetObserver, which sees exactly the events — in exactly
//     the order — that reach a CHMTRC01 stream log. Replaying the written
//     log through FromLog therefore reconstructs a byte-identical engine
//     state: the online /health blame section and the offline
//     `chainmon trace report -blame` agree byte for byte, on both
//     timebases.
//   - Recorder.SetObserver, for runs without a stream log (plain sim runs,
//     fleet vehicles), where append order is the feed order.
//
// Feed never calls back into the telemetry layer: label, scope and track
// ids stay raw inside the engine and are resolved to names only at
// Snapshot time, outside the recorder and stream locks. That discipline is
// what makes the stream-observer tap deadlock-free (the observer runs
// under the stream writer's lock).
package blame

import (
	"math"
	"sort"
	"sync"

	"chainmon/internal/livestats"
	"chainmon/internal/telemetry"
)

// Defaults for Options zero values.
const (
	DefaultTopK       = 4
	DefaultMaxHops    = 64
	DefaultMaxPending = 4096
	DefaultWindow     = 64
)

// Options configures an Engine. The zero value selects the defaults.
type Options struct {
	// Alpha is the relative accuracy of the overrun/dwell sketches
	// (0 selects livestats.DefaultAlpha).
	Alpha float64
	// TopK is how many worst missed activations are retained per scope as
	// full-timeline exemplars (0 selects DefaultTopK).
	TopK int
	// MaxHops caps the hops retained per activation; hops beyond the cap
	// are dropped and counted (0 selects DefaultMaxHops).
	MaxHops int
	// MaxPending caps the number of concurrently unresolved activations;
	// beyond it the oldest is force-finalized and counted (0 selects
	// DefaultMaxPending). Together with MaxHops this makes the engine's
	// memory constant no matter how long the run is.
	MaxPending int
	// Window is the activation distance after which a flow is considered
	// resolved: once an event for activation a+Window arrives in the same
	// scope, activation a is finalized. It matches the monitor's verdict
	// reorder window (0 selects DefaultWindow).
	Window uint64
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = livestats.DefaultAlpha
	}
	if o.TopK <= 0 {
		o.TopK = DefaultTopK
	}
	if o.MaxHops <= 0 {
		o.MaxHops = DefaultMaxHops
	}
	if o.MaxPending <= 0 {
		o.MaxPending = DefaultMaxPending
	}
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	return o
}

// hop is one retained event of a pending activation.
type hop struct {
	ts     int64
	arg    int64
	epoch  uint64 // engine epoch at feed time (meaningful on timeout-arm hops)
	kind   telemetry.Kind
	label  uint16
	track  uint16
	status uint8
}

// flowState is one unresolved activation.
type flowState struct {
	flow    uint32
	act     uint64 // full activation index (first non-zero Event.Act seen)
	hops    []hop
	dropped int
}

// hopKey names one ledger-entry population without resolving strings:
// either a budgeted segment span (seg=true, label) or a kind→kind
// transition outside every span.
type hopKey struct {
	seg      bool
	label    uint16
	from, to telemetry.Kind
}

// hopAgg is the constant-memory aggregate of one ledger-entry population.
type hopAgg struct {
	count   uint64 // ledger entries folded in (all flows)
	totalNS int64  // sum of entry deltas (all flows)
	blameNS int64  // sum of overrun contributions (missed flows only)
	overrun *livestats.Sketch
}

// segAgg is one segment's slack table.
type segAgg struct {
	label     uint16
	armed     uint64 // activations with an observed budget
	missed    uint64
	budgetNS  int64  // budget most recently seen in force
	epoch     uint64 // budget epoch most recently seen at arm time
	overrunNS int64  // Σ max(0, dwell − budget)
	dwell     *livestats.Sketch
}

// exemplar is one retained worst-miss activation.
type exemplar struct {
	flow     uint32
	act      uint64
	e2eNS    int64
	status   uint8
	epoch    uint64
	primary  uint16 // label of the most-overrun segment
	timeline []hop
}

// scopeAgg aggregates one flow scope (one chain).
type scopeAgg struct {
	scope      uint8
	flows      uint64
	missed     uint64
	skipped    uint64 // flows with < 2 hops (nothing to attribute)
	e2eNS      int64  // Σ end-to-end latency over attributed flows
	maxAct     uint64
	pending    []uint32 // unresolved flows of this scope, insertion order
	hops       map[hopKey]*hopAgg
	hopOrder   []hopKey
	segs       map[uint16]*segAgg
	segOrder   []uint16
	exemplars  []*exemplar // FlowWorse order, capped at TopK
	admissions uint64      // exemplar-store admissions (incl. later-evicted)
}

// Engine is the online attribution engine. All methods are safe for
// concurrent use; Feed is designed to run under the telemetry stream lock
// and therefore never calls back into the telemetry layer.
type Engine struct {
	mu       sync.Mutex
	opt      Options
	timebase string
	epoch    uint64 // largest budget-swap epoch seen
	flows    map[uint32]*flowState
	order    []uint32 // pending flows in insertion order (forced eviction)
	scopes   map[uint8]*scopeAgg
	scopeIDs []uint8

	finalized     uint64
	truncatedHops uint64
	forced        uint64

	// pendingExemplars buffers flight-recorder records for admitted
	// exemplars; FlushExemplars drains it outside every lock.
	pendingExemplars []telemetry.Event
}

// New creates an engine.
func New(opt Options) *Engine {
	return &Engine{
		opt:    opt.withDefaults(),
		flows:  map[uint32]*flowState{},
		scopes: map[uint8]*scopeAgg{},
	}
}

// SetTimebase records the timestamp domain of the fed events ("sim" or
// "wall"); it is carried into the snapshot for self-description.
func (e *Engine) SetTimebase(tb string) {
	e.mu.Lock()
	e.timebase = tb
	e.mu.Unlock()
}

// Feed absorbs one event. It is the observer callback for both
// StreamWriter.SetObserver and Recorder.SetObserver.
func (e *Engine) Feed(track uint16, ev telemetry.Event) {
	e.mu.Lock()
	defer e.mu.Unlock()

	switch ev.Kind {
	case telemetry.KindBudgetSwap:
		if ev.Act > e.epoch {
			e.epoch = ev.Act
		}
		return
	case telemetry.KindBlameExemplar:
		return // the engine's own flight-recorder records
	}
	if ev.Flow == 0 {
		return
	}

	scopeID := telemetry.FlowScopeOf(ev.Flow)
	act := telemetry.FlowAct(ev.Flow)
	sc := e.scope(scopeID)

	// Activation progress finalizes flows that fell out of the reorder
	// window: every hop of activation a precedes the first event of a+W.
	if act > sc.maxAct {
		sc.maxAct = act
		e.sweepLocked(sc)
	}

	fs, ok := e.flows[ev.Flow]
	if !ok {
		fs = &flowState{flow: ev.Flow}
		e.flows[ev.Flow] = fs
		e.order = append(e.order, ev.Flow)
		sc.pending = append(sc.pending, ev.Flow)
		e.evictLocked()
	}
	if fs.act == 0 && ev.Act != 0 {
		fs.act = ev.Act
	}
	if len(fs.hops) >= e.opt.MaxHops {
		fs.dropped++
		e.truncatedHops++
		return
	}
	fs.hops = append(fs.hops, hop{
		ts: ev.TS, arg: ev.Arg, epoch: e.epoch,
		kind: ev.Kind, label: ev.Label, track: track, status: ev.Status,
	})
}

// Epoch returns the largest budget-table epoch the engine has observed
// (via KindBudgetSwap events); 0 before any swap.
func (e *Engine) Epoch() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epoch
}

// Flush finalizes every still-pending activation, in insertion order. Call
// at end of run (and FromLog calls it at end of log) before Snapshot, so
// the tail of the run is attributed too.
func (e *Engine) Flush() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, id := range e.order {
		if fs, ok := e.flows[id]; ok {
			e.finalizeLocked(fs)
		}
	}
	e.order = e.order[:0]
	for _, sc := range e.scopes {
		sc.pending = sc.pending[:0]
	}
}

// scope returns (creating) the aggregate of a flow scope; callers hold e.mu.
func (e *Engine) scope(id uint8) *scopeAgg {
	sc, ok := e.scopes[id]
	if !ok {
		sc = &scopeAgg{
			scope: id,
			hops:  map[hopKey]*hopAgg{},
			segs:  map[uint16]*segAgg{},
		}
		e.scopes[id] = sc
		e.scopeIDs = append(e.scopeIDs, id)
	}
	return sc
}

// sweepLocked finalizes the scope's flows whose activation fell at least
// Window behind the scope's newest activation.
func (e *Engine) sweepLocked(sc *scopeAgg) {
	kept := sc.pending[:0]
	for _, id := range sc.pending {
		fs, ok := e.flows[id]
		if !ok {
			continue // already force-finalized
		}
		if telemetry.FlowAct(id)+e.opt.Window <= sc.maxAct {
			e.finalizeLocked(fs)
			continue
		}
		kept = append(kept, id)
	}
	sc.pending = kept
	e.trimOrderLocked()
}

// trimOrderLocked drops finalized flows off the front of the global
// insertion-order list and compacts its backing array when mostly stale, so
// the list stays proportional to the live pending set on unbounded runs.
func (e *Engine) trimOrderLocked() {
	for len(e.order) > 0 {
		if _, ok := e.flows[e.order[0]]; ok {
			break
		}
		e.order = e.order[1:]
	}
	if cap(e.order) > 4*e.opt.MaxPending && len(e.order) <= e.opt.MaxPending {
		e.order = append(make([]uint32, 0, 2*e.opt.MaxPending), e.order...)
	}
}

// evictLocked force-finalizes the oldest pending flow when the pending cap
// is exceeded, keeping engine memory constant; callers hold e.mu.
func (e *Engine) evictLocked() {
	for len(e.flows) > e.opt.MaxPending {
		// Pop stale entries (already finalized by a sweep) off the front.
		for len(e.order) > 0 {
			if _, ok := e.flows[e.order[0]]; ok {
				break
			}
			e.order = e.order[1:]
		}
		if len(e.order) == 0 {
			return
		}
		id := e.order[0]
		e.order = e.order[1:]
		e.forced++
		e.finalizeLocked(e.flows[id])
	}
}

// finalizeLocked resolves one activation: sorts its hops, builds the slack
// ledger and folds it into the scope aggregates; callers hold e.mu.
func (e *Engine) finalizeLocked(fs *flowState) {
	delete(e.flows, fs.flow)
	e.finalized++
	sc := e.scope(telemetry.FlowScopeOf(fs.flow))

	hops := fs.hops
	if len(hops) < 2 {
		sc.skipped++
		return
	}
	// Stable sort by timestamp only: equal-timestamp hops keep feed order,
	// which is identical online and offline by the observer contract.
	sort.SliceStable(hops, func(i, j int) bool { return hops[i].ts < hops[j].ts })

	e2e := hops[len(hops)-1].ts - hops[0].ts
	act := fs.act
	if act == 0 {
		act = telemetry.FlowAct(fs.flow)
	}

	// Segment spans: [first ring-post-start, verdict] per segment label,
	// with the budget in force at arm time read off the arm event itself
	// (absolute deadline − span start = the monitored deadline d_mon that
	// epoch had staged for the segment).
	spans := segSpans(hops)

	// Worst verdict across the activation's segments.
	worst := telemetry.StatusOK
	for i := range hops {
		if hops[i].kind == telemetry.KindVerdict && hops[i].status > worst {
			worst = hops[i].status
		}
	}
	missed := worst == telemetry.StatusMissed

	sc.flows++
	sc.e2eNS += e2e
	if missed {
		sc.missed++
	}

	// The ledger: consecutive-hop deltas telescope to exactly the
	// end-to-end latency — nothing lost, nothing double-counted. Entries
	// whose endpoints both lie inside a segment span fold into that
	// segment's population; the rest are kind→kind transitions.
	segDelta := map[uint16]int64{}
	for i := 1; i < len(hops); i++ {
		delta := hops[i].ts - hops[i-1].ts
		key := hopKey{from: hops[i-1].kind, to: hops[i].kind}
		for _, sp := range spans {
			if hops[i-1].ts >= sp.start && hops[i].ts <= sp.end {
				key = hopKey{seg: true, label: sp.label}
				segDelta[sp.label] += delta
				break
			}
		}
		agg := sc.hop(key, e.opt.Alpha)
		agg.count++
		agg.totalNS += delta
		if missed && !key.seg {
			agg.blameNS += delta
			agg.overrun.Observe(float64(delta))
		}
	}

	// Per-segment slack accounting + the segment share of the blame: a
	// budgeted segment is blamed only for its overrun beyond the budget in
	// force when it was armed, not for its whole dwell.
	for _, sp := range spans {
		sa := sc.seg(sp.label, e.opt.Alpha)
		dwell := sp.end - sp.start
		sa.dwell.Observe(float64(dwell))
		if sp.hasBudget {
			sa.armed++
			sa.budgetNS = sp.budget
			sa.epoch = sp.epoch
		}
		if sp.missed {
			sa.missed++
		}
		over := dwell - sp.budget
		if !sp.hasBudget {
			over = segDelta[sp.label] // unbudgeted span: blame the full dwell
		}
		if over < 0 {
			over = 0
		}
		sa.overrunNS += over
		if missed {
			agg := sc.hop(hopKey{seg: true, label: sp.label}, e.opt.Alpha)
			agg.blameNS += over
			agg.overrun.Observe(float64(over))
		}
	}

	if missed {
		e.admitExemplarLocked(sc, fs, act, e2e, worst, spans)
	}
}

// span is one segment's occupancy inside a single activation.
type span struct {
	label     uint16
	start     int64
	end       int64
	budget    int64
	epoch     uint64
	hasBudget bool
	missed    bool
}

// segSpans extracts the per-segment spans of a sorted hop timeline.
func segSpans(hops []hop) []span {
	var spans []span
	find := func(label uint16) *span {
		for i := range spans {
			if spans[i].label == label {
				return &spans[i]
			}
		}
		return nil
	}
	for i := range hops {
		h := &hops[i]
		switch h.kind {
		case telemetry.KindRingPostStart:
			if find(h.label) == nil {
				spans = append(spans, span{label: h.label, start: h.ts, end: hops[len(hops)-1].ts})
			}
		case telemetry.KindTimeoutArm:
			if sp := find(h.label); sp != nil && !sp.hasBudget {
				sp.budget = h.arg - sp.start
				sp.epoch = h.epoch
				sp.hasBudget = true
			}
		case telemetry.KindVerdict:
			if sp := find(h.label); sp != nil {
				sp.end = h.ts
				if h.status == telemetry.StatusMissed {
					sp.missed = true
				}
			}
		}
	}
	// Deterministic span precedence for overlapping spans: by start time,
	// ties by label id.
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].label < spans[j].label
	})
	return spans
}

// hop returns (creating) a ledger-entry aggregate; callers hold e.mu.
func (sc *scopeAgg) hop(key hopKey, alpha float64) *hopAgg {
	agg, ok := sc.hops[key]
	if !ok {
		agg = &hopAgg{overrun: livestats.NewSketch(alpha)}
		sc.hops[key] = agg
		sc.hopOrder = append(sc.hopOrder, key)
	}
	return agg
}

// seg returns (creating) a segment slack row; callers hold e.mu.
func (sc *scopeAgg) seg(label uint16, alpha float64) *segAgg {
	sa, ok := sc.segs[label]
	if !ok {
		sa = &segAgg{label: label, dwell: livestats.NewSketch(alpha)}
		sc.segs[label] = sa
		sc.segOrder = append(sc.segOrder, label)
	}
	return sa
}

// admitExemplarLocked inserts a missed activation into the scope's top-K
// worst-exemplar store. Ordering and eviction are deterministic: worse =
// telemetry.FlowWorse (end-to-end desc, flow id asc) — the same rule the
// trace report's -top list uses, so online top-K and offline -top agree.
func (e *Engine) admitExemplarLocked(sc *scopeAgg, fs *flowState, act uint64, e2e int64, worst uint8, spans []span) {
	k := e.opt.TopK
	xs := sc.exemplars
	if len(xs) >= k && !telemetry.FlowWorse(e2e, fs.flow, xs[len(xs)-1].e2eNS, xs[len(xs)-1].flow) {
		return
	}
	var primary uint16
	var primaryOver int64 = -1
	var epoch uint64
	for _, sp := range spans {
		over := sp.end - sp.start - sp.budget
		if sp.hasBudget && sp.epoch > epoch {
			epoch = sp.epoch
		}
		if over > primaryOver {
			primaryOver = over
			primary = sp.label
		}
	}
	x := &exemplar{
		flow: fs.flow, act: act, e2eNS: e2e, status: worst, epoch: epoch,
		primary:  primary,
		timeline: append([]hop(nil), fs.hops...),
	}
	pos := len(xs)
	for pos > 0 && telemetry.FlowWorse(e2e, fs.flow, xs[pos-1].e2eNS, xs[pos-1].flow) {
		pos--
	}
	xs = append(xs, nil)
	copy(xs[pos+1:], xs[pos:])
	xs[pos] = x
	if len(xs) > k {
		xs = xs[:k]
	}
	sc.exemplars = xs
	sc.admissions++

	// Buffer the flight-recorder record; FlushExemplars appends it outside
	// the locks (an Append from here would re-enter the stream writer).
	e.pendingExemplars = append(e.pendingExemplars, telemetry.Event{
		TS:     fs.hops[len(fs.hops)-1].ts,
		Act:    act,
		Arg:    e2e,
		Flow:   0, // deliberately not part of the flow it describes
		Label:  primary,
		Kind:   telemetry.KindBlameExemplar,
		Status: worst,
	})
}

// FlushExemplars appends the buffered exemplar-admission records to the
// given flight-recorder track (conventionally named "blame-exemplar").
// It must be called from the track's owning goroutine, outside the stream
// lock — never from inside Feed. Records describe admissions; an exemplar
// later evicted by a worse one keeps its admission record, like any other
// flight-recorder history. A nil track just drops the buffer.
func (e *Engine) FlushExemplars(track *telemetry.Track) int {
	e.mu.Lock()
	evs := e.pendingExemplars
	e.pendingExemplars = nil
	e.mu.Unlock()
	for _, ev := range evs {
		track.Append(ev)
	}
	return len(evs)
}

func sketchQuantiles(sk *livestats.Sketch) (p50, p95, p99, max int64) {
	q := func(v float64) int64 {
		if math.IsNaN(v) {
			return 0
		}
		return int64(v)
	}
	return q(sk.Quantile(0.50)), q(sk.Quantile(0.95)), q(sk.Quantile(0.99)), q(sk.Max())
}
