package simtime

import (
	"testing"
	"time"

	rt "chainmon/internal/runtime"
	"chainmon/internal/sim"
)

func TestClockAndTimerHost(t *testing.T) {
	k := sim.NewKernel()
	c := Clock{K: k}
	h := TimerHost{K: k}

	var order []string
	h.After(5*time.Millisecond, func() { order = append(order, "after") })
	h.At(rt.Time(2*time.Millisecond.Nanoseconds()), 0, func() { order = append(order, "at") })
	cancelled := h.After(time.Millisecond, func() { order = append(order, "cancelled") })
	cancelled.Cancel()
	k.Run()

	if len(order) != 2 || order[0] != "at" || order[1] != "after" {
		t.Errorf("fire order = %v, want [at after]", order)
	}
	if got := c.Now(); got != rt.Time(5*time.Millisecond.Nanoseconds()) {
		t.Errorf("clock after run = %v", got)
	}
}

func TestExecutorStartedTime(t *testing.T) {
	k := sim.NewKernel()
	p := sim.NewProcessor(k, sim.NewRNG(1), "ecu", 1)
	th := p.NewThread("mon", 100)
	e := Executor{T: th}

	var started, direct rt.Time
	k.After(time.Millisecond, func() {
		e.Exec("work", 10*time.Microsecond, func(s rt.Time) { started = s })
		e.ExecDirect("work2", 10*time.Microsecond, func(s rt.Time) { direct = s })
	})
	k.Run()
	if started < rt.Time(time.Millisecond.Nanoseconds()) {
		t.Errorf("Exec started = %v, before enqueue time", started)
	}
	if direct < rt.Time(time.Millisecond.Nanoseconds()) {
		t.Errorf("ExecDirect started = %v, before enqueue time", direct)
	}
}

type fixedSync struct{ d sim.Duration }

func (f fixedSync) GlobalAfter(sim.Time) sim.Duration { return f.d }

func TestSyncClockForwards(t *testing.T) {
	sc := SyncClock{C: fixedSync{d: 7 * time.Millisecond}}
	if got := sc.GlobalAfter(0); got != 7*time.Millisecond {
		t.Errorf("GlobalAfter = %v", got)
	}
}
