// Package simtime adapts the deterministic simulation substrate
// (internal/sim, internal/vclock) to the runtime abstraction the monitors
// are written against. Every adapter is a zero-state wrapper that forwards
// to exactly one kernel or thread operation, in the same order the monitor
// issues them — the property that keeps a refactored monitor bit-for-bit
// identical to its pre-abstraction behaviour (same RNG draw order, same
// event scheduling order).
package simtime

import (
	rt "chainmon/internal/runtime"
	"chainmon/internal/sim"
)

// Clock reads the simulation kernel's virtual time.
type Clock struct{ K *sim.Kernel }

// Now returns the current virtual time.
func (c Clock) Now() rt.Time { return rt.Time(c.K.Now()) }

// Timer wraps one scheduled kernel event.
type Timer struct {
	k  *sim.Kernel
	ev *sim.Event
}

// Cancel removes the event from the kernel queue (idempotent; cancelling a
// fired event is a no-op, matching sim.Kernel.Cancel).
func (t Timer) Cancel() { t.k.Cancel(t.ev) }

// TimerHost schedules one-shot timers on the kernel event queue.
type TimerHost struct{ K *sim.Kernel }

// After schedules fn d from now.
func (h TimerHost) After(d rt.Duration, fn func()) rt.Timer {
	return Timer{h.K, h.K.After(d, fn)}
}

// At schedules fn at the absolute virtual time t with the given event
// priority (ties at the same instant fire in priority order).
func (h TimerHost) At(t rt.Time, priority int, fn func()) rt.Timer {
	return Timer{h.K, h.K.AtPriority(sim.Time(t), priority, fn)}
}

// Executor dispatches work onto a simulated thread. The started time passed
// to fn is the work item's dispatch time, after queueing and wakeup
// latency.
type Executor struct{ T *sim.Thread }

// Exec enqueues with a modeled wakeup (context-switch) latency.
func (e Executor) Exec(label string, cost rt.Duration, fn func(started rt.Time)) {
	var w *sim.WorkItem
	w = e.T.Enqueue(label, cost, func() { fn(rt.Time(w.Started())) })
}

// ExecDirect enqueues without a wakeup — the thread dispatching to itself.
func (e Executor) ExecDirect(label string, cost rt.Duration, fn func(started rt.Time)) {
	var w *sim.WorkItem
	w = e.T.EnqueueDirect(label, cost, func() { fn(rt.Time(w.Started())) })
}

// GlobalAfterer is the part of a synchronized virtual clock
// (internal/vclock) the SyncClock adapter needs.
type GlobalAfterer interface {
	GlobalAfter(localDeadline sim.Time) sim.Duration
}

// SyncClock adapts a PTP-synchronized virtual clock.
type SyncClock struct{ C GlobalAfterer }

// GlobalAfter converts a sender-clock deadline into a local delay.
func (c SyncClock) GlobalAfter(localDeadline rt.Time) rt.Duration {
	return c.C.GlobalAfter(sim.Time(localDeadline))
}
