package runtime

// SegmentHooks customizes one Segment of a Core without the Core knowing
// anything about verdict bookkeeping, telemetry or the timebase. All hooks
// are optional (nil disables them) and run synchronously inside Scan, on the
// monitor's execution context.
type SegmentHooks struct {
	// DrainLatency observes the post → processed latency of every start
	// event, before SkipArm can discard it (Fig. 11 "monitor latency").
	DrainLatency func(lat Duration)
	// SkipArm vetoes arming a timeout for the activation. The local monitor
	// uses it to drop start events of activations that were already handled
	// (propagated-in exceptions).
	SkipArm func(act uint64) bool
	// Arm is invoked when a timeout was armed for the activation; start is
	// the start event as posted (activation, post timestamp, flow id). It
	// may return a Timer whose expiry guarantees a scan pass at the deadline
	// (the simtime path arms a kernel timer; walltime returns nil because
	// its loop already sleeps until NextDeadline). Timers are cancelled when
	// the activation completes in time.
	Arm func(start Event, deadline, now Time) Timer
	// OK is invoked when the end event arrived within the deadline; start
	// is the original start event, end the end-event timestamp.
	OK func(start Event, end Time)
	// Expire is invoked when the deadline passed without an end event — the
	// temporal exception of the paper. start is the original start event.
	Expire func(start Event, deadline, now Time)
}

// Chain composes hooks: h runs first, then next. Observer hooks
// (DrainLatency, OK, Expire) both run; SkipArm vetoes when either side
// vetoes (next still runs, so observers see every event); Arm runs both and
// keeps the first non-nil timer. This is how an observability layer rides
// an already-configured segment without disturbing its verdict logic.
func (h SegmentHooks) Chain(next SegmentHooks) SegmentHooks {
	out := h
	if next.DrainLatency != nil {
		if prev := h.DrainLatency; prev != nil {
			out.DrainLatency = func(lat Duration) { prev(lat); next.DrainLatency(lat) }
		} else {
			out.DrainLatency = next.DrainLatency
		}
	}
	if next.SkipArm != nil {
		if prev := h.SkipArm; prev != nil {
			out.SkipArm = func(act uint64) bool {
				a := prev(act)
				b := next.SkipArm(act)
				return a || b
			}
		} else {
			out.SkipArm = next.SkipArm
		}
	}
	if next.Arm != nil {
		if prev := h.Arm; prev != nil {
			out.Arm = func(start Event, deadline, now Time) Timer {
				t := prev(start, deadline, now)
				if t2 := next.Arm(start, deadline, now); t == nil {
					t = t2
				}
				return t
			}
		} else {
			out.Arm = next.Arm
		}
	}
	if next.OK != nil {
		if prev := h.OK; prev != nil {
			out.OK = func(start Event, end Time) { prev(start, end); next.OK(start, end) }
		} else {
			out.OK = next.OK
		}
	}
	if next.Expire != nil {
		if prev := h.Expire; prev != nil {
			out.Expire = func(start Event, deadline, now Time) {
				prev(start, deadline, now)
				next.Expire(start, deadline, now)
			}
		} else {
			out.Expire = next.Expire
		}
	}
	return out
}

// pendingTimeout is one armed activation of a segment. start retains the
// full start event so the expiry/completion hooks see its flow identity.
// Resolved timeouts are recycled through a Core-level freelist (next), so
// steady-state arming does not allocate.
type pendingTimeout struct {
	start    Event
	deadline Time
	timer    Timer
	next     *pendingTimeout
}

// Segment is one monitored local segment inside a Core: a start ring, an
// end ring and a monitored deadline.
type Segment struct {
	Name string
	DMon Duration

	start   EventRing
	end     EventRing
	hooks   SegmentHooks
	pending map[uint64]*pendingTimeout

	// startBatch/endBatch cache the rings' optional BatchPopper so the
	// per-drain type assertion happens once, at registration.
	startBatch BatchPopper
	endBatch   BatchPopper
}

// StartRing returns the ring the instrumented subscriber posts into.
func (s *Segment) StartRing() EventRing { return s.start }

// EndRing returns the ring the instrumented publisher posts into.
func (s *Segment) EndRing() EventRing { return s.end }

// Pending returns the number of armed timeouts of this segment.
func (s *Segment) Pending() int { return len(s.pending) }

// AppendHooks chains additional hooks after the segment's existing ones
// (see SegmentHooks.Chain). Call it before events flow; hooks run on the
// monitor's execution context.
func (s *Segment) AppendHooks(h SegmentHooks) { s.hooks = s.hooks.Chain(h) }

// Core is the timebase-independent monitor algorithm of the paper (Fig. 4):
// per-segment start/end rings drained in fixed registration order, a
// timeout queue, and temporal exceptions for activations whose end event
// did not arrive within the monitored deadline.
//
// The Core is not a goroutine or a thread — it is driven by its host:
// the simtime LocalMonitor calls Scan from a kernel work item, the
// walltime loop calls it after a semaphore wake or deadline sleep. Scan
// takes the current time as an argument so the Core itself never reads a
// clock; that property is what lets one implementation serve both a
// deterministic simulation and a wall-clock run.
type Core struct {
	segments []*Segment
	deadline deadlineHeap

	// freePending recycles resolved timeout records; batch and due are drain
	// scratch, reused across Scan calls. Segment hooks never re-enter Scan
	// (they observe, arm timers or dispatch handler work items — all
	// deferred), so the scratch cannot be aliased mid-drain.
	freePending *pendingTimeout
	batch       []Event
	due         []*pendingTimeout
}

// drainBatch is the per-call batch size of ring drains: one PopBatch moves
// up to this many events, amortizing the interface call across a burst.
const drainBatch = 128

func (c *Core) newPending() *pendingTimeout {
	p := c.freePending
	if p == nil {
		return &pendingTimeout{}
	}
	c.freePending = p.next
	p.next = nil
	return p
}

func (c *Core) releasePending(p *pendingTimeout) {
	p.start = Event{}
	p.timer = nil
	p.next = c.freePending
	c.freePending = p
}

// NewCore creates an empty monitor core.
func NewCore() *Core { return &Core{} }

// AddSegment registers a segment. Registration order is the fixed order in
// which Scan processes the per-segment rings — the source of the Fig. 10
// asymmetry between the objects and ground segments.
func (c *Core) AddSegment(name string, dMon Duration, start, end EventRing, hooks SegmentHooks) *Segment {
	s := &Segment{
		Name:    name,
		DMon:    dMon,
		start:   start,
		end:     end,
		hooks:   hooks,
		pending: make(map[uint64]*pendingTimeout),
	}
	s.startBatch, _ = start.(BatchPopper)
	s.endBatch, _ = end.(BatchPopper)
	c.segments = append(c.segments, s)
	return s
}

// Segments returns the registered segments in their fixed processing order.
func (c *Core) Segments() []*Segment { return c.segments }

// PendingTimeouts returns the total number of armed timeouts.
func (c *Core) PendingTimeouts() int {
	n := 0
	for _, s := range c.segments {
		n += len(s.pending)
	}
	return n
}

// Scan is one monitor pass: drain all rings in the fixed segment order,
// arm timeouts for new start events, resolve completed activations, then
// fire due temporal exceptions (again in fixed segment order, by
// activation within a segment).
func (c *Core) Scan(now Time) {
	for _, s := range c.segments {
		c.drain(s, now)
	}
	for _, s := range c.segments {
		c.fireDue(s, now)
	}
	// Prune stale heap tops (activations that completed or fired) so the
	// lazy-deletion heap stays bounded by the live pending set instead of
	// growing with the total activation count. The simtime path never calls
	// NextDeadline, so this is its only pruning point.
	for len(c.deadline.entries) > 0 {
		e := c.deadline.entries[0]
		if p, ok := e.seg.pending[e.act]; ok && p.deadline == e.at {
			break
		}
		c.deadline.pop()
	}
}

// popBatch fills buf from the ring, preferring the batch interface. The
// fallback loop gives any EventRing identical batch semantics: same events,
// same order, just one interface call per event.
func popBatch(r EventRing, bp BatchPopper, buf []Event) int {
	if bp != nil {
		return bp.PopBatch(buf)
	}
	n := 0
	for n < len(buf) {
		ev, ok := r.Pop()
		if !ok {
			break
		}
		buf[n] = ev
		n++
	}
	return n
}

func (c *Core) drain(s *Segment, now Time) {
	if c.batch == nil {
		c.batch = make([]Event, drainBatch)
	}
	for {
		n := popBatch(s.start, s.startBatch, c.batch)
		if n == 0 {
			break
		}
		for _, ev := range c.batch[:n] {
			if s.hooks.DrainLatency != nil {
				s.hooks.DrainLatency(now.Sub(ev.TS))
			}
			if s.hooks.SkipArm != nil && s.hooks.SkipArm(ev.Act) {
				continue // propagated-in activation that was already handled
			}
			p := c.newPending()
			p.start = ev
			p.deadline = ev.TS.Add(s.DMon)
			s.pending[ev.Act] = p
			c.deadline.push(deadlineEntry{at: p.deadline, seg: s, act: ev.Act})
			if s.hooks.Arm != nil {
				p.timer = s.hooks.Arm(p.start, p.deadline, now)
			}
			// Deadlines already in the past are picked up by fireDue below.
		}
	}
	for {
		n := popBatch(s.end, s.endBatch, c.batch)
		if n == 0 {
			break
		}
		for _, ev := range c.batch[:n] {
			p, armed := s.pending[ev.Act]
			if !armed {
				// End events for excepted activations are discarded; end events
				// without a start cannot occur (causality).
				continue
			}
			if p.timer != nil {
				p.timer.Cancel()
			}
			delete(s.pending, ev.Act)
			if s.hooks.OK != nil {
				s.hooks.OK(p.start, ev.TS)
			}
			c.releasePending(p)
		}
	}
}

// fireDue raises temporal exceptions for all armed activations of the
// segment whose monitored deadline has passed without an end event. Fired
// entries stay in the deadline heap (lazy deletion) and their scan timers
// are left to expire: a stale ForceWake causes one extra empty pass, which
// is harmless and mirrors the paper's semaphore semantics.
func (c *Core) fireDue(s *Segment, now Time) {
	due := c.due[:0]
	for _, p := range s.pending {
		if p.deadline <= now {
			due = append(due, p)
		}
	}
	// Deterministic order by activation.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && due[j].start.Act < due[j-1].start.Act; j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	for i, p := range due {
		delete(s.pending, p.start.Act)
		if s.hooks.Expire != nil {
			s.hooks.Expire(p.start, p.deadline, now)
		}
		c.releasePending(p)
		due[i] = nil
	}
	c.due = due[:0]
}

// SetDeadline hot-swaps the segment's monitored deadline. It must run on
// the scan thread (the same execution context that calls Scan), which is
// what makes it lock-free: subsequent drains latch the new deadline into
// their pending timeouts, so the swap is a natural barrier — in-flight
// activations keep the deadline they were armed with.
//
// With retime=false (the swap-barrier mode monitors use) that barrier is
// the whole story: on shrink, armed activations still finish under their
// old, longer deadline; on growth, their heap entries simply fire later
// than strictly necessary and the lazy-deletion heap tolerates them.
//
// With retime=true a shrink additionally re-arms every pending timeout
// whose deadline would move earlier: the old heap entry goes stale (pruned
// lazily), a new one is pushed, and the Arm hook runs again so the host
// can program a tighter timer. Re-timing can only raise exceptions earlier
// — it can never turn a would-be exception into an OK — so it preserves
// the zero-false-negative contract. Growth never re-times. The walk reuses
// the Core's due scratch and orders re-arms by activation, keeping the
// operation deterministic and allocation-free after warmup.
func (c *Core) SetDeadline(s *Segment, d Duration, now Time, retime bool) {
	s.DMon = d
	if !retime {
		return
	}
	due := c.due[:0]
	for _, p := range s.pending {
		if p.start.TS.Add(d) < p.deadline {
			due = append(due, p)
		}
	}
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && due[j].start.Act < due[j-1].start.Act; j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	for i, p := range due {
		if p.timer != nil {
			p.timer.Cancel()
			p.timer = nil
		}
		p.deadline = p.start.TS.Add(d)
		c.deadline.push(deadlineEntry{at: p.deadline, seg: s, act: p.start.Act})
		if s.hooks.Arm != nil {
			p.timer = s.hooks.Arm(p.start, p.deadline, now)
		}
		due[i] = nil
	}
	c.due = due[:0]
	// Deadlines that moved into the past fire on the host's next Scan pass
	// (monitors swap at the top of a scan, so that pass is imminent).
}

// NextDeadline returns the earliest armed deadline, dropping stale heap
// entries of activations that completed or already fired. The walltime
// loop sleeps until this time (sem_timedwait in the paper); the simtime
// path does not need it because every armed timeout carries a kernel
// timer.
func (c *Core) NextDeadline() (Time, bool) {
	for len(c.deadline.entries) > 0 {
		e := c.deadline.entries[0]
		if p, ok := e.seg.pending[e.act]; ok && p.deadline == e.at {
			return e.at, true
		}
		c.deadline.pop()
	}
	return 0, false
}

// deadlineEntry is one (deadline, segment, activation) record of the lazy
// timeout heap.
type deadlineEntry struct {
	at  Time
	seg *Segment
	act uint64
}

// deadlineHeap is a hand-rolled min-heap on deadlineEntry.at. container/heap
// would box every pushed entry into an interface value — one allocation per
// armed timeout — so the two operations the Core needs are written out.
// Only the minimum is ever observed (NextDeadline), so heap-layout details
// are not part of the deterministic surface.
type deadlineHeap struct {
	entries []deadlineEntry
}

func (h *deadlineHeap) push(e deadlineEntry) {
	h.entries = append(h.entries, e)
	i := len(h.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.entries[parent].at <= h.entries[i].at {
			break
		}
		h.entries[parent], h.entries[i] = h.entries[i], h.entries[parent]
		i = parent
	}
}

func (h *deadlineHeap) pop() {
	n := len(h.entries) - 1
	h.entries[0] = h.entries[n]
	h.entries[n] = deadlineEntry{}
	h.entries = h.entries[:n]
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && h.entries[l].at < h.entries[small].at {
			small = l
		}
		if r := 2*i + 2; r < n && h.entries[r].at < h.entries[small].at {
			small = r
		}
		if small == i {
			return
		}
		h.entries[i], h.entries[small] = h.entries[small], h.entries[i]
		i = small
	}
}
