package runtime

import (
	"testing"
	"time"
)

type fakeTimer struct{ cancelled bool }

func (t *fakeTimer) Cancel() { t.cancelled = true }

type rec struct {
	oks     []uint64
	expired []uint64
	skipped map[uint64]bool
	armed   []*fakeTimer
	lats    []Duration
}

func (r *rec) hooks() SegmentHooks {
	return SegmentHooks{
		DrainLatency: func(lat Duration) { r.lats = append(r.lats, lat) },
		SkipArm: func(act uint64) bool {
			return r.skipped != nil && r.skipped[act]
		},
		Arm: func(start Event, deadline, now Time) Timer {
			t := &fakeTimer{}
			r.armed = append(r.armed, t)
			return t
		},
		OK:     func(start Event, end Time) { r.oks = append(r.oks, start.Act) },
		Expire: func(start Event, deadline, now Time) { r.expired = append(r.expired, start.Act) },
	}
}

func TestCoreOKWithinDeadline(t *testing.T) {
	c := NewCore()
	r := &rec{}
	s := c.AddSegment("s", 10*time.Millisecond, &SliceRing{}, &SliceRing{}, r.hooks())
	s.StartRing().Post(Event{Act: 1, TS: 0})
	c.Scan(1e6)
	if s.Pending() != 1 || len(r.armed) != 1 {
		t.Fatalf("pending=%d armed=%d, want 1,1", s.Pending(), len(r.armed))
	}
	s.EndRing().Post(Event{Act: 1, TS: 2e6})
	c.Scan(3e6)
	if len(r.oks) != 1 || r.oks[0] != 1 {
		t.Errorf("oks = %v, want [1]", r.oks)
	}
	if !r.armed[0].cancelled {
		t.Error("OK did not cancel the armed timer")
	}
	if len(r.expired) != 0 {
		t.Errorf("expired = %v, want none", r.expired)
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d after OK", s.Pending())
	}
}

func TestCoreExpireAfterDeadline(t *testing.T) {
	c := NewCore()
	r := &rec{}
	s := c.AddSegment("s", 10*time.Millisecond, &SliceRing{}, &SliceRing{}, r.hooks())
	s.StartRing().Post(Event{Act: 3, TS: 0})
	c.Scan(0)
	c.Scan(10e6) // exactly at the deadline: due
	if len(r.expired) != 1 || r.expired[0] != 3 {
		t.Fatalf("expired = %v, want [3]", r.expired)
	}
	// A late end event is discarded silently.
	s.EndRing().Post(Event{Act: 3, TS: 11e6})
	c.Scan(12e6)
	if len(r.oks) != 0 {
		t.Errorf("late end resolved OK: %v", r.oks)
	}
}

func TestCoreFireOrderPerSegmentByActivation(t *testing.T) {
	c := NewCore()
	type fired struct {
		seg string
		act uint64
	}
	var order []fired
	mk := func(name string) SegmentHooks {
		return SegmentHooks{Expire: func(start Event, _, _ Time) {
			order = append(order, fired{name, start.Act})
		}}
	}
	a := c.AddSegment("a", time.Millisecond, &SliceRing{}, &SliceRing{}, mk("a"))
	b := c.AddSegment("b", time.Millisecond, &SliceRing{}, &SliceRing{}, mk("b"))
	// Post out of activation order, with b's deadline earlier than a's.
	a.StartRing().Post(Event{Act: 9, TS: 5})
	a.StartRing().Post(Event{Act: 2, TS: 5})
	b.StartRing().Post(Event{Act: 7, TS: 0})
	c.Scan(10)
	c.Scan(20e6)
	want := []fired{{"a", 2}, {"a", 9}, {"b", 7}}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestCoreSkipArm(t *testing.T) {
	c := NewCore()
	r := &rec{skipped: map[uint64]bool{5: true}}
	s := c.AddSegment("s", time.Millisecond, &SliceRing{}, &SliceRing{}, r.hooks())
	s.StartRing().Post(Event{Act: 5, TS: 0})
	s.StartRing().Post(Event{Act: 6, TS: 0})
	c.Scan(100)
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (act 5 skipped)", s.Pending())
	}
	// The drain latency is observed even for skipped events (the monitor
	// still popped them from the ring).
	if len(r.lats) != 2 {
		t.Errorf("drain latencies = %d, want 2", len(r.lats))
	}
}

func TestCoreNextDeadlineLazyHeap(t *testing.T) {
	c := NewCore()
	r := &rec{}
	s := c.AddSegment("s", 10*time.Millisecond, &SliceRing{}, &SliceRing{}, r.hooks())
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline on empty core")
	}
	s.StartRing().Post(Event{Act: 1, TS: 0})
	s.StartRing().Post(Event{Act: 2, TS: 5e6})
	c.Scan(6e6)
	if dl, ok := c.NextDeadline(); !ok || dl != 10e6 {
		t.Fatalf("NextDeadline = %v,%v want 10e6", dl, ok)
	}
	// Completing act 1 must skip its stale heap entry.
	s.EndRing().Post(Event{Act: 1, TS: 7e6})
	c.Scan(8e6)
	if dl, ok := c.NextDeadline(); !ok || dl != 15e6 {
		t.Fatalf("NextDeadline after OK = %v,%v want 15e6", dl, ok)
	}
	c.Scan(20e6)
	if _, ok := c.NextDeadline(); ok {
		t.Error("NextDeadline non-empty after all fired")
	}
	if c.PendingTimeouts() != 0 {
		t.Errorf("PendingTimeouts = %d", c.PendingTimeouts())
	}
}

func TestSliceRingReuse(t *testing.T) {
	r := &SliceRing{}
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 4; i++ {
			r.Post(Event{Act: i})
		}
		if r.Len() != 4 {
			t.Fatalf("len = %d", r.Len())
		}
		for i := uint64(0); i < 4; i++ {
			ev, ok := r.Pop()
			if !ok || ev.Act != i {
				t.Fatalf("pop %d = %v,%v", i, ev, ok)
			}
		}
		if _, ok := r.Pop(); ok {
			t.Fatal("pop on empty ring")
		}
	}
}
