package walltime

import (
	"runtime"
	"testing"

	rt "chainmon/internal/runtime"
)

// TestRingPopBatchEquivalence pins the BatchPopper contract on the SPSC
// ring: PopBatch returns exactly what repeated Pop would — same events,
// same order — across partial batches, wrap-around and refills.
func TestRingPopBatchEquivalence(t *testing.T) {
	ref, batched := NewRing(16), NewRing(16)
	next := uint64(0)
	post := func(n int) {
		for i := 0; i < n; i++ {
			ev := rt.Event{Act: next, TS: rt.Time(next)}
			if !ref.Post(ev) || !batched.Post(ev) {
				t.Fatalf("ring full at event %d", next)
			}
			next++
		}
	}
	buf := make([]rt.Event, 5) // not a divisor of the ring capacity: exercises wrap
	for round := 0; round < 50; round++ {
		post(11)
		for {
			n := batched.PopBatch(buf)
			if n == 0 {
				break
			}
			for _, got := range buf[:n] {
				want, ok := ref.Pop()
				if !ok || got != want {
					t.Fatalf("round %d: PopBatch %+v, Pop %+v (ok=%v)", round, got, want, ok)
				}
			}
		}
		if _, ok := ref.Pop(); ok {
			t.Fatalf("round %d: PopBatch drained fewer events than Pop", round)
		}
	}
}

// TestRingPopBatchEmptyAndFull checks the edges: an empty ring returns 0,
// and a batch larger than the buffered count returns exactly the buffered
// events while freeing every slot for the producer.
func TestRingPopBatchEmptyAndFull(t *testing.T) {
	r := NewRing(8)
	buf := make([]rt.Event, 16)
	if n := r.PopBatch(buf); n != 0 {
		t.Fatalf("empty ring returned %d events", n)
	}
	for i := 0; i < 8; i++ {
		if !r.Post(rt.Event{Act: uint64(i)}) {
			t.Fatalf("post %d failed on empty ring", i)
		}
	}
	if r.Post(rt.Event{Act: 99}) {
		t.Fatal("post succeeded on a full ring")
	}
	if n := r.PopBatch(buf); n != 8 {
		t.Fatalf("PopBatch returned %d of 8", n)
	}
	for i := 0; i < 8; i++ {
		if buf[i].Act != uint64(i) {
			t.Fatalf("slot %d holds act %d", i, buf[i].Act)
		}
		// Every slot must be free again for the producer.
		if !r.Post(rt.Event{Act: uint64(100 + i)}) {
			t.Fatalf("post %d failed after full batch drain", i)
		}
	}
}

// TestRingPopBatchConcurrent churns a producer goroutine against a
// batch-draining consumer; under -race this is the SPSC memory-ordering
// check for the batched consumer path.
func TestRingPopBatchConcurrent(t *testing.T) {
	const total = 20000
	r := NewRing(64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; {
			if r.Post(rt.Event{Act: uint64(i), TS: rt.Time(i)}) {
				i++
			} else {
				runtime.Gosched() // full: let the consumer drain
			}
		}
	}()
	buf := make([]rt.Event, 17)
	want := uint64(0)
	for want < total {
		n := r.PopBatch(buf)
		for _, ev := range buf[:n] {
			if ev.Act != want {
				t.Fatalf("got act %d, want %d (reorder or loss)", ev.Act, want)
			}
			want++
		}
	}
	<-done
	if n := r.PopBatch(buf); n != 0 {
		t.Fatalf("ring not empty after %d events: %d left", total, n)
	}
}
