package walltime

import (
	"sync/atomic"
	"testing"
	"time"

	rt "chainmon/internal/runtime"
)

func TestClockMonotonic(t *testing.T) {
	c := NewClock()
	a := c.Now()
	time.Sleep(time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Errorf("clock not monotonic: %d then %d", a, b)
	}
}

func TestSemCoalesces(t *testing.T) {
	s := NewSem()
	s.Wake()
	s.Wake()
	s.ForceWake()
	n := 0
	for {
		select {
		case <-s.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Errorf("pending wakes = %d, want 1", n)
	}
}

// The loop must run a scan for a semaphore wake, sleep until the earliest
// core deadline, and serialize injected functions with scans.
func TestLoopDrivesCoreDeadlines(t *testing.T) {
	clock := NewClock()
	sem := NewSem()
	core := rt.NewCore()
	var expired atomic.Uint64
	injected := make(chan uint64, 1)
	seg := core.AddSegment("s", 20*time.Millisecond, NewRing(16), NewRing(16), rt.SegmentHooks{
		Expire: func(rt.Event, rt.Time, rt.Time) { expired.Add(1) },
	})
	loop := NewLoop(clock, sem)
	loop.Scan = func() { core.Scan(clock.Now()) }
	loop.Next = core.NextDeadline
	loop.Start()

	seg.StartRing().Post(rt.Event{Act: 1, TS: clock.Now()})
	sem.Wake()
	time.Sleep(5 * time.Millisecond)
	if got := expired.Load(); got != 0 {
		t.Fatalf("expired before the deadline: %d", got)
	}
	loop.Inject(func() { injected <- 42 })
	if got := <-injected; got != 42 {
		t.Fatalf("injected fn returned %d", got)
	}
	deadline := time.After(2 * time.Second)
	for expired.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("timeout never fired")
		case <-time.After(time.Millisecond):
		}
	}
	loop.Stop()
	if got := expired.Load(); got != 1 {
		t.Errorf("expired = %d, want 1", got)
	}
}

func TestTimerHostAt(t *testing.T) {
	c := NewClock()
	h := TimerHost{C: c}
	fired := make(chan struct{})
	h.At(c.Now().Add(5*time.Millisecond), 0, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	// Cancel before expiry.
	tm := h.After(time.Hour, func() { t.Error("cancelled timer fired") })
	tm.Cancel()
	time.Sleep(2 * time.Millisecond)
}
