// Package walltime is the wall-clock implementation of the runtime
// abstraction: a monotonic clock, the wait-free SPSC event ring, a binary
// semaphore waker, timers backed by the Go runtime, and the monitor
// goroutine loop (the paper's per-ECU high-priority monitor thread).
//
// The virtual-time model in internal/runtime/simtime reproduces the
// system-level behaviour; this package exists because the
// microsecond-scale overheads the paper reports in Fig. 11 (start/end
// event posting, monitor latency, monitor execution time) are the one
// thing a simulator cannot honestly produce.
package walltime

import (
	goruntime "runtime"
	"time"

	rt "chainmon/internal/runtime"
)

// Clock is a monotonic wall clock; times are nanoseconds since the clock
// was created.
type Clock struct{ epoch time.Time }

// NewClock creates a clock whose epoch is now.
func NewClock() *Clock { return &Clock{epoch: time.Now()} }

// Now returns the monotonic time since the epoch.
func (c *Clock) Now() rt.Time { return rt.Time(time.Since(c.epoch)) }

// Sem is the monitor wake semaphore: a binary token so that any number of
// producer wakes before the next scan collapse into one pass, exactly like
// the POSIX semaphore of the paper's implementation.
type Sem struct{ ch chan struct{} }

// NewSem creates an empty semaphore.
func NewSem() *Sem { return &Sem{ch: make(chan struct{}, 1)} }

// Wake raises the semaphore (non-blocking: a pending wake is enough).
func (s *Sem) Wake() {
	select {
	case s.ch <- struct{}{}:
	default:
	}
}

// ForceWake raises the semaphore. On the wall-clock runtime a pending wake
// already guarantees a future scan pass, so Force and regular wakes
// coincide; the distinction matters only for the simtime scheduler.
func (s *Sem) ForceWake() { s.Wake() }

// C exposes the wait side of the semaphore to the monitor loop.
func (s *Sem) C() <-chan struct{} { return s.ch }

// Timer is a one-shot wall-clock timer.
type Timer struct{ t *time.Timer }

// Cancel stops the timer; the callback may already be running.
func (t Timer) Cancel() { t.t.Stop() }

// TimerHost arms timers on the Go runtime timer wheel. Callbacks run on
// their own goroutine, so state they touch must be externally serialized
// (e.g. routed through Loop.Inject).
type TimerHost struct{ C *Clock }

// After arms fn d from now.
func (h TimerHost) After(d rt.Duration, fn func()) rt.Timer {
	if d < 0 {
		d = 0
	}
	return Timer{time.AfterFunc(d, fn)}
}

// At arms fn at the absolute clock time t; the priority is ignored (the
// wall-clock monitor loop already runs on a dedicated locked thread).
func (h TimerHost) At(t rt.Time, _ int, fn func()) rt.Timer {
	return h.After(t.Sub(h.C.Now()), fn)
}

// Loop is the monitor goroutine: wait on the semaphore with a timeout at
// the earliest pending deadline (sem_timedwait), then run one scan pass.
// Scan drains all rings in fixed order and fires due exceptions; Next
// reports the earliest armed deadline (normally Core.NextDeadline).
type Loop struct {
	Clock *Clock
	Sem   *Sem
	// Scan runs one monitor pass; it is only ever called from the loop
	// goroutine.
	Scan func()
	// Next returns the earliest armed deadline, if any.
	Next func() (rt.Time, bool)

	inject  chan func()
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewLoop creates a loop; Scan and Next must be set before Start.
func NewLoop(clock *Clock, sem *Sem) *Loop {
	return &Loop{
		Clock:  clock,
		Sem:    sem,
		inject: make(chan func(), 64),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start launches the monitor goroutine.
func (l *Loop) Start() {
	if l.started {
		panic("walltime: Loop started twice")
	}
	l.started = true
	go l.run()
}

// Stop terminates the monitor goroutine and waits for it to exit.
func (l *Loop) Stop() {
	close(l.stop)
	<-l.done
}

// Inject runs fn on the loop goroutine before the next scan pass. It is
// how other goroutines (timer callbacks, error propagation from a remote
// monitor) reach monitor state without locks; fn must not block.
func (l *Loop) Inject(fn func()) {
	select {
	case l.inject <- fn:
	case <-l.stop:
	}
}

func (l *Loop) run() {
	// The paper runs the monitor thread at the highest real-time priority;
	// the closest Go equivalent is a dedicated OS thread.
	goruntime.LockOSThread()
	defer goruntime.UnlockOSThread()
	defer close(l.done)

	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		wait := time.Hour
		if dl, ok := l.Next(); ok {
			wait = dl.Sub(l.Clock.Now())
			if wait < 0 {
				wait = 0
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-l.stop:
			return
		case fn := <-l.inject:
			fn()
			l.drainInjected()
		case <-l.Sem.C():
		case <-timer.C:
		}
		l.Scan()
	}
}

func (l *Loop) drainInjected() {
	for {
		select {
		case fn := <-l.inject:
			fn()
		default:
			return
		}
	}
}
