package walltime

import (
	"fmt"
	"sync/atomic"

	rt "chainmon/internal/runtime"
)

type slot struct {
	seq atomic.Uint64
	ev  rt.Event
}

// Ring is a wait-free single-producer/single-consumer ring buffer of
// events — the paper's shared-memory transport between the instrumented
// middleware and the monitor thread. The zero value is not usable; create
// rings with NewRing.
//
// The implementation uses per-slot sequence numbers (à la Vyukov) so that
// the producer never waits for the consumer: Post returns false when the
// ring is full, which the caller must treat as a monitoring overload fault.
//
// In the paper, the rings live in POSIX shared memory between processes;
// here producer and consumer are goroutines in one address space, which
// exercises the same algorithm with the same memory ordering concerns.
type Ring struct {
	_    [8]uint64 // keep hot fields off the same cache line as callers
	head atomic.Uint64
	_    [7]uint64
	tail atomic.Uint64
	_    [7]uint64
	mask uint64
	buf  []slot
}

// NewRing creates a ring with the given capacity, which must be a power of
// two.
func NewRing(capacity int) *Ring {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("walltime: capacity %d is not a power of two", capacity))
	}
	r := &Ring{mask: uint64(capacity - 1), buf: make([]slot, capacity)}
	for i := range r.buf {
		r.buf[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Post appends an event. It must be called by a single producer. It returns
// false when the ring is full (the event is dropped).
func (r *Ring) Post(ev rt.Event) bool {
	tail := r.tail.Load()
	s := &r.buf[tail&r.mask]
	if s.seq.Load() != tail {
		return false // slot not yet consumed: ring full
	}
	s.ev = ev
	s.seq.Store(tail + 1) // release: publish the event
	r.tail.Store(tail + 1)
	return true
}

// Pop removes the oldest event. It must be called by a single consumer.
func (r *Ring) Pop() (rt.Event, bool) {
	head := r.head.Load()
	s := &r.buf[head&r.mask]
	if s.seq.Load() != head+1 {
		return rt.Event{}, false // empty
	}
	ev := s.ev
	s.seq.Store(head + uint64(len(r.buf))) // mark consumed for the producer
	r.head.Store(head + 1)
	return ev, true
}

// PopBatch removes up to len(buf) oldest events into buf, in posting order.
// It must be called by a single consumer. Each slot is marked consumed as it
// is copied out (the producer reuses slots as soon as their seq advances);
// head is published once at the end, which the single consumer never
// observes mid-batch.
func (r *Ring) PopBatch(buf []rt.Event) int {
	head := r.head.Load()
	n := 0
	for n < len(buf) {
		s := &r.buf[(head+uint64(n))&r.mask]
		if s.seq.Load() != head+uint64(n)+1 {
			break // empty
		}
		buf[n] = s.ev
		s.seq.Store(head + uint64(n) + uint64(len(r.buf)))
		n++
	}
	if n > 0 {
		r.head.Store(head + uint64(n))
	}
	return n
}

// Len returns the approximate number of buffered events (exact when called
// from either the producer or the consumer).
func (r *Ring) Len() int {
	return int(r.tail.Load() - r.head.Load())
}
