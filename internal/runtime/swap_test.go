package runtime

import (
	"testing"
	"time"
)

// TestSwapBarrierKeepsInflightDeadline pins the swap-barrier contract:
// with retime=false, a shrink applies only to activations drained after
// the swap — in-flight activations finish under the deadline they were
// armed with.
func TestSwapBarrierKeepsInflightDeadline(t *testing.T) {
	c := NewCore()
	var oks, expired []uint64
	s := c.AddSegment("s", 10*time.Millisecond, &SliceRing{}, &SliceRing{}, SegmentHooks{
		OK:     func(start Event, _ Time) { oks = append(oks, start.Act) },
		Expire: func(start Event, _, _ Time) { expired = append(expired, start.Act) },
	})
	s.StartRing().Post(Event{Act: 1, TS: 0})
	c.Scan(0) // act 1 armed at deadline 10ms
	c.SetDeadline(s, 2*time.Millisecond, 0, false)
	s.StartRing().Post(Event{Act: 2, TS: 0})
	c.Scan(0) // act 2 armed at deadline 2ms
	// At 3ms only act 2's (post-swap) deadline has passed; act 1 is still
	// in flight under its pre-swap 10ms budget.
	c.Scan(Time(3 * time.Millisecond))
	s.EndRing().Post(Event{Act: 1, TS: Time(5 * time.Millisecond)})
	c.Scan(Time(5 * time.Millisecond))
	if len(oks) != 1 || oks[0] != 1 {
		t.Fatalf("ok set %v, want [1] (in-flight act must keep its pre-swap deadline)", oks)
	}
	if len(expired) != 1 || expired[0] != 2 {
		t.Fatalf("expired set %v, want [2] (post-swap act must use the new deadline)", expired)
	}
}

// TestSwapRetimeShrinkReArms pins the retime path: a shrink with
// retime=true re-latches pending deadlines, re-runs the Arm hook with the
// tighter deadline, and fires the exception at the new time.
func TestSwapRetimeShrinkReArms(t *testing.T) {
	c := NewCore()
	var armed []Time
	var expired []Time
	s := c.AddSegment("s", 10*time.Millisecond, &SliceRing{}, &SliceRing{}, SegmentHooks{
		Arm:    func(_ Event, deadline, _ Time) Timer { armed = append(armed, deadline); return nil },
		Expire: func(_ Event, deadline, _ Time) { expired = append(expired, deadline) },
	})
	s.StartRing().Post(Event{Act: 1, TS: 0})
	c.Scan(0)
	c.SetDeadline(s, 2*time.Millisecond, 0, true)
	if want := []Time{Time(10 * time.Millisecond), Time(2 * time.Millisecond)}; len(armed) != 2 || armed[0] != want[0] || armed[1] != want[1] {
		t.Fatalf("arm trace %v, want %v", armed, want)
	}
	if at, ok := c.NextDeadline(); !ok || at != Time(2*time.Millisecond) {
		t.Fatalf("NextDeadline %v/%v, want 2ms after retimed shrink", at, ok)
	}
	c.Scan(Time(3 * time.Millisecond))
	if len(expired) != 1 || expired[0] != Time(2*time.Millisecond) {
		t.Fatalf("expire trace %v, want exception at the retimed 2ms deadline", expired)
	}
}

// TestSwapRetimeNeverRelaxesInflight pins that retime is shrink-only per
// activation: growing the budget (even with retime=true) leaves armed
// deadlines untouched, so an in-flight activation can never be granted
// more time than it started with.
func TestSwapRetimeNeverRelaxesInflight(t *testing.T) {
	c := NewCore()
	var expired []uint64
	s := c.AddSegment("s", 2*time.Millisecond, &SliceRing{}, &SliceRing{}, SegmentHooks{
		Expire: func(start Event, _, _ Time) { expired = append(expired, start.Act) },
	})
	s.StartRing().Post(Event{Act: 1, TS: 0})
	c.Scan(0)
	c.SetDeadline(s, 20*time.Millisecond, 0, true)
	if at, ok := c.NextDeadline(); !ok || at != Time(2*time.Millisecond) {
		t.Fatalf("NextDeadline %v/%v, want the original 2ms deadline", at, ok)
	}
	c.Scan(Time(3 * time.Millisecond))
	if len(expired) != 1 || expired[0] != 1 {
		t.Fatalf("expired %v, want [1]: growth must not relax the armed deadline", expired)
	}
	// A fresh activation drains under the grown deadline.
	s.StartRing().Post(Event{Act: 2, TS: Time(3 * time.Millisecond)})
	s.EndRing().Post(Event{Act: 2, TS: Time(13 * time.Millisecond)})
	c.Scan(Time(13 * time.Millisecond))
	if len(expired) != 1 {
		t.Fatalf("expired %v, want act 2 OK under the grown 20ms budget", expired)
	}
}

// TestSwapWithPendingTimeoutsBattery churns a segment through repeated
// shrink/grow swaps with many pending timeouts in flight, in both retime
// modes, and checks the verdict bookkeeping stays exact: every activation
// resolves exactly once and the heap prunes back down.
func TestSwapWithPendingTimeoutsBattery(t *testing.T) {
	for _, retime := range []bool{false, true} {
		c := NewCore()
		resolved := map[uint64]int{}
		s := c.AddSegment("s", 10*time.Millisecond, &SliceRing{}, &SliceRing{}, SegmentHooks{
			OK:     func(start Event, _ Time) { resolved[start.Act]++ },
			Expire: func(start Event, _, _ Time) { resolved[start.Act]++ },
		})
		now := Time(0)
		act := uint64(0)
		deadlines := []Duration{10 * time.Millisecond, 2 * time.Millisecond, 25 * time.Millisecond, 5 * time.Millisecond}
		for round := 0; round < 200; round++ {
			for i := 0; i < 64; i++ {
				act++
				s.StartRing().Post(Event{Act: act, TS: now})
			}
			c.Scan(now) // 64 pending
			c.SetDeadline(s, deadlines[round%len(deadlines)], now, retime)
			// Half the batch completes 3ms in, the rest strands.
			for a := act - 63; a <= act; a += 2 {
				s.EndRing().Post(Event{Act: a, TS: now.Add(3 * time.Millisecond)})
			}
			now = now.Add(3 * time.Millisecond)
			c.Scan(now)
			now = now.Add(30 * time.Millisecond) // past every deadline variant
			c.Scan(now)
		}
		if c.PendingTimeouts() != 0 {
			t.Fatalf("retime=%v: %d pending timeouts leaked", retime, c.PendingTimeouts())
		}
		if int(act) != len(resolved) {
			t.Fatalf("retime=%v: %d activations resolved, want %d", retime, len(resolved), act)
		}
		for a, n := range resolved {
			if n != 1 {
				t.Fatalf("retime=%v: act %d resolved %d times", retime, a, n)
			}
		}
		if n := len(c.deadline.entries); n > 64 {
			t.Fatalf("retime=%v: deadline heap holds %d entries after churn", retime, n)
		}
	}
}

// TestSwapAllocFree extends the allocation gate to the hot-swap path: a
// cycle that arms 64 timeouts, shrinks with retime (64 re-arms), grows
// back, and resolves everything must not allocate once warm.
func TestSwapAllocFree(t *testing.T) {
	c := NewCore()
	s := c.AddSegment("s", 10*time.Millisecond, &SliceRing{}, &SliceRing{}, SegmentHooks{})
	now := Time(0)
	act := uint64(0)
	cycle := func() {
		for i := 0; i < 64; i++ {
			act++
			s.StartRing().Post(Event{Act: act, TS: now})
		}
		c.Scan(now)
		c.SetDeadline(s, 2*time.Millisecond, now, true)
		c.SetDeadline(s, 10*time.Millisecond, now, true)
		for a := act - 63; a <= act; a++ {
			s.EndRing().Post(Event{Act: a, TS: now.Add(time.Millisecond)})
		}
		now = now.Add(time.Millisecond)
		c.Scan(now)
		now = now.Add(30 * time.Millisecond)
		c.Scan(now)
	}
	for i := 0; i < 200; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(500, cycle)
	if allocs != 0 {
		t.Fatalf("swap cycle allocates %.2f/op, want 0", allocs)
	}
	if c.PendingTimeouts() != 0 {
		t.Fatalf("leftover pending timeouts: %d", c.PendingTimeouts())
	}
}
