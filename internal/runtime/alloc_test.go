package runtime

import (
	"testing"
	"time"
)

// TestScanAllocFree is the CI allocation gate on the ring-drain path: once
// the pendingTimeout freelist, the batch scratch and the deadline heap have
// reached steady state, a full post→drain→arm→resolve→expire cycle runs
// without heap allocation.
func TestScanAllocFree(t *testing.T) {
	c := NewCore()
	a := c.AddSegment("a", 10*time.Millisecond, &SliceRing{}, &SliceRing{}, SegmentHooks{})
	b := c.AddSegment("b", 10*time.Millisecond, &SliceRing{}, &SliceRing{}, SegmentHooks{})
	act := uint64(0)
	now := Time(0)
	cycle := func() {
		// Four activations per segment per cycle: three complete in time,
		// one expires — exercising arm, OK and Expire paths.
		for i := 0; i < 4; i++ {
			act++
			a.StartRing().Post(Event{Act: act, TS: now})
			b.StartRing().Post(Event{Act: act, TS: now})
			if i != 3 {
				a.EndRing().Post(Event{Act: act, TS: now.Add(time.Millisecond)})
				b.EndRing().Post(Event{Act: act, TS: now.Add(time.Millisecond)})
			}
		}
		now = now.Add(2 * time.Millisecond)
		c.Scan(now)
		now = now.Add(20 * time.Millisecond) // past DMon: strays expire
		c.Scan(now)
	}
	for i := 0; i < 200; i++ { // warm freelists, scratch and heap capacity
		cycle()
	}
	allocs := testing.AllocsPerRun(500, cycle)
	if allocs != 0 {
		t.Fatalf("scan cycle allocates %.2f/op, want 0", allocs)
	}
	if c.PendingTimeouts() != 0 {
		t.Fatalf("leftover pending timeouts: %d", c.PendingTimeouts())
	}
}

// TestScanHeapStaysBounded pins the lazy-heap pruning: resolved and fired
// activations must not accumulate in the deadline heap across scans.
func TestScanHeapStaysBounded(t *testing.T) {
	c := NewCore()
	s := c.AddSegment("s", 10*time.Millisecond, &SliceRing{}, &SliceRing{}, SegmentHooks{})
	now := Time(0)
	for i := 1; i <= 10000; i++ {
		s.StartRing().Post(Event{Act: uint64(i), TS: now})
		s.EndRing().Post(Event{Act: uint64(i), TS: now.Add(time.Millisecond)})
		now = now.Add(2 * time.Millisecond)
		c.Scan(now)
	}
	if n := len(c.deadline.entries); n > 1 {
		t.Fatalf("deadline heap holds %d stale entries after 10k resolved activations", n)
	}
}

// TestSliceRingPopBatchEquivalence pins the BatchPopper contract on the
// SliceRing: PopBatch returns exactly what repeated Pop would, in order,
// across partial batches and interleaved posts.
func TestSliceRingPopBatchEquivalence(t *testing.T) {
	ref, batched := &SliceRing{}, &SliceRing{}
	post := func(n int, base uint64) {
		for i := 0; i < n; i++ {
			ev := Event{Act: base + uint64(i), TS: Time(i)}
			ref.Post(ev)
			batched.Post(ev)
		}
	}
	buf := make([]Event, 7) // deliberately not a divisor of the post counts
	post(20, 0)
	for {
		n := batched.PopBatch(buf)
		if n == 0 {
			break
		}
		for _, got := range buf[:n] {
			want, ok := ref.Pop()
			if !ok || got != want {
				t.Fatalf("PopBatch event %+v, Pop %+v (ok=%v)", got, want, ok)
			}
		}
		if batched.Len() > 13 {
			post(5, 1000) // interleave posts mid-drain
		}
	}
	if _, ok := ref.Pop(); ok {
		t.Fatal("PopBatch drained fewer events than Pop")
	}
}

// TestScanBatchedDrainPreservesOrder posts far more start events than one
// drain batch holds and verifies the Arm hook observes them in posting
// order — batching must be invisible to the verdict sequence.
func TestScanBatchedDrainPreservesOrder(t *testing.T) {
	c := NewCore()
	var armed []uint64
	s := c.AddSegment("s", time.Millisecond, &SliceRing{}, &SliceRing{}, SegmentHooks{
		Arm: func(start Event, _, _ Time) Timer {
			armed = append(armed, start.Act)
			return nil
		},
	})
	const n = 3*drainBatch + 17
	for i := 0; i < n; i++ {
		s.StartRing().Post(Event{Act: uint64(i), TS: 0})
	}
	c.Scan(0)
	if len(armed) != n {
		t.Fatalf("armed %d activations, want %d", len(armed), n)
	}
	for i, act := range armed {
		if act != uint64(i) {
			t.Fatalf("arm order broken at %d: got act %d", i, act)
		}
	}
}

// fallbackRing hides SliceRing's PopBatch, forcing the Core onto the
// one-event-at-a-time fallback so both drain flavours stay covered.
type fallbackRing struct{ r SliceRing }

func (f *fallbackRing) Post(ev Event) bool { return f.r.Post(ev) }
func (f *fallbackRing) Pop() (Event, bool) { return f.r.Pop() }
func (f *fallbackRing) Len() int           { return f.r.Len() }

// TestScanFallbackDrainMatchesBatched runs the same event sequence through
// a batch-capable and a Pop-only ring and requires identical hook traces.
func TestScanFallbackDrainMatchesBatched(t *testing.T) {
	run := func(mk func() EventRing) (oks, expired []uint64) {
		c := NewCore()
		s := c.AddSegment("s", 10*time.Millisecond, mk(), mk(), SegmentHooks{
			OK:     func(start Event, _ Time) { oks = append(oks, start.Act) },
			Expire: func(start Event, _, _ Time) { expired = append(expired, start.Act) },
		})
		now := Time(0)
		for i := 1; i <= 400; i++ {
			s.StartRing().Post(Event{Act: uint64(i), TS: now})
			if i%3 != 0 {
				s.EndRing().Post(Event{Act: uint64(i), TS: now.Add(time.Millisecond)})
			}
			if i%50 == 0 {
				now = now.Add(20 * time.Millisecond)
				c.Scan(now)
			}
		}
		c.Scan(now.Add(time.Second))
		return oks, expired
	}
	oksA, expA := run(func() EventRing { return &SliceRing{} })
	oksB, expB := run(func() EventRing { return &fallbackRing{} })
	if len(oksA) != len(oksB) || len(expA) != len(expB) {
		t.Fatalf("trace lengths differ: ok %d/%d expired %d/%d", len(oksA), len(oksB), len(expA), len(expB))
	}
	for i := range oksA {
		if oksA[i] != oksB[i] {
			t.Fatalf("ok[%d]: batched %d, fallback %d", i, oksA[i], oksB[i])
		}
	}
	for i := range expA {
		if expA[i] != expB[i] {
			t.Fatalf("expired[%d]: batched %d, fallback %d", i, expA[i], expB[i])
		}
	}
}
