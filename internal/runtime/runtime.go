// Package runtime defines the timebase abstraction under the latency
// monitors: a clock, timers, an event ring and a wake primitive. The same
// monitor core (see Core) runs against two implementations:
//
//   - internal/runtime/simtime adapts the deterministic discrete-event
//     kernel (internal/sim) and the synchronized virtual clocks
//     (internal/vclock). Every chain experiment runs on it, bit-for-bit
//     reproducibly for a given seed.
//   - internal/runtime/walltime provides a monotonic wall clock, the
//     wait-free SPSC ring and a semaphore for real goroutines. The Fig. 11
//     microbenchmarks (internal/shmring) and `cmd/chainmon -realtime` run
//     on it.
//
// The contract that keeps the simtime path deterministic is documented in
// docs/runtime.md: implementations must not introduce hidden clock reads or
// reorder the calls the core makes; Scan takes the current time as an
// argument instead of sampling a clock internally.
package runtime

import "time"

// Time is a point in time in nanoseconds since an implementation-defined
// epoch: simulation start for simtime, monitor creation for walltime. It is
// layout-compatible with sim.Time.
type Time int64

// Duration is a span of time in nanoseconds, identical to time.Duration
// (and therefore to sim.Duration).
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Event is one start or end event posted by instrumented middleware code:
// the activation index, the posting timestamp, and the causal-flow identity
// of the activation (telemetry.FlowID; 0 when the producer is not traced).
// The Core carries Flow through its timeout bookkeeping so the Arm/OK/Expire
// hooks can tag their trace events with the same identity the middleware
// hops used — one flow id from publication to verdict.
type Event struct {
	Act  uint64
	TS   Time
	Flow uint32
}

// EventRing is the transport between the instrumented producer and the
// monitor. Post is called by a single producer and must never block; it
// returns false when the ring is full (a monitoring overload fault). Pop is
// called only by the monitor.
type EventRing interface {
	Post(Event) bool
	Pop() (Event, bool)
	Len() int
}

// BatchPopper is an optional EventRing extension: PopBatch moves up to
// len(buf) events into buf in posting order and returns the count. The Core
// prefers it over Pop so one waker invocation drains a whole burst with a
// single call per ring instead of one interface call per event. A correct
// implementation is observationally equivalent to calling Pop len(buf)
// times — same events, same order.
type BatchPopper interface {
	PopBatch(buf []Event) int
}

// Timer is an armed one-shot timer handle. Cancel is idempotent and may be
// called after the timer fired.
type Timer interface {
	Cancel()
}

// TimerHost arms one-shot timers. At schedules at an absolute time with a
// scheduling priority (simtime runs timer callbacks at that processor
// priority; walltime ignores it). After schedules relative to now.
type TimerHost interface {
	After(d Duration, fn func()) Timer
	At(t Time, priority int, fn func()) Timer
}

// Clock reads the current time of the timebase.
type Clock interface {
	Now() Time
}

// SyncClock is a PTP-style synchronized clock: GlobalAfter converts a
// deadline on the *sender's* clock into a local delay, the operation the
// sync-based remote monitor needs to program its reception timer.
type SyncClock interface {
	GlobalAfter(localDeadline Time) Duration
}

// Waker is the monitor wake primitive (the paper's semaphore). Wake may
// coalesce with an already-pending wake; ForceWake must guarantee one more
// scan pass strictly after the call (timeout timers use it so that a scan
// already queued, but possibly running before the deadline, cannot swallow
// the timeout).
type Waker interface {
	Wake()
	ForceWake()
}

// Executor dispatches bounded-cost work onto the monitor's execution
// context. Exec models a regular wakeup (queue + context switch); ExecDirect
// models the monitor thread dispatching to itself (no wakeup — handlers of
// simultaneous exceptions run back to back). fn receives the time the work
// actually started executing.
type Executor interface {
	Exec(label string, cost Duration, fn func(started Time))
	ExecDirect(label string, cost Duration, fn func(started Time))
}

// SliceRing is the unbounded, allocation-reusing EventRing of the simtime
// path. The virtual-time model has no producer/consumer concurrency, so the
// ring never rejects a post; storage is reused once drained.
type SliceRing struct {
	buf  []Event
	head int
}

// Post appends the event; it always succeeds.
func (r *SliceRing) Post(ev Event) bool {
	r.buf = append(r.buf, ev)
	return true
}

// Pop removes the oldest event; the backing storage is reused after the
// ring runs empty.
func (r *SliceRing) Pop() (Event, bool) {
	if r.head >= len(r.buf) {
		r.buf = r.buf[:0]
		r.head = 0
		return Event{}, false
	}
	ev := r.buf[r.head]
	r.head++
	return ev, true
}

// PopBatch moves up to len(buf) oldest events into buf, in posting order.
func (r *SliceRing) PopBatch(buf []Event) int {
	n := copy(buf, r.buf[r.head:])
	r.head += n
	if r.head >= len(r.buf) {
		r.buf = r.buf[:0]
		r.head = 0
	}
	return n
}

// Len returns the number of buffered events.
func (r *SliceRing) Len() int { return len(r.buf) - r.head }
