package perception_test

import (
	"bytes"
	"sort"
	"testing"
	"time"

	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/telemetry"
)

// streamRun runs a full-chain monitored system with a direct (inline)
// stream writer attached, the configuration the -trace-stream flag uses for
// simulation runs, and returns the system plus the raw on-disk log bytes.
func streamRun(t *testing.T, seed int64) (*perception.System, []byte) {
	t.Helper()
	cfg := perception.DefaultConfig()
	cfg.Seed = seed
	cfg.Frames = 120
	cfg.FullChain = true
	cfg.Network.LossProb = 0.02
	s := perception.Build(cfg)
	sink := telemetry.NewSink(1 << 14)
	var buf bytes.Buffer
	sw, err := telemetry.NewStreamWriter(&buf, "sim", telemetry.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sink.Rec.SetStream(sw) // before AttachTelemetry: tracks register on creation
	perception.AttachTelemetry(s, sink)
	s.Run()
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return s, buf.Bytes()
}

// flowEvent is one event of a flow with its source track.
type flowEvent struct {
	track string
	ev    telemetry.Event
}

// TestStreamFlowIntegrity pins the causal-stitching contract on a lossy
// full-chain run: every flow that resolves to a verdict spans at least two
// tracks, and the publish → network → delivery → verdict hops of the branch
// scopes appear in causal (virtual-time) order.
func TestStreamFlowIntegrity(t *testing.T) {
	_, raw := streamRun(t, 11)
	l, err := telemetry.ReadLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if l.Timebase != "sim" {
		t.Fatalf("timebase = %q, want sim", l.Timebase)
	}
	flows := map[uint32][]flowEvent{}
	for _, tr := range l.Tracks() {
		for _, ev := range tr.Events {
			if ev.Flow != 0 {
				flows[ev.Flow] = append(flows[ev.Flow], flowEvent{tr.Name, ev})
			}
		}
	}
	if len(flows) == 0 {
		t.Fatal("no flow-tagged events in the stream")
	}
	stitched := 0 // flows carrying the full dds-send → net → dds-recv → verdict chain
	for flow, evs := range flows {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].ev.TS < evs[j].ev.TS })
		firstOf := map[telemetry.Kind]flowEvent{}
		var lastOKVerdict int64 = -1
		tracks := map[string]bool{}
		for _, fe := range evs {
			tracks[fe.track] = true
			if _, seen := firstOf[fe.ev.Kind]; !seen {
				firstOf[fe.ev.Kind] = fe
			}
			if fe.ev.Kind == telemetry.KindVerdict && fe.ev.Status == uint8(monitor.StatusOK) {
				lastOKVerdict = fe.ev.TS
			}
		}
		send, okS := firstOf[telemetry.KindDDSSend]
		net, okN := firstOf[telemetry.KindNetSend]
		recv, okR := firstOf[telemetry.KindDDSRecv]
		_, okV := firstOf[telemetry.KindVerdict]
		// A published activation that resolved must appear on at least two
		// tracks (publisher-side and monitor-side). A lost publication can
		// legitimately resolve single-track via a timeout verdict.
		if okS && okV && len(tracks) < 2 {
			t.Errorf("flow %d (scope %s act %d) resolved on a single track %v",
				flow, l.ScopeName(telemetry.FlowScopeOf(flow)), telemetry.FlowAct(flow), evs)
		}
		// Network causality is unconditional: a sample is published before
		// it enters the link, and enters the link before it is delivered.
		if okS && okN && send.ev.TS > net.ev.TS {
			t.Errorf("flow %d: dds-send at %d after net-send at %d", flow, send.ev.TS, net.ev.TS)
		}
		if okN && okR && net.ev.TS > recv.ev.TS {
			t.Errorf("flow %d: net-send at %d after dds-recv at %d", flow, net.ev.TS, recv.ev.TS)
		}
		// Verdict causality holds for on-time resolutions: a timeout verdict
		// may precede a late delivery, but an OK verdict cannot precede the
		// delivery that triggered the segment.
		if okS && okN && okR && okV {
			stitched++
			if lastOKVerdict >= 0 && recv.ev.TS > lastOKVerdict {
				t.Errorf("flow %d: first dds-recv at %d after last OK verdict at %d",
					flow, recv.ev.TS, lastOKVerdict)
			}
			if send.track == recv.track {
				t.Errorf("flow %d: publish and delivery on the same track %q", flow, send.track)
			}
		}
	}
	// 120 frames × two branch scopes, minus losses: the bulk must stitch.
	if stitched < 100 {
		t.Errorf("only %d fully stitched dds-send→net→dds-recv→verdict flows (want ≥ 100)", stitched)
	}
}

// TestStreamReportMatchesSegmentStats pins the acceptance criterion that
// `chainmon trace report` reproduces the authoritative SegmentStats exactly
// from the streamed log alone: verdict counts and the max latency per
// segment.
func TestStreamReportMatchesSegmentStats(t *testing.T) {
	s, raw := streamRun(t, 3)
	l, err := telemetry.ReadLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	rep := telemetry.BuildReport(l)
	byName := map[string]*telemetry.SegmentReport{}
	for _, sr := range rep.Segments {
		byName[sr.Name] = sr
	}
	check := func(name string, st *monitor.SegmentStats) {
		sr := byName[name]
		if sr == nil {
			t.Errorf("segment %q missing from the report", name)
			return
		}
		ok, rec, miss := st.Counts()
		if sr.OK != ok || sr.Recovered != rec || sr.Missed != miss {
			t.Errorf("%s: report counts ok=%d rec=%d miss=%d, stats say %d/%d/%d",
				name, sr.OK, sr.Recovered, sr.Missed, ok, rec, miss)
		}
		if want := time.Duration(st.Latencies().Max()); sr.Latency.Max != want {
			t.Errorf("%s: report max latency %v, stats say %v", name, sr.Latency.Max, want)
		}
	}
	check(perception.SegObjectsLocal, s.SegObjects.Stats())
	check(perception.SegGroundLocal, s.SegGround.Stats())
	check(perception.SegFrontRemote, s.RemFront.Stats())
	check(perception.SegRearRemote, s.RemRear.Stats())
	check(perception.SegFusedRemote, s.RemFused.Stats())
	check(perception.SegFusionFront, s.FusionFront.Stats())
	check(perception.SegFusionRear, s.FusionRear.Stats())
	if len(rep.Scopes) == 0 {
		t.Error("report has no flow scopes")
	}
}

// TestStreamSameSeedByteIdentical requires two same-seed simulation runs to
// stream byte-identical logs: scope/label/track ids are assigned in a fixed
// order and the direct writer serializes events in virtual-time program
// order.
func TestStreamSameSeedByteIdentical(t *testing.T) {
	_, a := streamRun(t, 42)
	_, b := streamRun(t, 42)
	if !bytes.Equal(a, b) {
		t.Errorf("same-seed streamed logs differ (%d vs %d bytes)", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("empty streamed log")
	}
}
