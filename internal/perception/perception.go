// Package perception assembles the paper's running example: the
// Autoware.Auto environment-perception stack of Fig. 1. Two lidars publish
// periodic point clouds over the network to the fusion service on ECU 1;
// the fused cloud crosses to ECU 2 where the classifier splits it into
// ground and non-ground points, the object-detection service clusters
// obstacles, and the plan service (rviz2 in the evaluation) consumes the
// objects and ground topics.
//
// The event chains are segmented exactly as in Fig. 2, and the evaluation's
// two monitored local segments on ECU 2 — classifier reception to objects
// reception ("objects") and to ground-points reception ("ground") — are
// wired through the LocalMonitor.
package perception

import (
	"fmt"

	"chainmon/internal/dds"
	"chainmon/internal/lidar"
	"chainmon/internal/monitor"
	"chainmon/internal/netsim"
	"chainmon/internal/sim"
	"chainmon/internal/trace"
	"chainmon/internal/vclock"
	"chainmon/internal/weaklyhard"
)

// DeviceJitterMax is the truncation bound of the lidars' activation jitter
// J^a. The synchronization-based remote monitor's pessimism is bounded by
// J^a + ε (§IV-B), so the fault-injection oracle derives its tolerance
// bands from this constant.
const DeviceJitterMax = 5 * sim.Millisecond

// Topic names of the stack.
const (
	TopicFront     = "points_front"
	TopicRear      = "points_rear"
	TopicFused     = "points_fused"
	TopicGround    = "points_ground"
	TopicNonGround = "points_nonground"
	TopicObjects   = "objects"
)

// Segment names.
const (
	SegFrontRemote  = "s0a/front-lidar"
	SegRearRemote   = "s0b/rear-lidar"
	SegFusionFront  = "s1a/fusion-front"
	SegFusionRear   = "s1b/fusion-rear"
	SegFusedRemote  = "s2/fused"
	SegObjectsLocal = "s3a/objects"
	SegGroundLocal  = "s3b/ground"
)

// FrameData is the payload carried on every topic: workload metadata (and
// optionally real geometry when RealCompute is enabled).
type FrameData struct {
	Meta    lidar.FrameMeta
	Points  int // points carried by this message
	Objects int // detected objects (objects topic)
	Cloud   *lidar.PointCloud
	Boxes   []lidar.BoundingBox
	// FrontOnly marks recovery outputs that contain only the front
	// lidar's data (the Fig. 3 recovery case).
	FrontOnly bool
}

// Config parameterizes a perception system build.
type Config struct {
	Seed   int64
	Period sim.Duration
	Frames int

	Scene lidar.SceneConfig
	Costs lidar.CostModel
	// RealCompute materializes geometry and runs the real algorithms in
	// the callbacks (examples); otherwise only workload metadata flows.
	RealCompute bool

	ClockEpsilon sim.Duration
	// Network is the inter-ECU link configuration.
	Network netsim.Config
	// ECU2Cores controls contention on the perception ECU (the evaluation
	// machine was a small quad-core running everything).
	ECU1Cores, ECU2Cores int

	// Monitored enables the paper's monitors; otherwise the system runs
	// bare (the "without monitoring" runs and trace recording).
	Monitored bool
	// LocalDeadline is d_mon of the two evaluation segments (100 ms).
	LocalDeadline sim.Duration
	// RemoteDeadline is d_mon of the remote segments.
	RemoteDeadline sim.Duration
	// Constraint is the chain (m,k) constraint used for all segments.
	Constraint weaklyhard.Constraint
	// RemoteVariant selects where remote timeout routines run.
	RemoteVariant monitor.RemoteVariant
	// FullChain additionally monitors the lidar→fusion remote segments,
	// the fusion local segments and the fused remote segment, and builds
	// the two end-to-end chains.
	FullChain bool
	// Handlers maps segment names to application exception handlers
	// (nil entries and missing keys propagate).
	Handlers map[string]monitor.Handler
	// GroundFirst registers the ground segment before the objects segment
	// at the ECU2 monitor (ablation of the fixed buffer processing order;
	// the evaluation registers objects first).
	GroundFirst bool
	// Partition selects the ECU2 scheduling ablation: "" keeps the
	// evaluation's free migration ("we allowed thread migration between
	// cores and frequency scaling"); "balanced" pins threads round-robin
	// (the heavy services land on distinct cores); "colocated" pins the
	// three heavy services to one core (a pathological static partition).
	Partition string

	// Record attaches an unmonitored-trace recorder to the evaluation
	// segments (budgeting input).
	Record bool
}

// DefaultConfig is calibrated to reproduce the evaluation's shape.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Period:         100 * sim.Millisecond,
		Frames:         500,
		Scene:          lidar.DefaultScene(),
		Costs:          lidar.DefaultCostModel(),
		ClockEpsilon:   50 * sim.Microsecond,
		Network:        netsim.Ethernet(),
		ECU1Cores:      2,
		ECU2Cores:      3,
		Monitored:      true,
		LocalDeadline:  100 * sim.Millisecond,
		RemoteDeadline: 20 * sim.Millisecond,
		Constraint:     weaklyhard.Constraint{M: 2, K: 10},
		RemoteVariant:  monitor.VariantMonitorThread,
	}
}

// System is a built perception stack.
type System struct {
	Cfg    Config
	K      *sim.Kernel
	Domain *dds.Domain
	ECU1   *dds.ECU
	ECU2   *dds.ECU

	FrontLidar *dds.Device
	RearLidar  *dds.Device
	Fusion     *dds.Node
	Classifier *dds.Node
	Detection  *dds.Node
	Plan       *dds.Node
	PlanGround *dds.Node

	// Subscriptions (exported for experiment wiring).
	FusionFrontSub *dds.Subscription
	FusionRearSub  *dds.Subscription
	ClassifierSub  *dds.Subscription
	DetectionSub   *dds.Subscription
	PlanObjectsSub *dds.Subscription
	PlanGroundSub  *dds.Subscription

	FusedPub     *dds.Publisher
	GroundPub    *dds.Publisher
	NonGroundPub *dds.Publisher
	ObjectsPub   *dds.Publisher

	// Monitors (nil unless Monitored).
	MonECU1    *monitor.LocalMonitor
	MonECU2    *monitor.LocalMonitor
	SegObjects *monitor.LocalSegment
	SegGround  *monitor.LocalSegment
	// Full-chain monitors (nil unless FullChain).
	RemFront    *monitor.RemoteMonitor
	RemRear     *monitor.RemoteMonitor
	RemFused    *monitor.RemoteMonitor
	FusionFront *monitor.LocalSegment
	FusionRear  *monitor.LocalSegment
	ChainFront  *monitor.Chain
	ChainRear   *monitor.Chain

	Recorder *trace.Recorder

	// Tracker is the plan service's object tracker, maintained across
	// frames when RealCompute is enabled.
	Tracker *lidar.Tracker

	// PlanDelivered counts frames whose objects reached the plan service.
	PlanDelivered uint64

	frontGen *lidar.SceneGenerator
	rearGen  *lidar.SceneGenerator
	rng      *sim.RNG

	// fusion join state (touched on ECU1 mw/exec threads — single-threaded
	// simulation makes this safe).
	frontArrived map[uint64]*FrameData
	rearArrived  map[uint64]*FrameData
	fusedDone    map[uint64]bool
}

// Build constructs the system.
func Build(cfg Config) *System {
	k := sim.NewKernel()
	rng := sim.NewRNG(cfg.Seed)
	d := dds.NewDomain(k, rng)
	d.InterECU = cfg.Network

	s := &System{
		Cfg: cfg, K: k, Domain: d,
		rng:          rng.Derive("perception"),
		frontGen:     lidar.NewSceneGenerator(cfg.Scene, rng.Derive("front")),
		rearGen:      lidar.NewSceneGenerator(cfg.Scene, rng.Derive("rear")),
		frontArrived: make(map[uint64]*FrameData),
		rearArrived:  make(map[uint64]*FrameData),
		fusedDone:    make(map[uint64]bool),
	}
	clockCfg := vclock.Config{Epsilon: cfg.ClockEpsilon}
	s.ECU1 = d.NewECU("ecu1", cfg.ECU1Cores, clockCfg)
	s.ECU2 = d.NewECU("ecu2", cfg.ECU2Cores, clockCfg)

	s.buildDevices(clockCfg)
	s.buildFusion()
	s.buildECU2()
	if cfg.Monitored {
		s.buildMonitors()
	}
	if cfg.Record {
		s.buildRecorder()
	}
	switch cfg.Partition {
	case "":
		// free migration
	case "balanced":
		for i, th := range s.ECU2.Proc.Threads() {
			th.PinTo(i % cfg.ECU2Cores)
		}
	case "colocated":
		// The three heavy workers share core 0; everything else is pinned
		// round-robin over the remaining cores.
		heavy := map[*sim.Thread]bool{
			s.Classifier.Exec:       true,
			s.Detection.Exec:        true,
			s.PlanGround.Middleware: true,
		}
		rest := 0
		for _, th := range s.ECU2.Proc.Threads() {
			if heavy[th] {
				th.PinTo(0)
				continue
			}
			if cfg.ECU2Cores > 1 {
				th.PinTo(1 + rest%(cfg.ECU2Cores-1))
				rest++
			} else {
				th.PinTo(0)
			}
		}
	default:
		panic(fmt.Sprintf("perception: unknown partition mode %q", cfg.Partition))
	}
	return s
}

func (s *System) buildDevices(clockCfg vclock.Config) {
	cfg := s.Cfg
	s.FrontLidar = s.Domain.NewDevice("front-lidar", TopicFront, cfg.Period, clockCfg)
	s.RearLidar = s.Domain.NewDevice("rear-lidar", TopicRear, cfg.Period, clockCfg)
	jitter := sim.LogNormalDist{Median: 300 * sim.Microsecond, Sigma: 0.5, Max: DeviceJitterMax}
	s.FrontLidar.Jitter = jitter
	s.RearLidar.Jitter = jitter
	payload := func(g *lidar.SceneGenerator, frame string) func(uint64) (any, int) {
		return func(n uint64) (any, int) {
			if cfg.RealCompute {
				pc := g.NextFrame(n, frame, s.K.Now())
				return &FrameData{
					Meta:   lidar.FrameMeta{Activation: n, GroundPoints: 0, ObjectPoints: len(pc.Points)},
					Points: len(pc.Points),
					Cloud:  pc,
				}, pc.Size()
			}
			meta := g.NextMeta(n)
			return &FrameData{Meta: meta, Points: meta.TotalPoints()}, 16 * meta.TotalPoints()
		}
	}
	s.FrontLidar.Payload = payload(s.frontGen, "front")
	s.RearLidar.Payload = payload(s.rearGen, "rear")
}

// fusionCost charges the join cost on the arrival that completes the pair.
func (s *System) fusionCost(other map[uint64]*FrameData) func(*dds.Sample) sim.Duration {
	return func(smp *dds.Sample) sim.Duration {
		if o := other[smp.Activation]; o != nil {
			fd := smp.Data.(*FrameData)
			return s.Cfg.Costs.FuseCost(fd.Points+o.Points, s.rng)
		}
		return 50 * sim.Microsecond // bookkeeping only
	}
}

func (s *System) buildFusion() {
	s.Fusion = s.ECU1.NewNode("fusion", dds.PrioExecBase+3)
	s.FusedPub = s.Fusion.NewPublisher(TopicFused)

	join := func(self, other map[uint64]*FrameData) func(*dds.Sample) {
		return func(smp *dds.Sample) {
			fd := smp.Data.(*FrameData)
			self[smp.Activation] = fd
			o := other[smp.Activation]
			if o == nil || s.fusedDone[smp.Activation] {
				return
			}
			s.fusedDone[smp.Activation] = true
			out := &FrameData{
				Meta:   combineMeta(fd.Meta, o.Meta),
				Points: fd.Points + o.Points,
			}
			if s.Cfg.RealCompute && fd.Cloud != nil && o.Cloud != nil {
				out.Cloud = lidar.Fuse(fd.Cloud, o.Cloud)
			}
			s.FusedPub.Publish(smp.Activation, out, 16*out.Points)
			delete(self, smp.Activation)
			delete(other, smp.Activation)
		}
	}
	s.FusionFrontSub = s.Fusion.Subscribe(TopicFront,
		s.fusionCost(s.rearArrived), join(s.frontArrived, s.rearArrived))
	s.FusionRearSub = s.Fusion.Subscribe(TopicRear,
		s.fusionCost(s.frontArrived), join(s.rearArrived, s.frontArrived))
}

func combineMeta(a, b lidar.FrameMeta) lidar.FrameMeta {
	return lidar.FrameMeta{
		Activation:   a.Activation,
		Objects:      a.Objects + b.Objects,
		GroundPoints: a.GroundPoints + b.GroundPoints,
		ObjectPoints: a.ObjectPoints + b.ObjectPoints,
	}
}

func (s *System) buildECU2() {
	cfg := s.Cfg
	// Descending priorities along the chain, as in the evaluation.
	s.Classifier = s.ECU2.NewNode("classifier", dds.PrioExecBase+3)
	s.Detection = s.ECU2.NewNode("detection", dds.PrioExecBase+2)
	s.Plan = s.ECU2.NewNode("plan", dds.PrioExecBase+1)

	s.GroundPub = s.Classifier.NewPublisher(TopicGround)
	s.NonGroundPub = s.Classifier.NewPublisher(TopicNonGround)
	s.ObjectsPub = s.Detection.NewPublisher(TopicObjects)

	s.ClassifierSub = s.Classifier.Subscribe(TopicFused,
		func(smp *dds.Sample) sim.Duration {
			return cfg.Costs.ClassifyCost(smp.Data.(*FrameData).Points, s.rng)
		},
		func(smp *dds.Sample) {
			fd := smp.Data.(*FrameData)
			ground := &FrameData{Meta: fd.Meta, Points: fd.Meta.GroundPoints, FrontOnly: fd.FrontOnly}
			nonGround := &FrameData{Meta: fd.Meta, Points: fd.Meta.ObjectPoints, FrontOnly: fd.FrontOnly}
			if cfg.RealCompute && fd.Cloud != nil {
				g, n := lidar.ClassifyGround(fd.Cloud, 0.15)
				ground.Cloud, ground.Points = g, len(g.Points)
				nonGround.Cloud, nonGround.Points = n, len(n.Points)
			}
			s.GroundPub.Publish(smp.Activation, ground, 16*ground.Points)
			s.NonGroundPub.Publish(smp.Activation, nonGround, 16*nonGround.Points)
		})

	s.DetectionSub = s.Detection.Subscribe(TopicNonGround,
		func(smp *dds.Sample) sim.Duration {
			return cfg.Costs.ClusterCost(smp.Data.(*FrameData).Points, s.rng)
		},
		func(smp *dds.Sample) {
			fd := smp.Data.(*FrameData)
			out := &FrameData{Meta: fd.Meta, Objects: fd.Meta.Objects, FrontOnly: fd.FrontOnly}
			if cfg.RealCompute && fd.Cloud != nil {
				out.Boxes = lidar.Cluster(fd.Cloud, 1.5, 30)
				out.Objects = len(out.Boxes)
			}
			s.ObjectsPub.Publish(smp.Activation, out, 64*out.Objects+64)
		})

	if cfg.RealCompute {
		s.Tracker = lidar.NewTracker()
	}
	s.PlanObjectsSub = s.Plan.Subscribe(TopicObjects,
		func(smp *dds.Sample) sim.Duration {
			return cfg.Costs.PlanCost(smp.Data.(*FrameData).Objects, s.rng)
		},
		func(smp *dds.Sample) {
			s.PlanDelivered++
			if s.Tracker != nil {
				s.Tracker.Update(smp.Data.(*FrameData).Boxes, s.K.Now())
			}
		})
	// The plan service is rviz2 in the evaluation: its point-cloud display
	// takes and processes the large ground cloud on its own listener lane,
	// separate from the lightweight objects display. That take/render cost
	// dominates the ground topic's receive path, which is why the ground
	// segment misses its 100 ms deadline more often than the objects
	// segment despite the shorter route (Fig. 10: 1699 vs 934 exceptions).
	s.PlanGround = s.ECU2.NewNode("plan-ground", dds.PrioExecBase)
	s.PlanGroundSub = s.PlanGround.Subscribe(TopicGround,
		func(smp *dds.Sample) sim.Duration {
			return cfg.Costs.PlanCost(4, s.rng)
		},
		nil)
	s.PlanGroundSub.DeliverCost = func(smp *dds.Sample) sim.Duration {
		return cfg.Costs.RenderCost(smp.Data.(*FrameData).Points, s.rng)
	}
}

func (s *System) handler(name string) monitor.Handler {
	if s.Cfg.Handlers == nil {
		return nil
	}
	return s.Cfg.Handlers[name]
}

func (s *System) buildMonitors() {
	cfg := s.Cfg
	s.MonECU2 = monitor.NewLocalMonitor(s.ECU2)
	handlerCost := sim.LogNormalDist{Median: 20 * sim.Microsecond, Sigma: 0.4, Max: 200 * sim.Microsecond}

	// The evaluation's two local segments: both start at the classifier's
	// reception of the fused cloud; "objects" ends at the plan service's
	// reception of the objects topic, "ground" at its reception of the
	// ground topic. The objects segment is registered first — the monitor
	// processes buffers in that fixed order (Fig. 10); GroundFirst flips
	// the order for the ablation study.
	addObjects := func() {
		s.SegObjects = s.MonECU2.AddSegment(monitor.SegmentConfig{
			Name: SegObjectsLocal, DMon: cfg.LocalDeadline, DEx: sim.Millisecond,
			Period: cfg.Period, Constraint: cfg.Constraint,
			Handler: s.handler(SegObjectsLocal), HandlerCost: handlerCost,
		})
		s.SegObjects.StartOnDeliver(s.ClassifierSub)
		s.SegObjects.EndOnDeliver(s.PlanObjectsSub)
	}
	addGround := func() {
		s.SegGround = s.MonECU2.AddSegment(monitor.SegmentConfig{
			Name: SegGroundLocal, DMon: cfg.LocalDeadline, DEx: sim.Millisecond,
			Period: cfg.Period, Constraint: cfg.Constraint,
			Handler: s.handler(SegGroundLocal), HandlerCost: handlerCost,
		})
		s.SegGround.StartOnDeliver(s.ClassifierSub)
		s.SegGround.EndOnDeliver(s.PlanGroundSub)
	}
	if cfg.GroundFirst {
		addGround()
		addObjects()
	} else {
		addObjects()
		addGround()
	}

	if !cfg.FullChain {
		return
	}
	s.MonECU1 = monitor.NewLocalMonitor(s.ECU1)

	// Fusion local segments (front/rear reception → fused publication).
	s.FusionFront = s.MonECU1.AddSegment(monitor.SegmentConfig{
		Name: SegFusionFront, DMon: cfg.LocalDeadline / 2, DEx: sim.Millisecond,
		Period: cfg.Period, Constraint: cfg.Constraint,
		Handler: s.handler(SegFusionFront), HandlerCost: handlerCost,
	})
	s.FusionFront.StartOnDeliver(s.FusionFrontSub)
	s.FusionFront.EndOnPublish(s.FusedPub)
	s.FusionRear = s.MonECU1.AddSegment(monitor.SegmentConfig{
		Name: SegFusionRear, DMon: cfg.LocalDeadline / 2, DEx: sim.Millisecond,
		Period: cfg.Period, Constraint: cfg.Constraint,
		Handler: s.handler(SegFusionRear), HandlerCost: handlerCost,
	})
	s.FusionRear.StartOnDeliver(s.FusionRearSub)
	s.FusionRear.EndOnPublish(s.FusedPub)

	// Remote segments: lidars → fusion, fused → classifier. Note that the
	// remote monitors were attached after the fusion/classifier segment
	// hooks, but NewRemoteMonitor prepends its delivery hook so late
	// samples are discarded before any start event is posted.
	remCfg := func(name string) monitor.SegmentConfig {
		return monitor.SegmentConfig{
			Name: name, DMon: cfg.RemoteDeadline, DEx: sim.Millisecond,
			Period: cfg.Period, Constraint: cfg.Constraint,
			Handler: s.handler(name), HandlerCost: handlerCost,
		}
	}
	s.RemFront = monitor.NewRemoteMonitor(s.FusionFrontSub, remCfg(SegFrontRemote), cfg.RemoteVariant, s.MonECU1)
	s.RemFront.PropagateTo(s.FusionFront)
	s.RemRear = monitor.NewRemoteMonitor(s.FusionRearSub, remCfg(SegRearRemote), cfg.RemoteVariant, s.MonECU1)
	s.RemRear.PropagateTo(s.FusionRear)
	s.RemFused = monitor.NewRemoteMonitor(s.ClassifierSub, remCfg(SegFusedRemote), cfg.RemoteVariant, s.MonECU2)
	s.RemFused.PropagateTo(monitor.MultiPropagator{s.SegObjects, s.SegGround})

	if cfg.Frames > 0 {
		last := uint64(cfg.Frames - 1)
		s.RemFront.SetLastActivation(last)
		s.RemRear.SetLastActivation(last)
		s.RemFused.SetLastActivation(last)
	}

	// The two event chains of Fig. 2, both ending at the objects segment.
	be2e := 2*cfg.RemoteDeadline + cfg.LocalDeadline/2 + cfg.LocalDeadline + 4*sim.Millisecond
	s.ChainFront = monitor.NewChain("front-objects", be2e, cfg.Period, cfg.Constraint)
	s.ChainFront.Append(s.RemFront).Append(s.FusionFront).Append(s.RemFused).Append(s.SegObjects)
	s.ChainFront.Seal()
	s.ChainRear = monitor.NewChain("rear-objects", be2e, cfg.Period, cfg.Constraint)
	s.ChainRear.Append(s.RemRear).Append(s.FusionRear).Append(s.RemFused).Append(s.SegGround)
	s.ChainRear.Seal()
}

func (s *System) buildRecorder() {
	s.Recorder = trace.NewRecorder(s.K)
	obj := s.Recorder.Segment(SegObjectsLocal, 1)
	obj.StartOnDeliver(s.ClassifierSub)
	obj.EndOnDeliver(s.PlanObjectsSub)
	gnd := s.Recorder.Segment(SegGroundLocal, 1)
	gnd.StartOnDeliver(s.ClassifierSub)
	gnd.EndOnDeliver(s.PlanGroundSub)
	fus := s.Recorder.Segment(SegFusionFront, 1)
	fus.StartOnDeliver(s.FusionFrontSub)
	fus.EndOnPublish(s.FusedPub)
	rem := s.Recorder.Segment(SegFusedRemote, 1).RemoteMode(s.Cfg.Period)
	rem.StartOnPublish(s.FusedPub)
	rem.EndOnDeliver(s.ClassifierSub)
	// End-to-end latency of the front chain: front lidar publication →
	// objects reception at the plan service (compared against B_e2e).
	e2e := s.Recorder.Segment("e2e/front-objects", 1)
	e2e.StartOnDevicePublish(s.FrontLidar)
	e2e.EndOnDeliver(s.PlanObjectsSub)
}

// Run starts the lidars, lets the system execute all configured frames and
// drains the backlog. It returns the end time.
func (s *System) Run() sim.Time {
	s.FrontLidar.Start(0)
	s.RearLidar.Start(0)
	end := sim.Time(s.Cfg.Frames) * sim.Time(s.Cfg.Period)
	s.K.At(end, func() {
		s.FrontLidar.Stop()
		s.RearLidar.Stop()
	})
	// Drain: after the last activation's worst-case path, stop the remote
	// monitors so the kernel runs dry.
	drain := end.Add(5 * sim.Second)
	s.K.At(drain, func() {
		for _, m := range []*monitor.RemoteMonitor{s.RemFront, s.RemRear, s.RemFused} {
			if m != nil {
				m.Stop()
			}
		}
	})
	s.K.Run()
	return s.K.Now()
}
