package perception

import (
	"chainmon/internal/livestats"
	"chainmon/internal/monitor"
)

// AttachLive wires the whole perception system to a live health set: every
// local and remote segment gets a streaming latency sketch plus an (m,k)
// SLO tracker, and both chains get chain-level (m,k) burn tracking. Call it
// after New and before Run, like AttachTelemetry. A nil set leaves the
// system dark.
//
// The set summarizes exactly the same in-order resolution stream that
// feeds SegmentStats (same LatencySample inclusion rule), so the sketch
// quantiles agree with the exact offline quantiles within the sketch's
// documented error bound — the sim-side half of the cross-timebase
// agreement contract.
func AttachLive(s *System, set *livestats.Set) {
	if set == nil {
		return
	}
	set.SetTimebase("sim")
	for _, lm := range []*monitor.LocalMonitor{s.MonECU1, s.MonECU2} {
		if lm != nil {
			lm.AttachLive(set)
		}
	}
	for _, rm := range []*monitor.RemoteMonitor{s.RemFront, s.RemRear, s.RemFused} {
		if rm != nil {
			monitor.AttachLiveSegment(set, rm)
		}
	}
	for _, c := range []*monitor.Chain{s.ChainFront, s.ChainRear} {
		if c != nil {
			c.AttachLive(set)
		}
	}
}
