package perception

import (
	"testing"

	"chainmon/internal/sim"
)

// TestLongRunStability is a scale test: an hour of simulated operation
// (36k activations across two lidars) with full-chain monitoring and
// network loss must keep every invariant: activation accounting never
// drifts, the monitored latency cap holds for every single activation, and
// memory bookkeeping (gc'd maps, reorder windows) does not leak executions.
func TestLongRunStability(t *testing.T) {
	if testing.Short() {
		t.Skip("long scale run")
	}
	cfg := DefaultConfig()
	cfg.Frames = 36_000 // one hour at 10 FPS
	cfg.FullChain = true
	cfg.Network.LossProb = 0.002
	s := Build(cfg)
	s.Run()

	exec, _, viol := s.ChainFront.Totals()
	if exec < uint64(cfg.Frames)-10 || exec > uint64(cfg.Frames) {
		t.Fatalf("chain executions = %d, want ≈%d", exec, cfg.Frames)
	}
	if viol == 0 {
		t.Error("no violations in an hour with 0.2% loss — loss path dead")
	}
	for _, seg := range []*struct {
		name string
		max  float64
	}{
		{"objects", s.SegObjects.Stats().Latencies().Max()},
		{"ground", s.SegGround.Stats().Latencies().Max()},
	} {
		if seg.max > float64(cfg.LocalDeadline+5*sim.Millisecond) {
			t.Errorf("%s: monitored latency cap violated after long run: %v",
				seg.name, sim.Duration(seg.max))
		}
	}
	// Every activation resolved exactly once at the final segments.
	res := s.SegObjects.Stats().Resolutions()
	seen := make(map[uint64]bool, len(res))
	for _, r := range res {
		if seen[r.Activation] {
			t.Fatalf("activation %d resolved twice", r.Activation)
		}
		seen[r.Activation] = true
	}
	if len(res) < cfg.Frames-10 {
		t.Errorf("objects resolutions = %d, want ≈%d", len(res), cfg.Frames)
	}
}
