package perception_test

import (
	"math"
	"testing"

	"chainmon/internal/livestats"
	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/stats"
	"chainmon/internal/weaklyhard"
)

// liveRun builds a full-chain monitored system with a live health set
// attached and runs it to completion on the virtual-time kernel.
func liveRun(t *testing.T, seed int64) (*perception.System, *livestats.Set) {
	t.Helper()
	cfg := perception.DefaultConfig()
	cfg.Seed = seed
	cfg.Frames = 150
	cfg.FullChain = true
	s := perception.Build(cfg)
	set := livestats.NewSet(0)
	perception.AttachLive(s, set)
	s.Run()
	return s, set
}

// checkSketchAgainstSample asserts the tentpole acceptance criterion: the
// live sketch quantile must fall inside the documented bracket around the
// exact order statistics of the same verdict stream —
// (1−α)·x_⌊q(n−1)⌋ ≤ v̂ ≤ (1+α)·x_⌈q(n−1)⌉.
func checkSketchAgainstSample(t *testing.T, set *livestats.Set, name string, sample *stats.Sample) {
	t.Helper()
	scope := set.Segment(name, weaklyhard.Constraint{})
	if got, want := scope.Count(), uint64(sample.Len()); got != want {
		t.Errorf("%s: sketch saw %d latencies, exact sample has %d — the two summarize different streams", name, got, want)
		return
	}
	if sample.Len() == 0 {
		return
	}
	sorted := sample.Values()
	alpha := set.Alpha()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := scope.Quantile(q)
		pos := q * float64(len(sorted)-1)
		lo := (1 - alpha) * sorted[int(math.Floor(pos))]
		hi := (1 + alpha) * sorted[int(math.Ceil(pos))]
		if got < lo || got > hi {
			t.Errorf("%s: live p%g = %g outside [%g, %g] (exact = %g)",
				name, q*100, got, lo, hi, sample.Quantile(q))
		}
	}
}

// TestLiveSketchAgreesWithSegmentStats pins the sim side of the agreement
// contract: for every monitored segment of a full-chain run, the live
// sketch p50/p95/p99 match the SegmentStats exact sample within the
// sketch's rank-error bound.
func TestLiveSketchAgreesWithSegmentStats(t *testing.T) {
	s, set := liveRun(t, 42)
	for name, st := range map[string]*monitor.SegmentStats{
		perception.SegObjectsLocal: s.SegObjects.Stats(),
		perception.SegGroundLocal:  s.SegGround.Stats(),
		perception.SegFrontRemote:  s.RemFront.Stats(),
		perception.SegRearRemote:   s.RemRear.Stats(),
		perception.SegFusedRemote:  s.RemFused.Stats(),
		perception.SegFusionFront:  s.FusionFront.Stats(),
		perception.SegFusionRear:   s.FusionRear.Stats(),
	} {
		checkSketchAgainstSample(t, set, name, st.Latencies())
	}
}

// TestLiveHealthMatchesCounters pins the /health (m,k) criterion on the sim
// timebase: the health document's window state must equal the weakly-hard
// counters the monitor itself computed, for segments and chains.
func TestLiveHealthMatchesCounters(t *testing.T) {
	s, set := liveRun(t, 7)
	h := set.Health()

	checkSeg := func(name string, ctr *weaklyhard.Counter) {
		t.Helper()
		sh, ok := h.Segments[name]
		if !ok || sh.SLO == nil {
			t.Errorf("%s: no SLO in health document", name)
			return
		}
		if sh.SLO.WindowMisses != ctr.Misses() || sh.SLO.Budget != ctr.Budget() {
			t.Errorf("%s: health window (%d misses, %d budget) != counter (%d, %d)",
				name, sh.SLO.WindowMisses, sh.SLO.Budget, ctr.Misses(), ctr.Budget())
		}
		exec, misses, viol := ctr.Totals()
		if sh.SLO.Executions != exec || sh.SLO.TotalMisses != misses || sh.SLO.Violations != viol {
			t.Errorf("%s: health totals (%d,%d,%d) != counter totals (%d,%d,%d)",
				name, sh.SLO.Executions, sh.SLO.TotalMisses, sh.SLO.Violations, exec, misses, viol)
		}
		if (sh.SLO.State == "violated") != ctr.Violated() {
			t.Errorf("%s: health state %q vs counter violated=%v", name, sh.SLO.State, ctr.Violated())
		}
	}
	checkSeg(perception.SegObjectsLocal, s.SegObjects.Counter())
	checkSeg(perception.SegGroundLocal, s.SegGround.Counter())
	checkSeg(perception.SegFrontRemote, s.RemFront.Counter())
	checkSeg(perception.SegRearRemote, s.RemRear.Counter())
	checkSeg(perception.SegFusedRemote, s.RemFused.Counter())

	for name, c := range map[string]*monitor.Chain{
		"front": s.ChainFront, "rear": s.ChainRear,
	} {
		ch, ok := h.Chains[c.Name]
		if !ok || ch.SLO == nil {
			t.Errorf("chain %s: missing from health document", name)
			continue
		}
		ctr := c.Counter()
		if ch.SLO.WindowMisses != ctr.Misses() || ch.SLO.Budget != ctr.Budget() {
			t.Errorf("chain %s: health window (%d, %d) != counter (%d, %d)",
				name, ch.SLO.WindowMisses, ch.SLO.Budget, ctr.Misses(), ctr.Budget())
		}
	}
	if h.Timebase != "sim" {
		t.Errorf("timebase = %q, want sim", h.Timebase)
	}
}

// TestLiveDoesNotPerturb requires an instrumented run to produce exactly
// the same verdicts as a dark one: the live set observes resolutions but
// never advances virtual time or touches a random stream.
func TestLiveDoesNotPerturb(t *testing.T) {
	counts := func(attach bool) (all [][3]int) {
		cfg := perception.DefaultConfig()
		cfg.Seed = 9
		cfg.Frames = 100
		cfg.FullChain = true
		s := perception.Build(cfg)
		if attach {
			perception.AttachLive(s, livestats.NewSet(0))
		}
		s.Run()
		for _, st := range []*monitor.SegmentStats{
			s.SegObjects.Stats(), s.SegGround.Stats(),
			s.RemFront.Stats(), s.RemRear.Stats(), s.RemFused.Stats(),
		} {
			ok, rec, miss := st.Counts()
			all = append(all, [3]int{ok, rec, miss})
		}
		return all
	}
	bare, live := counts(false), counts(true)
	for i := range bare {
		if bare[i] != live[i] {
			t.Errorf("segment %d verdicts changed under live stats: %v vs %v", i, bare[i], live[i])
		}
	}
}
