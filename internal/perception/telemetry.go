package perception

import (
	"chainmon/internal/monitor"
	"chainmon/internal/telemetry"
	"chainmon/internal/vclock"
)

// kernelQueueSampleEvery thins KindKernelQueue trace events: the counters
// and gauges see every heap operation, the flight recorder every N-th, so a
// full run fits the ring without drowning out the other tracks.
const kernelQueueSampleEvery = 64

// AttachTelemetry wires the whole perception system — sim kernel, DDS
// domain and links, device and ECU clocks, local and remote monitors, and
// chains — to the sink. Call it after New (so the monitors exist) and
// before Run. A nil sink leaves the system dark; the hot paths then cost a
// single pointer check each.
func AttachTelemetry(s *System, sink *telemetry.Sink) {
	if sink == nil {
		return
	}

	// Flow scopes: all topics and segments of one pipeline branch share a
	// scope, so the events of activation n across publisher, link, subscriber
	// and monitor carry one flow id and the Perfetto export stitches them into
	// a single dds-send → net → dds-recv → verdict arrow chain. The branches
	// merge in the fused trunk, which gets its own scope (activation numbering
	// is consistent across the chain, so the trunk flow of n continues where
	// the branch flows of n end).
	// Bound in a fixed order: scope ids are assigned on first use, and the
	// streamed trace must be byte-identical across same-seed runs.
	for _, b := range []struct {
		scope   string
		streams []string
	}{
		{"front", []string{TopicFront, SegFrontRemote, SegFusionFront}},
		{"rear", []string{TopicRear, SegRearRemote, SegFusionRear}},
		{"trunk", []string{TopicFused, TopicGround, TopicNonGround, TopicObjects,
			SegFusedRemote, SegObjectsLocal, SegGroundLocal}},
	} {
		for _, stream := range b.streams {
			sink.Rec.BindFlow(stream, b.scope)
		}
	}

	// Sim-kernel event queue: depth and heap-operation metrics from the
	// plain-callback probe (internal/sim stays telemetry-free).
	track := sink.Rec.Track("kernel")
	ops := sink.Reg.Counter("chainmon_kernel_heap_ops_total",
		"Event-queue heap operations (push, pop, remove).")
	depth := sink.Reg.Gauge("chainmon_kernel_queue_depth",
		"Pending events in the sim-kernel queue.")
	var opCount uint64
	s.K.SetQueueProbe(func(d int) {
		opCount++
		ops.Inc()
		depth.Set(int64(d))
		if opCount%kernelQueueSampleEvery == 0 {
			track.Append(telemetry.Event{
				TS: int64(s.K.Now()), Act: opCount, Arg: int64(d),
				Kind: telemetry.KindKernelQueue,
			})
		}
	})

	s.Domain.AttachTelemetry(sink)
	for _, c := range []*vclock.Clock{
		s.ECU1.Clock, s.ECU2.Clock, s.FrontLidar.Clock, s.RearLidar.Clock,
	} {
		c.AttachTelemetry(sink)
	}
	for _, lm := range []*monitor.LocalMonitor{s.MonECU1, s.MonECU2} {
		if lm != nil {
			lm.AttachTelemetry(sink)
		}
	}
	for _, rm := range []*monitor.RemoteMonitor{s.RemFront, s.RemRear, s.RemFused} {
		if rm != nil {
			rm.AttachTelemetry(sink)
		}
	}
	for _, c := range []*monitor.Chain{s.ChainFront, s.ChainRear} {
		if c != nil {
			c.AttachTelemetry(sink)
		}
	}
}
