package perception_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/telemetry"
)

// telemetryRun builds a full-chain monitored system, attaches a sink and
// runs it to completion.
func telemetryRun(t *testing.T, seed int64) (*perception.System, *telemetry.Sink) {
	t.Helper()
	cfg := perception.DefaultConfig()
	cfg.Seed = seed
	cfg.Frames = 150
	cfg.FullChain = true
	s := perception.Build(cfg)
	sink := telemetry.NewSink(1 << 14)
	perception.AttachTelemetry(s, sink)
	s.Run()
	return s, sink
}

// TestTelemetryDeterminism runs the same seed twice and requires the
// Perfetto trace, the Prometheus dump and the CSV dump to be byte-identical:
// the flight recorder observes only virtual time, so identical seeds must
// produce identical telemetry.
func TestTelemetryDeterminism(t *testing.T) {
	dump := func() (trace, prom, csv []byte) {
		_, sink := telemetryRun(t, 42)
		var tb, pb, cb bytes.Buffer
		if err := sink.WritePerfetto(&tb); err != nil {
			t.Fatalf("WritePerfetto: %v", err)
		}
		if err := sink.WriteMetrics(&pb); err != nil {
			t.Fatalf("WriteMetrics: %v", err)
		}
		if err := sink.WriteEventsCSV(&cb); err != nil {
			t.Fatalf("WriteEventsCSV: %v", err)
		}
		return tb.Bytes(), pb.Bytes(), cb.Bytes()
	}
	t1, p1, c1 := dump()
	t2, p2, c2 := dump()
	if !bytes.Equal(t1, t2) {
		t.Errorf("Perfetto traces differ between identical runs (%d vs %d bytes)", len(t1), len(t2))
	}
	if !bytes.Equal(p1, p2) {
		t.Errorf("metrics dumps differ between identical runs:\n--- run1\n%s\n--- run2\n%s", p1, p2)
	}
	if !bytes.Equal(c1, c2) {
		t.Errorf("CSV dumps differ between identical runs (%d vs %d bytes)", len(c1), len(c2))
	}
	if len(t1) == 0 || len(p1) == 0 || len(c1) == 0 {
		t.Fatalf("empty telemetry dump: trace=%d prom=%d csv=%d bytes", len(t1), len(p1), len(c1))
	}
}

// TestTelemetryPerfettoValid validates the emitted trace against the Chrome
// trace-event container format: a JSON object with displayTimeUnit and a
// traceEvents array whose entries all carry a phase and a pid.
func TestTelemetryPerfettoValid(t *testing.T) {
	_, sink := telemetryRun(t, 7)
	var buf bytes.Buffer
	if err := sink.WritePerfetto(&buf); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) < 100 {
		t.Fatalf("only %d trace events from a 150-frame full-chain run", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for i, ev := range doc.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			t.Fatalf("event %d has no phase: %v", i, ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event %d has no pid: %v", i, ev)
		}
		phases[ph]++
	}
	// The run must exercise metadata, instants, counters and spans.
	for _, ph := range []string{"M", "i", "C", "X"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in the trace (phases: %v)", ph, phases)
		}
	}
}

// TestResolutionCountersMatchStats pins the acceptance criterion that the
// chainmon_segment_resolutions_total counters agree exactly with the
// SegmentStats verdict counts, for every monitored segment.
func TestResolutionCountersMatchStats(t *testing.T) {
	s, sink := telemetryRun(t, 3)
	check := func(name string, st *monitor.SegmentStats) {
		ok, rec, miss := st.Counts()
		for _, want := range []struct {
			status string
			n      int
		}{{"ok", ok}, {"recovered", rec}, {"missed", miss}} {
			c := sink.Reg.Counter("chainmon_segment_resolutions_total", "",
				telemetry.Label{Name: "segment", Value: name},
				telemetry.Label{Name: "status", Value: want.status})
			if got := c.Value(); got != uint64(want.n) {
				t.Errorf("%s: counter{status=%s} = %d, stats say %d", name, want.status, got, want.n)
			}
		}
	}
	check(perception.SegObjectsLocal, s.SegObjects.Stats())
	check(perception.SegGroundLocal, s.SegGround.Stats())
	check(perception.SegFrontRemote, s.RemFront.Stats())
	check(perception.SegRearRemote, s.RemRear.Stats())
	check(perception.SegFusedRemote, s.RemFused.Stats())
	check(perception.SegFusionFront, s.FusionFront.Stats())
	check(perception.SegFusionRear, s.FusionRear.Stats())
}

// TestTelemetryDoesNotPerturb requires an instrumented run to produce
// exactly the same verdicts as an uninstrumented one: the probes observe
// virtual time but must never advance it or touch a random stream.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	counts := func(attach bool) (end int64, all [][3]int) {
		cfg := perception.DefaultConfig()
		cfg.Seed = 9
		cfg.Frames = 150
		cfg.FullChain = true
		s := perception.Build(cfg)
		if attach {
			perception.AttachTelemetry(s, telemetry.NewSink(1<<14))
		}
		endT := s.Run()
		for _, st := range []*monitor.SegmentStats{
			s.SegObjects.Stats(), s.SegGround.Stats(),
			s.RemFront.Stats(), s.RemRear.Stats(), s.RemFused.Stats(),
			s.FusionFront.Stats(), s.FusionRear.Stats(),
		} {
			ok, rec, miss := st.Counts()
			all = append(all, [3]int{ok, rec, miss})
		}
		return int64(endT), all
	}
	endBare, bare := counts(false)
	endTel, tel := counts(true)
	if endBare != endTel {
		t.Errorf("telemetry changed the run length: %d vs %d", endBare, endTel)
	}
	for i := range bare {
		if bare[i] != tel[i] {
			t.Errorf("segment %d verdicts changed under telemetry: %v vs %v", i, bare[i], tel[i])
		}
	}
}
