package perception

import (
	"testing"

	"chainmon/internal/lidar"
	"chainmon/internal/monitor"
	"chainmon/internal/sim"
)

func TestUnmonitoredRunProducesTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frames = 400
	cfg.Monitored = false
	cfg.Record = true
	s := Build(cfg)
	s.Run()

	tr := s.Recorder.Trace()
	obj := tr.Segment(SegObjectsLocal)
	gnd := tr.Segment(SegGroundLocal)
	if obj == nil || gnd == nil {
		t.Fatal("missing segment traces")
	}
	if len(obj.Latencies) < 390 {
		t.Fatalf("objects latencies = %d, want ≈400", len(obj.Latencies))
	}
	os := obj.Sample()
	t.Logf("objects: med=%v p95=%v max=%v",
		sim.Duration(os.Median()), sim.Duration(os.Quantile(0.95)), sim.Duration(os.Max()))
	gs := gnd.Sample()
	t.Logf("ground:  med=%v p95=%v max=%v",
		sim.Duration(gs.Median()), sim.Duration(gs.Quantile(0.95)), sim.Duration(gs.Max()))
	// Shape requirements from Fig. 9: medians in the tens of milliseconds,
	// a tail of several hundred milliseconds.
	if os.Median() < float64(10*sim.Millisecond) || os.Median() > float64(250*sim.Millisecond) {
		t.Errorf("objects median %v outside plausible range", sim.Duration(os.Median()))
	}
	if os.Max() < float64(150*sim.Millisecond) {
		t.Errorf("objects max %v lacks the heavy tail", sim.Duration(os.Max()))
	}
	// As in the evaluation, the ground segment (dominated by rviz2 taking
	// the large ground cloud) runs longer than the objects segment.
	if gs.Median() <= os.Median() {
		t.Errorf("ground median %v should exceed objects median %v",
			sim.Duration(gs.Median()), sim.Duration(os.Median()))
	}
}

func TestMonitoredRunCapsLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frames = 150
	s := Build(cfg)
	s.Run()

	for _, seg := range []*monitor.LocalSegment{s.SegObjects, s.SegGround} {
		st := seg.Stats()
		lat := st.Latencies()
		if lat.Len() < 100 {
			t.Fatalf("%s: only %d latency samples", st.Name, lat.Len())
		}
		// The monitored latency definition caps every activation at
		// d_mon plus the bounded exception handling time.
		cap := float64(cfg.LocalDeadline + 5*sim.Millisecond)
		if lat.Max() > cap {
			t.Errorf("%s: max latency %v exceeds monitored cap", st.Name, sim.Duration(lat.Max()))
		}
		ok, rec, miss := st.Counts()
		t.Logf("%s: ok=%d rec=%d miss=%d", st.Name, ok, rec, miss)
		if miss+rec == 0 {
			t.Errorf("%s: no exceptions at a 100 ms deadline — tail too light", st.Name)
		}
	}
	// The evaluation's asymmetry: the ground segment raises roughly twice
	// as many exceptions as the objects segment (1699 vs 934 in Fig. 10).
	if s.SegGround.Stats().Exceptions() <= s.SegObjects.Stats().Exceptions() {
		t.Errorf("ground exceptions (%d) should exceed objects exceptions (%d)",
			s.SegGround.Stats().Exceptions(), s.SegObjects.Stats().Exceptions())
	}
}

func TestMonitoredExceptionLatenciesNearDeadline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frames = 150
	s := Build(cfg)
	s.Run()
	exc := s.SegObjects.Stats().ExceptionLatencies()
	if exc.Len() == 0 {
		t.Skip("no exceptions in this run")
	}
	// Exception cases sit at d_mon plus detection+handling (sub-ms).
	if exc.Min() < float64(cfg.LocalDeadline) {
		t.Errorf("exception latency %v below the deadline", sim.Duration(exc.Min()))
	}
	if exc.Max() > float64(cfg.LocalDeadline+2*sim.Millisecond) {
		t.Errorf("exception latency %v too far past the deadline", sim.Duration(exc.Max()))
	}
}

func TestFullChainRunAccountsAllActivations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frames = 120
	cfg.FullChain = true
	s := Build(cfg)
	s.Run()

	exec, rec, viol := s.ChainFront.Totals()
	if exec < uint64(cfg.Frames)-5 {
		t.Errorf("front chain executions = %d, want ≈%d", exec, cfg.Frames)
	}
	t.Logf("front chain: exec=%d rec=%d viol=%d", exec, rec, viol)
	t.Logf("%s", s.ChainFront.Summary())
	if !s.ChainFront.BudgetSatisfied() {
		t.Error("configured deadlines must satisfy the chain budget")
	}
}

func TestNetworkLossPropagatesThroughChain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frames = 200
	cfg.FullChain = true
	cfg.Network.LossProb = 0.05 // heavy loss on the lidar links
	s := Build(cfg)
	s.Run()

	// Lost lidar frames must surface as remote-segment misses and
	// propagate into chain violations (no handler installed).
	_, _, frontMiss := s.RemFront.Stats().Counts()
	if frontMiss == 0 {
		t.Error("no remote misses despite 5% loss")
	}
	_, _, viol := s.ChainFront.Totals()
	if viol == 0 {
		t.Error("no chain violations despite lost frames")
	}
	t.Logf("front remote misses=%d chain violations=%d", frontMiss, viol)
}

func TestRecoveryHandlerSuppressesChainViolation(t *testing.T) {
	run := func(withHandler bool) uint64 {
		cfg := DefaultConfig()
		cfg.Seed = 7
		cfg.Frames = 200
		cfg.FullChain = true
		cfg.Network.LossProb = 0.05
		if withHandler {
			cfg.Handlers = map[string]monitor.Handler{
				// Fig. 3: the fusion's rear segment recovers by sending
				// the front-only cloud; the front remote segment recovers
				// by repeating held-over data.
				SegFrontRemote: func(ctx *monitor.ExceptionContext) *monitor.Recovery {
					return &monitor.Recovery{Data: &FrameData{Meta: heldOverMeta(ctx.Activation), Points: 6000}, Size: 16 * 6000}
				},
				SegRearRemote: func(ctx *monitor.ExceptionContext) *monitor.Recovery {
					return &monitor.Recovery{Data: &FrameData{Meta: heldOverMeta(ctx.Activation), Points: 6000}, Size: 16 * 6000}
				},
			}
		}
		s := Build(cfg)
		s.Run()
		_, _, viol := s.ChainFront.Totals()
		return viol
	}
	without := run(false)
	with := run(true)
	t.Logf("violations without handler=%d, with=%d", without, with)
	if with >= without {
		t.Errorf("recovery handlers should reduce chain violations (%d → %d)", without, with)
	}
}

// heldOverMeta fabricates the metadata of a held-over recovery frame.
func heldOverMeta(act uint64) lidar.FrameMeta {
	return lidar.FrameMeta{Activation: act, GroundPoints: 6000}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, int) {
		cfg := DefaultConfig()
		cfg.Frames = 80
		s := Build(cfg)
		s.Run()
		_, _, miss := s.SegObjects.Stats().Counts()
		return s.PlanDelivered, miss
	}
	d1, m1 := run()
	d2, m2 := run()
	if d1 != d2 || m1 != m2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", d1, m1, d2, m2)
	}
}
