// Package rta provides classic response-time analysis for fixed-priority
// preemptive scheduling. The paper's budgeting step splits every segment
// deadline into d = d_mon + d_ex and demands (footnote 1) that d_ex — the
// worst-case response time of the exception handling — "should be acquired
// with analytical methods" because the handlers are safety-critical. This
// package supplies that analysis: the monitor thread's handler set is
// modelled as sporadic tasks and the standard busy-window recurrence
//
//	R = C + B + Σ_{j ∈ hp} ⌈R / T_j⌉ · C_j
//
// (Joseph & Pandya / Audsley et al.) yields a conservative d_ex per
// handler, which feeds budget.Problem.DEx.
package rta

import (
	"fmt"
	"math"
	"sort"

	"chainmon/internal/sim"
)

// Task is one sporadic task under fixed-priority preemptive scheduling.
type Task struct {
	Name string
	// WCET is the worst-case execution time C.
	WCET sim.Duration
	// Period is the minimum inter-arrival time T.
	Period sim.Duration
	// Priority: higher values preempt lower ones.
	Priority int
	// Blocking is the maximum blocking time B from lower-priority critical
	// sections (e.g. a wait-free post is effectively zero; a semaphore
	// protected section is its longest hold time).
	Blocking sim.Duration
	// Deadline is the task's constrained deadline for the schedulability
	// verdict; zero means implicit (Deadline = Period).
	Deadline sim.Duration
}

func (t Task) deadline() sim.Duration {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return t.Period
}

// Result is the analysis outcome for one task.
type Result struct {
	Task Task
	// WCRT is the computed worst-case response time; valid if Schedulable.
	WCRT sim.Duration
	// Schedulable reports whether the recurrence converged within the
	// task's deadline.
	Schedulable bool
}

// Analyze computes worst-case response times for all tasks on one
// processor core under preemptive fixed-priority scheduling. It returns one
// result per task, in the input order.
//
// The analysis is sustainable (larger C or smaller T only increase WCRTs)
// and assumes constrained deadlines (D ≤ T): only one job per task is
// pending at a time, so the single-job busy window suffices.
func Analyze(tasks []Task) ([]Result, error) {
	for i, t := range tasks {
		if t.WCET <= 0 {
			return nil, fmt.Errorf("rta: task %q has non-positive WCET", t.Name)
		}
		if t.Period <= 0 {
			return nil, fmt.Errorf("rta: task %q has non-positive period", t.Name)
		}
		if t.deadline() > t.Period {
			return nil, fmt.Errorf("rta: task %q has deadline %v > period %v (unsupported)",
				t.Name, t.deadline(), t.Period)
		}
		_ = i
	}
	// Total utilization must be below 1 for the recurrences to converge.
	var u float64
	for _, t := range tasks {
		u += float64(t.WCET) / float64(t.Period)
	}

	results := make([]Result, len(tasks))
	for i, t := range tasks {
		results[i] = Result{Task: t}
		hp := higherPriority(tasks, i)
		r, ok := responseTime(t, hp, u)
		results[i].WCRT = r
		results[i].Schedulable = ok && r <= t.deadline()
	}
	return results, nil
}

// higherPriority returns the tasks that can preempt tasks[i]. Equal
// priorities are treated as interfering (conservative: FIFO among equals
// means a full job of each equal-priority task can delay us).
func higherPriority(tasks []Task, i int) []Task {
	var hp []Task
	for j, t := range tasks {
		if j == i {
			continue
		}
		if t.Priority >= tasks[i].Priority {
			hp = append(hp, t)
		}
	}
	return hp
}

// responseTime iterates the busy-window recurrence to a fixed point.
func responseTime(t Task, hp []Task, util float64) (sim.Duration, bool) {
	r := t.WCET + t.Blocking
	const maxIter = 10_000
	for iter := 0; iter < maxIter; iter++ {
		interference := sim.Duration(0)
		for _, h := range hp {
			n := int64(math.Ceil(float64(r) / float64(h.Period)))
			interference += sim.Duration(n) * h.WCET
		}
		next := t.WCET + t.Blocking + interference
		if next == r {
			return r, true
		}
		if next > t.deadline() && util >= 1 {
			return next, false
		}
		if next > 1000*t.Period {
			return next, false // diverging
		}
		r = next
	}
	return r, false
}

// MonitorHandlerSet builds the task set of a monitor thread's exception
// handlers plus the interfering higher-priority activity, and returns the
// d_ex bound for each handler: since all handlers share the single monitor
// thread at the same (highest) priority, the WCRT of handler i includes one
// full job of every other handler (FIFO among equals) plus the monitor's
// scan work, modelled as a task.
type MonitorHandlerSet struct {
	// ScanWCET and ScanPeriod model the monitor's drain pass.
	ScanWCET   sim.Duration
	ScanPeriod sim.Duration
	// Handlers are the per-segment exception handler WCETs with the chain
	// period as minimum inter-arrival.
	Handlers []Task
}

// DEx computes a conservative d_ex for every handler in the set, returning
// the per-handler bounds and the maximum (a safe single d_ex for the whole
// budgeting problem).
func (m MonitorHandlerSet) DEx() ([]Result, sim.Duration, error) {
	tasks := make([]Task, 0, len(m.Handlers)+1)
	if m.ScanWCET > 0 {
		if m.ScanPeriod <= 0 {
			return nil, 0, fmt.Errorf("rta: scan task needs a period")
		}
		tasks = append(tasks, Task{
			Name: "monitor-scan", WCET: m.ScanWCET, Period: m.ScanPeriod, Priority: 1,
		})
	}
	for _, h := range m.Handlers {
		h.Priority = 1 // all on the monitor thread: same priority
		tasks = append(tasks, h)
	}
	res, err := Analyze(tasks)
	if err != nil {
		return nil, 0, err
	}
	// Drop the scan task from the reported handlers.
	if m.ScanWCET > 0 {
		res = res[1:]
	}
	var max sim.Duration
	for _, r := range res {
		if !r.Schedulable {
			return res, 0, fmt.Errorf("rta: handler %q not schedulable (WCRT %v)", r.Task.Name, r.WCRT)
		}
		if r.WCRT > max {
			max = r.WCRT
		}
	}
	return res, max, nil
}

// UtilizationBound reports the Liu & Layland rate-monotonic utilization
// bound n(2^{1/n}−1) for n tasks — a quick sufficient schedulability check.
func UtilizationBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// Sort orders tasks by descending priority (stable), the conventional
// presentation order for analysis tables.
func Sort(tasks []Task) {
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Priority > tasks[j].Priority })
}
