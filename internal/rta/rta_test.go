package rta

import (
	"math"
	"testing"

	"chainmon/internal/sim"
)

// The classic three-task example from the response-time analysis
// literature (Audsley et al.): C=(3,3,5), T=(7,12,20), priorities
// descending — WCRTs 3, 6, 20.
func TestAnalyzeClassicExample(t *testing.T) {
	tasks := []Task{
		{Name: "t1", WCET: 3, Period: 7, Priority: 3},
		{Name: "t2", WCET: 3, Period: 12, Priority: 2},
		{Name: "t3", WCET: 5, Period: 20, Priority: 1},
	}
	res, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.Duration{3, 6, 20}
	for i, r := range res {
		if !r.Schedulable {
			t.Errorf("%s not schedulable (WCRT %v)", r.Task.Name, r.WCRT)
		}
		if r.WCRT != want[i] {
			t.Errorf("%s WCRT = %v, want %v", r.Task.Name, r.WCRT, want[i])
		}
	}
}

func TestAnalyzeUnschedulable(t *testing.T) {
	tasks := []Task{
		{Name: "hog", WCET: 9, Period: 10, Priority: 2},
		{Name: "victim", WCET: 5, Period: 20, Priority: 1},
	}
	res, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Schedulable {
		t.Error("highest-priority task must be schedulable")
	}
	if res[1].Schedulable {
		t.Errorf("victim reported schedulable with WCRT %v (utilization 1.15)", res[1].WCRT)
	}
}

func TestAnalyzeBlockingTerm(t *testing.T) {
	tasks := []Task{
		{Name: "t", WCET: 2, Period: 10, Priority: 1, Blocking: 3},
	}
	res, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].WCRT != 5 {
		t.Errorf("WCRT = %v, want 5 (C+B)", res[0].WCRT)
	}
}

func TestAnalyzeEqualPrioritiesInterfere(t *testing.T) {
	tasks := []Task{
		{Name: "a", WCET: 2, Period: 10, Priority: 1},
		{Name: "b", WCET: 3, Period: 10, Priority: 1},
	}
	res, err := Analyze(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// Each includes one job of the other (FIFO among equals,
	// conservative).
	if res[0].WCRT != 5 || res[1].WCRT != 5 {
		t.Errorf("WCRTs = %v,%v, want 5,5", res[0].WCRT, res[1].WCRT)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	bad := [][]Task{
		{{Name: "x", WCET: 0, Period: 10, Priority: 1}},
		{{Name: "x", WCET: 1, Period: 0, Priority: 1}},
		{{Name: "x", WCET: 1, Period: 10, Deadline: 20, Priority: 1}},
	}
	for i, tasks := range bad {
		if _, err := Analyze(tasks); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Property: WCRT is monotone in WCET (sustainability).
func TestAnalyzeMonotoneInWCET(t *testing.T) {
	base := []Task{
		{Name: "hi", WCET: 2, Period: 10, Priority: 2},
		{Name: "lo", WCET: 3, Period: 30, Priority: 1},
	}
	prev := sim.Duration(0)
	for c := sim.Duration(1); c <= 6; c++ {
		tasks := append([]Task(nil), base...)
		tasks[0].WCET = c
		res, err := Analyze(tasks)
		if err != nil {
			t.Fatal(err)
		}
		if res[1].WCRT < prev {
			t.Fatalf("WCRT decreased from %v to %v as C grew", prev, res[1].WCRT)
		}
		prev = res[1].WCRT
	}
}

func TestMonitorHandlerSetDEx(t *testing.T) {
	set := MonitorHandlerSet{
		ScanWCET:   50 * sim.Microsecond,
		ScanPeriod: 10 * sim.Millisecond,
		Handlers: []Task{
			{Name: "objects", WCET: 200 * sim.Microsecond, Period: 100 * sim.Millisecond},
			{Name: "ground", WCET: 150 * sim.Microsecond, Period: 100 * sim.Millisecond},
		},
	}
	res, dex, err := set.DEx()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	// Each handler's WCRT ≥ own WCET + other's WCET + scan interference.
	if dex < 350*sim.Microsecond {
		t.Errorf("d_ex = %v, want ≥ 350µs (both handlers back to back)", dex)
	}
	if dex > 2*sim.Millisecond {
		t.Errorf("d_ex = %v implausibly large", dex)
	}
	// The bound must cover every handler's WCRT.
	for _, r := range res {
		if r.WCRT > dex {
			t.Errorf("handler %s WCRT %v exceeds reported d_ex %v", r.Task.Name, r.WCRT, dex)
		}
	}
}

func TestMonitorHandlerSetUnschedulable(t *testing.T) {
	set := MonitorHandlerSet{
		Handlers: []Task{
			{Name: "hog", WCET: 90 * sim.Millisecond, Period: 100 * sim.Millisecond},
			{Name: "other", WCET: 90 * sim.Millisecond, Period: 100 * sim.Millisecond},
		},
	}
	if _, _, err := set.DEx(); err == nil {
		t.Error("180% handler utilization must be unschedulable")
	}
}

func TestUtilizationBound(t *testing.T) {
	if math.Abs(UtilizationBound(1)-1.0) > 1e-9 {
		t.Errorf("U(1) = %f", UtilizationBound(1))
	}
	if math.Abs(UtilizationBound(2)-0.828) > 0.001 {
		t.Errorf("U(2) = %f", UtilizationBound(2))
	}
	if UtilizationBound(0) != 0 {
		t.Error("U(0) should be 0")
	}
	// Approaches ln 2.
	if math.Abs(UtilizationBound(1000)-math.Ln2) > 0.001 {
		t.Errorf("U(1000) = %f", UtilizationBound(1000))
	}
}

func TestSortByPriority(t *testing.T) {
	tasks := []Task{
		{Name: "lo", Priority: 1},
		{Name: "hi", Priority: 9},
		{Name: "mid", Priority: 5},
	}
	Sort(tasks)
	if tasks[0].Name != "hi" || tasks[2].Name != "lo" {
		t.Errorf("sorted = %v", tasks)
	}
}
