package budget

import (
	"math/rand"
	"testing"

	"chainmon/internal/weaklyhard"
)

// randomProblem builds a small random propagating instance.
func randomProblem(rng *rand.Rand) Problem {
	p := Problem{
		Be2e:       int64(200 + rng.Intn(200)),
		Constraint: weaklyhard.Constraint{M: rng.Intn(2) + 1, K: 3 + rng.Intn(3)},
	}
	ns := 2 + rng.Intn(2)
	n := 10 + rng.Intn(10)
	for i := 0; i < ns; i++ {
		lat := make([]int64, n)
		for j := range lat {
			lat[j] = int64(5 + rng.Intn(50))
		}
		p.Segments = append(p.Segments, SegmentInput{
			Name: "s", Latencies: lat, Propagation: rng.Intn(2),
		})
	}
	return p
}

// Property: satisfaction of Eqs. 5–7 is monotone in every deadline —
// raising any single deadline of a verified assignment (while budgets
// allow) never breaks verification. This is what makes the candidate-set
// search of the solvers sound.
func TestVerifyMonotoneInDeadlines(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		p := randomProblem(rng)
		a := SolveExact(p, 0)
		if !a.Feasible {
			continue
		}
		for i := range a.Deadlines {
			raised := append([]int64(nil), a.Deadlines...)
			raised[i] += int64(1 + rng.Intn(10))
			var sum int64
			for _, d := range raised {
				sum += d
			}
			if sum > p.Be2e {
				continue // Eq. 3 legitimately fails; not the property
			}
			if ok, why := p.Verify(raised); !ok {
				t.Fatalf("trial %d: raising deadline %d broke verification: %s", trial, i, why)
			}
			if ok, why := p.VerifyOR(raised); !ok {
				t.Fatalf("trial %d: raising deadline %d broke OR verification: %s", trial, i, why)
			}
		}
	}
}

// Property: the exact solver's optimum is monotone in the constraint —
// relaxing (m,k) to (m+1,k) never increases the minimum sum.
func TestExactMonotoneInM(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng)
		if p.Constraint.M+1 > p.Constraint.K {
			continue
		}
		a := SolveExact(p, 0)
		relaxed := p
		relaxed.Constraint.M++
		b := SolveExact(relaxed, 0)
		if a.Feasible && !b.Feasible {
			t.Fatalf("trial %d: relaxing m lost feasibility", trial)
		}
		if a.Feasible && b.Feasible && b.Sum > a.Sum {
			t.Fatalf("trial %d: relaxing m raised the optimum %d → %d", trial, a.Sum, b.Sum)
		}
	}
}

// Property: candidate-set reduction yields feasible (possibly suboptimal)
// results whenever the full search is feasible and the reduced search
// succeeds; its sum never beats the true optimum.
func TestCandidateReductionSound(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng)
		full := SolveExact(p, 0)
		reduced := SolveExact(p, 8)
		if reduced.Feasible {
			if ok, why := p.Verify(reduced.Deadlines); !ok {
				t.Fatalf("trial %d: reduced solution invalid: %s", trial, why)
			}
			if !full.Feasible {
				t.Fatalf("trial %d: reduced feasible but full search infeasible", trial)
			}
			if reduced.Sum < full.Sum {
				t.Fatalf("trial %d: reduced sum %d beats optimum %d", trial, reduced.Sum, full.Sum)
			}
		}
	}
}
