// Live-input frontend: build budgeting problems from streaming quantile
// snapshots (internal/livestats sketches or a scraped /health document)
// instead of recorded traces. The offline trace path stays a second
// frontend over the same solver core — both produce a Problem, so the
// adaptive control loop and `budgetsolve -from-health` provably compute
// the same answer on the same snapshot.
package budget

import (
	"fmt"
	"sort"

	"chainmon/internal/livestats"
	"chainmon/internal/weaklyhard"
)

// QuantilePoint is one (quantile, latency) point of a live distribution.
type QuantilePoint struct {
	Q  float64 // cumulative fraction in (0, 1]
	NS float64 // latency bound at that fraction, in nanoseconds
}

// LiveSegment is one segment's live distribution summary.
type LiveSegment struct {
	Name        string
	Propagation int
	// Count is how many latencies the live sketch observed. Zero marks an
	// unobserved segment, which the frontend skips — solving on a
	// zero-filled distribution would assign it a meaningless deadline.
	Count uint64
	// Points are the known quantile points, any order; Build sorts them.
	Points []QuantilePoint
}

// LiveProblem parameterizes a budgeting instance over live quantile
// snapshots. DEx/Be2e/Bseg/Constraint mirror Problem.
type LiveProblem struct {
	Segments   []LiveSegment
	DEx        int64
	Be2e       int64
	Bseg       int64
	Constraint weaklyhard.Constraint
	// TraceLen is the length of the pseudo-trace synthesized per segment
	// (0 selects DefaultLiveTraceLen). It sets the resolution at which the
	// quantile mass fractions are represented: with 200 activations, a p99
	// tail is two activations wide.
	TraceLen int
}

// DefaultLiveTraceLen is the default synthesized pseudo-trace length.
const DefaultLiveTraceLen = 200

// SnapshotPoints converts a /health quantile snapshot into the frontend's
// point form (p50, p95, p99, max).
func SnapshotPoints(qs livestats.QuantileSnapshot) []QuantilePoint {
	return []QuantilePoint{
		{Q: 0.50, NS: qs.P50NS},
		{Q: 0.95, NS: qs.P95NS},
		{Q: 0.99, NS: qs.P99NS},
		{Q: 1.00, NS: qs.MaxNS},
	}
}

// FromHealth extracts live segments from a /health document in the given
// chain order (the document's maps carry no order, but propagation makes
// order part of the problem). prop maps a segment name to its propagation
// factor p_l; nil means every miss propagates (p_l = 1), the conservative
// default for monitored chains.
func FromHealth(h livestats.Health, order []string, prop func(name string) int) ([]LiveSegment, error) {
	out := make([]LiveSegment, 0, len(order))
	for _, name := range order {
		sh, ok := h.Segments[name]
		if !ok {
			return nil, fmt.Errorf("budget: segment %q not in health snapshot", name)
		}
		p := 1
		if prop != nil {
			p = prop(name)
		}
		out = append(out, LiveSegment{
			Name:        name,
			Propagation: p,
			Count:       sh.Latency.Count,
			Points:      SnapshotPoints(sh.Latency),
		})
	}
	return out, nil
}

// Build synthesizes a trace-based Problem from the live distributions and
// returns it along with the names of skipped (unobserved) segments.
//
// Each observed segment gets a deterministic pseudo-trace of TraceLen
// sorted ascending latencies: activation j takes the latency bound of the
// smallest quantile point covering rank fraction (j+1)/n, i.e. every
// activation is rounded UP to the next known quantile bound. Two
// conservatisms follow. First, each synthesized latency is an upper bound
// on the distribution's value at its rank. Second, sorting ascending
// clusters all would-be misses adjacently at the tail of the trace — the
// adversarial arrangement for (m,k) windows of consecutive activations —
// so a deadline assignment feasible on the pseudo-trace is feasible on
// every arrival order of the same distribution. The solvers then run
// unchanged on the synthesized Problem.
func (lp LiveProblem) Build() (Problem, []string, error) {
	n := lp.TraceLen
	if n <= 0 {
		n = DefaultLiveTraceLen
	}
	var skipped []string
	segs := make([]SegmentInput, 0, len(lp.Segments))
	for _, s := range lp.Segments {
		if s.Count == 0 || len(s.Points) == 0 {
			skipped = append(skipped, s.Name)
			continue
		}
		pts := append([]QuantilePoint(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].Q < pts[j].Q })
		trace := make([]int64, n)
		for j := 0; j < n; j++ {
			f := float64(j+1) / float64(n)
			v := pts[len(pts)-1].NS
			for _, p := range pts {
				if f <= p.Q {
					v = p.NS
					break
				}
			}
			trace[j] = int64(v)
		}
		segs = append(segs, SegmentInput{Name: s.Name, Latencies: trace, Propagation: s.Propagation})
	}
	if len(segs) == 0 {
		return Problem{}, skipped, fmt.Errorf("budget: no observed segments in live input")
	}
	return Problem{
		Segments: segs, DEx: lp.DEx, Be2e: lp.Be2e, Bseg: lp.Bseg,
		Constraint: lp.Constraint,
	}, skipped, nil
}
