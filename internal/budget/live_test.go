package budget

import (
	"testing"

	"chainmon/internal/livestats"
	"chainmon/internal/weaklyhard"
)

func ms(n int64) float64 { return float64(n) * 1e6 }

// TestLiveBuildSynthesizesSortedCeiledTrace pins the pseudo-trace
// construction: ascending, every value rounded up to the covering quantile
// bound, with the exact mass split implied by the point fractions.
func TestLiveBuildSynthesizesSortedCeiledTrace(t *testing.T) {
	lp := LiveProblem{
		Segments: []LiveSegment{{
			Name: "s", Count: 1000,
			Points: []QuantilePoint{{Q: 1, NS: ms(40)}, {Q: 0.5, NS: ms(10)}, {Q: 0.95, NS: ms(20)}, {Q: 0.99, NS: ms(30)}},
		}},
		Be2e: int64(ms(100)), Constraint: weaklyhard.Constraint{M: 2, K: 10},
		TraceLen: 100,
	}
	p, skipped, err := lp.Build()
	if err != nil || len(skipped) != 0 {
		t.Fatalf("Build: err=%v skipped=%v", err, skipped)
	}
	trace := p.Segments[0].Latencies
	if len(trace) != 100 {
		t.Fatalf("trace length %d, want 100", len(trace))
	}
	counts := map[int64]int{}
	prev := int64(0)
	for _, v := range trace {
		if v < prev {
			t.Fatalf("trace not ascending: %d after %d", v, prev)
		}
		prev = v
		counts[v]++
	}
	// 50% at the p50 bound, 45% at p95, 4% at p99, 1% at max.
	want := map[int64]int{int64(ms(10)): 50, int64(ms(20)): 45, int64(ms(30)): 4, int64(ms(40)): 1}
	for v, n := range want {
		if counts[v] != n {
			t.Fatalf("value %d appears %d times, want %d (counts %v)", v, counts[v], n, want)
		}
	}
}

// TestLiveBuildSkipsUnobservedSegments is the satellite fix: zero-count
// segments are excluded from the problem, not solved on zeros.
func TestLiveBuildSkipsUnobservedSegments(t *testing.T) {
	lp := LiveProblem{
		Segments: []LiveSegment{
			{Name: "dark", Count: 0, Points: []QuantilePoint{{Q: 1, NS: 0}}},
			{Name: "lit", Count: 5, Points: []QuantilePoint{{Q: 1, NS: ms(5)}}},
		},
		Be2e: int64(ms(100)), Constraint: weaklyhard.Constraint{M: 0, K: 1},
	}
	p, skipped, err := lp.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(skipped) != 1 || skipped[0] != "dark" {
		t.Fatalf("skipped %v, want [dark]", skipped)
	}
	if len(p.Segments) != 1 || p.Segments[0].Name != "lit" {
		t.Fatalf("problem segments %+v, want only lit", p.Segments)
	}
	all := LiveProblem{Segments: lp.Segments[:1], Be2e: 1, Constraint: weaklyhard.Constraint{M: 0, K: 1}}
	if _, _, err := all.Build(); err == nil {
		t.Fatal("Build with only unobserved segments must error, not solve on zeros")
	}
}

// TestLiveFromHealthRoundTrip pins that a /health document feeds the
// frontend exactly: same counts and quantile points, chain order preserved,
// and a missing segment is a hard error (a typo must not become an
// unconstrained chain).
func TestLiveFromHealthRoundTrip(t *testing.T) {
	h := livestats.Health{Segments: map[string]livestats.ScopeHealth{
		"a": {Latency: livestats.QuantileSnapshot{Count: 7, P50NS: ms(1), P95NS: ms(2), P99NS: ms(3), MaxNS: ms(4)}},
		"b": {Latency: livestats.QuantileSnapshot{Count: 0}},
	}}
	segs, err := FromHealth(h, []string{"b", "a"}, func(string) int { return 0 })
	if err != nil {
		t.Fatalf("FromHealth: %v", err)
	}
	if len(segs) != 2 || segs[0].Name != "b" || segs[1].Name != "a" {
		t.Fatalf("segments %+v, want order [b a]", segs)
	}
	if segs[1].Count != 7 || segs[1].Propagation != 0 {
		t.Fatalf("segment a carried %+v", segs[1])
	}
	if got := segs[1].Points[3]; got != (QuantilePoint{Q: 1, NS: ms(4)}) {
		t.Fatalf("max point %+v", got)
	}
	if _, err := FromHealth(h, []string{"nope"}, nil); err == nil {
		t.Fatal("missing segment must be an error")
	}
}

// TestLiveSolveIsDeterministic pins the frontend→solver pipeline the
// control loop and budgetsolve share: the same snapshot always yields the
// same assignment.
func TestLiveSolveIsDeterministic(t *testing.T) {
	mk := func() LiveProblem {
		return LiveProblem{
			Segments: []LiveSegment{
				{Name: "x", Count: 100, Propagation: 1,
					Points: []QuantilePoint{{Q: 0.5, NS: ms(3)}, {Q: 0.95, NS: ms(6)}, {Q: 0.99, NS: ms(9)}, {Q: 1, NS: ms(12)}}},
				{Name: "y", Count: 100, Propagation: 1,
					Points: []QuantilePoint{{Q: 0.5, NS: ms(2)}, {Q: 0.95, NS: ms(4)}, {Q: 0.99, NS: ms(8)}, {Q: 1, NS: ms(16)}}},
			},
			DEx: int64(ms(1)), Be2e: int64(ms(40)), Bseg: int64(ms(25)),
			Constraint: weaklyhard.Constraint{M: 2, K: 10},
		}
	}
	p1, _, err1 := mk().Build()
	p2, _, err2 := mk().Build()
	if err1 != nil || err2 != nil {
		t.Fatalf("Build: %v / %v", err1, err2)
	}
	ok1, a1 := Schedulable(p1)
	ok2, a2 := Schedulable(p2)
	if !ok1 || !ok2 {
		t.Fatalf("schedulable: %v (%s) / %v (%s)", ok1, a1.Reason, ok2, a2.Reason)
	}
	if a1.String() != a2.String() {
		t.Fatalf("assignments differ: %s vs %s", a1, a2)
	}
	if verified, why := p1.Verify(a1.Deadlines); !verified {
		t.Fatalf("assignment fails Verify: %s", why)
	}
}
