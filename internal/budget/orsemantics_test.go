package budget

import (
	"math/rand"
	"testing"

	"chainmon/internal/weaklyhard"
)

func TestVerifyORAcceptsWhatEq7Rejects(t *testing.T) {
	// Both segments miss the SAME activations: under OR semantics that is
	// one violation per activation; Eq. 7 counts two.
	p := Problem{
		Segments: []SegmentInput{
			{Name: "s0", Latencies: []int64{50, 10, 10, 10, 10, 10}, Propagation: 1},
			{Name: "s1", Latencies: []int64{50, 10, 10, 10, 10, 10}, Propagation: 1},
		},
		Be2e:       1000,
		Constraint: weaklyhard.Constraint{M: 1, K: 4},
	}
	deadlines := []int64{10, 10}
	if ok, _ := p.Verify(deadlines); ok {
		t.Fatal("Eq. 7 should reject the double-counted miss")
	}
	if ok, why := p.VerifyOR(deadlines); !ok {
		t.Fatalf("OR semantics should accept a single per-activation violation: %s", why)
	}
}

func TestVerifyORStillRejectsRealViolations(t *testing.T) {
	p := Problem{
		Segments: []SegmentInput{
			{Name: "s0", Latencies: []int64{50, 50, 10, 10}, Propagation: 1},
		},
		Be2e:       1000,
		Constraint: weaklyhard.Constraint{M: 1, K: 4},
	}
	if ok, _ := p.VerifyOR([]int64{10}); ok {
		t.Fatal("two violations in one window must fail (1,4)")
	}
	if ok, _ := p.VerifyOR([]int64{50}); !ok {
		t.Fatal("deadline covering all latencies must pass")
	}
}

func TestVerifyOREqs3And4(t *testing.T) {
	p := Problem{
		Segments: []SegmentInput{
			{Name: "s0", Latencies: []int64{10}, Propagation: 1},
			{Name: "s1", Latencies: []int64{10}, Propagation: 1},
		},
		Be2e:       15,
		Bseg:       12,
		Constraint: weaklyhard.Constraint{M: 0, K: 1},
	}
	if ok, _ := p.VerifyOR([]int64{10, 10}); ok {
		t.Error("sum 20 > B_e2e 15 must fail")
	}
	p.Be2e = 30
	if ok, _ := p.VerifyOR([]int64{13, 10}); ok {
		t.Error("deadline above B_seg must fail")
	}
	if ok, _ := p.VerifyOR([]int64{10}); ok {
		t.Error("wrong arity must fail")
	}
}

func TestNonPropagatingInteriorSegmentIgnoredByOR(t *testing.T) {
	// The middle segment recovers perfectly (p=0): its misses do not
	// violate chain executions; only the final segment's do.
	p := Problem{
		Segments: []SegmentInput{
			{Name: "mid", Latencies: []int64{50, 50, 50, 50}, Propagation: 0},
			{Name: "last", Latencies: []int64{10, 10, 10, 10}, Propagation: 0},
		},
		Be2e:       1000,
		Constraint: weaklyhard.Constraint{M: 0, K: 2},
	}
	// mid misses everything at d=10 but recovers; last never misses.
	if ok, why := p.VerifyOR([]int64{10, 10}); !ok {
		t.Fatalf("recovered interior misses must not violate: %s", why)
	}
	// The final segment's misses always count, even with p=0.
	p2 := Problem{
		Segments: []SegmentInput{
			{Name: "last", Latencies: []int64{50, 50}, Propagation: 0},
		},
		Be2e:       1000,
		Constraint: weaklyhard.Constraint{M: 0, K: 2},
	}
	if ok, _ := p2.VerifyOR([]int64{10}); ok {
		t.Fatal("final-segment misses must count even with p=0")
	}
}

func TestSolveExactORNeverWorseThanEq7(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		p := Problem{
			Be2e:       int64(120 + rng.Intn(120)),
			Constraint: weaklyhard.Constraint{M: 1, K: 3},
		}
		for i := 0; i < 2+rng.Intn(2); i++ {
			lat := make([]int64, 10)
			for j := range lat {
				lat[j] = int64(5 + rng.Intn(40))
			}
			p.Segments = append(p.Segments, SegmentInput{Name: "s", Latencies: lat, Propagation: 1})
		}
		eq7 := SolveExact(p, 0)
		or := SolveExactOR(p, 0)
		if eq7.Feasible {
			// Everything Eq. 7 accepts, OR accepts too (Eq. 7 weights
			// dominate the indicator), so OR's optimum is ≤ Eq. 7's.
			if !or.Feasible {
				t.Fatalf("trial %d: Eq.7 feasible (%v) but OR infeasible", trial, eq7)
			}
			if or.Sum > eq7.Sum {
				t.Fatalf("trial %d: OR optimum %d worse than Eq.7 %d", trial, or.Sum, eq7.Sum)
			}
		}
		if or.Feasible {
			if ok, why := p.VerifyOR(or.Deadlines); !ok {
				t.Fatalf("trial %d: OR solution fails VerifyOR: %s", trial, why)
			}
		}
	}
}

func TestSolveExactORAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		p := Problem{
			Be2e:       int64(100 + rng.Intn(100)),
			Constraint: weaklyhard.Constraint{M: rng.Intn(2), K: 2 + rng.Intn(3)},
		}
		for i := 0; i < 2; i++ {
			lat := make([]int64, 8)
			for j := range lat {
				lat[j] = int64(5 + rng.Intn(40))
			}
			p.Segments = append(p.Segments, SegmentInput{
				Name: "s", Latencies: lat, Propagation: rng.Intn(2),
			})
		}
		got := SolveExactOR(p, 0)
		want := bruteForceOR(p)
		if got.Feasible != want.Feasible {
			t.Fatalf("trial %d: feasible=%v, brute=%v", trial, got.Feasible, want.Feasible)
		}
		if got.Feasible && got.Sum != want.Sum {
			t.Fatalf("trial %d: sum=%d, brute=%d", trial, got.Sum, want.Sum)
		}
	}
}

func bruteForceOR(p Problem) Assignment {
	ns := len(p.Segments)
	cands := make([][]int64, ns)
	for i := range cands {
		cands[i] = p.candidateSet(i, 0)
	}
	best := Assignment{}
	bestSum := int64(1 << 62)
	idx := make([]int, ns)
	var rec func(i int)
	rec = func(i int) {
		if i == ns {
			ds := make([]int64, ns)
			var sum int64
			for j := range ds {
				ds[j] = cands[j][idx[j]]
				sum += ds[j]
			}
			if ok, _ := p.VerifyOR(ds); ok && sum < bestSum {
				best = Assignment{Feasible: true, Deadlines: ds, Sum: sum}
				bestSum = sum
			}
			return
		}
		for j := range cands[i] {
			idx[i] = j
			rec(i + 1)
		}
	}
	rec(0)
	return best
}
