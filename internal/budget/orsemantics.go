package budget

import (
	"fmt"
	"math"

	"chainmon/internal/weaklyhard"
)

// This file provides the OR-semantics variant of the window constraint.
//
// The paper defines a violation of the n-th chain execution as "an
// unrecoverable deadline miss of ANY of its corresponding n-th segment
// activations" — a disjunction — while its Eq. 7 accumulates propagated
// misses additively, counting an execution twice when two segments miss it.
// The additive form is conservative (it can reject assignments whose chain
// executions actually satisfy the (m,k) constraint); this variant
// implements the disjunctive reading exactly: activation n is violated when
// any propagating segment (or the final segment) misses it, and the
// violation indicator sequence must satisfy the chain's (m,k) constraint.

// VerifyOR checks an assignment under OR semantics: Eqs. 3 and 4 as in
// Verify, and the (m,k) constraint on the per-execution violation
// indicator.
func (p *Problem) VerifyOR(deadlines []int64) (bool, string) {
	if err := p.validate(); err != nil {
		return false, err.Error()
	}
	if len(deadlines) != len(p.Segments) {
		return false, fmt.Sprintf("assignment has %d deadlines, want %d", len(deadlines), len(p.Segments))
	}
	var sum int64
	for i, d := range deadlines {
		sum += d
		if p.Bseg > 0 && d > p.Bseg {
			return false, fmt.Sprintf("segment %d deadline %d exceeds B_seg %d (Eq. 4)", i, d, p.Bseg)
		}
	}
	if sum > p.Be2e {
		return false, fmt.Sprintf("deadline sum %d exceeds B_e2e %d (Eq. 3)", sum, p.Be2e)
	}
	violated := p.violationIndicator(deadlines)
	if maxw := weaklyhard.MaxMissesInAnyWindow(violated, p.Constraint.K); maxw > p.Constraint.M {
		return false, fmt.Sprintf("%d chain violations in a %d-window, limit %d (OR semantics)",
			maxw, p.Constraint.K, p.Constraint.M)
	}
	return true, ""
}

// violationIndicator marks each activation that any propagating segment (or
// the final segment, whose miss always means no timely chain output) missed.
func (p *Problem) violationIndicator(deadlines []int64) []bool {
	n := len(p.Segments[0].Latencies)
	violated := make([]bool, n)
	for i := range p.Segments {
		counts := p.Segments[i].Propagation == 1 || i == len(p.Segments)-1
		if !counts {
			continue
		}
		ext := p.Extended(i)
		for j, l := range ext {
			if l > deadlines[i] {
				violated[j] = true
			}
		}
	}
	return violated
}

// SolveExactOR finds the minimum-sum assignment under OR semantics by
// branch-and-bound, mirroring SolveExact. Because a violated execution
// cannot be "re-violated", OR semantics admits assignments the additive
// Eq. 7 rejects — the solver's optimum is never worse.
func SolveExactOR(p Problem, maxCandidates int) Assignment {
	if err := p.validate(); err != nil {
		return Assignment{Reason: err.Error()}
	}
	ns := len(p.Segments)
	n := len(p.Segments[0].Latencies)

	cands := make([][]int64, ns)
	exts := make([][]int64, ns)
	for i := 0; i < ns; i++ {
		cands[i] = p.candidateSet(i, maxCandidates)
		exts[i] = p.Extended(i)
	}
	suffixMin := make([]int64, ns+1)
	for i := ns - 1; i >= 0; i-- {
		suffixMin[i] = suffixMin[i+1] + cands[i][0]
	}

	best := Assignment{Reason: "no assignment satisfies the OR-window constraint"}
	bestSum := int64(math.MaxInt64)
	cur := make([]int64, ns)
	carried := make([][]bool, ns+1)
	carried[0] = make([]bool, n)
	nodes := 0

	counts := func(i int) bool { return p.Segments[i].Propagation == 1 || i == ns-1 }

	var search func(i int, sum int64)
	search = func(i int, sum int64) {
		nodes++
		if sum+suffixMin[i] > p.Be2e || sum+suffixMin[i] >= bestSum {
			return
		}
		if i == ns {
			best = Assignment{Feasible: true, Deadlines: append([]int64(nil), cur...), Sum: sum}
			bestSum = sum
			return
		}
		for _, d := range cands[i] {
			indicator := make([]bool, n)
			miss := false
			for j, l := range exts[i] {
				own := l > d
				if own {
					miss = true
				}
				indicator[j] = carried[i][j] || (own && counts(i))
			}
			if weaklyhard.MaxMissesInAnyWindow(indicator, p.Constraint.K) > p.Constraint.M {
				continue
			}
			cur[i] = d
			carried[i+1] = indicator
			search(i+1, sum+d)
			if !miss {
				break
			}
			if !counts(i) {
				// A non-propagating interior segment never affects the
				// indicator; only its cheapest candidate can be optimal.
				break
			}
		}
	}
	search(0, 0)
	best.Nodes = nodes
	return best
}
