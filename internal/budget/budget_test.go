package budget

import (
	"math/rand"
	"testing"

	"chainmon/internal/weaklyhard"
)

func simpleProblem() Problem {
	return Problem{
		Segments: []SegmentInput{
			{Name: "s0", Latencies: []int64{10, 12, 30, 11, 10, 29, 12, 11}, Propagation: 0},
			{Name: "s1", Latencies: []int64{20, 22, 21, 55, 20, 21, 54, 22}, Propagation: 0},
		},
		DEx:        2,
		Be2e:       80,
		Bseg:       60,
		Constraint: weaklyhard.Constraint{M: 1, K: 4},
	}
}

func TestValidateRejectsBadProblems(t *testing.T) {
	cases := []Problem{
		{},
		{Segments: []SegmentInput{{Name: "a"}}, Constraint: weaklyhard.Constraint{M: 0, K: 1}},
		{Segments: []SegmentInput{
			{Name: "a", Latencies: []int64{1, 2}},
			{Name: "b", Latencies: []int64{1}},
		}, Constraint: weaklyhard.Constraint{M: 0, K: 1}},
		{Segments: []SegmentInput{
			{Name: "a", Latencies: []int64{1}, Propagation: 2},
		}, Constraint: weaklyhard.Constraint{M: 0, K: 1}},
		{Segments: []SegmentInput{
			{Name: "a", Latencies: []int64{1}},
		}, Constraint: weaklyhard.Constraint{M: 3, K: 2}},
	}
	for i, p := range cases {
		if a := SolveIndependent(p); a.Feasible {
			t.Errorf("case %d: expected infeasible/invalid", i)
		}
	}
}

func TestExtendedAddsDEx(t *testing.T) {
	p := simpleProblem()
	ext := p.Extended(0)
	if ext[0] != 12 || ext[2] != 32 {
		t.Errorf("extended = %v", ext)
	}
}

func TestSolveIndependentMinimal(t *testing.T) {
	p := simpleProblem()
	p.Be2e = 90
	a := SolveIndependent(p)
	if !a.Feasible {
		t.Fatalf("infeasible: %s", a.Reason)
	}
	// Segment 0 extended: 12,14,32,13,12,31,14,13 — misses at positions 2
	// (32) and 5 (31). With d=14 the window [2..5] holds both misses,
	// violating (1,4); d=31 leaves only the miss at position 2 → minimal.
	if a.Deadlines[0] != 31 {
		t.Errorf("d0 = %d, want 31", a.Deadlines[0])
	}
	// Segment 1 extended: 22,24,23,57,22,23,56,24 — misses at positions 3
	// (57) and 6 (56); the window [3..6] holds both → d=56 is minimal.
	if a.Deadlines[1] != 56 {
		t.Errorf("d1 = %d, want 56", a.Deadlines[1])
	}
	if a.Sum != 87 {
		t.Errorf("sum = %d", a.Sum)
	}
}

func TestSolveIndependentRespectsBe2e(t *testing.T) {
	p := simpleProblem()
	// With minimum sum 87 (see above) and Be2e 80, independent solving
	// must report infeasibility.
	a := SolveIndependent(p)
	if a.Feasible {
		t.Fatalf("expected infeasible at Be2e=80, got %v", a)
	}
	p.Be2e = 90
	a = SolveIndependent(p)
	if !a.Feasible || a.Sum != 87 {
		t.Fatalf("want feasible sum 87, got %v", a)
	}
}

func TestSolveIndependentRespectsBseg(t *testing.T) {
	p := simpleProblem()
	p.Be2e = 1000
	p.Bseg = 40 // segment 1 needs 56
	if a := SolveIndependent(p); a.Feasible {
		t.Fatalf("expected Bseg infeasibility, got %v", a)
	}
}

func TestVerifyAgreesWithSolvers(t *testing.T) {
	p := simpleProblem()
	p.Be2e = 90
	a := SolveIndependent(p)
	if !a.Feasible {
		t.Fatal(a.Reason)
	}
	if ok, why := p.Verify(a.Deadlines); !ok {
		t.Errorf("Verify rejected the independent solution: %s", why)
	}
	// Lowering a deadline below the minimum must fail verification.
	bad := append([]int64(nil), a.Deadlines...)
	bad[0] = 13
	if ok, _ := p.Verify(bad); ok {
		t.Error("Verify accepted a violating assignment")
	}
}

func TestVerifyEq3Eq4(t *testing.T) {
	p := simpleProblem()
	p.Be2e = 90
	if ok, why := p.Verify([]int64{100, 10}); ok || why == "" {
		t.Error("Bseg violation not caught")
	}
	if ok, _ := p.Verify([]int64{50, 50}); ok {
		t.Error("Be2e violation not caught")
	}
	if ok, _ := p.Verify([]int64{31}); ok {
		t.Error("wrong arity not caught")
	}
}

func TestPropagationTightensProblem(t *testing.T) {
	// Two segments missing at complementary activations: independently
	// each satisfies (1,4), but with propagation the second segment sees
	// both misses in one window.
	p := Problem{
		Segments: []SegmentInput{
			{Name: "s0", Latencies: []int64{50, 10, 10, 10, 50, 10, 10, 10}, Propagation: 1},
			{Name: "s1", Latencies: []int64{10, 10, 50, 10, 10, 10, 50, 10}, Propagation: 1},
		},
		Be2e:       1000,
		Constraint: weaklyhard.Constraint{M: 1, K: 4},
	}
	// Independent minima: d0=10 (misses at 0,4 — windows of 4: [0..3] has
	// 1, [1..4] has 1 → ok), d1=10 (misses at 2,6 → ok).
	ind := SolveIndependent(p)
	if !ind.Feasible || ind.Deadlines[0] != 10 || ind.Deadlines[1] != 10 {
		t.Fatalf("independent = %v", ind)
	}
	// With propagation, segment 1's windows see misses at 0,2,4,6 → any
	// window of 4 contains 2 > 1 → the combined assignment is invalid.
	if ok, _ := p.Verify(ind.Deadlines); ok {
		t.Fatal("Verify must reject the independent solution under propagation")
	}
	// Exact and greedy must find feasible assignments (e.g. d0=50 removes
	// segment 0's misses entirely).
	ex := SolveExact(p, 0)
	if !ex.Feasible {
		t.Fatalf("exact infeasible: %s", ex.Reason)
	}
	if ok, why := p.Verify(ex.Deadlines); !ok {
		t.Fatalf("exact solution fails verification: %s", why)
	}
	gr := SolveGreedy(p)
	if !gr.Feasible {
		t.Fatalf("greedy infeasible: %s", gr.Reason)
	}
	if ok, why := p.Verify(gr.Deadlines); !ok {
		t.Fatalf("greedy solution fails verification: %s", why)
	}
	if gr.Sum < ex.Sum {
		t.Errorf("greedy sum %d below exact optimum %d — exact is not optimal", gr.Sum, ex.Sum)
	}
}

func TestExactOptimalOnKnownInstance(t *testing.T) {
	p := Problem{
		Segments: []SegmentInput{
			{Name: "s0", Latencies: []int64{50, 10, 10, 10, 50, 10, 10, 10}, Propagation: 1},
			{Name: "s1", Latencies: []int64{10, 10, 50, 10, 10, 10, 50, 10}, Propagation: 1},
		},
		Be2e:       1000,
		Constraint: weaklyhard.Constraint{M: 1, K: 4},
	}
	a := SolveExact(p, 0)
	if !a.Feasible {
		t.Fatal(a.Reason)
	}
	// Optimum: one segment takes 50 (no misses), the other stays at 10
	// (its own misses then fit (1,4)) → sum 60.
	if a.Sum != 60 {
		t.Errorf("exact sum = %d (%v), want 60", a.Sum, a.Deadlines)
	}
}

func TestExactPrunesWithBe2e(t *testing.T) {
	p := simpleProblem()
	a := SolveExact(p, 0)
	if a.Feasible {
		t.Fatalf("expected infeasible at Be2e=80 (minimum sum 87), got %v", a)
	}
	if a.Reason == "" {
		t.Error("missing infeasibility reason")
	}
	p.Be2e = 90
	a = SolveExact(p, 0)
	if !a.Feasible || a.Sum != 87 {
		t.Fatalf("want sum 87, got %v", a)
	}
}

func TestExactAgainstBruteForce(t *testing.T) {
	// Randomized cross-check of SolveExact against exhaustive enumeration
	// on tiny instances.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		ns := 2 + rng.Intn(2)
		n := 6 + rng.Intn(4)
		p := Problem{
			Be2e:       int64(100 + rng.Intn(100)),
			Constraint: weaklyhard.Constraint{M: rng.Intn(2), K: 2 + rng.Intn(3)},
		}
		for i := 0; i < ns; i++ {
			lat := make([]int64, n)
			for j := range lat {
				lat[j] = int64(5 + rng.Intn(40))
			}
			p.Segments = append(p.Segments, SegmentInput{
				Name: "s", Latencies: lat, Propagation: rng.Intn(2),
			})
		}
		got := SolveExact(p, 0)
		want := bruteForce(p)
		if got.Feasible != want.Feasible {
			t.Fatalf("trial %d: exact feasible=%v, brute=%v (%+v)", trial, got.Feasible, want.Feasible, p)
		}
		if got.Feasible && got.Sum != want.Sum {
			t.Fatalf("trial %d: exact sum=%d, brute=%d", trial, got.Sum, want.Sum)
		}
	}
}

// bruteForce enumerates all candidate combinations.
func bruteForce(p Problem) Assignment {
	ns := len(p.Segments)
	cands := make([][]int64, ns)
	for i := range cands {
		cands[i] = p.candidateSet(i, 0)
	}
	best := Assignment{}
	bestSum := int64(1 << 62)
	idx := make([]int, ns)
	var rec func(i int)
	rec = func(i int) {
		if i == ns {
			ds := make([]int64, ns)
			var sum int64
			for j := range ds {
				ds[j] = cands[j][idx[j]]
				sum += ds[j]
			}
			if ok, _ := p.Verify(ds); ok && sum < bestSum {
				best = Assignment{Feasible: true, Deadlines: ds, Sum: sum}
				bestSum = sum
			}
			return
		}
		for j := range cands[i] {
			idx[i] = j
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestGreedyFeasibleWheneverExactIs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	agree := 0
	for trial := 0; trial < 30; trial++ {
		p := Problem{
			Be2e:       int64(150 + rng.Intn(100)),
			Constraint: weaklyhard.Constraint{M: 1, K: 3},
		}
		for i := 0; i < 3; i++ {
			lat := make([]int64, 12)
			for j := range lat {
				lat[j] = int64(5 + rng.Intn(40))
			}
			p.Segments = append(p.Segments, SegmentInput{Name: "s", Latencies: lat, Propagation: 1})
		}
		ex := SolveExact(p, 0)
		gr := SolveGreedy(p)
		if gr.Feasible {
			if ok, why := p.Verify(gr.Deadlines); !ok {
				t.Fatalf("greedy produced invalid assignment: %s", why)
			}
			if !ex.Feasible {
				t.Fatalf("greedy feasible but exact infeasible — exact has a bug")
			}
		}
		if ex.Feasible == gr.Feasible {
			agree++
		}
	}
	if agree < 25 {
		t.Errorf("greedy disagreed with exact on %d/30 instances", 30-agree)
	}
}

func TestSchedulableDispatch(t *testing.T) {
	p := simpleProblem()
	p.Be2e = 90
	ok, a := Schedulable(p)
	if !ok || a.Sum != 87 {
		t.Fatalf("schedulable = %v %v", ok, a)
	}
	p.Segments[0].Propagation = 1
	ok, a = Schedulable(p)
	if !ok {
		t.Fatalf("propagating variant should still be schedulable: %s", a.Reason)
	}
	if valid, why := p.Verify(a.Deadlines); !valid {
		t.Fatalf("schedulable returned invalid assignment: %s", why)
	}
}

func TestCandidateSetReduction(t *testing.T) {
	p := Problem{
		Segments:   []SegmentInput{{Name: "s", Latencies: seq(1, 1000)}},
		Be2e:       1 << 40,
		Constraint: weaklyhard.Constraint{M: 0, K: 1},
	}
	full := p.candidateSet(0, 0)
	if len(full) != 1000 {
		t.Fatalf("full candidates = %d", len(full))
	}
	red := p.candidateSet(0, 32)
	if len(red) > 32 || len(red) < 2 {
		t.Fatalf("reduced candidates = %d", len(red))
	}
	if red[0] != full[0] || red[len(red)-1] != full[len(full)-1] {
		t.Error("reduction must keep extremes")
	}
}

func TestCandidateSetBsegClipping(t *testing.T) {
	p := Problem{
		Segments:   []SegmentInput{{Name: "s", Latencies: []int64{10, 20, 90, 95}}},
		Be2e:       1000,
		Bseg:       50,
		Constraint: weaklyhard.Constraint{M: 2, K: 4},
	}
	c := p.candidateSet(0, 0)
	for _, v := range c {
		if v > 50 {
			t.Fatalf("candidate %d exceeds Bseg", v)
		}
	}
	// Bseg itself is added so that "accept all misses above" is available.
	if c[len(c)-1] != 50 {
		t.Errorf("candidates = %v, want trailing 50", c)
	}
}

func TestAssignmentString(t *testing.T) {
	if (Assignment{Reason: "x"}).String() != "infeasible: x" {
		t.Error("infeasible string wrong")
	}
	s := (Assignment{Feasible: true, Deadlines: []int64{1, 2}, Sum: 3}).String()
	if s != "sum=3 [1 2]" {
		t.Errorf("string = %q", s)
	}
}

func seq(lo, hi int64) []int64 {
	out := make([]int64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}
