// Package budget implements the paper's trace-based budgeting step
// (Section III-C): determining minimum segment deadlines d^{s_i} from
// recorded traces such that the end-to-end latency budget (Eq. 3), the
// per-segment throughput cap (Eq. 4) and the weakly-hard (m,k) window
// constraint with miss propagation (Eqs. 5–7) are all satisfied.
//
// Recorded latencies are first extended by the exception-handling WCRT:
// l' = l + d_ex (the extended trace L'^{s_i}); the solvers then search over
// the distinct extended latency values, since the miss sequence of a segment
// only changes at those points.
//
// Three solvers are provided:
//
//   - SolveIndependent: the p_l = 0 decomposition the paper describes — the
//     CSP splits into single-variable problems per segment.
//   - SolveGreedy: a heuristic for propagation (p_l = 1), per the paper's
//     pointer to heuristic methods: start from the independent minimum and
//     raise the deadline that most reduces the combined window violation.
//   - SolveExact: branch-and-bound over candidate deadlines, optionally on
//     quantile-reduced candidate sets; the ILP-equivalent exact reference
//     for small instances.
//
// Windows follow the standard weakly-hard definition of k consecutive
// executions (see internal/weaklyhard for the note on Eq. 6's indexing).
package budget

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"chainmon/internal/weaklyhard"
)

// SegmentInput is one segment's recorded trace and propagation factor.
type SegmentInput struct {
	Name string
	// Latencies are the recorded latencies l_n in nanoseconds, aligned by
	// activation across segments of the problem.
	Latencies []int64
	// Propagation is p_l: 1 if unrecovered misses propagate to subsequent
	// segments, 0 for perfect recovery.
	Propagation int
}

// Problem is one budgeting instance for an event chain.
type Problem struct {
	Segments []SegmentInput
	// DEx is the worst-case exception handling latency d_ex added to every
	// recorded latency (extended trace).
	DEx int64
	// Be2e is the end-to-end budget B^c_e2e (Eq. 3).
	Be2e int64
	// Bseg is the per-segment throughput cap B^c_seg (Eq. 4). Zero means
	// unconstrained.
	Bseg int64
	// Constraint is the chain's weakly-hard (m,k) constraint.
	Constraint weaklyhard.Constraint
}

// Assignment is a solver result.
type Assignment struct {
	Feasible bool
	// Deadlines d^{s_i}, one per segment, in input order. Only valid when
	// Feasible.
	Deadlines []int64
	// Sum is the total of the deadlines (compared against Be2e).
	Sum int64
	// Reason describes why the problem is infeasible, when it is.
	Reason string
	// Nodes counts search nodes (exact solver) for reporting.
	Nodes int
}

func (a Assignment) String() string {
	if !a.Feasible {
		return "infeasible: " + a.Reason
	}
	parts := make([]string, len(a.Deadlines))
	for i, d := range a.Deadlines {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return fmt.Sprintf("sum=%d [%s]", a.Sum, strings.Join(parts, " "))
}

// validate checks problem well-formedness and aligns trace lengths.
func (p *Problem) validate() error {
	if len(p.Segments) == 0 {
		return fmt.Errorf("budget: no segments")
	}
	if !p.Constraint.Valid() {
		return fmt.Errorf("budget: invalid constraint %v", p.Constraint)
	}
	n := len(p.Segments[0].Latencies)
	for _, s := range p.Segments {
		if len(s.Latencies) == 0 {
			return fmt.Errorf("budget: segment %q has an empty trace", s.Name)
		}
		if len(s.Latencies) != n {
			return fmt.Errorf("budget: segment %q trace length %d, want %d (aligned activations)",
				s.Name, len(s.Latencies), n)
		}
		if s.Propagation != 0 && s.Propagation != 1 {
			return fmt.Errorf("budget: segment %q propagation %d, want 0 or 1", s.Name, s.Propagation)
		}
	}
	return nil
}

// Extended returns segment i's extended latencies l' = l + d_ex.
func (p *Problem) Extended(i int) []int64 {
	out := make([]int64, len(p.Segments[i].Latencies))
	for n, l := range p.Segments[i].Latencies {
		out[n] = l + p.DEx
	}
	return out
}

// Verify checks a candidate deadline assignment against Eqs. 3–7 and
// returns a diagnostic for the first violated constraint.
func (p *Problem) Verify(deadlines []int64) (bool, string) {
	if err := p.validate(); err != nil {
		return false, err.Error()
	}
	if len(deadlines) != len(p.Segments) {
		return false, fmt.Sprintf("assignment has %d deadlines, want %d", len(deadlines), len(p.Segments))
	}
	var sum int64
	for i, d := range deadlines {
		sum += d
		if p.Bseg > 0 && d > p.Bseg {
			return false, fmt.Sprintf("segment %d deadline %d exceeds B_seg %d (Eq. 4)", i, d, p.Bseg)
		}
	}
	if sum > p.Be2e {
		return false, fmt.Sprintf("deadline sum %d exceeds B_e2e %d (Eq. 3)", sum, p.Be2e)
	}
	// Eqs. 5–7: for every segment, the window sum of its own misses plus
	// the propagated misses of preceding segments must stay within m.
	n := len(p.Segments[0].Latencies)
	carried := make([]int, n) // Σ_{l<i} p_l·m_l(n) contribution per activation
	for i := range p.Segments {
		ext := p.Extended(i)
		weights := make([]int, n)
		own := make([]int, n)
		for j, l := range ext {
			if l > deadlines[i] {
				own[j] = 1
			}
			weights[j] = own[j] + carried[j]
		}
		if maxw := weaklyhard.MaxWindowSum(weights, p.Constraint.K); maxw > p.Constraint.M {
			return false, fmt.Sprintf("segment %d: %d misses in a %d-window, limit %d (Eq. 5)",
				i, maxw, p.Constraint.K, p.Constraint.M)
		}
		if p.Segments[i].Propagation == 1 {
			for j := range carried {
				carried[j] += own[j]
			}
		}
	}
	return true, ""
}

// SolveIndependent solves the CSP assuming p_l = 0 for every segment (the
// paper's perfect-recovery decomposition): each segment independently takes
// the minimum deadline that satisfies the (m,k) constraint on its own
// extended trace; feasibility then reduces to Eqs. 3 and 4.
func SolveIndependent(p Problem) Assignment {
	if err := p.validate(); err != nil {
		return Assignment{Reason: err.Error()}
	}
	deadlines := make([]int64, len(p.Segments))
	var sum int64
	for i := range p.Segments {
		d, ok := weaklyhard.MinDeadline(p.Extended(i), p.Constraint)
		if !ok {
			return Assignment{Reason: fmt.Sprintf("segment %d has no feasible deadline", i)}
		}
		if p.Bseg > 0 && d > p.Bseg {
			return Assignment{Reason: fmt.Sprintf(
				"segment %d needs deadline %d > B_seg %d (Eq. 4)", i, d, p.Bseg)}
		}
		deadlines[i] = d
		sum += d
	}
	if sum > p.Be2e {
		return Assignment{Reason: fmt.Sprintf("minimum deadline sum %d exceeds B_e2e %d (Eq. 3)", sum, p.Be2e)}
	}
	return Assignment{Feasible: true, Deadlines: deadlines, Sum: sum}
}

// candidateSet returns the sorted distinct extended latencies of segment i,
// clipped to Bseg (a deadline above Bseg violates Eq. 4; one above the
// maximum latency is never needed). If maxCandidates > 0 the set is reduced
// to evenly spaced quantiles, always keeping the extremes.
func (p *Problem) candidateSet(i, maxCandidates int) []int64 {
	ext := p.Extended(i)
	c := append([]int64(nil), ext...)
	slices.Sort(c)
	c = slices.Compact(c)
	if p.Bseg > 0 {
		// Keep the first candidate above Bseg out; all candidates must be
		// ≤ Bseg. If every latency exceeds Bseg, the segment can still use
		// Bseg itself as deadline (everything misses).
		j := 0
		for _, v := range c {
			if v <= p.Bseg {
				c[j] = v
				j++
			}
		}
		c = c[:j]
		if len(c) == 0 || c[len(c)-1] < p.Bseg {
			c = append(c, p.Bseg)
		}
	}
	if maxCandidates > 1 && len(c) > maxCandidates {
		reduced := make([]int64, 0, maxCandidates)
		for j := 0; j < maxCandidates; j++ {
			idx := j * (len(c) - 1) / (maxCandidates - 1)
			reduced = append(reduced, c[idx])
		}
		reduced = slices.Compact(reduced)
		c = reduced
	}
	return c
}

// SolveExact finds the assignment minimizing the deadline sum subject to
// Eqs. 3–7 using branch-and-bound over per-segment candidate deadlines.
// maxCandidates > 0 reduces each segment's candidate set to that many
// quantiles (0 = exhaustive — use only for small instances). The search
// assigns segments in chain order, pruning on partial sums and on window
// violations, which are monotone in the already-assigned prefix.
func SolveExact(p Problem, maxCandidates int) Assignment {
	if err := p.validate(); err != nil {
		return Assignment{Reason: err.Error()}
	}
	ns := len(p.Segments)
	n := len(p.Segments[0].Latencies)

	cands := make([][]int64, ns)
	exts := make([][]int64, ns)
	minCand := make([]int64, ns)
	for i := 0; i < ns; i++ {
		cands[i] = p.candidateSet(i, maxCandidates)
		exts[i] = p.Extended(i)
		// The minimum *feasible* candidate for pruning: at least the
		// smallest candidate value.
		minCand[i] = cands[i][0]
	}
	// Suffix sums of minimum candidates for lower-bound pruning.
	suffixMin := make([]int64, ns+1)
	for i := ns - 1; i >= 0; i-- {
		suffixMin[i] = suffixMin[i+1] + minCand[i]
	}

	best := Assignment{Reason: "no assignment satisfies Eqs. 3-7"}
	bestSum := int64(math.MaxInt64)
	cur := make([]int64, ns)
	carried := make([][]int, ns+1)
	carried[0] = make([]int, n)
	nodes := 0

	var search func(i int, sum int64)
	search = func(i int, sum int64) {
		nodes++
		if sum+suffixMin[i] > p.Be2e || sum+suffixMin[i] >= bestSum {
			return
		}
		if i == ns {
			best = Assignment{Feasible: true, Deadlines: append([]int64(nil), cur...), Sum: sum}
			bestSum = sum
			return
		}
		for _, d := range cands[i] {
			// Own misses at deadline d.
			weights := make([]int, n)
			own := make([]int, n)
			miss := false
			for j, l := range exts[i] {
				if l > d {
					own[j] = 1
					miss = true
				}
				weights[j] = own[j] + carried[i][j]
			}
			if weaklyhard.MaxWindowSum(weights, p.Constraint.K) > p.Constraint.M {
				continue // larger d can only help; but own misses shrink with d, so keep scanning
			}
			cur[i] = d
			next := carried[i]
			if p.Segments[i].Propagation == 1 && miss {
				next = make([]int, n)
				for j := range next {
					next[j] = carried[i][j] + own[j]
				}
			}
			carried[i+1] = next
			search(i+1, sum+d)
			// Candidates are ascending: once a candidate admits zero own
			// misses, larger candidates are identical in effect.
			if !miss {
				break
			}
		}
	}
	search(0, 0)
	best.Nodes = nodes
	if !best.Feasible {
		// Distinguish budget exhaustion from window infeasibility.
		if ind := SolveIndependent(Problem{
			Segments: p.Segments, DEx: p.DEx,
			Be2e: math.MaxInt64, Bseg: p.Bseg, Constraint: p.Constraint,
		}); ind.Feasible && ind.Sum > p.Be2e {
			best.Reason = fmt.Sprintf("even per-segment minima sum to %d > B_e2e %d", ind.Sum, p.Be2e)
		}
	}
	return best
}

// SolveGreedy is the heuristic for chains with propagation: it starts from
// each segment's independent minimum deadline and, while the combined
// propagated-window constraint (Eqs. 5–7) is violated, raises the deadline
// whose increase removes the most window misses per nanosecond of budget.
func SolveGreedy(p Problem) Assignment {
	if err := p.validate(); err != nil {
		return Assignment{Reason: err.Error()}
	}
	ns := len(p.Segments)
	cands := make([][]int64, ns)
	idx := make([]int, ns)
	exts := make([][]int64, ns)
	for i := 0; i < ns; i++ {
		cands[i] = p.candidateSet(i, 0)
		exts[i] = p.Extended(i)
		// Start at the independent minimum.
		d, ok := weaklyhard.MinDeadline(exts[i], p.Constraint)
		if !ok {
			return Assignment{Reason: fmt.Sprintf("segment %d has no feasible deadline", i)}
		}
		if p.Bseg > 0 && d > p.Bseg {
			return Assignment{Reason: fmt.Sprintf("segment %d needs deadline %d > B_seg %d", i, d, p.Bseg)}
		}
		idx[i] = slices.Index(cands[i], d)
		if idx[i] < 0 {
			// d is always a member of the candidate set unless clipping
			// replaced it with Bseg.
			idx[i] = len(cands[i]) - 1
		}
	}

	deadlines := func() []int64 {
		out := make([]int64, ns)
		for i := range out {
			out[i] = cands[i][idx[i]]
		}
		return out
	}
	violation := func(ds []int64) int {
		// Total excess misses over all segments' windows.
		n := len(exts[0])
		carried := make([]int, n)
		excess := 0
		for i := 0; i < ns; i++ {
			weights := make([]int, n)
			own := make([]int, n)
			for j, l := range exts[i] {
				if l > ds[i] {
					own[j] = 1
				}
				weights[j] = own[j] + carried[j]
			}
			if w := weaklyhard.MaxWindowSum(weights, p.Constraint.K); w > p.Constraint.M {
				excess += w - p.Constraint.M
			}
			if p.Segments[i].Propagation == 1 {
				for j := range carried {
					carried[j] += own[j]
				}
			}
		}
		return excess
	}

	// Each iteration advances one candidate index, so the ascent terminates;
	// the cap guards against pathological inputs.
	const maxIters = 100_000
	for iter := 0; iter < maxIters; iter++ {
		ds := deadlines()
		var sum int64
		for _, d := range ds {
			sum += d
		}
		if sum > p.Be2e {
			return Assignment{Reason: fmt.Sprintf("greedy ascent exceeded B_e2e %d at sum %d", p.Be2e, sum)}
		}
		exc := violation(ds)
		if exc == 0 {
			return Assignment{Feasible: true, Deadlines: ds, Sum: sum, Nodes: iter}
		}
		// Pick the single-segment bump with the best excess reduction per
		// added nanosecond.
		bestSeg, bestGain := -1, 0.0
		for i := 0; i < ns; i++ {
			if idx[i]+1 >= len(cands[i]) {
				continue
			}
			nd := cands[i][idx[i]+1]
			if p.Bseg > 0 && nd > p.Bseg {
				continue
			}
			trial := append([]int64(nil), ds...)
			trial[i] = nd
			reduction := exc - violation(trial)
			cost := nd - ds[i]
			if reduction <= 0 || cost <= 0 {
				continue
			}
			if gain := float64(reduction) / float64(cost); gain > bestGain {
				bestGain, bestSeg = gain, i
			}
		}
		if bestSeg < 0 {
			// No single bump helps; fall back to bumping the segment with
			// the cheapest next candidate to keep making progress.
			cheapest, cost := -1, int64(math.MaxInt64)
			for i := 0; i < ns; i++ {
				if idx[i]+1 < len(cands[i]) {
					c := cands[i][idx[i]+1] - cands[i][idx[i]]
					if c < cost {
						cheapest, cost = i, c
					}
				}
			}
			if cheapest < 0 {
				return Assignment{Reason: "no deadline increase can satisfy the window constraint"}
			}
			bestSeg = cheapest
		}
		idx[bestSeg]++
	}
	return Assignment{Reason: "greedy ascent did not converge"}
}

// Schedulable reports whether the event chain is schedulable per the
// paper's definition: a solution to the constraint satisfaction problem
// exists. It uses the decomposition for propagation-free problems and the
// greedy heuristic (verified) otherwise, falling back to exact search on
// small instances.
func Schedulable(p Problem) (bool, Assignment) {
	allZero := true
	for _, s := range p.Segments {
		if s.Propagation != 0 {
			allZero = false
		}
	}
	if allZero {
		a := SolveIndependent(p)
		return a.Feasible, a
	}
	if a := SolveGreedy(p); a.Feasible {
		if ok, _ := p.Verify(a.Deadlines); ok {
			return true, a
		}
	}
	a := SolveExact(p, 64)
	return a.Feasible, a
}
