package adaptive

import (
	"encoding/json"
	"strings"
	"testing"

	"chainmon/internal/dds"
	"chainmon/internal/livestats"
	"chainmon/internal/monitor"
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
	"chainmon/internal/vclock"
	"chainmon/internal/weaklyhard"
)

// feedScope pushes n identical latency observations into a set's segment
// scope, standing in for a monitored segment in the unit tests.
func feedScope(set *livestats.Set, name string, n int, lat sim.Duration) {
	sc := set.Segment(name, weaklyhard.Constraint{})
	for i := 0; i < n; i++ {
		sc.Observe(float64(lat), false)
	}
}

func newUnitController(t *testing.T, cfg Config) (*Controller, *monitor.BudgetTable) {
	t.Helper()
	if cfg.Set == nil {
		cfg.Set = livestats.NewSet(0)
	}
	tab := monitor.NewBudgetTable()
	cfg.Table = tab
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, tab
}

// TestGuardrailHysteresisHolds: a solved deadline within the dead band of
// the current one is not actuated.
func TestGuardrailHysteresisHolds(t *testing.T) {
	set := livestats.NewSet(0)
	feedScope(set, "s", 100, 5*sim.Millisecond)
	c, tab := newUnitController(t, Config{
		Set:      set,
		Segments: []SegmentSpec{{Name: "s", Initial: 5500 * sim.Microsecond}},
		DEx:      sim.Millisecond, Be2e: 40 * sim.Millisecond,
		Constraint: weaklyhard.Constraint{M: 0, K: 1},
		Guard:      Guardrails{MinSamples: 8},
	})
	// Solved: max 5ms + 5% margin = 5.25ms; current 5.5ms; band 10% = 550µs.
	act := c.Tick(1)
	if act.Result != ResultHeld || !strings.Contains(act.Reason, "hysteresis") {
		t.Fatalf("actuation %+v, want held on the hysteresis band", act)
	}
	if tab.Epoch() != 0 {
		t.Fatalf("table staged epoch %d, want untouched 0", tab.Epoch())
	}
	if got := act.DeadlinesNS["s"]; got != int64(5500*sim.Microsecond) {
		t.Fatalf("held actuation reports deadline %d, want the unchanged initial", got)
	}
}

// TestGuardrailClampApplies: a solved deadline below the segment's Min is
// clamped up and the clamped table is staged.
func TestGuardrailClampApplies(t *testing.T) {
	set := livestats.NewSet(0)
	feedScope(set, "s", 100, 2*sim.Millisecond)
	c, tab := newUnitController(t, Config{
		Set:      set,
		Segments: []SegmentSpec{{Name: "s", Initial: 20 * sim.Millisecond, Min: 8 * sim.Millisecond}},
		DEx:      sim.Millisecond, Be2e: 40 * sim.Millisecond,
		Constraint: weaklyhard.Constraint{M: 0, K: 1},
		Guard:      Guardrails{MinSamples: 8},
	})
	act := c.Tick(1)
	if act.Result != ResultApplied || act.Epoch != 1 {
		t.Fatalf("actuation %+v, want applied at epoch 1", act)
	}
	if got := tab.Deadlines()["s"]; got != 8*sim.Millisecond {
		t.Fatalf("staged deadline %v, want the 8ms clamp (solved ~2.1ms)", got)
	}
	if got := c.Deadlines()["s"]; got != 8*sim.Millisecond {
		t.Fatalf("controller tracks %v, want 8ms", got)
	}
}

// TestGuardrailInfeasibleHolds: when no assignment fits the end-to-end
// budget, the current table stays in force.
func TestGuardrailInfeasibleHolds(t *testing.T) {
	set := livestats.NewSet(0)
	feedScope(set, "s", 100, 5*sim.Millisecond)
	c, tab := newUnitController(t, Config{
		Set:      set,
		Segments: []SegmentSpec{{Name: "s", Initial: 10 * sim.Millisecond, Propagation: 1}},
		DEx:      sim.Millisecond, Be2e: 3 * sim.Millisecond, // < max latency + DEx
		Constraint: weaklyhard.Constraint{M: 0, K: 1},
		Guard:      Guardrails{MinSamples: 8},
	})
	act := c.Tick(1)
	if act.Result != ResultInfeasible {
		t.Fatalf("actuation %+v, want infeasible", act)
	}
	if tab.Epoch() != 0 || c.Deadlines()["s"] != 10*sim.Millisecond {
		t.Fatalf("infeasible tick must not actuate (epoch %d, deadline %v)", tab.Epoch(), c.Deadlines()["s"])
	}
}

// TestMinSamplesReservesSegment: a segment below MinSamples keeps its
// current deadline, is still staged in the full table, and its extended
// share is subtracted from the end-to-end budget handed to the solver.
func TestMinSamplesReservesSegment(t *testing.T) {
	set := livestats.NewSet(0)
	feedScope(set, "a", 100, 4*sim.Millisecond)
	feedScope(set, "b", 3, 4*sim.Millisecond) // below MinSamples
	c, tab := newUnitController(t, Config{
		Set: set,
		Segments: []SegmentSpec{
			{Name: "a", Initial: 20 * sim.Millisecond},
			{Name: "b", Initial: 10 * sim.Millisecond},
		},
		DEx: sim.Millisecond, Be2e: 30 * sim.Millisecond,
		Constraint: weaklyhard.Constraint{M: 0, K: 1},
		Guard:      Guardrails{MinSamples: 8},
	})
	act := c.Tick(1)
	if act.Result != ResultApplied {
		t.Fatalf("actuation %+v, want applied", act)
	}
	d := tab.Deadlines()
	if d["b"] != 10*sim.Millisecond {
		t.Fatalf("reserved segment staged at %v, want its untouched 10ms", d["b"])
	}
	want := 4*sim.Millisecond + 4*sim.Millisecond/20 // max 4ms + 5% margin
	if d["a"] != want {
		t.Fatalf("solved segment staged at %v, want %v", d["a"], want)
	}

	// Shrink the budget so the reserved share alone starves the solver:
	// 30ms total − (10ms+1ms reserved) leaves 19ms, but 11.8ms is enough
	// for a's 5ms extended need — so instead reserve b at a huge deadline.
	set2 := livestats.NewSet(0)
	feedScope(set2, "a", 100, 4*sim.Millisecond)
	feedScope(set2, "b", 3, 4*sim.Millisecond)
	c2, _ := newUnitController(t, Config{
		Set: set2,
		Segments: []SegmentSpec{
			{Name: "a", Initial: 20 * sim.Millisecond},
			{Name: "b", Initial: 28 * sim.Millisecond},
		},
		DEx: sim.Millisecond, Be2e: 30 * sim.Millisecond,
		Constraint: weaklyhard.Constraint{M: 0, K: 1},
		Guard:      Guardrails{MinSamples: 8},
	})
	if act := c2.Tick(1); act.Result != ResultInfeasible {
		t.Fatalf("actuation %+v, want infeasible: b's reserved 29ms leaves 1ms for a's 5ms need", act)
	}
}

// TestRollbackOnBurnEscalation: an escalation of the gating chain scope to
// burning or worse restores the previously applied table.
func TestRollbackOnBurnEscalation(t *testing.T) {
	set := livestats.NewSet(0)
	feedScope(set, "s", 100, 5*sim.Millisecond)
	chain := set.Chain("c", weaklyhard.Constraint{M: 1, K: 4})
	c, tab := newUnitController(t, Config{
		Set: set, Chain: "c",
		Segments:   []SegmentSpec{{Name: "s", Initial: 10 * sim.Millisecond}},
		DEx:        sim.Millisecond, Be2e: 40 * sim.Millisecond,
		Constraint: weaklyhard.Constraint{M: 0, K: 1},
		Guard:      Guardrails{MinSamples: 8},
	})
	if act := c.Tick(1); act.Result != ResultApplied {
		t.Fatalf("first tick %+v, want applied (5.25ms vs initial 10ms)", act)
	}
	// Two misses in a (1,4) window exceed the budget: violated.
	chain.Record(true)
	chain.Record(true)
	act := c.Tick(2)
	if act.Result != ResultRollback || act.Epoch != 2 {
		t.Fatalf("escalated tick %+v, want rollback at epoch 2", act)
	}
	if got := tab.Deadlines()["s"]; got != 10*sim.Millisecond {
		t.Fatalf("rolled-back table holds %v, want the pre-actuation 10ms", got)
	}
	// Still violated on the next tick: no second rollback target, and the
	// censored-latency hold keeps the solver quiet.
	act = c.Tick(3)
	if act.Result != ResultHeld || !strings.Contains(act.Reason, "censored") {
		t.Fatalf("post-rollback tick %+v, want the burn hold", act)
	}
}

// TestHealthDocExposesBudget: New registers the controller as the Set's
// budget provider, so /health documents carry the table and history.
func TestHealthDocExposesBudget(t *testing.T) {
	set := livestats.NewSet(0)
	feedScope(set, "s", 100, 2*sim.Millisecond)
	c, _ := newUnitController(t, Config{
		Set:        set,
		Segments:   []SegmentSpec{{Name: "s", Initial: 20 * sim.Millisecond}},
		DEx:        sim.Millisecond, Be2e: 40 * sim.Millisecond,
		Constraint: weaklyhard.Constraint{M: 0, K: 1},
		Guard:      Guardrails{MinSamples: 8},
	})
	c.Tick(1)
	doc, ok := set.Health().Budget.(healthDocT)
	if !ok {
		t.Fatalf("health budget section is %T, want the controller's doc", set.Health().Budget)
	}
	if doc.Epoch != 1 || len(doc.Actuations) != 1 || doc.Actuations[0].Result != ResultApplied {
		t.Fatalf("health doc %+v, want epoch 1 with one applied actuation", doc)
	}
	if _, err := json.Marshal(doc); err != nil {
		t.Fatalf("health doc must marshal: %v", err)
	}
}

// --- end-to-end: the control loop against a real simulated monitor ---

// adaptiveRun drives one deterministic end-to-end scenario and returns the
// controller, the live set, the telemetry sink, and the marshaled history.
//
// Timeline (period 10ms, 90 activations):
//   - acts 0..29 cost {3, 3.5, 4}ms under the initial 20ms deadline: plenty
//     of slack, the controller tightens (clamped at the 6ms Min).
//   - acts 30.. cost {7, 7.6, 8.2}ms: everything misses the 6ms budget, the
//     chain (12,24) SLO burns, and at burning the controller rolls back to
//     the 20ms table before the window is violated.
//   - once the window recovers, the now-uncensored spike latencies re-solve
//     to ~8.6ms (max 8.2ms + 5% margin): the load spike is accommodated.
func adaptiveRun(t *testing.T) (*Controller, *livestats.Set, *telemetry.Sink, []byte) {
	t.Helper()
	k := sim.NewKernel()
	d := dds.NewDomain(k, sim.NewRNG(1))
	ecu := d.NewECU("ecu", 2, vclock.Config{})
	mon := monitor.NewLocalMonitor(ecu)
	seg := mon.AddSegment(monitor.SegmentConfig{
		Name: "work", DMon: 20 * sim.Millisecond, DEx: sim.Millisecond,
		Period: 10 * sim.Millisecond, Constraint: weaklyhard.Constraint{M: 12, K: 24},
	})
	set := livestats.NewSet(0)
	mon.AttachLive(set)
	chain := set.Chain("e2e", weaklyhard.Constraint{M: 12, K: 24})
	seg.OnResolve(func(r monitor.Resolution) {
		miss := r.Status == monitor.StatusMissed
		if lat, ok := r.LatencySample(); ok {
			chain.Observe(float64(lat), miss)
		} else {
			chain.Record(miss)
		}
	})
	tab := monitor.NewBudgetTable()
	mon.AttachBudget(tab)
	sink := telemetry.NewSink(1024)

	ctrl, err := New(Config{
		Set: set, Table: tab, Chain: "e2e",
		Segments: []SegmentSpec{{
			Name: "work", Propagation: 1,
			Initial: 20 * sim.Millisecond, Min: 6 * sim.Millisecond, Max: 30 * sim.Millisecond,
		}},
		DEx: sim.Millisecond, Be2e: 40 * sim.Millisecond,
		Constraint: weaklyhard.Constraint{M: 0, K: 1},
		Guard:      Guardrails{MinSamples: 8},
		Sink:       sink,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// 7.1ms keeps ticks off the 10ms activation grid and the +6ms timeout
	// instants, so tick/scan orderings never depend on same-time tie-breaks.
	ctrl.ScheduleSim(k, 7100*sim.Microsecond, sim.Time(900*sim.Millisecond))

	calm := []sim.Duration{3 * sim.Millisecond, 3500 * sim.Microsecond, 4 * sim.Millisecond}
	spike := []sim.Duration{7 * sim.Millisecond, 7600 * sim.Microsecond, 8200 * sim.Microsecond}
	for i := 0; i < 90; i++ {
		act := uint64(i)
		cost := calm[i%3]
		if i >= 30 {
			cost = spike[i%3]
		}
		start := sim.Time(int64(i) * int64(10*sim.Millisecond))
		k.At(start, func() { seg.StartInjected(act) })
		k.At(start.Add(cost), func() { seg.EndInjected(act) })
	}
	k.Run()

	hist, err := json.Marshal(ctrl.History())
	if err != nil {
		t.Fatalf("marshal history: %v", err)
	}
	return ctrl, set, sink, hist
}

// TestAdaptiveEndToEndSim is the tentpole demo: slack is reclaimed, a load
// spike triggers rollback before the chain SLO is violated, and the loop
// settles on a deadline that accommodates the new load — all inside the
// deterministic simulation.
func TestAdaptiveEndToEndSim(t *testing.T) {
	ctrl, set, sink, _ := adaptiveRun(t)

	var applied []Actuation
	rollbacks := 0
	for _, a := range ctrl.History() {
		switch a.Result {
		case ResultApplied:
			applied = append(applied, a)
		case ResultRollback:
			rollbacks++
		case ResultInfeasible:
			t.Fatalf("unexpected infeasible actuation: %+v", a)
		}
	}
	if len(applied) != 2 || rollbacks != 1 {
		t.Fatalf("got %d applied / %d rollbacks, want 2 applied (tighten, re-solve) and 1 rollback", len(applied), rollbacks)
	}
	if got := applied[0].DeadlinesNS["work"]; got != int64(6*sim.Millisecond) {
		t.Fatalf("slack phase actuated %v, want the 6ms Min clamp", sim.Duration(got))
	}
	relaxed := sim.Duration(applied[1].DeadlinesNS["work"])
	if relaxed <= 8200*sim.Microsecond || relaxed >= 10*sim.Millisecond {
		t.Fatalf("post-spike deadline %v, want ~8.6ms (max 8.2ms + margin), strictly above the spike costs", relaxed)
	}

	h := set.Health()
	if slo := h.Chains["e2e"].SLO; slo == nil || slo.Violations != 0 {
		t.Fatalf("chain SLO %+v: the run must stay violation-free", h.Chains["e2e"].SLO)
	}
	if slo := h.Segments["work"].SLO; slo == nil || slo.Violations != 0 {
		t.Fatalf("segment SLO %+v: the run must stay violation-free", h.Segments["work"].SLO)
	}

	// Every table change emitted one KindBudgetSwap event: tighten,
	// rollback, re-solve.
	var swaps []telemetry.Event
	for _, ev := range sink.Rec.Track("budget").Events() {
		if ev.Kind == telemetry.KindBudgetSwap {
			swaps = append(swaps, ev)
		}
	}
	if len(swaps) != 3 {
		t.Fatalf("%d budget-swap events, want 3 (tighten, rollback, re-solve)", len(swaps))
	}
	for i, ev := range swaps {
		if ev.Act != uint64(i+1) {
			t.Fatalf("swap event %d carries epoch %d, want %d", i, ev.Act, i+1)
		}
		if sink.Rec.LabelName(ev.Label) != "work" {
			t.Fatalf("swap event %d labeled %q, want the segment name", i, sink.Rec.LabelName(ev.Label))
		}
	}
}

// TestAdaptiveSameSeedByteIdentical pins determinism: the control loop is
// an ordinary kernel event, so the same seed reproduces the actuation
// history byte for byte.
func TestAdaptiveSameSeedByteIdentical(t *testing.T) {
	_, _, _, h1 := adaptiveRun(t)
	_, _, _, h2 := adaptiveRun(t)
	if string(h1) != string(h2) {
		t.Fatalf("same-seed actuation histories differ:\n%s\nvs\n%s", h1, h2)
	}
}
