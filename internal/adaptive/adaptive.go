// Package adaptive closes the loop between the live health layer and the
// budget solver: a controller periodically snapshots the livestats Set,
// re-solves the (m,k) budgeting problem on the observed quantiles, applies
// guardrails, and actuates the result through a monitor.BudgetTable — the
// hot-swappable deadline state every monitor reads per activation.
//
// The loop is deliberately conservative. Each tick either
//
//   - holds (all solved deadlines within the hysteresis band of the current
//     ones, or too few samples to trust the distribution),
//   - applies (the solved, clamped assignment still passes Verify and the
//     end-to-end budget after clamping),
//   - rejects as infeasible (the solver or the post-clamp invariant says no
//     assignment fits — the current table stays in force), or
//   - rolls back (the chain's burn state escalated to burning/violated since
//     the last actuation — the previous table is restored).
//
// Every outcome is recorded in the actuation history, exported as
// chainmon_budget_* gauges, and — for applied/rollback — emitted as one
// telemetry.KindBudgetSwap event per retimed segment. The controller never
// retimes in-flight activations: the BudgetTable's swap barrier guarantees
// each activation finishes under the deadline it started with.
package adaptive

import (
	"fmt"
	"sync"
	"time"

	"chainmon/internal/budget"
	"chainmon/internal/livestats"
	"chainmon/internal/monitor"
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
	"chainmon/internal/weaklyhard"
)

// SegmentSpec declares one controlled segment: its chain position (specs
// are given in chain order — propagation makes order part of the problem)
// and the clamp range its monitored deadline may move in.
type SegmentSpec struct {
	Name        string
	Propagation int
	// Initial is the construction-time monitored deadline, the value the
	// controller assumes in force before its first actuation.
	Initial sim.Duration
	// Min/Max clamp every actuated deadline. Zero disables that bound.
	Min, Max sim.Duration
}

// Guardrails bounds how eagerly the controller actuates.
type Guardrails struct {
	// Hysteresis is the relative dead band: an actuation is held unless at
	// least one segment's solved deadline differs from its current one by
	// more than Hysteresis×current. 0 selects DefaultHysteresis; negative
	// disables the band.
	Hysteresis float64
	// MinSamples is the observation count below which a segment's live
	// distribution is not trusted: the segment keeps its current deadline
	// and its share of the end-to-end budget is reserved, not re-solved.
	// 0 selects DefaultMinSamples.
	MinSamples uint64
	// Margin is relative headroom added to every solved deadline before
	// clamping. It absorbs the sketch's α quantile error and keeps the
	// actuated deadline strictly above the observed maximum — without it a
	// hard-constraint solve lands exactly on the largest observed latency,
	// and the next activation at that latency knife-edges its deadline.
	// 0 selects DefaultMargin; negative disables.
	Margin float64
}

// Guardrail defaults: a 10% dead band, 16 observations before a segment's
// quantiles are considered representative, and 5% actuation headroom.
const (
	DefaultHysteresis = 0.10
	DefaultMinSamples = 16
	DefaultMargin     = 0.05
)

// Config wires a Controller.
type Config struct {
	Set   *livestats.Set      // live quantiles + burn states (required)
	Table *monitor.BudgetTable // actuation target (required)
	// Chain names the livestats chain scope whose burn state gates
	// rollback. Empty disables the rollback guard.
	Chain    string
	Segments []SegmentSpec // chain order (required, non-empty)
	// DEx, Be2e, Bseg and Constraint mirror budget.Problem: the uniform
	// exception-handling budget, the end-to-end budget over the extended
	// deadlines d = d_mon + d_ex, the optional per-segment cap, and the
	// chain's weakly-hard constraint.
	DEx        sim.Duration
	Be2e       sim.Duration
	Bseg       sim.Duration
	Constraint weaklyhard.Constraint
	Guard      Guardrails
	// TraceLen is the synthesized pseudo-trace resolution passed to the
	// live solver frontend (0 selects budget.DefaultLiveTraceLen).
	TraceLen int
	// Sink receives KindBudgetSwap events (track "budget") and the
	// chainmon_budget_* gauges. Nil stays dark, like every Attach.
	Sink *telemetry.Sink
}

// Actuation is one controller decision, kept in the history and surfaced
// on /health. Deadlines is the full monitored-deadline table after the
// decision (unchanged on held/infeasible), in nanoseconds.
type Actuation struct {
	Seq    int    `json:"seq"`
	AtNS   int64  `json:"at_ns"`
	Epoch  uint64 `json:"epoch"` // table epoch staged by this actuation (0 when none)
	Result string `json:"result"` // "applied" | "held" | "infeasible" | "rollback"
	Reason string `json:"reason,omitempty"`
	// DeadlinesNS maps segment name to the monitored deadline in force
	// after this actuation. encoding/json sorts map keys, so the history
	// marshals deterministically.
	DeadlinesNS map[string]int64 `json:"deadlines_ns"`
}

// Actuation results.
const (
	ResultApplied    = "applied"
	ResultHeld       = "held"
	ResultInfeasible = "infeasible"
	ResultRollback   = "rollback"
)

// maxHistory bounds the retained actuation history (the /health document
// embeds it; an unbounded history would grow a multi-day run's snapshot).
const maxHistory = 256

// Controller is the adaptive budget control loop. Tick is safe for
// concurrent use; on the sim timebase drive it from a kernel event
// (ScheduleSim) so runs stay deterministic.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	seq      int
	history  []Actuation
	dropped  int // actuations evicted from history by the cap
	current  map[string]sim.Duration
	previous map[string]sim.Duration // last superseded table, rollback target
	lastBurn livestats.BurnState

	track *telemetry.Track
}

// New validates the config and creates a controller. It registers itself as
// the Set's budget provider, so /health documents carry the live deadline
// table and actuation history.
func New(cfg Config) (*Controller, error) {
	if cfg.Set == nil || cfg.Table == nil {
		return nil, fmt.Errorf("adaptive: Set and Table are required")
	}
	if len(cfg.Segments) == 0 {
		return nil, fmt.Errorf("adaptive: no segments to control")
	}
	if cfg.Guard.Hysteresis == 0 {
		cfg.Guard.Hysteresis = DefaultHysteresis
	}
	if cfg.Guard.MinSamples == 0 {
		cfg.Guard.MinSamples = DefaultMinSamples
	}
	if cfg.Guard.Margin == 0 {
		cfg.Guard.Margin = DefaultMargin
	}
	c := &Controller{cfg: cfg, current: map[string]sim.Duration{}}
	seen := map[string]bool{}
	for _, s := range cfg.Segments {
		if s.Name == "" || s.Initial <= 0 {
			return nil, fmt.Errorf("adaptive: segment %+v needs a name and a positive initial deadline", s)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("adaptive: duplicate segment %q", s.Name)
		}
		seen[s.Name] = true
		c.current[s.Name] = s.Initial
	}
	if cfg.Sink != nil {
		c.track = cfg.Sink.Rec.Track("budget")
	}
	cfg.Set.SetBudgetProvider(c.healthDoc)
	return c, nil
}

// Tick runs one control iteration at the given timestamp (virtual or wall
// nanoseconds) and returns the recorded actuation.
func (c *Controller) Tick(nowNS int64) Actuation {
	c.mu.Lock()
	defer c.mu.Unlock()

	act := Actuation{Seq: c.seq, AtNS: nowNS}
	c.seq++

	// Rollback guard: if the chain's burn state escalated to burning or
	// worse since the previous tick and there is an earlier table to return
	// to, restore it before anything else — the last actuation is the prime
	// suspect for the escalation.
	burn := c.chainBurn()
	if burn >= livestats.StateBurning && burn > c.lastBurn && c.previous != nil {
		c.lastBurn = burn
		act.Result = ResultRollback
		act.Reason = fmt.Sprintf("chain %q burn state escalated to %v", c.cfg.Chain, burn)
		c.stageLocked(c.previous, &act)
		c.current, c.previous = c.previous, nil
		return c.recordLocked(act)
	}
	c.lastBurn = burn

	// Burn hold: while the chain is consuming its miss budget, the live
	// latencies of missing activations are censored at their deadlines (the
	// exception handler resolves them, so the sketch records
	// handler-completion latency, not the true latency that would have
	// been). Re-solving on censored data would re-tighten toward the very
	// deadline that is being missed — hold until the window recovers.
	if burn >= livestats.StateWarning {
		act.Result = ResultHeld
		act.Reason = fmt.Sprintf("chain %q burn state %v: latencies censored, holding", c.cfg.Chain, burn)
		return c.recordLocked(act)
	}

	// Partition segments into observed (re-solved) and reserved (too few
	// samples — keep the current deadline and subtract its extended share
	// from the end-to-end budget). Iteration strictly follows cfg.Segments
	// order; determinism of the whole loop depends on it.
	var live []budget.LiveSegment
	reservedNS := int64(0)
	for _, spec := range c.cfg.Segments {
		scope := c.cfg.Set.Segment(spec.Name, weaklyhard.Constraint{})
		if n := scope.Count(); n < c.cfg.Guard.MinSamples {
			reservedNS += int64(c.current[spec.Name] + c.cfg.DEx)
			continue
		}
		pts := make([]budget.QuantilePoint, 0, 4)
		for _, q := range []float64{0.50, 0.95, 0.99, 1.00} {
			if v, ok := scope.QuantileOK(q); ok {
				pts = append(pts, budget.QuantilePoint{Q: q, NS: v})
			}
		}
		live = append(live, budget.LiveSegment{
			Name:        spec.Name,
			Propagation: spec.Propagation,
			Count:       scope.Count(),
			Points:      pts,
		})
	}
	if len(live) == 0 {
		act.Result = ResultHeld
		act.Reason = fmt.Sprintf("no segment reached %d samples", c.cfg.Guard.MinSamples)
		return c.recordLocked(act)
	}

	lp := budget.LiveProblem{
		Segments:   live,
		DEx:        int64(c.cfg.DEx),
		Be2e:       int64(c.cfg.Be2e) - reservedNS,
		Bseg:       int64(c.cfg.Bseg),
		Constraint: c.cfg.Constraint,
		TraceLen:   c.cfg.TraceLen,
	}
	p, _, err := lp.Build()
	if err != nil {
		act.Result = ResultHeld
		act.Reason = err.Error()
		return c.recordLocked(act)
	}
	ok, asn := budget.Schedulable(p)
	if !ok {
		act.Result = ResultInfeasible
		act.Reason = asn.Reason
		return c.recordLocked(act)
	}

	// Map solved extended deadlines back to monitored deadlines and clamp.
	next := make(map[string]sim.Duration, len(c.current))
	for name, d := range c.current {
		next[name] = d
	}
	clampedExt := make([]int64, len(p.Segments))
	changed := false
	for i, seg := range p.Segments {
		spec := c.spec(seg.Name)
		dmon := sim.Duration(asn.Deadlines[i]) - c.cfg.DEx
		if c.cfg.Guard.Margin > 0 {
			dmon += sim.Duration(float64(dmon) * c.cfg.Guard.Margin)
		}
		if spec.Min > 0 && dmon < spec.Min {
			dmon = spec.Min
		}
		if spec.Max > 0 && dmon > spec.Max {
			dmon = spec.Max
		}
		if dmon <= 0 {
			act.Result = ResultInfeasible
			act.Reason = fmt.Sprintf("segment %q solved deadline %v leaves no monitoring budget", seg.Name, sim.Duration(asn.Deadlines[i]))
			return c.recordLocked(act)
		}
		clampedExt[i] = int64(dmon + c.cfg.DEx)
		next[seg.Name] = dmon
		cur := c.current[seg.Name]
		if delta := dmon - cur; delta > hystBand(cur, c.cfg.Guard.Hysteresis) || -delta > hystBand(cur, c.cfg.Guard.Hysteresis) {
			changed = true
		}
	}
	if !changed {
		act.Result = ResultHeld
		act.Reason = "all deadlines within hysteresis band"
		return c.recordLocked(act)
	}

	// Post-clamp invariant: clamping moved deadlines off the solver's
	// assignment, so re-verify the (m,k) feasibility on the clamped values
	// and re-check the end-to-end budget including the reserved segments.
	if vok, why := p.Verify(clampedExt); !vok {
		act.Result = ResultInfeasible
		act.Reason = "post-clamp: " + why
		return c.recordLocked(act)
	}
	total := reservedNS
	for _, d := range clampedExt {
		total += d
	}
	if c.cfg.Be2e > 0 && total > int64(c.cfg.Be2e) {
		act.Result = ResultInfeasible
		act.Reason = fmt.Sprintf("post-clamp: extended deadlines sum %v exceeds end-to-end budget %v", sim.Duration(total), c.cfg.Be2e)
		return c.recordLocked(act)
	}

	act.Result = ResultApplied
	c.stageLocked(next, &act)
	c.previous, c.current = c.current, next
	return c.recordLocked(act)
}

// hystBand returns the absolute dead-band width around cur.
func hystBand(cur sim.Duration, h float64) sim.Duration {
	if h <= 0 {
		return 0
	}
	return sim.Duration(float64(cur) * h)
}

func (c *Controller) spec(name string) SegmentSpec {
	for _, s := range c.cfg.Segments {
		if s.Name == name {
			return s
		}
	}
	return SegmentSpec{}
}

// chainBurn reads the rollback-gating burn state (StateOK when no chain
// scope is configured).
func (c *Controller) chainBurn() livestats.BurnState {
	if c.cfg.Chain == "" {
		return livestats.StateOK
	}
	return c.cfg.Set.Chain(c.cfg.Chain, weaklyhard.Constraint{}).State()
}

// stageLocked publishes table onto the BudgetTable and emits the per-segment
// swap telemetry. Updates are staged in cfg.Segments order (full snapshot —
// the table itself versions cumulatively).
func (c *Controller) stageLocked(table map[string]sim.Duration, act *Actuation) {
	updates := make([]monitor.DeadlineUpdate, 0, len(c.cfg.Segments))
	for _, spec := range c.cfg.Segments {
		updates = append(updates, monitor.DeadlineUpdate{Segment: spec.Name, DMon: table[spec.Name]})
	}
	act.Epoch = c.cfg.Table.Stage(updates)
	if c.track != nil {
		for _, spec := range c.cfg.Segments {
			if table[spec.Name] == c.current[spec.Name] {
				continue // only retimed segments get an event
			}
			c.track.Append(telemetry.Event{
				TS:    act.AtNS,
				Act:   act.Epoch,
				Arg:   int64(table[spec.Name]),
				Kind:  telemetry.KindBudgetSwap,
				Label: c.cfg.Sink.Rec.Intern(spec.Name),
			})
		}
	}
}

// recordLocked finalizes act (snapshotting the in-force table), appends it
// to the bounded history, refreshes the gauges, and returns it.
func (c *Controller) recordLocked(act Actuation) Actuation {
	act.DeadlinesNS = make(map[string]int64, len(c.current))
	for name, d := range c.current {
		act.DeadlinesNS[name] = int64(d)
	}
	c.history = append(c.history, act)
	if len(c.history) > maxHistory {
		drop := len(c.history) - maxHistory
		c.history = append(c.history[:0], c.history[drop:]...)
		c.dropped += drop
	}
	if c.cfg.Sink != nil {
		reg := c.cfg.Sink.Reg
		reg.Gauge("chainmon_budget_epoch",
			"Epoch of the most recently staged deadline table (0: construction-time deadlines still in force).").Set(int64(c.cfg.Table.Epoch()))
		for _, spec := range c.cfg.Segments {
			reg.Gauge("chainmon_budget_deadline_ns",
				"Monitored deadline currently in force for a controlled segment, in nanoseconds.",
				telemetry.L("segment", spec.Name)...).Set(int64(c.current[spec.Name]))
		}
		reg.Counter("chainmon_budget_actuations_total",
			"Adaptive budget control iterations by outcome.",
			telemetry.L("result", act.Result)...).Inc()
	}
	return act
}

// History returns a copy of the retained actuation history.
func (c *Controller) History() []Actuation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Actuation(nil), c.history...)
}

// Deadlines returns the monitored deadlines the controller believes in
// force (construction-time initials until the first applied actuation).
func (c *Controller) Deadlines() map[string]sim.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]sim.Duration, len(c.current))
	for k, v := range c.current {
		out[k] = v
	}
	return out
}

// healthDoc is the /health "budget" section (registered on the Set by New).
type healthDocT struct {
	Epoch          uint64           `json:"epoch"`
	AppliedEpoch   uint64           `json:"applied_epoch"`
	DeadlinesNS    map[string]int64 `json:"deadlines_ns"`
	Actuations     []Actuation      `json:"actuations"`
	DroppedHistory int              `json:"dropped_history,omitempty"`
}

func (c *Controller) healthDoc() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	doc := healthDocT{
		Epoch:        c.cfg.Table.Epoch(),
		AppliedEpoch: c.cfg.Table.AppliedEpoch(),
		DeadlinesNS:  make(map[string]int64, len(c.current)),
		Actuations:   append([]Actuation(nil), c.history...),
	}
	for name, d := range c.current {
		doc.DeadlinesNS[name] = int64(d)
	}
	doc.DroppedHistory = c.dropped
	return doc
}

// ScheduleSim drives the controller from a simulation kernel: one Tick
// every interval, starting at interval, stopping after the last tick at or
// before horizon. Being an ordinary kernel event makes the whole control
// loop part of the deterministic schedule — same seed, same actuation
// sequence, byte for byte.
func (c *Controller) ScheduleSim(k *sim.Kernel, interval sim.Duration, horizon sim.Time) {
	if interval <= 0 {
		return
	}
	var step func()
	step = func() {
		c.Tick(int64(k.Now()))
		if next := k.Now().Add(interval); next <= horizon {
			k.At(next, step)
		}
	}
	if first := sim.Time(0).Add(interval); first <= horizon {
		k.At(first, step)
	}
}

// StartWall drives the controller from wall time: one Tick every interval
// on a background goroutine. The returned stop function blocks until the
// loop exits; it is idempotent.
func (c *Controller) StartWall(interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				c.Tick(now.UnixNano())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}
