// Package parallel is the bounded fan-out engine behind every sharded
// evaluation in the repository: chaos-matrix sweeps, ablation grids and
// per-figure experiment repetitions. Independent deterministic simulations
// are distributed over a worker pool sized to GOMAXPROCS; each shard builds
// its own kernel, RNG streams and telemetry, so no mutable structure is ever
// shared between workers, and every result is written into the slot of its
// shard index — the merge order is the shard order, never the completion
// order, which makes parallel output byte-identical to serial output.
//
// The scheduling is a work-stealing counter, not a static partition: shards
// have wildly different costs (a kitchen-sink campaign vs a clean run), and
// a static split would leave workers idle behind the slowest stripe.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values ≤ 0 select
// GOMAXPROCS (the -parallel flag default), everything else is returned
// unchanged. Worker counts above the shard count are harmless — ForEach
// never spawns more goroutines than shards.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach invokes fn(shard) for every shard in [0, n), fanning out over at
// most workers goroutines. With workers ≤ 1 (or a single shard) everything
// runs inline on the calling goroutine in shard order — the serial path that
// parallel runs are compared against. A panic in any shard is re-raised on
// the calling goroutine after the pool drains, so a deterministic modelling
// bug surfaces identically in serial and parallel runs.
func ForEach(workers, n int, fn func(shard int)) {
	ForEachArena(workers, n,
		func() struct{} { return struct{}{} },
		func(_ struct{}, shard int) { fn(shard) })
}

// ForEachArena is ForEach with a per-worker arena: newArena runs once per
// worker goroutine (once total on the serial path) and the arena is handed
// to every shard that worker claims. Shards reuse the arena's scratch
// instead of rebuilding per-shard state, which is what makes a long sweep
// O(1) allocations per shard. Determinism is unaffected: an arena must only
// carry scratch that fn fully overwrites (or resets) per shard, never data
// that flows between shards — results must still be written by shard index.
func ForEachArena[A any](workers, n int, newArena func() A, fn func(arena A, shard int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		arena := newArena()
		for i := 0; i < n; i++ {
			fn(arena, i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value // first shard panic, re-raised by the caller
	)
	run := func(arena A, shard int) {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, shardPanic{shard, r})
			}
		}()
		fn(arena, shard)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			arena := newArena()
			for {
				shard := int(next.Add(1)) - 1
				if shard >= n {
					return
				}
				run(arena, shard)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		sp := p.(shardPanic)
		panic(fmt.Sprintf("parallel: shard %d panicked: %v", sp.shard, sp.value))
	}
}

type shardPanic struct {
	shard int
	value any
}

// Map runs fn over n shards and returns the results ordered by shard index
// — the deterministic merge. fn must not touch anything outside its shard.
func Map[T any](workers, n int, fn func(shard int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(shard int) {
		out[shard] = fn(shard)
	})
	return out
}

// MapSlice is Map over an explicit work list: fn receives the shard index
// and its item, results keep the item order.
func MapSlice[In, Out any](workers int, items []In, fn func(shard int, item In) Out) []Out {
	return Map(workers, len(items), func(shard int) Out {
		return fn(shard, items[shard])
	})
}

// MapArena is Map with a per-worker arena (see ForEachArena).
func MapArena[A, T any](workers, n int, newArena func() A, fn func(arena A, shard int) T) []T {
	out := make([]T, n)
	ForEachArena(workers, n, newArena, func(arena A, shard int) {
		out[shard] = fn(arena, shard)
	})
	return out
}

// MapSliceArena is MapSlice with a per-worker arena (see ForEachArena).
func MapSliceArena[A, In, Out any](workers int, items []In, newArena func() A, fn func(arena A, shard int, item In) Out) []Out {
	return MapArena(workers, len(items), newArena, func(arena A, shard int) Out {
		return fn(arena, shard, items[shard])
	})
}
