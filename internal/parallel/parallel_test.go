package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForEachCoversEveryShardOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 100} {
		const n = 57
		var hits [n]atomic.Int64
		ForEach(workers, n, func(shard int) {
			hits[shard].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: shard %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for zero shards") })
}

// TestMapMergeIsShardOrdered pins the determinism guarantee: no matter how
// the workers interleave, the merged result is ordered by shard index and
// identical to the serial run.
func TestMapMergeIsShardOrdered(t *testing.T) {
	square := func(shard int) int { return shard * shard }
	serial := Map(1, 200, square)
	for _, workers := range []int{2, 3, 8} {
		par := Map(workers, 200, square)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: slot %d = %d, serial %d", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestMapSliceKeepsItemOrder(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	got := MapSlice(4, items, func(shard int, item string) string {
		return strings.ToUpper(item)
	})
	want := []string{"A", "B", "C", "D", "E"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestForEachArenaOnePerWorker pins the arena lifecycle: one arena per
// worker goroutine (one total on the serial path), every shard sees an
// arena, and the merge stays shard-ordered regardless of which worker's
// arena served which shard.
func TestForEachArenaOnePerWorker(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		var arenas atomic.Int64
		const n = 40
		got := MapArena(workers, n,
			func() *[]int { arenas.Add(1); return new([]int) },
			func(scratch *[]int, shard int) int {
				// Reuse the scratch buffer the way real arenas do.
				*scratch = append((*scratch)[:0], shard, shard)
				return (*scratch)[0] + (*scratch)[1]
			})
		for i := range got {
			if got[i] != 2*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], 2*i)
			}
		}
		if a := arenas.Load(); a > int64(Workers(workers)) || a < 1 {
			t.Errorf("workers=%d: %d arenas created", workers, a)
		}
		if workers == 1 && arenas.Load() != 1 {
			t.Errorf("serial path created %d arenas, want exactly 1", arenas.Load())
		}
	}
}

func TestMapSliceArenaKeepsItemOrder(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	got := MapSliceArena(4, items,
		func() *strings.Builder { return &strings.Builder{} },
		func(b *strings.Builder, shard int, item string) string {
			b.Reset()
			b.WriteString(strings.ToUpper(item))
			return b.String()
		})
	want := []string{"A", "B", "C", "D", "E"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestForEachPropagatesPanic requires a shard panic to surface on the
// calling goroutine, for serial and parallel pools alike.
func TestForEachPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: shard panic was swallowed", workers)
				}
				if !strings.Contains(r.(string), "boom") {
					t.Fatalf("workers=%d: panic value %v lost the cause", workers, r)
				}
			}()
			ForEach(workers, 8, func(shard int) {
				if shard == 5 {
					panic("boom")
				}
			})
		}()
	}
}

// TestForEachBoundsConcurrency verifies the pool never runs more shards at
// once than the requested worker count.
func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	ForEach(workers, 64, func(int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d shards in flight, cap is %d", p, workers)
	}
}
