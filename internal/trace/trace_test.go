package trace

import (
	"bytes"
	"strings"
	"testing"

	"chainmon/internal/dds"
	"chainmon/internal/netsim"
	"chainmon/internal/sim"
	"chainmon/internal/vclock"
)

func TestRecorderPairsStartEnd(t *testing.T) {
	k := sim.NewKernel()
	d := dds.NewDomain(k, sim.NewRNG(1))
	d.KsoftirqCost = sim.Constant(0)
	d.DeliverCost = sim.Constant(0)
	d.Loopback = netsim.Config{BCRT: 10 * sim.Microsecond}
	ecu := d.NewECU("e", 2, vclock.Config{})
	ecu.Proc.CtxSwitch = sim.Constant(0)
	ecu.Proc.Wakeup = sim.Constant(0)
	src := ecu.NewNode("src", dds.PrioExecBase+1)
	worker := ecu.NewNode("worker", dds.PrioExecBase)

	inPub := src.NewPublisher("in")
	outPub := worker.NewPublisher("out")
	sub := worker.Subscribe("in",
		func(*dds.Sample) sim.Duration { return 3 * sim.Millisecond },
		func(s *dds.Sample) { outPub.Publish(s.Activation, nil, 0) })

	rec := NewRecorder(k)
	sr := rec.Segment("worker", 1)
	sr.StartOnDeliver(sub)
	sr.EndOnPublish(outPub)

	for i := 0; i < 5; i++ {
		act := uint64(i)
		k.At(sim.Time(i)*sim.Time(10*sim.Millisecond), func() { inPub.Publish(act, nil, 0) })
	}
	k.Run()

	tr := rec.Trace()
	st := tr.Segment("worker")
	if st == nil {
		t.Fatal("segment missing")
	}
	if len(st.Latencies) != 5 {
		t.Fatalf("latencies = %d, want 5", len(st.Latencies))
	}
	for i, l := range st.Latencies {
		if l != 3*sim.Millisecond {
			t.Errorf("latency[%d] = %v, want 3ms", i, l)
		}
		if st.Activations[i] != uint64(i) {
			t.Errorf("activation[%d] = %d", i, st.Activations[i])
		}
	}
	if st.Propagation != 1 {
		t.Error("propagation factor lost")
	}
	if tr.Segment("nope") != nil {
		t.Error("unknown segment should be nil")
	}
}

func TestRecorderIgnoresEndWithoutStart(t *testing.T) {
	k := sim.NewKernel()
	rec := NewRecorder(k)
	sr := rec.Segment("s", 0)
	sr.s.end(5) // never started
	sr.s.start(6)
	sr.s.end(6)
	sr.s.end(6) // duplicate end ignored
	tr := rec.Trace()
	if n := len(tr.Segment("s").Latencies); n != 1 {
		t.Fatalf("latencies = %d, want 1", n)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := &Trace{Segments: []*SegmentTrace{
		{Segment: "a", Activations: []uint64{0, 1}, Latencies: []sim.Duration{5, 7}, Propagation: 1},
		{Segment: "b", Activations: []uint64{0}, Latencies: []sim.Duration{9}},
	}}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Segments) != 2 || got.Segment("a").Latencies[1] != 7 || got.Segment("a").Propagation != 1 {
		t.Errorf("round trip lost data: %+v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := &Trace{Segments: []*SegmentTrace{
		{Segment: "a", Activations: []uint64{0, 2}, Latencies: []sim.Duration{5, 7}},
	}}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := got.Segment("a")
	if st == nil || len(st.Latencies) != 2 || st.Activations[1] != 2 || st.Latencies[1] != 7 {
		t.Errorf("round trip lost data: %+v", st)
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"segment,activation\n",                 // wrong arity (header mismatch tolerated, row fails)
		"a,notanumber,5\n",                     // bad activation
		"a,1,notanumber\n",                     // bad latency
		"segment,activation,latency_ns\na,1\n", // short row
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("expected error")
	}
}

func TestSampleAndInt64Conversion(t *testing.T) {
	st := &SegmentTrace{Latencies: []sim.Duration{sim.Millisecond, 3 * sim.Millisecond}}
	s := st.Sample()
	if s.Len() != 2 || s.Max() != float64(3*sim.Millisecond) {
		t.Error("sample conversion wrong")
	}
	v := st.LatenciesInt64()
	if v[0] != int64(sim.Millisecond) {
		t.Error("int64 conversion wrong")
	}
}

func TestRemoteModeRecordsRebasedLatency(t *testing.T) {
	k := sim.NewKernel()
	rec := NewRecorder(k)
	sr := rec.Segment("rem", 1).RemoteMode(100 * sim.Millisecond)
	// Starts (publications) at t=0 and t=100ms+5ms (5ms activation
	// jitter); ends (receptions) 2ms after each start.
	k.At(0, func() { sr.s.start(0) })
	k.At(sim.Time(2*sim.Millisecond), func() { sr.s.end(0) }) // no previous start: skipped
	k.At(sim.Time(105*sim.Millisecond), func() { sr.s.start(1) })
	k.At(sim.Time(107*sim.Millisecond), func() { sr.s.end(1) })
	k.Run()
	tr := rec.Trace()
	st := tr.Segment("rem")
	if len(st.Latencies) != 1 {
		t.Fatalf("latencies = %d, want 1 (activation 0 has no rebase anchor)", len(st.Latencies))
	}
	// end(1) − (start(0) + P) = 107ms − 100ms = 7ms: the 5ms activation
	// jitter plus the 2ms transport are both charged to the segment, as
	// the synchronization-based monitor will measure it.
	if st.Latencies[0] != 7*sim.Millisecond {
		t.Errorf("rebased latency = %v, want 7ms", st.Latencies[0])
	}
}

func TestStartOnPublishRecords(t *testing.T) {
	k := sim.NewKernel()
	d := dds.NewDomain(k, sim.NewRNG(1))
	d.KsoftirqCost = sim.Constant(0)
	d.DeliverCost = sim.Constant(0)
	d.Loopback = netsim.Config{BCRT: 5 * sim.Millisecond}
	ecu := d.NewECU("e", 2, vclock.Config{})
	ecu.Proc.CtxSwitch = sim.Constant(0)
	ecu.Proc.Wakeup = sim.Constant(0)
	src := ecu.NewNode("src", dds.PrioExecBase+1)
	dst := ecu.NewNode("dst", dds.PrioExecBase)
	pub := src.NewPublisher("t")
	sub := dst.Subscribe("t", nil, nil)

	rec := NewRecorder(k)
	sr := rec.Segment("hop", 1)
	sr.StartOnPublish(pub)
	sr.EndOnDeliver(sub)
	k.At(0, func() { pub.Publish(0, nil, 0) })
	k.Run()
	st := rec.Trace().Segment("hop")
	if len(st.Latencies) != 1 || st.Latencies[0] != 5*sim.Millisecond {
		t.Errorf("latencies = %v, want [5ms]", st.Latencies)
	}
}
