package trace

import (
	"fmt"
	"io"
	"time"

	"chainmon/internal/telemetry"
)

// DiffThresholds configures when a latency delta between two trace reports
// counts as a regression. A quantile regresses when
//
//	new > old + max(AbsNS, RelFrac·old)
//
// — the absolute floor keeps microsecond-scale noise on fast hops from
// tripping the relative test, and the relative term scales with slow hops.
// A segment's miss fraction regresses when it grows by more than MissFrac.
type DiffThresholds struct {
	// RelFrac is the allowed relative growth per quantile (default 0.10).
	RelFrac float64
	// AbsNS is the absolute growth floor per quantile (default 1ms).
	AbsNS time.Duration
	// MissFrac is the allowed miss-fraction growth per segment
	// (default 0.01).
	MissFrac float64
}

// DefaultDiffThresholds returns the default regression thresholds.
func DefaultDiffThresholds() DiffThresholds {
	return DiffThresholds{RelFrac: 0.10, AbsNS: time.Millisecond, MissFrac: 0.01}
}

// withDefaults fills zero fields so a partially configured threshold set
// (one flag overridden on the command line) keeps the documented defaults.
func (th DiffThresholds) withDefaults() DiffThresholds {
	d := DefaultDiffThresholds()
	if th.RelFrac > 0 {
		d.RelFrac = th.RelFrac
	}
	if th.AbsNS > 0 {
		d.AbsNS = th.AbsNS
	}
	if th.MissFrac > 0 {
		d.MissFrac = th.MissFrac
	}
	return d
}

// StatDelta is one compared quantile: a (scope or segment, metric, quantile)
// cell of the old and new reports.
type StatDelta struct {
	// Where names the compared population, e.g. "scope front/end-to-end" or
	// "segment camera-objects/latency".
	Where string
	// Quantile is "p50", "p95", "p99" or "max".
	Quantile  string
	Old, New  time.Duration
	Regressed bool
}

// MissDelta is one segment's verdict-miss-fraction comparison.
type MissDelta struct {
	Segment   string
	Old, New  float64
	Regressed bool
}

// ReportDiff is the comparison of two trace reports built from CHMTRC01
// logs of the same scenario — the offline regression gate.
type ReportDiff struct {
	Thresholds DiffThresholds
	Deltas     []StatDelta
	Misses     []MissDelta
	// OnlyOld and OnlyNew name populations present in just one report
	// (renamed segments, added hops); they never count as regressions but
	// are listed so a silently vanished chain is visible.
	OnlyOld, OnlyNew []string
}

// DiffReports compares two reports cell by cell. Zero-valued thresholds
// select the defaults.
func DiffReports(oldRep, newRep *telemetry.Report, th DiffThresholds) *ReportDiff {
	d := &ReportDiff{Thresholds: th.withDefaults()}

	oldScopes := map[string]*telemetry.ScopeReport{}
	for _, sc := range oldRep.Scopes {
		oldScopes[sc.Scope] = sc
	}
	newScopes := map[string]*telemetry.ScopeReport{}
	for _, sc := range newRep.Scopes {
		newScopes[sc.Scope] = sc
	}
	for _, sc := range oldRep.Scopes {
		if _, ok := newScopes[sc.Scope]; !ok {
			d.OnlyOld = append(d.OnlyOld, "scope "+sc.Scope)
		}
	}
	for _, sc := range newRep.Scopes {
		oldSc, ok := oldScopes[sc.Scope]
		if !ok {
			d.OnlyNew = append(d.OnlyNew, "scope "+sc.Scope)
			continue
		}
		d.compareStat("scope "+sc.Scope+"/end-to-end", oldSc.EndToEnd, sc.EndToEnd)
		oldHops := map[string]*telemetry.HopStat{}
		for _, h := range oldSc.Hops {
			oldHops[h.Name] = h
		}
		newHops := map[string]bool{}
		for _, h := range sc.Hops {
			newHops[h.Name] = true
			oldHop, ok := oldHops[h.Name]
			if !ok {
				d.OnlyNew = append(d.OnlyNew, "scope "+sc.Scope+"/hop "+h.Name)
				continue
			}
			d.compareStat("scope "+sc.Scope+"/hop "+h.Name, *oldHop, *h)
		}
		for _, h := range oldSc.Hops {
			if !newHops[h.Name] {
				d.OnlyOld = append(d.OnlyOld, "scope "+sc.Scope+"/hop "+h.Name)
			}
		}
	}

	oldSegs := map[string]*telemetry.SegmentReport{}
	for _, s := range oldRep.Segments {
		oldSegs[s.Name] = s
	}
	newSegs := map[string]bool{}
	for _, s := range newRep.Segments {
		newSegs[s.Name] = true
		oldSeg, ok := oldSegs[s.Name]
		if !ok {
			d.OnlyNew = append(d.OnlyNew, "segment "+s.Name)
			continue
		}
		d.compareStat("segment "+s.Name+"/latency", oldSeg.Latency, s.Latency)
		oldFrac := missFraction(oldSeg)
		newFrac := missFraction(s)
		d.Misses = append(d.Misses, MissDelta{
			Segment:   s.Name,
			Old:       oldFrac,
			New:       newFrac,
			Regressed: newFrac > oldFrac+d.Thresholds.MissFrac,
		})
	}
	for _, s := range oldRep.Segments {
		if !newSegs[s.Name] {
			d.OnlyOld = append(d.OnlyOld, "segment "+s.Name)
		}
	}
	return d
}

// compareStat emits the four quantile deltas of one population. Populations
// with no samples on either side produce no rows.
func (d *ReportDiff) compareStat(where string, oldSt, newSt telemetry.HopStat) {
	if oldSt.Count == 0 && newSt.Count == 0 {
		return
	}
	for _, q := range []struct {
		name     string
		old, new time.Duration
	}{
		{"p50", oldSt.P50, newSt.P50},
		{"p95", oldSt.P95, newSt.P95},
		{"p99", oldSt.P99, newSt.P99},
		{"max", oldSt.Max, newSt.Max},
	} {
		allow := time.Duration(d.Thresholds.RelFrac * float64(q.old))
		if allow < d.Thresholds.AbsNS {
			allow = d.Thresholds.AbsNS
		}
		d.Deltas = append(d.Deltas, StatDelta{
			Where:     where,
			Quantile:  q.name,
			Old:       q.old,
			New:       q.new,
			Regressed: q.new > q.old+allow,
		})
	}
}

func missFraction(s *telemetry.SegmentReport) float64 {
	total := s.OK + s.Recovered + s.Missed
	if total == 0 {
		return 0
	}
	return float64(s.Missed) / float64(total)
}

// Regressions returns one line per regressed cell, empty when the new
// report is within thresholds everywhere.
func (d *ReportDiff) Regressions() []string {
	var out []string
	for _, st := range d.Deltas {
		if st.Regressed {
			out = append(out, fmt.Sprintf("%s %s: %v -> %v", st.Where, st.Quantile, st.Old, st.New))
		}
	}
	for _, m := range d.Misses {
		if m.Regressed {
			out = append(out, fmt.Sprintf("segment %s miss fraction: %.4f -> %.4f", m.Segment, m.Old, m.New))
		}
	}
	return out
}

// Write renders the full delta table; regressed rows are marked with "!".
func (d *ReportDiff) Write(w io.Writer) {
	fmt.Fprintf(w, "trace diff (rel %.0f%%, abs %v, miss +%.2f)\n",
		d.Thresholds.RelFrac*100, d.Thresholds.AbsNS, d.Thresholds.MissFrac)
	last := ""
	for _, st := range d.Deltas {
		if st.Where != last {
			fmt.Fprintf(w, "%s\n", st.Where)
			last = st.Where
		}
		mark := " "
		if st.Regressed {
			mark = "!"
		}
		fmt.Fprintf(w, "  %s %-4s %-12v -> %-12v (%+v)\n", mark, st.Quantile, st.Old, st.New, st.New-st.Old)
	}
	if len(d.Misses) > 0 {
		fmt.Fprintf(w, "miss fractions\n")
		for _, m := range d.Misses {
			mark := " "
			if m.Regressed {
				mark = "!"
			}
			fmt.Fprintf(w, "  %s %-24s %.4f -> %.4f\n", mark, m.Segment, m.Old, m.New)
		}
	}
	for _, s := range d.OnlyOld {
		fmt.Fprintf(w, "only in old: %s\n", s)
	}
	for _, s := range d.OnlyNew {
		fmt.Fprintf(w, "only in new: %s\n", s)
	}
	if reg := d.Regressions(); len(reg) > 0 {
		fmt.Fprintf(w, "REGRESSION: %d cell(s) beyond thresholds\n", len(reg))
	} else {
		fmt.Fprintf(w, "no regression\n")
	}
}
