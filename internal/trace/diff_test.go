package trace

import (
	"strings"
	"testing"
	"time"

	"chainmon/internal/telemetry"
)

func sampleReport() *telemetry.Report {
	return &telemetry.Report{
		Timebase: "sim",
		Events:   100,
		Scopes: []*telemetry.ScopeReport{
			{
				Scope: "front",
				Flows: 50,
				EndToEnd: telemetry.HopStat{
					Name: "end-to-end", Count: 50,
					P50: 40 * time.Millisecond, P95: 55 * time.Millisecond,
					P99: 60 * time.Millisecond, Max: 70 * time.Millisecond,
				},
				Hops: []*telemetry.HopStat{
					{Name: "dds-send→dds-recv", Count: 50,
						P50: 5 * time.Millisecond, P95: 8 * time.Millisecond,
						P99: 9 * time.Millisecond, Max: 11 * time.Millisecond},
				},
			},
		},
		Segments: []*telemetry.SegmentReport{
			{
				Name: "camera-objects", OK: 95, Recovered: 3, Missed: 2,
				Latency: telemetry.HopStat{
					Name: "latency", Count: 98,
					P50: 18 * time.Millisecond, P95: 22 * time.Millisecond,
					P99: 24 * time.Millisecond, Max: 28 * time.Millisecond,
				},
			},
		},
	}
}

// TestDiffIdenticalReports pins the self-diff acceptance criterion: a report
// diffed against itself has zero regressions and says so.
func TestDiffIdenticalReports(t *testing.T) {
	rep := sampleReport()
	d := DiffReports(rep, rep, DiffThresholds{})
	if reg := d.Regressions(); len(reg) != 0 {
		t.Fatalf("self-diff regressed: %v", reg)
	}
	if len(d.Deltas) == 0 {
		t.Fatal("self-diff compared nothing")
	}
	for _, st := range d.Deltas {
		if st.Old != st.New {
			t.Errorf("%s %s: old %v != new %v in self-diff", st.Where, st.Quantile, st.Old, st.New)
		}
	}
	var b strings.Builder
	d.Write(&b)
	if !strings.Contains(b.String(), "no regression") {
		t.Errorf("output missing verdict:\n%s", b.String())
	}
}

// TestDiffFlagsRegression perturbs the new report beyond the relative
// threshold on one quantile and the miss budget on the segment; exactly
// those cells must regress.
func TestDiffFlagsRegression(t *testing.T) {
	oldRep, newRep := sampleReport(), sampleReport()
	newRep.Scopes[0].EndToEnd.P95 = 70 * time.Millisecond // +27% > 10%
	newRep.Segments[0].OK = 80
	newRep.Segments[0].Missed = 17 // miss fraction 0.02 -> 0.17

	d := DiffReports(oldRep, newRep, DiffThresholds{})
	reg := d.Regressions()
	if len(reg) != 2 {
		t.Fatalf("regressions = %v, want exactly the perturbed p95 and the miss fraction", reg)
	}
	if !strings.Contains(reg[0], "front/end-to-end p95") {
		t.Errorf("first regression = %q", reg[0])
	}
	if !strings.Contains(reg[1], "camera-objects miss fraction") {
		t.Errorf("second regression = %q", reg[1])
	}
	var b strings.Builder
	d.Write(&b)
	if !strings.Contains(b.String(), "REGRESSION: 2") {
		t.Errorf("output missing verdict:\n%s", b.String())
	}
}

// TestDiffAbsoluteFloor: growth below the absolute floor never regresses,
// however large it is relatively — sub-millisecond hops need the floor to
// stay quiet under scheduler noise.
func TestDiffAbsoluteFloor(t *testing.T) {
	oldRep, newRep := sampleReport(), sampleReport()
	oldRep.Scopes[0].Hops[0].P50 = 100 * time.Microsecond
	newRep.Scopes[0].Hops[0].P50 = 900 * time.Microsecond // 9x, but +800µs < 1ms floor
	d := DiffReports(oldRep, newRep, DiffThresholds{})
	if reg := d.Regressions(); len(reg) != 0 {
		t.Errorf("sub-floor growth regressed: %v", reg)
	}

	// Tightening the floor flags it.
	d = DiffReports(oldRep, newRep, DiffThresholds{AbsNS: 100 * time.Microsecond})
	if reg := d.Regressions(); len(reg) != 1 {
		t.Errorf("regressions with 100µs floor = %v, want 1", reg)
	}
}

// TestDiffUnmatchedPopulations: scopes/segments present on one side only are
// reported but never regress.
func TestDiffUnmatchedPopulations(t *testing.T) {
	oldRep, newRep := sampleReport(), sampleReport()
	newRep.Segments = append(newRep.Segments, &telemetry.SegmentReport{Name: "new-seg", Missed: 100})
	oldRep.Scopes = append(oldRep.Scopes, &telemetry.ScopeReport{Scope: "gone"})
	d := DiffReports(oldRep, newRep, DiffThresholds{})
	if reg := d.Regressions(); len(reg) != 0 {
		t.Errorf("unmatched populations regressed: %v", reg)
	}
	if len(d.OnlyNew) != 1 || d.OnlyNew[0] != "segment new-seg" {
		t.Errorf("OnlyNew = %v", d.OnlyNew)
	}
	if len(d.OnlyOld) != 1 || d.OnlyOld[0] != "scope gone" {
		t.Errorf("OnlyOld = %v", d.OnlyOld)
	}
}

// TestDiffThresholdDefaults: a partially set threshold struct keeps defaults
// for the rest.
func TestDiffThresholdDefaults(t *testing.T) {
	th := DiffThresholds{RelFrac: 0.5}.withDefaults()
	if th.RelFrac != 0.5 || th.AbsNS != time.Millisecond || th.MissFrac != 0.01 {
		t.Errorf("withDefaults = %+v", th)
	}
}
