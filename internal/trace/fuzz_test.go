package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the CSV parser and
// that anything it accepts round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("segment,activation,latency_ns\na,1,5\n")
	f.Add("a,0,100\na,1,200\nb,0,300\n")
	f.Add("")
	f.Add("x,,\n")
	f.Add("a,18446744073709551615,9223372036854775807\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("serialized trace failed to parse: %v", err)
		}
		if len(back.Segments) != len(tr.Segments) {
			t.Fatalf("round trip changed segment count %d → %d", len(tr.Segments), len(back.Segments))
		}
	})
}

// FuzzReadJSON checks the JSON path never panics.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"segments":[{"segment":"a","activations":[0],"latencies_ns":[5],"propagation":1}]}`)
	f.Add(`{}`)
	f.Add(`{"segments":null}`)
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
	})
}
