// Package trace records segment latencies from unmonitored runs (the
// paper's measurement-based approach uses LTTng for this) and carries them
// to the budgeting step: recorded traces L^{s_i} are extended by the
// exception-handling WCRT d_ex and fed into the constraint satisfaction
// problem of Section III-C. Traces can be exported and re-imported as JSON
// or CSV.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"chainmon/internal/dds"
	"chainmon/internal/sim"
	"chainmon/internal/stats"
)

// SegmentTrace is the recorded latency series of one segment, ordered by
// activation index. Missing activations (events that never paired) are
// excluded; Activations carries the original indices.
type SegmentTrace struct {
	Segment     string         `json:"segment"`
	Activations []uint64       `json:"activations"`
	Latencies   []sim.Duration `json:"latencies_ns"`
	Propagation int            `json:"propagation"` // p_l ∈ {0,1} for budgeting
}

// Sample returns the latencies as a statistics sample.
func (st *SegmentTrace) Sample() *stats.Sample {
	s := stats.NewSample()
	for _, l := range st.Latencies {
		s.AddDuration(l)
	}
	return s
}

// LatenciesInt64 returns the latencies in nanoseconds for the budget solver.
func (st *SegmentTrace) LatenciesInt64() []int64 {
	out := make([]int64, len(st.Latencies))
	for i, l := range st.Latencies {
		out[i] = int64(l)
	}
	return out
}

// Trace is a set of segment traces from one recording run.
type Trace struct {
	Segments []*SegmentTrace `json:"segments"`
}

// Segment returns the trace of the named segment, or nil.
func (t *Trace) Segment(name string) *SegmentTrace {
	for _, s := range t.Segments {
		if s.Segment == name {
			return s
		}
	}
	return nil
}

// WriteJSON serializes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON deserializes a trace.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	return &t, nil
}

// WriteCSV writes one row per (segment, activation, latency).
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"segment", "activation", "latency_ns"}); err != nil {
		return err
	}
	for _, s := range t.Segments {
		for i, l := range s.Latencies {
			rec := []string{s.Segment, strconv.FormatUint(s.Activations[i], 10), strconv.FormatInt(int64(l), 10)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the WriteCSV format.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	byName := make(map[string]*SegmentTrace)
	var order []string
	for i, row := range rows {
		if i == 0 && len(row) == 3 && row[0] == "segment" {
			continue // header
		}
		if len(row) != 3 {
			return nil, fmt.Errorf("trace: CSV row %d has %d fields, want 3", i, len(row))
		}
		act, err := strconv.ParseUint(row[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV row %d activation: %w", i, err)
		}
		lat, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV row %d latency: %w", i, err)
		}
		st, ok := byName[row[0]]
		if !ok {
			st = &SegmentTrace{Segment: row[0]}
			byName[row[0]] = st
			order = append(order, row[0])
		}
		st.Activations = append(st.Activations, act)
		st.Latencies = append(st.Latencies, sim.Duration(lat))
	}
	t := &Trace{}
	for _, name := range order {
		t.Segments = append(t.Segments, byName[name])
	}
	return t, nil
}

// Recorder observes communication events of an unmonitored system run and
// pairs start/end events into segment latencies.
type Recorder struct {
	k    *sim.Kernel
	segs []*segRecorder
}

// NewRecorder creates a recorder on the kernel.
func NewRecorder(k *sim.Kernel) *Recorder {
	return &Recorder{k: k}
}

type segRecorder struct {
	rec         *Recorder
	name        string
	propagation int
	starts      map[uint64]sim.Time
	latencies   map[uint64]sim.Duration
	// remotePeriod, when non-zero, switches the segment to the effective
	// remote-monitoring latency: the paper's synchronization-based monitor
	// programs the deadline for activation n from the previous start
	// timestamp, t_st,n-1 + P + d_mon, so the quantity d_mon must bound is
	// end(n) − (start(n−1) + P) — which includes the activation jitter J^a
	// — rather than end(n) − start(n).
	remotePeriod sim.Duration
}

// Segment declares a segment to record. propagation is the p_l factor used
// later by the budget solver (1 = misses propagate, 0 = perfect recovery).
func (r *Recorder) Segment(name string, propagation int) *SegmentRecorder {
	s := &segRecorder{
		rec:         r,
		name:        name,
		propagation: propagation,
		starts:      make(map[uint64]sim.Time),
		latencies:   make(map[uint64]sim.Duration),
	}
	r.segs = append(r.segs, s)
	return &SegmentRecorder{s}
}

// SegmentRecorder wires one segment's start and end events.
type SegmentRecorder struct {
	s *segRecorder
}

// RemoteMode records the segment the way the synchronization-based remote
// monitor will measure it: latency(n) = end(n) − (start(n−1) + period).
// Deadlines budgeted from such a trace are directly deployable as the
// monitor's d_mon (up to the clock synchronization error ε).
func (sr *SegmentRecorder) RemoteMode(period sim.Duration) *SegmentRecorder {
	sr.s.remotePeriod = period
	return sr
}

// StartOnDeliver records receptions at the subscription as start events.
func (sr *SegmentRecorder) StartOnDeliver(sub *dds.Subscription) {
	sub.OnDeliver = append(sub.OnDeliver, func(smp *dds.Sample) bool {
		sr.s.start(smp.Activation)
		return true
	})
}

// StartOnPublish records publications as start events (remote segments).
func (sr *SegmentRecorder) StartOnPublish(pub *dds.Publisher) {
	pub.OnPublish = append(pub.OnPublish, func(smp *dds.Sample) {
		sr.s.start(smp.Activation)
	})
}

// StartOnDevicePublish records a sensor device's publications as start
// events — used for end-to-end chain latencies, which begin at the sensor.
func (sr *SegmentRecorder) StartOnDevicePublish(dev *dds.Device) {
	dev.OnPublish = append(dev.OnPublish, func(smp *dds.Sample) {
		sr.s.start(smp.Activation)
	})
}

// EndOnDeliver records receptions as end events.
func (sr *SegmentRecorder) EndOnDeliver(sub *dds.Subscription) {
	sub.OnDeliver = append(sub.OnDeliver, func(smp *dds.Sample) bool {
		sr.s.end(smp.Activation)
		return true
	})
}

// EndOnPublish records publications as end events (local segments).
func (sr *SegmentRecorder) EndOnPublish(pub *dds.Publisher) {
	pub.OnPublish = append(pub.OnPublish, func(smp *dds.Sample) {
		sr.s.end(smp.Activation)
	})
}

func (s *segRecorder) start(act uint64) {
	if _, ok := s.starts[act]; !ok {
		s.starts[act] = s.rec.k.Now()
	}
}

func (s *segRecorder) end(act uint64) {
	if _, done := s.latencies[act]; done {
		return
	}
	if s.remotePeriod > 0 {
		if act == 0 {
			return // no previous start to rebase from
		}
		prev, ok := s.starts[act-1]
		if !ok {
			return
		}
		s.latencies[act] = s.rec.k.Now().Sub(prev.Add(s.remotePeriod))
		return
	}
	st, ok := s.starts[act]
	if !ok {
		return // end without start: outside the recording window
	}
	s.latencies[act] = s.rec.k.Now().Sub(st)
}

// Trace assembles the recorded latencies, ordered by activation.
func (r *Recorder) Trace() *Trace {
	t := &Trace{}
	for _, s := range r.segs {
		st := &SegmentTrace{Segment: s.name, Propagation: s.propagation}
		acts := make([]uint64, 0, len(s.latencies))
		for a := range s.latencies {
			acts = append(acts, a)
		}
		sort.Slice(acts, func(i, j int) bool { return acts[i] < acts[j] })
		for _, a := range acts {
			st.Activations = append(st.Activations, a)
			st.Latencies = append(st.Latencies, s.latencies[a])
		}
		t.Segments = append(t.Segments, st)
	}
	return t
}
