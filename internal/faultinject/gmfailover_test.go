package faultinject

import (
	"fmt"
	"testing"

	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
	"chainmon/internal/vclock"
)

// TestGMFailoverServoDecay pins the fault's shape on a bare clock: the
// injected error is |Offset| right after the step, decays monotonically as
// the piecewise servo slews the clock back, never exceeds the step (the
// oracle band), and is exactly zero after the window.
func TestGMFailoverServoDecay(t *testing.T) {
	k := sim.NewKernel()
	c := vclock.New(k, sim.NewRNG(1), "ecu1", vclock.Config{})
	spec := Spec{
		Type: TypeGMFailover, Clock: "ecu1",
		From: Duration(sim.Second), Until: Duration(5 * sim.Second),
		Offset: Duration(20 * sim.Millisecond),
	}
	tgt := Targets{Kernel: k, Clocks: map[string]*vclock.Clock{"ecu1": c}}
	if err := NewInjector(sim.NewRNG(1)).Apply(Campaign{Name: "gm", Faults: []Spec{spec}}, tgt); err != nil {
		t.Fatal(err)
	}

	var offsets []sim.Duration
	// Sample just after the step, at each stage boundary, and after Until.
	for _, at := range []sim.Duration{
		sim.Second + sim.Millisecond, 2 * sim.Second, 3 * sim.Second,
		4 * sim.Second, 5*sim.Second - sim.Millisecond, 5*sim.Second + sim.Millisecond,
	} {
		k.AtPriority(sim.Time(at), -1000, func() {
			offsets = append(offsets, c.FaultOffset())
		})
	}
	k.Run()

	if len(offsets) != 6 {
		t.Fatalf("sampled %d offsets, want 6", len(offsets))
	}
	step := 20 * sim.Millisecond
	if offsets[0] < step*9/10 || offsets[0] > step {
		t.Errorf("offset just after the step = %v, want ≈%v", offsets[0], step)
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] > offsets[i-1] {
			t.Errorf("offset grew from %v to %v at sample %d; the servo must only slew toward sync",
				offsets[i-1], offsets[i], i)
		}
		if offsets[i] > step {
			t.Errorf("offset %v at sample %d exceeds the step %v (the oracle band)", offsets[i], i, step)
		}
	}
	if got := offsets[len(offsets)-1]; got != 0 {
		t.Errorf("offset after the window = %v, want 0 (fully re-converged)", got)
	}
}

// TestGMFailoverCampaign cross-checks the grandmaster failover against the
// ground-truth oracle: the 25 ms step trips the lidar→ECU1 remote monitors
// until the servo slews the error below the 20 ms remote deadline, and no
// verdict may flip against the widened band.
func TestGMFailoverCampaign(t *testing.T) {
	e := GMFailoverEntry()
	for _, seed := range []int64{11, 22, 33} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := runCampaign(t, seed, e.Campaign, monitor.VariantMonitorThread)
			if !run.Report.Ok() {
				t.Errorf("oracle invariants violated under grandmaster failover:\n%s", run.Report.Summary())
			}
			checkSanity(t, e, run)
			// Only the first servo stage (1.5 s ≈ 15 frames) carries an error
			// beyond the deadline; detections must be transient, not a storm
			// across the whole 6 s window.
			front := segReport(t, run.Report, perception.SegFrontRemote)
			if front.Exception == 0 || front.Exception > 40 {
				t.Errorf("gm-failover: expected a transient burst of detections on %s, got %+v", front.Name, front)
			}
		})
	}
}

// TestGMFailoverValidation pins the spec-level checks of the new fault type.
func TestGMFailoverValidation(t *testing.T) {
	base := Spec{Type: TypeGMFailover, Clock: "ecu1",
		From: Duration(sim.Second), Until: Duration(5 * sim.Second),
		Offset: Duration(25 * sim.Millisecond)}
	if err := base.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for name, mut := range map[string]func(*Spec){
		"missing clock":    func(s *Spec) { s.Clock = "" },
		"zero offset":      func(s *Spec) { s.Offset = 0 },
		"unbounded window": func(s *Spec) { s.Until = 0 },
	} {
		s := base
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
	// The oracle band widens by the step magnitude.
	c := Campaign{Name: "x", Faults: []Spec{base}}
	if got := c.MaxClockError(0); got != 25*sim.Millisecond {
		t.Errorf("MaxClockError = %v, want %v", got, 25*sim.Millisecond)
	}
}
