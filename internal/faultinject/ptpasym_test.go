package faultinject

import (
	"fmt"
	"testing"

	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
)

// TestPTPAsymCampaign cross-checks the asymmetric PTP offset against the
// ground-truth oracle: ECU1 steps back and ECU2 steps forward by 12 ms each,
// so inter-ECU timestamps look 24 ms late — beyond the 20 ms remote deadline
// — while each individual clock stays within the oracle's widened band. The
// fused remote monitor must fire throughout the window; the lidar→ECU1
// segments see the opposite sign (samples look early) and must stay quiet;
// and no verdict may flip against the ground truth.
func TestPTPAsymCampaign(t *testing.T) {
	e := PTPAsymEntry()
	for _, seed := range []int64{11, 22, 33} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := runCampaign(t, seed, e.Campaign, monitor.VariantMonitorThread)
			if !run.Report.Ok() {
				t.Errorf("oracle invariants violated under asymmetric PTP offset:\n%s", run.Report.Summary())
			}
			checkSanity(t, e, run)
			// The fault window is 6 s = 60 frames; nearly all of them must
			// trip the fused remote monitor.
			fused := segReport(t, run.Report, perception.SegFusedRemote)
			if fused.Exception < 40 {
				t.Errorf("ptp-asym: expected ≥40 detections on %s, got %+v", fused.Name, fused)
			}
			// The lidar→ECU1 direction sees timestamps that look early, not
			// late: the front remote monitor must not storm.
			front := segReport(t, run.Report, perception.SegFrontRemote)
			if front.Exception > front.Checked/10 {
				t.Errorf("ptp-asym: front remote should look early, got %d exceptions of %d checked",
					front.Exception, front.Checked)
			}
		})
	}
}

// TestPTPAsymValidation pins the spec-level checks of the new fault type.
func TestPTPAsymValidation(t *testing.T) {
	base := Spec{Type: TypePTPAsym, Clock: "ecu1", ClockPeer: "ecu2", Offset: Duration(12 * sim.Millisecond)}
	if err := base.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for name, mut := range map[string]func(*Spec){
		"missing clock":      func(s *Spec) { s.Clock = "" },
		"missing clock_peer": func(s *Spec) { s.ClockPeer = "" },
		"same clocks":        func(s *Spec) { s.ClockPeer = s.Clock },
		"zero offset":        func(s *Spec) { s.Offset = 0 },
	} {
		s := base
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
	// The oracle band widens by the per-clock step magnitude.
	c := Campaign{Name: "x", Faults: []Spec{base}}
	if got := c.MaxClockError(0); got != 12*sim.Millisecond {
		t.Errorf("MaxClockError = %v, want %v", got, 12*sim.Millisecond)
	}
}
