package faultinject

import (
	"encoding/json"
	"strings"
	"testing"

	"chainmon/internal/sim"
)

const exampleCampaignJSON = `{
  "name": "example",
  "faults": [
    {"type": "burst-loss", "from": "2s", "until": "10s",
     "link_from": "ecu1", "link_to": "ecu2",
     "p_enter_burst": 0.05, "p_exit_burst": 0.3},
    {"type": "latency-spike", "from": "1s",
     "link_from": "ecu1", "link_to": "ecu2",
     "delay": "30ms", "delay_jitter": "5ms"},
    {"type": "clock-step", "from": "3s", "until": "9s",
     "clock": "ecu1", "offset": "25ms"},
    {"type": "clock-drift", "from": "2s", "until": "10s",
     "clock": "front-lidar", "drift_ppm": 500},
    {"type": "overload", "from": "4s", "until": "7s",
     "ecu": "ecu2", "utilization": 0.9, "burst_period": "2ms", "threads": 3},
    {"type": "sensor-dropout", "from": "5s", "until": "6.5s",
     "device": "front-lidar", "drop_prob": 1}
  ]
}`

func TestLoadCampaign(t *testing.T) {
	c, err := LoadCampaign(strings.NewReader(exampleCampaignJSON))
	if err != nil {
		t.Fatalf("LoadCampaign: %v", err)
	}
	if c.Name != "example" || len(c.Faults) != 6 {
		t.Fatalf("got name %q, %d faults", c.Name, len(c.Faults))
	}
	if got := sim.Duration(c.Faults[1].Delay); got != 30*sim.Millisecond {
		t.Errorf("delay = %v, want 30ms", got)
	}
	if from, until := c.Faults[0].window(); from != sim.Time(2*sim.Second) || until != sim.Time(10*sim.Second) {
		t.Errorf("window = [%v, %v)", from, until)
	}
	// A zero Until keeps the fault active forever.
	if _, until := c.Faults[1].window(); until != sim.MaxTime {
		t.Errorf("open window ends at %v, want MaxTime", until)
	}
}

// TestLoadCampaignRoundTrip pins the JSON encoding: marshalling a loaded
// campaign and loading it again must reproduce it.
func TestLoadCampaignRoundTrip(t *testing.T) {
	c, err := LoadCampaign(strings.NewReader(exampleCampaignJSON))
	if err != nil {
		t.Fatalf("LoadCampaign: %v", err)
	}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	c2, err := LoadCampaign(strings.NewReader(string(b)))
	if err != nil {
		t.Fatalf("reload: %v\n%s", err, b)
	}
	if len(c2.Faults) != len(c.Faults) {
		t.Fatalf("round trip lost faults: %d != %d", len(c2.Faults), len(c.Faults))
	}
	for i := range c.Faults {
		if c.Faults[i] != c2.Faults[i] {
			t.Errorf("fault %d changed: %+v != %+v", i, c.Faults[i], c2.Faults[i])
		}
	}
}

// TestLoadCampaignUnknownField ensures typo'd keys fail loudly instead of
// silently keeping defaults.
func TestLoadCampaignUnknownField(t *testing.T) {
	in := `{"name": "typo", "faults": [
	  {"type": "latency-spike", "link_from": "a", "link_to": "b", "delay": "5ms", "delay_jiter": "1ms"}
	]}`
	if _, err := LoadCampaign(strings.NewReader(in)); err == nil {
		t.Fatal("misspelled field was accepted")
	} else if !strings.Contains(err.Error(), "delay_jiter") {
		t.Fatalf("error does not name the unknown field: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Type: "volcano"},
		{Type: TypeBurstLoss, LinkFrom: "a"},
		{Type: TypeBurstLoss, LinkFrom: "a", LinkTo: "b"}, // can never lose
		{Type: TypeBurstLoss, LinkFrom: "a", LinkTo: "b", PEnterBurst: 1.5},
		{Type: TypeLatencySpike, LinkFrom: "a", LinkTo: "b"},
		{Type: TypeLatencySpike, LinkFrom: "a", LinkTo: "b", Delay: Duration(-sim.Millisecond), DelayJitter: Duration(sim.Millisecond)},
		{Type: TypeClockStep, Clock: "c"},
		{Type: TypeClockDrift, Clock: "c"},
		{Type: TypeOverload, ECU: "e"},
		{Type: TypeOverload, ECU: "e", Utilization: 1.5},
		{Type: TypeSensorDropout, Device: "d", DropProb: 2},
		{Type: TypeSensorDropout},
		{Type: TypeClockStep, Clock: "c", Offset: Duration(sim.Millisecond),
			From: Duration(2 * sim.Second), Until: Duration(sim.Second)}, // empty window
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v) validated", i, s)
		}
	}
	good := []Spec{
		{Type: TypeBurstLoss, LinkFrom: "a", LinkTo: "b", PEnterBurst: 0.1, PExitBurst: 0.5},
		{Type: TypeBurstLoss, LinkFrom: "a", LinkTo: "b", LossGood: 0.01},
		{Type: TypeLatencySpike, LinkFrom: "a", LinkTo: "b", DelayJitter: Duration(sim.Millisecond)},
		{Type: TypeClockStep, Clock: "c", Offset: Duration(-sim.Millisecond)},
		{Type: TypeClockDrift, Clock: "c", DriftPPM: -200},
		{Type: TypeOverload, ECU: "e", Utilization: 1},
		{Type: TypeSensorDropout, Device: "d"}, // drop_prob defaults to 1
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %d rejected: %v", i, err)
		}
	}
}

func TestMaxClockError(t *testing.T) {
	c := Campaign{Faults: []Spec{
		{Type: TypeClockStep, Clock: "a", Offset: Duration(-2 * sim.Millisecond)},
		{Type: TypeClockDrift, Clock: "b", DriftPPM: 500,
			From: Duration(2 * sim.Second), Until: Duration(6 * sim.Second)},
	}}
	// Drift: 500 ppm over a 4 s window = 2 ms; tie with the |−2 ms| step.
	if got := c.MaxClockError(20 * sim.Second); got != 2*sim.Millisecond {
		t.Errorf("MaxClockError = %v, want 2ms", got)
	}
	// An unbounded drift window is limited by the run horizon.
	open := Campaign{Faults: []Spec{{Type: TypeClockDrift, Clock: "b", DriftPPM: 500}}}
	if got := open.MaxClockError(10 * sim.Second); got != 5*sim.Millisecond {
		t.Errorf("open-window MaxClockError = %v, want 5ms", got)
	}
}
