// Package faultinject is a seeded, deterministic fault-injection subsystem
// for the simulation kernel. It scripts *fault campaigns* — correlated
// disturbances the benign scenarios and the single i.i.d. loss knob cannot
// express — and pairs them with a ground-truth oracle (oracle.go) that
// recomputes every segment latency from kernel-side event records and
// cross-checks every monitor verdict.
//
// Supported fault types, each activatable over a virtual-time window:
//
//   - burst-loss: Gilbert-Elliott two-state packet loss on a netsim link
//     (correlated loss bursts, the adversarial case for §IV-B);
//   - latency-spike: additional response time on a netsim link (a congested
//     switch; arrivals stay periodic while every sample is late — the
//     inter-arrival monitor's blind spot);
//   - clock-step / clock-drift: PTP faults on a vclock (a mis-ranked
//     grandmaster stepping the clock, or an unmodelled frequency error);
//   - overload: transient high-priority interference threads on a
//     sim.Processor (an ECU overloaded by a misbehaving service);
//   - sensor-dropout: suppressed activations of a dds.Device (a sensor
//     blanking out for an interval);
//   - reorder: individual messages held back past later traffic on a netsim
//     link (a retransmitting switch port; arrivals leave FIFO order, the
//     stale-sample case for the remote monitor's activation matching);
//   - duplicate: messages delivered twice on a netsim link (a DDS reliable-QoS
//     retransmission racing its own ack — the late copy must be discarded);
//   - ptp-asym: an asymmetric PTP offset, stepping two clocks in opposite
//     directions (an asymmetric-path delay error splitting the correction
//     between master and slave — the relative error across the link is twice
//     the per-clock offset, the worst case for remote timestamping);
//   - executor-starvation: one node's executor thread suspended for the
//     window (a lost lock or hung blocking call) while the rest of the ECU
//     stays schedulable — the monitor must convert the stalled callbacks
//     into per-activation exceptions even though the ECU shows no overload;
//   - gm-failover: a grandmaster failover on a vclock — a step error at the
//     window start, then a PTP servo slewing the clock back into sync over
//     the window (piecewise-decaying drift), fully re-converged at the end.
//
// Campaigns are plain JSON so they can be stored next to scenarios and run
// from the CLI (cmd/chainmon -faults). All randomness is drawn from RNG
// streams derived from the campaign position, so runs are reproducible from
// the scenario seed alone.
package faultinject

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"chainmon/internal/sim"
)

// Duration marshals as a Go duration string ("100ms", "50µs"), matching the
// scenario schema convention.
type Duration sim.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("faultinject: duration must be a string like \"100ms\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("faultinject: parsing duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Fault type names of the Spec.Type field.
const (
	TypeBurstLoss     = "burst-loss"
	TypeLatencySpike  = "latency-spike"
	TypeClockStep     = "clock-step"
	TypeClockDrift    = "clock-drift"
	TypeOverload      = "overload"
	TypeSensorDropout = "sensor-dropout"
	TypeReorder       = "reorder"
	TypeDuplicate     = "duplicate"
	TypePTPAsym       = "ptp-asym"

	TypeExecutorStarvation = "executor-starvation"
	TypeGMFailover         = "gm-failover"
)

// Spec describes one fault. Type selects the fault; From/Until bound its
// active window in virtual time from simulation start (a zero Until keeps
// the fault active until the end of the run). The remaining fields
// parameterize the individual types; unused fields must stay zero.
type Spec struct {
	Type  string   `json:"type"`
	From  Duration `json:"from,omitempty"`
	Until Duration `json:"until,omitempty"`

	// Link endpoints (burst-loss, latency-spike): resource names as used by
	// dds.Domain.Link, e.g. "ecu1" → "ecu2" or "front-lidar" → "ecu1".
	LinkFrom string `json:"link_from,omitempty"`
	LinkTo   string `json:"link_to,omitempty"`
	// Clock is the clock owner (clock-step, clock-drift, ptp-asym): an ECU
	// or device name. ClockPeer is the second clock of a ptp-asym fault; it
	// is stepped by -Offset while Clock is stepped by +Offset.
	Clock     string `json:"clock,omitempty"`
	ClockPeer string `json:"clock_peer,omitempty"`
	// ECU is the overload target.
	ECU string `json:"ecu,omitempty"`
	// Device is the sensor-dropout target.
	Device string `json:"device,omitempty"`
	// Node is the executor-starvation target: a DDS node name whose
	// executor thread is suspended for the window.
	Node string `json:"node,omitempty"`

	// Gilbert-Elliott parameters (burst-loss). Each transmission first
	// performs the state transition, then samples loss in the current
	// state. LossBad defaults to 1 (every message in a burst is lost).
	PEnterBurst float64 `json:"p_enter_burst,omitempty"`
	PExitBurst  float64 `json:"p_exit_burst,omitempty"`
	LossGood    float64 `json:"loss_good,omitempty"`
	LossBad     float64 `json:"loss_bad,omitempty"`

	// Latency-spike parameters: every transmission in the window is delayed
	// by Delay plus a uniform sample from [0, DelayJitter].
	Delay       Duration `json:"delay,omitempty"`
	DelayJitter Duration `json:"delay_jitter,omitempty"`

	// Clock-fault parameters: Offset is the step injected at From (and
	// reverted at Until); DriftPPM is the injected frequency error active
	// within the window.
	Offset   Duration `json:"offset,omitempty"`
	DriftPPM float64  `json:"drift_ppm,omitempty"`

	// Overload parameters: Threads interference threads (default: one per
	// core) each enqueue Utilization×BurstPeriod of work every BurstPeriod
	// (default 2ms) at a priority above every executor and listener thread
	// but below the monitor thread.
	Utilization float64  `json:"utilization,omitempty"`
	BurstPeriod Duration `json:"burst_period,omitempty"`
	Threads     int      `json:"threads,omitempty"`

	// Sensor-dropout parameter: probability that an activation inside the
	// window is suppressed entirely. Defaults to 1 (a hard blackout).
	DropProb float64 `json:"drop_prob,omitempty"`

	// Reorder parameter: probability that a transmission inside the window is
	// held back by Delay (plus jitter), bypassing the link's FIFO floor. The
	// hold must exceed the inter-send gap for arrivals to actually swap.
	HoldProb float64 `json:"hold_prob,omitempty"`

	// Duplicate parameter: probability that a transmission inside the window
	// is delivered a second time, Delay (plus jitter) after the original.
	DupProb float64 `json:"dup_prob,omitempty"`
}

// window returns the active window as simulation times; a zero Until means
// "until the end of the run".
func (s *Spec) window() (from, until sim.Time) {
	from = sim.Time(s.From)
	until = sim.MaxTime
	if s.Until != 0 {
		until = sim.Time(s.Until)
	}
	return from, until
}

// Validate checks one spec for structural errors.
func (s *Spec) Validate() error {
	if s.Until != 0 && s.Until <= s.From {
		return fmt.Errorf("faultinject: %s: empty window [%v, %v)", s.Type, time.Duration(s.From), time.Duration(s.Until))
	}
	checkProb := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("faultinject: %s: %s %f out of [0,1]", s.Type, name, p)
		}
		return nil
	}
	switch s.Type {
	case TypeBurstLoss:
		if s.LinkFrom == "" || s.LinkTo == "" {
			return fmt.Errorf("faultinject: %s needs link_from and link_to", s.Type)
		}
		for name, p := range map[string]float64{
			"p_enter_burst": s.PEnterBurst, "p_exit_burst": s.PExitBurst,
			"loss_good": s.LossGood, "loss_bad": s.LossBad,
		} {
			if err := checkProb(name, p); err != nil {
				return err
			}
		}
		if s.PEnterBurst == 0 && s.LossGood == 0 {
			return fmt.Errorf("faultinject: %s cannot ever lose a message (p_enter_burst and loss_good are both 0)", s.Type)
		}
	case TypeLatencySpike:
		if s.LinkFrom == "" || s.LinkTo == "" {
			return fmt.Errorf("faultinject: %s needs link_from and link_to", s.Type)
		}
		if s.Delay <= 0 && s.DelayJitter <= 0 {
			return fmt.Errorf("faultinject: %s needs a positive delay or delay_jitter", s.Type)
		}
		if s.Delay < 0 || s.DelayJitter < 0 {
			return fmt.Errorf("faultinject: %s: negative delay", s.Type)
		}
	case TypeClockStep:
		if s.Clock == "" {
			return fmt.Errorf("faultinject: %s needs a clock target", s.Type)
		}
		if s.Offset == 0 {
			return fmt.Errorf("faultinject: %s needs a non-zero offset", s.Type)
		}
	case TypeClockDrift:
		if s.Clock == "" {
			return fmt.Errorf("faultinject: %s needs a clock target", s.Type)
		}
		if s.DriftPPM == 0 {
			return fmt.Errorf("faultinject: %s needs a non-zero drift_ppm", s.Type)
		}
	case TypePTPAsym:
		if s.Clock == "" || s.ClockPeer == "" {
			return fmt.Errorf("faultinject: %s needs clock and clock_peer targets", s.Type)
		}
		if s.Clock == s.ClockPeer {
			return fmt.Errorf("faultinject: %s: clock and clock_peer are both %q", s.Type, s.Clock)
		}
		if s.Offset == 0 {
			return fmt.Errorf("faultinject: %s needs a non-zero offset", s.Type)
		}
	case TypeOverload:
		if s.ECU == "" {
			return fmt.Errorf("faultinject: %s needs an ecu target", s.Type)
		}
		if s.Utilization <= 0 || s.Utilization > 1 {
			return fmt.Errorf("faultinject: %s: utilization %f out of (0,1]", s.Type, s.Utilization)
		}
		if s.Threads < 0 || s.BurstPeriod < 0 {
			return fmt.Errorf("faultinject: %s: negative threads or burst_period", s.Type)
		}
	case TypeSensorDropout:
		if s.Device == "" {
			return fmt.Errorf("faultinject: %s needs a device target", s.Type)
		}
		if err := checkProb("drop_prob", s.DropProb); err != nil {
			return err
		}
	case TypeExecutorStarvation:
		if s.Node == "" {
			return fmt.Errorf("faultinject: %s needs a node target", s.Type)
		}
	case TypeGMFailover:
		if s.Clock == "" {
			return fmt.Errorf("faultinject: %s needs a clock target", s.Type)
		}
		if s.Offset == 0 {
			return fmt.Errorf("faultinject: %s needs a non-zero offset", s.Type)
		}
		if s.Until == 0 {
			return fmt.Errorf("faultinject: %s needs a bounded window (the servo re-converges over [from, until))", s.Type)
		}
	case TypeReorder:
		if s.LinkFrom == "" || s.LinkTo == "" {
			return fmt.Errorf("faultinject: %s needs link_from and link_to", s.Type)
		}
		if s.HoldProb <= 0 || s.HoldProb > 1 {
			return fmt.Errorf("faultinject: %s: hold_prob %f out of (0,1]", s.Type, s.HoldProb)
		}
		if s.Delay <= 0 {
			return fmt.Errorf("faultinject: %s needs a positive delay (the hold time)", s.Type)
		}
		if s.DelayJitter < 0 {
			return fmt.Errorf("faultinject: %s: negative delay_jitter", s.Type)
		}
	case TypeDuplicate:
		if s.LinkFrom == "" || s.LinkTo == "" {
			return fmt.Errorf("faultinject: %s needs link_from and link_to", s.Type)
		}
		if s.DupProb <= 0 || s.DupProb > 1 {
			return fmt.Errorf("faultinject: %s: dup_prob %f out of (0,1]", s.Type, s.DupProb)
		}
		if s.Delay < 0 || s.DelayJitter < 0 {
			return fmt.Errorf("faultinject: %s: negative delay", s.Type)
		}
	default:
		return fmt.Errorf("faultinject: unknown fault type %q", s.Type)
	}
	return nil
}

// maxClockError returns the worst synchronization error this spec can
// inject into a clock over a run bounded by horizon (zero horizon: the
// window itself must be bounded for drift faults to contribute).
func (s *Spec) maxClockError(horizon sim.Duration) sim.Duration {
	switch s.Type {
	case TypeClockStep, TypePTPAsym, TypeGMFailover:
		// ptp-asym steps each clock by |Offset|; the per-clock error the
		// oracle bands against is |Offset| (the 2·|Offset| relative error
		// across the link is covered by the oracle's 2·ε band structure).
		// gm-failover's error is |Offset| at the step and only decays from
		// there, so the step bounds it.
		return absDur(sim.Duration(s.Offset))
	case TypeClockDrift:
		win := horizon
		if s.Until != 0 {
			win = sim.Duration(s.Until - s.From)
		}
		if win < 0 {
			win = 0
		}
		return absDur(sim.Duration(s.DriftPPM * 1e-6 * float64(win)))
	}
	return 0
}

func absDur(d sim.Duration) sim.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// Campaign is a named set of faults applied together.
type Campaign struct {
	Name   string `json:"name"`
	Faults []Spec `json:"faults"`
}

// Validate checks every fault of the campaign.
func (c *Campaign) Validate() error {
	for i := range c.Faults {
		if err := c.Faults[i].Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// MaxClockError returns the worst synchronization error the campaign
// injects into any single clock over a run of the given length. The oracle
// widens its ε-derived tolerance bands by this amount.
func (c *Campaign) MaxClockError(horizon sim.Duration) sim.Duration {
	var max sim.Duration
	for i := range c.Faults {
		if e := c.Faults[i].maxClockError(horizon); e > max {
			max = e
		}
	}
	return max
}

// LoadCampaign decodes a campaign from JSON. Unknown fields are rejected so
// typo'd keys fail loudly instead of silently keeping defaults.
func LoadCampaign(r io.Reader) (Campaign, error) {
	var c Campaign
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, fmt.Errorf("faultinject: %w", err)
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}
