package faultinject

import (
	"fmt"

	"chainmon/internal/dds"
	"chainmon/internal/netsim"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
	"chainmon/internal/vclock"
)

// OverloadPriority is the scheduling priority of injected interference
// threads: above the ksoftirq and middleware threads (so the receive path
// is starved, the interesting failure mode of the ROS2 latency studies) but
// below the monitor thread, which keeps the paper's priority assumption.
const OverloadPriority = 950

// defaultBurstPeriod is the overload enqueue period when the spec leaves
// BurstPeriod zero.
const defaultBurstPeriod = 2 * sim.Millisecond

// Targets names the fault-injectable surfaces of a built system. The maps
// are keyed by resource name; Link resolves (and creates on demand) the
// directed link between two resources, exactly like dds.Domain.Link.
type Targets struct {
	Kernel  *sim.Kernel
	Link    func(from, to string) *netsim.Link
	Clocks  map[string]*vclock.Clock
	Procs   map[string]*sim.Processor
	Devices map[string]*dds.Device
	// Exec maps node names to their executor threads (the
	// executor-starvation targets).
	Exec map[string]*sim.Thread
}

// TargetsOf exposes the injectable surfaces of a perception system.
func TargetsOf(s *perception.System) Targets {
	return Targets{
		Kernel: s.K,
		Link:   s.Domain.Link,
		Clocks: map[string]*vclock.Clock{
			s.ECU1.Name:       s.ECU1.Clock,
			s.ECU2.Name:       s.ECU2.Clock,
			s.FrontLidar.Name: s.FrontLidar.Clock,
			s.RearLidar.Name:  s.RearLidar.Clock,
		},
		Procs: map[string]*sim.Processor{
			s.ECU1.Name: s.ECU1.Proc,
			s.ECU2.Name: s.ECU2.Proc,
		},
		Devices: map[string]*dds.Device{
			s.FrontLidar.Name: s.FrontLidar,
			s.RearLidar.Name:  s.RearLidar,
		},
		Exec: map[string]*sim.Thread{
			"fusion":      s.Fusion.Exec,
			"classifier":  s.Classifier.Exec,
			"detection":   s.Detection.Exec,
			"plan":        s.Plan.Exec,
			"plan-ground": s.PlanGround.Exec,
		},
	}
}

// Injector applies campaigns to a built system. All randomness is drawn
// from streams derived from the injector's RNG and the fault's position in
// the campaign, so a campaign is reproducible from the seed alone and does
// not perturb the random streams of the system under test.
type Injector struct {
	rng *sim.RNG
}

// NewInjector creates an injector drawing from the given RNG.
func NewInjector(rng *sim.RNG) *Injector {
	return &Injector{rng: rng.Derive("faultinject")}
}

// Apply validates the campaign and installs every fault on its target. It
// must be called after the system is built and before the kernel runs.
func (in *Injector) Apply(c Campaign, tgt Targets) error {
	if err := c.Validate(); err != nil {
		return err
	}
	for i := range c.Faults {
		s := &c.Faults[i]
		rng := in.rng.Derive(fmt.Sprintf("%s/%d/%s", c.Name, i, s.Type))
		var err error
		switch s.Type {
		case TypeBurstLoss:
			err = in.applyBurstLoss(s, tgt, rng)
		case TypeLatencySpike:
			err = in.applyLatencySpike(s, tgt, rng)
		case TypeClockStep, TypeClockDrift:
			err = in.applyClockFault(s, tgt)
		case TypePTPAsym:
			err = in.applyPTPAsym(s, tgt)
		case TypeOverload:
			err = in.applyOverload(s, tgt, i)
		case TypeSensorDropout:
			err = in.applySensorDropout(s, tgt, rng)
		case TypeExecutorStarvation:
			err = in.applyExecutorStarvation(s, tgt)
		case TypeGMFailover:
			err = in.applyGMFailover(s, tgt)
		case TypeReorder:
			err = in.applyReorder(s, tgt, rng)
		case TypeDuplicate:
			err = in.applyDuplicate(s, tgt, rng)
		}
		if err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

func (in *Injector) link(s *Spec, tgt Targets) (*netsim.Link, error) {
	if tgt.Link == nil {
		return nil, fmt.Errorf("faultinject: no link resolver in targets")
	}
	l := tgt.Link(s.LinkFrom, s.LinkTo)
	if l == nil {
		return nil, fmt.Errorf("faultinject: no link %s→%s", s.LinkFrom, s.LinkTo)
	}
	return l, nil
}

// applyBurstLoss chains a windowed Gilbert-Elliott loss process onto the
// link's DropFault hook. The two-state chain transitions per transmission:
// good→bad with PEnterBurst, bad→good with PExitBurst; the loss probability
// is LossGood in the good state and LossBad (default 1) in a burst.
func (in *Injector) applyBurstLoss(s *Spec, tgt Targets, rng *sim.RNG) error {
	l, err := in.link(s, tgt)
	if err != nil {
		return err
	}
	from, until := s.window()
	lossBad := s.LossBad
	if lossBad == 0 {
		lossBad = 1
	}
	bad := false
	prev := l.DropFault
	l.DropFault = func(at sim.Time, size int) bool {
		if prev != nil && prev(at, size) {
			return true
		}
		if at < from || at >= until {
			bad = false // the chain resets outside the window
			return false
		}
		if bad {
			if rng.Bool(s.PExitBurst) {
				bad = false
			}
		} else if rng.Bool(s.PEnterBurst) {
			bad = true
		}
		if bad {
			return rng.Bool(lossBad)
		}
		return rng.Bool(s.LossGood)
	}
	return nil
}

// applyLatencySpike chains a windowed constant-plus-jitter delay onto the
// link's DelayFault hook.
func (in *Injector) applyLatencySpike(s *Spec, tgt Targets, rng *sim.RNG) error {
	l, err := in.link(s, tgt)
	if err != nil {
		return err
	}
	from, until := s.window()
	prev := l.DelayFault
	l.DelayFault = func(at sim.Time) sim.Duration {
		var d sim.Duration
		if prev != nil {
			d = prev(at)
		}
		if at < from || at >= until {
			return d
		}
		d += sim.Duration(s.Delay)
		if s.DelayJitter > 0 {
			d += sim.Duration(rng.Uniform(0, float64(s.DelayJitter)))
		}
		return d
	}
	return nil
}

// applyClockFault schedules the step (or drift onset) at the window start
// and the PTP re-convergence at the window end.
func (in *Injector) applyClockFault(s *Spec, tgt Targets) error {
	c, ok := tgt.Clocks[s.Clock]
	if !ok {
		return fmt.Errorf("faultinject: no clock %q", s.Clock)
	}
	from, until := s.window()
	switch s.Type {
	case TypeClockStep:
		tgt.Kernel.At(from, func() { c.InjectStep(sim.Duration(s.Offset)) })
	case TypeClockDrift:
		tgt.Kernel.At(from, func() { c.SetDrift(s.DriftPPM) })
	}
	if until != sim.MaxTime {
		tgt.Kernel.At(until, c.ClearFault)
	}
	return nil
}

// applyPTPAsym steps the two clocks of a synchronization pair in opposite
// directions at the window start (Clock by +Offset, ClockPeer by -Offset)
// and re-converges both at the window end. The per-clock error stays
// |Offset|, matching the oracle band, while the relative error across the
// link is 2·|Offset| — timestamps crossing it in one direction look early
// and in the other late, the signature of an asymmetric-path PTP error.
func (in *Injector) applyPTPAsym(s *Spec, tgt Targets) error {
	ca, ok := tgt.Clocks[s.Clock]
	if !ok {
		return fmt.Errorf("faultinject: no clock %q", s.Clock)
	}
	cb, ok := tgt.Clocks[s.ClockPeer]
	if !ok {
		return fmt.Errorf("faultinject: no clock %q", s.ClockPeer)
	}
	from, until := s.window()
	off := sim.Duration(s.Offset)
	tgt.Kernel.At(from, func() {
		ca.InjectStep(off)
		cb.InjectStep(-off)
	})
	if until != sim.MaxTime {
		tgt.Kernel.At(until, func() {
			ca.ClearFault()
			cb.ClearFault()
		})
	}
	return nil
}

// applyOverload creates interference threads on the ECU and drives each
// with Utilization×BurstPeriod of work every BurstPeriod inside the window.
func (in *Injector) applyOverload(s *Spec, tgt Targets, idx int) error {
	p, ok := tgt.Procs[s.ECU]
	if !ok {
		return fmt.Errorf("faultinject: no processor %q", s.ECU)
	}
	from, until := s.window()
	period := sim.Duration(s.BurstPeriod)
	if period <= 0 {
		period = defaultBurstPeriod
	}
	threads := s.Threads
	if threads <= 0 {
		threads = p.Cores
	}
	cost := sim.Duration(s.Utilization * float64(period))
	for t := 0; t < threads; t++ {
		label := fmt.Sprintf("fault/overload%d.%d", idx, t)
		th := p.NewThread(s.ECU+"/"+label, OverloadPriority)
		p.PeriodicLoadWindow(th, label, from, until, period, sim.Constant(cost))
	}
	return nil
}

// applyExecutorStarvation suspends the target node's executor thread for
// the window. Unlike overload, no CPU is consumed: the thread simply stops
// competing for cores (a lost lock, a hung blocking call), its queue
// accumulates, and the rest of the ECU stays schedulable — so the monitor
// thread keeps running and must convert the stalled callbacks into
// exceptions.
func (in *Injector) applyExecutorStarvation(s *Spec, tgt Targets) error {
	th, ok := tgt.Exec[s.Node]
	if !ok {
		return fmt.Errorf("faultinject: no executor thread for node %q", s.Node)
	}
	from, until := s.window()
	tgt.Kernel.At(from, th.Block)
	if until != sim.MaxTime {
		tgt.Kernel.At(until, th.Unblock)
	}
	return nil
}

// gmFailoverStages is the number of piecewise-constant slew segments the
// gm-failover servo uses to re-converge: each stage removes half of the
// remaining offset (the last removes all of it), approximating the
// exponential pull-in of a real PTP servo.
const gmFailoverStages = 4

// applyGMFailover injects a grandmaster-failover transient: a step error at
// the window start (the new grandmaster's offset), then a decaying slew
// back into sync across the window, and an exact re-convergence at the
// window end. The error is |Offset| at its worst and only shrinks, so the
// oracle band derived from the step covers the whole transient.
func (in *Injector) applyGMFailover(s *Spec, tgt Targets) error {
	c, ok := tgt.Clocks[s.Clock]
	if !ok {
		return fmt.Errorf("faultinject: no clock %q", s.Clock)
	}
	from, until := s.window()
	stage := until.Sub(from) / gmFailoverStages
	tgt.Kernel.At(from, func() { c.InjectStep(sim.Duration(s.Offset)) })
	remaining := sim.Duration(s.Offset)
	for i := 0; i < gmFailoverStages; i++ {
		correct := remaining / 2
		if i == gmFailoverStages-1 {
			correct = remaining
		}
		rate := -float64(correct) / float64(stage) * 1e6 // ppm
		tgt.Kernel.At(from.Add(stage*sim.Duration(i)), func() { c.SetDrift(rate) })
		remaining -= correct
	}
	tgt.Kernel.At(until, c.ClearFault)
	return nil
}

// applyReorder chains a windowed probabilistic hold onto the link's
// HoldFault hook. A held message bypasses the FIFO floor and is delivered
// Delay (+ jitter) late, so later traffic overtakes it when the hold exceeds
// the inter-send gap.
func (in *Injector) applyReorder(s *Spec, tgt Targets, rng *sim.RNG) error {
	l, err := in.link(s, tgt)
	if err != nil {
		return err
	}
	from, until := s.window()
	prev := l.HoldFault
	l.HoldFault = func(at sim.Time, size int) sim.Duration {
		if prev != nil {
			if h := prev(at, size); h > 0 {
				return h
			}
		}
		if at < from || at >= until || !rng.Bool(s.HoldProb) {
			return 0
		}
		h := sim.Duration(s.Delay)
		if s.DelayJitter > 0 {
			h += sim.Duration(rng.Uniform(0, float64(s.DelayJitter)))
		}
		return h
	}
	return nil
}

// applyDuplicate chains a windowed probabilistic duplication onto the
// link's DupFault hook. The second copy arrives Delay (+ jitter) after the
// original, so the receiver must discard it as stale.
func (in *Injector) applyDuplicate(s *Spec, tgt Targets, rng *sim.RNG) error {
	l, err := in.link(s, tgt)
	if err != nil {
		return err
	}
	from, until := s.window()
	prev := l.DupFault
	l.DupFault = func(at sim.Time, size int) (bool, sim.Duration) {
		if prev != nil {
			if dup, extra := prev(at, size); dup {
				return dup, extra
			}
		}
		if at < from || at >= until || !rng.Bool(s.DupProb) {
			return false, 0
		}
		extra := sim.Duration(s.Delay)
		if s.DelayJitter > 0 {
			extra += sim.Duration(rng.Uniform(0, float64(s.DelayJitter)))
		}
		return true, extra
	}
	return nil
}

// applySensorDropout chains a windowed activation suppression onto the
// device's Perturb hook. The decision uses the kernel time of the periodic
// grid (Perturb runs at the activation's grid point, before jitter).
func (in *Injector) applySensorDropout(s *Spec, tgt Targets, rng *sim.RNG) error {
	dev, ok := tgt.Devices[s.Device]
	if !ok {
		return fmt.Errorf("faultinject: no device %q", s.Device)
	}
	from, until := s.window()
	dropProb := s.DropProb
	if dropProb == 0 {
		dropProb = 1
	}
	prev := dev.Perturb
	dev.Perturb = func(n uint64) (bool, sim.Duration) {
		drop, delay := false, sim.Duration(0)
		if prev != nil {
			drop, delay = prev(n)
		}
		now := tgt.Kernel.Now()
		if now >= from && now < until && rng.Bool(dropProb) {
			drop = true
		}
		return drop, delay
	}
	return nil
}
