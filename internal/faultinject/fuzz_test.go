package faultinject

import (
	"strings"
	"testing"
)

// FuzzLoadCampaign ensures arbitrary input can never panic the campaign
// loader and that accepted campaigns survive validation (LoadCampaign
// validates before returning).
func FuzzLoadCampaign(f *testing.F) {
	f.Add(exampleCampaignJSON)
	f.Add(`{"name":"x","faults":[]}`)
	f.Add(`{"name":"x","faults":[{"type":"overload","ecu":"e","utilization":0.5}]}`)
	f.Add(`{"name":"x","faults":[{"type":"clock-step","clock":"c","offset":"-3ms","until":"1h"}]}`)
	f.Add(`{"faults":[{"type":"burst-loss"}]}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, in string) {
		c, err := LoadCampaign(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("LoadCampaign accepted an invalid campaign: %v", err)
		}
	})
}
