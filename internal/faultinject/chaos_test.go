package faultinject

import (
	"fmt"
	"testing"

	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
)

// runCampaign is the test-side wrapper of RunCombo: build a full-chain
// perception system, inject the campaign, wire the ground-truth oracle and
// run to completion.
func runCampaign(t *testing.T, seed int64, camp Campaign, variant monitor.RemoteVariant) *Run {
	t.Helper()
	run, err := RunCombo(Combo{Campaign: camp, Seed: seed, Variant: variant})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func segReport(t *testing.T, r Report, name string) SegmentReport {
	t.Helper()
	s, ok := r.Segment(name)
	if !ok {
		t.Fatalf("no segment report %q", name)
	}
	return s
}

func segTruth(t *testing.T, o *Oracle, name string) *SegmentTruth {
	t.Helper()
	for _, st := range o.Segments() {
		if st.Name == name {
			return st
		}
	}
	t.Fatalf("no segment truth %q", name)
	return nil
}

func checkSanity(t *testing.T, e MatrixEntry, run *Run) {
	t.Helper()
	if e.Sanity == nil {
		return
	}
	if err := e.Sanity(run); err != nil {
		t.Error(err)
	}
}

// TestChaosMatrix sweeps seeds × campaigns with the monitor-thread variant
// and asserts the oracle invariants hold in every combination: zero false
// negatives, only band-limited false positives, every lost sample detected.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is not a -short test")
	}
	seeds := []int64{11, 22, 33}
	for _, e := range ChaosCampaigns() {
		for _, seed := range seeds {
			e, seed := e, seed
			t.Run(fmt.Sprintf("%s/seed%d", e.Campaign.Name, seed), func(t *testing.T) {
				t.Parallel()
				run := runCampaign(t, seed, e.Campaign, monitor.VariantMonitorThread)
				if !run.Report.Ok() {
					t.Errorf("oracle invariants violated:\n%s", run.Report.Summary())
				}
				checkSanity(t, e, run)
			})
		}
	}
}

// chaosSwaps is the actuation schedule of the epoch-boundary matrix: the
// objects deadline is halved mid-run and restored near the end, the ground
// deadline tightened once. The instants sit off the 100 ms frame grid so
// epoch boundaries land between a start and its drain as often as possible.
func chaosSwaps() []BudgetSwap {
	return []BudgetSwap{
		{At: Duration(3550 * sim.Millisecond), Segment: perception.SegObjectsLocal, DMon: 50 * Duration(sim.Millisecond)},
		{At: Duration(5050 * sim.Millisecond), Segment: perception.SegGroundLocal, DMon: 70 * Duration(sim.Millisecond)},
		{At: Duration(8550 * sim.Millisecond), Segment: perception.SegObjectsLocal, DMon: 100 * Duration(sim.Millisecond)},
	}
}

// TestChaosMatrixWithActuations re-runs the PR matrix (the 23-combo grid of
// the CI job) with mid-run deadline actuations staged through the budget
// table on every combo. The oracle knows the actuation timeline, so the
// zero-false-negative contract is asserted ACROSS the epoch boundaries: an
// activation judged under the tightened deadline must raise an exception
// whenever its true latency exceeds it, and the swap barrier must keep
// in-flight activations on their armed deadline (else the interval checks
// flag a false positive). The halved objects deadline is chosen to bite —
// nominal objects latencies routinely exceed 50 ms — so the assertion is
// not vacuous, which the TrueLate floor pins.
func TestChaosMatrixWithActuations(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is not a -short test")
	}
	trueLate := 0
	for _, combo := range PRMatrix() {
		combo := combo
		combo.Swaps = chaosSwaps()
		t.Run(combo.String(), func(t *testing.T) {
			run, err := RunCombo(combo)
			if err != nil {
				t.Fatal(err)
			}
			if !run.Report.Ok() {
				t.Errorf("oracle invariants violated across epoch boundaries:\n%s", run.Report.Summary())
			}
			s := segReport(t, run.Report, perception.SegObjectsLocal)
			trueLate += s.TrueLate
		})
	}
	// Whether a combo's objects latencies exceed the halved deadline depends
	// on its campaign and seed, so the floor is matrix-wide.
	if trueLate < 50 {
		t.Errorf("tightened objects deadline rarely bit (TrueLate=%d across the matrix); the FN assertion is near-vacuous", trueLate)
	}
}

// TestChaosDDSContext runs the campaigns that leave the middleware thread
// schedulable under the dds-context variant: without interference the
// delayed timeout entry stays bounded and the soundness contract holds.
func TestChaosDDSContext(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is not a -short test")
	}
	for _, e := range ChaosCampaigns() {
		if e.Campaign.Name != "burst-loss" && e.Campaign.Name != "latency-shift" {
			continue
		}
		e := e
		t.Run(e.Campaign.Name, func(t *testing.T) {
			t.Parallel()
			run := runCampaign(t, 11, e.Campaign, monitor.VariantDDSContext)
			if !run.Report.Ok() {
				t.Errorf("oracle invariants violated:\n%s", run.Report.Summary())
			}
			checkSanity(t, e, run)
		})
	}
}

// TestOracleCleanRun pins the oracle against a fault-free run: the nominal
// jitter and the baseline i.i.d. link loss must not trip any invariant
// (losses still occur and must still be detected).
func TestOracleCleanRun(t *testing.T) {
	run := runCampaign(t, 5, Campaign{Name: "none"}, monitor.VariantMonitorThread)
	if !run.Report.Ok() {
		t.Errorf("oracle invariants violated on a fault-free run:\n%s", run.Report.Summary())
	}
	checked := 0
	for _, s := range run.Report.Segments {
		checked += s.Checked
	}
	if checked < 5*chaosFrames {
		t.Errorf("oracle checked only %d activations across %d segments", checked, len(run.Report.Segments))
	}
}

// TestInterArrivalBlindSpot demonstrates the §IV-B argument: under a
// constant latency shift every sample misses its deadline, but arrivals
// stay one period apart, so the inter-arrival supervisor sees (almost)
// nothing while the synchronization-based monitor detects every miss.
func TestInterArrivalBlindSpot(t *testing.T) {
	camp := Campaign{Name: "latency-shift", Faults: []Spec{{
		Type: TypeLatencySpike, From: Duration(sim.Second),
		LinkFrom: "ecu1", LinkTo: "ecu2",
		Delay: Duration(30 * sim.Millisecond),
	}}}
	run := runCampaign(t, 7, camp, monitor.VariantMonitorThread)
	if !run.Report.Ok() {
		t.Errorf("oracle invariants violated:\n%s", run.Report.Summary())
	}

	fused := segTruth(t, run.Oracle, perception.SegFusedRemote)
	audit := AuditInterArrival(fused, run.IAM, sim.Time(2*sim.Second), sim.Time(12*sim.Second))
	if audit.TrueViolations < 50 {
		t.Fatalf("latency shift produced only %d true violations", audit.TrueViolations)
	}
	if audit.Detections > 1 {
		t.Errorf("inter-arrival supervisor detected %d of %d consecutive misses; expected ~0 (blind spot)",
			audit.Detections, audit.TrueViolations)
	}
	// The synchronization-based monitor, by contrast, flagged them all
	// (guaranteed by the oracle's false-negative check above).
	s := segReport(t, run.Report, perception.SegFusedRemote)
	if s.TrueLate < 50 {
		t.Errorf("expected ≥50 contract-late activations, got %+v", s)
	}
	if s.Exception < audit.TrueViolations {
		t.Errorf("remote monitor detected %d < %d true violations", s.Exception, audit.TrueViolations)
	}
}
