package faultinject

import (
	"fmt"
	"testing"

	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
)

// chaosFrames keeps a single campaign run at 12 s of virtual time.
const chaosFrames = 120

// interArrivalTMax is the supervision bound of the baseline inter-arrival
// monitor attached to every chaos run: period plus enough headroom that the
// nominal activation and link jitter never trips it (the paper's t_max
// dilemma — any tighter bound false-positives on jitter).
const interArrivalTMax = 135 * sim.Millisecond

type chaosRun struct {
	sys    *perception.System
	oracle *Oracle
	report Report
	iam    *monitor.InterArrivalMonitor
}

// runCampaign builds a full-chain perception system, injects the campaign,
// wires the ground-truth oracle and runs to completion.
func runCampaign(t *testing.T, seed int64, camp Campaign, variant monitor.RemoteVariant) *chaosRun {
	t.Helper()
	cfg := perception.DefaultConfig()
	cfg.Seed = seed
	cfg.Frames = chaosFrames
	cfg.FullChain = true
	cfg.RemoteVariant = variant
	sys := perception.Build(cfg)

	iam := monitor.NewInterArrivalMonitor(sys.ClassifierSub, interArrivalTMax)
	drain := sim.Time(cfg.Frames) * sim.Time(cfg.Period)
	sys.K.At(drain.Add(5*sim.Second), iam.Stop)

	orc := ForPerception(sys, camp)
	if err := NewInjector(sim.NewRNG(seed)).Apply(camp, TargetsOf(sys)); err != nil {
		t.Fatalf("apply campaign %q: %v", camp.Name, err)
	}
	sys.Run()
	return &chaosRun{sys: sys, oracle: orc, report: orc.Check(), iam: iam}
}

func segReport(t *testing.T, r Report, name string) SegmentReport {
	t.Helper()
	for _, s := range r.Segments {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no segment report %q", name)
	return SegmentReport{}
}

func segTruth(t *testing.T, o *Oracle, name string) *SegmentTruth {
	t.Helper()
	for _, st := range o.Segments() {
		if st.Name == name {
			return st
		}
	}
	t.Fatalf("no segment truth %q", name)
	return nil
}

// chaosCampaigns is the fault matrix: one campaign per fault type plus a
// combined one. The sanity check asserts that the campaign actually bit
// (faults that do nothing would make the zero-false-negative assertion
// vacuous).
func chaosCampaigns() []struct {
	camp   Campaign
	sanity func(t *testing.T, run *chaosRun)
} {
	sec := func(n float64) Duration { return Duration(n * float64(sim.Second)) }
	return []struct {
		camp   Campaign
		sanity func(t *testing.T, run *chaosRun)
	}{
		{
			// Correlated loss bursts on the inter-ECU link: the fused
			// remote segment must detect every lost sample.
			camp: Campaign{Name: "burst-loss", Faults: []Spec{{
				Type: TypeBurstLoss, From: sec(2), Until: sec(10),
				LinkFrom: "ecu1", LinkTo: "ecu2",
				PEnterBurst: 0.05, PExitBurst: 0.3,
			}}},
			sanity: func(t *testing.T, run *chaosRun) {
				s := segReport(t, run.report, perception.SegFusedRemote)
				if s.Lost == 0 {
					t.Errorf("burst-loss campaign lost nothing on %s", s.Name)
				}
			},
		},
		{
			// A constant latency shift beyond the remote deadline: arrivals
			// stay periodic while every sample is late — the consecutive-miss
			// pattern of §IV-B.
			camp: Campaign{Name: "latency-shift", Faults: []Spec{{
				Type: TypeLatencySpike, From: sec(1),
				LinkFrom: "ecu1", LinkTo: "ecu2",
				Delay: Duration(30 * sim.Millisecond),
			}}},
			sanity: func(t *testing.T, run *chaosRun) {
				s := segReport(t, run.report, perception.SegFusedRemote)
				if s.Exception < 50 {
					t.Errorf("latency-shift: expected ≥50 detections, got %+v", s)
				}
			},
		},
		{
			// A mis-ranked grandmaster steps the ECU1 clock by more than the
			// remote deadline: the front/rear remote monitors must fire (the
			// perceived latency includes the clock error), and the oracle's
			// widened slack band must absorb the pessimism.
			camp: Campaign{Name: "clock-step", Faults: []Spec{{
				Type: TypeClockStep, From: sec(3), Until: sec(9),
				Clock: "ecu1", Offset: Duration(25 * sim.Millisecond),
			}}},
			sanity: func(t *testing.T, run *chaosRun) {
				s := segReport(t, run.report, perception.SegFrontRemote)
				if s.Exception == 0 {
					t.Errorf("clock-step: expected detections on %s", s.Name)
				}
			},
		},
		{
			// An unmodelled frequency error on the front lidar clock: stays
			// within the widened bands, no verdict may flip.
			camp: Campaign{Name: "clock-drift", Faults: []Spec{{
				Type: TypeClockDrift, From: sec(2), Until: sec(10),
				Clock: "front-lidar", DriftPPM: 500,
			}}},
			sanity: func(t *testing.T, run *chaosRun) {},
		},
		{
			// Transient ECU2 overload: high-priority interference starves the
			// receive path and the executors; the monitor thread (highest
			// priority) must keep detecting.
			camp: Campaign{Name: "overload", Faults: []Spec{{
				Type: TypeOverload, From: sec(4), Until: sec(7),
				ECU: "ecu2", Utilization: 0.9,
			}}},
			sanity: func(t *testing.T, run *chaosRun) {
				total := 0
				for _, s := range run.report.Segments {
					total += s.Exception
				}
				if total == 0 {
					t.Errorf("overload campaign caused no detections at all")
				}
			},
		},
		{
			// The front lidar blanks out for 1.5 s: the front remote monitor
			// must convert the sequence gap into per-activation exceptions.
			camp: Campaign{Name: "sensor-dropout", Faults: []Spec{{
				Type: TypeSensorDropout, From: sec(5), Until: sec(6.5),
				Device: "front-lidar",
			}}},
			sanity: func(t *testing.T, run *chaosRun) {
				s := segReport(t, run.report, perception.SegFrontRemote)
				if s.Exception < 10 {
					t.Errorf("sensor-dropout: expected ≥10 detections on %s, got %d", s.Name, s.Exception)
				}
			},
		},
		{
			// Everything at once, at survivable magnitudes.
			camp: Campaign{Name: "kitchen-sink", Faults: []Spec{
				{Type: TypeBurstLoss, From: sec(2), Until: sec(8),
					LinkFrom: "front-lidar", LinkTo: "ecu1",
					PEnterBurst: 0.08, PExitBurst: 0.4},
				{Type: TypeClockStep, From: sec(2), Until: sec(8),
					Clock: "ecu1", Offset: Duration(sim.Millisecond)},
				{Type: TypeLatencySpike, From: sec(3), Until: sec(5),
					LinkFrom: "ecu1", LinkTo: "ecu2",
					Delay: Duration(5 * sim.Millisecond), DelayJitter: Duration(5 * sim.Millisecond)},
				{Type: TypeOverload, From: sec(6), Until: sec(8),
					ECU: "ecu2", Utilization: 0.5},
			}},
			sanity: func(t *testing.T, run *chaosRun) {
				s := segReport(t, run.report, perception.SegFrontRemote)
				if s.Lost == 0 && s.Exception == 0 {
					t.Errorf("kitchen-sink: front link bursts had no effect")
				}
			},
		},
	}
}

// TestChaosMatrix sweeps seeds × campaigns with the monitor-thread variant
// and asserts the oracle invariants hold in every combination: zero false
// negatives, only band-limited false positives, every lost sample detected.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is not a -short test")
	}
	seeds := []int64{11, 22, 33}
	for _, c := range chaosCampaigns() {
		for _, seed := range seeds {
			c, seed := c, seed
			t.Run(fmt.Sprintf("%s/seed%d", c.camp.Name, seed), func(t *testing.T) {
				t.Parallel()
				run := runCampaign(t, seed, c.camp, monitor.VariantMonitorThread)
				if !run.report.Ok() {
					t.Errorf("oracle invariants violated:\n%s", run.report.Summary())
				}
				c.sanity(t, run)
			})
		}
	}
}

// TestChaosDDSContext runs the campaigns that leave the middleware thread
// schedulable under the dds-context variant: without interference the
// delayed timeout entry stays bounded and the soundness contract holds.
func TestChaosDDSContext(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is not a -short test")
	}
	all := chaosCampaigns()
	for _, c := range all {
		if c.camp.Name != "burst-loss" && c.camp.Name != "latency-shift" {
			continue
		}
		c := c
		t.Run(c.camp.Name, func(t *testing.T) {
			t.Parallel()
			run := runCampaign(t, 11, c.camp, monitor.VariantDDSContext)
			if !run.report.Ok() {
				t.Errorf("oracle invariants violated:\n%s", run.report.Summary())
			}
			c.sanity(t, run)
		})
	}
}

// TestOracleCleanRun pins the oracle against a fault-free run: the nominal
// jitter and the baseline i.i.d. link loss must not trip any invariant
// (losses still occur and must still be detected).
func TestOracleCleanRun(t *testing.T) {
	run := runCampaign(t, 5, Campaign{Name: "none"}, monitor.VariantMonitorThread)
	if !run.report.Ok() {
		t.Errorf("oracle invariants violated on a fault-free run:\n%s", run.report.Summary())
	}
	checked := 0
	for _, s := range run.report.Segments {
		checked += s.Checked
	}
	if checked < 5*chaosFrames {
		t.Errorf("oracle checked only %d activations across %d segments", checked, len(run.report.Segments))
	}
}

// TestInterArrivalBlindSpot demonstrates the §IV-B argument: under a
// constant latency shift every sample misses its deadline, but arrivals
// stay one period apart, so the inter-arrival supervisor sees (almost)
// nothing while the synchronization-based monitor detects every miss.
func TestInterArrivalBlindSpot(t *testing.T) {
	camp := Campaign{Name: "latency-shift", Faults: []Spec{{
		Type: TypeLatencySpike, From: Duration(sim.Second),
		LinkFrom: "ecu1", LinkTo: "ecu2",
		Delay: Duration(30 * sim.Millisecond),
	}}}
	run := runCampaign(t, 7, camp, monitor.VariantMonitorThread)
	if !run.report.Ok() {
		t.Errorf("oracle invariants violated:\n%s", run.report.Summary())
	}

	fused := segTruth(t, run.oracle, perception.SegFusedRemote)
	audit := AuditInterArrival(fused, run.iam, sim.Time(2*sim.Second), sim.Time(12*sim.Second))
	if audit.TrueViolations < 50 {
		t.Fatalf("latency shift produced only %d true violations", audit.TrueViolations)
	}
	if audit.Detections > 1 {
		t.Errorf("inter-arrival supervisor detected %d of %d consecutive misses; expected ~0 (blind spot)",
			audit.Detections, audit.TrueViolations)
	}
	// The synchronization-based monitor, by contrast, flagged them all
	// (guaranteed by the oracle's false-negative check above).
	s := segReport(t, run.report, perception.SegFusedRemote)
	if s.TrueLate < 50 {
		t.Errorf("expected ≥50 contract-late activations, got %+v", s)
	}
	if s.Exception < audit.TrueViolations {
		t.Errorf("remote monitor detected %d < %d true violations", s.Exception, audit.TrueViolations)
	}
}
