package faultinject

import (
	"fmt"
	"os"
	"testing"

	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
)

// reorderCampaign holds inter-ECU messages 150 ms — longer than the 100 ms
// period, so later fused frames overtake the held one and arrivals leave
// FIFO order. The remote monitor must treat the stale arrival as already
// resolved (its timeout fired first) and the verdicts must stay sound.
func reorderCampaign() Campaign {
	return Campaign{Name: "reorder", Faults: []Spec{{
		Type: TypeReorder, From: Duration(2 * sim.Second), Until: Duration(10 * sim.Second),
		LinkFrom: "ecu1", LinkTo: "ecu2",
		HoldProb: 0.15, Delay: Duration(150 * sim.Millisecond),
	}}}
}

// duplicateCampaign delivers ~20% of inter-ECU messages twice, the copy 5 ms
// after the original. The first copy resolves the activation; the second must
// be discarded without perturbing any verdict.
func duplicateCampaign() Campaign {
	return Campaign{Name: "duplicate", Faults: []Spec{{
		Type: TypeDuplicate, From: Duration(2 * sim.Second), Until: Duration(10 * sim.Second),
		LinkFrom: "ecu1", LinkTo: "ecu2",
		DupProb: 0.2, Delay: Duration(5 * sim.Millisecond),
	}}}
}

func reorderSanity(t *testing.T, run *chaosRun) {
	if held := run.sys.Domain.Link("ecu1", "ecu2").Held(); held == 0 {
		t.Errorf("reorder campaign held no messages")
	}
	s := segReport(t, run.report, perception.SegFusedRemote)
	if s.Exception == 0 {
		t.Errorf("reorder: a 150ms hold beyond the 20ms remote deadline must cause detections on %s", s.Name)
	}
}

func duplicateSanity(t *testing.T, run *chaosRun) {
	if dup := run.sys.Domain.Link("ecu1", "ecu2").Duplicated(); dup == 0 {
		t.Errorf("duplicate campaign duplicated no messages")
	}
}

// TestReorderCampaign cross-checks every verdict under message reordering
// against the ground-truth oracle: the held samples arrive after their
// exception fired, are discarded as stale, and produce no false negatives.
func TestReorderCampaign(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := runCampaign(t, seed, reorderCampaign(), monitor.VariantMonitorThread)
			if !run.report.Ok() {
				t.Errorf("oracle invariants violated under reordering:\n%s", run.report.Summary())
			}
			reorderSanity(t, run)
			// A 150ms hold makes the sample arrive after its exception: the
			// monitor must discard it rather than resolve a closed activation.
			if run.sys.RemFused.LateDiscards() == 0 {
				t.Errorf("no held sample was discarded as late")
			}
		})
	}
}

// TestDuplicateCampaign cross-checks every verdict under message
// duplication: the second copy of each duplicated sample must be discarded
// (the activation already resolved) and no verdict may flip.
func TestDuplicateCampaign(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := runCampaign(t, seed, duplicateCampaign(), monitor.VariantMonitorThread)
			if !run.report.Ok() {
				t.Errorf("oracle invariants violated under duplication:\n%s", run.report.Summary())
			}
			duplicateSanity(t, run)
			// Every on-time original resolves its activation; the 5ms-late
			// copy hits a closed activation and must be dropped.
			if run.sys.RemFused.LateDiscards() == 0 {
				t.Errorf("no duplicate copy was discarded")
			}
		})
	}
}

// TestChaosMatrixNightly is the ~100-combination sweep for the scheduled CI
// job: eleven seeds across all nine campaigns (the PR matrix's seven plus
// reorder and duplicate) plus three dds-context runs. Gated behind
// CHAOS_NIGHTLY so PR runs keep the 23-combination matrix.
func TestChaosMatrixNightly(t *testing.T) {
	if os.Getenv("CHAOS_NIGHTLY") == "" {
		t.Skip("set CHAOS_NIGHTLY=1 to run the full nightly matrix")
	}
	type entry struct {
		camp   Campaign
		sanity func(t *testing.T, run *chaosRun)
	}
	var campaigns []entry
	for _, c := range chaosCampaigns() {
		campaigns = append(campaigns, entry{c.camp, c.sanity})
	}
	campaigns = append(campaigns,
		entry{reorderCampaign(), reorderSanity},
		entry{duplicateCampaign(), duplicateSanity},
	)
	seeds := []int64{11, 22, 33, 44, 55, 66, 77, 88, 99, 110, 121}
	for _, c := range campaigns {
		for _, seed := range seeds {
			c, seed := c, seed
			t.Run(fmt.Sprintf("%s/seed%d", c.camp.Name, seed), func(t *testing.T) {
				t.Parallel()
				run := runCampaign(t, seed, c.camp, monitor.VariantMonitorThread)
				if !run.report.Ok() {
					t.Errorf("oracle invariants violated:\n%s", run.report.Summary())
				}
				c.sanity(t, run)
			})
		}
	}
	for _, camp := range []Campaign{reorderCampaign(), duplicateCampaign(), chaosCampaigns()[0].camp} {
		camp := camp
		t.Run("dds-context/"+camp.Name, func(t *testing.T) {
			t.Parallel()
			run := runCampaign(t, 11, camp, monitor.VariantDDSContext)
			if !run.report.Ok() {
				t.Errorf("oracle invariants violated:\n%s", run.report.Summary())
			}
		})
	}
}
