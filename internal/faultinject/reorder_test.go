package faultinject

import (
	"fmt"
	"os"
	"testing"

	"chainmon/internal/monitor"
)

// TestReorderCampaign cross-checks every verdict under message reordering
// against the ground-truth oracle: the held samples arrive after their
// exception fired, are discarded as stale, and produce no false negatives.
func TestReorderCampaign(t *testing.T) {
	e := ReorderEntry()
	for _, seed := range []int64{11, 22, 33} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := runCampaign(t, seed, e.Campaign, monitor.VariantMonitorThread)
			if !run.Report.Ok() {
				t.Errorf("oracle invariants violated under reordering:\n%s", run.Report.Summary())
			}
			checkSanity(t, e, run)
			// A 150ms hold makes the sample arrive after its exception: the
			// monitor must discard it rather than resolve a closed activation.
			if run.Sys.RemFused.LateDiscards() == 0 {
				t.Errorf("no held sample was discarded as late")
			}
		})
	}
}

// TestDuplicateCampaign cross-checks every verdict under message
// duplication: the second copy of each duplicated sample must be discarded
// (the activation already resolved) and no verdict may flip.
func TestDuplicateCampaign(t *testing.T) {
	e := DuplicateEntry()
	for _, seed := range []int64{11, 22, 33} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := runCampaign(t, seed, e.Campaign, monitor.VariantMonitorThread)
			if !run.Report.Ok() {
				t.Errorf("oracle invariants violated under duplication:\n%s", run.Report.Summary())
			}
			checkSanity(t, e, run)
			// Every on-time original resolves its activation; the 5ms-late
			// copy hits a closed activation and must be dropped.
			if run.Sys.RemFused.LateDiscards() == 0 {
				t.Errorf("no duplicate copy was discarded")
			}
		})
	}
}

// TestChaosMatrixNightly is the 10000-combination sweep for the scheduled
// CI job, run through the sharded sweep engine at GOMAXPROCS workers: all
// twelve campaigns × 830 seeds plus forty dds-context runs. Gated behind
// CHAOS_NIGHTLY so PR runs keep the 23-combination matrix.
func TestChaosMatrixNightly(t *testing.T) {
	if os.Getenv("CHAOS_NIGHTLY") == "" {
		t.Skip("set CHAOS_NIGHTLY=1 to run the full nightly matrix")
	}
	combos := Matrix10K()
	if len(combos) != 10000 {
		t.Fatalf("nightly matrix has %d combos, want 10000", len(combos))
	}
	// Soundness invariants are hard per-run guarantees; the bite checks are
	// statistical at this seed count (a 0.05-entry Gilbert-Elliott chain has
	// a ~1.6% chance of losing nothing in a 8 s window), so sanity failures
	// are tolerated per campaign up to a small fraction of seeds.
	sanityFails := map[string]int{}
	sanityRuns := map[string]int{}
	for _, it := range RunSweep(combos, 0) {
		if it.Err != nil {
			t.Errorf("%s: %v", it.Combo, it.Err)
			continue
		}
		if !it.Report.Ok() {
			t.Errorf("%s: oracle invariants violated:\n%s", it.Combo, it.Report.Summary())
		}
		if it.Combo.Variant == monitor.VariantMonitorThread {
			sanityRuns[it.Combo.Campaign.Name]++
			if it.Sanity != nil {
				sanityFails[it.Combo.Campaign.Name]++
				t.Logf("%s: sanity: %v", it.Combo, it.Sanity)
			}
		}
	}
	for name, fails := range sanityFails {
		if runs := sanityRuns[name]; fails*20 > runs {
			t.Errorf("campaign %s failed its bite check in %d of %d seeds (>5%%)", name, fails, runs)
		}
	}
}
