package faultinject

import (
	"fmt"
	"testing"

	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
)

// TestExecutorStarvationCampaign cross-checks the executor stall against
// the ground-truth oracle: the detection executor is suspended for 2.5 s,
// so non-ground clouds queue unprocessed and the objects segment misses
// frame after frame while the rest of ECU2 — including the ground path and
// the monitor thread — keeps running. Zero false negatives must hold and
// the ground segment must not storm.
func TestExecutorStarvationCampaign(t *testing.T) {
	e := ExecutorStarvationEntry()
	for _, seed := range []int64{11, 22, 33} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			run := runCampaign(t, seed, e.Campaign, monitor.VariantMonitorThread)
			if !run.Report.Ok() {
				t.Errorf("oracle invariants violated under executor starvation:\n%s", run.Report.Summary())
			}
			checkSanity(t, e, run)
			// The stall window is 2.5 s = 25 frames; the objects segment
			// must catch most of them.
			objects := segReport(t, run.Report, perception.SegObjectsLocal)
			if objects.Exception < 15 {
				t.Errorf("executor-starvation: expected ≥15 misses on %s, got %+v", objects.Name, objects)
			}
			// The ground path bypasses the detection node entirely: it must
			// see far fewer misses than the stalled objects path.
			ground := segReport(t, run.Report, perception.SegGroundLocal)
			if ground.Exception >= objects.Exception {
				t.Errorf("executor-starvation: ground path (%d misses) should be mostly unaffected vs objects (%d)",
					ground.Exception, objects.Exception)
			}
			// The thread must be schedulable again after the window.
			if run.Sys.Detection.Exec.Blocked() {
				t.Error("executor-starvation: detection executor still blocked after the run")
			}
		})
	}
}

// TestExecutorStarvationValidation pins the spec-level checks.
func TestExecutorStarvationValidation(t *testing.T) {
	base := Spec{Type: TypeExecutorStarvation, Node: "detection",
		From: Duration(sim.Second), Until: Duration(2 * sim.Second)}
	if err := base.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	missing := base
	missing.Node = ""
	if err := missing.Validate(); err == nil {
		t.Error("missing node: expected a validation error")
	}
	// Starving an executor injects no clock error.
	c := Campaign{Name: "x", Faults: []Spec{base}}
	if got := c.MaxClockError(0); got != 0 {
		t.Errorf("MaxClockError = %v, want 0", got)
	}
	// An unknown node must fail at apply time.
	sys := perception.Build(perception.DefaultConfig())
	bad := Campaign{Name: "bad", Faults: []Spec{{Type: TypeExecutorStarvation, Node: "nonesuch"}}}
	if err := NewInjector(sim.NewRNG(1)).Apply(bad, TargetsOf(sys)); err == nil {
		t.Error("unknown node: expected an apply error")
	}
}

// TestThreadBlockSuspendsWithoutCPU pins the scheduler-level semantics the
// fault relies on: a blocked thread consumes no CPU and releases its core,
// queued work survives the block, and an in-flight item resumes where it
// left off on Unblock.
func TestThreadBlockSuspendsWithoutCPU(t *testing.T) {
	k := sim.NewKernel()
	p := sim.NewProcessor(k, sim.NewRNG(1), "ecu", 1)
	victim := p.NewThread("victim", 10)
	other := p.NewThread("other", 5)

	var victimDone, otherDone sim.Time
	victim.Enqueue("long", 10*sim.Millisecond, func() { victimDone = k.Now() })
	k.At(sim.Time(2*sim.Millisecond), victim.Block)
	// While the victim holds the only core blocked-free, the lower-priority
	// thread must be able to run.
	k.At(sim.Time(3*sim.Millisecond), func() {
		other.Enqueue("short", sim.Millisecond, func() { otherDone = k.Now() })
	})
	k.At(sim.Time(20*sim.Millisecond), victim.Unblock)
	k.Run()

	if otherDone != sim.Time(4*sim.Millisecond) {
		t.Errorf("other thread finished at %v, want 4ms (core freed by the blocked victim)", otherDone)
	}
	// 2ms ran before the block; the remaining 8ms resume at 20ms.
	if victimDone != sim.Time(28*sim.Millisecond) {
		t.Errorf("victim finished at %v, want 28ms (2ms before the block + 8ms after)", victimDone)
	}
	if got := victim.BusyTime(); got != 10*sim.Millisecond {
		t.Errorf("victim busy time = %v, want 10ms (blocking consumes no CPU)", got)
	}
}
