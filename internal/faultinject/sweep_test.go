package faultinject

import (
	"testing"
)

func TestMatrixSizes(t *testing.T) {
	if n := len(Matrix102()); n != 102 {
		t.Errorf("Matrix102 has %d combos", n)
	}
	if n := len(PRMatrix()); n != 23 {
		t.Errorf("PRMatrix has %d combos", n)
	}
	if n := len(GrownNightlyMatrix()); n != 1198 {
		t.Errorf("GrownNightlyMatrix has %d combos", n)
	}
	if n := len(Matrix10K()); n != 10000 {
		t.Errorf("Matrix10K has %d combos", n)
	}
	for _, c := range GrownNightlyMatrix() {
		if err := c.Campaign.Validate(); err != nil {
			t.Fatalf("%s: %v", c, err)
		}
	}
	for _, c := range Matrix10K() {
		if err := c.Campaign.Validate(); err != nil {
			t.Fatalf("%s: %v", c, err)
		}
	}
}

// TestSweepParallelDeterminism is the tentpole guarantee: running the PR
// chaos matrix through the sharded engine at four workers produces output
// byte-identical to the serial run — same merged report text, same oracle
// verdicts, same sanity outcomes, regardless of worker interleaving. The PR
// CI job runs this under -race, so it also proves no state is shared
// between shards.
func TestSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep determinism runs the PR matrix twice")
	}
	combos := PRMatrix()
	serial := RunSweep(combos, 1)
	par := RunSweep(combos, 4)

	if a, b := MergedSummary(serial), MergedSummary(par); a != b {
		t.Fatalf("parallel merged report differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	for i := range serial {
		if serial[i].Ok() != par[i].Ok() {
			t.Errorf("%s: serial ok=%v, parallel ok=%v", serial[i].Combo, serial[i].Ok(), par[i].Ok())
		}
	}
	// The PR matrix itself must be green, otherwise the identity above
	// could be two identically-broken runs.
	for _, it := range serial {
		if !it.Ok() {
			t.Errorf("%s failed: err=%v sanity=%v\n%s", it.Combo, it.Err, it.Sanity, it.Report.Summary())
		}
	}
}
