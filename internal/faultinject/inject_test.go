package faultinject

import (
	"testing"

	"chainmon/internal/netsim"
	"chainmon/internal/sim"
	"chainmon/internal/vclock"
)

// driveBurstLink applies a burst-loss spec to a standalone link and sends
// one message per millisecond for 10 s, returning the fault-drop count.
func driveBurstLink(t *testing.T, seed int64) (drops uint64, sent uint64) {
	t.Helper()
	k := sim.NewKernel()
	rng := sim.NewRNG(99)
	l := netsim.NewLink(k, rng, "a→b", netsim.Config{BCRT: 100 * sim.Microsecond})
	tgt := Targets{Kernel: k, Link: func(from, to string) *netsim.Link {
		if from != "a" || to != "b" {
			return nil
		}
		return l
	}}
	camp := Campaign{Name: "burst", Faults: []Spec{{
		Type: TypeBurstLoss, From: Duration(2 * sim.Second), Until: Duration(8 * sim.Second),
		LinkFrom: "a", LinkTo: "b", PEnterBurst: 0.02, PExitBurst: 0.2,
	}}}
	if err := NewInjector(sim.NewRNG(seed)).Apply(camp, tgt); err != nil {
		t.Fatal(err)
	}
	for ms := 0; ms < 10000; ms++ {
		k.At(sim.Time(ms)*sim.Time(sim.Millisecond), func() { l.Send(100, nil) })
	}
	k.Run()
	s, _ := l.Stats()
	return l.FaultDrops(), s
}

// TestBurstLossDeterministic pins the Gilbert-Elliott chain: same seed ⇒
// identical drop sequence; different seed ⇒ (almost surely) different; and
// the bursts only bite inside the window.
func TestBurstLossDeterministic(t *testing.T) {
	d1, sent := driveBurstLink(t, 42)
	d2, _ := driveBurstLink(t, 42)
	d3, _ := driveBurstLink(t, 43)
	if d1 != d2 {
		t.Errorf("same seed produced %d and %d fault drops", d1, d2)
	}
	if d1 == 0 {
		t.Error("burst fault never dropped anything")
	}
	// 6 s of the 10 s run are inside the window; with p_enter 0.02 and
	// p_exit 0.2 the chain is in a burst ~9% of the time. Everything lost
	// outside the window would be a window bug.
	if d1 > sent*6/10 {
		t.Errorf("%d of %d messages dropped — window not respected?", d1, sent)
	}
	if d1 == d3 {
		t.Logf("different seeds coincided (%d drops) — suspicious but possible", d1)
	}
}

// TestClockFaultWindow checks the step is applied at the window start and
// reverted (PTP re-convergence) at the window end, and that drift
// accumulates linearly.
func TestClockFaultWindow(t *testing.T) {
	k := sim.NewKernel()
	rng := sim.NewRNG(7)
	c := vclock.New(k, rng, "ecu", vclock.Config{})
	tgt := Targets{Kernel: k, Clocks: map[string]*vclock.Clock{"ecu": c}}
	camp := Campaign{Name: "clock", Faults: []Spec{
		{Type: TypeClockStep, From: Duration(sim.Second), Until: Duration(2 * sim.Second),
			Clock: "ecu", Offset: Duration(25 * sim.Millisecond)},
	}}
	if err := NewInjector(sim.NewRNG(1)).Apply(camp, tgt); err != nil {
		t.Fatal(err)
	}
	check := func(at sim.Time, want sim.Duration) {
		k.At(at, func() {
			if got := c.FaultOffset(); got != want {
				t.Errorf("t=%v: fault offset %v, want %v", sim.Duration(at), got, want)
			}
		})
	}
	check(sim.Time(500*sim.Millisecond), 0)
	check(sim.Time(1500*sim.Millisecond), 25*sim.Millisecond)
	check(sim.Time(2500*sim.Millisecond), 0)
	k.Run()
}

func TestClockDriftAccumulates(t *testing.T) {
	k := sim.NewKernel()
	c := vclock.New(k, sim.NewRNG(7), "dev", vclock.Config{})
	tgt := Targets{Kernel: k, Clocks: map[string]*vclock.Clock{"dev": c}}
	camp := Campaign{Name: "drift", Faults: []Spec{
		{Type: TypeClockDrift, From: Duration(sim.Second), Until: Duration(3 * sim.Second),
			Clock: "dev", DriftPPM: 500},
	}}
	if err := NewInjector(sim.NewRNG(1)).Apply(camp, tgt); err != nil {
		t.Fatal(err)
	}
	approx := func(got, want, tol sim.Duration) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return d <= tol
	}
	k.At(sim.Time(2*sim.Second), func() {
		// 1 s at 500 ppm = 500 µs.
		if got := c.FaultOffset(); !approx(got, 500*sim.Microsecond, sim.Microsecond) {
			t.Errorf("drift after 1s = %v, want ~500µs", got)
		}
	})
	k.At(sim.Time(4*sim.Second), func() {
		if got := c.FaultOffset(); got != 0 {
			t.Errorf("fault offset after clear = %v, want 0", got)
		}
	})
	k.Run()
}

// TestOverloadWindow checks the interference threads execute roughly
// Utilization×window of CPU time each, and only inside the window.
func TestOverloadWindow(t *testing.T) {
	k := sim.NewKernel()
	p := sim.NewProcessor(k, sim.NewRNG(3), "ecu", 2)
	tgt := Targets{Kernel: k, Procs: map[string]*sim.Processor{"ecu": p}}
	camp := Campaign{Name: "load", Faults: []Spec{{
		Type: TypeOverload, From: Duration(sim.Second), Until: Duration(2 * sim.Second),
		ECU: "ecu", Utilization: 0.5, Threads: 2,
	}}}
	if err := NewInjector(sim.NewRNG(1)).Apply(camp, tgt); err != nil {
		t.Fatal(err)
	}
	k.Run()
	threads := p.Threads()
	if len(threads) != 2 {
		t.Fatalf("expected 2 interference threads, got %d", len(threads))
	}
	for _, th := range threads {
		busy := th.BusyTime()
		if busy < 450*sim.Millisecond || busy > 550*sim.Millisecond {
			t.Errorf("thread %s executed %v, want ~500ms", th.Name, busy)
		}
	}
	// The kernel must run dry shortly after the window closes.
	if now := k.Now(); now > sim.Time(2100*sim.Millisecond) {
		t.Errorf("kernel still busy at %v after the window closed", sim.Duration(now))
	}
}

// TestApplyUnknownTarget ensures targeting errors surface instead of
// silently arming nothing.
func TestApplyUnknownTarget(t *testing.T) {
	k := sim.NewKernel()
	tgt := Targets{Kernel: k, Clocks: map[string]*vclock.Clock{}}
	camp := Campaign{Name: "bad", Faults: []Spec{
		{Type: TypeClockStep, Clock: "nope", Offset: Duration(sim.Millisecond)},
	}}
	if err := NewInjector(sim.NewRNG(1)).Apply(camp, tgt); err == nil {
		t.Fatal("unknown clock target accepted")
	}
}
